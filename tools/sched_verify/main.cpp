// sched_verify: exhaustive offline sweep of the cross-rank schedule
// verifier (mpx::coll::ir::verify) over every compiled collective point.
//
// For each (kind, algo) x comm size x count class x root, compile all N
// per-rank schedules exactly as the runtime would and run the full
// verify_ranks battery; then, on a sample of points, apply each seeded
// mutation (ir_verify.hpp inject_fault) to one rank's clone and require
// the verifier to reject it with a counterexample. A JSON report is
// written for CI archival; the exit code is nonzero on any clean-point
// diagnostic or any uncaught mutation.
//
// Usage: sched_verify [--out report.json] [--max-size N]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mpx/coll/ir.hpp"
#include "mpx/coll/ir_verify.hpp"
#include "mpx/dtype/datatype.hpp"

namespace ir = mpx::coll::ir;
namespace verify = ir::verify;

namespace {

struct Combo {
  ir::CollKind kind;
  ir::Algo algo;
  bool rooted;  ///< sweep roots (bcast/reduce) vs root fixed at 0
};

constexpr Combo kCombos[] = {
    {ir::CollKind::allreduce, ir::Algo::rd, false},
    {ir::CollKind::allreduce, ir::Algo::ring, false},
    {ir::CollKind::allreduce, ir::Algo::rsag, false},
    {ir::CollKind::bcast, ir::Algo::knomial, true},
    {ir::CollKind::bcast, ir::Algo::scatter_ag, true},
    {ir::CollKind::reduce, ir::Algo::knomial, true},
};

const char* kind_str(ir::CollKind k) {
  switch (k) {
    case ir::CollKind::allreduce: return "allreduce";
    case ir::CollKind::bcast: return "bcast";
    case ir::CollKind::reduce: return "reduce";
  }
  return "?";
}

/// Element counts spanning the count classes (int32): a few bytes to 1 MiB.
constexpr std::size_t kCounts[] = {1, 16, 256, 4096, 65536, 262144};

constexpr const char* kFaults[] = {"swap_tag", "drop_edge", "truncate_part",
                                   "reorder_reduce"};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

struct Failure {
  std::string point;
  std::string detail;
};

std::vector<ir::SchedPtr> compile_ranks(const Combo& c, std::size_t count,
                                        int size, int root) {
  const mpx::net::CostModel net{};
  const auto dt = mpx::dtype::Datatype::int32();
  std::vector<ir::SchedPtr> ranks;
  ranks.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    // Match the runtime's in-place conventions: bcast has no send buffer,
    // reduce contributes in place at the root only, allreduce out-of-place
    // here (the send-space hazards get verified too).
    const bool inp =
        c.kind == ir::CollKind::bcast ||
        (c.kind == ir::CollKind::reduce && r == root);
    ranks.push_back(ir::compile(c.kind, count, dt, mpx::dtype::ReduceOp::sum,
                                inp, root, r, size, net, c.algo));
  }
  return ranks;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "sched_verify_report.json";
  int max_size = 17;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-size") == 0 && i + 1 < argc) {
      max_size = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--out file] [--max-size N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::size_t points = 0, mutations = 0, mutations_caught = 0;
  std::vector<Failure> clean_failures, mutation_misses;

  for (const Combo& c : kCombos) {
    for (int size = 2; size <= max_size; ++size) {
      const int roots[] = {0, size - 1, size / 2};
      const int nroots = c.rooted ? (size > 2 ? 3 : 2) : 1;
      for (int ri = 0; ri < nroots; ++ri) {
        const int root = roots[ri];
        for (const std::size_t count : kCounts) {
          const std::string point =
              std::string(kind_str(c.kind)) + "/" + ir::to_string(c.algo) +
              " P=" + std::to_string(size) + " root=" +
              std::to_string(root) + " count=" + std::to_string(count);
          const auto ranks = compile_ranks(c, count, size, root);
          const verify::Report rep = verify::verify_ranks(ranks);
          ++points;
          if (!rep.ok()) {
            clean_failures.push_back({point, rep.to_string()});
            continue;
          }
          // Mutation pass on one mid-size cell per (combo, size, root):
          // mutate rank (size/2)'s clone, expect rejection. Needs a count
          // class with headroom — at tiny max_count every block resolves
          // to zero elements and a truncated Part is extensionally
          // invisible (the schedules are equal at every admissible count).
          if (count != 4096) continue;
          for (const char* fault : kFaults) {
            auto mut = verify::clone(*ranks[static_cast<std::size_t>(
                size / 2)]);
            if (!verify::inject_fault(*mut, fault)) {
              continue;  // no site in this schedule (e.g. no reduce pair)
            }
            auto mranks = ranks;
            mranks[static_cast<std::size_t>(size / 2)] = std::move(mut);
            ++mutations;
            const verify::Report mrep = verify::verify_ranks(mranks);
            if (!mrep.ok() && !mrep.diags[0].trace.empty()) {
              ++mutations_caught;
            } else if (!mrep.ok()) {
              ++mutations_caught;  // caught, but trace-less: still report
              mutation_misses.push_back(
                  {point + " fault=" + fault,
                   "rejected without a counterexample trace"});
            } else {
              mutation_misses.push_back(
                  {point + " fault=" + fault, "mutation verified clean"});
            }
          }
        }
      }
    }
  }

  const bool ok = clean_failures.empty() && mutation_misses.empty();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"points\": %zu,\n  \"mutations\": %zu,\n"
                 "  \"mutations_caught\": %zu,\n  \"ok\": %s,\n",
                 points, mutations, mutations_caught, ok ? "true" : "false");
    std::fprintf(f, "  \"clean_failures\": [");
    for (std::size_t i = 0; i < clean_failures.size(); ++i) {
      std::fprintf(f, "%s\n    {\"point\": \"%s\", \"detail\": \"%s\"}",
                   i != 0 ? "," : "",
                   json_escape(clean_failures[i].point).c_str(),
                   json_escape(clean_failures[i].detail).c_str());
    }
    std::fprintf(f, "],\n  \"mutation_misses\": [");
    for (std::size_t i = 0; i < mutation_misses.size(); ++i) {
      std::fprintf(f, "%s\n    {\"point\": \"%s\", \"detail\": \"%s\"}",
                   i != 0 ? "," : "",
                   json_escape(mutation_misses[i].point).c_str(),
                   json_escape(mutation_misses[i].detail).c_str());
    }
    std::fprintf(f, "]\n}\n");
    std::fclose(f);
  }

  std::printf("sched_verify: %zu points, %zu mutations (%zu caught)\n",
              points, mutations, mutations_caught);
  for (const Failure& fl : clean_failures) {
    std::printf("CLEAN POINT FAILED: %s\n%s\n", fl.point.c_str(),
                fl.detail.c_str());
  }
  for (const Failure& fl : mutation_misses) {
    std::printf("MUTATION MISSED: %s (%s)\n", fl.point.c_str(),
                fl.detail.c_str());
  }
  return ok ? 0 : 1;
}
