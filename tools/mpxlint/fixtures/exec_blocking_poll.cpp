// mpxlint fixture: executor-shaped progress-contract violations, mirroring
// the collective schedule executor (src/coll/ir_exec.cpp SchedExecSource):
// poll() drains an inbox then steps the running cursors. Two seeded bugs:
//
//   * step_cursor() blocks on wait_on_stream while a node's request is
//     incomplete — waiting inside progress is the paper's §3.4 deadlock
//     (reached transitively: poll -> drain_inbox -> step_cursor);
//   * retire_cursor() re-acquires a vci-ranked lock from inside poll,
//     which already runs under the VCI lock.
//
// Expected findings: progress-contract (one blocking-call path, one
// forbidden-rank acquisition path).

namespace fix {

enum class LockRank { none = 0, vci = 100 };

struct InstrumentedMutex {
  void lock();
  void unlock();
};

template <class Mutex>
struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Vci {
  InstrumentedMutex mu{"vci", LockRank::vci};
};

struct ProgressSource {
  virtual bool idle(Vci& v) = 0;
  virtual void poll(Vci& v, int* made) = 0;
};

struct Cursor {
  Cursor* next;
  int pending_reqs;
};

void wait_on_stream(int req);

void retire_cursor(Vci& v, Cursor* c) {
  LockGuard g(v.mu);  // re-enters the already-held VCI lock: forbidden
  c->next = nullptr;
}

void step_cursor(Cursor* c) {
  while (c->pending_reqs != 0) {
    wait_on_stream(c->pending_reqs);  // blocking wait inside progress
    --c->pending_reqs;
  }
}

struct BadExecSource final : ProgressSource {
  Cursor* running = nullptr;

  void drain_inbox(Vci& v) {
    for (Cursor* c = running; c != nullptr; c = c->next) {
      step_cursor(c);
      if (c->pending_reqs == 0) retire_cursor(v, c);
    }
  }

  bool idle(Vci&) override { return running == nullptr; }
  void poll(Vci& v, int* made) override {
    drain_inbox(v);
    *made = 0;
  }
};

}  // namespace fix
