// mpxlint fixture: raw std:: primitives in modeled protocol code.
// The fixture path is registered in the modeled set by the self-test; a
// std::atomic member and a std::mutex member must both be flagged
// (mc::atomic / mc::mutex are invisible-to-model-checker otherwise).
// Expected findings: mc-coverage (decl rule), twice.

namespace std {
template <class T>
struct atomic {
  T load() const;
  void store(T);
};
struct mutex {};
}  // namespace std

namespace fix {

struct Ring {
  std::atomic<unsigned> head{0};  // raw atomic in modeled file: finding
  std::mutex m;                   // raw mutex in modeled file: finding
  unsigned cells = 0;
};

}  // namespace fix
