// mpxlint fixture: mutex-owning class with an unannotated data member.
// `pending` carries MPX_GUARDED_BY; `dropped` does not and is neither
// exempted nor allow-annotated. Expected finding: tsa-ratchet, exactly
// one (for `dropped`).

#define MPX_GUARDED_BY(x)

namespace fix {

enum class LockRank { none = 0, vci = 100 };

struct InstrumentedMutex {
  void lock();
  void unlock();
};

struct Tracker {
  InstrumentedMutex mu{"fix:tracker", LockRank::vci};
  int pending MPX_GUARDED_BY(mu) = 0;
  int dropped = 0;  // missing MPX_GUARDED_BY: finding
  int generation = 0;  // mpxlint: allow(tsa-ratchet) immutable after init
};

}  // namespace fix
