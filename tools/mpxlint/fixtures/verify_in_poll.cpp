// mpxlint fixture: the collective schedule verifier reached from a
// ProgressSource::poll override. VerifySource::poll calls
// revalidate_cache(), which calls verify_ranks() — the verifier is a
// compile-path tool (unbounded allocation, global event-graph build) and
// must never run inside progress.
// Expected finding: progress-contract (verifier call, via the transitive
// call graph, not just the direct body).

namespace fix {

struct Vci;

struct ProgressSource {
  virtual bool idle(Vci& v) = 0;
  virtual void poll(Vci& v, int* made) = 0;
};

int verify_ranks(int nranks);

void revalidate_cache(int nranks) {
  verify_ranks(nranks);  // schedule verifier reachable from poll
}

struct VerifySource final : ProgressSource {
  bool idle(Vci&) override { return true; }
  void poll(Vci&, int* made) override {
    revalidate_cache(4);
    *made = 0;
  }
};

}  // namespace fix
