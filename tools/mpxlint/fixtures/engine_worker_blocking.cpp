// mpxlint fixture: progress-driver-shaped contract violations, mirroring
// the adaptive engine's worker loop (src/task/progress_engine.cpp
// ProgressEngine::worker_loop). A driver root may call the progress entry
// points (vci_poll et al.) — that is its job — but it must stay
// non-blocking and lock-free like any poll path. Two seeded bugs:
//
//   * drain_completions() blocks on wait_all while flushing finished
//     slots — a stalled peer now stalls every VCI riding this worker's
//     rotation (reached transitively: worker_loop -> rotate_once ->
//     drain_completions);
//   * lock_slot_vci() wraps the vci_poll call in a vci-ranked LockGuard:
//     vci_poll acquires the VCI lock itself, so holding one across the
//     call re-enters the progress engine.
//
// The clean poll_one() path shows the allowed boundary: a bare vci_poll
// from a driver root is NOT a finding (PROGRESS_ENTRY_CALL_NAMES), even
// though vci_poll is a blocking call for ordinary ProgressSource roots.
//
// Expected findings: progress-contract (one blocking-call path, one
// forbidden-rank acquisition path; nothing for poll_one).

namespace fix {

enum class LockRank { none = 0, vci = 100 };

struct InstrumentedMutex {
  void lock();
  void unlock();
};

template <class Mutex>
struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Vci {
  InstrumentedMutex mu{"vci", LockRank::vci};
};

int vci_poll(Vci& v, unsigned mask);
void wait_all(int* reqs, int n);

struct ProgressEngine {
  struct Slot {
    Vci* vci;
    unsigned mask;
    int pending[4];
    int npending;
  };

  Slot* slots;
  int nslots;

  // Allowed boundary: driver roots may call progress entry points bare.
  int poll_one(Slot& s) { return vci_poll(*s.vci, s.mask); }

  void drain_completions(Slot& s) {
    wait_all(s.pending, s.npending);  // blocking wait inside a driver loop
    s.npending = 0;
  }

  int lock_slot_vci(Slot& s) {
    LockGuard g(s.vci->mu);  // vci-ranked: vci_poll re-acquires it inside
    return vci_poll(*s.vci, s.mask);
  }

  int rotate_once(int i) {
    Slot& s = slots[i];
    int made = poll_one(s);
    if (s.npending != 0) drain_completions(s);
    made += lock_slot_vci(s);
    return made;
  }

  void worker_loop() {
    for (int i = 0; i < nslots; ++i) {
      rotate_once(i);
    }
  }
};

}  // namespace fix
