// mpxlint fixture: a control-plane topology mutation reached from a
// ProgressSource::poll override. RerouteSource::poll calls maybe_reroute(),
// which calls swap_topology_for_test() — topology writers take the control
// mutex (rank 50, below vci) and drive progress while holding it, so a
// poll context (already under a vci-ranked lock) reaching one inverts the
// lock order and re-enters the engine mid-swap. Snapshot READS (the TopoRef
// acquire-load) are poll-safe; the mutation entry points are not.
// Expected finding: progress-contract (control-plane call, via the
// transitive call graph, not just the direct body).

namespace fix {

struct Vci;
struct Transport;

struct World {
  void swap_topology_for_test(int a, int b, Transport& t);
};

struct ProgressSource {
  virtual bool idle(Vci& v) = 0;
  virtual void poll(Vci& v, int* made) = 0;
};

void maybe_reroute(World& w, Transport& t) {
  w.swap_topology_for_test(0, 1, t);  // control-plane writer from poll
}

struct RerouteSource final : ProgressSource {
  explicit RerouteSource(World& w, Transport& t) : w_(w), t_(t) {}
  bool idle(Vci&) override { return true; }
  void poll(Vci&, int* made) override {
    maybe_reroute(w_, t_);
    *made = 0;
  }
  World& w_;
  Transport& t_;
};

}  // namespace fix
