// mpxlint fixture: release store with no acquire-side reader.
// `ready` is published with a release store, but the only load anywhere
// is relaxed — nothing orders a reader after the publish.
// Expected finding: memory-order (unpaired-release).

namespace fix {

namespace mc {
template <class T>
struct atomic {
  void store(T, int);
  T load(int) const;
};
}  // namespace mc

constexpr int memory_order_relaxed = 0;
constexpr int memory_order_release = 3;

struct Publisher {
  mc::atomic<bool> ready{false};
  int payload = 0;

  void publish() {
    payload = 42;
    ready.store(true, memory_order_release);  // no acquire load anywhere
  }

  bool peek() const {
    return ready.load(memory_order_relaxed);  // relaxed: does not pair
  }
};

}  // namespace fix
