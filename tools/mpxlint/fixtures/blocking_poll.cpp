// mpxlint fixture: blocking wait inside a ProgressSource::poll override.
// BadSource::poll calls helper_drain(), which calls wait_all() — progress
// re-entering a blocking wait is the paper's §3.4 deadlock scenario.
// Expected finding: progress-contract (blocking call, via the transitive
// call graph, not just the direct body).

namespace fix {

struct Vci;

struct ProgressSource {
  virtual bool idle(Vci& v) = 0;
  virtual void poll(Vci& v, int* made) = 0;
};

void wait_all(int n);

void helper_drain(int n) {
  wait_all(n);  // blocking wait reachable from poll
}

struct BadSource final : ProgressSource {
  bool idle(Vci&) override { return true; }
  void poll(Vci&, int* made) override {
    helper_drain(3);
    *made = 0;
  }
};

}  // namespace fix
