// mpxlint fixture: seeded lock-rank inversion.
// A transport_channel-ranked lock is held while acquiring a vci-ranked
// lock — the reverse of the declared order. Expected finding: lock-rank.

namespace fix {

enum class LockRank { none = 0, vci = 100, transport_channel = 410 };

struct InstrumentedMutex {
  void lock();
  void unlock();
};

struct Spinlock {
  void lock();
  void unlock();
};

template <class Mutex>
struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Vci {
  InstrumentedMutex mu{"vci", LockRank::vci};
};

struct Channel {
  Spinlock mu{"fix:channel", LockRank::transport_channel};
};

void drain(Channel& ch, Vci& v) {
  LockGuard g(ch.mu);   // rank 410 held...
  LockGuard h(v.mu);    // ...while acquiring rank 100: inversion
}

}  // namespace fix
