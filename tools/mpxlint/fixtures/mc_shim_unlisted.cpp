// mpxlint fixture: mc:: shims in a file that is NOT in MODELED_FILES.
// This file is deliberately absent from config.MODELED_FILES — the
// mc-coverage inverse guard must flag both shim members, because protocol
// code written against the mc:: layer that the explorer never schedules
// is silently unexplored.
// Expected findings: mc-coverage (unlisted rule), twice.

namespace fix {

namespace mc {
template <class T>
struct atomic {
  void store(T, int);
  T load(int) const;
};
struct mutex {
  void lock();
  void unlock();
};
}  // namespace mc

struct ForgottenRing {
  mc::atomic<unsigned> head{0};  // shim outside the modeled set: finding
  mc::mutex m;                   // shim outside the modeled set: finding
  unsigned cells = 0;
};

}  // namespace fix
