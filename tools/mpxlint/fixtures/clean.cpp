// mpxlint fixture: control file — correct code, zero findings expected.
// Exercises the same shapes the seeded fixtures break: ordered lock
// nesting, mc:: shims with PLAIN annotations, a paired release/acquire
// protocol, a well-behaved progress source, and full GUARDED_BY coverage.

#define MPX_GUARDED_BY(x)
#define MPX_MC_PLAIN_WRITE(p, what)
#define MPX_MC_PLAIN_READ(p, what)

namespace fix {

enum class LockRank { none = 0, vci = 100, transport = 400 };

constexpr int memory_order_relaxed = 0;
constexpr int memory_order_acquire = 2;
constexpr int memory_order_release = 3;

namespace mc {
template <class T>
struct atomic {
  void store(T, int);
  T load(int) const;
};
}  // namespace mc

struct InstrumentedMutex {
  void lock();
  void unlock();
};

struct Spinlock {
  void lock();
  void unlock();
};

template <class Mutex>
struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Vci {
  InstrumentedMutex mu{"fix:vci", LockRank::vci};
  int posted MPX_GUARDED_BY(mu) = 0;
};

struct Endpoint {
  Spinlock mu{"fix:pending", LockRank::transport};
  int queued MPX_GUARDED_BY(mu) = 0;
  mc::atomic<bool> ready{false};
  int cell = 0;  // mpxlint: allow(tsa-ratchet) published via the ready edge
};

// vci (100) held while taking transport (400): declared order, fine.
void ordered(Vci& v, Endpoint& ep) {
  LockGuard g(v.mu);
  v.posted += 1;
  LockGuard h(ep.mu);
  ep.queued += 1;
}

void publish(Endpoint& ep) {
  MPX_MC_PLAIN_WRITE(&ep.cell, "fixture cell");
  ep.cell = 7;
  ep.ready.store(true, memory_order_release);
}

bool consume(Endpoint& ep) {
  if (!ep.ready.load(memory_order_acquire)) return false;
  MPX_MC_PLAIN_READ(&ep.cell, "fixture cell");
  return ep.cell == 7;
}

struct ProgressSource {
  virtual bool idle(Vci& v) = 0;
  virtual void poll(Vci& v, int* made) = 0;
};

struct GoodSource final : ProgressSource {
  Endpoint ep;
  bool idle(Vci&) override { return true; }
  void poll(Vci&, int* made) override {
    // Transport-ranked locks are fine inside progress.
    LockGuard g(ep.mu);
    *made += ep.queued;
    ep.queued = 0;
  }
};

}  // namespace fix
