"""Entry point so the tool runs as `python3 tools/mpxlint ...`."""
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from mpxlint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
