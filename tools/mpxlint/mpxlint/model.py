"""Engine-agnostic code model.

Both engines (textual and clang.cindex) populate this IR; checks consume
only this module, so every check works identically under either engine.
All positions are 1-based (file, line)."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

# Field kinds ---------------------------------------------------------------
RAW_ATOMIC = "raw_atomic"        # std::atomic<T> / std::atomic_flag
MC_ATOMIC = "mc_atomic"          # mc::atomic<T>
RAW_MUTEX = "raw_mutex"          # std::mutex / std::recursive_mutex / ...
MC_MUTEX = "mc_mutex"            # mc::mutex / mc::rec_mutex / mc::spinlock
INST_MUTEX = "inst_mutex"        # base::InstrumentedMutex
SPINLOCK = "spinlock"            # base::Spinlock
CONDVAR = "condvar"              # std::condition_variable[_any]
PLAIN = "plain"                  # anything else

LOCK_KINDS = (RAW_MUTEX, MC_MUTEX, INST_MUTEX, SPINLOCK)
CAPABILITY_LOCK_KINDS = (INST_MUTEX, SPINLOCK)  # TSA-annotated lock types
ATOMIC_KINDS = (RAW_ATOMIC, MC_ATOMIC)


@dataclasses.dataclass
class Field:
    name: str
    type_text: str
    kind: str = PLAIN
    line: int = 0
    guarded_by: Optional[str] = None       # lock expr from MPX_GUARDED_BY
    pt_guarded_by: Optional[str] = None
    rank: Optional[str] = None             # LockRank name for lock fields
    is_static: bool = False
    is_const: bool = False
    allow: Set[str] = dataclasses.field(default_factory=set)  # inline allows


@dataclasses.dataclass
class ClassModel:
    name: str                              # short name (no namespace)
    file: str
    line: int = 0
    bases: List[str] = dataclasses.field(default_factory=list)
    fields: Dict[str, Field] = dataclasses.field(default_factory=dict)

    def field(self, name: str) -> Optional[Field]:
        return self.fields.get(name)


@dataclasses.dataclass
class Acquire:
    """A lock acquisition site inside a function body."""
    line: int
    expr: str                              # source expr, e.g. "v.mu"
    resolved: Optional[Tuple[str, str]] = None   # (class, field)
    rank: Optional[str] = None             # LockRank name, None = unranked
    depth: int = 0                         # block depth at acquisition
    end_line: int = 0                      # last line the guard is held
    kind: str = "guard"                    # guard | try_guard | manual


@dataclasses.dataclass
class AtomicOp:
    line: int
    member: str                            # final member name, e.g. "head"
    obj_expr: str                          # full object expr
    cls: Optional[str] = None              # resolved owning class
    op: str = "load"                       # load/store/fetch_add/...
    orders: Set[str] = dataclasses.field(default_factory=set)
    # orders: subset of {relaxed, consume, acquire, release, acq_rel,
    # seq_cst, forwarded}; empty set = implicit seq_cst
    annotated_intentional: bool = False    # "// mo: seq_cst intentional"


@dataclasses.dataclass
class Call:
    line: int
    name: str                              # callee name (last token)
    recv_cls: Optional[str] = None         # receiver class when inferable
    qualifier: str = ""                    # e.g. "ext" for ext::foo(...)
    held_ranks: Set[str] = dataclasses.field(default_factory=set)
    held_exprs: Set[str] = dataclasses.field(default_factory=set)


@dataclasses.dataclass
class PlainMemberWrite:
    line: int
    member: str
    obj_expr: str
    cls: Optional[str] = None


@dataclasses.dataclass
class Function:
    name: str
    file: str
    line: int
    cls: Optional[str] = None              # enclosing/owner class short name
    is_override: bool = False
    signature: str = ""
    acquires: List[Acquire] = dataclasses.field(default_factory=list)
    atomic_ops: List[AtomicOp] = dataclasses.field(default_factory=list)
    calls: List[Call] = dataclasses.field(default_factory=list)
    plain_writes: List[PlainMemberWrite] = dataclasses.field(
        default_factory=list)
    has_mc_plain_annotation: bool = False  # any MPX_MC_PLAIN_* in body
    allow: Set[str] = dataclasses.field(default_factory=set)

    @property
    def key(self) -> str:
        qual = f"{self.cls}::" if self.cls else ""
        return f"{self.file}:{self.line}:{qual}{self.name}"


@dataclasses.dataclass
class CodeModel:
    """Whole-corpus model handed to every check."""
    classes: Dict[str, ClassModel] = dataclasses.field(default_factory=dict)
    functions: List[Function] = dataclasses.field(default_factory=list)
    files: List[str] = dataclasses.field(default_factory=list)
    engine: str = "textual"
    diagnostics: List[str] = dataclasses.field(default_factory=list)

    # -- convenience lookups shared by checks -------------------------------
    def derived_of(self, base: str) -> List[ClassModel]:
        """Classes whose (transitive) base list contains `base`."""
        out = []
        for c in self.classes.values():
            seen: Set[str] = set()
            stack = list(c.bases)
            while stack:
                b = stack.pop()
                if b in seen:
                    continue
                seen.add(b)
                if b == base:
                    out.append(c)
                    break
                parent = self.classes.get(b)
                if parent:
                    stack.extend(parent.bases)
        return out

    def functions_named(self, name: str) -> List[Function]:
        return [f for f in self.functions if f.name == name]

    def methods_of(self, cls: str, name: str) -> List[Function]:
        return [f for f in self.functions if f.cls == cls and f.name == name]

    def lock_rank_of(self, cls: Optional[str], field: str) -> Optional[str]:
        if cls is None:
            return None
        c = self.classes.get(cls)
        if not c:
            return None
        fl = c.field(field)
        return fl.rank if fl else None
