"""Repo-specific configuration for mpxlint checks.

Everything a check needs to know about this codebase's conventions lives
here — modeled-file sets, the lock-rank table, deny-lists — so the engines
and checks stay generic."""

from __future__ import annotations

# Declared lock ranks, mirroring include/mpx/base/lock_rank.hpp. A thread
# may only acquire locks of strictly increasing rank; `none` is exempt.
LOCK_RANKS = {
    "none": 0,
    "control": 50,
    "vci": 100,
    "stream": 200,
    "task_queue": 300,
    "transport": 400,
    "transport_channel": 410,
}

# Files whose lock-acquisition sites are the lock *implementations*, not
# users — their internal lock()/unlock() bodies are not acquisition edges.
LOCK_IMPL_FILES = (
    "include/mpx/base/instrumented_mutex.hpp",
    "include/mpx/base/spinlock.hpp",
    "include/mpx/base/thread_safety.hpp",
    "include/mpx/base/lock_rank.hpp",
    "src/base/lock_rank.cpp",
    "include/mpx/mc/sync.hpp",
    "include/mpx/mc/mc.hpp",
    "src/mc/",
)

# The mc:: shim layer itself forwards memory orders and wraps raw atomics
# by design — excluded from mc-coverage and memory-order member analysis.
MC_SHIM_FILES = (
    "include/mpx/mc/",
    "src/mc/",
)

# Modeled protocol files (mc-coverage check): code whose interleavings the
# mpx::mc explorer is expected to cover. Raw std:: sync primitives here are
# invisible to the model checker and therefore findings.
MODELED_FILES = (
    "include/mpx/shm/shm_transport.hpp",
    "src/shm/shm_transport.cpp",
    "src/core/matching.hpp",
    "include/mpx/base/spinlock.hpp",
    "include/mpx/core/detail/request_impl.hpp",
    "include/mpx/base/queue.hpp",
    "include/mpx/base/instrumented_mutex.hpp",
    "src/core/internal.hpp",
    # The collective schedule cache (RCU publish protocol) and executor
    # (cursor inbox + pending gate) — modeled by test_mc_coll_cache.cpp
    # and driven through every interleaving the suite explores.
    "include/mpx/coll/ir_cache.hpp",
    "src/coll/ir_exec.cpp",
    # The progress engine's work-stealing deque — modeled by
    # test_mc_engine_steal.cpp (steal-vs-pop last element, empty-steal ABA).
    "include/mpx/task/steal_deque.hpp",
    # The control-plane/datapath topology seam (RCU snapshot publication,
    # epoch quiescence, pair in-flight counters) — modeled by
    # test_mc_topology_swap.cpp (publish/read/reclaim interleavings).
    "include/mpx/core/topology.hpp",
    "src/core/world_layers.hpp",
    # Fixture self-tests exercise the modeled-file rules on these. Listed
    # individually (not as a directory prefix) because the mc-coverage
    # inverse guard needs a fixture that is NOT in the modeled set
    # (mc_shim_unlisted.cpp) living in the same directory.
    "tools/mpxlint/fixtures/blocking_poll.cpp",
    "tools/mpxlint/fixtures/clean.cpp",
    "tools/mpxlint/fixtures/engine_worker_blocking.cpp",
    "tools/mpxlint/fixtures/exec_blocking_poll.cpp",
    "tools/mpxlint/fixtures/rank_inversion.cpp",
    "tools/mpxlint/fixtures/raw_atomic_modeled.cpp",
    "tools/mpxlint/fixtures/unannotated_guarded.cpp",
    "tools/mpxlint/fixtures/unpaired_release.cpp",
    "tools/mpxlint/fixtures/verify_in_poll.cpp",
    "tools/mpxlint/fixtures/topology_swap_in_poll.cpp",
)

# progress-contract: names that block (or re-enter the progress engine).
# Exact function-name matches on the call graph reachable from
# ProgressSource::poll / idle implementations.
BLOCKING_CALL_NAMES = {
    "wait",
    "wait_all",
    "wait_any",
    "wait_on_stream",
    "progress_until",
    "progress_test",
    "stream_progress",
    "vci_poll",
}

# progress-contract: external progress-driver roots. These are thread loops
# that drive progress from OUTSIDE a poll context (the adaptive engine's
# workers), so calling a progress entry point is their whole job — the
# names in PROGRESS_ENTRY_CALL_NAMES are allowed boundaries for them — but
# everything else about the contract still holds: no blocking waits, no
# vci/stream-ranked lock acquisitions (vci_poll takes the VCI lock itself;
# holding one across the call re-enters the engine).
PROGRESS_DRIVER_ROOTS = {
    ("ProgressEngine", "worker_loop"),
}
PROGRESS_ENTRY_CALL_NAMES = {
    "vci_poll",
    "progress_test",
    "stream_progress",
}

# progress-contract: entry points of the collective schedule verifier
# (src/coll/ir_verify.cpp). The verifier is a compile-path tool — it
# allocates freely and builds a global event graph — and must never run
# on the progress path, so any call reachable from ProgressSource::poll /
# idle is a finding (same mechanics as BLOCKING_CALL_NAMES).
PROGRESS_VERIFIER_CALL_NAMES = {
    "verify_ranks",
    "verify_local",
}

# progress-contract: control-plane mutation entry points (World topology
# publication). They take the control mutex (rank 50, BELOW vci) and drive
# progress while holding it, so calling one from inside a poll context —
# which already runs under a vci-ranked lock — both inverts the lock order
# and re-enters the engine mid-swap. Snapshot *reads* (the TopoRef
# acquire-load) are poll-safe; these writers are not.
PROGRESS_CONTROL_CALL_NAMES = {
    "swap_topology_for_test",
}

# progress-contract: lock ranks a progress source must never (transitively)
# acquire. poll()/idle() already run under a `vci`-ranked lock; reaching
# another vci/stream acquisition re-enters the progress engine — the
# paper's progress-reentrancy deadlock (§3.4).
PROGRESS_FORBIDDEN_RANKS = {"vci", "stream"}

# Base class whose poll/idle overrides are progress-contract roots.
PROGRESS_SOURCE_BASE = "ProgressSource"

# tsa-ratchet: member types that are internally synchronized — not
# candidates for MPX_GUARDED_BY even inside a mutex-owning class.
INTERNALLY_SYNCED_TYPES = (
    "MpscQueue",
    "SpscRing",
    "ProgressRegistry",
    "LockRank",
    "Coordinator",
    "WaitLadderCounters",
    "StealDeque",
    # RCU publication point: one atomic pointer, synchronized by the
    # publish/pin/quiesce protocol in topology.hpp.
    "TopologyHandle",
)

# Return types of well-known accessor helpers, used by the textual engine
# to type `auto&` locals (e.g. `auto& ch = chan(rank, vci);`).
ACCESSOR_RETURN_TYPES = {
    "chan": "Channel",
    "channel": "Channel",
    "chan_of": "Channel",
    "ep": "Endpoint",
    "ep_of": "Endpoint",
    "endpoint": "Endpoint",
}

# check_atomics.py compatibility: ops that take a trailing memory-order
# argument, and the annotation that opts a deliberate seq_cst site out.
ATOMIC_ORDER_METHODS = (
    "load", "store", "exchange",
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set",
)
SEQ_CST_INTENTIONAL_RE = r"mo:\s*seq_cst\s+intentional"

# Inline suppression comment:  // mpxlint: allow(check-id) reason
ALLOW_RE = r"mpxlint:\s*allow\(([a-z0-9_,\- ]+)\)"

# File extensions scanned.
SOURCE_EXTS = (".hpp", ".h", ".cpp", ".cc", ".cxx")
