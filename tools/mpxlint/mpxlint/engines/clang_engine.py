"""libclang (clang.cindex) engine.

Builds the same CodeModel as the textual engine, but from real ASTs driven
by compile_commands.json. Headers are modeled through the TUs that include
them. Written defensively: any import/load/parse failure makes
`available()` return False or raises, and the caller falls back to the
textual engine — this repo's CI installs libclang; developer machines may
not have it.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set

from .. import config
from ..model import (CodeModel, ClassModel, Acquire, AtomicOp, Call, Field,
                     Function, PlainMemberWrite)
from .textual import (classify_type, strip_noncode, _allow_tags,
                      _seqcst_annotated, RANK_RE, GUARDED_BY_RE,
                      PT_GUARDED_BY_RE)

_index = None


def available() -> bool:
    global _index
    try:
        from clang import cindex
    except ImportError:
        return False
    try:
        _index = cindex.Index.create()
        return True
    except Exception:
        for cand in ("libclang.so", "libclang-14.so", "libclang.so.1",
                     "libclang-15.so", "libclang-16.so"):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(cand)
                _index = cindex.Index.create()
                return True
            except Exception:
                continue
    return False


_ATOMIC_METHODS = set(config.ATOMIC_ORDER_METHODS)
_GUARD_TYPES = ("LockGuard", "TryLockGuard", "lock_guard", "unique_lock",
                "scoped_lock", "shared_lock")
_ORDER_MAP = {
    "memory_order_relaxed": "relaxed", "memory_order_consume": "consume",
    "memory_order_acquire": "acquire", "memory_order_release": "release",
    "memory_order_acq_rel": "acq_rel", "memory_order_seq_cst": "seq_cst",
}


def _short(name: str) -> str:
    return name.split("::")[-1].split("<")[0].strip()


class _Builder:
    def __init__(self, model: CodeModel, repo_root: str):
        self.model = model
        self.root = repo_root
        self.comments: Dict[str, Dict[int, str]] = {}
        self.seen_fn_keys: Set[str] = set()

    def comments_for(self, rel: str) -> Dict[int, str]:
        if rel not in self.comments:
            try:
                with open(os.path.join(self.root, rel),
                          encoding="utf-8", errors="replace") as f:
                    _, cm = strip_noncode(f.read())
                self.comments[rel] = cm
            except OSError:
                self.comments[rel] = {}
        return self.comments[rel]

    def rel_of(self, cursor) -> Optional[str]:
        loc = cursor.location
        if loc.file is None:
            return None
        path = os.path.realpath(loc.file.name)
        root = os.path.realpath(self.root)
        if not path.startswith(root + os.sep):
            return None
        return os.path.relpath(path, root)

    # ------------------------------------------------------------------
    def visit_tu(self, tu) -> None:
        from clang.cindex import CursorKind
        stack = [tu.cursor]
        while stack:
            cur = stack.pop()
            for child in cur.get_children():
                rel = self.rel_of(child)
                if rel is None:
                    continue
                k = child.kind
                if k in (CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL,
                         CursorKind.CLASS_TEMPLATE):
                    if child.is_definition():
                        self.visit_class(child, rel)
                    stack.append(child)
                elif k in (CursorKind.CXX_METHOD, CursorKind.FUNCTION_DECL,
                           CursorKind.CONSTRUCTOR, CursorKind.DESTRUCTOR,
                           CursorKind.FUNCTION_TEMPLATE):
                    if child.is_definition():
                        self.visit_function(child, rel)
                    stack.append(child)
                elif k in (CursorKind.NAMESPACE,
                           CursorKind.UNEXPOSED_DECL,
                           CursorKind.LINKAGE_SPEC):
                    stack.append(child)

    def visit_class(self, cursor, rel: str) -> None:
        from clang.cindex import CursorKind
        name = _short(cursor.spelling or "")
        if not name:
            return
        cm = self.model.classes.get(name)
        if cm is None:
            cm = ClassModel(name=name, file=rel,
                            line=cursor.location.line)
            self.model.classes[name] = cm
        comments = self.comments_for(rel)
        for child in cursor.get_children():
            if child.kind == CursorKind.CXX_BASE_SPECIFIER:
                b = _short(child.type.spelling)
                if b and b not in cm.bases:
                    cm.bases.append(b)
            elif child.kind == CursorKind.FIELD_DECL:
                line = child.location.line
                type_text = child.type.spelling
                ext = self._extent_text(child)
                gm = GUARDED_BY_RE.search(ext)
                pm = PT_GUARDED_BY_RE.search(ext)
                rm = RANK_RE.search(ext)
                f = Field(
                    name=child.spelling, type_text=type_text, line=line,
                    kind=classify_type(type_text),
                    guarded_by=gm.group(1) if gm else None,
                    pt_guarded_by=pm.group(1) if pm else None,
                    rank=rm.group(1) if rm else None,
                    is_const="const" in type_text,
                    allow=_allow_tags(comments, line))
                cm.fields.setdefault(child.spelling, f)

    def _extent_text(self, cursor) -> str:
        try:
            toks = [t.spelling for t in cursor.get_tokens()]
            return " ".join(toks)
        except Exception:
            return ""

    # ------------------------------------------------------------------
    def visit_function(self, cursor, rel: str) -> None:
        from clang.cindex import CursorKind
        sem = cursor.semantic_parent
        cls = None
        if sem is not None and sem.kind in (CursorKind.CLASS_DECL,
                                            CursorKind.STRUCT_DECL,
                                            CursorKind.CLASS_TEMPLATE):
            cls = _short(sem.spelling)
        line = cursor.location.line
        key = f"{rel}:{line}:{cls}:{cursor.spelling}"
        if key in self.seen_fn_keys:
            return
        self.seen_fn_keys.add(key)
        comments = self.comments_for(rel)
        fn = Function(name=cursor.spelling, file=rel, line=line, cls=cls,
                      is_override=any(
                          c.kind == CursorKind.CXX_OVERRIDE_ATTR
                          for c in cursor.get_children()),
                      allow=_allow_tags(comments, line))
        self.model.functions.append(fn)
        self._walk_body(cursor, fn, comments)

    def _walk_body(self, cursor, fn: Function, comments) -> None:
        from clang.cindex import CursorKind
        guard_stack: List[Acquire] = []

        def expr_text(c) -> str:
            return self._extent_text(c).replace(" ", "")

        def recv_class(c) -> Optional[str]:
            try:
                t = c.type
                if t is None:
                    return None
                s = t.spelling
                s = s.replace("const", "").replace("&", "")
                s = s.replace("*", "").strip()
                return _short(s) or None
            except Exception:
                return None

        def walk(c, depth: int):
            for child in c.get_children():
                k = child.kind
                cline = child.location.line
                if k == CursorKind.VAR_DECL:
                    tname = _short(child.type.spelling)
                    if tname in _GUARD_TYPES:
                        args = list(child.get_children())
                        lock_expr = ""
                        for a in args:
                            if a.kind in (CursorKind.UNEXPOSED_EXPR,
                                          CursorKind.CALL_EXPR,
                                          CursorKind.MEMBER_REF_EXPR,
                                          CursorKind.DECL_REF_EXPR):
                                lock_expr = expr_text(a)
                                break
                        acq = Acquire(line=cline, expr=lock_expr,
                                      depth=depth,
                                      kind="try_guard"
                                      if tname == "TryLockGuard"
                                      else "guard")
                        self._resolve_acquire(acq, child)
                        fn.acquires.append(acq)
                        guard_stack.append(acq)
                elif k == CursorKind.CALL_EXPR:
                    self._call_expr(child, fn, guard_stack, comments)
                elif k in (CursorKind.BINARY_OPERATOR,
                           CursorKind.COMPOUND_ASSIGNMENT_OPERATOR):
                    self._maybe_plain_write(child, fn)
                if "MPX_MC_PLAIN" in self._extent_text(child)[:4096]:
                    fn.has_mc_plain_annotation = True
                walk(child, depth + 1)
                if k == CursorKind.COMPOUND_STMT:
                    end = child.extent.end.line
                    while guard_stack and guard_stack[-1].depth > depth:
                        guard_stack.pop().end_line = end

        walk(cursor, 0)
        end = cursor.extent.end.line
        for a in fn.acquires:
            if not a.end_line:
                a.end_line = end

    def _resolve_acquire(self, acq: Acquire, cursor) -> None:
        # Try to resolve the guarded lock to (class, field) via the last
        # MEMBER_REF_EXPR in the initializer.
        from clang.cindex import CursorKind
        target = None
        stack = [cursor]
        while stack:
            c = stack.pop()
            for ch in c.get_children():
                if ch.kind == CursorKind.MEMBER_REF_EXPR:
                    target = ch
                stack.append(ch)
        if target is None:
            return
        field = target.spelling
        ref = target.referenced
        cls = None
        if ref is not None and ref.semantic_parent is not None:
            cls = _short(ref.semantic_parent.spelling)
        if cls and field:
            acq.resolved = (cls, field)
            acq.rank = self.model.lock_rank_of(cls, field)

    def _call_expr(self, cursor, fn: Function, guard_stack, comments):
        from clang.cindex import CursorKind
        name = cursor.spelling or ""
        if not name:
            return
        held = {a.rank for a in guard_stack if a.rank}
        held_exprs = {a.expr for a in guard_stack}
        if name in _ATOMIC_METHODS:
            member, cls = "", None
            for ch in cursor.get_children():
                if ch.kind == CursorKind.MEMBER_REF_EXPR:
                    member = ch.spelling
                    obj = list(ch.get_children())
                    if obj:
                        ref = None
                        if ch.referenced is not None:
                            ref = ch.referenced.semantic_parent
                        if ref is not None:
                            cls = _short(ref.spelling)
                    break
            orders: Set[str] = set()
            text = self._extent_text(cursor)
            for tok, o in _ORDER_MAP.items():
                if tok in text.replace("::", "_"):
                    orders.add(o)
            if not orders and ("order" in text or "mo" in
                               [t for t in text.split()]):
                orders = {"forwarded"}
            fn.atomic_ops.append(AtomicOp(
                line=cursor.location.line, member=member or name,
                obj_expr=member, cls=cls, op=name, orders=orders,
                annotated_intentional=_seqcst_annotated(
                    comments, cursor.location.line)))
            return
        recv = None
        ref = cursor.referenced
        if ref is not None and ref.semantic_parent is not None and \
                ref.semantic_parent.kind in (CursorKind.CLASS_DECL,
                                             CursorKind.STRUCT_DECL):
            recv = _short(ref.semantic_parent.spelling)
        fn.calls.append(Call(line=cursor.location.line, name=name,
                             recv_cls=recv, held_ranks=held,
                             held_exprs=held_exprs))

    def _maybe_plain_write(self, cursor, fn: Function) -> None:
        from clang.cindex import CursorKind
        kids = list(cursor.get_children())
        if not kids:
            return
        lhs = kids[0]
        if lhs.kind != CursorKind.MEMBER_REF_EXPR:
            return
        cls = None
        if lhs.referenced is not None and \
                lhs.referenced.semantic_parent is not None:
            cls = _short(lhs.referenced.semantic_parent.spelling)
        fn.plain_writes.append(PlainMemberWrite(
            line=cursor.location.line, member=lhs.spelling,
            obj_expr=self._extent_text(lhs), cls=cls))


def build(files: List[str], repo_root: str,
          compile_commands: Optional[str]) -> CodeModel:
    from clang import cindex
    model = CodeModel(engine="clang")
    builder = _Builder(model, repo_root)
    model.files.extend(os.path.relpath(p, repo_root) for p in files)

    args_by_file: Dict[str, List[str]] = {}
    if compile_commands:
        try:
            db = cindex.CompilationDatabase.fromDirectory(
                os.path.dirname(os.path.abspath(compile_commands)))
            for p in files:
                cmds = db.getCompileCommands(os.path.abspath(p))
                if cmds:
                    arglist = list(cmds[0].arguments)[1:-1]
                    args_by_file[p] = [a for a in arglist
                                      if a not in ("-c", "-o")]
        except Exception as exc:
            model.diagnostics.append(
                f"clang engine: compile_commands unusable ({exc!r})")
    default_args = ["-std=c++20", f"-I{repo_root}/include",
                    f"-I{repo_root}", "-xc++"]
    parsed = 0
    for p in files:
        if p.endswith((".h", ".hpp")) and args_by_file.get(p) is None:
            args = default_args
        else:
            args = args_by_file.get(p, default_args)
        try:
            tu = _index.parse(p, args=args)
            builder.visit_tu(tu)
            parsed += 1
        except Exception as exc:
            model.diagnostics.append(
                f"clang engine: failed to parse {p}: {exc!r}")
    if parsed == 0:
        raise RuntimeError("clang engine parsed no files")
    model.comments = builder.comments  # type: ignore[attr-defined]
    return model
