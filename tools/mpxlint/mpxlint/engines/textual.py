"""Textual engine: comment/string stripping + brace-context tracking.

A deliberately conservative parser for the subset of C++ this repo writes
(clang-format Google style). It is NOT a general C++ parser; its contract
is: build the same CodeModel the clang engine would for the constructs the
checks care about (class/field decls, lock guards, atomic member ops,
calls, plain member writes), and record a diagnostic rather than guess
when resolution fails.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Set, Tuple

from .. import config
from ..model import (ATOMIC_KINDS, CONDVAR, CodeModel, ClassModel, Acquire,
                     AtomicOp, Call, Field, Function, INST_MUTEX, MC_ATOMIC,
                     MC_MUTEX, PLAIN, PlainMemberWrite, RAW_ATOMIC, RAW_MUTEX,
                     SPINLOCK)

# ---------------------------------------------------------------------------
# Pass A: strip comments and strings, preserving line structure; keep the
# comment text per line (annotations like "mpxlint: allow(...)" live there).
# ---------------------------------------------------------------------------


def strip_noncode(text: str) -> Tuple[List[str], Dict[int, str]]:
    code: List[str] = []
    comments: Dict[int, str] = {}
    i, n = 0, len(text)
    line = 1
    buf: List[str] = []

    def endline():
        nonlocal line
        code.append("".join(buf))
        buf.clear()
        line += 1

    while i < n:
        c = text[i]
        two = text[i:i + 2]
        if c == "\n":
            endline()
            i += 1
        elif two == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments[line] = comments.get(line, "") + text[i + 2:j]
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            block = text[i + 2:j]
            for k, part in enumerate(block.split("\n")):
                comments[line + k] = comments.get(line + k, "") + part
                if k:
                    endline()
            i = j + 2
        elif c == '"':
            # Skip string literal (handles escapes; raw strings R"(...)"
            # are matched on their delimiter).
            if text[i - 1:i] == "R":
                m = re.match(r'R"([^(]*)\(', text[i - 1:i + 20])
                if m:
                    end = ')%s"' % m.group(1)
                    j = text.find(end, i)
                    j = n - len(end) if j < 0 else j
                    line += text.count("\n", i, j)
                    buf.append('""')
                    i = j + len(end)
                    continue
            buf.append('"')
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    endline()
                i += 1
            buf.append('"')
            i += 1
        elif c == "'":
            buf.append("' '")
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
        else:
            buf.append(c)
            i += 1
    if buf:
        code.append("".join(buf))
    return code, comments


# ---------------------------------------------------------------------------
# Regexes shared by the statement handlers.
# ---------------------------------------------------------------------------

CLASS_HEAD_RE = re.compile(
    r"^(?:template\s*<[^{;]*?>\s*)?(?:class|struct|union)\b")
ENUM_HEAD_RE = re.compile(r"^enum\b")
NAMESPACE_HEAD_RE = re.compile(r"^(?:inline\s+)?namespace\b")
EXTERN_HEAD_RE = re.compile(r"^extern\b")
ATTR_MACRO_RE = re.compile(r"\b(?:MPX_[A-Z_]+|alignas)\s*\([^()]*\)")
GUARDED_BY_RE = re.compile(r"\bMPX_GUARDED_BY\s*\(\s*([^)]+?)\s*\)")
PT_GUARDED_BY_RE = re.compile(r"\bMPX_PT_GUARDED_BY\s*\(\s*([^)]+?)\s*\)")
RANK_RE = re.compile(r"\bLockRank::(\w+)\b")
GUARD_DECL_RE = re.compile(
    r"\b(?:base::)?(LockGuard|TryLockGuard)(?:<[^;()]*?>)?\s+\w+\s*"
    r"[({]\s*(.+?)\s*[)}]\s*;?$")
STD_GUARD_RE = re.compile(
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\s*"
    r"(?:<[^;>]*>)?\s+\w+\s*[({]\s*([^,;)}]+)")
MANUAL_LOCK_RE = re.compile(
    r"^([A-Za-z_][\w.\[\]>-]*?)\s*(?:\.|->)\s*(lock|unlock)\s*\(\s*\)\s*;?$")
ATOMIC_OP_RE = re.compile(
    r"([A-Za-z_][\w.\[\]>-]*?)\s*(?:\.|->)\s*"
    r"(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"compare_exchange_weak|compare_exchange_strong|test_and_set)\s*\(")
ORDER_NAME_RE = re.compile(r"\bmemory_order(?:::|_)(\w+)\b")
ORDER_HINT_RE = re.compile(r"memory_order|\bmo\b|\border\b")
CALL_RE = re.compile(r"(?<![\w.>])((?:\w+::)*)([A-Za-z_]\w*)\s*\(")
MEMBER_CALL_RE = re.compile(
    r"([A-Za-z_][\w.\[\]>-]*?)\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
PLAIN_WRITE_RE = re.compile(
    r"^(?:\*\s*)?([A-Za-z_][\w.\[\]>-]*?)\s*(?:\.|->)\s*([A-Za-z_]\w*)"
    r"\s*(?:=(?!=)|\+=|-=|\|=|&=|\^=|\+\+|--)")
LOCAL_DECL_RE = re.compile(
    r"^(?:const\s+)?((?:\w+(?:::\w+)*)(?:<[^;]*?>)?)\s*(?:const\s*)?"
    r"[&*]?\s+([A-Za-z_]\w*)\s*(?:=|\{|\(|;|:)")
AUTO_ACCESSOR_RE = re.compile(
    r"^(?:const\s+)?auto\s*[&*]?\s+([A-Za-z_]\w*)\s*=\s*"
    r"[\w.>-]*?([A-Za-z_]\w*)\s*\(")
KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "case", "do",
    "else", "new", "delete", "catch", "throw", "static_cast", "const_cast",
    "reinterpret_cast", "dynamic_cast", "alignof", "decltype", "assert",
    "defined", "static_assert", "noexcept", "alignas", "co_await",
    "co_return", "co_yield",
}


def _allow_tags(comments: Dict[int, str], line: int) -> Set[str]:
    out: Set[str] = set()
    for ln in (line, line - 1):
        c = comments.get(ln, "")
        m = re.search(config.ALLOW_RE, c)
        if m:
            out.update(t.strip() for t in m.group(1).split(","))
    return out


def _seqcst_annotated(comments: Dict[int, str], line: int) -> bool:
    for ln in (line, line - 1):
        if re.search(config.SEQ_CST_INTENTIONAL_RE, comments.get(ln, "")):
            return True
    return False


def classify_type(type_text: str) -> str:
    t = type_text
    if "mc::atomic" in t:
        return MC_ATOMIC
    if "std::atomic" in t:
        return RAW_ATOMIC
    if re.search(r"\bmc::(mutex|rec_mutex|spinlock)\b", t):
        return MC_MUTEX
    if "InstrumentedMutex" in t:
        return INST_MUTEX
    if re.search(r"\bSpinlock\b", t):
        return SPINLOCK
    if re.search(r"\bstd::(recursive_|shared_|timed_)?mutex\b", t):
        return RAW_MUTEX
    if "condition_variable" in t:
        return CONDVAR
    return PLAIN


# ---------------------------------------------------------------------------
# Pass B: statement scanner with a context stack.
# ---------------------------------------------------------------------------

class _Scope:
    """One open block inside a function: owns the guards declared in it."""

    def __init__(self, depth: int):
        self.depth = depth
        self.acquires: List[Acquire] = []


class _FnCtx:
    def __init__(self, fn: Function):
        self.fn = fn
        self.scopes: List[_Scope] = [_Scope(0)]
        self.locals: Dict[str, str] = {}   # var name -> class short name

    def active_acquires(self) -> List[Acquire]:
        return [a for s in self.scopes for a in s.acquires]


class _Parser:
    def __init__(self, model: CodeModel, path: str, rel: str):
        self.model = model
        self.rel = rel
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        lines, self.comments = strip_noncode(text)
        # Drop preprocessor lines (keep line count).
        self.lines = [("" if ln.lstrip().startswith("#") else ln)
                      for ln in lines]
        # ctx stack entries: ("global"|"namespace"|"class"|"enum"|"block"|
        #                     "function", payload)
        self.ctx: List[Tuple[str, object]] = [("global", None)]

    # -- context helpers ---------------------------------------------------
    def _cur_class(self) -> Optional[ClassModel]:
        for kind, payload in reversed(self.ctx):
            if kind == "class":
                return payload
        return None

    def _cur_fn(self) -> Optional[_FnCtx]:
        for kind, payload in reversed(self.ctx):
            if kind == "function":
                return payload
            if kind == "class":
                return None
        return None

    def _block_depth(self) -> int:
        return sum(1 for k, _ in self.ctx if k in ("block", "function"))

    # -- main loop ---------------------------------------------------------
    def run(self) -> None:
        buf: List[str] = []
        buf_line = 1
        buf_has_content = False
        paren = 0
        init_brace = 0
        text = "\n".join(self.lines)
        line = 1
        i, n = 0, len(text)
        while i < n:
            c = text[i]
            if not buf_has_content and not c.isspace():
                buf_line = line
                buf_has_content = True
            if c == "\n":
                line += 1
                buf.append(" ")
                i += 1
                continue
            if c == "(":
                paren += 1
            elif c == ")":
                paren = max(0, paren - 1)
            if init_brace:
                if c == "{":
                    init_brace += 1
                elif c == "}":
                    init_brace -= 1
                buf.append(c)
                i += 1
                continue
            if c == "{" and paren == 0:
                stmt = "".join(buf).strip()
                if self._brace_opens_block(stmt, buf):
                    self._open_block(stmt, buf_line)
                    buf = []
                    buf_has_content = False
                else:
                    init_brace = 1
                    buf.append(c)
                i += 1
            elif c == "{":
                # Brace inside parens (lambda argument, init list): consume
                # inline as part of the statement.
                init_brace = 1
                buf.append(c)
                i += 1
            elif c == "}" and paren == 0:
                stmt = "".join(buf).strip()
                if stmt:
                    self._statement(stmt, buf_line, line)
                self._close_block(line)
                buf = []
                buf_has_content = False
                i += 1
            elif c == ";" and paren == 0:
                stmt = "".join(buf).strip().lstrip(";").strip()
                if stmt:
                    self._statement(stmt, buf_line, line)
                buf = []
                buf_has_content = False
                i += 1
            else:
                buf.append(c)
                i += 1
        self._flush_fn_scopes(line)

    def _brace_opens_block(self, stmt: str, buf: List[str]) -> bool:
        s = stmt
        # Strip access labels that merged into the statement.
        s = re.sub(r"^(?:public|private|protected)\s*:\s*", "", s)
        if not s:
            return True
        if (CLASS_HEAD_RE.match(s) or ENUM_HEAD_RE.match(s)
                or NAMESPACE_HEAD_RE.match(s) or EXTERN_HEAD_RE.match(s)):
            return True
        last = s[-1]
        if last in ")]:;}":
            return True
        tail = s.split()[-1] if s.split() else ""
        if tail in ("else", "do", "try", "const", "override", "final",
                    "noexcept", "mutable", "->"):
            return True
        # In class/namespace scope, `name(args) const override` etc. —
        # treat any statement containing a top-level "(" as a definition
        # head (ctor-init lists end with ")" and hit the branch above; a
        # head ending in an identifier after ")" hits `tail` above).
        return False

    def _open_block(self, stmt: str, stmt_line: int) -> None:
        s = re.sub(r"^(?:public|private|protected)\s*:\s*", "", stmt)
        if NAMESPACE_HEAD_RE.match(s) or EXTERN_HEAD_RE.match(s):
            self.ctx.append(("namespace", None))
            return
        if ENUM_HEAD_RE.match(s):
            self.ctx.append(("enum", None))
            return
        if CLASS_HEAD_RE.match(s):
            self._open_class(s, stmt_line)
            return
        fn = self._cur_fn()
        if fn is not None:
            # Opening a nested block: first process the statement head
            # (e.g. `for (...)` declares loop locals, `if (...)` has calls).
            if s:
                self._statement(s, stmt_line, stmt_line, is_block_head=True)
            self.ctx.append(("block", None))
            fn.scopes.append(_Scope(self._block_depth()))
            return
        # Function definition head at class/namespace/global scope.
        if "(" in s:
            self._open_function(s, stmt_line)
        else:
            self.ctx.append(("block", None))

    def _open_class(self, s: str, line: int) -> None:
        head = re.sub(r"^template\s*<[^{;]*?>\s*", "", s)
        head = re.sub(r"^(class|struct|union)\s+", "", head)
        head = ATTR_MACRO_RE.sub(" ", head)
        head = re.sub(r"\[\[[^\]]*\]\]", " ", head)
        m = re.match(r"\s*([A-Za-z_]\w*)", head)
        if not m:
            self.ctx.append(("block", None))
            return
        name = m.group(1)
        # Nested classes are keyed Outer::Inner so that same-named nested
        # types (Nic::Channel vs ShmTransport::Channel) stay distinct.
        outer = self._cur_class()
        if outer is not None:
            name = f"{outer.name}::{name}"
        bases: List[str] = []
        colon = self._toplevel_colon(head)
        if colon >= 0:
            for part in head[colon + 1:].split(","):
                part = re.sub(r"\b(public|private|protected|virtual)\b", "",
                              part).strip()
                part = re.sub(r"<.*", "", part)
                if part:
                    bases.append(part.split("::")[-1].strip())
        cm = self.model.classes.get(name)
        if cm is None:
            cm = ClassModel(name=name, file=self.rel, line=line, bases=bases)
            self.model.classes[name] = cm
        else:
            for b in bases:
                if b not in cm.bases:
                    cm.bases.append(b)
        self.ctx.append(("class", cm))

    @staticmethod
    def _toplevel_colon(s: str) -> int:
        depth = 0
        i = 0
        while i < len(s):
            c = s[i]
            if c == "<":
                depth += 1
            elif c == ">":
                depth = max(0, depth - 1)
            elif c == ":" and depth == 0:
                if i + 1 < len(s) and s[i + 1] == ":":
                    i += 2
                    continue
                return i
            i += 1
        return -1

    def _open_function(self, s: str, line: int) -> None:
        pre = s.split("(", 1)[0].rstrip()
        chunk = pre.split()[-1] if pre.split() else ""
        chunk = chunk.lstrip("*&~")
        parts = chunk.split("::")
        name = parts[-1] if parts else ""
        cls: Optional[str] = None
        if len(parts) >= 2 and parts[-2] and parts[-2][0].isupper():
            cls = parts[-2]
        ctx_cls = self._cur_class()
        if cls is None and ctx_cls is not None:
            cls = ctx_cls.name
        if pre.endswith("~"):
            name = "~" + name
        fn = Function(name=name, file=self.rel, line=line, cls=cls,
                      is_override=bool(re.search(r"\boverride\b", s)),
                      signature=s)
        fn.allow = _allow_tags(self.comments, line)
        fctx = _FnCtx(fn)
        self._seed_params(fctx, s)
        self.model.functions.append(fn)
        self.ctx.append(("function", fctx))

    def _seed_params(self, fctx: _FnCtx, sig: str) -> None:
        m = re.search(r"\((.*)\)", sig)
        if not m:
            return
        args, depth = [], 0
        cur = []
        for c in m.group(1):
            if c in "<([":
                depth += 1
            elif c in ">)]":
                depth -= 1
            if c == "," and depth == 0:
                args.append("".join(cur))
                cur = []
            else:
                cur.append(c)
        args.append("".join(cur))
        for a in args:
            am = re.match(
                r"\s*(?:const\s+)?((?:\w+(?:::\w+)*)(?:<[^)]*?>)?)\s*"
                r"(?:const\s*)?[&*]*\s*([A-Za-z_]\w*)\s*(?:=[^,]*)?$", a)
            if am:
                fctx.locals[am.group(2)] = am.group(1).split("::")[-1]

    def _close_block(self, line: int) -> None:
        if len(self.ctx) <= 1:
            return
        kind, _ = self.ctx[-1]
        if kind == "function":
            fctx = self.ctx[-1][1]
            for scope in fctx.scopes:
                for a in scope.acquires:
                    if not a.end_line:
                        a.end_line = line
        elif kind == "block":
            fctx = self._cur_fn()
            if fctx is not None and len(fctx.scopes) > 1:
                scope = fctx.scopes.pop()
                for a in scope.acquires:
                    if not a.end_line:
                        a.end_line = line
        self.ctx.pop()

    def _flush_fn_scopes(self, line: int) -> None:
        while len(self.ctx) > 1:
            self._close_block(line)

    # -- statement handlers ------------------------------------------------
    def _statement(self, stmt: str, line: int, end_line: int,
                   is_block_head: bool = False) -> None:
        stmt = re.sub(r"^(?:public|private|protected)\s*:\s*", "", stmt)
        stmt = re.sub(r"^(?:case\s+[^:]+|default)\s*:\s*", "", stmt)
        if not stmt:
            return
        fctx = self._cur_fn()
        if fctx is not None:
            self._body_statement(fctx, stmt, line, is_block_head)
            return
        kind, payload = self.ctx[-1]
        if kind == "class":
            self._field_statement(payload, stmt, line)

    def _field_statement(self, cm: ClassModel, stmt: str, line: int) -> None:
        s = stmt.strip()
        if re.search(r"\boperator\b", s):
            return  # operator overload decl (e.g. `T& operator=(...) = delete`)
        if re.match(r"^(using|typedef|friend|static_assert|template|enum|"
                    r"class|struct|union|explicit|operator|virtual\s+~|~)",
                    s):
            # `virtual void poll(...) = 0` etc. fall through to the
            # `(`-check below; pure using/typedef/friend lines stop here.
            if re.match(r"^(using|typedef|friend|static_assert)", s):
                return
        allow = _allow_tags(self.comments, line)
        guarded = GUARDED_BY_RE.search(s)
        pt_guarded = PT_GUARDED_BY_RE.search(s)
        rank_m = RANK_RE.search(s)
        body = GUARDED_BY_RE.sub(" ", s)
        body = PT_GUARDED_BY_RE.sub(" ", body)
        body = re.sub(r"\balignas\s*\([^()]*\)", " ", body)
        body = re.sub(r"\[\[[^\]]*\]\]", " ", body)
        # Strip initializer: first top-level '=' or '{'.
        depth = 0
        cut = -1
        for i, c in enumerate(body):
            if c in "<([":
                depth += 1
            elif c in ">)]":
                depth = max(0, depth - 1)
            elif depth == 0 and (c == "{" or (c == "=" and
                                              body[i:i + 2] != "==")):
                cut = i
                break
        if cut >= 0:
            body = body[:cut]
        body = body.strip().rstrip(";").strip()
        is_static = bool(re.match(r"^\s*static\b", body))
        is_const = bool(re.search(r"\b(const|constexpr)\b", body))
        body = re.sub(r"^\s*(static|mutable|constexpr|inline|const)\b\s*",
                      "", body)
        body = re.sub(r"^\s*(static|mutable|constexpr|inline|const)\b\s*",
                      "", body)
        if "(" in body or not body:
            return  # method declaration / ctor / operator
        m = re.match(r"^(.*?[\s&*>])\s*([A-Za-z_]\w*)$", body)
        if not m:
            return
        type_text, name = m.group(1).strip(), m.group(2)
        if not type_text or type_text in ("return",):
            return
        f = Field(name=name, type_text=type_text, line=line,
                  kind=classify_type(type_text),
                  guarded_by=guarded.group(1) if guarded else None,
                  pt_guarded_by=pt_guarded.group(1) if pt_guarded else None,
                  rank=rank_m.group(1) if rank_m else None,
                  is_static=is_static, is_const=is_const, allow=allow)
        # A lock member with no LockRank arg is unranked.
        cm.fields.setdefault(name, f)

    # -- function body events ----------------------------------------------
    def _body_statement(self, fctx: _FnCtx, stmt: str, line: int,
                        is_block_head: bool) -> None:
        fn = fctx.fn
        fn.allow |= _allow_tags(self.comments, line)
        if "MPX_MC_PLAIN_WRITE" in stmt or "MPX_MC_PLAIN_READ" in stmt:
            fn.has_mc_plain_annotation = True

        self._extract_locals(fctx, stmt)
        acquired_here = self._extract_guards(fctx, stmt, line)
        self._extract_atomics(fctx, stmt, line)
        self._extract_calls(fctx, stmt, line, acquired_here)
        self._extract_plain_writes(fctx, stmt, line)

    def _extract_locals(self, fctx: _FnCtx, stmt: str) -> None:
        # `auto* x = static_cast<Foo*>(...)` — type from the cast.
        cm = re.match(r"^(?:const\s+)?auto\s*[&*]?\s+([A-Za-z_]\w*)\s*=\s*"
                      r"(?:static_cast|reinterpret_cast|dynamic_cast)\s*<"
                      r"\s*(?:const\s+)?([\w:]+)", stmt)
        if cm:
            fctx.locals[cm.group(1)] = cm.group(2).split("::")[-1]
            return
        m = AUTO_ACCESSOR_RE.match(stmt)
        if m:
            ret = config.ACCESSOR_RETURN_TYPES.get(m.group(2))
            if ret:
                fctx.locals[m.group(1)] = ret
            return
        m = LOCAL_DECL_RE.match(stmt)
        if m and m.group(1) not in ("return", "delete", "throw", "goto",
                                    "new", "else", "auto"):
            base = re.sub(r"<.*", "", m.group(1)).split("::")[-1]
            if base not in KEYWORDS:
                fctx.locals.setdefault(m.group(2), base)
        # for-loop heads: `for (int i = 0; ...; ...)`
        fm = re.match(r"^for\s*\((.*)$", stmt)
        if fm:
            dm = LOCAL_DECL_RE.match(fm.group(1).strip())
            if dm:
                base = re.sub(r"<.*", "", dm.group(1)).split("::")[-1]
                fctx.locals.setdefault(dm.group(2), base)

    def _extract_guards(self, fctx: _FnCtx, stmt: str,
                        line: int) -> List[Acquire]:
        out: List[Acquire] = []
        kind = None
        expr = None
        m = GUARD_DECL_RE.search(stmt)
        if m:
            kind = "try_guard" if m.group(1) == "TryLockGuard" else "guard"
            expr = m.group(2).split(",")[0].strip()
        else:
            m2 = STD_GUARD_RE.search(stmt)
            if m2:
                kind = "guard"
                expr = m2.group(1).strip()
            else:
                m3 = MANUAL_LOCK_RE.match(stmt)
                if m3:
                    if m3.group(2) == "unlock":
                        self._close_manual(fctx, m3.group(1), line)
                        return out
                    kind = "manual"
                    expr = m3.group(1)
        if not expr:
            return out
        cls, field = self._owner_of_member(fctx, expr)
        rank = None
        if cls and field:
            f = self.model.classes.get(cls, ClassModel("", "")).field(field)
            if f is not None:
                if f.kind not in (INST_MUTEX, SPINLOCK, RAW_MUTEX, MC_MUTEX):
                    return out  # resolved to a non-lock member: not a guard
                rank = f.rank
        a = Acquire(line=line, expr=expr,
                    resolved=(cls, field) if cls and field else None,
                    rank=rank, depth=self._block_depth(), kind=kind or "guard")
        fctx.scopes[-1].acquires.append(a)
        fctx.fn.acquires.append(a)
        out.append(a)
        return out

    def _close_manual(self, fctx: _FnCtx, expr: str, line: int) -> None:
        for scope in reversed(fctx.scopes):
            for a in reversed(scope.acquires):
                if a.kind == "manual" and a.expr == expr and not a.end_line:
                    a.end_line = line
                    scope.acquires.remove(a)
                    return

    def _extract_atomics(self, fctx: _FnCtx, stmt: str, line: int) -> None:
        for m in ATOMIC_OP_RE.finditer(stmt):
            obj, op = m.group(1), m.group(2)
            args = self._call_args(stmt, m.end())
            orders: Set[str] = set(ORDER_NAME_RE.findall(args))
            if not orders and ORDER_HINT_RE.search(args):
                orders = {"forwarded"}
            cls, member = self._owner_of_member(fctx, obj)
            fctx.fn.atomic_ops.append(AtomicOp(
                line=line, member=member or obj,
                obj_expr=obj, cls=cls, op=op, orders=orders,
                annotated_intentional=_seqcst_annotated(self.comments,
                                                        line)))

    @staticmethod
    def _call_args(stmt: str, start: int) -> str:
        depth = 1
        i = start
        while i < len(stmt) and depth:
            if stmt[i] == "(":
                depth += 1
            elif stmt[i] == ")":
                depth -= 1
            i += 1
        return stmt[start:i - 1] if depth == 0 else stmt[start:]

    def _extract_calls(self, fctx: _FnCtx, stmt: str, line: int,
                       acquired_here: List[Acquire]) -> None:
        held = {a.rank for a in fctx.active_acquires()
                if a.rank and a not in acquired_here}
        held_exprs = {a.expr for a in fctx.active_acquires()
                      if a not in acquired_here}
        seen: Set[Tuple[str, Optional[str]]] = set()
        for m in MEMBER_CALL_RE.finditer(stmt):
            obj, name = m.group(1), m.group(2)
            if name in KEYWORDS or name in config.ATOMIC_ORDER_METHODS:
                continue
            cls = self._type_of_expr(fctx, obj)
            if (name, cls) in seen:
                continue
            seen.add((name, cls))
            fctx.fn.calls.append(Call(line=line, name=name, recv_cls=cls,
                                      held_ranks=set(held),
                                      held_exprs=set(held_exprs)))
        for m in CALL_RE.finditer(stmt):
            name = m.group(2)
            pre = stmt[:m.start()].rstrip()
            if pre.endswith(".") or pre.endswith("->"):
                continue  # member call, handled above
            if name in KEYWORDS or name.startswith("MPX_"):
                continue
            if name[0].isupper():
                continue  # constructor / type
            if (name, None) in seen:
                continue
            seen.add((name, None))
            fctx.fn.calls.append(Call(
                line=line, name=name, recv_cls=None,
                qualifier=m.group(1).rstrip(":"),
                held_ranks=set(held), held_exprs=set(held_exprs)))

    def _extract_plain_writes(self, fctx: _FnCtx, stmt: str,
                              line: int) -> None:
        if LOCAL_DECL_RE.match(stmt) or AUTO_ACCESSOR_RE.match(stmt):
            return
        m = PLAIN_WRITE_RE.match(stmt)
        if not m:
            return
        obj, member = m.group(1), m.group(2)
        cls, field = self._owner_of_member(fctx, f"{obj}.{member}")
        fctx.fn.plain_writes.append(PlainMemberWrite(
            line=line, member=member, obj_expr=obj, cls=cls))

    # -- expression resolution ---------------------------------------------
    @staticmethod
    def _split_expr(expr: str) -> List[str]:
        parts = re.split(r"->|\.", re.sub(r"\[[^\]]*\]", "", expr))
        return [p.strip() for p in parts if p.strip()]

    def _lookup_class(self, name: Optional[str],
                      ctx_cls: Optional[str]) -> Optional[str]:
        """Resolve a (possibly short) class name to a model key.

        Nested classes are keyed Outer::Inner; resolution prefers the
        innermost enclosing scope of `ctx_cls`, then the global name, then
        a unique ::name suffix match (ambiguous -> None, never a guess)."""
        if not name:
            return None
        classes = self.model.classes
        if ctx_cls:
            parts = ctx_cls.split("::")
            for i in range(len(parts), 0, -1):
                cand = "::".join(parts[:i] + [name])
                if cand in classes:
                    return cand
        if name in classes:
            return name
        hits = [k for k in classes if k.endswith("::" + name)]
        return hits[0] if len(hits) == 1 else None

    def _type_of_expr(self, fctx: Optional[_FnCtx],
                      expr: str) -> Optional[str]:
        """Class (model key) of the expression's static type, or None."""
        parts = self._split_expr(expr)
        if not parts:
            return None
        head = parts[0]
        cur: Optional[str] = None
        fn_cls = fctx.fn.cls if fctx else None
        owner = self._lookup_class(fn_cls, None) if fn_cls else None
        ocm = self.model.classes.get(owner) if owner else None
        if head == "this":
            cur = owner or fn_cls
        elif fctx and head in fctx.locals:
            cur = self._lookup_class(fctx.locals[head], owner or fn_cls)
        elif ocm is not None and ocm.field(head):
            cur = self._lookup_class(
                self._class_of_type(ocm.fields[head].type_text), owner)
        else:
            owners = [c for c in self.model.classes.values()
                      if c.field(head)]
            if len(owners) == 1:
                cur = self._lookup_class(
                    self._class_of_type(owners[0].fields[head].type_text),
                    owners[0].name)
            else:
                return None
        for nxt in parts[1:]:
            if cur is None:
                return None
            cm = self.model.classes.get(cur)
            fl = cm.field(nxt) if cm else None
            cur = (self._lookup_class(self._class_of_type(fl.type_text), cur)
                   if fl else None)
        return cur

    def _owner_of_member(self, fctx: Optional[_FnCtx], expr: str
                         ) -> Tuple[Optional[str], Optional[str]]:
        """Resolve `a.b.c` to (class owning field `c`, "c")."""
        parts = self._split_expr(expr)
        if not parts:
            return None, None
        member = parts[-1]
        chain = parts[:-1]
        if chain:
            owner = self._type_of_expr(fctx, ".".join(chain))
            if owner and self.model.classes.get(owner) and \
                    self.model.classes[owner].field(member):
                return owner, member
        else:
            fn_cls = fctx.fn.cls if fctx else None
            owner = self._lookup_class(fn_cls, None) if fn_cls else None
            if owner and self.model.classes[owner].field(member):
                return owner, member
        owners = [c.name for c in self.model.classes.values()
                  if c.field(member)]
        if len(owners) == 1:
            return owners[0], member
        return None, member

    @staticmethod
    def _class_of_type(type_text: str) -> Optional[str]:
        t = re.sub(r"\b(const|std::unique_ptr|std::shared_ptr)\b", " ",
                   type_text)
        t = t.replace("<", " ").replace(">", " ")
        t = t.replace("*", " ").replace("&", " ")
        toks = [tok.split("::")[-1] for tok in t.split() if tok]
        for tok in reversed(toks):
            if tok and tok[0].isupper():
                return tok
        return None


# ---------------------------------------------------------------------------


def build(files: List[str], repo_root: str) -> CodeModel:
    model = CodeModel(engine="textual")
    ordered = sorted(files, key=lambda p: (not p.endswith((".hpp", ".h")), p))
    rels = [os.path.relpath(p, repo_root) for p in ordered]
    model.files.extend(rels)
    comments: Dict[str, Dict[int, str]] = {}
    # Two passes: first all files for class/field decls, then again so
    # function bodies resolve against the complete class table.
    for phase in ("decls", "bodies"):
        if phase == "bodies":
            model.functions.clear()
        for path, rel in zip(ordered, rels):
            try:
                p = _Parser(model, path, rel)
                p.run()
                comments[rel] = p.comments
            except Exception as exc:  # pragma: no cover - defensive
                model.diagnostics.append(
                    f"textual engine: failed to parse {rel}: {exc!r}")
    # Per-line comment maps for checks that need annotation context.
    model.comments = comments  # type: ignore[attr-defined]
    return model
