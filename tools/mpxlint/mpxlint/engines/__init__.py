"""Engine selection: clang.cindex when importable + loadable, else textual.

Both engines return the same CodeModel; checks never know which ran."""

from __future__ import annotations

from typing import List, Optional


def build_model(files: List[str], repo_root: str,
                engine: str = "auto",
                compile_commands: Optional[str] = None):
    """Build a CodeModel from `files` with the requested engine.

    engine: "auto" | "clang" | "textual". "auto" prefers clang when the
    Python bindings and a loadable libclang exist, and degrades to the
    textual engine with a note otherwise. A clang engine that fails part
    way (bad compile commands, parse crash) also falls back.
    """
    notes: List[str] = []
    if engine in ("auto", "clang"):
        try:
            from . import clang_engine
            if clang_engine.available():
                model = clang_engine.build(files, repo_root, compile_commands)
                model.engine = "clang"
                model.diagnostics = notes + model.diagnostics
                return model
            notes.append("libclang not available; using textual engine "
                         "(CI installs libclang for the AST engine)")
        except Exception as exc:  # pragma: no cover - defensive
            notes.append(f"clang engine failed ({exc!r}); "
                         "falling back to textual engine")
        if engine == "clang":
            notes.append("engine=clang was requested but is unavailable")
    from . import textual
    model = textual.build(files, repo_root)
    model.engine = "textual"
    model.diagnostics = notes + model.diagnostics
    return model
