"""Findings, baselines, and output formatting (human + JSON)."""

from __future__ import annotations

import dataclasses
import json
import sys
from typing import Dict, List, Optional


@dataclasses.dataclass
class Finding:
    check: str                 # check id, e.g. "lock-rank"
    file: str                  # repo-relative path
    line: int
    message: str
    key: str = ""              # stable identity for baselining (no lines)
    severity: str = "error"

    def __post_init__(self):
        if not self.key:
            self.key = f"{self.check}:{self.file}:{self.message}"

    def to_json(self) -> Dict:
        return {
            "check": self.check,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "key": self.key,
            "severity": self.severity,
        }


class Baseline:
    """Checked-in set of accepted finding keys (tools/mpxlint/baseline.json).

    Keys are line-number-free so unrelated edits don't invalidate them.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.entries: Dict[str, str] = {}   # key -> reason
        if path:
            try:
                with open(path, encoding="utf-8") as f:
                    data = json.load(f)
                for e in data.get("findings", []):
                    self.entries[e["key"]] = e.get("reason", "")
            except FileNotFoundError:
                pass

    def covers(self, finding: Finding) -> bool:
        return finding.key in self.entries

    def write(self, findings: List[Finding]) -> None:
        assert self.path
        data = {
            "comment": "mpxlint baseline: accepted findings by stable key. "
                       "Prefer inline '// mpxlint: allow(<check>)' for new "
                       "code; baseline entries need a reason.",
            "findings": sorted(
                ({"key": f.key, "reason": self.entries.get(f.key, "baselined")}
                 for f in findings),
                key=lambda e: e["key"]),
        }
        with open(self.path, "w", encoding="utf-8") as f:
            json.dump(data, f, indent=2)
            f.write("\n")


def emit_human(findings: List[Finding], diagnostics: List[str],
               engine: str, stream=None) -> None:
    out = stream or sys.stdout
    for d in diagnostics:
        print(f"mpxlint: note: {d}", file=out)
    for f in sorted(findings, key=lambda x: (x.file, x.line, x.check)):
        print(f"{f.file}:{f.line}: {f.severity}: [{f.check}] {f.message}",
              file=out)
    n = len(findings)
    print(f"mpxlint ({engine} engine): "
          f"{n} finding{'s' if n != 1 else ''}", file=out)


def emit_json(findings: List[Finding], diagnostics: List[str],
              engine: str, path: Optional[str] = None) -> None:
    doc = {
        "tool": "mpxlint",
        "engine": engine,
        "findings": [f.to_json() for f in
                     sorted(findings, key=lambda x: (x.file, x.line))],
        "diagnostics": diagnostics,
    }
    text = json.dumps(doc, indent=2) + "\n"
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
