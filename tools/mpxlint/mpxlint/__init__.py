"""mpxlint: static invariant checker for the mpx concurrency model.

Five checks, each a plugin over an engine-built CodeModel:

  lock-rank          held-while-acquiring graph must respect LockRank order
  mc-coverage        modeled protocol files use mc:: shims + PLAIN annotations
  memory-order       release/acquire pairing per atomic member, implicit
                     seq_cst detection (successor of scripts/check_atomics.py)
  progress-contract  ProgressSource::poll/idle must not block or re-enter
                     progress-engine locks
  tsa-ratchet        mutex-guarded fields must carry MPX_GUARDED_BY

Two engines produce the same CodeModel: a libclang (clang.cindex) engine
driven by compile_commands.json, and a textual engine (comment/string
stripping + brace tracking) used when libclang is unavailable.
"""

__version__ = "1.0"
