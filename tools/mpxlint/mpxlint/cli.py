"""Command-line driver.

  python3 tools/mpxlint include src            # lint the tree
  python3 tools/mpxlint --json-file report.json include src
  python3 tools/mpxlint --check lock-rank src  # single check
  python3 tools/mpxlint --update-baseline ...  # accept current findings

Exit codes: 0 clean, 1 findings, 2 usage/internal error — the same
contract scripts/check_atomics.py had.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

from . import __version__, config
from .checks import all_checks, run_checks
from .engines import build_model
from .report import Baseline, emit_human, emit_json


def _default_repo_root() -> str:
    # tools/mpxlint/mpxlint/cli.py -> repo root is three dirs up.
    return os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", ".."))


def collect_files(paths: List[str], repo_root: str) -> List[str]:
    out: List[str] = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(repo_root, p)
        if os.path.isfile(ap):
            out.append(ap)
        elif os.path.isdir(ap):
            for dirpath, _dirnames, filenames in os.walk(ap):
                for fname in sorted(filenames):
                    if fname.endswith(config.SOURCE_EXTS):
                        out.append(os.path.join(dirpath, fname))
        else:
            raise FileNotFoundError(p)
    return sorted(set(out))


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="mpxlint",
        description="Static invariant checker for the mpx concurrency "
                    "model (lock ranks, mc-shim coverage, memory-order "
                    "pairing, progress-source contracts, TSA coverage).")
    ap.add_argument("paths", nargs="*", default=["include", "src"],
                    help="files or directories to lint "
                         "(default: include src)")
    ap.add_argument("--repo-root", default=_default_repo_root())
    ap.add_argument("--engine", choices=("auto", "clang", "textual"),
                    default="auto")
    ap.add_argument("--compile-commands", default=None,
                    help="path to compile_commands.json (clang engine)")
    ap.add_argument("--check", action="append", dest="checks",
                    metavar="ID", help="run only this check (repeatable)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--json", action="store_true",
                    help="emit the JSON report to stdout")
    ap.add_argument("--json-file", default=None, metavar="FILE",
                    help="write the JSON report to FILE (human report "
                         "still goes to stdout)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default: "
                         "tools/mpxlint/baseline.json)")
    ap.add_argument("--tsa-baseline", default=None,
                    help="TSA exemption file (default: "
                         "tools/mpxlint/tsa_baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore baseline files (fixture self-tests)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="write current findings into the baseline")
    ap.add_argument("--version", action="version",
                    version=f"mpxlint {__version__}")
    args = ap.parse_args(argv)

    if args.list_checks:
        for cid in all_checks():
            print(cid)
        return 0

    root = os.path.abspath(args.repo_root)
    baseline_path = args.baseline or os.path.join(
        root, "tools", "mpxlint", "baseline.json")
    tsa_path = args.tsa_baseline or os.path.join(
        root, "tools", "mpxlint", "tsa_baseline.json")

    try:
        files = collect_files(args.paths, root)
    except FileNotFoundError as exc:
        print(f"mpxlint: error: no such path: {exc}", file=sys.stderr)
        return 2
    if not files:
        print("mpxlint: error: no source files found", file=sys.stderr)
        return 2

    cc = args.compile_commands
    if cc is None:
        for cand in ("build", "build-default"):
            p = os.path.join(root, cand, "compile_commands.json")
            if os.path.exists(p):
                cc = p
                break

    try:
        model = build_model(files, root, engine=args.engine,
                            compile_commands=cc)
    except Exception as exc:
        print(f"mpxlint: internal error building model: {exc!r}",
              file=sys.stderr)
        return 2

    tsa_baseline = {}
    if not args.no_baseline and os.path.exists(tsa_path):
        try:
            with open(tsa_path, encoding="utf-8") as f:
                tsa_baseline = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"mpxlint: error reading {tsa_path}: {exc}",
                  file=sys.stderr)
            return 2

    findings = run_checks(model, root, only=args.checks,
                          tsa_baseline=tsa_baseline)

    baseline = Baseline(None if args.no_baseline else baseline_path)
    if args.update_baseline:
        baseline.path = baseline_path
        baseline.entries.update({f.key: "baselined" for f in findings})
        baseline.write(findings)
        print(f"mpxlint: wrote {len(findings)} entries to {baseline_path}")
        return 0
    fresh = [f for f in findings if not baseline.covers(f)]

    if args.json_file:
        emit_json(fresh, model.diagnostics, model.engine, args.json_file)
    if args.json:
        emit_json(fresh, model.diagnostics, model.engine, None)
    if not args.json:
        emit_human(fresh, model.diagnostics, model.engine)
    return 1 if fresh else 0
