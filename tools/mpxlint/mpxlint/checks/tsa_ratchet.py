"""tsa-ratchet: MPX_GUARDED_BY coverage must not regress.

For every class owning an annotated-capability lock (InstrumentedMutex /
Spinlock), every plain data member is a candidate that should carry
MPX_GUARDED_BY / MPX_PT_GUARDED_BY. Not candidates: the locks themselves,
atomics (they synchronize themselves), condition variables, internally
synchronized types (config.INTERNALLY_SYNCED_TYPES), static/constexpr
members, and fields with an inline `// mpxlint: allow(tsa-ratchet)`
(immutable-after-init fields, consumer-serialized state, ...).

Every uncovered candidate is a finding unless listed in the checked-in
exemption file (tools/mpxlint/tsa_baseline.json) — so coverage can only
ratchet up: new guarded fields must be annotated or explicitly exempted
with a reason.
"""

from __future__ import annotations

from typing import List

from .. import config
from ..model import (ATOMIC_KINDS, CAPABILITY_LOCK_KINDS, CONDVAR,
                     LOCK_KINDS, PLAIN)
from ..report import Finding

CHECK_ID = "tsa-ratchet"


def run(ctx) -> List[Finding]:
    model = ctx.model
    exempt = set(ctx.tsa_baseline.get("exempt", []))
    findings: List[Finding] = []
    total = annotated = 0
    for cm in sorted(model.classes.values(), key=lambda c: c.name):
        # A lock *pointer* is not an owned capability — borrowing a lock
        # (CopyOp::counter_mu) doesn't make the class's fields candidates.
        locks = [f for f in cm.fields.values()
                 if f.kind in CAPABILITY_LOCK_KINDS
                 and "*" not in f.type_text and "&" not in f.type_text]
        if not locks:
            continue
        for f in cm.fields.values():
            if f.kind in LOCK_KINDS or f.kind in ATOMIC_KINDS or \
                    f.kind == CONDVAR:
                continue
            if f.is_static or f.is_const:
                continue
            if any(t in f.type_text for t in
                   config.INTERNALLY_SYNCED_TYPES):
                continue
            if CHECK_ID in f.allow or ctx.allowed(cm.file, f.line, CHECK_ID):
                continue
            total += 1
            if f.guarded_by or f.pt_guarded_by:
                annotated += 1
                continue
            key = f"{CHECK_ID}:{cm.name}::{f.name}"
            if f"{cm.name}::{f.name}" in exempt:
                continue
            findings.append(Finding(
                check=CHECK_ID, file=cm.file, line=f.line,
                message=(f"{cm.name} owns a capability lock but field "
                         f"'{f.name}' has no MPX_GUARDED_BY/"
                         "MPX_PT_GUARDED_BY; annotate it, mark it "
                         "`// mpxlint: allow(tsa-ratchet) <why>`, or add "
                         "it to tsa_baseline.json with a reason"),
                key=key))
    return findings
