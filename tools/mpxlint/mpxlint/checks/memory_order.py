"""memory-order: pairing analysis per atomic member + implicit seq_cst.

Three rules:

  pairing     — per atomic member across the whole TU set: a release
                store with no acquire/consume-side load or RMW anywhere
                (the published data has no reader ordering onto it), or
                an acquire load with no release-side store/RMW (there is
                nothing to synchronize with), is a finding. `forwarded`
                orders (an `mo`/`order` parameter) satisfy both sides.

  mixed-store — a relaxed store to a member that elsewhere uses release
                stores: the relaxed path silently breaks the publish
                protocol on that member.

  implicit    — the scripts/check_atomics.py rule, verbatim semantics:
                any atomic op without an explicit order argument is an
                implicit seq_cst; flagged unless annotated
                `// mo: seq_cst intentional` on the same or prior line.
"""

from __future__ import annotations

from typing import Dict, List

from .. import config
from ..model import ATOMIC_KINDS
from ..report import Finding

CHECK_ID = "memory-order"

_RELEASE_SIDE = {"release", "acq_rel", "seq_cst", "forwarded"}
_ACQUIRE_SIDE = {"acquire", "consume", "acq_rel", "seq_cst", "forwarded"}
_RMW_OPS = {"exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
            "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
            "test_and_set"}


def run(ctx) -> List[Finding]:
    model = ctx.model
    findings: List[Finding] = []

    # Group ops over resolved atomic members, excluding the mc shim layer
    # (it forwards orders by design).
    groups: Dict[str, List] = {}
    for fn in model.functions:
        if ctx.in_fileset(fn.file, config.MC_SHIM_FILES):
            continue
        for op in fn.atomic_ops:
            # implicit-seq_cst rule (engine-resolved or not).
            if not op.orders and not op.annotated_intentional and \
                    not ctx.allowed(fn.file, op.line, CHECK_ID):
                findings.append(Finding(
                    check=CHECK_ID, file=fn.file, line=op.line,
                    message=(f"atomic {op.op} on '{op.obj_expr}' without an "
                             "explicit memory order (implicit seq_cst); "
                             "state the order, or annotate "
                             "`// mo: seq_cst intentional`"),
                    key=(f"{CHECK_ID}:implicit:{fn.file}:"
                         f"{fn.name}:{op.obj_expr}.{op.op}")))
            if op.cls is None:
                continue
            c = model.classes.get(op.cls)
            f = c.field(op.member) if c else None
            if f is None or f.kind not in ATOMIC_KINDS:
                continue
            if CHECK_ID in f.allow:
                continue
            groups.setdefault(f"{op.cls}::{op.member}", []).append((fn, op))

    for key, ops in sorted(groups.items()):
        orders_all = set()
        for _, op in ops:
            orders_all |= op.orders if op.orders else {"seq_cst"}
        release_side = any(
            (op.op == "store" or op.op in _RMW_OPS) and
            ((op.orders or {"seq_cst"}) & _RELEASE_SIDE)
            for _, op in ops)
        acquire_side = any(
            (op.op == "load" or op.op in _RMW_OPS) and
            ((op.orders or {"seq_cst"}) & _ACQUIRE_SIDE)
            for _, op in ops)
        rel_stores = [(fn, op) for fn, op in ops
                      if op.op == "store" and "release" in op.orders]
        acq_loads = [(fn, op) for fn, op in ops
                     if op.op == "load" and
                     (op.orders & {"acquire", "consume"})]

        if rel_stores and not acquire_side:
            fn, op = rel_stores[0]
            if not ctx.allowed(fn.file, op.line, CHECK_ID):
                findings.append(Finding(
                    check=CHECK_ID, file=fn.file, line=op.line,
                    message=(f"release store to {key} has no acquire/"
                             "consume-side load or RMW anywhere in the "
                             "scanned TU set: nothing orders readers "
                             "after this publish"),
                    key=f"{CHECK_ID}:unpaired-release:{key}"))
        if acq_loads and not release_side:
            fn, op = acq_loads[0]
            if not ctx.allowed(fn.file, op.line, CHECK_ID):
                findings.append(Finding(
                    check=CHECK_ID, file=fn.file, line=op.line,
                    message=(f"acquire load of {key} has no release-side "
                             "store or RMW anywhere in the scanned TU "
                             "set: there is nothing to synchronize with "
                             "(did you mean relaxed?)"),
                    key=f"{CHECK_ID}:unpaired-acquire:{key}"))
        # mixed-store: relaxed store on a member that publishes elsewhere.
        if rel_stores:
            for fn, op in ops:
                if op.op == "store" and op.orders == {"relaxed"} and \
                        not ctx.allowed(fn.file, op.line, CHECK_ID):
                    findings.append(Finding(
                        check=CHECK_ID, file=fn.file, line=op.line,
                        message=(f"relaxed store to {key}, which is "
                                 "published with release stores "
                                 "elsewhere: this path breaks the "
                                 "member's publish protocol"),
                        key=(f"{CHECK_ID}:mixed-store:{key}:"
                             f"{fn.name}")))
    return findings
