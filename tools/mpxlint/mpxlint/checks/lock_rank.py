"""lock-rank: static lock-order validation against LockRank declarations.

Builds the held-while-acquiring graph from every function body:

  * a guard (LockGuard/TryLockGuard/std guards) or manual .lock() whose
    scope contains another acquisition adds a direct edge held -> new;
  * a call made while a ranked lock is held adds edges from the held rank
    to every rank the callee may transitively acquire. Callees resolve
    through receiver types (same conservative-quiet rules as the
    progress-contract walk): a member call whose receiver class is
    unknown propagates nothing, so generic names like `empty`/`front`
    never inherit ranks from unrelated classes.

A direct edge to a rank <= the held rank is a violation (the runtime
validator would abort there) unless both sites are the same lock
expression (recursive re-acquire, which InstrumentedMutex permits). For
call-propagated edges only strictly-lower ranks are flagged: equal rank
through a call is how recursive re-entry of the same lock looks from the
outside, and the static pass cannot prove object identity. The rank graph
is finally checked to be a DAG consistent with the declared order.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .. import config
from ..report import Finding
from .progress_contract import _resolve_callees

CHECK_ID = "lock-rank"


def _rank_val(name: str) -> int:
    return config.LOCK_RANKS.get(name, -1)


def _transitive_ranks(ctx) -> Dict[int, Set[str]]:
    """Fixpoint: id(fn) -> ranks it may (transitively) acquire.

    Runs over the receiver-resolved call graph; unresolvable member calls
    propagate nothing, and unranked acquisitions don't propagate (exempt
    by design)."""
    fns = [fn for fn in ctx.model.functions
           if not ctx.in_fileset(fn.file, config.LOCK_IMPL_FILES)]
    ids = {id(f) for f in fns}
    result = {id(f): {a.rank for a in f.acquires if a.rank} for f in fns}
    edges: Dict[int, Set[int]] = {id(f): set() for f in fns}
    for f in fns:
        for call in f.calls:
            for callee in _resolve_callees(ctx, f, call):
                if id(callee) in ids:
                    edges[id(f)].add(id(callee))
    changed = True
    while changed:
        changed = False
        for k, es in edges.items():
            for e in es:
                if not result[e] <= result[k]:
                    result[k] |= result[e]
                    changed = True
    return result


def run(ctx) -> List[Finding]:
    model = ctx.model
    findings: List[Finding] = []
    edges: Set[Tuple[str, str]] = set()
    trans_ranks = _transitive_ranks(ctx)

    for fn in model.functions:
        if ctx.in_fileset(fn.file, config.LOCK_IMPL_FILES):
            continue
        ranked = [a for a in fn.acquires if a.rank]
        # Direct nesting: acquire B inside the line range of acquire A.
        for a in ranked:
            for b in ranked:
                if a is b or not (a.line < b.line <= (a.end_line or 0)):
                    continue
                edges.add((a.rank, b.rank))
                if _rank_val(b.rank) > _rank_val(a.rank):
                    continue
                if a.expr == b.expr or a.resolved == b.resolved and \
                        a.resolved is not None and b.rank == a.rank:
                    continue  # recursive re-acquire of the same lock
                if ctx.allowed(fn.file, b.line, CHECK_ID) or \
                        CHECK_ID in fn.allow:
                    continue
                findings.append(Finding(
                    check=CHECK_ID, file=fn.file, line=b.line,
                    message=(f"acquires '{b.expr}' (rank {b.rank}="
                             f"{_rank_val(b.rank)}) while holding "
                             f"'{a.expr}' (rank {a.rank}="
                             f"{_rank_val(a.rank)}): lock-rank inversion"),
                    key=(f"{CHECK_ID}:{fn.file}:{fn.name}:"
                         f"{a.expr}->{b.expr}")))
        # Call-propagated: callee may acquire a strictly lower rank while
        # we hold one.
        for call in fn.calls:
            if not call.held_ranks:
                continue
            cranks: Set[str] = set()
            for callee in _resolve_callees(ctx, fn, call):
                cranks |= trans_ranks.get(id(callee), set())
            for crank in cranks:
                for held in call.held_ranks:
                    edges.add((held, crank))
                    if _rank_val(crank) >= _rank_val(held):
                        continue
                    if ctx.allowed(fn.file, call.line, CHECK_ID) or \
                            CHECK_ID in fn.allow:
                        continue
                    findings.append(Finding(
                        check=CHECK_ID, file=fn.file, line=call.line,
                        message=(f"call to '{call.name}' may acquire a "
                                 f"{crank}-ranked lock while a {held}-"
                                 f"ranked lock is held: lock-rank "
                                 f"inversion via call chain"),
                        key=(f"{CHECK_ID}:{fn.file}:{fn.name}:"
                             f"call:{call.name}:{held}->{crank}")))

    # Declared-order consistency: the observed edge set must be acyclic
    # when collapsed to ranks (any cycle means the declared ranks cannot
    # order the real acquisition graph).
    adj: Dict[str, Set[str]] = {}
    for u, v in edges:
        if u != v:
            adj.setdefault(u, set()).add(v)
    state: Dict[str, int] = {}

    def has_cycle(u: str, path: List[str]) -> bool:
        state[u] = 1
        for v in adj.get(u, ()):
            if state.get(v, 0) == 1:
                findings.append(Finding(
                    check=CHECK_ID, file="<rank-graph>", line=0,
                    message=("cycle in the held-while-acquiring rank "
                             f"graph: {' -> '.join(path + [v])}"),
                    key=f"{CHECK_ID}:cycle:{'->'.join(sorted(set(path)))}"))
                return True
            if state.get(v, 0) == 0 and has_cycle(v, path + [v]):
                return True
        state[u] = 2
        return False

    for node in list(adj):
        if state.get(node, 0) == 0:
            has_cycle(node, [node])
    return findings
