"""progress-contract: poll/idle must never block or re-enter progress.

Roots are the poll/idle overrides of ProgressSource subclasses, plus the
external progress-driver loops in config.PROGRESS_DRIVER_ROOTS (the
adaptive engine's worker loops, which drive compiled stage tables from
their own threads). For driver roots the progress entry points themselves
(config.PROGRESS_ENTRY_CALL_NAMES) are allowed boundaries — calling them
is the driver's job — but the rest of the contract is identical. From each
root the check walks the in-tree call graph (name-level; member calls
resolve through receiver types, virtual calls expand to every in-model
override in derived classes) and flags:

  * any reachable call to a blocking wait (config.BLOCKING_CALL_NAMES) —
    poll() runs inside progress; waiting inside progress is the paper's
    §3.4 deadlock;
  * any reachable acquisition of a lock ranked in
    config.PROGRESS_FORBIDDEN_RANKS (`vci`, `stream`): poll/idle already
    run under a vci-ranked lock, so taking another progress-engine lock
    re-enters the engine;
  * any reachable call into the collective schedule verifier
    (config.PROGRESS_VERIFIER_CALL_NAMES) — the verifier is a compile-path
    tool (unbounded allocation, global event-graph construction) and must
    never run inside progress.

Calls through std::function / stored hooks are invisible to the static
pass (documented limitation; the mc progress tests cover those).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import config
from ..model import Function
from ..report import Finding

CHECK_ID = "progress-contract"


def _progress_roots(ctx) -> List[Function]:
    model = ctx.model
    source_classes = {c.name for c in
                      model.derived_of(config.PROGRESS_SOURCE_BASE)}
    return [fn for fn in model.functions
            if fn.cls in source_classes and fn.name in ("poll", "idle")]


def _driver_roots(ctx) -> List[Function]:
    return [fn for fn in ctx.model.functions
            if (fn.cls, fn.name) in config.PROGRESS_DRIVER_ROOTS]


def _resolve_callees(ctx, caller: Function, call) -> List[Function]:
    """All in-model functions a call may dispatch to.

    Resolution is deliberately conservative-quiet: a member call whose
    receiver class cannot be determined resolves to nothing rather than
    to every same-named method in the model (which would drown the check
    in false paths through generic names like `poll`/`push`)."""
    model = ctx.model
    if call.recv_cls is not None:
        out: List[Function] = []
        classes = {call.recv_cls}
        classes.update(c.name for c in model.derived_of(call.recv_cls))
        for cls in classes:
            out.extend(model.methods_of(cls, call.name))
        return out
    # Free/unqualified call: free functions + methods of the caller's own
    # class (implicit this->).
    return [f for f in model.functions_named(call.name)
            if f.cls is None or (caller.cls and f.cls == caller.cls)]


def run(ctx) -> List[Finding]:
    findings: List[Finding] = []
    roots = [(r, False) for r in _progress_roots(ctx)]
    roots += [(r, True) for r in _driver_roots(ctx)]
    for root, is_driver in roots:
        seen: Set[str] = set()
        # (function, path-so-far)
        stack: List[Tuple[Function, List[str]]] = [(root, [])]
        while stack:
            fn, path = stack.pop()
            if fn.key in seen:
                continue
            seen.add(fn.key)
            label = f"{fn.cls + '::' if fn.cls else ''}{fn.name}"
            here = path + [label]
            if CHECK_ID in fn.allow:
                continue
            for a in fn.acquires:
                if a.rank in config.PROGRESS_FORBIDDEN_RANKS and \
                        not ctx.allowed(fn.file, a.line, CHECK_ID):
                    findings.append(Finding(
                        check=CHECK_ID, file=fn.file, line=a.line,
                        message=(f"{_root_label(root)} reaches an "
                                 f"acquisition of '{a.expr}' (rank "
                                 f"{a.rank}) via "
                                 f"{' -> '.join(here)}: progress sources "
                                 "run under the VCI lock and must not "
                                 "re-enter progress-engine locks"),
                        key=(f"{CHECK_ID}:rank:{_root_label(root)}:"
                             f"{label}:{a.expr}")))
            for call in fn.calls:
                if is_driver and call.name in config.PROGRESS_ENTRY_CALL_NAMES:
                    # Driving a progress entry point is what a driver root
                    # is for; the entry acquires the VCI lock internally
                    # and is not traversed further.
                    continue
                if call.name in config.BLOCKING_CALL_NAMES:
                    if not ctx.allowed(fn.file, call.line, CHECK_ID):
                        findings.append(Finding(
                            check=CHECK_ID, file=fn.file, line=call.line,
                            message=(f"{_root_label(root)} reaches "
                                     f"blocking call '{call.name}' via "
                                     f"{' -> '.join(here)}: waiting "
                                     "inside progress deadlocks "
                                     "(paper §3.4)"),
                            key=(f"{CHECK_ID}:block:{_root_label(root)}:"
                                 f"{label}:{call.name}")))
                    continue
                if call.name in config.PROGRESS_VERIFIER_CALL_NAMES:
                    if not ctx.allowed(fn.file, call.line, CHECK_ID):
                        findings.append(Finding(
                            check=CHECK_ID, file=fn.file, line=call.line,
                            message=(f"{_root_label(root)} reaches "
                                     f"schedule-verifier entry "
                                     f"'{call.name}' via "
                                     f"{' -> '.join(here)}: the verifier "
                                     "is compile-path only (it allocates "
                                     "and builds a global event graph) "
                                     "and must never run inside progress"),
                            key=(f"{CHECK_ID}:verify:{_root_label(root)}:"
                                 f"{label}:{call.name}")))
                    continue
                if call.name in config.PROGRESS_CONTROL_CALL_NAMES:
                    if not ctx.allowed(fn.file, call.line, CHECK_ID):
                        findings.append(Finding(
                            check=CHECK_ID, file=fn.file, line=call.line,
                            message=(f"{_root_label(root)} reaches "
                                     f"control-plane mutation "
                                     f"'{call.name}' via "
                                     f"{' -> '.join(here)}: topology "
                                     "writers take the control mutex "
                                     "(rank below vci) and drive progress "
                                     "while holding it — poll contexts may "
                                     "only READ the snapshot (TopoRef "
                                     "acquire-load)"),
                            key=(f"{CHECK_ID}:control:{_root_label(root)}:"
                                 f"{label}:{call.name}")))
                    continue
                for callee in _resolve_callees(ctx, fn, call):
                    if callee.key not in seen:
                        stack.append((callee, here))
    return findings


def _root_label(root: Function) -> str:
    return f"{root.cls}::{root.name}"
