"""mc-coverage: modeled protocol files must be visible to mpx::mc.

Three rules around the MODELED_FILES set (the code whose interleavings
the model-check preset explores):

  decl rule     — a member declared as a raw std:: synchronization
                  primitive (std::atomic, std::mutex,
                  std::condition_variable) in a modeled file is invisible
                  to the scheduler's vector clocks: finding, unless
                  carrying `// mpxlint: allow(mc-coverage) <reason>`.

  plain rule    — a modeled-file function that performs an acquire/release
                  mc-atomic operation AND writes a plain shared member
                  must carry at least one MPX_MC_PLAIN_WRITE/READ
                  annotation, otherwise the plain data rides the atomic
                  edge unchecked and a protocol weakening would not
                  surface as a detected race.

  unlisted rule — the inverse guard: a member declared through the mc::
                  shims (mc::atomic / mc::mutex) in a file that is NOT in
                  MODELED_FILES means someone wrote model-checkable
                  protocol code and forgot to register it — the explorer
                  never schedules it, so the shim is dead weight and the
                  protocol is silently unexplored. Fix: add the file to
                  config.MODELED_FILES (and a Mc* test to drive it).
"""

from __future__ import annotations

from typing import List

from .. import config
from ..model import CONDVAR, MC_ATOMIC, MC_MUTEX, PLAIN, RAW_ATOMIC, RAW_MUTEX
from ..report import Finding

CHECK_ID = "mc-coverage"

_PUBLISH_ORDERS = {"release", "acquire", "acq_rel", "seq_cst"}


def run(ctx) -> List[Finding]:
    model = ctx.model
    findings: List[Finding] = []

    # decl rule ------------------------------------------------------------
    for cm in model.classes.values():
        if not ctx.in_fileset(cm.file, config.MODELED_FILES):
            continue
        if ctx.in_fileset(cm.file, config.MC_SHIM_FILES):
            continue
        for f in cm.fields.values():
            if f.kind not in (RAW_ATOMIC, RAW_MUTEX, CONDVAR):
                continue
            if CHECK_ID in f.allow or ctx.allowed(cm.file, f.line, CHECK_ID):
                continue
            kind_desc = {
                RAW_ATOMIC: "std::atomic",
                RAW_MUTEX: "a raw std:: mutex",
                CONDVAR: "std::condition_variable",
            }[f.kind]
            findings.append(Finding(
                check=CHECK_ID, file=cm.file, line=f.line,
                message=(f"{cm.name}::{f.name} is {kind_desc} in a modeled "
                         "protocol file; use the mc:: shim (mc::atomic/"
                         "mc::mutex) so the model checker can see it, or "
                         "annotate `// mpxlint: allow(mc-coverage)` with "
                         "a reason"),
                key=f"{CHECK_ID}:decl:{cm.name}::{f.name}"))

    # unlisted rule (inverse guard) ----------------------------------------
    for cm in model.classes.values():
        if ctx.in_fileset(cm.file, config.MODELED_FILES):
            continue
        if ctx.in_fileset(cm.file, config.MC_SHIM_FILES):
            continue
        for f in cm.fields.values():
            if f.kind not in (MC_ATOMIC, MC_MUTEX):
                continue
            if CHECK_ID in f.allow or ctx.allowed(cm.file, f.line, CHECK_ID):
                continue
            shim_desc = "mc::atomic" if f.kind == MC_ATOMIC else "mc::mutex"
            findings.append(Finding(
                check=CHECK_ID, file=cm.file, line=f.line,
                message=(f"{cm.name}::{f.name} uses the {shim_desc} shim "
                         "but its file is not in config.MODELED_FILES: the "
                         "model checker never explores this protocol. Add "
                         "the file to MODELED_FILES (with an Mc* test that "
                         "drives it), or annotate "
                         "`// mpxlint: allow(mc-coverage)` with a reason"),
                key=f"{CHECK_ID}:unlisted:{cm.name}::{f.name}"))

    # plain rule -----------------------------------------------------------
    for fn in model.functions:
        if not ctx.in_fileset(fn.file, config.MODELED_FILES):
            continue
        if ctx.in_fileset(fn.file, config.MC_SHIM_FILES):
            continue
        if fn.has_mc_plain_annotation or CHECK_ID in fn.allow:
            continue
        publishes = any(
            op.orders & _PUBLISH_ORDERS
            for op in fn.atomic_ops
            if op.cls and _field_kind(model, op.cls, op.member) == MC_ATOMIC)
        if not publishes:
            continue
        shared_writes = [
            w for w in fn.plain_writes
            if w.cls and _field_kind(model, w.cls, w.member) == PLAIN
            and not _field_allowed(model, w.cls, w.member, CHECK_ID)]
        if not shared_writes:
            continue
        if ctx.allowed(fn.file, fn.line, CHECK_ID):
            continue
        w = shared_writes[0]
        findings.append(Finding(
            check=CHECK_ID, file=fn.file, line=w.line,
            message=(f"{fn.name} writes plain shared member "
                     f"'{w.cls}::{w.member}' and performs release/acquire "
                     "mc-atomic operations, but has no MPX_MC_PLAIN_WRITE/"
                     "READ annotation: the model checker cannot race-check "
                     "the plain data riding this edge"),
            key=f"{CHECK_ID}:plain:{fn.cls or ''}::{fn.name}"))
    return findings


def _field_kind(model, cls, member):
    c = model.classes.get(cls)
    f = c.field(member) if c else None
    return f.kind if f else None


def _field_allowed(model, cls, member, check_id) -> bool:
    c = model.classes.get(cls)
    f = c.field(member) if c else None
    return bool(f and (check_id in f.allow or f.is_const or f.is_static))
