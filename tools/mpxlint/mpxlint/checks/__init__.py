"""Check registry and the shared context handed to every check plugin."""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from .. import config
from ..report import Finding


class CheckContext:
    """What a check may see besides the CodeModel."""

    def __init__(self, model, repo_root: str, tsa_baseline: Optional[dict]):
        self.model = model
        self.repo_root = repo_root
        self.tsa_baseline = tsa_baseline or {}
        self.comments: Dict[str, Dict[int, str]] = getattr(
            model, "comments", {})

    def allowed(self, file: str, line: int, check_id: str) -> bool:
        """True if an inline `// mpxlint: allow(check_id)` covers the line."""
        cm = self.comments.get(file, {})
        for ln in (line, line - 1):
            m = re.search(config.ALLOW_RE, cm.get(ln, ""))
            if m:
                tags = {t.strip() for t in m.group(1).split(",")}
                if check_id in tags or "all" in tags:
                    return True
        return False

    @staticmethod
    def in_fileset(file: str, fileset) -> bool:
        f = file.replace("\\", "/")
        return any(f.endswith(s) or f.startswith(s) for s in fileset)


def all_checks():
    from . import (lock_rank, mc_coverage, memory_order, progress_contract,
                   tsa_ratchet)
    return {
        lock_rank.CHECK_ID: lock_rank.run,
        mc_coverage.CHECK_ID: mc_coverage.run,
        memory_order.CHECK_ID: memory_order.run,
        progress_contract.CHECK_ID: progress_contract.run,
        tsa_ratchet.CHECK_ID: tsa_ratchet.run,
    }


def run_checks(model, repo_root: str, only=None,
               tsa_baseline: Optional[dict] = None) -> List[Finding]:
    ctx = CheckContext(model, repo_root, tsa_baseline)
    findings: List[Finding] = []
    for check_id, fn in all_checks().items():
        if only and check_id not in only:
            continue
        findings.extend(fn(ctx))
    return findings
