#!/usr/bin/env python3
"""mpxlint self-tests: every seeded fixture must fire its check, the clean
control must not, and the real tree must scan clean against the baseline.

Runs under pytest or plain `python3 tools/mpxlint/test_mpxlint.py`
(ctest registers the plain form). Mirrors the PR 3 seeded-mutation
discipline: a check that cannot catch its own seeded violation is dead
code, not a gate.
"""

import json
import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(*args):
    """Run mpxlint as a subprocess; returns (exit_code, report_dict)."""
    cmd = [sys.executable, HERE, "--json", "--no-baseline", *args]
    proc = subprocess.run(cmd, capture_output=True, text=True, cwd=REPO)
    if proc.returncode not in (0, 1):
        raise AssertionError(
            f"mpxlint crashed ({proc.returncode}):\n{proc.stdout}\n"
            f"{proc.stderr}")
    return proc.returncode, json.loads(proc.stdout)


def findings_of(report, check_id):
    return [f for f in report["findings"] if f["check"] == check_id]


class FixtureTests(unittest.TestCase):
    """One seeded violation per check; each must be caught."""

    def fixture(self, name):
        return os.path.join(FIXTURES, name)

    def test_rank_inversion_caught(self):
        code, report = run_lint("--check", "lock-rank",
                                self.fixture("rank_inversion.cpp"))
        self.assertEqual(code, 1)
        hits = findings_of(report, "lock-rank")
        self.assertTrue(hits, f"lock-rank missed its fixture: {report}")
        self.assertTrue(any("inversion" in f["message"] for f in hits))

    def test_raw_atomic_in_modeled_code_caught(self):
        code, report = run_lint("--check", "mc-coverage",
                                self.fixture("raw_atomic_modeled.cpp"))
        self.assertEqual(code, 1)
        hits = findings_of(report, "mc-coverage")
        members = {f["message"].split(" ", 1)[0] for f in hits}
        self.assertIn("Ring::head", members)
        self.assertIn("Ring::m", members)

    def test_unpaired_release_caught(self):
        code, report = run_lint("--check", "memory-order",
                                self.fixture("unpaired_release.cpp"))
        self.assertEqual(code, 1)
        hits = findings_of(report, "memory-order")
        self.assertTrue(any("unpaired-release" in f["key"] for f in hits),
                        f"memory-order missed its fixture: {report}")

    def test_blocking_wait_in_poll_caught(self):
        code, report = run_lint("--check", "progress-contract",
                                self.fixture("blocking_poll.cpp"))
        self.assertEqual(code, 1)
        hits = findings_of(report, "progress-contract")
        self.assertTrue(any("wait_all" in f["message"] for f in hits),
                        f"progress-contract missed its fixture: {report}")
        # The violation is transitive (poll -> helper_drain -> wait_all);
        # the path must be reported.
        self.assertTrue(any("helper_drain" in f["message"] for f in hits))

    def test_executor_shaped_violations_caught(self):
        # The schedule-executor shape (PR 7): poll -> drain_inbox ->
        # step_cursor hides the blocking wait two hops deep, and the
        # cursor-retire helper re-acquires a vci-ranked lock.
        code, report = run_lint("--check", "progress-contract",
                                self.fixture("exec_blocking_poll.cpp"))
        self.assertEqual(code, 1)
        hits = findings_of(report, "progress-contract")
        self.assertTrue(any("wait_on_stream" in f["message"] and
                            "step_cursor" in f["message"] for f in hits),
                        f"missed the transitive blocking wait: {report}")
        self.assertTrue(any("rank vci" in f["message"] and
                            "retire_cursor" in f["message"] for f in hits),
                        f"missed the vci-ranked re-acquisition: {report}")

    def test_engine_driver_violations_caught(self):
        # The progress-driver shape (PR 9): the engine's worker loop may
        # call vci_poll bare (allowed boundary), but a blocking wait two
        # hops deep and a vci-ranked lock held across the poll are both
        # contract violations.
        code, report = run_lint("--check", "progress-contract",
                                self.fixture("engine_worker_blocking.cpp"))
        self.assertEqual(code, 1)
        hits = findings_of(report, "progress-contract")
        self.assertTrue(any("wait_all" in f["message"] and
                            "drain_completions" in f["message"]
                            for f in hits),
                        f"missed the blocking wait in the driver: {report}")
        self.assertTrue(any("rank vci" in f["message"] and
                            "lock_slot_vci" in f["message"] for f in hits),
                        f"missed the vci-ranked acquisition: {report}")
        # The bare vci_poll in poll_one is the allowed boundary, not a
        # finding.
        self.assertFalse(any("poll_one" in f["message"] for f in hits),
                         f"flagged the allowed entry-point call: {report}")

    def test_mc_shim_outside_modeled_set_caught(self):
        # The inverse guard: mc:: shims in a file absent from
        # config.MODELED_FILES mean the protocol is never explored.
        code, report = run_lint("--check", "mc-coverage",
                                self.fixture("mc_shim_unlisted.cpp"))
        self.assertEqual(code, 1)
        hits = findings_of(report, "mc-coverage")
        keys = {f["key"] for f in hits}
        self.assertIn("mc-coverage:unlisted:ForgottenRing::head", keys)
        self.assertIn("mc-coverage:unlisted:ForgottenRing::m", keys)
        self.assertTrue(all("MODELED_FILES" in f["message"] for f in hits))

    def test_verifier_call_in_poll_caught(self):
        # The schedule verifier (ir_verify) is compile-path only; reaching
        # it transitively from poll must be flagged with the path.
        code, report = run_lint("--check", "progress-contract",
                                self.fixture("verify_in_poll.cpp"))
        self.assertEqual(code, 1)
        hits = findings_of(report, "progress-contract")
        self.assertTrue(any("verify_ranks" in f["message"] and
                            "revalidate_cache" in f["message"]
                            for f in hits),
                        f"missed the transitive verifier call: {report}")

    def test_topology_swap_call_in_poll_caught(self):
        # Control-plane topology mutations take the control mutex (below
        # vci) and drive progress while holding it; reaching one
        # transitively from poll must be flagged with the path.
        code, report = run_lint("--check", "progress-contract",
                                self.fixture("topology_swap_in_poll.cpp"))
        self.assertEqual(code, 1)
        hits = findings_of(report, "progress-contract")
        self.assertTrue(any("swap_topology_for_test" in f["message"] and
                            "maybe_reroute" in f["message"]
                            for f in hits),
                        f"missed the transitive control-plane call: {report}")

    def test_unannotated_guarded_field_caught(self):
        code, report = run_lint("--check", "tsa-ratchet",
                                self.fixture("unannotated_guarded.cpp"))
        self.assertEqual(code, 1)
        hits = findings_of(report, "tsa-ratchet")
        self.assertEqual(
            [f["key"] for f in hits],
            ["tsa-ratchet:Tracker::dropped"],
            f"expected exactly the 'dropped' field: {report}")

    def test_clean_control_is_clean(self):
        code, report = run_lint(self.fixture("clean.cpp"))
        self.assertEqual(code, 0, f"clean fixture flagged: {report}")
        self.assertEqual(report["findings"], [])


class TreeTests(unittest.TestCase):
    """The real tree must be clean modulo the checked-in baselines."""

    def test_repo_scan_is_clean(self):
        cmd = [sys.executable, HERE, "--json", "include", "src"]
        proc = subprocess.run(cmd, capture_output=True, text=True, cwd=REPO)
        self.assertIn(proc.returncode, (0, 1),
                      f"mpxlint crashed:\n{proc.stdout}\n{proc.stderr}")
        report = json.loads(proc.stdout)
        self.assertEqual(
            proc.returncode, 0,
            "unbaselined findings in the tree:\n" + "\n".join(
                f"{f['file']}:{f['line']}: [{f['check']}] {f['message']}"
                for f in report["findings"]))


if __name__ == "__main__":
    unittest.main(verbosity=2)
