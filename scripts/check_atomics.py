#!/usr/bin/env python3
"""Reject atomic operations that silently default to seq_cst.

Scans C++ sources for member calls on atomics (load, store, exchange,
fetch_*, compare_exchange_*) whose argument list names no std::memory_order.
Every atomic op in mpx must either spell out its order or carry the
annotation comment

    // mo: seq_cst intentional

on the same line or the line above, which documents that the full fence is
deliberate rather than a default nobody thought about.

Usage: check_atomics.py <dir-or-file> [...]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Method names that exist (with a trailing memory_order parameter) on
# std::atomic and mpx::mc::atomic. Deliberately excludes generic names such
# as clear()/wait() that are common on non-atomic types.
ATOMIC_METHODS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "test_and_set",
)

CALL_RE = re.compile(r"\.\s*(" + "|".join(ATOMIC_METHODS) + r")\s*\(")
ANNOTATION = "// mo: seq_cst intentional"
# An order is "explicit" if the argument list names std::memory_order or
# forwards a conventionally-named order variable (mo / order), as the
# mc::atomic shim methods do.
ORDER_RE = re.compile(r"memory_order|\bmo\b|\border\b")
SUFFIXES = {".hpp", ".h", ".cpp", ".cc", ".cxx", ".ipp"}


def strip_noncode(line: str) -> str:
    """Blank out string/char literals and // comments (crude but adequate)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if ch in "\"'":
            quote = ch
            out.append(" ")
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def call_args(lines: list[str], row: int, col: int) -> str | None:
    """Return the argument text of the call opening at (row, col), spanning
    lines if needed; None if the parens never balance (macro soup)."""
    depth = 0
    buf = []
    for r in range(row, min(row + 12, len(lines))):
        text = strip_noncode(lines[r])
        start = col if r == row else 0
        for c in range(start, len(text)):
            ch = text[c]
            if ch == "(":
                depth += 1
                if depth == 1:
                    continue
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "".join(buf)
            if depth >= 1:
                buf.append(ch)
    return None


def annotated(lines: list[str], row: int) -> bool:
    here = ANNOTATION in lines[row]
    above = row > 0 and ANNOTATION in lines[row - 1]
    return here or above


def scan_file(path: Path) -> list[str]:
    findings = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as e:
        return [f"{path}: unreadable ({e})"]
    in_block_comment = False
    for row, raw in enumerate(lines):
        if in_block_comment:
            if "*/" in raw:
                in_block_comment = False
            continue
        if "/*" in raw and "*/" not in raw:
            in_block_comment = True
        code = strip_noncode(raw)
        for m in CALL_RE.finditer(code):
            args = call_args(lines, row, m.end(1))
            if args is not None and ORDER_RE.search(args):
                continue
            if annotated(lines, row):
                continue
            findings.append(
                f"{path}:{row + 1}: {m.group(1)}() with implicit seq_cst "
                f"— pass a std::memory_order or annotate '{ANNOTATION}'"
            )
    return findings


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    findings: list[str] = []
    checked = 0
    for arg in argv[1:]:
        root = Path(arg)
        files = [root] if root.is_file() else sorted(
            p for p in root.rglob("*") if p.suffix in SUFFIXES
        )
        for f in files:
            checked += 1
            findings.extend(scan_file(f))
    for line in findings:
        print(line)
    print(
        f"check_atomics: {checked} file(s), {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
