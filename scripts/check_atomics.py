#!/usr/bin/env python3
"""Compatibility shim over tools/mpxlint's memory-order check.

The implicit-seq_cst atomic lint that used to live here (reject atomic ops
whose argument list names no std::memory_order, unless annotated with
"// mo: seq_cst intentional") is now one rule of mpxlint's `memory-order`
check, alongside release/acquire pairing analysis. This script survives so
existing entry points (`scripts/check_atomics.py include src`, older CI
configs, muscle memory) keep working; it forwards its arguments to

    python3 tools/mpxlint --check memory-order <paths...>

Usage: check_atomics.py <dir-or-file> [...]
Exit status: 0 clean, 1 findings, 2 usage error.  (Same contract as before;
mpxlint uses the same codes.)
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools", "mpxlint"))

from mpxlint.cli import main  # noqa: E402


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    sys.exit(main(["--check", "memory-order", *sys.argv[1:]]))
