#!/usr/bin/env python3
"""Compare a fresh bench JSONL run against the checked-in perf baseline.

The repo root carries BENCH_pr<N>.json: JSON Lines emitted by the bench
binaries (bench_util.hpp json_emit), post-processed with a "phase" field —
"pre" lines are the numbers measured before the PR's change, "post" lines
after. CI re-runs the benches and calls this script to diff the fresh
numbers against the checked-in "post" phase; a watched variant that got
more than --max-regress slower fails the job.

Usage:
  bench_diff.py --baseline BENCH_pr4.json --fresh fresh.json \
      --watch fig01_message_modes:wall_shm_8b:wall_us_msg \
      --watch fig01_message_modes:wall_shm_4096b:wall_us_msg \
      --max-regress 0.25

Each --watch is bench:variant:metric. When several lines exist for the same
(bench, variant) — repeated runs appended to one file — they are folded with
--stat: "median" (the default) keeps a single noisy run on the shared CI box
from tripping the gate; "min" is the right estimator for latency metrics,
where interference only ever adds time (a descheduled 500-iteration smoke
window can triple one run's number without the code being any slower).
"""

import argparse
import json
import statistics
import sys


def load(path, phase=None):
    """-> {(bench, variant): [record, ...]} for records matching `phase`.

    phase=None accepts any line; otherwise a line matches when its "phase"
    equals `phase` or it has no phase at all (raw bench output).
    """
    out = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: bad JSON line: {e}")
            if phase is not None and rec.get("phase", phase) != phase:
                continue
            key = (rec.get("bench"), rec.get("variant"))
            out.setdefault(key, []).append(rec)
    return out


def fold_metric(records, metric, stat, what):
    vals = [r[metric] for r in records if metric in r]
    if not vals:
        sys.exit(f"error: no '{metric}' values for {what}")
    return min(vals) if stat == "min" else statistics.median(vals)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="checked-in JSONL baseline (phase-annotated)")
    ap.add_argument("--fresh", required=True,
                    help="JSONL from the current run")
    ap.add_argument("--watch", action="append", required=True,
                    metavar="BENCH:VARIANT:METRIC",
                    help="series to gate (repeatable)")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="max allowed slowdown fraction (default 0.25)")
    ap.add_argument("--phase", default="post",
                    help="baseline phase to compare against (default: post)")
    ap.add_argument("--stat", choices=("median", "min"), default="median",
                    help="fold repeated runs with this statistic "
                         "(default: median; use min for latency metrics)")
    args = ap.parse_args()

    base = load(args.baseline, phase=args.phase)
    fresh = load(args.fresh)

    failed = False
    for watch in args.watch:
        try:
            bench, variant, metric = watch.split(":")
        except ValueError:
            sys.exit(f"error: bad --watch '{watch}' (want bench:variant:metric)")
        key = (bench, variant)
        if key not in base:
            sys.exit(f"error: baseline {args.baseline} has no "
                     f"phase={args.phase} records for {bench}/{variant}")
        if key not in fresh:
            sys.exit(f"error: fresh run {args.fresh} has no records for "
                     f"{bench}/{variant}")
        b = fold_metric(base[key], metric, args.stat,
                        f"baseline {bench}/{variant}")
        f = fold_metric(fresh[key], metric, args.stat,
                        f"fresh {bench}/{variant}")
        if b <= 0:
            sys.exit(f"error: non-positive baseline value for {bench}/{variant}")
        delta = (f - b) / b
        status = "OK"
        if delta > args.max_regress:
            status = "REGRESSION"
            failed = True
        print(f"{status:>10}  {bench}/{variant} {metric}: "
              f"baseline {b:.4g}, fresh {f:.4g} ({delta:+.1%}, "
              f"limit +{args.max_regress:.0%})")

    if failed:
        print("bench_diff: regression beyond threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
