// Cross-TU internals of the coll IR layer (compiler <-> executor <-> the
// cache front end). Not installed; include only from src/coll.
#pragma once

#include <atomic>

#include "mpx/coll/ir.hpp"
#include "mpx/coll/ir_cache.hpp"
#include "mpx/core/comm_ext.hpp"

namespace mpx::coll::ir {

// ir.cpp --------------------------------------------------------------------

/// Exact symbolic overlap test on block fractions: can the two ranges
/// intersect for ANY element count? The Builder's hazard pass and the
/// verifier's hazard re-derivation must agree, so there is one definition.
bool parts_overlap(const Part& x, const Part& y);

/// Operand conflict predicate over parts_overlap (Space::none = an fn
/// node's whole-memory barrier; distinct spaces/slots are disjoint).
bool refs_conflict(const Ref& a, const Ref& b);

// ir_compile.cpp ------------------------------------------------------------

/// Count class of a byte length: bucketed bit-width (MPX_COLL_CLASS_STEP
/// buckets per power of two, default 1).
int count_class(std::size_t bytes);

/// Largest byte length admitted by class `cls` (schedules are compiled and
/// scratch-sized for this bound).
std::size_t class_max_bytes(int cls);

/// Algorithm resolution order: per-call force, MPX_COLL_ALGO, cost model.
/// Deterministic — every rank resolves identically.
Algo resolve_algo(CollKind kind, std::size_t bytes, int size,
                  const net::CostModel& net, Algo force);

// ir_front.cpp --------------------------------------------------------------

/// Per-communicator IR state, installed in the CommImpl extension slot and
/// freed with the communicator: the schedule cache plus the resolved
/// executor source (cached so launch skips the registry scan).
struct CollCommExt final : core_detail::CommExt {
  explicit CollCommExt(std::size_t cap) : cache(cap) {}
  SchedCache cache;
  /// The world's SchedExecSource, resolved on first launch. Raw atomic:
  /// racing writers store the same value (not part of the modeled cache
  /// protocol; this file is not in the mc fileset).
  std::atomic<void*> exec{nullptr};
};

/// The ext slot of `comm`'s primary impl, installed on first use.
CollCommExt& coll_ext(const Comm& comm);

// ir_exec.cpp ---------------------------------------------------------------

/// Persistent allreduce over a pinned cursor: each start() re-arms
/// pre-built state (schedule, cursor, scratch, request slots) — no
/// allocation and no planning per cycle.
Request persistent_launch(SchedPtr sched, const void* sendbuf, void* recvbuf,
                          std::size_t count, const Comm& comm);

}  // namespace mpx::coll::ir
