// Cross-rank schedule verifier (ir_verify.hpp): resolves the symbolic Part
// operands of N per-rank schedules and proves matching, deadlock-freedom,
// tag-window discipline, hazard-freedom, and reduce determinism before a
// schedule is cached or executed.
//
// Deadlock-freedom is decided on a post/complete event graph, two events
// per node:
//
//   complete(u) -> post(v)    for every intra-rank dependency edge u -> v
//                             (the executor hands v to the transport only
//                             after all its predecessors complete);
//   post(n)     -> complete(n)
//   post(s)     -> complete(r)   for a matched send s / recv r pair (the
//                             receive cannot finish before the send starts);
//   post(r)     -> complete(s)   conservatively: under rendezvous (no
//                             buffering) the send cannot finish before the
//                             receive is posted — the MPI-safe discipline,
//                             so a schedule that only works because of
//                             eager buffering is rejected.
//
// The union is acyclic iff some execution order exists for every rank
// simultaneously; a cycle IS the deadlock, and is emitted step by step as
// the counterexample trace.
//
// Everything here is compile-path only: the verifier allocates freely and
// must never be reachable from ProgressSource::poll (mpxlint enforces
// this via the progress-contract check).
#include "mpx/coll/ir_verify.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

#include "ir_internal.hpp"

namespace mpx::coll::ir::verify {

const char* to_string(Check c) {
  switch (c) {
    case Check::structure: return "structure";
    case Check::matching: return "matching";
    case Check::acyclic: return "acyclic";
    case Check::tag_window: return "tag_window";
    case Check::hazard: return "hazard";
    case Check::reduce_order: return "reduce_order";
  }
  return "?";
}

namespace {

// ---- rendering -------------------------------------------------------------

std::string part_str(const Part& p) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "[%u..%u)/%u", p.b0, p.b1, p.div);
  return buf;
}

std::string ref_str(const Ref& r) {
  switch (r.space) {
    case Space::none: return "<mem>";
    case Space::send: return "sendbuf" + part_str(r.r);
    case Space::recv: return "recvbuf" + part_str(r.r);
    case Space::scratch:
      return "scratch#" + std::to_string(r.slot) + part_str(r.r);
  }
  return "?";
}

std::string node_desc(const Schedule& s, std::uint32_t id) {
  const Node& nd = s.nodes[id];
  switch (nd.kind) {
    case NodeKind::send:
      return "send -> r" + std::to_string(nd.peer) + " tag" +
             std::to_string(nd.tag_off) + " " + ref_str(nd.a);
    case NodeKind::recv:
      return "recv <- r" + std::to_string(nd.peer) + " tag" +
             std::to_string(nd.tag_off) + " " + ref_str(nd.b);
    case NodeKind::reduce:
      return "reduce " + ref_str(nd.a) + " into " + ref_str(nd.b);
    case NodeKind::copy:
      return "copy " + ref_str(nd.a) + " -> " + ref_str(nd.b);
    case NodeKind::fn:
      return "fn#" + std::to_string(nd.fn_id);
  }
  return "?";
}

CexStep step(const Schedule& s, std::uint32_t node, bool posted) {
  return CexStep{s.rank, node, posted, node_desc(s, node)};
}

// ---- access re-derivation --------------------------------------------------

struct Acc {
  Ref ref;
  bool writes;
};

/// The Builder's access sets, re-derived from node kind alone so a
/// hand-mutated schedule cannot lie about what it touches.
std::vector<Acc> accesses(const Node& nd) {
  switch (nd.kind) {
    case NodeKind::send: return {{nd.a, false}};
    case NodeKind::recv: return {{nd.b, true}};
    case NodeKind::reduce: return {{nd.a, false}, {nd.b, true}};
    case NodeKind::copy: return {{nd.a, false}, {nd.b, true}};
    case NodeKind::fn: return {{Ref{}, true}};  // whole-memory barrier
  }
  return {};
}

bool nodes_conflict(const Node& x, const Node& y) {
  for (const Acc& a : accesses(x)) {
    for (const Acc& b : accesses(y)) {
      if (!a.writes && !b.writes) continue;
      if (refs_conflict(a.ref, b.ref)) return true;
    }
  }
  return false;
}

// ---- intra-rank reachability ----------------------------------------------

/// Transitive closure over one rank's dependency edges as bitsets. Edges
/// respect program order (validated by the structure pass first), so one
/// reverse sweep suffices. Schedules are tiny (O(P log P) nodes), so the
/// O(n^2/64 * e) closure is nothing.
class Reach {
 public:
  explicit Reach(const Schedule& s)
      : n_(s.nodes.size()), words_((n_ + 63) / 64), bits_(n_ * words_, 0) {
    for (std::size_t i = n_; i-- > 0;) {
      for (std::uint32_t k = s.succ_off[i]; k < s.succ_off[i + 1]; ++k) {
        const std::uint32_t j = s.succ[k];
        set(i, j);
        for (std::size_t w = 0; w < words_; ++w) {
          bits_[i * words_ + w] |= bits_[j * words_ + w];
        }
      }
    }
  }

  bool get(std::size_t i, std::size_t j) const {
    return (bits_[i * words_ + j / 64] >> (j % 64)) & 1u;
  }
  bool ordered(std::size_t i, std::size_t j) const {
    return get(i, j) || get(j, i);
  }

 private:
  void set(std::size_t i, std::size_t j) {
    bits_[i * words_ + j / 64] |= std::uint64_t{1} << (j % 64);
  }
  std::size_t n_, words_;
  std::vector<std::uint64_t> bits_;
};

// ---- structure -------------------------------------------------------------

void diag(Report& rep, Check c, std::string msg,
          std::vector<CexStep> trace = {}) {
  rep.diags.push_back(Diagnostic{c, std::move(msg), std::move(trace)});
}

std::string rk(const Schedule& s) {
  return "rank " + std::to_string(s.rank) + ": ";
}

bool part_valid(const Part& p) { return p.div >= 1 && p.b0 < p.b1; }

void check_operand(const Schedule& s, std::uint32_t id, const Ref& r,
                   bool is_dest, Report& rep) {
  const std::string where = rk(s) + "node " + std::to_string(id) + " (" +
                            node_desc(s, id) + "): ";
  if (r.space == Space::none) {
    diag(rep, Check::structure, where + "unset operand", {step(s, id, true)});
    return;
  }
  if (!part_valid(r.r)) {
    diag(rep, Check::structure, where + "empty Part " + part_str(r.r),
         {step(s, id, true)});
    return;
  }
  if (r.space == Space::scratch) {
    if (r.slot >= s.slots.size()) {
      diag(rep, Check::structure, where + "scratch slot out of range",
           {step(s, id, true)});
      return;
    }
    const Part& sz = s.slots[r.slot];
    if (static_cast<std::uint64_t>(r.r.b1) * sz.div >
        static_cast<std::uint64_t>(sz.b1) * r.r.div) {
      diag(rep, Check::structure, where + "scratch ref outside its slot",
           {step(s, id, true)});
    }
    return;
  }
  if (r.r.b1 > r.r.div) {
    diag(rep, Check::structure, where + "ref outside the vector",
         {step(s, id, true)});
  }
  if (r.space == Space::send && (s.in_place || is_dest)) {
    diag(rep, Check::structure,
         where + (is_dest ? "writes the send buffer"
                          : "send-space ref in an in-place schedule"),
         {step(s, id, true)});
  }
}

/// Graph- and operand-level sanity of one schedule. Returns false when the
/// CSR arrays themselves are unusable (deeper passes would index out of
/// bounds).
bool check_structure(const Schedule& s, Report& rep) {
  const std::size_t n = s.nodes.size();
  if (s.succ_off.size() != n + 1 || s.indeg.size() != n ||
      s.succ_off.front() != 0 || s.succ_off.back() != s.succ.size()) {
    diag(rep, Check::structure, rk(s) + "malformed CSR arrays");
    return false;
  }
  std::vector<std::uint16_t> indeg(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    if (s.succ_off[u] > s.succ_off[u + 1]) {
      diag(rep, Check::structure, rk(s) + "succ_off not monotone");
      return false;
    }
    for (std::uint32_t k = s.succ_off[u]; k < s.succ_off[u + 1]; ++k) {
      const std::uint32_t v = s.succ[k];
      if (v >= n || v <= u) {
        diag(rep, Check::structure,
             rk(s) + "edge " + std::to_string(u) + " -> " +
                 std::to_string(v) + " against program order");
        return false;
      }
      ++indeg[v];
    }
  }
  bool deg_ok = true;
  for (std::size_t i = 0; i < n; ++i) deg_ok &= indeg[i] == s.indeg[i];
  std::vector<std::uint32_t> entry;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) entry.push_back(i);
  }
  if (!deg_ok || entry != s.entry) {
    diag(rep, Check::structure,
         rk(s) + "indeg/entry arrays disagree with the edge set");
  }

  std::vector<bool> req_seen(s.nreq, false);
  std::uint32_t nreq = 0;
  for (std::uint32_t id = 0; id < n; ++id) {
    const Node& nd = s.nodes[id];
    switch (nd.kind) {
      case NodeKind::send:
      case NodeKind::recv: {
        const Ref& r = nd.kind == NodeKind::send ? nd.a : nd.b;
        check_operand(s, id, r, nd.kind == NodeKind::recv, rep);
        if (nd.peer < 0 || nd.peer >= s.size || nd.peer == s.rank) {
          diag(rep, Check::structure,
               rk(s) + "node " + std::to_string(id) + ": bad peer " +
                   std::to_string(nd.peer),
               {step(s, id, true)});
        }
        if (nd.tag_off >= 64) {
          diag(rep, Check::tag_window,
               rk(s) + "node " + std::to_string(id) + ": tag offset " +
                   std::to_string(nd.tag_off) +
                   " outside the instance's 64-tag window",
               {step(s, id, true)});
        }
        ++nreq;
        if (nd.req_slot >= s.nreq || req_seen[nd.req_slot]) {
          diag(rep, Check::structure,
               rk(s) + "node " + std::to_string(id) +
                   ": duplicate or out-of-range request slot",
               {step(s, id, true)});
        } else {
          req_seen[nd.req_slot] = true;
        }
        break;
      }
      case NodeKind::reduce:
      case NodeKind::copy:
        check_operand(s, id, nd.a, false, rep);
        check_operand(s, id, nd.b, true, rep);
        // Equal Parts guarantee equal resolved lengths at every count.
        if (!(nd.a.r == nd.b.r)) {
          diag(rep, Check::structure,
               rk(s) + "node " + std::to_string(id) +
                   ": operand Parts differ (resolved lengths can diverge)",
               {step(s, id, true)});
        }
        break;
      case NodeKind::fn:
        if (nd.fn_id >= s.fns.size()) {
          diag(rep, Check::structure,
               rk(s) + "node " + std::to_string(id) + ": fn_id out of range",
               {step(s, id, true)});
        }
        break;
    }
  }
  if (nreq != s.nreq) {
    diag(rep, Check::structure,
         rk(s) + "nreq " + std::to_string(s.nreq) + " != " +
             std::to_string(nreq) + " send/recv nodes");
  }
  return true;
}

// ---- single-rank checks ----------------------------------------------------

/// (c) 64-tag window discipline: two messages of one (peer, direction)
/// channel sharing a tag offset must be ordered by dependency edges —
/// matching is FIFO per (peer, tag), so unordered reuse is ambiguous.
void check_tag_windows(const Schedule& s, const Reach& reach, Report& rep) {
  const std::size_t n = s.nodes.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Node& a = s.nodes[i];
    if (a.kind != NodeKind::send && a.kind != NodeKind::recv) continue;
    for (std::size_t j = i + 1; j < n; ++j) {
      const Node& b = s.nodes[j];
      if (b.kind != a.kind || b.peer != a.peer || b.tag_off != a.tag_off) {
        continue;
      }
      if (reach.ordered(i, j)) continue;
      diag(rep, Check::tag_window,
           rk(s) + (a.kind == NodeKind::send ? "sends to" : "receives from") +
               " r" + std::to_string(a.peer) + " reuse tag " +
               std::to_string(a.tag_off) +
               " without a serialization edge — FIFO matching is ambiguous",
           {step(s, i, true), step(s, j, true)});
    }
  }
}

/// (d)+(e) hazard freedom: dependency-unordered nodes of one rank must not
/// overlap with a write. Reduce/reduce overlap on the accumulator is
/// classified reduce_order — it additionally breaks determinism for
/// non-commutative ops.
void check_hazards(const Schedule& s, const Reach& reach, Report& rep) {
  const std::size_t n = s.nodes.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (reach.ordered(i, j)) continue;
      const Node& a = s.nodes[i];
      const Node& b = s.nodes[j];
      if (!nodes_conflict(a, b)) continue;
      if (a.kind == NodeKind::reduce && b.kind == NodeKind::reduce &&
          refs_conflict(a.b, b.b)) {
        diag(rep, Check::reduce_order,
             rk(s) + "reduces into overlapping ranges are unordered — the "
                     "accumulation order (hence the result for "
                     "non-commutative ops) is nondeterministic",
             {step(s, i, true), step(s, j, true)});
      } else {
        diag(rep, Check::hazard,
             rk(s) + "unordered nodes overlap with a write (RAW/WAR/WAW "
                     "race inside one rank's schedule)",
             {step(s, i, true), step(s, j, true)});
      }
    }
  }
}

void run_local(const Schedule& s, const Reach& reach, Report& rep) {
  check_tag_windows(s, reach, rep);
  check_hazards(s, reach, rep);
}

// ---- cross-rank matching ---------------------------------------------------

struct Endpoint {
  int rank;
  std::uint32_t node;
};
/// (src, dst, tag_off) FIFO channel.
using ChanKey = std::tuple<int, int, std::uint16_t>;

struct Channels {
  std::map<ChanKey, std::vector<Endpoint>> sends, recvs;
};

Channels collect_channels(const std::vector<SchedPtr>& scheds) {
  Channels ch;
  for (const SchedPtr& s : scheds) {
    for (std::uint32_t id = 0; id < s->nodes.size(); ++id) {
      const Node& nd = s->nodes[id];
      // Program order indexes each channel: dependency edges respect it,
      // and the tag_window pass proved same-channel messages are totally
      // ordered, so program order IS the FIFO posting order.
      if (nd.kind == NodeKind::send) {
        ch.sends[{s->rank, nd.peer, nd.tag_off}].push_back({s->rank, id});
      } else if (nd.kind == NodeKind::recv) {
        ch.recvs[{nd.peer, s->rank, nd.tag_off}].push_back({s->rank, id});
      }
    }
  }
  return ch;
}

std::string chan_str(const ChanKey& k) {
  return "channel r" + std::to_string(std::get<0>(k)) + " -> r" +
         std::to_string(std::get<1>(k)) + " tag " +
         std::to_string(std::get<2>(k));
}

/// (a) perfect pairing with equal resolved byte counts. Returns the
/// matched pairs for the event-graph pass.
std::vector<std::pair<Endpoint, Endpoint>> check_matching(
    const std::vector<SchedPtr>& scheds,
    const std::vector<std::size_t>& probes, Report& rep) {
  const Channels ch = collect_channels(scheds);
  std::vector<std::pair<Endpoint, Endpoint>> pairs;

  std::map<ChanKey, const std::vector<Endpoint>*> all;
  for (const auto& [k, v] : ch.sends) all.emplace(k, nullptr);
  for (const auto& [k, v] : ch.recvs) all.emplace(k, nullptr);
  static const std::vector<Endpoint> kNone;
  for (const auto& [key, unused] : all) {
    auto its = ch.sends.find(key);
    auto itr = ch.recvs.find(key);
    const std::vector<Endpoint>& snd = its == ch.sends.end() ? kNone
                                                             : its->second;
    const std::vector<Endpoint>& rcv = itr == ch.recvs.end() ? kNone
                                                             : itr->second;
    if (snd.size() != rcv.size()) {
      std::vector<CexStep> trace;
      for (std::size_t i = std::min(snd.size(), rcv.size());
           i < std::max(snd.size(), rcv.size()); ++i) {
        const Endpoint& e = snd.size() > rcv.size() ? snd[i] : rcv[i];
        trace.push_back(step(*scheds[e.rank], e.node, true));
      }
      diag(rep, Check::matching,
           chan_str(key) + ": " + std::to_string(snd.size()) +
               " send(s) vs " + std::to_string(rcv.size()) +
               " receive(s) — the unmatched side hangs",
           std::move(trace));
    }
    const std::size_t m = std::min(snd.size(), rcv.size());
    for (std::size_t i = 0; i < m; ++i) {
      const Schedule& ss = *scheds[snd[i].rank];
      const Schedule& rs = *scheds[rcv[i].rank];
      const Part sp = ss.nodes[snd[i].node].a.r;
      const Part rp = rs.nodes[rcv[i].node].b.r;
      for (const std::size_t c : probes) {
        if (sp.elems(c) == rp.elems(c)) continue;
        const std::size_t esz = ss.dt.size();
        diag(rep, Check::matching,
             chan_str(key) + " pair " + std::to_string(i) + ": at count " +
                 std::to_string(c) + " the send resolves to " +
                 std::to_string(sp.elems(c) * esz) + " byte(s) but the "
                 "receive to " + std::to_string(rp.elems(c) * esz),
             {step(ss, snd[i].node, true), step(rs, rcv[i].node, true)});
        break;
      }
      pairs.push_back({snd[i], rcv[i]});
    }
  }
  rep.pairs += pairs.size();
  return pairs;
}

// ---- global deadlock-freedom -----------------------------------------------

/// (b) acyclicity of the post/complete event graph; a cycle is emitted as
/// the counterexample wait-for loop.
void check_acyclic(const std::vector<SchedPtr>& scheds,
                   const std::vector<std::pair<Endpoint, Endpoint>>& pairs,
                   Report& rep) {
  const int nranks = static_cast<int>(scheds.size());
  std::vector<std::uint32_t> base(nranks + 1, 0);
  for (int r = 0; r < nranks; ++r) {
    base[r + 1] = base[r] +
                  2 * static_cast<std::uint32_t>(scheds[r]->nodes.size());
  }
  const std::uint32_t total = base[nranks];
  const auto post = [&](int r, std::uint32_t node) {
    return base[r] + 2 * node;
  };
  const auto complete = [&](int r, std::uint32_t node) {
    return base[r] + 2 * node + 1;
  };

  std::vector<std::vector<std::uint32_t>> adj(total), pred(total);
  std::vector<std::uint32_t> indeg(total, 0);
  const auto edge = [&](std::uint32_t u, std::uint32_t v) {
    adj[u].push_back(v);
    pred[v].push_back(u);
    ++indeg[v];
  };
  for (int r = 0; r < nranks; ++r) {
    const Schedule& s = *scheds[r];
    for (std::uint32_t i = 0; i < s.nodes.size(); ++i) {
      edge(post(r, i), complete(r, i));
      for (std::uint32_t k = s.succ_off[i]; k < s.succ_off[i + 1]; ++k) {
        edge(complete(r, i), post(r, s.succ[k]));
      }
    }
  }
  for (const auto& [snd, rcv] : pairs) {
    edge(post(snd.rank, snd.node), complete(rcv.rank, rcv.node));
    // Conservative rendezvous: no buffering may be assumed.
    edge(post(rcv.rank, rcv.node), complete(snd.rank, snd.node));
  }

  // Kahn's algorithm; whatever survives contains the cycle(s).
  std::vector<std::uint32_t> q;
  for (std::uint32_t e = 0; e < total; ++e) {
    if (indeg[e] == 0) q.push_back(e);
  }
  std::size_t done = 0;
  while (!q.empty()) {
    const std::uint32_t e = q.back();
    q.pop_back();
    ++done;
    for (const std::uint32_t v : adj[e]) {
      if (--indeg[v] == 0) q.push_back(v);
    }
  }
  if (done == total) return;

  // Extract one cycle: from any surviving event, predecessors stay within
  // the surviving set, so walking them must revisit an event.
  std::uint32_t start = 0;
  while (indeg[start] == 0) ++start;
  std::vector<std::uint32_t> walk;
  std::vector<std::int32_t> pos(total, -1);
  std::uint32_t e = start;
  while (pos[e] < 0) {
    pos[e] = static_cast<std::int32_t>(walk.size());
    walk.push_back(e);
    for (const std::uint32_t p : pred[e]) {
      if (indeg[p] != 0) {
        e = p;
        break;
      }
    }
  }
  // walk[pos[e]..] is the cycle in reverse (predecessor) order.
  std::vector<CexStep> trace;
  for (auto it = walk.rbegin(); it != walk.rend() - pos[e]; ++it) {
    const std::uint32_t ev = *it;
    const int r = static_cast<int>(
        std::upper_bound(base.begin(), base.end(), ev) - base.begin() - 1);
    trace.push_back(
        step(*scheds[r], (ev - base[r]) / 2, (ev - base[r]) % 2 == 0));
  }
  diag(rep, Check::acyclic,
       "dependency cycle across " + std::to_string(nranks) +
           " rank(s): each step waits on the next (and the last on the "
           "first) — the executor deadlocks",
       std::move(trace));
}

std::vector<std::size_t> default_probes(std::size_t max_count) {
  std::vector<std::size_t> p{1, 2, max_count / 2 + 1, max_count};
  std::sort(p.begin(), p.end());
  p.erase(std::unique(p.begin(), p.end()), p.end());
  while (!p.empty() && p.back() > std::max<std::size_t>(max_count, 1)) {
    p.pop_back();
  }
  return p;
}

}  // namespace

// ---- public entry points ---------------------------------------------------

Report verify_local(const Schedule& s) {
  Report rep;
  rep.ranks = 1;
  rep.nodes = s.nodes.size();
  if (!check_structure(s, rep)) return rep;
  const Reach reach(s);
  run_local(s, reach, rep);
  return rep;
}

Report verify_ranks(const std::vector<SchedPtr>& scheds,
                    const std::vector<std::size_t>& probe_counts) {
  Report rep;
  rep.ranks = static_cast<int>(scheds.size());
  if (scheds.empty()) {
    diag(rep, Check::structure, "no schedules to verify");
    return rep;
  }
  for (int r = 0; r < rep.ranks; ++r) {
    if (scheds[r] == nullptr) {
      diag(rep, Check::structure,
           "rank " + std::to_string(r) + ": null schedule");
      return rep;
    }
    rep.nodes += scheds[r]->nodes.size();
  }
  const Schedule& first = *scheds[0];
  for (int r = 0; r < rep.ranks; ++r) {
    const Schedule& s = *scheds[r];
    if (s.rank != r || s.size != rep.ranks) {
      diag(rep, Check::structure,
           rk(s) + "schedule compiled for rank " + std::to_string(s.rank) +
               " of " + std::to_string(s.size) + ", verified as rank " +
               std::to_string(r) + " of " + std::to_string(rep.ranks));
    }
    if (s.kind != first.kind || s.op != first.op ||
        s.root != first.root || s.dt.size() != first.dt.size() ||
        s.max_count != first.max_count) {
      diag(rep, Check::structure,
           rk(s) + "disagrees with rank 0 on kind/op/root/dtype size/"
                   "max_count — ranks compiled different collectives");
    }
  }
  if (!rep.diags.empty()) return rep;

  bool csr_ok = true;
  for (const SchedPtr& s : scheds) csr_ok &= check_structure(*s, rep);
  if (!csr_ok) return rep;

  for (const SchedPtr& s : scheds) {
    const Reach reach(*s);
    run_local(*s, reach, rep);
  }

  const std::vector<std::size_t> probes =
      probe_counts.empty() ? default_probes(first.max_count) : probe_counts;
  rep.counts_probed = probes.size();
  const auto pairs = check_matching(scheds, probes, rep);
  check_acyclic(scheds, pairs, rep);
  return rep;
}

std::string Report::to_string() const {
  std::string out = "schedule verification: ";
  if (ok()) {
    out += "OK";
  } else {
    out += std::to_string(diags.size()) + " diagnostic(s)";
  }
  out += " (" + std::to_string(ranks) + " rank(s), " +
         std::to_string(nodes) + " node(s), " + std::to_string(pairs) +
         " matched pair(s), " + std::to_string(counts_probed) +
         " count(s) probed)\n";
  for (const Diagnostic& d : diags) {
    out += "[" + std::string(verify::to_string(d.check)) + "] " + d.message +
           "\n";
    std::size_t i = 0;
    for (const CexStep& st : d.trace) {
      out += "    #" + std::to_string(i++) + " rank " +
             std::to_string(st.rank) + " node " + std::to_string(st.node) +
             (st.posted ? " (post): " : " (complete): ") + st.desc + "\n";
    }
  }
  return out;
}

ScheduleVerifyError::ScheduleVerifyError(Report r)
    : InternalError(r.to_string()), report_(std::move(r)) {}

// ---- tooling helpers -------------------------------------------------------

std::shared_ptr<Schedule> clone(const Schedule& s) {
  auto c = std::make_shared<Schedule>();
  c->kind = s.kind;
  c->algo = s.algo;
  c->dt = s.dt;
  c->op = s.op;
  c->in_place = s.in_place;
  c->root = s.root;
  c->rank = s.rank;
  c->size = s.size;
  c->max_count = s.max_count;
  c->nodes = s.nodes;
  c->succ = s.succ;
  c->succ_off = s.succ_off;
  c->indeg = s.indeg;
  c->entry = s.entry;
  c->slots = s.slots;
  c->fns = s.fns;
  c->nreq = s.nreq;
  return c;
}

void rebuild_edges(
    Schedule& s, std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  const auto n = static_cast<std::uint32_t>(s.nodes.size());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  s.succ_off.assign(n + 1, 0);
  s.indeg.assign(n, 0);
  s.entry.clear();
  for (const auto& [from, to] : edges) {
    ensures(from < to && to < n, "rebuild_edges: edge out of range");
    ++s.succ_off[from + 1];
    ++s.indeg[to];
  }
  for (std::uint32_t i = 0; i < n; ++i) s.succ_off[i + 1] += s.succ_off[i];
  s.succ.resize(edges.size());
  std::vector<std::uint32_t> cursor(s.succ_off.begin(),
                                    s.succ_off.end() - 1);
  for (const auto& [from, to] : edges) s.succ[cursor[from]++] = to;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (s.indeg[i] == 0) s.entry.push_back(i);
  }
}

namespace {

std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list(
    const Schedule& s) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (std::uint32_t u = 0; u < s.nodes.size(); ++u) {
    for (std::uint32_t k = s.succ_off[u]; k < s.succ_off[u + 1]; ++k) {
      out.push_back({u, s.succ[k]});
    }
  }
  return out;
}

}  // namespace

bool inject_fault(Schedule& s, std::string_view name) {
  if (name == "swap_tag") {
    for (Node& nd : s.nodes) {
      if (nd.kind == NodeKind::send) {
        nd.tag_off = static_cast<std::uint16_t>((nd.tag_off + 1) % 64);
        return true;
      }
    }
    return false;
  }
  if (name == "truncate_part") {
    for (Node& nd : s.nodes) {
      if (nd.kind == NodeKind::send) {
        // Halve the top of the range rationally: [b0/d, b1/d) becomes
        // [2*b0/2d, (2*b1-1)/2d) — strictly fewer resolved elements at
        // large counts, exactly the "one rank truncated its count" bug.
        nd.a.r = Part{nd.a.r.div * 2, nd.a.r.b0 * 2, nd.a.r.b1 * 2 - 1};
        return true;
      }
    }
    return false;
  }
  if (name == "drop_edge") {
    // Remove a load-bearing edge: one whose endpoints conflict directly
    // and stay unordered once it is gone (no transitive detour).
    const auto full = edge_list(s);
    for (std::size_t e = 0; e < full.size(); ++e) {
      const auto [u, v] = full[e];
      if (!nodes_conflict(s.nodes[u], s.nodes[v])) continue;
      auto pruned = full;
      pruned.erase(pruned.begin() + static_cast<std::ptrdiff_t>(e));
      rebuild_edges(s, pruned);
      if (!Reach(s).get(u, v)) return true;
      rebuild_edges(s, full);  // detour exists; restore and keep looking
    }
    return false;
  }
  if (name == "reorder_reduce") {
    // Strip every ordering edge into the second of two accumulating
    // reduces, leaving the accumulation order undefined.
    for (std::uint32_t i = 0; i < s.nodes.size(); ++i) {
      if (s.nodes[i].kind != NodeKind::reduce) continue;
      for (std::uint32_t j = i + 1; j < s.nodes.size(); ++j) {
        if (s.nodes[j].kind != NodeKind::reduce ||
            !refs_conflict(s.nodes[i].b, s.nodes[j].b)) {
          continue;
        }
        auto edges = edge_list(s);
        std::erase_if(edges, [j](const auto& e) { return e.second == j; });
        rebuild_edges(s, std::move(edges));
        return true;
      }
    }
    return false;
  }
  return false;
}

}  // namespace mpx::coll::ir::verify

namespace mpx::coll::ir {

verify::Report Builder::verify() const {
  // Local battery only: materialize a throwaway schedule (max_count is
  // irrelevant — the checks are symbolic) and run the single-rank passes.
  return verify::verify_local(*materialize(Algo::auto_, 0, 1));
}

}  // namespace mpx::coll::ir
