// The compiled-schedule executor: a ProgressSource ("coll-exec") that runs
// Schedule graphs to completion from inside the progress engine.
//
// Execution state lives in pooled ExecCursors. launch() arms a cursor
// (resolves the symbolic block ranges against the call's count, seeds the
// ready set from the graph's entry nodes) and pushes it onto the target
// VCI's inbox — a Treiber MPSC stack, because member threads launch while
// the VCI owner polls. Each poll drains the inbox and steps every running
// cursor: harvest completed sends/receives, walk the CSR successor lists,
// post or locally execute newly ready nodes, repeat until a pass makes no
// progress. A drained graph completes the cursor's generalized request.
//
// The steady-state allocation story (the point of the cache): a cursor is
// pool storage, its per-run arrays live in one pooled buffer sized by the
// schedule, its scratch arena comes from the schedule's recycler, and the
// grequest recycles through the request pool — a repeated cached collective
// touches the allocator zero times. Persistent handles go further and pin
// one cursor for their lifetime; start() only re-arms it.
//
// This file is model-checked (MODELED_FILES): cross-thread state uses
// mc::atomic, per-VCI state is plain and serialized by the VCI lock.
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "ir_internal.hpp"
#include "mpx/base/buffer.hpp"
#include "mpx/base/cvar.hpp"
#include "mpx/base/pool.hpp"
#include "mpx/core/progress_source.hpp"
#include "mpx/core/world.hpp"
#include "mpx/mc/mc.hpp"
#include "mpx/mc/sync.hpp"

namespace mpx::coll::ir {
namespace {

using core_detail::ProgressSource;
using core_detail::RequestImpl;
using core_detail::Vci;

class SchedExecSource;

/// One in-flight (or pinned) schedule execution. Created by launch(),
/// stepped by the executor under the VCI lock, destroyed at completion
/// (or owned by a persistent handle when pinned).
struct ExecCursor {
  ExecCursor* next = nullptr;  ///< inbox / running-list link

  SchedPtr sched;
  Comm comm;       ///< collective-context view the nodes post on
  Request handle;  ///< grequest completed when the graph drains
  const std::byte* sbuf = nullptr;
  std::byte* rbuf = nullptr;
  std::size_t count = 0;
  int tag = 0;
  bool pinned = false;  ///< owned by a persistent handle, not the executor

  /// One pooled block holds every per-run array (laid out by state_layout);
  /// sized once per schedule and reused across persistent cycles.
  base::Buffer state;
  std::byte* arena = nullptr;  ///< scratch arena from the schedule recycler
  std::size_t arena_sz = 0;
  std::size_t* slot_off = nullptr;   ///< [nslots] arena byte offsets
  Request* reqs = nullptr;           ///< [nreq] request slots
  std::uint32_t* ready = nullptr;    ///< [nodes] ready stack
  std::uint32_t* inflight = nullptr; ///< [nreq] posted node ids
  std::uint16_t* deps = nullptr;     ///< [nodes] remaining dependency counts
  std::uint32_t nready = 0;
  std::uint32_t ninflight = 0;
  std::uint32_t ndone = 0;
  bool reqs_live = false;  ///< reqs[] constructed (stays true while pinned)

  static void* operator new(std::size_t n);
  static void operator delete(void* p) noexcept;
};

base::FixedBlockPool& cursor_pool() {
  static base::FixedBlockPool pool(
      "coll-cursor", sizeof(ExecCursor),
      static_cast<std::size_t>(
          base::cvar_int("MPX_COLL_CURSOR_POOL_CAP", 256)));
  return pool;
}

void* ExecCursor::operator new(std::size_t n) {
  return cursor_pool().allocate(n);
}
void ExecCursor::operator delete(void* p) noexcept {
  cursor_pool().deallocate(p);
}

// ---- per-run state block ---------------------------------------------------

constexpr std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) & ~(a - 1);
}

struct StateLayout {
  std::size_t slot_off = 0;
  std::size_t reqs = 0;
  std::size_t ready = 0;
  std::size_t inflight = 0;
  std::size_t deps = 0;
  std::size_t total = 0;
};

/// Offsets of the per-run arrays within one pooled block, members ordered
/// by alignment so no element is misaligned (pooled buffers are at least
/// pointer-aligned).
StateLayout state_layout(const Schedule& s) {
  const std::size_t n = s.nodes.size();
  StateLayout l;
  std::size_t off = 0;
  l.slot_off = off;
  off += s.slots.size() * sizeof(std::size_t);
  l.reqs = off = align_up(off, alignof(Request));
  off += s.nreq * sizeof(Request);
  l.ready = off = align_up(off, alignof(std::uint32_t));
  off += n * sizeof(std::uint32_t);
  l.inflight = off;
  off += s.nreq * sizeof(std::uint32_t);
  l.deps = off = align_up(off, alignof(std::uint16_t));
  off += n * sizeof(std::uint16_t);
  l.total = off != 0 ? off : 1;
  return l;
}

/// Bind (allocating on first use) the cursor's state block and scratch
/// arena. Scratch offsets are laid out at the schedule's max_count, so the
/// layout is count-independent and a pinned cursor never relocates slots.
void bind_state(ExecCursor& c) {
  const Schedule& s = *c.sched;
  const StateLayout l = state_layout(s);
  if (c.state.size() < l.total) c.state = base::pooled_buffer(l.total);
  std::byte* base = c.state.data();
  c.slot_off = reinterpret_cast<std::size_t*>(base + l.slot_off);
  c.reqs = reinterpret_cast<Request*>(base + l.reqs);
  c.ready = reinterpret_cast<std::uint32_t*>(base + l.ready);
  c.inflight = reinterpret_cast<std::uint32_t*>(base + l.inflight);
  c.deps = reinterpret_cast<std::uint16_t*>(base + l.deps);
  for (std::size_t i = 0; i < s.slots.size(); ++i) {
    c.slot_off[i] = s.slot_offset(static_cast<std::uint16_t>(i), s.max_count);
  }
  const std::size_t ab = s.arena_bytes(s.max_count);
  if (c.arena == nullptr && ab != 0) {
    c.arena = s.arena_pool.get(ab);
    c.arena_sz = ab;
  }
}

/// Arm one execution: bind buffers, reset the dependency counts to the
/// schedule's indegrees, seed the ready stack with the entry nodes.
void arm(ExecCursor& c, const void* sendbuf, void* recvbuf,
         std::size_t count) {
  const Schedule& s = *c.sched;
  expects(count <= s.max_count,
          "coll ir: count exceeds the schedule's count class");
  c.sbuf = static_cast<const std::byte*>(sendbuf);
  c.rbuf = static_cast<std::byte*>(recvbuf);
  c.count = count;
  bind_state(c);
  const std::size_t n = s.nodes.size();
  if (n != 0) std::memcpy(c.deps, s.indeg.data(), n * sizeof(std::uint16_t));
  c.nready = 0;
  for (std::uint32_t e : s.entry) c.ready[c.nready++] = e;
  c.ninflight = 0;
  c.ndone = 0;
  if (!c.reqs_live) {
    for (std::uint32_t i = 0; i < s.nreq; ++i) new (&c.reqs[i]) Request();
    c.reqs_live = true;
  }
}

/// Release everything arm()/bind_state() acquired. The cursor itself
/// survives (its owner decides whether to delete it).
void release_exec_state(ExecCursor& c) {
  if (c.reqs_live) {
    for (std::uint32_t i = 0; i < c.sched->nreq; ++i) c.reqs[i].~Request();
    c.reqs_live = false;
  }
  if (c.arena != nullptr) {
    c.sched->arena_pool.put(c.arena, c.arena_sz);
    c.arena = nullptr;
    c.arena_sz = 0;
  }
}

void destroy_cursor(ExecCursor* c) {
  release_exec_state(*c);
  delete c;
}

// ---- node execution --------------------------------------------------------

/// Resolve an operand against the armed buffers. Scratch refs index within
/// their slot's arena window; user-space refs index the user buffers.
std::byte* ref_ptr(const ExecCursor& c, const Ref& r) {
  const std::size_t esz = c.sched->dt.size();
  switch (r.space) {
    case Space::send:
      return const_cast<std::byte*>(c.sbuf) + r.r.lo(c.count) * esz;
    case Space::recv:
      return c.rbuf + r.r.lo(c.count) * esz;
    case Space::scratch:
      return c.arena + c.slot_off[r.slot] + r.r.lo(c.count) * esz;
    case Space::none:
      break;
  }
  expects(false, "coll ir: operand without a buffer space");
  return nullptr;
}

/// Post one send/recv node on the cursor's comm.
///
/// This runs inside the progress engine, on the VCI whose lock the engine
/// already holds; isend/irecv re-acquire that same lock recursively — the
/// sanctioned re-entry the VCI mutex is recursive for, identical to
/// Sched::issue_round firing from the coll-hook stage.
// mpxlint: allow(progress-contract) posting re-enters the held recursive VCI lock, like Sched::issue_round
void post_node(ExecCursor& c, std::uint32_t nid) {
  const Schedule& s = *c.sched;
  const Node& nd = s.nodes[nid];
  const int tag = c.tag + nd.tag_off;
  if (nd.kind == NodeKind::send) {
    c.reqs[nd.req_slot] = c.comm.isend(
        ref_ptr(c, nd.a), nd.a.r.elems(c.count), s.dt, nd.peer, tag);
  } else {
    c.reqs[nd.req_slot] = c.comm.irecv(
        ref_ptr(c, nd.b), nd.b.r.elems(c.count), s.dt, nd.peer, tag);
  }
}

/// Execute a local (copy/reduce/fn) node.
void exec_local(ExecCursor& c, const Node& nd) {
  const Schedule& s = *c.sched;
  const std::size_t esz = s.dt.size();
  switch (nd.kind) {
    case NodeKind::copy: {
      const std::size_t bytes = nd.b.r.elems(c.count) * esz;
      if (bytes != 0) std::memcpy(ref_ptr(c, nd.b), ref_ptr(c, nd.a), bytes);
      break;
    }
    case NodeKind::reduce: {
      const std::size_t elems = nd.b.r.elems(c.count);
      if (elems != 0) {
        dtype::reduce_apply(s.op, ref_ptr(c, nd.a), ref_ptr(c, nd.b), elems,
                            s.dt);
      }
      break;
    }
    case NodeKind::fn: {
      ExecView v;
      v.sendbuf = c.sbuf;
      v.recvbuf = c.rbuf;
      v.scratch = c.arena;
      v.count = c.count;
      v.esz = esz;
      v.rank = s.rank;
      v.size = s.size;
      s.fns[nd.fn_id](v);
      break;
    }
    default:
      break;
  }
}

/// A node finished: retire it and push newly unblocked successors.
void finish_node(ExecCursor& c, std::uint32_t nid) {
  const Schedule& s = *c.sched;
  ++c.ndone;
  for (std::uint32_t i = s.succ_off[nid]; i < s.succ_off[nid + 1]; ++i) {
    const std::uint32_t t = s.succ[i];
    if (--c.deps[t] == 0) c.ready[c.nready++] = t;
  }
}

/// Advance one cursor as far as it will go. Returns true when the whole
/// graph has executed. Runs under the cursor's VCI lock.
bool step(ExecCursor& c, int* made) {
  const Schedule& s = *c.sched;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Harvest completed communication (swap-pop keeps the scan dense).
    for (std::uint32_t i = 0; i < c.ninflight;) {
      const std::uint32_t nid = c.inflight[i];
      Request& rq = c.reqs[s.nodes[nid].req_slot];
      if (rq.is_complete()) {
        rq = Request();  // release the impl ref; the slot may be reused
        c.inflight[i] = c.inflight[--c.ninflight];
        finish_node(c, nid);
        *made += 1;
        progressed = true;
      } else {
        ++i;
      }
    }
    // Drain the ready stack: post communication, run local work inline.
    while (c.nready != 0) {
      const std::uint32_t nid = c.ready[--c.nready];
      const Node& nd = s.nodes[nid];
      if (nd.kind == NodeKind::send || nd.kind == NodeKind::recv) {
        post_node(c, nid);
        c.inflight[c.ninflight++] = nid;
      } else {
        exec_local(c, nd);
        finish_node(c, nid);
        *made += 1;
      }
      progressed = true;
    }
  }
  return c.ndone == s.nodes.size();
}

// ---- the progress source ---------------------------------------------------

/// Per-(rank, vci) execution lane.
struct Slot {
  /// Treiber MPSC inbox: any member thread pushes launched cursors, the
  /// VCI's poll drains with one exchange.
  mc::atomic<ExecCursor*> inbox{nullptr};
  /// Count of cursors this lane owes progress (inbox + running). Relaxed,
  /// same contract as the engine's hook_count: polling may briefly lag a
  /// remote launch, never miss it forever.
  mc::atomic<std::uint32_t> pending{0};
  /// Armed cursors being stepped; plain — only the VCI lock's holder
  /// touches it.
  ExecCursor* running = nullptr;
};

class SchedExecSource final : public ProgressSource {
 public:
  explicit SchedExecSource(World& w)
      : nvcis_(w.config().max_vcis),
        slots_(static_cast<std::size_t>(w.config().nranks) *
               static_cast<std::size_t>(w.config().max_vcis)) {}

  ~SchedExecSource() override {
    // World teardown: free executor-owned cursors; pinned ones belong to
    // their persistent handles (whose PinnedColl frees them).
    for (Slot& sl : slots_) {
      drop_chain(sl.inbox.exchange(nullptr, std::memory_order_acquire));
      drop_chain(sl.running);
      MPX_MC_PLAIN_WRITE(&sl.running, "teardown of the running list");
      sl.running = nullptr;
    }
  }

  const char* name() const override { return "coll-exec"; }
  unsigned mask_bit() const override { return progress_coll; }

  bool idle(Vci& v) override {
    return slot(v).pending.load(std::memory_order_relaxed) == 0;
  }

  void poll(Vci& v, int* made) override {
    Slot& sl = slot(v);
    drain_inbox(sl);
    ExecCursor** pp = &sl.running;
    while (*pp != nullptr) {
      ExecCursor* c = *pp;
      if (step(*c, made)) {
        *pp = c->next;
        retire(sl, c);
        *made += 1;
      } else {
        pp = &c->next;
      }
    }
  }

  bool quiescent(Vci& v) override {
    return slot(v).pending.load(std::memory_order_relaxed) == 0;
  }

  /// Hand an armed cursor to its VCI's lane. Called from the launching
  /// member thread; the push is the release edge the polling thread's
  /// acquire exchange pairs with, so the cursor's armed state is visible.
  void enqueue(ExecCursor* c, int rank, int vci) {
    Slot& sl = slots_[static_cast<std::size_t>(rank) *
                          static_cast<std::size_t>(nvcis_) +
                      static_cast<std::size_t>(vci)];
    sl.pending.fetch_add(1, std::memory_order_relaxed);
    ExecCursor* head = sl.inbox.load(std::memory_order_relaxed);
    for (;;) {
      MPX_MC_PLAIN_WRITE(&c->next, "cursor inbox link");
      c->next = head;
      if (sl.inbox.compare_exchange_strong(head, c,
                                           std::memory_order_release)) {
        break;
      }
    }
  }

 private:
  Slot& slot(Vci& v) {
    return slots_[static_cast<std::size_t>(core_detail::vci_rank(v)) *
                      static_cast<std::size_t>(nvcis_) +
                  static_cast<std::size_t>(core_detail::vci_id(v))];
  }

  /// Move freshly launched cursors onto the running list, oldest first
  /// (the Treiber stack yields newest-first).
  void drain_inbox(Slot& sl) {
    ExecCursor* c = sl.inbox.exchange(nullptr, std::memory_order_acquire);
    if (c == nullptr) return;
    ExecCursor* rev = nullptr;
    while (c != nullptr) {
      ExecCursor* nx = c->next;
      MPX_MC_PLAIN_WRITE(&c->next, "cursor running link");
      c->next = rev;
      rev = c;
      c = nx;
    }
    ExecCursor** pp = &sl.running;
    while (*pp != nullptr) pp = &(*pp)->next;
    *pp = rev;
  }

  /// A cursor's graph drained: recycle it (unless pinned) and complete its
  /// grequest. The cursor is already off the running list, so completion
  /// hooks (persistent cycle accounting) see a quiescent executor.
  void retire(Slot& sl, ExecCursor* c) {
    Request h = std::move(c->handle);
    if (!c->pinned) destroy_cursor(c);
    sl.pending.fetch_sub(1, std::memory_order_relaxed);
    World::grequest_complete(h);
  }

  static void drop_chain(ExecCursor* c) {
    while (c != nullptr) {
      ExecCursor* nx = c->next;
      if (!c->pinned) destroy_cursor(c);
      c = nx;
    }
  }

  const int nvcis_;
  std::vector<Slot> slots_;
};

std::unique_ptr<ProgressSource> make_exec_source(World& w) {
  return std::make_unique<SchedExecSource>(w);
}

/// Static registrar: linking the coll IR layer gives every World the
/// executor stage (see register_static_source's contract). Any reference
/// into this TU — launch(), the front end — pulls the registration in.
[[maybe_unused]] const bool registered =
    (core_detail::register_static_source(&make_exec_source), true);

/// The world's executor stage, resolved once per comm and cached in the
/// comm's extension (the registry scan is cold-path only).
SchedExecSource& exec_source(const Comm& comm) {
  CollCommExt& ext = coll_ext(comm);
  if (void* cached = ext.exec.load(std::memory_order_acquire)) {
    return *static_cast<SchedExecSource*>(cached);
  }
  const core_detail::ProgressRegistry& reg = comm.world().progress_registry();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    if (auto* src = dynamic_cast<SchedExecSource*>(&reg.at(i))) {
      ext.exec.store(src, std::memory_order_release);
      return *src;
    }
  }
  expects(false, "coll ir: coll-exec progress source not registered");
  std::abort();
}

ExecCursor* new_cursor(SchedPtr sched, const Comm& comm, bool pinned) {
  expects(sched != nullptr && comm.valid(), "coll ir launch: bad arguments");
  expects(sched->size == comm.size() && sched->rank == comm.rank(),
          "coll ir launch: schedule compiled for a different comm shape");
  auto* c = new ExecCursor;
  c->sched = std::move(sched);
  c->comm = comm.coll_view();
  c->pinned = pinned;
  return c;
}

}  // namespace

Request launch(SchedPtr sched, const void* sendbuf, void* recvbuf,
               std::size_t count, const Comm& comm) {
  ExecCursor* c = new_cursor(std::move(sched), comm, /*pinned=*/false);
  c->tag = comm.next_coll_tag();
  arm(*c, sendbuf, recvbuf, count);
  const Stream st = c->comm.stream();
  c->handle = c->comm.world().grequest_start(st, core_detail::GrequestFns{});
  Request out = c->handle;
  exec_source(comm).enqueue(c, st.rank(), st.vci());
  return out;
}

namespace {

/// Owner of a persistent collective's pinned cursor; the persistent handle
/// keeps one alive (via make_persistent_generic's `pinned`), so the
/// cursor, its state block, and its scratch arena outlive every cycle and
/// are freed exactly once, when the handle's last reference drops.
struct PinnedColl {
  ExecCursor* cur = nullptr;
  ~PinnedColl() {
    if (cur != nullptr) destroy_cursor(cur);
  }
};

}  // namespace

Request persistent_launch(SchedPtr sched, const void* sendbuf, void* recvbuf,
                          std::size_t count, const Comm& comm) {
  auto pin = std::make_shared<PinnedColl>();
  pin->cur = new_cursor(std::move(sched), comm, /*pinned=*/true);
  ExecCursor* c = pin->cur;
  // Pay the state-block and arena allocations at init time: every start()
  // after this touches only pre-built storage.
  bind_state(*c);
  SchedExecSource* ex = &exec_source(comm);
  const Stream st = c->comm.stream();
  const Comm user = comm;  // the collective tag counter lives on the comm
  auto factory = [c, ex, st, user, sendbuf, recvbuf,
                  count]() -> base::Ref<RequestImpl> {
    // One cycle: fresh collective tag (members start persistent ops in the
    // same order, so tags line up), re-arm the pinned state, fresh pooled
    // grequest, hand the cursor to the executor.
    c->tag = user.next_coll_tag();
    arm(*c, sendbuf, recvbuf, count);
    c->handle =
        c->comm.world().grequest_start(st, core_detail::GrequestFns{});
    auto inner = base::Ref<RequestImpl>::share(c->handle.impl());
    ex->enqueue(c, st.rank(), st.vci());
    return inner;
  };
  return make_persistent_generic(c->comm.world(), st, std::move(factory),
                                 std::move(pin));
}

}  // namespace mpx::coll::ir
