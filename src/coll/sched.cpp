#include "mpx/coll/sched.hpp"

#include <cstring>

#include "mpx/core/async.hpp"
#include "mpx/core/world.hpp"

namespace mpx::coll {

Sched::Sched(const Comm& comm)
    : comm_(comm.coll_view()), tag_(comm.next_coll_tag()) {}

void Sched::add_isend(const void* buf, std::size_t count, dtype::Datatype dt,
                      int dst, int tag_offset) {
  expects(tag_offset >= 0 && tag_offset < 64, "Sched: tag_offset must be < 64");
  CommOp op;
  op.is_send = true;
  op.sbuf = buf;
  op.count = count;
  op.dt = std::move(dt);
  op.peer = dst;
  op.tag_offset = tag_offset;
  cur().comm_ops.push_back(std::move(op));
}

void Sched::add_irecv(void* buf, std::size_t count, dtype::Datatype dt,
                      int src, int tag_offset) {
  expects(tag_offset >= 0 && tag_offset < 64, "Sched: tag_offset must be < 64");
  CommOp op;
  op.rbuf = buf;
  op.count = count;
  op.dt = std::move(dt);
  op.peer = src;
  op.tag_offset = tag_offset;
  cur().comm_ops.push_back(std::move(op));
}

void Sched::add_copy(const void* src, void* dst, std::size_t bytes) {
  PostOp op;
  op.kind = PostOp::Kind::copy;
  op.in = src;
  op.out = dst;
  op.bytes = bytes;
  cur().post_ops.push_back(std::move(op));
}

void Sched::add_reduce(const void* in, void* inout, std::size_t count,
                       dtype::Datatype dt, dtype::ReduceOp rop) {
  PostOp op;
  op.kind = PostOp::Kind::reduce;
  op.in = in;
  op.out = inout;
  op.count = count;
  op.dt = std::move(dt);
  op.op = rop;
  cur().post_ops.push_back(std::move(op));
}

void Sched::add_fn(std::function<void()> fn) {
  PostOp op;
  op.kind = PostOp::Kind::fn;
  op.fn = std::move(fn);
  cur().post_ops.push_back(std::move(op));
}

void Sched::next_round() { rounds_.emplace_back(); }

std::byte* Sched::scratch(std::size_t bytes) {
  scratch_.emplace_back(bytes);
  return scratch_.back().data();
}

void Sched::issue_round(std::size_t idx) {
  Round& r = rounds_[idx];
  r.reqs.reserve(r.comm_ops.size());
  for (const CommOp& op : r.comm_ops) {
    if (op.is_send) {
      r.reqs.push_back(
          comm_.isend(op.sbuf, op.count, op.dt, op.peer, tag_ + op.tag_offset));
    } else {
      r.reqs.push_back(
          comm_.irecv(op.rbuf, op.count, op.dt, op.peer, tag_ + op.tag_offset));
    }
  }
}

bool Sched::poll() {
  if (!started_) {
    started_ = true;
    issue_round(0);
  }
  for (;;) {
    Round& r = rounds_[cur_round_];
    for (const Request& rq : r.reqs) {
      if (!rq.is_complete()) return false;  // wait; no progress side effects
    }
    for (const PostOp& op : r.post_ops) {
      switch (op.kind) {
        case PostOp::Kind::copy:
          std::memcpy(op.out, op.in, op.bytes);
          break;
        case PostOp::Kind::reduce:
          dtype::reduce_apply(op.op, op.in, op.out, op.count, op.dt);
          break;
        case PostOp::Kind::fn:
          op.fn();
          break;
      }
    }
    if (++cur_round_ == rounds_.size()) return true;
    issue_round(cur_round_);
    // Loop: the new round's requests may already be complete (e.g. buffered
    // sends or already-arrived eager data), letting short schedules finish
    // within one poll.
  }
}

AsyncResult Sched::poll_trampoline(AsyncThing& thing) {
  auto* s = static_cast<Sched*>(thing.state());
  if (!s->poll()) return AsyncResult::pending;
  Request handle = std::move(s->handle_);
  delete s;
  World::grequest_complete(handle);
  return AsyncResult::done;
}

Request Sched::commit(std::unique_ptr<Sched> sched) {
  expects(sched != nullptr, "Sched::commit: null schedule");
  Sched* s = sched.release();
  if (s->rounds_.empty()) s->rounds_.emplace_back();
  World& w = s->comm_.world();
  const Stream stream = s->comm_.stream();
  s->handle_ = w.grequest_start(stream, core_detail::GrequestFns{});
  Request out = s->handle_;
  coll_hook_start(&Sched::poll_trampoline, s, stream);
  return out;
}

}  // namespace mpx::coll
