// Collective IR construction: the Builder's automatic hazard analysis and
// the immutable Schedule it freezes into.
//
// The Builder is the piece that makes flat dependency graphs writable by
// hand: algorithms emit nodes in program order with buffer operands, and
// every RAW/WAR/WAW overlap against an earlier node becomes an edge. The
// overlap test is exact on the symbolic ranges: Part endpoints are
// rationals b/div scaled by the runtime count through a monotone floor, so
// range [a0/ad, a1/ad) cannot collide with [b0/bd, b1/bd) for ANY count
// when a1*bd <= b0*ad or b1*ad <= a0*bd (cross-multiplied, no floats).
// Anything else is treated as overlapping — conservative, never unsound.
#include "mpx/coll/ir.hpp"

#include <algorithm>
#include <new>
#include <utility>

#include "ir_internal.hpp"

namespace mpx::coll::ir {

const char* to_string(Algo a) {
  switch (a) {
    case Algo::auto_: return "auto";
    case Algo::rd: return "rd";
    case Algo::ring: return "ring";
    case Algo::rsag: return "rsag";
    case Algo::knomial: return "knomial";
    case Algo::scatter_ag: return "scatter_ag";
  }
  return "?";
}

// ---- ScratchRecycler -------------------------------------------------------

namespace {
constexpr std::size_t kArenaAlign = 64;  // cache-line aligned arenas

std::size_t scratch_cap() {
  static const std::size_t cap = static_cast<std::size_t>(
      base::cvar_int("MPX_COLL_SCRATCH_CAP", 8));
  return cap;
}
}  // namespace

ScratchRecycler::~ScratchRecycler() {
  while (free_ != nullptr) {
    Node* n = free_;
    free_ = n->next;
    n->~Node();
    ::operator delete(static_cast<void*>(n), std::align_val_t(kArenaAlign));
  }
}

std::byte* ScratchRecycler::get(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  const std::size_t want = std::max(bytes, sizeof(Node));
  base::LockGuard<base::Spinlock> g(mu_);
  expects(block_bytes_ == 0 || block_bytes_ == want,
          "ScratchRecycler: arena size changed under one schedule");
  block_bytes_ = want;
  if (free_ != nullptr && !base::pool_passthrough()) {
    Node* n = free_;
    free_ = n->next;
    n->~Node();
    --st_.free_count;
    ++st_.hits;
    ++st_.live;
    return static_cast<std::byte*>(static_cast<void*>(n));
  }
  ++st_.misses;
  ++st_.live;
  return static_cast<std::byte*>(
      ::operator new(want, std::align_val_t(kArenaAlign)));
}

void ScratchRecycler::put(std::byte* p, std::size_t bytes) {
  if (p == nullptr) return;
  const std::size_t want = std::max(bytes, sizeof(Node));
  base::LockGuard<base::Spinlock> g(mu_);
  expects(block_bytes_ == want, "ScratchRecycler: put of foreign arena");
  --st_.live;
  if (st_.free_count < scratch_cap() && !base::pool_passthrough()) {
    Node* n = ::new (static_cast<void*>(p)) Node{free_};
    free_ = n;
    ++st_.free_count;
    return;
  }
  ++st_.overflow;
  ::operator delete(static_cast<void*>(p), std::align_val_t(kArenaAlign));
}

base::PoolStats ScratchRecycler::stats() const {
  base::LockGuard<base::Spinlock> g(mu_);
  return st_;
}

// ---- Schedule --------------------------------------------------------------

namespace {
std::size_t align_up(std::size_t n) {
  return (n + kArenaAlign - 1) & ~(kArenaAlign - 1);
}
}  // namespace

std::size_t Schedule::slot_offset(std::uint16_t slot,
                                  std::size_t count) const {
  std::size_t off = 0;
  for (std::uint16_t i = 0; i < slot; ++i) {
    off += align_up(slots[i].elems(count) * dt.size());
  }
  return off;
}

std::size_t Schedule::arena_bytes(std::size_t count) const {
  return slot_offset(static_cast<std::uint16_t>(slots.size()), count);
}

// ---- Builder ---------------------------------------------------------------

// Shared with the verifier (ir_verify.cpp), which re-derives each node's
// access set with the same conflict predicate — declared in ir_internal.hpp.

/// Can ranges [x.b0/x.div, x.b1/x.div) and [y.b0/y.div, y.b1/y.div)
/// intersect for some count? Exact rational comparison; floor resolution
/// preserves disjointness because floor is monotone.
bool parts_overlap(const Part& x, const Part& y) {
  const auto x0 = static_cast<std::uint64_t>(x.b0) * y.div;
  const auto x1 = static_cast<std::uint64_t>(x.b1) * y.div;
  const auto y0 = static_cast<std::uint64_t>(y.b0) * x.div;
  const auto y1 = static_cast<std::uint64_t>(y.b1) * x.div;
  return x0 < y1 && y0 < x1;
}

bool refs_conflict(const Ref& a, const Ref& b) {
  // Space::none marks an fn node's whole-memory barrier operand.
  if (a.space == Space::none || b.space == Space::none) return true;
  if (a.space != b.space) return false;
  if (a.space == Space::scratch && a.slot != b.slot) return false;
  return parts_overlap(a.r, b.r);
}

Builder::Builder(CollKind kind, dtype::Datatype dt, dtype::ReduceOp op,
                 bool in_place, int rank, int size)
    : kind_(kind), dt_(std::move(dt)), op_(op), in_place_(in_place),
      rank_(rank), size_(size) {
  expects(dt_.valid() && dt_.is_contiguous(),
          "ir::Builder: requires a contiguous datatype");
  expects(size_ >= 1 && rank_ >= 0 && rank_ < size_,
          "ir::Builder: rank out of range");
}

std::uint16_t Builder::scratch(Part size) {
  expects(size.b0 == 0 && size.b1 >= 1 && size.b1 <= size.div,
          "ir::Builder: scratch slots are prefix windows [0, b1/div)");
  expects(slots_.size() < 0xFFFF, "ir::Builder: too many scratch slots");
  slots_.push_back(size);
  return static_cast<std::uint16_t>(slots_.size() - 1);
}

void Builder::check_ref(const Ref& r) const {
  expects(r.space != Space::none, "ir::Builder: unset operand");
  expects(r.r.div >= 1 && r.r.b0 < r.r.b1, "ir::Builder: empty Part");
  if (r.space == Space::scratch) {
    expects(r.slot < slots_.size(), "ir::Builder: scratch slot out of range");
    const Part& sz = slots_[r.slot];
    expects(static_cast<std::uint64_t>(r.r.b1) * sz.div <=
                static_cast<std::uint64_t>(sz.b1) * r.r.div,
            "ir::Builder: scratch ref outside its slot");
  } else {
    expects(r.r.b1 <= r.r.div, "ir::Builder: ref outside the vector");
    if (r.space == Space::send) {
      expects(!in_place_,
              "ir::Builder: send-space ref in an in-place schedule");
    }
  }
}

std::uint32_t Builder::emit(Node nd, std::initializer_list<Access> acc) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  std::vector<Access> as(acc);
  // Hazard pass: any read/write overlap with an earlier node where at
  // least one side writes becomes a dependency edge (program order wins).
  for (std::uint32_t j = 0; j < id; ++j) {
    bool dep = false;
    for (const Access& mine : as) {
      for (const Access& theirs : accesses_[j]) {
        if (!mine.writes && !theirs.writes) continue;
        if (refs_conflict(mine.ref, theirs.ref)) {
          dep = true;
          break;
        }
      }
      if (dep) break;
    }
    if (dep) edges_.push_back({j, id});
  }
  nodes_.push_back(nd);
  accesses_.push_back(std::move(as));
  return id;
}

void Builder::assign_tag(std::uint32_t id, int peer, bool is_send) {
  TagSeq* seq = nullptr;
  for (TagSeq& t : tagseqs_) {
    if (t.peer == peer && t.is_send == is_send) {
      seq = &t;
      break;
    }
  }
  if (seq == nullptr) {
    tagseqs_.push_back(TagSeq{peer, is_send, {}});
    seq = &tagseqs_.back();
  }
  const std::size_t n = seq->nodes.size();
  nodes_[id].tag_off = static_cast<std::uint16_t>(n % 64);
  // One collective instance owns 64 tags. The (n mod 64)-th reuse is only
  // unambiguous if the previous holder of the tag was posted first —
  // matching is FIFO per (peer, tag) — so serialize onto it.
  if (n >= 64) add_manual_edge(seq->nodes[n - 64], id);
  seq->nodes.push_back(id);
}

void Builder::add_manual_edge(std::uint32_t from, std::uint32_t to) {
  edges_.push_back({from, to});
}

void Builder::send(Ref src, int peer) {
  check_ref(src);
  expects(peer >= 0 && peer < size_ && peer != rank_,
          "ir::Builder::send: bad peer");
  Node nd;
  nd.kind = NodeKind::send;
  nd.a = src;
  nd.peer = peer;
  nd.req_slot = static_cast<std::uint16_t>(nreq_++);
  const std::uint32_t id = emit(nd, {Access{src, false}});
  assign_tag(id, peer, /*is_send=*/true);
}

void Builder::recv(Ref dst, int peer) {
  check_ref(dst);
  expects(peer >= 0 && peer < size_ && peer != rank_,
          "ir::Builder::recv: bad peer");
  expects(dst.space != Space::send, "ir::Builder::recv into the send buffer");
  Node nd;
  nd.kind = NodeKind::recv;
  nd.b = dst;
  nd.peer = peer;
  nd.req_slot = static_cast<std::uint16_t>(nreq_++);
  const std::uint32_t id = emit(nd, {Access{dst, true}});
  assign_tag(id, peer, /*is_send=*/false);
}

void Builder::reduce(Ref in, Ref inout) {
  check_ref(in);
  check_ref(inout);
  // Identical Parts guarantee identical resolved lengths for every count
  // (different-position ranges of equal rational width can floor to
  // different element counts).
  expects(in.r == inout.r, "ir::Builder::reduce: operand Parts must match");
  expects(inout.space != Space::send,
          "ir::Builder::reduce into the send buffer");
  Node nd;
  nd.kind = NodeKind::reduce;
  nd.a = in;
  nd.b = inout;
  emit(nd, {Access{in, false}, Access{inout, true}});
}

void Builder::copy(Ref src, Ref dst) {
  check_ref(src);
  check_ref(dst);
  expects(src.r == dst.r, "ir::Builder::copy: operand Parts must match");
  expects(dst.space != Space::send, "ir::Builder::copy into the send buffer");
  Node nd;
  nd.kind = NodeKind::copy;
  nd.a = src;
  nd.b = dst;
  emit(nd, {Access{src, false}, Access{dst, true}});
}

void Builder::fn(FnNode f) {
  expects(static_cast<bool>(f), "ir::Builder::fn: empty function");
  expects(fns_.size() < 0xFFFF, "ir::Builder: too many fn nodes");
  Node nd;
  nd.kind = NodeKind::fn;
  nd.fn_id = static_cast<std::uint16_t>(fns_.size());
  fns_.push_back(std::move(f));
  // Whole-memory barrier operand: ordered against every other node.
  emit(nd, {Access{Ref{}, true}});
}

SchedPtr Builder::materialize(Algo algo, int root,
                              std::size_t max_count) const {
  auto s = std::make_shared<Schedule>();
  s->kind = kind_;
  s->algo = algo;
  s->dt = dt_;
  s->op = op_;
  s->in_place = in_place_;
  s->root = root;
  s->rank = rank_;
  s->size = size_;
  s->max_count = max_count;
  s->nreq = nreq_;

  const auto n = static_cast<std::uint32_t>(nodes_.size());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  s->succ_off.assign(n + 1, 0);
  s->indeg.assign(n, 0);
  for (const auto& [from, to] : edges) {
    expects(from < to, "ir::Builder: edge against program order");
    ++s->succ_off[from + 1];
    expects(s->indeg[to] != 0xFFFF, "ir::Builder: dependency count overflow");
    ++s->indeg[to];
  }
  for (std::uint32_t i = 0; i < n; ++i) s->succ_off[i + 1] += s->succ_off[i];
  s->succ.resize(edges.size());
  std::vector<std::uint32_t> cursor(s->succ_off.begin(),
                                    s->succ_off.end() - 1);
  for (const auto& [from, to] : edges) s->succ[cursor[from]++] = to;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (s->indeg[i] == 0) s->entry.push_back(i);
  }
  s->nodes = nodes_;
  s->slots = slots_;
  s->fns = fns_;
  return s;
}

SchedPtr Builder::finish(Algo algo, int root, std::size_t max_count) {
  return materialize(algo, root, max_count);
}

}  // namespace mpx::coll::ir
