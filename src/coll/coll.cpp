// Collective algorithm constructions. Each i-collective builds a Sched and
// commits it; blocking forms wait on the comm's stream.
#include "mpx/coll/coll.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "mpx/base/cvar.hpp"
#include "mpx/coll/ir.hpp"
#include "mpx/core/waittest.hpp"

namespace mpx::coll {

namespace {
const std::byte in_place_tag{};

void wait_blocking(Request r, const Comm& comm) {
  wait_on_stream(r, comm.stream());
}

/// MPX_COLL_IR=0 pins every collective to the legacy round-based builders
/// (escape hatch + the bench's baseline series).
bool coll_ir_enabled() {
  static const bool v = base::cvar_bool("MPX_COLL_IR", true);
  return v;
}

/// The compiled path serves contiguous datatypes with a nonzero payload;
/// zero-count calls stay on the round-based builders (they synchronize
/// with zero-byte messages and some pass null buffers, which the compiled
/// front end rejects).
bool use_ir(const dtype::Datatype& dt, std::size_t count) {
  return count != 0 && coll_ir_enabled() && ir::eligible(dt);
}

int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

const void* const in_place = &in_place_tag;

// --- barrier: dissemination ---

Request ibarrier(const Comm& comm) {
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  auto byte_dt = dtype::Datatype::byte();
  for (int dist = 1; dist < size; dist *= 2) {
    std::byte* token = s->scratch(2);
    s->add_isend(token, 1, byte_dt, (rank + dist) % size);
    s->add_irecv(token + 1, 1, byte_dt, (rank - dist + size) % size);
    s->next_round();
  }
  return Sched::commit(std::move(s));
}

void barrier(const Comm& comm) { wait_blocking(ibarrier(comm), comm); }

// --- bcast: binomial tree (short) / pipelined chain (long) ---

namespace {
/// Crossover to the chain algorithm, overridable via MPX_BCAST_LONG_MIN.
std::size_t bcast_long_min() {
  static const auto v = static_cast<std::size_t>(
      mpx::base::cvar_int("MPX_BCAST_LONG_MIN", 128 * 1024));
  return v;
}
}  // namespace

Request ibcast(void* buf, std::size_t count, dtype::Datatype dt, int root,
               const Comm& comm) {
  if (use_ir(dt, count)) {
    return ir::ibcast(buf, count, std::move(dt), root, comm);
  }
  return ibcast_rounds(buf, count, std::move(dt), root, comm);
}

Request ibcast_rounds(void* buf, std::size_t count, dtype::Datatype dt,
                      int root, const Comm& comm) {
  if (count * dt.size() >= bcast_long_min() && comm.size() > 2) {
    return ibcast_chain(buf, count, std::move(dt), root, comm);
  }
  return ibcast_binomial(buf, count, std::move(dt), root, comm);
}

Request ibcast_binomial(void* buf, std::size_t count, dtype::Datatype dt,
                        int root, const Comm& comm) {
  expects(root >= 0 && root < comm.size(), "ibcast: root out of range");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int relative = (comm.rank() - root + size) % size;

  // Receive from the parent (lowest set bit), then fan out to children.
  int mask = 1;
  while (mask < size) {
    if ((relative & mask) != 0) {
      const int parent = (relative - mask + root + size) % size;
      s->add_irecv(buf, count, dt, parent);
      s->next_round();
      break;
    }
    mask *= 2;
  }
  mask /= 2;
  while (mask > 0) {
    if (relative + mask < size) {
      const int child = (relative + mask + root) % size;
      s->add_isend(buf, count, dt, child);
    }
    mask /= 2;
  }
  return Sched::commit(std::move(s));
}

void bcast(void* buf, std::size_t count, dtype::Datatype dt, int root,
           const Comm& comm) {
  wait_blocking(ibcast(buf, count, std::move(dt), root, comm), comm);
}

Request ibcast_chain(void* buf, std::size_t count, dtype::Datatype dt,
                     int root, const Comm& comm, std::size_t chunk_bytes) {
  expects(root >= 0 && root < comm.size(), "ibcast_chain: root out of range");
  expects(dt.is_contiguous(), "ibcast_chain: requires contiguous datatypes");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const std::size_t esz = dt.size();
  if (chunk_bytes == 0) chunk_bytes = 64 * 1024;
  const std::size_t chunk_elems =
      std::max<std::size_t>(1, chunk_bytes / (esz == 0 ? 1 : esz));
  const std::size_t nchunks =
      count == 0 ? 0 : (count + chunk_elems - 1) / chunk_elems;

  // Chain order relative to the root.
  const int pos = (comm.rank() - root + size) % size;
  const int prev = (comm.rank() - 1 + size) % size;
  const int next = (comm.rank() + 1) % size;
  auto* bytes = static_cast<std::byte*>(buf);
  auto chunk_at = [&](std::size_t c) {
    const std::size_t lo = c * chunk_elems;
    const std::size_t n = std::min(chunk_elems, count - lo);
    return std::pair<std::byte*, std::size_t>(bytes + lo * esz, n);
  };

  // Software pipeline: round k forwards chunk k-1 while receiving chunk k,
  // so the transfer of one chunk overlaps the arrival of the next.
  for (std::size_t k = 0; k <= nchunks; ++k) {
    if (k > 0 && pos < size - 1) {
      auto [p, n] = chunk_at(k - 1);
      s->add_isend(p, n, dt, next);
    }
    if (k < nchunks && pos > 0) {
      auto [p, n] = chunk_at(k);
      s->add_irecv(p, n, dt, prev);
    }
    s->next_round();
  }
  return Sched::commit(std::move(s));
}

// --- reduce: binomial tree (commutative) ---

Request ireduce(const void* sendbuf, void* recvbuf, std::size_t count,
                dtype::Datatype dt, dtype::ReduceOp op, int root,
                const Comm& comm) {
  if (use_ir(dt, count)) {
    return ir::ireduce(sendbuf, recvbuf, count, std::move(dt), op, root,
                       comm);
  }
  return ireduce_rounds(sendbuf, recvbuf, count, std::move(dt), op, root,
                        comm);
}

Request ireduce_rounds(const void* sendbuf, void* recvbuf, std::size_t count,
                       dtype::Datatype dt, dtype::ReduceOp op, int root,
                       const Comm& comm) {
  expects(root >= 0 && root < comm.size(), "ireduce: root out of range");
  expects(dt.is_contiguous(),
          "ireduce: reductions require contiguous datatypes");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const int relative = (rank - root + size) % size;
  const std::size_t bytes = count * dt.size();

  // Accumulator: root reduces directly into recvbuf; others into scratch.
  std::byte* acc =
      rank == root ? static_cast<std::byte*>(recvbuf) : s->scratch(bytes);
  const void* init = sendbuf == in_place ? recvbuf : sendbuf;
  if (static_cast<const void*>(acc) != init) {
    std::memcpy(acc, init, bytes);  // capture input at call time
  }

  int mask = 1;
  while (mask < size) {
    if ((relative & mask) == 0) {
      const int child_rel = relative | mask;
      if (child_rel < size) {
        const int child = (child_rel + root) % size;
        std::byte* tmp = s->scratch(bytes);
        s->add_irecv(tmp, count, dt, child);
        s->add_reduce(tmp, acc, count, dt, op);
        s->next_round();
      }
    } else {
      const int parent = ((relative & ~mask) + root) % size;
      s->add_isend(acc, count, dt, parent);
      s->next_round();
      break;
    }
    mask *= 2;
  }
  return Sched::commit(std::move(s));
}

void reduce(const void* sendbuf, void* recvbuf, std::size_t count,
            dtype::Datatype dt, dtype::ReduceOp op, int root,
            const Comm& comm) {
  wait_blocking(ireduce(sendbuf, recvbuf, count, std::move(dt), op, root,
                        comm),
                comm);
}

// --- allreduce: recursive doubling with non-pow2 fold ---

Request iallreduce(const void* sendbuf, void* recvbuf, std::size_t count,
                   dtype::Datatype dt, dtype::ReduceOp op, const Comm& comm) {
  if (use_ir(dt, count)) {
    return ir::iallreduce(sendbuf, recvbuf, count, std::move(dt), op, comm);
  }
  return iallreduce_rounds(sendbuf, recvbuf, count, std::move(dt), op, comm);
}

Request iallreduce_rounds(const void* sendbuf, void* recvbuf,
                          std::size_t count, dtype::Datatype dt,
                          dtype::ReduceOp op, const Comm& comm) {
  expects(dt.is_contiguous(),
          "iallreduce: reductions require contiguous datatypes");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const std::size_t bytes = count * dt.size();

  std::byte* acc = static_cast<std::byte*>(recvbuf);
  // Zero-count collectives pass null buffers; memcpy(null, null, 0) is UB.
  if (sendbuf != in_place && bytes != 0) std::memcpy(acc, sendbuf, bytes);

  const int pow2 = floor_pow2(size);
  const int rem = size - pow2;

  // Phase A: fold the first 2*rem ranks pairwise so pow2 ranks remain.
  // Even ranks < 2*rem hand their data to rank+1 and sit out.
  int newrank;
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      s->add_isend(acc, count, dt, rank + 1);
      s->next_round();
      newrank = -1;
    } else {
      std::byte* tmp = s->scratch(bytes);
      s->add_irecv(tmp, count, dt, rank - 1);
      s->add_reduce(tmp, acc, count, dt, op);
      s->next_round();
      newrank = rank / 2;
    }
  } else {
    newrank = rank - rem;
  }

  // Phase B: recursive doubling among the pow2 participants.
  if (newrank >= 0) {
    for (int mask = 1; mask < pow2; mask *= 2) {
      const int peer_new = newrank ^ mask;
      const int peer = peer_new < rem ? peer_new * 2 + 1 : peer_new + rem;
      std::byte* tmp = s->scratch(bytes);
      s->add_isend(acc, count, dt, peer);
      s->add_irecv(tmp, count, dt, peer);
      s->add_reduce(tmp, acc, count, dt, op);
      s->next_round();
    }
  }

  // Phase C: hand the result back to the folded-out even ranks.
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      s->add_irecv(acc, count, dt, rank + 1);
    } else {
      s->add_isend(acc, count, dt, rank - 1);
    }
    s->next_round();
  }
  return Sched::commit(std::move(s));
}

void allreduce(const void* sendbuf, void* recvbuf, std::size_t count,
               dtype::Datatype dt, dtype::ReduceOp op, const Comm& comm) {
  wait_blocking(iallreduce(sendbuf, recvbuf, count, std::move(dt), op, comm),
                comm);
}

// --- allreduce: ring (reduce-scatter + allgather) ---

Request iallreduce_ring(const void* sendbuf, void* recvbuf, std::size_t count,
                        dtype::Datatype dt, dtype::ReduceOp op,
                        const Comm& comm) {
  expects(dt.is_contiguous(),
          "iallreduce_ring: reductions require contiguous datatypes");
  const int size = comm.size();
  const int rank = comm.rank();
  if (size == 1 || count < static_cast<std::size_t>(size)) {
    // Fall back for tiny payloads where per-rank blocks would be empty.
    return iallreduce(sendbuf, recvbuf, count, std::move(dt), op, comm);
  }
  auto s = std::make_unique<Sched>(comm);
  const std::size_t esz = dt.size();
  std::byte* acc = static_cast<std::byte*>(recvbuf);
  if (sendbuf != in_place) std::memcpy(acc, sendbuf, count * esz);

  // Partition [0, count) into `size` blocks.
  auto block_lo = [&](int b) {
    return (count * static_cast<std::size_t>(b)) /
           static_cast<std::size_t>(size);
  };
  auto block_n = [&](int b) { return block_lo(b + 1) - block_lo(b); };

  const int next = (rank + 1) % size;
  const int prev = (rank - 1 + size) % size;

  // Reduce-scatter: step k sends block (rank-k) and reduces block (rank-k-1).
  for (int k = 0; k < size - 1; ++k) {
    const int sb = (rank - k + size) % size;
    const int rb = (rank - k - 1 + size) % size;
    std::byte* tmp = s->scratch(block_n(rb) * esz);
    s->add_isend(acc + block_lo(sb) * esz, block_n(sb), dt, next);
    s->add_irecv(tmp, block_n(rb), dt, prev);
    s->add_reduce(tmp, acc + block_lo(rb) * esz, block_n(rb), dt, op);
    s->next_round();
  }
  // Allgather: circulate the finished blocks around the ring.
  for (int k = 0; k < size - 1; ++k) {
    const int sb = (rank + 1 - k + size) % size;
    const int rb = (rank - k + size) % size;
    s->add_isend(acc + block_lo(sb) * esz, block_n(sb), dt, next);
    s->add_irecv(acc + block_lo(rb) * esz, block_n(rb), dt, prev);
    s->next_round();
  }
  return Sched::commit(std::move(s));
}

// --- allgather: ring ---

Request iallgather(const void* sendbuf, std::size_t count, dtype::Datatype dt,
                   void* recvbuf, const Comm& comm) {
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const std::size_t block = count * dt.size();
  auto* out = static_cast<std::byte*>(recvbuf);

  if (sendbuf != in_place) {
    std::memcpy(out + static_cast<std::size_t>(rank) * block, sendbuf, block);
  }
  const int next = (rank + 1) % size;
  const int prev = (rank - 1 + size) % size;
  for (int k = 0; k < size - 1; ++k) {
    const int sb = (rank - k + size) % size;
    const int rb = (rank - k - 1 + size) % size;
    s->add_isend(out + static_cast<std::size_t>(sb) * block, count, dt, next);
    s->add_irecv(out + static_cast<std::size_t>(rb) * block, count, dt, prev);
    s->next_round();
  }
  return Sched::commit(std::move(s));
}

void allgather(const void* sendbuf, std::size_t count, dtype::Datatype dt,
               void* recvbuf, const Comm& comm) {
  wait_blocking(iallgather(sendbuf, count, std::move(dt), recvbuf, comm),
                comm);
}

// --- gather / scatter: linear ---

Request igather(const void* sendbuf, std::size_t count, dtype::Datatype dt,
                void* recvbuf, int root, const Comm& comm) {
  expects(root >= 0 && root < comm.size(), "igather: root out of range");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const std::size_t block = count * dt.size();
  if (rank == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    for (int i = 0; i < size; ++i) {
      if (i == rank) continue;
      s->add_irecv(out + static_cast<std::size_t>(i) * block, count, dt, i);
    }
    if (sendbuf != in_place) {
      std::memcpy(out + static_cast<std::size_t>(rank) * block, sendbuf,
                  block);
    }
  } else {
    s->add_isend(sendbuf, count, dt, root);
  }
  return Sched::commit(std::move(s));
}

void gather(const void* sendbuf, std::size_t count, dtype::Datatype dt,
            void* recvbuf, int root, const Comm& comm) {
  wait_blocking(igather(sendbuf, count, std::move(dt), recvbuf, root, comm),
                comm);
}

Request iscatter(const void* sendbuf, std::size_t count, dtype::Datatype dt,
                 void* recvbuf, int root, const Comm& comm) {
  expects(root >= 0 && root < comm.size(), "iscatter: root out of range");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const std::size_t block = count * dt.size();
  if (rank == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    for (int i = 0; i < size; ++i) {
      if (i == rank) continue;
      s->add_isend(in + static_cast<std::size_t>(i) * block, count, dt, i);
    }
    if (recvbuf != in_place) {
      std::memcpy(recvbuf, in + static_cast<std::size_t>(rank) * block,
                  block);
    }
  } else {
    s->add_irecv(recvbuf, count, dt, root);
  }
  return Sched::commit(std::move(s));
}

void scatter(const void* sendbuf, std::size_t count, dtype::Datatype dt,
             void* recvbuf, int root, const Comm& comm) {
  wait_blocking(iscatter(sendbuf, count, std::move(dt), recvbuf, root, comm),
                comm);
}

// --- alltoall: pairwise rotation ---

Request ialltoall(const void* sendbuf, std::size_t count, dtype::Datatype dt,
                  void* recvbuf, const Comm& comm) {
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const std::size_t block = count * dt.size();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);

  std::memcpy(out + static_cast<std::size_t>(rank) * block,
              in + static_cast<std::size_t>(rank) * block, block);
  for (int k = 1; k < size; ++k) {
    const int dst = (rank + k) % size;
    const int src = (rank - k + size) % size;
    s->add_isend(in + static_cast<std::size_t>(dst) * block, count, dt, dst);
    s->add_irecv(out + static_cast<std::size_t>(src) * block, count, dt, src);
    s->next_round();
  }
  return Sched::commit(std::move(s));
}

void alltoall(const void* sendbuf, std::size_t count, dtype::Datatype dt,
              void* recvbuf, const Comm& comm) {
  wait_blocking(ialltoall(sendbuf, count, std::move(dt), recvbuf, comm),
                comm);
}

// --- reduce_scatter_block: ring reduce-scatter ---

Request ireduce_scatter_block(const void* sendbuf, void* recvbuf,
                              std::size_t recvcount, dtype::Datatype dt,
                              dtype::ReduceOp op, const Comm& comm) {
  expects(dt.is_contiguous(),
          "ireduce_scatter_block: requires contiguous datatypes");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const std::size_t esz = dt.size();
  const std::size_t block = recvcount * esz;

  // Work on a schedule-owned copy of the full input vector.
  std::byte* acc = s->scratch(block * static_cast<std::size_t>(size));
  const void* init = sendbuf == in_place ? recvbuf : sendbuf;
  std::memcpy(acc, init, block * static_cast<std::size_t>(size));

  const int next = (rank + 1) % size;
  const int prev = (rank - 1 + size) % size;
  // Step k: send block (rank - k - 1), receive + reduce block
  // (rank - k - 2). Partial reductions move up the ring one hop per step;
  // with this phase shift each rank reduces ITS OWN block on the final
  // step, so no post-rotation is needed.
  for (int k = 0; k < size - 1; ++k) {
    const int sb = (rank - k - 1 + 2 * size) % size;
    const int rb = (rank - k - 2 + 2 * size) % size;
    std::byte* tmp = s->scratch(block);
    s->add_isend(acc + static_cast<std::size_t>(sb) * block, recvcount, dt,
                 next);
    s->add_irecv(tmp, recvcount, dt, prev);
    s->add_reduce(tmp, acc + static_cast<std::size_t>(rb) * block, recvcount,
                  dt, op);
    s->next_round();
  }
  s->add_copy(acc + static_cast<std::size_t>(rank) * block, recvbuf, block);
  return Sched::commit(std::move(s));
}

void reduce_scatter_block(const void* sendbuf, void* recvbuf,
                          std::size_t recvcount, dtype::Datatype dt,
                          dtype::ReduceOp op, const Comm& comm) {
  wait_blocking(ireduce_scatter_block(sendbuf, recvbuf, recvcount,
                                      std::move(dt), op, comm),
                comm);
}

// --- scan: linear chain (latency O(P), simple and robust) ---

Request iscan(const void* sendbuf, void* recvbuf, std::size_t count,
              dtype::Datatype dt, dtype::ReduceOp op, const Comm& comm) {
  expects(dt.is_contiguous(), "iscan: requires contiguous datatypes");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const std::size_t bytes = count * dt.size();

  std::byte* acc = static_cast<std::byte*>(recvbuf);
  // Zero-count collectives pass null buffers; memcpy(null, null, 0) is UB.
  if (sendbuf != in_place && bytes != 0) std::memcpy(acc, sendbuf, bytes);

  if (rank > 0) {
    std::byte* tmp = s->scratch(bytes);
    s->add_irecv(tmp, count, dt, rank - 1);
    s->add_reduce(tmp, acc, count, dt, op);
    s->next_round();
  }
  if (rank < size - 1) {
    s->add_isend(acc, count, dt, rank + 1);
  }
  return Sched::commit(std::move(s));
}

void scan(const void* sendbuf, void* recvbuf, std::size_t count,
          dtype::Datatype dt, dtype::ReduceOp op, const Comm& comm) {
  wait_blocking(iscan(sendbuf, recvbuf, count, std::move(dt), op, comm),
                comm);
}

Request iexscan(const void* sendbuf, void* recvbuf, std::size_t count,
                dtype::Datatype dt, dtype::ReduceOp op, const Comm& comm) {
  expects(dt.is_contiguous(), "iexscan: requires contiguous datatypes");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const std::size_t bytes = count * dt.size();

  // Forward value: op(x_0..x_rank), built from the received prefix and our
  // own contribution; travels down the chain.
  std::byte* fwd = s->scratch(bytes);
  std::memcpy(fwd, sendbuf == in_place ? recvbuf : sendbuf, bytes);

  if (rank > 0) {
    // Receive the exclusive prefix directly into recvbuf (the result),
    // then fold it into the forward value.
    s->add_irecv(recvbuf, count, dt, rank - 1);
    s->add_reduce(recvbuf, fwd, count, dt, op);
    s->next_round();
  }
  if (rank < size - 1) {
    s->add_isend(fwd, count, dt, rank + 1);
  }
  return Sched::commit(std::move(s));
}

void exscan(const void* sendbuf, void* recvbuf, std::size_t count,
            dtype::Datatype dt, dtype::ReduceOp op, const Comm& comm) {
  wait_blocking(iexscan(sendbuf, recvbuf, count, std::move(dt), op, comm),
                comm);
}

// --- persistent collectives ---

namespace {

/// Wrap an i-collective launcher into a persistent handle. Each start()
/// re-runs the launcher; since every member starts its persistent op in the
/// same order (an MPI requirement), per-cycle collective tags line up.
Request make_persistent_coll(const Comm& comm,
                             std::function<Request()> launch) {
  return make_persistent_generic(
      comm.world(), comm.stream(),
      [launch = std::move(launch)]() {
        Request r = launch();
        return base::Ref<core_detail::RequestImpl>::share(r.impl());
      });
}

}  // namespace

Request barrier_init(const Comm& comm) {
  expects(comm.valid(), "barrier_init: invalid communicator");
  return make_persistent_coll(comm, [comm] { return ibarrier(comm); });
}

Request bcast_init(void* buf, std::size_t count, dtype::Datatype dt,
                   int root, const Comm& comm) {
  expects(comm.valid() && root >= 0 && root < comm.size(),
          "bcast_init: bad arguments");
  return make_persistent_coll(comm, [=] {
    return ibcast(buf, count, dt, root, comm);
  });
}

Request allreduce_init(const void* sendbuf, void* recvbuf, std::size_t count,
                       dtype::Datatype dt, dtype::ReduceOp op,
                       const Comm& comm) {
  expects(comm.valid() && dt.is_contiguous(),
          "allreduce_init: bad arguments");
  if (use_ir(dt, count)) {
    // Compiled persistent path: the schedule and executor cursor are built
    // once and pinned to the handle; start() re-arms them allocation-free.
    return ir::allreduce_init(sendbuf, recvbuf, count, std::move(dt), op,
                              comm);
  }
  return make_persistent_coll(comm, [=] {
    return iallreduce(sendbuf, recvbuf, count, dt, op, comm);
  });
}

// --- v-variants ---

Request igatherv(const void* sendbuf, std::size_t sendcount,
                 dtype::Datatype dt, void* recvbuf,
                 std::span<const std::size_t> recvcounts,
                 std::span<const std::size_t> displs, int root,
                 const Comm& comm) {
  expects(root >= 0 && root < comm.size(), "igatherv: root out of range");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const std::size_t esz = dt.size();
  if (rank == root) {
    expects(static_cast<int>(recvcounts.size()) == size &&
                static_cast<int>(displs.size()) == size,
            "igatherv: counts/displs must have one entry per rank");
    auto* out = static_cast<std::byte*>(recvbuf);
    for (int i = 0; i < size; ++i) {
      if (i == rank) continue;
      s->add_irecv(out + displs[static_cast<std::size_t>(i)] * esz,
                   recvcounts[static_cast<std::size_t>(i)], dt, i);
    }
    if (sendbuf != in_place) {
      std::memcpy(out + displs[static_cast<std::size_t>(rank)] * esz,
                  sendbuf, sendcount * esz);
    }
  } else {
    s->add_isend(sendbuf, sendcount, dt, root);
  }
  return Sched::commit(std::move(s));
}

void gatherv(const void* sendbuf, std::size_t sendcount, dtype::Datatype dt,
             void* recvbuf, std::span<const std::size_t> recvcounts,
             std::span<const std::size_t> displs, int root,
             const Comm& comm) {
  wait_blocking(igatherv(sendbuf, sendcount, std::move(dt), recvbuf,
                         recvcounts, displs, root, comm),
                comm);
}

Request iscatterv(const void* sendbuf,
                  std::span<const std::size_t> sendcounts,
                  std::span<const std::size_t> displs, dtype::Datatype dt,
                  void* recvbuf, std::size_t recvcount, int root,
                  const Comm& comm) {
  expects(root >= 0 && root < comm.size(), "iscatterv: root out of range");
  auto s = std::make_unique<Sched>(comm);
  const int size = comm.size();
  const int rank = comm.rank();
  const std::size_t esz = dt.size();
  if (rank == root) {
    expects(static_cast<int>(sendcounts.size()) == size &&
                static_cast<int>(displs.size()) == size,
            "iscatterv: counts/displs must have one entry per rank");
    const auto* in = static_cast<const std::byte*>(sendbuf);
    for (int i = 0; i < size; ++i) {
      if (i == rank) continue;
      s->add_isend(in + displs[static_cast<std::size_t>(i)] * esz,
                   sendcounts[static_cast<std::size_t>(i)], dt, i);
    }
    if (recvbuf != in_place) {
      std::memcpy(recvbuf, in + displs[static_cast<std::size_t>(rank)] * esz,
                  sendcounts[static_cast<std::size_t>(rank)] * esz);
    }
  } else {
    s->add_irecv(recvbuf, recvcount, dt, root);
  }
  return Sched::commit(std::move(s));
}

void scatterv(const void* sendbuf, std::span<const std::size_t> sendcounts,
              std::span<const std::size_t> displs, dtype::Datatype dt,
              void* recvbuf, std::size_t recvcount, int root,
              const Comm& comm) {
  wait_blocking(iscatterv(sendbuf, sendcounts, displs, std::move(dt),
                          recvbuf, recvcount, root, comm),
                comm);
}

Request iallgatherv(const void* sendbuf, std::size_t sendcount,
                    dtype::Datatype dt, void* recvbuf,
                    std::span<const std::size_t> recvcounts,
                    std::span<const std::size_t> displs, const Comm& comm) {
  const int size = comm.size();
  expects(static_cast<int>(recvcounts.size()) == size &&
              static_cast<int>(displs.size()) == size,
          "iallgatherv: counts/displs must have one entry per rank");
  auto s = std::make_unique<Sched>(comm);
  const int rank = comm.rank();
  const std::size_t esz = dt.size();
  auto* out = static_cast<std::byte*>(recvbuf);

  if (sendbuf != in_place) {
    std::memcpy(out + displs[static_cast<std::size_t>(rank)] * esz, sendbuf,
                sendcount * esz);
  }
  const int next = (rank + 1) % size;
  const int prev = (rank - 1 + size) % size;
  // Ring with per-block counts: step k forwards block (rank - k).
  for (int k = 0; k < size - 1; ++k) {
    const auto sb = static_cast<std::size_t>((rank - k + size) % size);
    const auto rb = static_cast<std::size_t>((rank - k - 1 + size) % size);
    s->add_isend(out + displs[sb] * esz, recvcounts[sb], dt, next);
    s->add_irecv(out + displs[rb] * esz, recvcounts[rb], dt, prev);
    s->next_round();
  }
  return Sched::commit(std::move(s));
}

void allgatherv(const void* sendbuf, std::size_t sendcount,
                dtype::Datatype dt, void* recvbuf,
                std::span<const std::size_t> recvcounts,
                std::span<const std::size_t> displs, const Comm& comm) {
  wait_blocking(iallgatherv(sendbuf, sendcount, std::move(dt), recvbuf,
                            recvcounts, displs, comm),
                comm);
}

}  // namespace mpx::coll
