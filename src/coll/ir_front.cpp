// Cache front end of the collective schedule compiler: the per-comm
// SchedCache lives in the communicator's extension slot, and the public
// iallreduce/ibcast/ireduce entry points resolve (algorithm, count class)
// to a key, fetch-or-compile the schedule, and hand it to the executor.
// Steady state is find() -> launch(): one acquire load, a short scan, and
// pooled cursor arming — no planning, no allocation.
#include <memory>
#include <utility>

#include "ir_internal.hpp"
#include "mpx/base/cvar.hpp"
#include "mpx/coll/coll.hpp"
#include "mpx/coll/ir_verify.hpp"
#include "mpx/core/world.hpp"

namespace mpx::coll::ir {
namespace {

std::unique_ptr<core_detail::CommExt> make_coll_ext(void* /*arg*/) {
  return std::make_unique<CollCommExt>(static_cast<std::size_t>(
      base::cvar_int("MPX_COLL_CACHE_CAP", 64)));
}

/// MPX_COLL_VERIFY gate: before a freshly compiled schedule may enter the
/// cache, reconstruct what every peer rank compiled for the same point
/// (compilation is deterministic, so the peers' schedules are derivable
/// locally) and run the full cross-rank verifier. A rejected set throws
/// instead of caching a deadlock. Compile-path only — cache hits never
/// come here, so the steady state is untouched.
void verify_before_insert(CollKind kind, std::size_t count,
                          const dtype::Datatype& dt, dtype::ReduceOp op,
                          bool inp, int root, int size,
                          const net::CostModel& net, Algo algo,
                          const SchedPtr& mine) {
  std::vector<SchedPtr> ranks(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    if (r == mine->rank) {
      ranks[static_cast<std::size_t>(r)] = mine;
      continue;
    }
    // Reduce is in-place only at the root; every other shape is uniform.
    const bool inp_r = kind == CollKind::reduce ? (r == root && inp) : inp;
    ranks[static_cast<std::size_t>(r)] =
        compile(kind, count, dt, op, inp_r, root, r, size, net, algo);
  }
  // Fault-injection hook for tests and the offline sweep: mutate a clone
  // of this rank's schedule (never the one that would execute) and prove
  // the verifier catches it.
  const std::string fault = base::cvar_string("MPX_COLL_VERIFY_FAULT", "");
  if (!fault.empty()) {
    auto mut = verify::clone(*mine);
    if (verify::inject_fault(*mut, fault)) {
      ranks[static_cast<std::size_t>(mine->rank)] = std::move(mut);
    }
  }
  verify::Report rep = verify::verify_ranks(ranks);
  if (!rep.ok()) throw verify::ScheduleVerifyError(std::move(rep));
}

SchedPtr get_or_compile(CollKind kind, std::size_t count, dtype::Datatype dt,
                        dtype::ReduceOp op, bool inp, int root,
                        const Comm& comm, const Opts& opts) {
  const std::size_t bytes = count * dt.size();
  const net::CostModel& net = comm.world().config().net;
  const Algo algo = resolve_algo(kind, bytes, comm.size(), net, opts.algo);
  if (!opts.use_cache) {
    return compile(kind, count, dt, op, inp, root, comm.rank(), comm.size(),
                   net, algo);
  }
  CollCommExt& ext = coll_ext(comm);
  SchedKey k;
  k.kind = kind;
  k.algo = algo;
  k.leaf = dt.leaf();
  k.esz = static_cast<std::uint32_t>(dt.size());
  k.op = op;
  k.cls = static_cast<std::uint8_t>(count_class(bytes));
  k.in_place = inp;
  k.root = root;
  k.rank = comm.rank();
  // Any schedule cached under this key admits `count`: schedules are
  // compiled for their class's byte bound, and count_class(bytes) == k.cls
  // implies count <= max_count.
  if (SchedPtr s = ext.cache.find(k)) return s;
  SchedPtr s = compile(kind, count, dt, op, inp, root, comm.rank(),
                       comm.size(), net, algo);
  if (base::cvar_bool("MPX_COLL_VERIFY", false)) {
    verify_before_insert(kind, count, dt, op, inp, root, comm.size(), net,
                         algo, s);
  }
  if (SchedPtr pub = ext.cache.insert(k, s)) return pub;
  return s;  // table at capacity: run the private copy uncached
}

}  // namespace

CollCommExt& coll_ext(const Comm& comm) {
  core_detail::CommExt* e = core_detail::comm_ext(comm);
  if (e == nullptr) {
    e = core_detail::comm_ext_get_or_install(comm, &make_coll_ext, nullptr);
  }
  return *static_cast<CollCommExt*>(e);
}

bool eligible(const dtype::Datatype& dt) {
  return dt.valid() && dt.is_contiguous() && dt.size() > 0;
}

CacheStats cache_stats(const Comm& comm) {
  expects(comm.valid(), "coll ir cache_stats: invalid communicator");
  CacheStats out;
  auto* e = static_cast<CollCommExt*>(core_detail::comm_ext(comm));
  if (e == nullptr) return out;  // comm never used the compiled path
  out.hits = e->cache.hits();
  out.misses = e->cache.misses();
  out.rejects = e->cache.rejects();
  out.entries = e->cache.entries();
  for (const SchedPtr& s : e->cache.snapshot()) {
    const base::PoolStats st = s->arena_pool.stats();
    out.scratch_hits += st.hits;
    out.scratch_misses += st.misses;
  }
  return out;
}

Request iallreduce(const void* sendbuf, void* recvbuf, std::size_t count,
                   dtype::Datatype dt, dtype::ReduceOp op, const Comm& comm,
                   Opts opts) {
  expects(comm.valid() && recvbuf != nullptr,
          "coll ir iallreduce: bad arguments");
  expects(eligible(dt), "coll ir iallreduce: datatype not compilable");
  const bool inp = sendbuf == coll::in_place;
  expects(inp || sendbuf != nullptr, "coll ir iallreduce: null sendbuf");
  SchedPtr s = get_or_compile(CollKind::allreduce, count, std::move(dt), op,
                              inp, /*root=*/0, comm, opts);
  return launch(std::move(s), inp ? nullptr : sendbuf, recvbuf, count, comm);
}

Request ibcast(void* buf, std::size_t count, dtype::Datatype dt, int root,
               const Comm& comm, Opts opts) {
  expects(comm.valid() && buf != nullptr && root >= 0 && root < comm.size(),
          "coll ir ibcast: bad arguments");
  expects(eligible(dt), "coll ir ibcast: datatype not compilable");
  // Bcast data lives in the recv space; there is no send buffer.
  SchedPtr s = get_or_compile(CollKind::bcast, count, std::move(dt),
                              dtype::ReduceOp::sum, /*inp=*/true, root, comm,
                              opts);
  return launch(std::move(s), nullptr, buf, count, comm);
}

Request ireduce(const void* sendbuf, void* recvbuf, std::size_t count,
                dtype::Datatype dt, dtype::ReduceOp op, int root,
                const Comm& comm, Opts opts) {
  expects(comm.valid() && root >= 0 && root < comm.size(),
          "coll ir ireduce: bad arguments");
  expects(eligible(dt), "coll ir ireduce: datatype not compilable");
  const bool inp = sendbuf == coll::in_place;
  // MPI semantics: in-place only at the root (the contribution is in
  // recvbuf there); non-roots contribute sendbuf and may pass a null
  // recvbuf.
  expects(!inp || comm.rank() == root,
          "coll ir ireduce: in_place is root-only");
  expects(inp || sendbuf != nullptr, "coll ir ireduce: null sendbuf");
  expects(comm.rank() != root || recvbuf != nullptr,
          "coll ir ireduce: null recvbuf at root");
  SchedPtr s = get_or_compile(CollKind::reduce, count, std::move(dt), op,
                              inp, root, comm, opts);
  return launch(std::move(s), inp ? nullptr : sendbuf, recvbuf, count, comm);
}

Request allreduce_init(const void* sendbuf, void* recvbuf, std::size_t count,
                       dtype::Datatype dt, dtype::ReduceOp op,
                       const Comm& comm, Opts opts) {
  expects(comm.valid() && recvbuf != nullptr,
          "coll ir allreduce_init: bad arguments");
  expects(eligible(dt), "coll ir allreduce_init: datatype not compilable");
  const bool inp = sendbuf == coll::in_place;
  expects(inp || sendbuf != nullptr, "coll ir allreduce_init: null sendbuf");
  SchedPtr s = get_or_compile(CollKind::allreduce, count, std::move(dt), op,
                              inp, /*root=*/0, comm, opts);
  return persistent_launch(std::move(s), inp ? nullptr : sendbuf, recvbuf,
                           count, comm);
}

}  // namespace mpx::coll::ir
