// Faithful port of the paper's Listing 1.8.
#include "mpx/coll/user_allreduce.hpp"

#include <cstdint>

#include "mpx/core/async.hpp"
#include "mpx/core/waittest.hpp"

namespace mpx::coll {
namespace {

struct MyAllreduce {
  std::int32_t* buf = nullptr;
  std::int32_t* tmp_buf = nullptr;
  std::size_t count = 0;
  Comm comm;
  int rank = 0;
  int size = 0;
  int tag = 0;
  int mask = 1;
  Request reqs[2];  ///< send + recv request for the current round
  bool* done_ptr = nullptr;
};

AsyncResult my_allreduce_poll(AsyncThing& thing) {
  auto* p = static_cast<MyAllreduce*>(thing.state());
  int req_done = 0;
  for (Request& r : p->reqs) {
    if (!r.valid()) {
      ++req_done;
    } else if (r.is_complete()) {  // no progress side effects (§3.4)
      r.reset();
      ++req_done;
    }
  }
  if (req_done != 2) return AsyncResult::noprogress;

  if (p->mask > 1) {
    for (std::size_t i = 0; i < p->count; ++i) p->buf[i] += p->tmp_buf[i];
  }
  if (p->mask == p->size) {
    *(p->done_ptr) = true;
    delete[] p->tmp_buf;
    delete p;
    return AsyncResult::done;
  }
  const int dst = p->rank ^ p->mask;
  p->reqs[0] = p->comm.irecv(p->tmp_buf, p->count,
                             dtype::Datatype::int32(), dst, p->tag);
  p->reqs[1] = p->comm.isend(p->buf, p->count, dtype::Datatype::int32(), dst,
                             p->tag);
  p->mask <<= 1;
  return AsyncResult::noprogress;
}

}  // namespace

void user_allreduce_int_sum_start(void* buf, std::size_t count,
                                  const Comm& comm, bool* done) {
  const int size = comm.size();
  expects((size & (size - 1)) == 0,
          "user_allreduce: communicator size must be a power of two");
  auto* p = new MyAllreduce();
  p->buf = static_cast<std::int32_t*>(buf);
  p->count = count;
  p->tmp_buf = new std::int32_t[count == 0 ? 1 : count];
  // Use the collective context so concurrent user p2p cannot interfere.
  p->comm = comm.coll_view();
  p->rank = comm.rank();
  p->size = size;
  p->mask = 1;
  p->tag = comm.next_coll_tag();
  *done = false;
  p->done_ptr = done;
  async_start(&my_allreduce_poll, p, comm.stream());
}

void user_allreduce_int_sum(void* buf, std::size_t count, const Comm& comm) {
  bool done = false;
  user_allreduce_int_sum_start(buf, count, comm, &done);
  const Stream s = comm.stream();
  while (!done) stream_progress(s);
}

}  // namespace mpx::coll
