// Faithful port of the paper's Listing 1.8.
#include "mpx/coll/user_allreduce.hpp"

#include <cstdint>

#include "mpx/coll/coll.hpp"
#include "mpx/coll/ir.hpp"
#include "mpx/coll/ir_verify.hpp"
#include "mpx/core/async.hpp"
#include "mpx/core/waittest.hpp"

namespace mpx::coll {
namespace {

struct MyAllreduce {
  std::int32_t* buf = nullptr;
  std::int32_t* tmp_buf = nullptr;
  std::size_t count = 0;
  Comm comm;
  int rank = 0;
  int size = 0;
  int tag = 0;
  int mask = 1;
  Request reqs[2];  ///< send + recv request for the current round
  bool* done_ptr = nullptr;
};

AsyncResult my_allreduce_poll(AsyncThing& thing) {
  auto* p = static_cast<MyAllreduce*>(thing.state());
  int req_done = 0;
  for (Request& r : p->reqs) {
    if (!r.valid()) {
      ++req_done;
    } else if (r.is_complete()) {  // no progress side effects (§3.4)
      r.reset();
      ++req_done;
    }
  }
  if (req_done != 2) return AsyncResult::noprogress;

  if (p->mask > 1) {
    for (std::size_t i = 0; i < p->count; ++i) p->buf[i] += p->tmp_buf[i];
  }
  if (p->mask == p->size) {
    *(p->done_ptr) = true;
    delete[] p->tmp_buf;
    delete p;
    return AsyncResult::done;
  }
  const int dst = p->rank ^ p->mask;
  p->reqs[0] = p->comm.irecv(p->tmp_buf, p->count,
                             dtype::Datatype::int32(), dst, p->tag);
  p->reqs[1] = p->comm.isend(p->buf, p->count, dtype::Datatype::int32(), dst,
                             p->tag);
  p->mask <<= 1;
  return AsyncResult::noprogress;
}

}  // namespace

Err user_allreduce_int_sum_start(void* buf, std::size_t count,
                                 const Comm& comm, bool* done) {
  expects(comm.valid() && done != nullptr,
          "user_allreduce: invalid communicator or null done flag");
  const int size = comm.size();
  if ((size & (size - 1)) != 0) {
    // A non-power-of-two comm is outside Listing 1.8's shortcut; nothing
    // has been posted yet, so the caller can cleanly fall back to the
    // generalized user_allreduce() below.
    return Err::unsupported;
  }
  auto* p = new MyAllreduce();
  p->buf = static_cast<std::int32_t*>(buf);
  p->count = count;
  p->tmp_buf = new std::int32_t[count == 0 ? 1 : count];
  // Use the collective context so concurrent user p2p cannot interfere.
  p->comm = comm.coll_view();
  p->rank = comm.rank();
  p->size = size;
  p->mask = 1;
  p->tag = comm.next_coll_tag();
  *done = false;
  p->done_ptr = done;
  async_start(&my_allreduce_poll, p, comm.stream());
  return Err::success;
}

Err user_allreduce_int_sum(void* buf, std::size_t count, const Comm& comm) {
  bool done = false;
  const Err e = user_allreduce_int_sum_start(buf, count, comm, &done);
  if (e != Err::success) return e;
  const Stream s = comm.stream();
  while (!done) stream_progress(s);
  return Err::success;
}

Err user_allreduce(void* buf, std::size_t count, dtype::Datatype dt,
                   dtype::ReduceOp op, const Comm& comm) {
  expects(comm.valid() && (buf != nullptr || count == 0),
          "user_allreduce: invalid communicator or null buffer");
  if (!ir::eligible(dt)) return Err::unsupported;
  if (count == 0) return Err::success;
  // The compiler's non-power-of-two fold phases generalize Listing 1.8's
  // recursive doubling; repeated shapes are served from the comm's cache.
  // Under MPX_COLL_VERIFY a schedule set the static verifier rejects is a
  // runtime condition here, not a crash: nothing was posted (the gate runs
  // before the cache insert and before launch), so report it as a code.
  try {
    Request r = ir::iallreduce(in_place, buf, count, dt, op, comm);
    wait_on_stream(r, comm.stream());
  } catch (const ir::verify::ScheduleVerifyError&) {
    return Err::invalid_schedule;
  }
  return Err::success;
}

}  // namespace mpx::coll
