#include "mpx/coll/topo.hpp"

#include <algorithm>
#include <cstring>
#include <memory>

#include "mpx/core/waittest.hpp"

namespace mpx::coll {

Cart Cart::create(const Comm& comm, std::span<const int> dims,
                  std::span<const int> periodic) {
  expects(comm.valid(), "Cart::create: invalid communicator");
  expects(!dims.empty() && periodic.size() == dims.size(),
          "Cart::create: dims/periodic mismatch");
  int total = 1;
  for (int d : dims) {
    expects(d >= 1, "Cart::create: dimension must be >= 1");
    total *= d;
  }
  expects(total == comm.size(),
          "Cart::create: product of dims must equal communicator size");
  Cart c;
  c.comm_ = comm;
  c.dims_.assign(dims.begin(), dims.end());
  c.periodic_.assign(periodic.begin(), periodic.end());
  return c;
}

std::vector<int> Cart::coords(int rank) const {
  expects(valid() && rank >= 0 && rank < comm_.size(),
          "Cart::coords: rank out of range");
  std::vector<int> out(dims_.size());
  // Row-major: last dimension varies fastest.
  for (std::size_t d = dims_.size(); d-- > 0;) {
    out[d] = rank % dims_[d];
    rank /= dims_[d];
  }
  return out;
}

int Cart::rank_of(std::span<const int> coords) const {
  expects(valid() && coords.size() == dims_.size(),
          "Cart::rank_of: dimension mismatch");
  int rank = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    int c = coords[d];
    if (c < 0 || c >= dims_[d]) {
      if (periodic_[d] == 0) return -1;  // off-grid (MPI_PROC_NULL)
      c = ((c % dims_[d]) + dims_[d]) % dims_[d];
    }
    rank = rank * dims_[d] + c;
  }
  return rank;
}

Cart::Shift Cart::shift(int dim, int disp) const {
  expects(valid() && dim >= 0 && dim < ndims(), "Cart::shift: bad dimension");
  std::vector<int> me = coords();
  Shift s;
  std::vector<int> c = me;
  c[static_cast<std::size_t>(dim)] += disp;
  s.dest = rank_of(c);
  c = me;
  c[static_cast<std::size_t>(dim)] -= disp;
  s.source = rank_of(c);
  return s;
}

std::vector<int> Cart::neighbors() const {
  expects(valid(), "Cart::neighbors: invalid topology");
  std::vector<int> out;
  out.reserve(2 * dims_.size());
  for (int d = 0; d < ndims(); ++d) {
    const Shift s = shift(d, 1);
    out.push_back(s.source);  // negative direction neighbor
    out.push_back(s.dest);    // positive direction neighbor
  }
  return out;
}

std::vector<int> dims_create(int nranks, int ndims) {
  expects(nranks >= 1 && ndims >= 1, "dims_create: bad arguments");
  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  // Greedy: repeatedly assign the largest remaining prime factor to the
  // currently-smallest dimension, yielding balanced near-cubic grids.
  int n = nranks;
  std::vector<int> factors;
  for (int f = 2; f * f <= n; ++f) {
    while (n % f == 0) {
      factors.push_back(f);
      n /= f;
    }
  }
  if (n > 1) factors.push_back(n);
  std::sort(factors.rbegin(), factors.rend());
  for (int f : factors) {
    auto it = std::min_element(dims.begin(), dims.end());
    *it *= f;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

namespace {

Request neighbor_exchange(const void* sendbuf, std::size_t count,
                          const dtype::Datatype& dt, void* recvbuf,
                          const Cart& cart, bool alltoall) {
  expects(cart.valid(), "neighbor collective: invalid topology");
  auto s = std::make_unique<Sched>(cart.comm());
  const std::vector<int> nbrs = cart.neighbors();
  const std::size_t block = count * dt.size();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);

  // Per-edge tag offsets: in degenerate grids (a periodic dimension of
  // size <= 2) the same peer serves several direction slots, so matching by
  // (peer, tag) alone would cross the edges. A message sent via slot j
  // travels the edge the RECEIVER sees as slot j^1 (negative <-> positive),
  // so sends are tagged with their own slot and receives with the peer's.
  for (std::size_t j = 0; j < nbrs.size(); ++j) {
    const int nbr = nbrs[j];
    if (nbr < 0) continue;  // MPI_PROC_NULL: skip, leave the slot untouched
    const std::byte* src = alltoall ? in + j * block : in;
    s->add_isend(src, count, dt, nbr, static_cast<int>(j));
    s->add_irecv(out + j * block, count, dt, nbr, static_cast<int>(j ^ 1));
  }
  return Sched::commit(std::move(s));
}

}  // namespace

Request ineighbor_allgather(const void* sendbuf, std::size_t count,
                            dtype::Datatype dt, void* recvbuf,
                            const Cart& cart) {
  return neighbor_exchange(sendbuf, count, dt, recvbuf, cart, false);
}

void neighbor_allgather(const void* sendbuf, std::size_t count,
                        dtype::Datatype dt, void* recvbuf, const Cart& cart) {
  Request r = ineighbor_allgather(sendbuf, count, std::move(dt), recvbuf,
                                  cart);
  wait_on_stream(r, cart.comm().stream());
}

Request ineighbor_alltoall(const void* sendbuf, std::size_t count,
                           dtype::Datatype dt, void* recvbuf,
                           const Cart& cart) {
  return neighbor_exchange(sendbuf, count, dt, recvbuf, cart, true);
}

void neighbor_alltoall(const void* sendbuf, std::size_t count,
                       dtype::Datatype dt, void* recvbuf, const Cart& cart) {
  Request r = ineighbor_alltoall(sendbuf, count, std::move(dt), recvbuf,
                                 cart);
  wait_on_stream(r, cart.comm().stream());
}

}  // namespace mpx::coll
