// The collective schedule compiler: algorithm selection against the NIC
// cost model and the per-algorithm IR builders.
//
// Every builder is straight-line emission in program order; dependency
// edges come from the Builder's hazard analysis (ir.cpp). Non-power-of-two
// rank counts run the standard pairwise fold: ranks below 2*rem pair up,
// odd members contribute their vector to the even neighbor and retire, the
// surviving power-of-two group runs the core exchange on renumbered ranks,
// and retired members receive the final vector back. Ring algorithms need
// no fold — they are natively correct for any rank count.
//
// Selection is deterministic from (shape, rank count, cost model) alone,
// evaluated at the count class's upper bound, so every member of a
// communicator independently compiles the same algorithm — no negotiation
// round.
#include <bit>
#include <string>

#include "mpx/base/cvar.hpp"
#include "mpx/coll/ir.hpp"

namespace mpx::coll::ir {

namespace {

int floor_pow2(int n) { return 1 << (std::bit_width(static_cast<unsigned>(n)) - 1); }

int log2_exact(int pow2) { return std::bit_width(static_cast<unsigned>(pow2)) - 1; }

/// Real rank of post-fold rank `nr`: the fold retires odd ranks below
/// 2*rem, so newranks [0, rem) are the surviving even ranks and the rest
/// map up by rem.
int fold_map(int nr, int rem) { return nr < rem ? nr * 2 : nr + rem; }

/// Pairwise pre-fold to a power-of-two group. Returns the caller's
/// newrank, or -1 for retired (odd) ranks — whose whole schedule,
/// including the final result hand-back receive, is emitted here.
int emit_fold_pre(Builder& b, const Ref& acc) {
  const int P = b.size(), r = b.rank();
  const int rem = P - floor_pow2(P);
  if (r >= 2 * rem) return r - rem;
  if (r % 2 == 1) {
    b.send(acc, r - 1);
    b.recv(acc, r - 1);  // the finished vector comes back (WAR on the send)
    return -1;
  }
  const std::uint16_t s = b.scratch(full());
  b.recv(scratch_ref(s, full()), r + 1);
  b.reduce(scratch_ref(s, full()), acc);
  return r / 2;
}

/// Even fold ranks hand the finished vector back to their retired partner.
void emit_fold_post(Builder& b, const Ref& acc) {
  const int P = b.size(), r = b.rank();
  const int rem = P - floor_pow2(P);
  if (r < 2 * rem) b.send(acc, r + 1);
}

/// Copy the caller's contribution into the accumulator (the recv buffer);
/// in-place schedules already have it there.
Ref emit_acc_setup(Builder& b) {
  const Ref acc = recv_buf(full());
  if (!b.in_place()) b.copy(send_buf(full()), acc);
  return acc;
}

// ---- allreduce -------------------------------------------------------------

/// Recursive doubling: log2(p2) full-vector exchange+reduce rounds. Two
/// alternating scratch slots let the next round's receive pre-post while
/// the current round reduces.
void build_allreduce_rd(Builder& b) {
  const Ref acc = emit_acc_setup(b);
  const int p2 = floor_pow2(b.size());
  const int rem = b.size() - p2;
  const int nr = emit_fold_pre(b, acc);
  if (nr < 0) return;
  if (p2 > 1) {
    const std::uint16_t sl[2] = {b.scratch(full()), b.scratch(full())};
    int i = 0;
    for (int m = 1; m < p2; m <<= 1, ++i) {
      const int peer = fold_map(nr ^ m, rem);
      const Ref sc = scratch_ref(sl[i & 1], full());
      b.recv(sc, peer);
      b.send(acc, peer);
      b.reduce(sc, acc);
    }
  }
  emit_fold_post(b, acc);
}

/// Ring reduce-scatter + ring allgather over div = P blocks. Works for any
/// P. Every reduce-scatter receive lands in its own scratch block, so all
/// P-1 of them pre-post at launch and chunks stream independently — the
/// schedule the round-based model cannot express.
void build_allreduce_ring(Builder& b) {
  const int P = b.size(), r = b.rank();
  const Ref acc = emit_acc_setup(b);
  if (P == 1) return;
  (void)acc;
  const int next = (r + 1) % P, prev = (r + P - 1) % P;
  const auto blk = [P](int i) {
    return block(static_cast<std::uint32_t>(P),
                 static_cast<std::uint32_t>(((i % P) + P) % P));
  };
  const std::uint16_t st = b.scratch(full());
  for (int s = 0; s < P - 1; ++s) {
    b.send(recv_buf(blk(r - s)), next);
    b.recv(scratch_ref(st, blk(r - s - 1)), prev);
    b.reduce(scratch_ref(st, blk(r - s - 1)), recv_buf(blk(r - s - 1)));
  }
  for (int s = 0; s < P - 1; ++s) {
    b.send(recv_buf(blk(r + 1 - s)), next);
    b.recv(recv_buf(blk(r - s)), prev);
  }
}

/// Recursive-halving reduce-scatter + recursive-doubling allgather
/// (Rabenseifner): rd's latency profile at ring's bandwidth profile for
/// power-of-two groups, with the pairwise fold for the remainder.
void build_allreduce_rsag(Builder& b) {
  const Ref acc = emit_acc_setup(b);
  const int p2 = floor_pow2(b.size());
  const int rem = b.size() - p2;
  const int nr = emit_fold_pre(b, acc);
  if (nr < 0) return;
  if (p2 > 1) {
    const auto rng = [p2](int a, int c) {
      return blocks(static_cast<std::uint32_t>(p2),
                    static_cast<std::uint32_t>(a),
                    static_cast<std::uint32_t>(c));
    };
    const std::uint16_t st = b.scratch(full());
    int lo = 0, hi = p2;
    for (int d = p2 / 2; d >= 1; d /= 2) {
      const int peer = fold_map(nr ^ d, rem);
      const int mid = lo + (hi - lo) / 2;
      if ((nr & d) == 0) {
        b.send(recv_buf(rng(mid, hi)), peer);
        b.recv(scratch_ref(st, rng(lo, mid)), peer);
        b.reduce(scratch_ref(st, rng(lo, mid)), recv_buf(rng(lo, mid)));
        hi = mid;
      } else {
        b.send(recv_buf(rng(lo, mid)), peer);
        b.recv(scratch_ref(st, rng(mid, hi)), peer);
        b.reduce(scratch_ref(st, rng(mid, hi)), recv_buf(rng(mid, hi)));
        lo = mid;
      }
    }
    for (int d = 1; d < p2; d *= 2) {
      const int peer = fold_map(nr ^ d, rem);
      const int span = hi - lo;
      b.send(recv_buf(rng(lo, hi)), peer);
      if ((nr & d) == 0) {
        b.recv(recv_buf(rng(hi, hi + span)), peer);
        hi += span;
      } else {
        b.recv(recv_buf(rng(lo - span, lo)), peer);
        lo -= span;
      }
    }
  }
  emit_fold_post(b, acc);
}

// ---- bcast / reduce trees --------------------------------------------------

/// Largest power of `k` strictly below `P` (the root's widest child
/// stride). P must be >= 2.
long top_scale(int P, int k) {
  long t = 1;
  while (t * k < P) t *= k;
  return t;
}

/// Radix-k tree bcast (knomial; k=2 is binomial). The root-relative rank's
/// lowest nonzero base-k digit fixes its parent and receive level;
/// children hang off every lower level. All of a rank's sends depend only
/// on its receive, so subtrees fan out concurrently.
void build_bcast_knomial(Builder& b, int root, int k) {
  const int P = b.size(), r = b.rank();
  if (P == 1) return;
  const int rel = (r - root + P) % P;
  const auto abs = [&](long x) {
    return static_cast<int>((x + root) % P);
  };
  long scale = 1;
  while (scale < P && rel % (scale * k) == 0) scale *= k;
  if (rel != 0) {
    const long parent = rel - (rel % (scale * k));
    b.recv(recv_buf(full()), abs(parent));
  }
  for (long cs = rel == 0 ? top_scale(P, k) : scale / k; cs >= 1; cs /= k) {
    for (int j = 1; j < k; ++j) {
      const long child = rel + j * cs;
      if (child < P) b.send(recv_buf(full()), abs(child));
    }
  }
}

/// Binomial scatter of root-relative blocks followed by a ring allgather:
/// each rank forwards only its subtree's blocks down the tree, then the
/// single-block ring fills everyone in. Bandwidth-optimal bcast for large
/// vectors at any rank count.
void build_bcast_scatter_ag(Builder& b, int root) {
  const int P = b.size(), r = b.rank();
  if (P == 1) return;
  const int rel = (r - root + P) % P;
  const auto abs = [&](long x) {
    return static_cast<int>((x + root) % P);
  };
  const auto blk = [P](long i) {
    return block(static_cast<std::uint32_t>(P),
                 static_cast<std::uint32_t>(((i % P) + P) % P));
  };
  const auto rng = [P](long a, long c) {
    return blocks(static_cast<std::uint32_t>(P), static_cast<std::uint32_t>(a),
                  static_cast<std::uint32_t>(c));
  };
  long scale = 1;
  while (scale < P && rel % (scale * 2) == 0) scale *= 2;
  if (rel != 0) {
    const long parent = rel - (rel % (scale * 2));
    b.recv(recv_buf(rng(rel, std::min<long>(rel + scale, P))), abs(parent));
  }
  for (long cs = rel == 0 ? top_scale(P, 2) : scale / 2; cs >= 1; cs /= 2) {
    const long child = rel + cs;
    if (child < P) {
      b.send(recv_buf(rng(child, std::min<long>(child + cs, P))), abs(child));
    }
  }
  const int next = (r + 1) % P, prev = (r + P - 1) % P;
  for (int s = 0; s < P - 1; ++s) {
    b.send(recv_buf(blk(rel - s)), next);
    b.recv(recv_buf(blk(rel - s - 1)), prev);
  }
}

/// Radix-k tree reduce: the bcast tree reversed. Each child's vector lands
/// in its own scratch slot (receives pre-post concurrently); reductions
/// into the accumulator serialize in emission order for a deterministic
/// result.
void build_reduce_knomial(Builder& b, int root, int k) {
  const int P = b.size(), r = b.rank();
  const int rel = (r - root + P) % P;
  Ref acc;
  if (rel == 0) {
    acc = recv_buf(full());
    if (!b.in_place()) b.copy(send_buf(full()), acc);
  } else {
    const std::uint16_t a = b.scratch(full());
    acc = scratch_ref(a, full());
    b.copy(send_buf(full()), acc);
  }
  if (P == 1) return;
  const auto abs = [&](long x) {
    return static_cast<int>((x + root) % P);
  };
  long scale = 1;
  while (scale < P && rel % (scale * k) == 0) scale *= k;
  for (long cs = rel == 0 ? top_scale(P, k) : scale / k; cs >= 1; cs /= k) {
    for (int j = 1; j < k; ++j) {
      const long child = rel + j * cs;
      if (child >= P) continue;
      const std::uint16_t s = b.scratch(full());
      b.recv(scratch_ref(s, full()), abs(child));
      b.reduce(scratch_ref(s, full()), acc);
    }
  }
  if (rel != 0) {
    const long parent = rel - (rel % (scale * k));
    b.send(acc, abs(parent));
  }
}

// ---- selection -------------------------------------------------------------

/// Tree radix for knomial bcast/reduce: depth shrinks with k but a parent
/// pays per-child injection, so cost_k ~ ceil(log_k P) * (alpha + B*beta +
/// (k-2)*B*inj_beta). Small messages take wide trees, large messages fall
/// back to binomial.
int knomial_radix(int P, double bytes, const net::CostModel& net) {
  if (P <= 2) return 2;
  int best_k = 2;
  double best = 0;
  for (const int k : {2, 4, 8}) {
    int depth = 0;
    long reach = 1;
    while (reach < P) {
      reach *= k;
      ++depth;
    }
    const double c =
        depth * (net.alpha + bytes * net.beta +
                 (k - 2) * bytes * net.inj_beta);
    if (best_k == 2 || c < best) {
      best = c;
      best_k = k;
    }
    if (k == 2) best = c;
  }
  return best_k;
}

Algo env_algo() {
  static const Algo a = [] {
    const std::string s = base::cvar_string("MPX_COLL_ALGO", "auto");
    for (const Algo c : {Algo::rd, Algo::ring, Algo::rsag, Algo::knomial,
                         Algo::scatter_ag}) {
      if (s == to_string(c)) return c;
    }
    return Algo::auto_;
  }();
  return a;
}

bool algo_valid_for(CollKind kind, Algo a) {
  switch (kind) {
    case CollKind::allreduce:
      return a == Algo::rd || a == Algo::ring || a == Algo::rsag;
    case CollKind::bcast:
      return a == Algo::knomial || a == Algo::scatter_ag;
    case CollKind::reduce:
      return a == Algo::knomial;
  }
  return false;
}

}  // namespace

Algo select_algo(CollKind kind, std::size_t bytes, int size,
                 const net::CostModel& net) {
  const int P = size < 1 ? 1 : size;
  const double B = static_cast<double>(bytes);
  const double a = net.alpha, be = net.beta;
  const int p2 = floor_pow2(P);
  const int rem = P - p2;
  const int lg = log2_exact(p2);
  switch (kind) {
    case CollKind::allreduce: {
      if (P <= 2) return Algo::rd;
      const double fold = rem > 0 ? 2.0 * (a + B * be) : 0.0;
      const double c_rd = fold + lg * (a + B * be);
      const double c_ring = 2.0 * (P - 1) * a + 2.0 * B * be * (P - 1) / P;
      const double c_rsag =
          fold + 2.0 * lg * a + 2.0 * B * be * (p2 - 1) / p2;
      if (c_rd <= c_ring && c_rd <= c_rsag) return Algo::rd;
      if (c_ring < c_rsag) return Algo::ring;
      return Algo::rsag;
    }
    case CollKind::bcast: {
      if (P <= 2) return Algo::knomial;
      const int k = knomial_radix(P, B, net);
      int depth = 0;
      long reach = 1;
      while (reach < P) {
        reach *= k;
        ++depth;
      }
      const double c_kno =
          depth * (a + B * be + (k - 2) * B * net.inj_beta);
      const double c_sag = (lg + (rem > 0 ? 1 : 0)) * a +
                           B * be * (P - 1) / P +  // scatter
                           (P - 1) * a + B * be * (P - 1) / P;  // ring AG
      return c_kno <= c_sag ? Algo::knomial : Algo::scatter_ag;
    }
    case CollKind::reduce:
      return Algo::knomial;
  }
  return Algo::rd;
}

// ---- count classes ---------------------------------------------------------

namespace {

int class_step() {
  static const int step = [] {
    const long s = base::cvar_int("MPX_COLL_CLASS_STEP", 1);
    return static_cast<int>(s < 1 ? 1 : (s > 8 ? 8 : s));
  }();
  return step;
}

}  // namespace

int count_class(std::size_t bytes) {
  return static_cast<int>(std::bit_width(bytes)) / class_step();
}

std::size_t class_max_bytes(int cls) {
  const int w = (cls + 1) * class_step() - 1;
  if (w <= 0) return 0;
  if (w >= 48) return (std::size_t{1} << 48) - 1;  // clamp: plenty
  return (std::size_t{1} << w) - 1;
}

// ---- compile ---------------------------------------------------------------

Algo resolve_algo(CollKind kind, std::size_t bytes, int size,
                  const net::CostModel& net, Algo force) {
  if (force != Algo::auto_ && algo_valid_for(kind, force)) return force;
  const Algo env = env_algo();
  if (env != Algo::auto_ && algo_valid_for(kind, env)) return env;
  return select_algo(kind, bytes, size, net);
}

SchedPtr compile(CollKind kind, std::size_t count, dtype::Datatype dt,
                 dtype::ReduceOp op, bool in_place, int root, int rank,
                 int size, const net::CostModel& net, Algo force) {
  expects(dt.valid() && dt.is_contiguous(),
          "ir::compile: requires a contiguous datatype");
  expects(root >= 0 && root < size, "ir::compile: root out of range");
  const std::size_t esz = dt.size();
  const int cls = count_class(count * esz);
  const std::size_t max_count =
      esz == 0 ? count : std::max(count, class_max_bytes(cls) / esz);
  const Algo algo =
      resolve_algo(kind, class_max_bytes(cls), size, net, force);
  Builder b(kind, std::move(dt), op, in_place, rank, size);
  switch (kind) {
    case CollKind::allreduce:
      if (algo == Algo::ring) {
        build_allreduce_ring(b);
      } else if (algo == Algo::rsag) {
        build_allreduce_rsag(b);
      } else {
        build_allreduce_rd(b);
      }
      break;
    case CollKind::bcast:
      // Radix evaluated at the class bound, like algorithm selection: every
      // count in the class shares one tree shape, so a schedule cached at
      // one count serves the whole class consistently on every rank.
      if (algo == Algo::scatter_ag) {
        build_bcast_scatter_ag(b, root);
      } else {
        build_bcast_knomial(
            b, root,
            knomial_radix(size, static_cast<double>(class_max_bytes(cls)),
                          net));
      }
      break;
    case CollKind::reduce:
      build_reduce_knomial(
          b, root,
          knomial_radix(size, static_cast<double>(class_max_bytes(cls)),
                        net));
      break;
  }
  return b.finish(algo, root, max_count);
}

}  // namespace mpx::coll::ir
