// Adaptive progress engine runtime. See the header for the mode state
// machine; docs/architecture.md ("Adaptive progress engine") for who polls
// when.
//
// Concurrency layout:
//   - attach_mu_ serializes the slow path: attach/detach, worker spawning,
//     every mode transition, and stats(). The controller holds it for the
//     whole sample/decide pass. It is an unranked leaf taken by threads
//     that hold no runtime lock, so it cannot participate in a lock cycle.
//   - Workers never take attach_mu_. They navigate the slot table through
//     the release-published slot_count_ (the table storage never moves)
//     and read each slot's mode atomically; stale deque entries whose slot
//     left shared mode are dropped at pop time (`in_rotation` then allows
//     the controller to re-enqueue the slot later, exactly-one-copy).
//   - The poll itself is core_detail::vci_poll — the compiled stage table
//     behind every progress_test call. Workers hold no lock around it and
//     block nowhere; idle workers descend the spin/yield/sleep ladder.
//   - Engine threads are pure DATAPATH: each poll pins the VCI's
//     TopologySnapshot with one acquire-load (TopoRef inside the entry
//     point) and may run concurrently with a control-plane topology swap —
//     the RCU grace period in src/core/control_plane.cpp is what makes
//     that safe. Nothing here may call a control-plane mutation entry
//     point (mpxlint progress-contract enforces it for poll contexts).
#include "mpx/task/progress_engine.hpp"

#include <chrono>
#include <string>
#include <thread>

#include "mpx/core/progress_source.hpp"

namespace mpx::task {

struct ProgressEngine::Slot {
  explicit Slot(const ProgressEngineConfig& cfg) : policy(cfg) {}

  core_detail::Vci* vci = nullptr;
  int rank = -1;
  int id = -1;
  unsigned mask = progress_all;

  std::atomic<EngineMode> mode{EngineMode::inline_poll};
  std::atomic<bool> detached{false};
  /// True while an index for this slot lives in some worker's inbox or
  /// deque (exactly one copy in the whole pool). Workers clear it when
  /// they drop a stale entry; the controller's re-enqueue CASes it back.
  std::atomic<bool> in_rotation{false};

  std::atomic<std::uint64_t> engine_polls{0};
  std::atomic<std::uint64_t> engine_hits{0};

  // Controller-only sampling cursors (attach_mu_ held at every access).
  std::uint64_t prev_progress_calls = 0;
  std::uint64_t prev_engine_polls = 0;
  std::uint64_t prev_engine_hits = 0;
  World::WaitRungCounters prev_rungs;
  EnginePolicy policy;
};

struct ProgressEngine::Worker {
  Worker(int idx, std::size_t deque_cap) : index(idx), deque(deque_cap) {}

  const int index;
  StealDeque<int> deque;            ///< this worker's shared rotation
  base::MpscQueue<int> inbox;       ///< controller -> worker assignments
  std::atomic<int> dedicated{-1};   ///< pinned slot index; -1 = shared role
  core_detail::WaitLadderCounters rungs;
  base::ScopedThread thread;        ///< started last, by spawn_worker_locked
};

// ---------------------------------------------------------------- policy --

EngineMode EnginePolicy::decide(EngineMode current, const EngineSample& s,
                                bool can_grow) {
  const int hysteresis = cfg_.hysteresis < 1 ? 1 : cfg_.hysteresis;
  const double hit_rate =
      s.engine_polls == 0
          ? 0.0
          : static_cast<double>(s.engine_hits) /
                static_cast<double>(s.engine_polls);
  // The application is not driving its own progress: work is pending and
  // either the app barely polls (it is off computing) or its blocking
  // waiters fell off the spin rung (polling, but empty and backed off).
  const bool app_starved =
      s.pending > 0 && (s.app_polls <
                            static_cast<std::uint64_t>(
                                cfg_.promote_app_polls < 0
                                    ? 0
                                    : cfg_.promote_app_polls) ||
                        s.wait_backoffs > 0);
  const bool gone_cold = s.pending == 0 && hit_rate <= cfg_.demote_hit_rate;

  switch (current) {
    case EngineMode::inline_poll:
      demote_streak_ = 0;
      if (app_starved) {
        if (promote_streak_ < hysteresis) ++promote_streak_;
        // A matured streak blocked by the worker ceiling holds (deferred
        // promotion), it does not reset.
        if (promote_streak_ >= hysteresis && can_grow) {
          promote_streak_ = 0;
          return EngineMode::shared;
        }
      } else {
        promote_streak_ = 0;
      }
      return EngineMode::inline_poll;

    case EngineMode::shared:
      if (gone_cold) {
        promote_streak_ = 0;
        if (++demote_streak_ >= hysteresis) {
          demote_streak_ = 0;
          return EngineMode::inline_poll;
        }
        return EngineMode::shared;
      }
      demote_streak_ = 0;
      if (s.engine_polls > 0 && hit_rate >= cfg_.dedicate_hit_rate) {
        if (promote_streak_ < hysteresis) ++promote_streak_;
        if (promote_streak_ >= hysteresis && can_grow) {
          promote_streak_ = 0;
          return EngineMode::dedicated;
        }
      } else {
        promote_streak_ = 0;
      }
      return EngineMode::shared;

    case EngineMode::dedicated:
      promote_streak_ = 0;
      if (gone_cold) {
        if (++demote_streak_ >= hysteresis) {
          demote_streak_ = 0;
          return EngineMode::shared;
        }
      } else {
        demote_streak_ = 0;
      }
      return EngineMode::dedicated;
  }
  return current;  // unreachable
}

// --------------------------------------------------------------- runtime --

namespace {

/// Hard bound on attachable VCIs; the table is preallocated so workers can
/// index it lock-free while attach() appends (same shape as RankCtx slots).
std::size_t slot_table_capacity(const World& w) {
  const std::size_t cap = static_cast<std::size_t>(w.size()) *
                          static_cast<std::size_t>(w.config().max_vcis);
  return cap < 16 ? 16 : cap;
}

}  // namespace

ProgressEngine::ProgressEngine(World& world)
    : world_(world), cfg_(world.config().progress_engine) {
  if (cfg_.epoch_us < 1) cfg_.epoch_us = 1;
  if (cfg_.max_workers < 1) cfg_.max_workers = 1;
  if (cfg_.deque_capacity < 2) cfg_.deque_capacity = 2;
  const WorldConfig& wc = world.config();
  worker_wait_ = core_detail::WaitPolicy{wc.wait_spin, wc.wait_yield,
                                         wc.wait_sleep_max_us};
  slots_.resize(slot_table_capacity(world));
  workers_.resize(static_cast<std::size_t>(cfg_.max_workers));
  controller_ = base::ScopedThread([this] { controller_loop(); });
}

ProgressEngine::~ProgressEngine() { stop(); }

void ProgressEngine::stop() {
  stop_.store(true, std::memory_order_release);
  // Single-joiner handshake (same shape as ProgressThread::stop): exactly
  // one caller joins the controller and workers; racing callers wait for
  // the joiner's release store so everyone returns with the threads gone
  // and their final counter publishes visible.
  if (!joining_.exchange(true, std::memory_order_acq_rel)) {
    controller_.join();
    const int nw = worker_count_.load(std::memory_order_acquire);
    for (int i = 0; i < nw; ++i) {
      workers_[static_cast<std::size_t>(i)]->thread.join();
    }
    joined_.store(true, std::memory_order_release);
    return;
  }
  while (!joined_.load(std::memory_order_acquire)) {
    base::cpu_relax();
  }
}

void ProgressEngine::attach(const Stream& stream) {
  expects(stream.valid() && &stream.world() == &world_,
          "ProgressEngine::attach: stream does not belong to this world");
  std::lock_guard<std::mutex> g(attach_mu_);
  const int n = slot_count_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    Slot& s = *slots_[static_cast<std::size_t>(i)];
    if (s.rank == stream.rank() && s.id == stream.vci()) {
      s.detached.store(false, std::memory_order_relaxed);
      return;
    }
  }
  expects(static_cast<std::size_t>(n) < slots_.size(),
          "ProgressEngine::attach: slot table full");
  auto s = std::make_unique<Slot>(cfg_);
  s->vci = &world_.vci(stream.rank(), stream.vci());
  s->rank = stream.rank();
  s->id = stream.vci();
  s->mask = stream.mask();
  // Prime the sampling cursors so the first epoch's deltas cover exactly
  // the first epoch, not the VCI's whole history.
  s->prev_progress_calls =
      world_.vci_progress_calls(stream.rank(), stream.vci());
  s->prev_rungs = world_.vci_wait_rungs(stream.rank(), stream.vci());
  slots_[static_cast<std::size_t>(n)] = std::move(s);
  slot_count_.store(n + 1, std::memory_order_release);
}

void ProgressEngine::detach(const Stream& stream) {
  std::lock_guard<std::mutex> g(attach_mu_);
  const int n = slot_count_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    Slot& s = *slots_[static_cast<std::size_t>(i)];
    if (s.rank != stream.rank() || s.id != stream.vci()) continue;
    s.detached.store(true, std::memory_order_relaxed);
    s.mode.store(EngineMode::inline_poll, std::memory_order_release);
    for (int wi = 0, nw = worker_count_.load(std::memory_order_relaxed);
         wi < nw; ++wi) {
      Worker& w = *workers_[static_cast<std::size_t>(wi)];
      int expected = i;
      w.dedicated.compare_exchange_strong(expected, -1,
                                          std::memory_order_acq_rel);
    }
    return;
  }
}

EngineMode ProgressEngine::mode_of(const Stream& stream) const {
  const int n = slot_count_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    const Slot& s = *slots_[static_cast<std::size_t>(i)];
    if (s.rank == stream.rank() && s.id == stream.vci()) {
      return s.mode.load(std::memory_order_acquire);
    }
  }
  return EngineMode::inline_poll;
}

ProgressEngine::Stats ProgressEngine::stats() const {
  std::lock_guard<std::mutex> g(attach_mu_);
  Stats out;
  const int n = slot_count_.load(std::memory_order_relaxed);
  out.vcis.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Slot& s = *slots_[static_cast<std::size_t>(i)];
    if (s.detached.load(std::memory_order_relaxed)) continue;
    VciStats vs;
    vs.rank = s.rank;
    vs.vci = s.id;
    vs.mode = s.mode.load(std::memory_order_relaxed);
    vs.engine_polls = s.engine_polls.load(std::memory_order_relaxed);
    vs.engine_hits = s.engine_hits.load(std::memory_order_relaxed);
    out.vcis.push_back(vs);
  }
  out.epochs = epochs_.load(std::memory_order_relaxed);
  out.promotions = promotions_.load(std::memory_order_relaxed);
  out.demotions = demotions_.load(std::memory_order_relaxed);
  out.steals = steals_.load(std::memory_order_relaxed);
  out.workers = worker_count_.load(std::memory_order_relaxed);
  for (int wi = 0; wi < out.workers; ++wi) {
    const auto snap = workers_[static_cast<std::size_t>(wi)]->rungs.snapshot();
    out.worker_rungs.spin += snap.spin;
    out.worker_rungs.yield += snap.yield;
    out.worker_rungs.sleep += snap.sleep;
  }
  return out;
}

int ProgressEngine::poll_slot(Slot& s) {
  const int made = core_detail::vci_poll(*s.vci, s.mask);
  s.engine_polls.fetch_add(1, std::memory_order_relaxed);
  if (made != 0) s.engine_hits.fetch_add(1, std::memory_order_relaxed);
  return made;
}

int ProgressEngine::spawn_worker_locked() {
  const int n = worker_count_.load(std::memory_order_relaxed);
  expects(n < cfg_.max_workers, "ProgressEngine: worker ceiling exceeded");
  auto w = std::make_unique<Worker>(
      n, static_cast<std::size_t>(cfg_.deque_capacity));
  Worker* raw = w.get();
  workers_[static_cast<std::size_t>(n)] = std::move(w);
  // Publish the table entry before the thread starts and before other
  // workers may steal from index n.
  worker_count_.store(n + 1, std::memory_order_release);
  raw->thread = base::ScopedThread([this, raw] { worker_loop(*raw); });
  return n;
}

bool ProgressEngine::assign_to_worker(int slot_idx) {
  // attach_mu_ held. Exactly-one-copy: only the false->true winner may
  // enqueue the index anywhere.
  Slot& s = *slots_[static_cast<std::size_t>(slot_idx)];
  bool expected = false;
  if (!s.in_rotation.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
    return true;  // already riding in some deque
  }
  const int nw = worker_count_.load(std::memory_order_relaxed);
  // Spread assignments over shared-role workers; spawn one if none exists.
  for (int probe = 0; probe < nw; ++probe) {
    const int wi = (slot_idx + probe) % nw;
    Worker& w = *workers_[static_cast<std::size_t>(wi)];
    if (w.dedicated.load(std::memory_order_relaxed) < 0) {
      w.inbox.push(std::move(slot_idx));
      return true;
    }
  }
  if (nw < cfg_.max_workers) {
    const int wi = spawn_worker_locked();
    workers_[static_cast<std::size_t>(wi)]->inbox.push(std::move(slot_idx));
    return true;
  }
  s.in_rotation.store(false, std::memory_order_release);
  return false;
}

void ProgressEngine::apply_transition(int idx, Slot& s, EngineMode next) {
  // attach_mu_ held (controller only).
  const EngineMode cur = s.mode.load(std::memory_order_relaxed);
  if (next == cur) return;
  switch (next) {
    case EngineMode::shared:
      if (cur == EngineMode::dedicated) {
        // Release the pinned worker back to the shared pool.
        for (int wi = 0, nw = worker_count_.load(std::memory_order_relaxed);
             wi < nw; ++wi) {
          Worker& w = *workers_[static_cast<std::size_t>(wi)];
          int expected = idx;
          w.dedicated.compare_exchange_strong(expected, -1,
                                              std::memory_order_acq_rel);
        }
        demotions_.fetch_add(1, std::memory_order_relaxed);
      } else {
        promotions_.fetch_add(1, std::memory_order_relaxed);
      }
      s.mode.store(EngineMode::shared, std::memory_order_release);
      assign_to_worker(idx);
      break;

    case EngineMode::dedicated: {
      // Pick a worker to pin: spawn when the ceiling allows, otherwise
      // convert a shared-role worker (the controller only promotes to
      // dedicated when that leaves no shared slot stranded).
      int wi = -1;
      const int nw = worker_count_.load(std::memory_order_relaxed);
      if (nw < cfg_.max_workers) {
        wi = spawn_worker_locked();
      } else {
        for (int i = 0; i < nw; ++i) {
          if (workers_[static_cast<std::size_t>(i)]->dedicated.load(
                  std::memory_order_relaxed) < 0) {
            wi = i;
            break;
          }
        }
      }
      if (wi < 0) return;  // no worker available; keep current mode
      Worker& w = *workers_[static_cast<std::size_t>(wi)];
      // A converted shared worker stops popping; orphan its queued
      // assignments so the controller can re-enqueue them elsewhere.
      while (auto stale = w.deque.try_steal()) {
        slots_[static_cast<std::size_t>(*stale)]->in_rotation.store(
            false, std::memory_order_release);
      }
      while (auto stale = w.inbox.try_pop()) {
        slots_[static_cast<std::size_t>(*stale)]->in_rotation.store(
            false, std::memory_order_release);
      }
      s.mode.store(EngineMode::dedicated, std::memory_order_release);
      w.dedicated.store(idx, std::memory_order_release);
      promotions_.fetch_add(1, std::memory_order_relaxed);
      break;
    }

    case EngineMode::inline_poll:
      s.mode.store(EngineMode::inline_poll, std::memory_order_release);
      demotions_.fetch_add(1, std::memory_order_relaxed);
      // Deque copies drain lazily: workers drop non-shared slots at pop.
      break;
  }
}

void ProgressEngine::sample_and_decide() {
  std::lock_guard<std::mutex> g(attach_mu_);
  const int n = slot_count_.load(std::memory_order_relaxed);
  const int nw = worker_count_.load(std::memory_order_relaxed);

  int dedicated_slots = 0;
  int shared_slots = 0;
  for (int i = 0; i < n; ++i) {
    Slot& s = *slots_[static_cast<std::size_t>(i)];
    if (s.detached.load(std::memory_order_relaxed)) continue;
    switch (s.mode.load(std::memory_order_relaxed)) {
      case EngineMode::shared: ++shared_slots; break;
      case EngineMode::dedicated: ++dedicated_slots; break;
      case EngineMode::inline_poll: break;
    }
  }

  for (int i = 0; i < n; ++i) {
    Slot& s = *slots_[static_cast<std::size_t>(i)];
    if (s.detached.load(std::memory_order_relaxed)) continue;

    const std::uint64_t pc = world_.vci_progress_calls(s.rank, s.id);
    const std::uint64_t ep = s.engine_polls.load(std::memory_order_relaxed);
    const std::uint64_t eh = s.engine_hits.load(std::memory_order_relaxed);
    const World::WaitRungCounters rungs = world_.vci_wait_rungs(s.rank, s.id);

    EngineSample smp;
    smp.engine_polls = ep - s.prev_engine_polls;
    smp.engine_hits = eh - s.prev_engine_hits;
    const std::uint64_t total = pc - s.prev_progress_calls;
    smp.app_polls = total > smp.engine_polls ? total - smp.engine_polls : 0;
    smp.pending = world_.vci_active_ops(s.rank, s.id);
    smp.wait_backoffs = (rungs.yield - s.prev_rungs.yield) +
                        (rungs.sleep - s.prev_rungs.sleep);
    s.prev_progress_calls = pc;
    s.prev_engine_polls = ep;
    s.prev_engine_hits = eh;
    s.prev_rungs = rungs;

    const EngineMode cur = s.mode.load(std::memory_order_relaxed);
    bool can_grow = true;
    if (cur == EngineMode::inline_poll) {
      // Needs a shared-role worker: one exists, or one can be spawned.
      bool have_shared_worker = false;
      for (int wi = 0; wi < worker_count_.load(std::memory_order_relaxed);
           ++wi) {
        if (workers_[static_cast<std::size_t>(wi)]->dedicated.load(
                std::memory_order_relaxed) < 0) {
          have_shared_worker = true;
          break;
        }
      }
      can_grow = have_shared_worker ||
                 worker_count_.load(std::memory_order_relaxed) <
                     cfg_.max_workers;
    } else if (cur == EngineMode::shared) {
      // Dedication needs a fresh worker, or may convert a shared worker
      // only when no OTHER shared slot would be stranded.
      can_grow = worker_count_.load(std::memory_order_relaxed) <
                     cfg_.max_workers ||
                 shared_slots <= 1;
    }

    const EngineMode next = s.policy.decide(cur, smp, can_grow);
    if (next != cur) {
      if (cur == EngineMode::shared) --shared_slots;
      if (cur == EngineMode::dedicated) --dedicated_slots;
      apply_transition(i, s, next);
      const EngineMode now = s.mode.load(std::memory_order_relaxed);
      if (now == EngineMode::shared) ++shared_slots;
      if (now == EngineMode::dedicated) ++dedicated_slots;
    } else if (cur == EngineMode::shared &&
               !s.in_rotation.load(std::memory_order_acquire)) {
      // Heal a stranded shared slot. Two ways one arises: a worker's
      // re-push hit a full deque, or a drop raced a re-promotion (the
      // worker popped the entry, the controller saw in_rotation still
      // true and assumed the slot was riding, then the worker dropped
      // it). in_rotation == false guarantees no live copy exists, so
      // re-enqueueing cannot violate exactly-one-copy.
      assign_to_worker(i);
    }
  }
  (void)nw;
  (void)dedicated_slots;
}

void ProgressEngine::controller_loop() {
  base::set_current_thread_name("mpx-engine-ctl");
  using std::chrono::microseconds;
  while (!stop_.load(std::memory_order_acquire)) {
    // Sleep one epoch in <=1ms slices so stop() stays prompt even under
    // long experimental epochs.
    long remaining = cfg_.epoch_us;
    while (remaining > 0 && !stop_.load(std::memory_order_acquire)) {
      const long slice = remaining < 1000 ? remaining : 1000;
      std::this_thread::sleep_for(microseconds(slice));
      remaining -= slice;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    sample_and_decide();
    epochs_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ProgressEngine::worker_loop(Worker& w) {
  base::set_current_thread_name("mpx-engine-" + std::to_string(w.index));
  core_detail::WaitBackoff backoff{worker_wait_, &w.rungs};
  while (!stop_.load(std::memory_order_acquire)) {
    int made = 0;
    const int pinned = w.dedicated.load(std::memory_order_acquire);
    if (pinned >= 0) {
      made = poll_slot(*slots_[static_cast<std::size_t>(pinned)]);
    } else {
      // Move controller handoffs into the rotation.
      while (auto idx = w.inbox.try_pop()) {
        if (!w.deque.try_push(*idx)) {
          slots_[static_cast<std::size_t>(*idx)]->in_rotation.store(
              false, std::memory_order_release);
        }
      }
      // Rotate: take the oldest assignment (self-steal keeps the rotation
      // FIFO), poll it, put it back. Fall back to stealing from peers.
      std::optional<int> idx = w.deque.try_steal();
      if (!idx.has_value()) {
        const int nw = worker_count_.load(std::memory_order_acquire);
        for (int off = 1; off <= nw && !idx.has_value(); ++off) {
          const int vi = (w.index + off) % (nw == 0 ? 1 : nw);
          if (vi == w.index) continue;
          Worker* victim = workers_[static_cast<std::size_t>(vi)].get();
          if (victim == nullptr) continue;
          idx = victim->deque.try_steal();
          if (idx.has_value()) {
            steals_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      if (idx.has_value()) {
        Slot& s = *slots_[static_cast<std::size_t>(*idx)];
        if (s.mode.load(std::memory_order_acquire) == EngineMode::shared) {
          made = poll_slot(s);
          if (!w.deque.try_push(*idx)) {
            s.in_rotation.store(false, std::memory_order_release);
          }
        } else {
          // Slot left shared mode; drop it and let the controller
          // re-enqueue if it ever comes back.
          s.in_rotation.store(false, std::memory_order_release);
        }
      }
    }
    if (made != 0) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

}  // namespace mpx::task
