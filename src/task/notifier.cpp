#include "mpx/task/notifier.hpp"

namespace mpx::task {

AsyncResult RequestNotifier::trampoline(AsyncThing& thing) {
  return static_cast<RequestNotifier*>(thing.state())->poll();
}

RequestNotifier::~RequestNotifier() { drain(); }

void RequestNotifier::watch(Request r, std::function<void(const Status&)> cb) {
  expects(r.valid(), "RequestNotifier::watch: invalid request");
  bool need_hook = false;
  {
    base::LockGuard<base::Spinlock> g(mu_);
    entries_.push_back(Entry{std::move(r), std::move(cb)});
    if (!hook_active_) {
      hook_active_ = true;
      need_hook = true;
    }
  }
  if (need_hook) {
    async_start(&RequestNotifier::trampoline, this, stream_);
  }
}

std::size_t RequestNotifier::pending() const {
  base::LockGuard<base::Spinlock> g(mu_);
  return entries_.size();
}

void RequestNotifier::drain() {
  for (;;) {
    {
      base::LockGuard<base::Spinlock> g(mu_);
      if (!hook_active_) return;
    }
    stream_progress(stream_);
  }
}

AsyncResult RequestNotifier::poll() {
  // Collect fired entries under the lock, run callbacks outside it (a
  // callback may watch() new requests).
  std::vector<Entry> fired;
  bool done = false;
  {
    base::LockGuard<base::Spinlock> g(mu_);
    for (std::size_t i = 0; i < entries_.size();) {
      if (entries_[i].req.is_complete()) {
        fired.push_back(std::move(entries_[i]));
        entries_[i] = std::move(entries_.back());
        entries_.pop_back();
      } else {
        ++i;
      }
    }
    if (entries_.empty() && fired.empty()) {
      hook_active_ = false;
      done = true;
    }
  }
  for (Entry& e : fired) {
    if (e.cb) e.cb(e.req.status());
  }
  if (!fired.empty()) {
    // New watches may have arrived from callbacks; keep the hook if so.
    base::LockGuard<base::Spinlock> g(mu_);
    if (entries_.empty()) {
      hook_active_ = false;
      done = true;
    }
  }
  return done ? AsyncResult::done : AsyncResult::noprogress;
}

}  // namespace mpx::task
