#include "mpx/task/progress_thread.hpp"

#include <chrono>
#include <thread>

namespace mpx::task {

ProgressThread::ProgressThread(Stream stream, ProgressBackoff backoff)
    : stream_(std::move(stream)), backoff_(backoff) {
  expects(stream_.valid(), "ProgressThread: invalid stream");
  thread_ = base::ScopedThread([this] { run(); });
}

ProgressThread::~ProgressThread() { stop(); }

void ProgressThread::stop() {
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

void ProgressThread::run() {
  base::set_current_thread_name("mpx-progress");
  std::uint64_t idle_streak = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    const int made = stream_progress(stream_);
    iterations_.fetch_add(1, std::memory_order_relaxed);
    if (made != 0) {
      productive_.fetch_add(1, std::memory_order_relaxed);
      idle_streak = 0;
      continue;
    }
    ++idle_streak;
    switch (backoff_) {
      case ProgressBackoff::busy:
        base::cpu_relax();
        break;
      case ProgressBackoff::yield:
        std::this_thread::yield();
        break;
      case ProgressBackoff::sleep: {
        // Exponential backoff capped at ~100 us keeps idle cost near zero
        // while bounding added latency when work reappears.
        const std::uint64_t us =
            idle_streak < 8 ? 0 : std::min<std::uint64_t>(100, 1ull << std::min<std::uint64_t>(idle_streak - 8, 6));
        if (us == 0) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(us));
        }
        break;
      }
    }
  }
}

}  // namespace mpx::task
