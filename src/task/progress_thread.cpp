#include "mpx/task/progress_thread.hpp"

#include <chrono>
#include <thread>

#include "mpx/core/wait_policy.hpp"
#include "mpx/core/world.hpp"

namespace mpx::task {

ProgressThread::ProgressThread(Stream stream, ProgressBackoff backoff)
    : stream_(std::move(stream)), backoff_(backoff) {
  expects(stream_.valid(), "ProgressThread: invalid stream");
  thread_ = base::ScopedThread([this] { run(); });
}

ProgressThread::~ProgressThread() { stop(); }

void ProgressThread::stop() {
  stop_.store(true, std::memory_order_release);
  // Exactly one caller joins; everyone else (e.g. the destructor racing an
  // explicit stop() from another thread — double std::thread::join is UB)
  // waits for the joiner's release store. Loading joined_ with acquire
  // orders the worker's final counter publish before our return either way:
  // the join itself synchronizes-with thread exit for the joiner, and the
  // joined_ handshake extends that edge to the non-joining callers.
  if (!joining_.exchange(true, std::memory_order_acq_rel)) {
    thread_.join();
    joined_.store(true, std::memory_order_release);
    return;
  }
  while (!joined_.load(std::memory_order_acquire)) {
    base::cpu_relax();
  }
}

ProgressThread::Window ProgressThread::sample_window() {
  const std::uint64_t it = iterations_.load(std::memory_order_relaxed);
  const std::uint64_t pr = productive_.load(std::memory_order_relaxed);
  const Window delta{it - last_window_.iterations,
                     pr - last_window_.productive};
  last_window_ = Window{it, pr};
  return delta;
}

void ProgressThread::run() {
  base::set_current_thread_name("mpx-progress");
  std::uint64_t idle_streak = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    const int made = stream_progress(stream_);
    iterations_.fetch_add(1, std::memory_order_relaxed);
    if (made != 0) {
      productive_.fetch_add(1, std::memory_order_relaxed);
      idle_streak = 0;
      continue;
    }
    ++idle_streak;
    switch (backoff_) {
      case ProgressBackoff::busy:
        base::cpu_relax();
        break;
      case ProgressBackoff::yield:
        std::this_thread::yield();
        break;
      case ProgressBackoff::sleep: {
        // Exponential backoff keeps idle cost near zero while bounding
        // added latency when work reappears. The cap is the same
        // MPX_WAIT_SLEEP_MAX the wait ladder uses — one knob for every
        // idle sleeper in the process.
        if (idle_streak < 8) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(
              std::chrono::microseconds(core_detail::backoff_sleep_us(
                  static_cast<long>(idle_streak) - 8,
                  stream_.world().config().wait_sleep_max_us)));
        }
        break;
      }
    }
  }
}

}  // namespace mpx::task
