#include "mpx/task/task_queue.hpp"

namespace mpx::task {

AsyncResult TaskQueue::trampoline(AsyncThing& thing) {
  return static_cast<TaskQueue*>(thing.state())->class_poll();
}

TaskQueue::~TaskQueue() {
  // The progress hook holds `this`: drain before dying. Destroying a queue
  // whose tasks can no longer complete is a deadlock by contract.
  drain();
}

void TaskQueue::push(std::function<bool()> poll) {
  expects(static_cast<bool>(poll), "TaskQueue::push: empty task");
  bool need_hook = false;
  {
    base::LockGuard<base::Spinlock> g(mu_);
    q_.push_back(std::move(poll));
    if (!hook_active_) {
      hook_active_ = true;
      need_hook = true;
    }
  }
  if (need_hook) {
    async_start(&TaskQueue::trampoline, this, stream_);
  }
}

std::size_t TaskQueue::pending() const {
  base::LockGuard<base::Spinlock> g(mu_);
  return q_.size();
}

void TaskQueue::drain() {
  for (;;) {
    {
      base::LockGuard<base::Spinlock> g(mu_);
      if (!hook_active_) return;
    }
    stream_progress(stream_);
  }
}

AsyncResult TaskQueue::class_poll() {
  // Head-only polling (Listing 1.4): tasks complete in order, so the cost of
  // one progress pass is O(1) regardless of queue depth.
  for (;;) {
    std::function<bool()>* head = nullptr;
    {
      base::LockGuard<base::Spinlock> g(mu_);
      if (q_.empty()) {
        hook_active_ = false;
        return AsyncResult::done;
      }
      head = &q_.front();
    }
    // Run outside the queue lock: the task may push follow-on work.
    if (!(*head)()) return AsyncResult::noprogress;
    base::LockGuard<base::Spinlock> g(mu_);
    q_.pop_front();
  }
}

}  // namespace mpx::task
