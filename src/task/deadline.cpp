#include "mpx/task/deadline.hpp"

namespace mpx::task {
namespace {

struct DummyState {
  World* world;
  double wtime_finish;
  std::atomic<int>* counter;
  base::LatencyRecorder* rec;
};

// Listing 1.2's dummy_poll, with the latency bookkeeping of Listing 1.3.
AsyncResult dummy_poll(AsyncThing& thing) {
  auto* p = static_cast<DummyState*>(thing.state());
  const double wtime = p->world->wtime();
  if (wtime >= p->wtime_finish) {
    if (p->rec != nullptr) p->rec->add(wtime - p->wtime_finish);
    if (p->counter != nullptr) {
      p->counter->fetch_sub(1, std::memory_order_relaxed);
    }
    delete p;
    return AsyncResult::done;
  }
  return AsyncResult::noprogress;
}

}  // namespace

void add_dummy_task_abs(const Stream& stream, double deadline,
                        std::atomic<int>* counter,
                        base::LatencyRecorder* rec) {
  auto* p = new DummyState{&stream.world(), deadline, counter, rec};
  async_start(&dummy_poll, p, stream);
}

void add_dummy_task(const Stream& stream, double duration_s,
                    std::atomic<int>* counter, base::LatencyRecorder* rec) {
  add_dummy_task_abs(stream, stream.world().wtime() + duration_s, counter,
                     rec);
}

}  // namespace mpx::task
