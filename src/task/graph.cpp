#include "mpx/task/graph.hpp"

#include <algorithm>

namespace mpx::task {

TaskGraph::NodeId TaskGraph::add(std::function<AsyncResult()> poll,
                                 std::initializer_list<NodeId> deps) {
  return add(std::move(poll), std::vector<NodeId>(deps));
}

TaskGraph::NodeId TaskGraph::add(std::function<AsyncResult()> poll,
                                 const std::vector<NodeId>& deps) {
  expects(!launched_, "TaskGraph::add: graph already launched");
  expects(static_cast<bool>(poll), "TaskGraph::add: empty poll");
  const NodeId id = nodes_.size();
  Node n;
  n.poll = std::move(poll);
  n.missing_deps = static_cast<int>(deps.size());
  nodes_.push_back(std::move(n));
  for (NodeId d : deps) {
    expects(d < id, "TaskGraph::add: dependency on a later node");
    nodes_[d].dependents.push_back(id);
  }
  if (deps.empty()) ready_.push_back(id);
  return id;
}

void TaskGraph::launch(const Stream& stream) {
  expects(!launched_, "TaskGraph::launch: already launched");
  launched_ = true;
  if (nodes_.empty()) {
    done_.store(true, std::memory_order_release);
    return;
  }
  async_start(&TaskGraph::trampoline, this, stream);
}

AsyncResult TaskGraph::trampoline(AsyncThing& thing) {
  return static_cast<TaskGraph*>(thing.state())->poll();
}

AsyncResult TaskGraph::poll() {
  // Poll the current frontier; completions can unlock new ready nodes that
  // are polled in the same pass (they were appended to ready_).
  for (std::size_t i = 0; i < ready_.size();) {
    Node& n = nodes_[ready_[i]];
    if (n.poll() == AsyncResult::done) {
      n.completed = true;
      ++completed_count_;
      for (NodeId dep : n.dependents) {
        if (--nodes_[dep].missing_deps == 0) ready_.push_back(dep);
      }
      ready_[i] = ready_.back();
      ready_.pop_back();
    } else {
      ++i;
    }
  }
  if (completed_count_ == nodes_.size()) {
    done_.store(true, std::memory_order_release);
    return AsyncResult::done;
  }
  return AsyncResult::noprogress;
}

}  // namespace mpx::task
