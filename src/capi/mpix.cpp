// C binding implementation. Thin handle wrappers over the C++ API; every
// entry point translates exceptions into MPIX_ error codes (C callers get
// codes, never exceptions).
#include "mpx/capi/mpix.h"

#include <new>

#include "mpx/coll/coll.hpp"
#include "mpx/mpx.hpp"

struct mpix_world_s {
  std::shared_ptr<mpx::World> w;
};
struct mpix_comm_s {
  mpx::Comm c;
};
struct mpix_stream_s {
  mpx::Stream s;
};
struct mpix_request_s {
  mpx::Request r;
};
struct mpix_info_s {
  mpx::Info i;
};

namespace {

using mpx::dtype::Datatype;

Datatype to_dt(MPIX_Datatype dt) {
  switch (dt) {
    case MPIX_BYTE: return Datatype::byte();
    case MPIX_INT32: return Datatype::int32();
    case MPIX_INT64: return Datatype::int64();
    case MPIX_FLOAT: return Datatype::float32();
    case MPIX_DOUBLE: return Datatype::float64();
    default: return Datatype();
  }
}

mpx::dtype::ReduceOp to_op(MPIX_Op op) {
  switch (op) {
    case MPIX_PROD: return mpx::dtype::ReduceOp::prod;
    case MPIX_MIN: return mpx::dtype::ReduceOp::min;
    case MPIX_MAX: return mpx::dtype::ReduceOp::max;
    case MPIX_SUM:
    default: return mpx::dtype::ReduceOp::sum;
  }
}

void fill_status(MPIX_Status* out, const mpx::Status& st) {
  if (out == MPIX_STATUS_IGNORE) return;
  out->MPIX_SOURCE = st.source;
  out->MPIX_TAG = st.tag;
  out->MPIX_ERROR =
      st.error == mpx::Err::success
          ? MPIX_SUCCESS
          : (st.error == mpx::Err::truncate ? MPIX_ERR_TRUNCATE
                                            : MPIX_ERR_OTHER);
  out->count_bytes = st.count_bytes;
}

/// Run `fn`, translating C++ errors to C codes.
template <class F>
int guarded(F&& fn) {
  try {
    return fn();
  } catch (const mpx::UsageError&) {
    return MPIX_ERR_ARG;
  } catch (const std::bad_alloc&) {
    return MPIX_ERR_OTHER;
  } catch (...) {
    return MPIX_ERR_OTHER;
  }
}

/// Bridges a C poll function (int return codes) to the C++ hook signature.
struct AsyncBridge {
  MPIX_Async_poll_function* fn;
  void* user_state;
};

mpx::AsyncResult bridge_poll(mpx::AsyncThing& thing) {
  auto* b = static_cast<AsyncBridge*>(thing.state());
  const int r = b->fn(reinterpret_cast<MPIX_Async_thing>(&thing));
  if (r == MPIX_ASYNC_DONE) {
    delete b;
    return mpx::AsyncResult::done;
  }
  return mpx::AsyncResult::pending;
}

}  // namespace

extern "C" {

int MPIX_World_create(int nranks, int ranks_per_node, MPIX_World* world) {
  if (world == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::WorldConfig cfg;
    cfg.nranks = nranks;
    cfg.ranks_per_node = ranks_per_node;
    *world = new mpix_world_s{mpx::World::create(cfg)};
    return MPIX_SUCCESS;
  });
}

int MPIX_World_finalize_rank(MPIX_World world, int rank) {
  if (world == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    world->w->finalize_rank(rank);
    return MPIX_SUCCESS;
  });
}

int MPIX_World_free(MPIX_World* world) {
  if (world == nullptr || *world == nullptr) return MPIX_ERR_ARG;
  delete *world;
  *world = nullptr;
  return MPIX_SUCCESS;
}

double MPIX_Wtime(MPIX_World world) {
  return world == nullptr ? 0.0 : world->w->wtime();
}

int MPIX_Comm_world(MPIX_World world, int rank, MPIX_Comm* comm) {
  if (world == nullptr || comm == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    *comm = new mpix_comm_s{world->w->comm_world(rank)};
    return MPIX_SUCCESS;
  });
}

int MPIX_Comm_free(MPIX_Comm* comm) {
  if (comm == nullptr || *comm == nullptr) return MPIX_ERR_ARG;
  delete *comm;
  *comm = nullptr;
  return MPIX_SUCCESS;
}

int MPIX_Comm_rank(MPIX_Comm comm, int* rank) {
  if (comm == nullptr || rank == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    *rank = comm->c.rank();
    return MPIX_SUCCESS;
  });
}

int MPIX_Comm_size(MPIX_Comm comm, int* size) {
  if (comm == nullptr || size == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    *size = comm->c.size();
    return MPIX_SUCCESS;
  });
}

int MPIX_Info_create(MPIX_Info* info) {
  if (info == nullptr) return MPIX_ERR_ARG;
  *info = new mpix_info_s{};
  return MPIX_SUCCESS;
}

int MPIX_Info_set(MPIX_Info info, const char* key, const char* value) {
  if (info == nullptr || key == nullptr || value == nullptr) {
    return MPIX_ERR_ARG;
  }
  info->i.set(key, value);
  return MPIX_SUCCESS;
}

int MPIX_Info_free(MPIX_Info* info) {
  if (info == nullptr || *info == nullptr) return MPIX_ERR_ARG;
  delete *info;
  *info = nullptr;
  return MPIX_SUCCESS;
}

int MPIX_Stream_create_on(MPIX_World world, int rank, MPIX_Info info,
                          MPIX_Stream* stream) {
  if (world == nullptr || stream == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    const mpx::Info empty;
    const mpx::Info& hints = info != nullptr ? info->i : empty;
    *stream = new mpix_stream_s{world->w->stream_create(rank, hints)};
    return MPIX_SUCCESS;
  });
}

int MPIX_Stream_free(MPIX_Stream* stream) {
  if (stream == nullptr || *stream == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::Stream s = (*stream)->s;
    s.world().stream_free(s);
    delete *stream;
    *stream = nullptr;
    return MPIX_SUCCESS;
  });
}

int MPIX_Stream_comm_create(MPIX_Comm parent_comm, MPIX_Stream stream,
                            MPIX_Comm* stream_comm) {
  if (parent_comm == nullptr || stream_comm == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    const mpx::Stream s =
        stream != MPIX_STREAM_NULL
            ? stream->s
            : parent_comm->c.world().null_stream(
                  parent_comm->c.world_rank(parent_comm->c.rank()));
    *stream_comm = new mpix_comm_s{parent_comm->c.with_stream(s)};
    return MPIX_SUCCESS;
  });
}

int MPIX_Stream_progress(MPIX_Stream stream) {
  if (stream == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::stream_progress(stream->s);
    return MPIX_SUCCESS;
  });
}

int MPIX_Comm_progress(MPIX_Comm comm) {
  if (comm == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::stream_progress(comm->c.stream());
    return MPIX_SUCCESS;
  });
}

int MPIX_Async_start(MPIX_Async_poll_function* poll_fn, void* extra_state,
                     MPIX_Stream stream) {
  if (poll_fn == nullptr || stream == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::async_start(&bridge_poll, new AsyncBridge{poll_fn, extra_state},
                     stream->s);
    return MPIX_SUCCESS;
  });
}

int MPIX_Async_start_on_comm(MPIX_Async_poll_function* poll_fn,
                             void* extra_state, MPIX_Comm comm) {
  if (poll_fn == nullptr || comm == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::async_start(&bridge_poll, new AsyncBridge{poll_fn, extra_state},
                     comm->c.stream());
    return MPIX_SUCCESS;
  });
}

void* MPIX_Async_get_state(MPIX_Async_thing thing) {
  auto* t = reinterpret_cast<mpx::AsyncThing*>(thing);
  return static_cast<AsyncBridge*>(t->state())->user_state;
}

int MPIX_Async_spawn(MPIX_Async_thing thing,
                     MPIX_Async_poll_function* poll_fn, void* extra_state,
                     MPIX_Stream stream) {
  if (thing == nullptr || poll_fn == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    auto* t = reinterpret_cast<mpx::AsyncThing*>(thing);
    const mpx::Stream s =
        stream != MPIX_STREAM_NULL ? stream->s : t->stream();
    t->spawn(&bridge_poll, new AsyncBridge{poll_fn, extra_state}, s);
    return MPIX_SUCCESS;
  });
}

int MPIX_Request_is_complete(MPIX_Request request) {
  return request == MPIX_REQUEST_NULL || request->r.is_complete() ? 1 : 0;
}

int MPIX_Isend(const void* buf, size_t count, MPIX_Datatype dt, int dst,
               int tag, MPIX_Comm comm, MPIX_Request* request) {
  if (comm == nullptr || request == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    *request = new mpix_request_s{comm->c.isend(buf, count, to_dt(dt), dst,
                                                tag)};
    return MPIX_SUCCESS;
  });
}

int MPIX_Irecv(void* buf, size_t count, MPIX_Datatype dt, int src, int tag,
               MPIX_Comm comm, MPIX_Request* request) {
  if (comm == nullptr || request == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    *request = new mpix_request_s{comm->c.irecv(buf, count, to_dt(dt), src,
                                                tag)};
    return MPIX_SUCCESS;
  });
}

int MPIX_Send(const void* buf, size_t count, MPIX_Datatype dt, int dst,
              int tag, MPIX_Comm comm) {
  if (comm == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    comm->c.send(buf, count, to_dt(dt), dst, tag);
    return MPIX_SUCCESS;
  });
}

int MPIX_Recv(void* buf, size_t count, MPIX_Datatype dt, int src, int tag,
              MPIX_Comm comm, MPIX_Status* status) {
  if (comm == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    const mpx::Status st = comm->c.recv(buf, count, to_dt(dt), src, tag);
    fill_status(status, st);
    return st.error == mpx::Err::truncate ? MPIX_ERR_TRUNCATE : MPIX_SUCCESS;
  });
}

int MPIX_Wait(MPIX_Request* request, MPIX_Status* status) {
  if (request == nullptr) return MPIX_ERR_ARG;
  if (*request == MPIX_REQUEST_NULL) return MPIX_SUCCESS;
  return guarded([&] {
    const mpx::Status st = (*request)->r.wait();
    fill_status(status, st);
    delete *request;
    *request = MPIX_REQUEST_NULL;
    return MPIX_SUCCESS;
  });
}

int MPIX_Test(MPIX_Request* request, int* flag, MPIX_Status* status) {
  if (request == nullptr || flag == nullptr) return MPIX_ERR_ARG;
  if (*request == MPIX_REQUEST_NULL) {
    *flag = 1;
    return MPIX_SUCCESS;
  }
  return guarded([&] {
    const auto st = (*request)->r.test();
    *flag = st.has_value() ? 1 : 0;
    if (st.has_value()) {
      fill_status(status, *st);
      delete *request;
      *request = MPIX_REQUEST_NULL;
    }
    return MPIX_SUCCESS;
  });
}

int MPIX_Request_free(MPIX_Request* request) {
  if (request == nullptr || *request == MPIX_REQUEST_NULL) {
    return MPIX_ERR_ARG;
  }
  delete *request;
  *request = MPIX_REQUEST_NULL;
  return MPIX_SUCCESS;
}

int MPIX_Barrier(MPIX_Comm comm) {
  if (comm == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::coll::barrier(comm->c);
    return MPIX_SUCCESS;
  });
}

int MPIX_Bcast(void* buf, size_t count, MPIX_Datatype dt, int root,
               MPIX_Comm comm) {
  if (comm == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::coll::bcast(buf, count, to_dt(dt), root, comm->c);
    return MPIX_SUCCESS;
  });
}

int MPIX_Allreduce(const void* sendbuf, void* recvbuf, size_t count,
                   MPIX_Datatype dt, MPIX_Op op, MPIX_Comm comm) {
  if (comm == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::coll::allreduce(sendbuf, recvbuf, count, to_dt(dt), to_op(op),
                         comm->c);
    return MPIX_SUCCESS;
  });
}

int MPIX_Grequest_start(MPIX_Comm comm, MPIX_Request* request) {
  if (comm == nullptr || request == nullptr) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::Request r = comm->c.world().grequest_start(
        comm->c.stream(), mpx::core_detail::GrequestFns{});
    *request = new mpix_request_s{std::move(r)};
    return MPIX_SUCCESS;
  });
}

int MPIX_Grequest_complete(MPIX_Request request) {
  if (request == MPIX_REQUEST_NULL) return MPIX_ERR_ARG;
  return guarded([&] {
    mpx::World::grequest_complete(request->r);
    return MPIX_SUCCESS;
  });
}

}  // extern "C"
