#include "mpx/io/file.hpp"

#include <algorithm>
#include <cstring>

#include "mpx/coll/coll.hpp"
#include "mpx/core/async.hpp"
#include "mpx/core/waittest.hpp"

namespace mpx::io {

SimDisk::SimDisk(World& world, DiskModel model)
    : world_(&world), model_(model) {}

std::uint64_t SimDisk::size(const std::string& name) const {
  base::LockGuard<base::Spinlock> g(mu_);
  auto it = objects_.find(name);
  return it == objects_.end() ? 0 : it->second.size();
}

bool SimDisk::exists(const std::string& name) const {
  base::LockGuard<base::Spinlock> g(mu_);
  return objects_.count(name) != 0;
}

void SimDisk::remove(const std::string& name) {
  base::LockGuard<base::Spinlock> g(mu_);
  objects_.erase(name);
}

void SimDisk::raw_write(const std::string& name, std::uint64_t offset,
                        base::ConstByteSpan data) {
  base::LockGuard<base::Spinlock> g(mu_);
  auto& obj = objects_[name];
  if (obj.size() < offset + data.size()) obj.resize(offset + data.size());
  if (!data.empty()) std::memcpy(obj.data() + offset, data.data(), data.size());
}

std::vector<std::byte> SimDisk::raw_read(const std::string& name,
                                         std::uint64_t offset,
                                         std::uint64_t len) const {
  base::LockGuard<base::Spinlock> g(mu_);
  auto it = objects_.find(name);
  if (it == objects_.end() || offset >= it->second.size()) return {};
  const std::uint64_t n = std::min<std::uint64_t>(len, it->second.size() - offset);
  return std::vector<std::byte>(it->second.begin() + static_cast<std::ptrdiff_t>(offset),
                                it->second.begin() + static_cast<std::ptrdiff_t>(offset + n));
}

std::uint64_t SimDisk::reads_completed() const {
  base::LockGuard<base::Spinlock> g(mu_);
  return reads_;
}
std::uint64_t SimDisk::writes_completed() const {
  base::LockGuard<base::Spinlock> g(mu_);
  return writes_;
}

void SimDisk::note_completed(bool is_write) {
  base::LockGuard<base::Spinlock> g(mu_);
  if (is_write) {
    ++writes_;
  } else {
    ++reads_;
  }
}

namespace {

/// One in-flight device operation: a generalized request tracked by the
/// caller, progressed by an MPIX_Async hook — the paper's Listing 1.7
/// combination, applied to storage.
struct IoOp {
  std::shared_ptr<SimDisk> disk;
  std::string name;
  bool is_write = false;
  std::uint64_t offset = 0;
  base::Buffer capture;      // write payload (captured at submit)
  base::ByteSpan out;        // read destination
  double due = 0.0;
  std::uint64_t result_bytes = 0;
  Request greq;              // the user-visible handle

  /// Apply the operation to the object store (called once, at completion).
  void apply() {
    if (is_write) {
      disk->raw_write(name, offset, capture.span());
      result_bytes = capture.size();
    } else {
      const auto data = disk->raw_read(name, offset, out.size());
      if (!data.empty()) std::memcpy(out.data(), data.data(), data.size());
      result_bytes = data.size();
    }
    disk->note_completed(is_write);
  }
};

AsyncResult io_hook(AsyncThing& thing) {
  auto* op = static_cast<IoOp*>(thing.state());
  if (op->disk->world().wtime() < op->due) return AsyncResult::noprogress;
  op->apply();
  // Publish the transferred byte count, then complete the handle. Status
  // writes happen-before the completion flag's release store.
  Request handle = std::move(op->greq);
  handle.impl()->status.count_bytes = op->result_bytes;
  delete op;
  World::grequest_complete(handle);
  return AsyncResult::done;
}

Request submit(const std::shared_ptr<SimDisk>& disk, const Stream& stream,
               std::unique_ptr<IoOp> op) {
  World& w = disk->world();
  const DiskModel& m = disk->model();
  const double bytes = op->is_write
                           ? static_cast<double>(op->capture.size())
                           : static_cast<double>(op->out.size());
  const double bw = op->is_write ? m.write_bw_Bps : m.read_bw_Bps;
  op->due = w.wtime() + m.access_latency + bytes / bw;
  op->greq = w.grequest_start(stream, core_detail::GrequestFns{});
  Request handle = op->greq;
  async_start(&io_hook, op.release(), stream);
  return handle;
}

}  // namespace

File File::open(std::shared_ptr<SimDisk> disk, std::string name,
                const Stream& stream) {
  expects(disk != nullptr, "File::open: null disk");
  expects(stream.valid(), "File::open: invalid stream");
  File f;
  f.disk_ = std::move(disk);
  f.name_ = std::move(name);
  f.stream_ = stream;
  f.disk_->raw_write(f.name_, 0, base::ConstByteSpan{});  // create if absent
  return f;
}

std::uint64_t File::size() const {
  expects(valid(), "File::size: invalid file");
  return disk_->size(name_);
}

Request File::iwrite_at(std::uint64_t offset, base::ConstByteSpan data) {
  expects(valid(), "File::iwrite_at: invalid file");
  auto op = std::make_unique<IoOp>();
  op->disk = disk_;
  op->name = name_;
  op->is_write = true;
  op->offset = offset;
  op->capture = base::Buffer::copy_of(data);
  return submit(disk_, stream_, std::move(op));
}

Request File::iread_at(std::uint64_t offset, base::ByteSpan out) {
  expects(valid(), "File::iread_at: invalid file");
  auto op = std::make_unique<IoOp>();
  op->disk = disk_;
  op->name = name_;
  op->offset = offset;
  op->out = out;
  return submit(disk_, stream_, std::move(op));
}

void File::write_at(std::uint64_t offset, base::ConstByteSpan data) {
  Request r = iwrite_at(offset, data);
  wait_on_stream(r, stream_);
}

std::uint64_t File::read_at(std::uint64_t offset, base::ByteSpan out) {
  Request r = iread_at(offset, out);
  return wait_on_stream(r, stream_).count_bytes;
}

void File::write_at_all(const Comm& comm, std::uint64_t offset,
                        base::ConstByteSpan data) {
  Request r = iwrite_at(offset, data);
  wait_on_stream(r, stream_);
  coll::barrier(comm);
}

void File::read_at_all(const Comm& comm, std::uint64_t offset,
                       base::ByteSpan out) {
  // All writers must be globally visible before anyone reads.
  coll::barrier(comm);
  Request r = iread_at(offset, out);
  wait_on_stream(r, stream_);
}

}  // namespace mpx::io
