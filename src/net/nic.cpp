#include "mpx/net/nic.hpp"

#include "mpx/base/status.hpp"

namespace mpx::net {

using transport::Msg;

Nic::Nic(int nranks, int max_vcis, CostModel model, const base::Clock& clock,
         transport::TransportLimits limits)
    : nranks_(nranks),
      max_vcis_(max_vcis),
      model_(model),
      limits_(limits),
      clock_(clock),
      channels_(static_cast<std::size_t>(nranks) * nranks * max_vcis),
      send_cqs_(static_cast<std::size_t>(nranks) * max_vcis),
      ep_pending_(static_cast<std::size_t>(nranks) * max_vcis) {
  expects(nranks >= 1 && max_vcis >= 1, "Nic: bad dimensions");
}

Nic::Channel& Nic::channel(int src, int dst, int vci) {
  return channels_[(static_cast<std::size_t>(src) * nranks_ + dst) *
                       max_vcis_ +
                   vci];
}
const Nic::Channel& Nic::channel(int src, int dst, int vci) const {
  return channels_[(static_cast<std::size_t>(src) * nranks_ + dst) *
                       max_vcis_ +
                   vci];
}
Nic::SendCq& Nic::send_cq(int rank, int vci) {
  return send_cqs_[static_cast<std::size_t>(rank) * max_vcis_ + vci];
}
const Nic::SendCq& Nic::send_cq(int rank, int vci) const {
  return send_cqs_[static_cast<std::size_t>(rank) * max_vcis_ + vci];
}
std::atomic<std::uint32_t>& Nic::ep_pending(int rank, int vci) {
  return ep_pending_[static_cast<std::size_t>(rank) * max_vcis_ + vci];
}

void Nic::inject(Msg&& m, std::uint64_t cookie) {
  expects(m.h.src_rank >= 0 && m.h.src_rank < nranks_ && m.h.dst_rank >= 0 &&
              m.h.dst_rank < nranks_,
          "Nic::inject: rank out of range");
  expects(m.h.dst_vci >= 0 && m.h.dst_vci < max_vcis_ && m.h.src_vci >= 0 &&
              m.h.src_vci < max_vcis_,
          "Nic::inject: vci out of range");
  injected_.fetch_add(1, std::memory_order_relaxed);
  const double now = clock_.now();
  const std::size_t bytes = m.payload.size();
  const int src_rank = m.h.src_rank;
  const int src_vci = m.h.src_vci;

  // Pending counts rise before the matching push (mirror of the engine's
  // hook_count): a poller reading zero is then guaranteed the queues held
  // nothing it could miss, while a nonzero read at worst costs one
  // unproductive locked scan.
  Channel& ch = channel(m.h.src_rank, m.h.dst_rank, m.h.dst_vci);
  ep_pending(m.h.dst_rank, m.h.dst_vci)
      .fetch_add(1, std::memory_order_release);
  {
    base::LockGuard<base::Spinlock> g(ch.mu);
    const double due = model_.deliver_time(now, ch.clear_time, bytes);
    ch.clear_time = due;
    ch.in_flight.push_back(TimedMsg{due, std::move(m)});
  }

  if (cookie != 0) {
    SendCq& cq = send_cq(src_rank, src_vci);
    ep_pending(src_rank, src_vci).fetch_add(1, std::memory_order_release);
    base::LockGuard<base::Spinlock> g(cq.mu);
    cq.q.push_back(CqEntry{model_.inject_done_time(now, bytes), cookie});
  }
}

void Nic::poll(int rank, int vci, transport::TransportSink& sink,
               int* made_progress) {
  // Quiet-endpoint fast path: nothing in flight to or from (rank, vci)
  // means no lock or clock read is worth paying. A racing inject() is
  // caught by a later poll (delivery may lag injection, as everywhere).
  if (ep_pending(rank, vci).load(std::memory_order_acquire) == 0) return;
  const double now = clock_.now();

  // 1) Fire due sender-side completions (injection DMA done).
  SendCq& cq = send_cq(rank, vci);
  for (;;) {
    std::uint64_t cookie = 0;
    {
      base::LockGuard<base::Spinlock> g(cq.mu);
      if (cq.q.empty() || cq.q.front().due > now) break;
      cookie = cq.q.front().cookie;
      cq.q.pop_front();
    }
    ep_pending(rank, vci).fetch_sub(1, std::memory_order_relaxed);
    cq_events_.fetch_add(1, std::memory_order_relaxed);
    if (made_progress != nullptr) *made_progress = 1;
    sink.on_send_complete(cookie);
  }

  // 2) Deliver due arrivals from every source channel.
  for (int src = 0; src < nranks_; ++src) {
    Channel& ch = channel(src, rank, vci);
    for (;;) {
      Msg m;
      {
        base::LockGuard<base::Spinlock> g(ch.mu);
        if (ch.in_flight.empty() || ch.in_flight.front().due > now) break;
        m = std::move(ch.in_flight.front().msg);
        ch.in_flight.pop_front();
      }
      ep_pending(rank, vci).fetch_sub(1, std::memory_order_relaxed);
      delivered_.fetch_add(1, std::memory_order_relaxed);
      if (made_progress != nullptr) *made_progress = 1;
      sink.on_msg(std::move(m));
    }
  }
}

bool Nic::idle(int rank, int vci) const {
  {
    const SendCq& cq = send_cq(rank, vci);
    base::LockGuard<base::Spinlock> g(cq.mu);
    if (!cq.q.empty()) return false;
  }
  for (int src = 0; src < nranks_; ++src) {
    const Channel& ch = channel(src, rank, vci);
    base::LockGuard<base::Spinlock> g(ch.mu);
    if (!ch.in_flight.empty()) return false;
  }
  return true;
}

NicStats Nic::stats() const {
  return NicStats{injected_.load(std::memory_order_relaxed),
                  delivered_.load(std::memory_order_relaxed),
                  cq_events_.load(std::memory_order_relaxed)};
}

transport::TransportStats Nic::transport_stats() const {
  transport::TransportStats s;
  s.sends = injected_.load(std::memory_order_relaxed);
  s.delivered = delivered_.load(std::memory_order_relaxed);
  s.backlogged = 0;  // the simulated NIC never back-pressures injection
  s.completions = cq_events_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mpx::net
