// src/mc/explorer.cpp
//
// The mpx::mc schedule explorer. One Session per explore() call; virtual
// threads are real std::threads cooperating through a single token (the
// session mutex + condvar + `cur_`) so exactly one executes scenario code
// at a time. Every instrumented operation is a *schedule point*: the
// running thread consults the DFS trail (or extends it), possibly hands the
// token to another thread, performs the modeled effect under the session
// lock, and continues. There is no separate controller thread — decision
// logic runs in whichever thread hits the schedule point.
//
// Memory model (see mc.hpp header comment): sequentially consistent
// interleaving as the base, plus
//   - vector-clock happens-before from release stores -> acquire loads
//     (seq_cst counts as both); relaxed never synchronizes;
//   - relaxed loads may read stale values from a bounded per-location store
//     history, each legal value a DFS branch; acquire/seq_cst loads read the
//     newest store (a sound under-approximation of allowed executions);
//   - plain accesses (MPX_MC_PLAIN_*) race-checked FastTrack-style: an
//     unordered pair fails the exploration regardless of observed values.
//
// Failure handling:
//   - benign violations (mc::check, data race, replay nondeterminism) flip
//     the session to `freerun`: modeling stops and the virtual threads
//     finish the body on the real primitives, so destructors run and the
//     exploration returns cleanly;
//   - failures that mean the scenario's own memory is now unsafe (mutex
//     destroyed while held, deadlock, livelock, unjoined vthreads) flip to
//     `abandon`: every virtual thread parks forever, the std::threads are
//     detached, and the Session is deliberately leaked. A small heap leak in
//     an already-failing test process beats executing the use-after-free the
//     bug would cause.

#include "mpx/mc/mc.hpp"

#if MPX_MODEL_CHECK

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <string_view>
#include <system_error>
#include <thread>
#include <vector>

#include "mpx/base/cvar.hpp"

namespace mpx::mc {
namespace {

constexpr int kMaxThreads = 8;
constexpr std::size_t kStoreHistory = 4;  // stale values visible to relaxed
constexpr int kStaleReadBound = 3;  // stale relaxed loads per (loc, thread)
constexpr std::size_t kOpLog = 256;       // ring of recent ops for dumps

using Clock = std::array<std::uint64_t, kMaxThreads>;

void clock_join(Clock& into, const Clock& from) {
  for (int i = 0; i < kMaxThreads; ++i) into[i] = std::max(into[i], from[i]);
}
bool clock_leq(const Clock& a, const Clock& b) {
  for (int i = 0; i < kMaxThreads; ++i)
    if (a[i] > b[i]) return false;
  return true;
}

bool is_acquire(int mo) {
  auto m = static_cast<std::memory_order>(mo);
  return m == std::memory_order_acquire || m == std::memory_order_acq_rel ||
         m == std::memory_order_seq_cst || m == std::memory_order_consume;
}
bool is_release(int mo) {
  auto m = static_cast<std::memory_order>(mo);
  return m == std::memory_order_release || m == std::memory_order_acq_rel ||
         m == std::memory_order_seq_cst;
}

struct Store {
  std::uint64_t seq = 0;  // per-location sequence number
  std::uint64_t val = 0;
  Clock clk{};  // releasing thread's clock (joined on acquire read)
  bool release_op = false;
  int by = -1;
};

struct Loc {
  std::deque<Store> hist;  // newest at back; trimmed to kStoreHistory
  std::array<std::uint64_t, kMaxThreads> last_seen{};  // coherence floor
  // Stale-read budget per reader: without it a relaxed polling loop grows
  // one extra value decision per backtrack (read stale -> poll again ->
  // new branch), an unbounded DFS tail. After the budget a relaxed load
  // reads the newest store without branching — still an interleaving
  // under-approximation, now a finite one.
  std::array<int, kMaxThreads> stale_reads{};
  std::uint64_t next_seq = 1;
  std::vector<int> waiters;  // vthreads parked in mc_wait_change
};

struct MutexSt {
  int owner = -1;
  int depth = 0;
  bool recursive = false;
  Clock rel{};  // clock published by the last full unlock
  std::vector<int> waiters;
};

struct Epoch {
  int tid = -1;
  Clock clk{};
  const char* what = "";
};

struct PlainSt {
  Epoch last_write;
  std::vector<Epoch> reads;
};

enum class TState {
  ready,
  running,
  blocked_mutex,
  blocked_join,
  blocked_loc,
  finished,
  parked,  // abandon mode: never runs again
};

struct Decision {
  // Thread choice at this schedule point (canonical order: current thread
  // first, so index 0 = "continue", index > 0 = preemption)...
  std::vector<int> cands;
  std::size_t idx = 0;
  // ...or a value choice (stale relaxed load) over store seqs, newest first.
  bool value_point = false;
  std::vector<std::uint64_t> value_cands;
  std::size_t value_idx = 0;
};

enum class Mode { explore, freerun, abandon };

struct OpRec {
  int tid = -1;
  const char* what = "";
  const void* addr = nullptr;
  std::uint64_t val = 0;
};

struct VThread {
  std::thread th;
  std::function<void()> fn;
  TState state = TState::ready;
  Clock clk{};
  std::vector<int> joiners;
};

class Session;
thread_local Session* tl_session = nullptr;  // set inside vthreads only
thread_local int tl_tid = -1;

class Session {
 public:
  Session(const Options& opt, const std::function<void()>& body)
      : opt_(opt), body_(body) {}

  Result run();
  bool abandoned() {
    std::lock_guard<std::mutex> g(mu_);
    return mode_ == Mode::abandon;
  }

  // ---- entry points from the shims (vthreads only) ----------------------

  bool on_load(const void* loc, std::uint64_t seed, int mo, const char* what,
               std::uint64_t* out);
  bool on_store(const void* loc, std::uint64_t seed, std::uint64_t val,
                int mo, const char* what);
  bool on_rmw(const void* loc, std::uint64_t seed, std::uint64_t operand,
              bool add, int mo, const char* what, std::uint64_t* old_out);
  bool on_cas(const void* loc, std::uint64_t seed, std::uint64_t expected,
              std::uint64_t desired, int mo, const char* what,
              std::uint64_t* observed, bool* success);
  void on_forget(const void* loc);
  bool on_wait_change(const void* loc);
  void on_mtx_lock(const void* m, bool recursive, const char* what);
  bool on_mtx_try_lock(const void* m, bool recursive, const char* what,
                       bool* acquired);
  void on_mtx_unlock(const void* m);
  void on_mtx_destroy(const void* m);
  void on_plain(const void* addr, const char* what, bool write);
  void on_yield();
  void on_check_fail(const char* what);
  int spawn(std::function<void()> fn);
  void join_thread(int id);

 private:
  // All mutable state below is guarded by mu_ (the token mutex). Scenario
  // code runs WITHOUT mu_; hooks take it on entry.
  std::mutex mu_;
  std::condition_variable cv_;
  Options opt_;
  const std::function<void()>& body_;
  Result res_;

  std::array<VThread, kMaxThreads> vt_;
  int nthreads_ = 0;
  int cur_ = -1;  // vthread holding the token (-1: none / not exploring)
  Mode mode_ = Mode::explore;

  std::map<const void*, Loc> locs_;
  std::map<const void*, MutexSt> mtx_;
  std::map<const void*, PlainSt> plain_;

  std::vector<Decision> trail_;
  std::size_t depth_ = 0;  // decisions consumed this schedule
  long steps_ = 0;
  bool replaying_ = false;
  std::vector<std::pair<char, std::size_t>> replay_;

  std::array<OpRec, kOpLog> oplog_{};
  std::size_t opn_ = 0;

  // -- helpers (mu_ held) -------------------------------------------------

  void logop(const char* what, const void* addr, std::uint64_t v) {
    oplog_[opn_++ % kOpLog] = OpRec{cur_, what, addr, v};
  }

  void fail(const std::string& why, bool fatal);

  /// Abandon-mode terminal state for the calling vthread: never returns.
  void park(std::unique_lock<std::mutex>& lk) {
    if (tl_tid >= 0) vt_[tl_tid].state = TState::parked;
    cv_.notify_all();
    for (;;) cv_.wait(lk);
  }

  /// Wait until this vthread may continue: it holds the token again, or the
  /// session left explore mode. Parks forever on abandon.
  void resume_wait(std::unique_lock<std::mutex>& lk, int me) {
    cv_.wait(lk, [&] { return mode_ != Mode::explore || cur_ == me; });
    if (mode_ == Mode::abandon) park(lk);
  }

  std::vector<int> runnable() const {
    std::vector<int> r;
    for (int i = 0; i < nthreads_; ++i)
      if (vt_[i].state == TState::ready || vt_[i].state == TState::running)
        r.push_back(i);
    return r;
  }

  std::vector<int> candidates() const {
    std::vector<int> c;
    auto r = runnable();
    if (cur_ >= 0 && std::find(r.begin(), r.end(), cur_) != r.end())
      c.push_back(cur_);
    for (int t : r)
      if (t != cur_) c.push_back(t);
    return c;
  }

  std::size_t pick_thread(const std::vector<int>& tc,
                          std::unique_lock<std::mutex>& lk);
  std::size_t pick_value(const std::vector<std::uint64_t>& vc,
                         std::unique_lock<std::mutex>& lk);
  void schedule_point(std::unique_lock<std::mutex>& lk);
  void hand_token(int next) {
    if (cur_ >= 0 && vt_[cur_].state == TState::running)
      vt_[cur_].state = TState::ready;
    cur_ = next;
    vt_[next].state = TState::running;
    cv_.notify_all();
  }
  void block_cur(TState why, std::unique_lock<std::mutex>& lk);
  void wake(int id) {
    if (vt_[id].state == TState::blocked_mutex ||
        vt_[id].state == TState::blocked_join ||
        vt_[id].state == TState::blocked_loc)
      vt_[id].state = TState::ready;
  }

  bool advance_trail();
  std::string trail_string() const;
  void parse_replay();
  void dump(const std::string& why);
  void finish_schedule();

  Loc& loc_at(const void* p, std::uint64_t seed) {
    auto it = locs_.find(p);
    if (it == locs_.end()) {
      Loc l;
      Store s;
      s.seq = l.next_seq++;
      s.val = seed;
      s.by = -1;  // pre-session init, visible to everyone
      l.hist.push_back(s);
      it = locs_.emplace(p, std::move(l)).first;
    }
    return it->second;
  }

  void do_store(Loc& l, std::uint64_t val, int mo);
  std::uint64_t do_read(Loc& l, int mo, std::unique_lock<std::mutex>& lk);
};

// ---------------------------------------------------------------------------
// DFS trail

std::size_t Session::pick_thread(const std::vector<int>& tc,
                                 std::unique_lock<std::mutex>& lk) {
  if (replaying_) {
    if (depth_ >= replay_.size()) return 0;  // past the trail: default
    auto [k, idx] = replay_[depth_];
    if (k != 'T' || idx >= tc.size()) {
      fail("replay: decision mismatch (nondeterministic scenario?)", false);
      return 0;
    }
    ++depth_;
    return idx;
  }
  if (depth_ < trail_.size()) {
    Decision& d = trail_[depth_];
    if (d.value_point || d.cands != tc) {
      std::ostringstream os;
      os << "exploration nondeterminism: scenario must reset all state "
            "between runs (thread pick at depth "
         << depth_ << ": expected "
         << (d.value_point ? "value point" : "cands");
      if (!d.value_point) {
        os << " [";
        for (int c : d.cands) os << 'T' << c << ' ';
        os << ']';
      }
      os << ", got [";
      for (int c : tc) os << 'T' << c << ' ';
      os << "])";
      fail(os.str(), false);
      return 0;
    }
    ++depth_;
    return d.idx;
  }
  Decision d;
  d.cands = tc;
  d.idx = 0;  // default: continue the current thread
  trail_.push_back(std::move(d));
  ++depth_;
  (void)lk;
  return 0;
}

std::size_t Session::pick_value(const std::vector<std::uint64_t>& vc,
                                std::unique_lock<std::mutex>& lk) {
  if (replaying_) {
    if (depth_ >= replay_.size()) return 0;
    auto [k, idx] = replay_[depth_];
    if (k != 'V' || idx >= vc.size()) {
      fail("replay: decision mismatch (nondeterministic scenario?)", false);
      return 0;
    }
    ++depth_;
    return idx;
  }
  if (depth_ < trail_.size()) {
    Decision& d = trail_[depth_];
    if (!d.value_point || d.value_cands != vc) {
      fail("exploration nondeterminism: scenario must reset all state "
           "between runs",
           false);
      return 0;
    }
    ++depth_;
    return d.value_idx;
  }
  Decision d;
  d.value_point = true;
  d.value_cands = vc;
  d.value_idx = 0;  // default: newest store
  trail_.push_back(std::move(d));
  ++depth_;
  (void)lk;
  return 0;
}

bool Session::advance_trail() {
  while (!trail_.empty()) {
    Decision& d = trail_.back();
    const std::size_t n =
        d.value_point ? d.value_cands.size() : d.cands.size();
    std::size_t next = (d.value_point ? d.value_idx : d.idx) + 1;
    if (next < n && !d.value_point) {
      // A thread pick with idx > 0 switches away from a runnable current
      // thread: one preemption. Skip alternatives at this point when the
      // prefix has already spent the budget. Value picks are free.
      int spent = 0;
      for (std::size_t k = 0; k + 1 < trail_.size(); ++k)
        if (!trail_[k].value_point && trail_[k].idx > 0) ++spent;
      if (spent >= opt_.preemption_bound) {
        res_.bound_limited = true;
        next = n;
      }
    }
    if (next < n) {
      if (d.value_point)
        d.value_idx = next;
      else
        d.idx = next;
      return true;
    }
    trail_.pop_back();
  }
  return false;
}

std::string Session::trail_string() const {
  std::ostringstream os;
  for (const Decision& d : trail_) {
    if (d.value_point)
      os << 'V' << d.value_idx << '.';
    else
      os << 'T' << d.idx << '.';
  }
  return os.str();
}

void Session::parse_replay() {
  replay_.clear();
  const std::string& s = opt_.replay;
  std::size_t i = 0;
  while (i < s.size()) {
    const char k = s[i++];
    if (k != 'T' && k != 'V') continue;
    std::size_t v = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9')
      v = v * 10 + static_cast<std::size_t>(s[i++] - '0');
    replay_.emplace_back(k, v);
  }
  replaying_ = !replay_.empty();
}

// ---------------------------------------------------------------------------
// Scheduling

void Session::schedule_point(std::unique_lock<std::mutex>& lk) {
  if (mode_ != Mode::explore) return;
  if (++steps_ > opt_.max_steps) {
    fail("livelock: schedule exceeded MPX_MC_MAX_STEPS without finishing "
         "(spin loop without mc::yield?)",
         /*fatal=*/true);
    park(lk);
  }
  ++res_.points;
  auto c = candidates();
  if (c.size() <= 1) return;  // nothing to decide
  std::size_t idx = pick_thread(c, lk);
  if (mode_ != Mode::explore) return;
  if (idx >= c.size()) idx = 0;
  const int next = c[idx];
  if (next != cur_) {
    const int me = cur_;
    hand_token(next);
    resume_wait(lk, me);
  }
}

void Session::block_cur(TState why, std::unique_lock<std::mutex>& lk) {
  const int me = cur_;
  vt_[me].state = why;
  auto r = runnable();
  if (r.empty()) {
    std::ostringstream os;
    os << "deadlock: all virtual threads blocked (";
    for (int i = 0; i < nthreads_; ++i) {
      os << 'T' << i << '='
         << (vt_[i].state == TState::blocked_mutex  ? "mutex"
             : vt_[i].state == TState::blocked_join ? "join"
             : vt_[i].state == TState::blocked_loc  ? "loc"
             : vt_[i].state == TState::finished     ? "done"
                                                    : "?")
         << (i + 1 < nthreads_ ? " " : "");
    }
    os << ")";
    fail(os.str(), /*fatal=*/true);
    park(lk);
  }
  // Forced switch, not a preemption: the blocker cannot continue.
  cur_ = r.front();
  vt_[cur_].state = TState::running;
  cv_.notify_all();
  resume_wait(lk, me);
}

// ---------------------------------------------------------------------------
// Memory model

void Session::do_store(Loc& l, std::uint64_t val, int mo) {
  Store s;
  s.seq = l.next_seq++;
  s.val = val;
  s.by = cur_;
  s.release_op = is_release(mo);
  if (s.release_op) s.clk = vt_[cur_].clk;
  l.hist.push_back(s);
  while (l.hist.size() > kStoreHistory) l.hist.pop_front();
  l.last_seen[cur_] = s.seq;
  for (int w : l.waiters) wake(w);
  l.waiters.clear();
}

std::uint64_t Session::do_read(Loc& l, int mo,
                               std::unique_lock<std::mutex>& lk) {
  const int me = cur_;
  // Readable set: stores at or after the reader's coherence floor.
  // Acquire / seq_cst loads read the newest store; relaxed may read any
  // store in the window, each choice a DFS value branch. Relaxed reads
  // NEVER join clocks — that asymmetry, not the value, is what the race
  // detector keys on.
  const std::uint64_t floor = l.last_seen[me];
  std::vector<const Store*> readable;  // newest first
  for (auto it = l.hist.rbegin(); it != l.hist.rend(); ++it) {
    readable.push_back(&*it);
    if (it->seq <= floor) break;  // older than the floor: invisible
  }
  const Store* chosen = readable.front();
  if (!is_acquire(mo) && opt_.stale_relaxed_loads && readable.size() > 1 &&
      l.stale_reads[me] < kStaleReadBound) {
    std::vector<std::uint64_t> seqs;
    seqs.reserve(readable.size());
    for (const Store* s : readable) seqs.push_back(s->seq);
    std::size_t vi = pick_value(seqs, lk);
    if (mode_ != Mode::explore) return readable.front()->val;
    if (vi >= readable.size()) vi = 0;
    chosen = readable[vi];
    if (vi != 0) ++l.stale_reads[me];
  }
  l.last_seen[me] = std::max(l.last_seen[me], chosen->seq);
  if (is_acquire(mo) && chosen->release_op) clock_join(vt_[me].clk, chosen->clk);
  return chosen->val;
}

// ---------------------------------------------------------------------------
// Shim entry points. MPX_MC_ENTER: bail (not modeled) unless this thread is
// a vthread of this session in explore mode; park forever in abandon mode.

#define MPX_MC_ENTER(...)                             \
  if (tl_session != this || tl_tid < 0) return __VA_ARGS__; \
  std::unique_lock<std::mutex> lk(mu_);               \
  if (mode_ == Mode::abandon) park(lk);               \
  if (mode_ != Mode::explore) return __VA_ARGS__

bool Session::on_load(const void* loc, std::uint64_t seed, int mo,
                      const char* what, std::uint64_t* out) {
  MPX_MC_ENTER(false);
  schedule_point(lk);
  if (mode_ != Mode::explore) return false;
  Loc& l = loc_at(loc, seed);
  *out = do_read(l, mo, lk);
  if (mode_ != Mode::explore) return false;
  vt_[cur_].clk[cur_]++;
  logop(what, loc, *out);
  return true;
}

bool Session::on_store(const void* loc, std::uint64_t seed, std::uint64_t val,
                       int mo, const char* what) {
  MPX_MC_ENTER(false);
  schedule_point(lk);
  if (mode_ != Mode::explore) return false;
  Loc& l = loc_at(loc, seed);
  vt_[cur_].clk[cur_]++;
  do_store(l, val, mo);
  logop(what, loc, val);
  return true;
}

bool Session::on_rmw(const void* loc, std::uint64_t seed,
                     std::uint64_t operand, bool add, int mo,
                     const char* what, std::uint64_t* old_out) {
  MPX_MC_ENTER(false);
  schedule_point(lk);
  if (mode_ != Mode::explore) return false;
  Loc& l = loc_at(loc, seed);
  // RMW atomicity: always reads the latest store.
  const Store latest = l.hist.back();
  *old_out = latest.val;
  l.last_seen[cur_] = latest.seq;
  if (is_acquire(mo) && latest.release_op)
    clock_join(vt_[cur_].clk, latest.clk);
  vt_[cur_].clk[cur_]++;
  do_store(l, add ? latest.val + operand : operand, mo);
  logop(what, loc, *old_out);
  return true;
}

bool Session::on_cas(const void* loc, std::uint64_t seed,
                     std::uint64_t expected, std::uint64_t desired, int mo,
                     const char* what, std::uint64_t* observed,
                     bool* success) {
  MPX_MC_ENTER(false);
  schedule_point(lk);
  if (mode_ != Mode::explore) return false;
  Loc& l = loc_at(loc, seed);
  const Store latest = l.hist.back();
  *observed = latest.val;
  l.last_seen[cur_] = latest.seq;
  if (is_acquire(mo) && latest.release_op)
    clock_join(vt_[cur_].clk, latest.clk);
  vt_[cur_].clk[cur_]++;
  *success = (latest.val == expected);
  if (*success) do_store(l, desired, mo);
  logop(what, loc, *observed);
  return true;
}

void Session::on_forget(const void* loc) {
  MPX_MC_ENTER();
  auto it = locs_.find(loc);
  if (it == locs_.end()) return;
  if (!it->second.waiters.empty()) {
    fail("atomic destroyed while a virtual thread waits on it "
         "(use-after-free)",
         /*fatal=*/true);
    park(lk);
  }
  locs_.erase(it);
}

bool Session::on_wait_change(const void* loc) {
  MPX_MC_ENTER(false);
  auto it = locs_.find(loc);
  if (it == locs_.end()) return true;  // nothing modeled yet: just retry
  it->second.waiters.push_back(cur_);
  block_cur(TState::blocked_loc, lk);
  return mode_ == Mode::explore;
}

void Session::on_mtx_lock(const void* m, bool recursive, const char* what) {
  MPX_MC_ENTER();
  schedule_point(lk);
  if (mode_ != Mode::explore) return;
  MutexSt& s = mtx_[m];
  s.recursive = recursive;
  if (s.owner == cur_ && !recursive) {
    fail("non-recursive mutex relocked by its owner (self-deadlock)", true);
    park(lk);
  }
  while (s.owner != -1 && s.owner != cur_) {
    s.waiters.push_back(cur_);
    block_cur(TState::blocked_mutex, lk);
    if (mode_ != Mode::explore) return;
  }
  s.owner = cur_;
  ++s.depth;
  clock_join(vt_[cur_].clk, s.rel);  // acquire the last unlock's clock
  vt_[cur_].clk[cur_]++;
  logop(what, m, static_cast<std::uint64_t>(s.depth));
}

bool Session::on_mtx_try_lock(const void* m, bool recursive,
                              const char* what, bool* acquired) {
  MPX_MC_ENTER(false);
  schedule_point(lk);
  if (mode_ != Mode::explore) return false;
  MutexSt& s = mtx_[m];
  s.recursive = recursive;
  if (s.owner == -1 || (s.owner == cur_ && recursive)) {
    s.owner = cur_;
    ++s.depth;
    clock_join(vt_[cur_].clk, s.rel);
    *acquired = true;
  } else {
    *acquired = false;
  }
  vt_[cur_].clk[cur_]++;
  logop(what, m, *acquired ? 1 : 0);
  return true;
}

void Session::on_mtx_unlock(const void* m) {
  MPX_MC_ENTER();
  auto it = mtx_.find(m);
  if (it == mtx_.end() || it->second.owner != cur_) return;
  // Leading schedule point: model the instant where the critical section is
  // over but the unlock is not yet visible. This is where publish-before-
  // unlock bugs live — a peer acting on the published value can reach the
  // mutex destructor while the modeled owner still holds it.
  schedule_point(lk);
  if (mode_ != Mode::explore) return;
  it = mtx_.find(m);  // re-find: the map may rehash while suspended
  if (it == mtx_.end() || it->second.owner != cur_) return;
  MutexSt& s = it->second;
  vt_[cur_].clk[cur_]++;
  if (--s.depth == 0) {
    s.owner = -1;
    s.rel = vt_[cur_].clk;
    for (int w : s.waiters) wake(w);
    s.waiters.clear();
  }
  logop("mutex.unlock", m, static_cast<std::uint64_t>(s.depth));
  schedule_point(lk);  // let a waiter win the lock race here
}

void Session::on_mtx_destroy(const void* m) {
  MPX_MC_ENTER();
  auto it = mtx_.find(m);
  if (it == mtx_.end()) return;
  if (it->second.owner != -1 || !it->second.waiters.empty()) {
    fail(it->second.owner != -1
             ? "mutex destroyed while held by another thread "
               "(use-after-free)"
             : "mutex destroyed while threads wait on it (use-after-free)",
         /*fatal=*/true);
    park(lk);  // the destructor must not complete
  }
  mtx_.erase(it);
}

void Session::on_plain(const void* addr, const char* what, bool write) {
  MPX_MC_ENTER();
  PlainSt& p = plain_[addr];
  const Clock& myclk = vt_[cur_].clk;
  const int me = cur_;
  auto report = [&](const Epoch& other, const char* kind) {
    std::ostringstream os;
    os << "data race on plain data: " << kind << " '" << other.what
       << "' by T" << other.tid << " unordered with "
       << (write ? "write" : "read") << " '" << what << "' by T" << me;
    fail(os.str(), /*fatal=*/false);
  };
  if (p.last_write.tid >= 0 && p.last_write.tid != me &&
      !clock_leq(p.last_write.clk, myclk)) {
    report(p.last_write, "write");
    return;
  }
  if (write) {
    for (const Epoch& r : p.reads) {
      if (r.tid != me && !clock_leq(r.clk, myclk)) {
        report(r, "read");
        return;
      }
    }
    p.last_write = Epoch{me, myclk, what};
    p.reads.clear();
  } else {
    p.reads.push_back(Epoch{me, myclk, what});
  }
  vt_[cur_].clk[cur_]++;
}

void Session::on_yield() {
  MPX_MC_ENTER();
  // Deterministic round-robin: no DFS branch, no preemption charge. Spin
  // loops use this so waiting does not explode the schedule tree.
  if (++steps_ > opt_.max_steps) {
    fail("livelock: schedule exceeded MPX_MC_MAX_STEPS in a yield loop",
         /*fatal=*/true);
    park(lk);
  }
  int next = -1;
  for (int d = 1; d <= nthreads_; ++d) {
    const int cand = (cur_ + d) % nthreads_;
    if (cand != cur_ && vt_[cand].state == TState::ready) {
      next = cand;
      break;
    }
  }
  if (next < 0) return;  // nobody else runnable
  const int me = cur_;
  hand_token(next);
  resume_wait(lk, me);
}

void Session::on_check_fail(const char* what) {
  MPX_MC_ENTER();
  fail(std::string("mc::check failed: ") + what, /*fatal=*/false);
}

// ---------------------------------------------------------------------------
// Threads

int Session::spawn(std::function<void()> fn) {
  std::unique_lock<std::mutex> lk(mu_);
  if (nthreads_ >= kMaxThreads) {
    fail("too many virtual threads (max 8)", false);
    return -1;
  }
  const int id = nthreads_++;
  VThread& v = vt_[id];
  v.fn = std::move(fn);
  v.state = TState::ready;
  v.clk = {};
  v.joiners.clear();
  // Thread creation synchronizes: child inherits the spawner's clock. The
  // child's own component then advances past the inherited prefix so its
  // very first access already carries an epoch no other clock covers —
  // without this, first-op races compare as ordered (own component 0).
  if (cur_ >= 0) v.clk = vt_[cur_].clk;
  v.clk[id]++;
  Session* self = this;
  v.th = std::thread([self, id] {
    tl_session = self;
    tl_tid = id;
    {
      std::unique_lock<std::mutex> lk2(self->mu_);
      self->resume_wait(lk2, id);
    }
    self->vt_[id].fn();
    std::unique_lock<std::mutex> lk2(self->mu_);
    VThread& me = self->vt_[id];
    me.state = TState::finished;
    for (int j : me.joiners) self->wake(j);
    me.joiners.clear();
    if (self->mode_ == Mode::explore && self->cur_ == id) {
      auto r = self->runnable();
      if (!r.empty()) {
        // Deterministic handoff (lowest id): thread exit is not a DFS
        // branch — the choice points before it already cover the orderings.
        self->cur_ = r.front();
        self->vt_[self->cur_].state = TState::running;
      } else {
        self->cur_ = -1;
      }
    }
    self->cv_.notify_all();
  });
  return id;
}

void Session::join_thread(int id) {
  if (id < 0 || id >= nthreads_) return;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (tl_session == this && tl_tid >= 0 && mode_ == Mode::explore &&
        vt_[id].state != TState::finished) {
      vt_[id].joiners.push_back(cur_);
      block_cur(TState::blocked_join, lk);
    }
    if (mode_ == Mode::abandon) {
      if (vt_[id].th.joinable()) vt_[id].th.detach();
      return;
    }
    // Join synchronizes: everything the joined thread did happens-before
    // the joiner's subsequent accesses.
    if (tl_session == this && tl_tid >= 0 && mode_ == Mode::explore) {
      clock_join(vt_[tl_tid].clk, vt_[id].clk);
      vt_[tl_tid].clk[tl_tid]++;
    }
  }
  if (vt_[id].th.joinable()) vt_[id].th.join();
}

// ---------------------------------------------------------------------------
// Failure + dump

void Session::fail(const std::string& why, bool fatal) {
  if (!res_.failed) {
    res_.failed = true;
    res_.failure = why;
    res_.replay = replaying_ ? opt_.replay : trail_string();
    dump(why);
  }
  if (fatal)
    mode_ = Mode::abandon;
  else if (mode_ == Mode::explore)
    mode_ = Mode::freerun;
  if (mode_ == Mode::freerun) {
    // Release every blocked vthread; they finish on the real primitives.
    for (int i = 0; i < nthreads_; ++i)
      if (vt_[i].state != TState::finished) vt_[i].state = TState::ready;
    cur_ = -1;
  }
  cv_.notify_all();
}

void Session::dump(const std::string& why) {
  // Traces land under the build tree by default (MPX_MC_DUMP_DIR_DEFAULT,
  // set by src/mc/CMakeLists.txt) so failing runs never litter the source
  // checkout; MPX_MC_DUMP_DIR overrides, and "." restores the old
  // write-to-CWD behavior.
  const char* dir = std::getenv("MPX_MC_DUMP_DIR");  // NOLINT(concurrency-mt-unsafe)
#ifdef MPX_MC_DUMP_DIR_DEFAULT
  if (dir == nullptr || *dir == '\0') dir = MPX_MC_DUMP_DIR_DEFAULT;
#endif
  std::string prefix;
  if (dir != nullptr && *dir != '\0' && std::string_view(dir) != ".") {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!ec) prefix = std::string(dir) + "/";
  }
  res_.dump_path = prefix + "mc_replay_" + opt_.name + ".txt";
  std::FILE* f = std::fopen(res_.dump_path.c_str(), "w");
  if (!f) {
    res_.dump_path.clear();
    return;
  }
  std::fprintf(f, "mpx::mc failing schedule\nscenario: %s\nfailure: %s\n",
               opt_.name, why.c_str());
  std::fprintf(f, "schedules-before-failure: %ld\n", res_.schedules);
  std::fprintf(f, "replay: %s\n", res_.replay.c_str());
  std::fprintf(f, "rerun: MPX_MC_REPLAY='%s' <test binary>\n\n",
               res_.replay.c_str());
  const std::size_t n = std::min(opn_, kOpLog);
  std::fprintf(f, "last %zu op(s), oldest first:\n", n);
  for (std::size_t k = 0; k < n; ++k) {
    const OpRec& o = oplog_[(opn_ - n + k) % kOpLog];
    std::fprintf(f, "  T%d %-22s %p = %llu\n", o.tid, o.what, o.addr,
                 static_cast<unsigned long long>(o.val));
  }
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Exploration driver

void Session::finish_schedule() {
  locs_.clear();
  mtx_.clear();
  plain_.clear();
  for (int i = 0; i < nthreads_; ++i) vt_[i] = VThread{};  // all joined
  nthreads_ = 0;
  cur_ = -1;
  depth_ = 0;
  steps_ = 0;
  opn_ = 0;
}

Result Session::run() {
  res_.name = opt_.name;
  parse_replay();

  for (;;) {
    const int root = spawn(body_);
    if (root < 0) break;  // spawn failure already recorded
    {
      std::unique_lock<std::mutex> lk(mu_);
      hand_token(root);
      cv_.wait(lk, [&] {
        return vt_[root].state == TState::finished || mode_ == Mode::abandon;
      });
      if (mode_ == Mode::abandon) {
        for (int i = 0; i < nthreads_; ++i)
          if (vt_[i].th.joinable()) vt_[i].th.detach();
        ++res_.schedules;
        return res_;  // session is leaked by the caller
      }
      // Root finished. Any vthread the body failed to join is a scenario
      // bug that would dangle once we reset state below.
      bool unjoined = false;
      for (int i = 0; i < nthreads_; ++i)
        if (vt_[i].state != TState::finished) unjoined = true;
      if (unjoined && mode_ == Mode::explore) {
        fail("scenario body returned with unjoined mc::thread(s)", true);
        for (int i = 0; i < nthreads_; ++i)
          if (vt_[i].th.joinable()) vt_[i].th.detach();
        ++res_.schedules;
        return res_;
      }
    }
    for (int i = 0; i < nthreads_; ++i)
      if (vt_[i].th.joinable()) vt_[i].th.join();
    ++res_.schedules;

    std::unique_lock<std::mutex> lk(mu_);
    const bool failed = res_.failed;
    // MPX_MC_LOG_OPS=1: stream every schedule's op log to stderr — the
    // debugging view for exploration-nondeterminism reports (diff two
    // schedules' op streams to find the op that diverged).
    static const bool log_ops = base::cvar_int("MPX_MC_LOG_OPS", 0) != 0;
    if (log_ops) {
      const std::size_t n = std::min(opn_, kOpLog);
      std::fprintf(stderr, "[mc] %s schedule %ld (%s): %zu op(s)\n", opt_.name,
                   res_.schedules, trail_string().c_str(), n);
      for (std::size_t k = 0; k < n; ++k) {
        const OpRec& o = oplog_[(opn_ - n + k) % kOpLog];
        std::fprintf(stderr, "  T%d %-22s %p = %llu\n", o.tid, o.what, o.addr,
                     static_cast<unsigned long long>(o.val));
      }
    }
    finish_schedule();
    if (failed || replaying_) break;
    if (res_.schedules >= opt_.max_schedules) {
      res_.truncated = true;
      break;
    }
    if (!advance_trail()) {
      res_.exhausted = true;
      break;
    }
    mode_ = Mode::explore;
  }
  return res_;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

Options::Options()
    : max_schedules(base::cvar_int("MPX_MC_MAX_SCHEDULES", 20000)),
      preemption_bound(
          static_cast<int>(base::cvar_int("MPX_MC_PREEMPTION_BOUND", 2))),
      max_steps(base::cvar_int("MPX_MC_MAX_STEPS", 100000)) {}

std::string Result::summary() const {
  std::ostringstream os;
  os << "[mc] " << name << ": " << schedules << " schedule(s), " << points
     << " point(s), "
     << (failed ? "FAILED"
         : exhausted ? "exhausted"
         : truncated ? "budget-truncated"
                     : "stopped");
  if (bound_limited) os << " (preemption-bounded)";
  if (failed) os << " — " << failure << "; replay=" << replay;
  return os.str();
}

Result explore(const Options& opt, const std::function<void()>& body) {
  if (opt.replay.empty()) {
    if (const char* env = std::getenv("MPX_MC_REPLAY"); env && *env) {
      Options o = opt;
      o.replay = env;
      return explore(o, body);
    }
  }
  if (tl_session != nullptr) {
    Result r;
    r.name = opt.name;
    r.failed = true;
    r.failure = "nested explore() inside a virtual thread";
    return r;
  }
  auto* s = new Session(opt, body);
  Result r = s->run();
  // Abandon mode leaves parked threads referencing the session forever:
  // leak it by design. Clean and freerun sessions joined everything.
  if (!s->abandoned()) delete s;
  return r;
}

thread::thread(std::function<void()> fn) {
  Session* s = tl_session;
  if (!s) {
    fn();  // outside a session: degrade to synchronous execution
    joined_ = true;
    return;
  }
  id_ = s->spawn(std::move(fn));
}

void thread::join() {
  if (joined_) return;
  joined_ = true;
  if (id_ < 0) return;
  if (Session* s = tl_session) s->join_thread(id_);
}

void yield() {
  if (tl_session) tl_session->on_yield();
}

void check(bool ok, const char* what) {
  if (ok) return;
  if (tl_session)
    tl_session->on_check_fail(what);
  else
    std::fprintf(stderr, "mc::check failed outside session: %s\n", what);
}

void plain_read(const void* addr, const char* what) {
  if (tl_session) tl_session->on_plain(addr, what, false);
}
void plain_write(const void* addr, const char* what) {
  if (tl_session) tl_session->on_plain(addr, what, true);
}

namespace detail {

bool modeled() { return tl_session != nullptr && tl_tid >= 0; }

bool mc_load(const void* loc, std::uint64_t seed, int mo, const char* what,
             std::uint64_t* out) {
  return tl_session && tl_session->on_load(loc, seed, mo, what, out);
}
bool mc_store(const void* loc, std::uint64_t seed, std::uint64_t val, int mo,
              const char* what) {
  return tl_session && tl_session->on_store(loc, seed, val, mo, what);
}
bool mc_rmw_exchange(const void* loc, std::uint64_t seed, std::uint64_t val,
                     int mo, const char* what, std::uint64_t* old_out) {
  return tl_session && tl_session->on_rmw(loc, seed, val, /*add=*/false, mo,
                                          what, old_out);
}
bool mc_rmw_add(const void* loc, std::uint64_t seed, std::uint64_t delta,
                int mo, const char* what, std::uint64_t* old_out) {
  return tl_session && tl_session->on_rmw(loc, seed, delta, /*add=*/true, mo,
                                          what, old_out);
}
bool mc_cas(const void* loc, std::uint64_t seed, std::uint64_t expected,
            std::uint64_t desired, int mo, const char* what,
            std::uint64_t* observed, bool* success) {
  return tl_session && tl_session->on_cas(loc, seed, expected, desired, mo,
                                          what, observed, success);
}
void mc_forget_atomic(const void* loc) {
  if (tl_session) tl_session->on_forget(loc);
}
bool mc_wait_change(const void* loc) {
  return tl_session && tl_session->on_wait_change(loc);
}
void mtx_lock(const void* m, bool recursive, const char* what) {
  if (tl_session) tl_session->on_mtx_lock(m, recursive, what);
}
bool mtx_try_lock(const void* m, bool recursive, const char* what,
                  bool* acquired) {
  return tl_session &&
         tl_session->on_mtx_try_lock(m, recursive, what, acquired);
}
void mtx_unlock(const void* m) {
  if (tl_session) tl_session->on_mtx_unlock(m);
}
void mtx_destroy(const void* m) {
  if (tl_session) tl_session->on_mtx_destroy(m);
}

}  // namespace detail
}  // namespace mpx::mc

#endif  // MPX_MODEL_CHECK
