#include "mpx/ext/grequest_poll.hpp"

#include "mpx/core/async.hpp"

namespace mpx::ext {
namespace {

struct PollState {
  GrequestPollFn poll;
  GrequestFreeFn free_state;
  void* extra_state;
  Request greq;
};

AsyncResult poll_trampoline(AsyncThing& thing) {
  auto* s = static_cast<PollState*>(thing.state());
  if (!s->poll(s->extra_state)) return AsyncResult::pending;
  if (s->free_state != nullptr) s->free_state(s->extra_state);
  Request handle = std::move(s->greq);
  delete s;
  World::grequest_complete(handle);
  return AsyncResult::done;
}

}  // namespace

Request grequest_start_with_poll(World& world, const Stream& stream,
                                 GrequestPollFn poll,
                                 GrequestFreeFn free_state,
                                 void* extra_state) {
  expects(poll != nullptr, "grequest_start_with_poll: null poll callback");
  auto* s = new PollState{poll, free_state, extra_state, Request()};
  s->greq = world.grequest_start(stream, core_detail::GrequestFns{});
  Request out = s->greq;
  async_start(&poll_trampoline, s, stream);
  return out;
}

}  // namespace mpx::ext
