#include "mpx/ext/continue.hpp"

#include <atomic>

#include "core/internal.hpp"

namespace mpx::ext {
namespace {

using core_detail::RequestImpl;

struct ContState {
  std::atomic<int> outstanding{0};
  Request greq;  // the user-visible continuation request
};

struct Attachment {
  ContinueCb cb;
  void* cb_data;
  ContState* cont;
};

void maybe_finish(ContState* cont) {
  // Last continuation fired: complete the continuation request and free the
  // shared state (the user still holds the Request handle).
  if (cont->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Request greq = cont->greq;
    greq.impl()->greq.extra_state = nullptr;  // attaches now fail cleanly
    delete cont;
    World::grequest_complete(greq);
  }
}

void on_complete_trampoline(RequestImpl* r, void* arg) {
  auto* a = static_cast<Attachment*>(arg);
  a->cb(r->status, a->cb_data);
  maybe_finish(a->cont);
  delete a;
}

}  // namespace

Request continue_init(World& world, const Stream& stream) {
  auto* cont = new ContState();
  cont->greq = world.grequest_start(stream, core_detail::GrequestFns{});
  cont->outstanding.store(1, std::memory_order_relaxed);  // armed sentinel
  Request out = cont->greq;
  // Stash the state pointer in the grequest's extra_state for attach().
  out.impl()->greq.extra_state = cont;
  return out;
}

void continue_attach(Request& op_request, ContinueCb cb, void* cb_data,
                     Request& cont_req) {
  expects(op_request.valid(), "continue_attach: invalid operation request");
  expects(cont_req.valid() &&
              cont_req.impl()->kind == core_detail::ReqKind::grequest,
          "continue_attach: cont_req is not a continuation request");
  auto* cont = static_cast<ContState*>(cont_req.impl()->greq.extra_state);
  expects(cont != nullptr,
          "continue_attach: continuation request already completed");

  RequestImpl* r = op_request.impl();
  cont->outstanding.fetch_add(1, std::memory_order_relaxed);
  auto* a = new Attachment{cb, cb_data, cont};

  bool fire_now = false;
  {
    // The completion path runs under the op's VCI lock; serialize with it.
    base::LockGuard<base::InstrumentedMutex> g(r->vci->mu);
    if (r->complete.load(std::memory_order_acquire)) {
      fire_now = true;
    } else {
      expects(r->on_complete == nullptr,
              "continue_attach: request already has a continuation");
      r->on_complete = &on_complete_trampoline;
      r->on_complete_arg = a;
    }
  }
  if (fire_now) {
    a->cb(r->status, a->cb_data);
    maybe_finish(a->cont);
    delete a;
  }
}

void continue_ready(Request& cont_req) {
  expects(cont_req.valid(), "continue_ready: invalid request");
  auto* cont = static_cast<ContState*>(cont_req.impl()->greq.extra_state);
  expects(cont != nullptr, "continue_ready: already completed or not armed");
  maybe_finish(cont);  // drop the arming sentinel from continue_init
}

void continue_attach_all(std::span<Request> op_requests, ContinueCb cb,
                         void* cb_data, Request& cont_req) {
  for (Request& r : op_requests) {
    continue_attach(r, cb, cb_data, cont_req);
  }
  continue_ready(cont_req);
}

}  // namespace mpx::ext
