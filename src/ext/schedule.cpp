#include "mpx/ext/schedule.hpp"

#include "mpx/core/async.hpp"
#include "mpx/core/world.hpp"

namespace mpx::ext {

Schedule::Schedule(World& world, const Stream& stream)
    : world_(&world), stream_(stream) {
  expects(stream.valid(), "Schedule: invalid stream");
}

void Schedule::add_operation(Request request) {
  expects(request.valid(), "Schedule::add_operation: invalid request");
  cur().reqs.push_back(std::move(request));
}

void Schedule::add_mpi_operation(dtype::ReduceOp op, const void* invec,
                                 void* inoutvec, std::size_t len,
                                 dtype::Datatype dt) {
  cur().local_ops.push_back(LocalOp{op, invec, inoutvec, len, std::move(dt)});
}

void Schedule::create_round() { rounds_.emplace_back(); }

void Schedule::mark_completion_point() {
  cur();  // materialize the round
  completion_round_ = rounds_.size() - 1;
  has_completion_point_ = true;
}

bool Schedule::poll() {
  while (cur_round_ < rounds_.size()) {
    Round& r = rounds_[cur_round_];
    for (const Request& rq : r.reqs) {
      if (!rq.is_complete()) return false;
    }
    for (const LocalOp& op : r.local_ops) {
      dtype::reduce_apply(op.op, op.in, op.inout, op.len, op.dt);
    }
    const bool is_completion_round =
        has_completion_point_ ? cur_round_ == completion_round_
                              : cur_round_ + 1 == rounds_.size();
    ++cur_round_;
    if (is_completion_round && !handle_completed_) {
      handle_completed_ = true;
      World::grequest_complete(handle_);
    }
  }
  return true;
}

AsyncResult Schedule::poll_trampoline(AsyncThing& thing) {
  auto* s = static_cast<Schedule*>(thing.state());
  if (!s->poll()) return AsyncResult::pending;
  if (!s->handle_completed_) {
    World::grequest_complete(s->handle_);
  }
  delete s;
  return AsyncResult::done;
}

Request Schedule::commit(std::unique_ptr<Schedule> sched) {
  expects(sched != nullptr, "Schedule::commit: null schedule");
  Schedule* s = sched.release();
  if (s->rounds_.empty()) s->rounds_.emplace_back();
  s->handle_ = s->world_->grequest_start(s->stream_,
                                         core_detail::GrequestFns{});
  Request out = s->handle_;
  coll_hook_start(&Schedule::poll_trampoline, s, s->stream_);
  return out;
}

}  // namespace mpx::ext
