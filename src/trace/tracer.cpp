#include "mpx/trace/tracer.hpp"

#include <ostream>

namespace mpx::trace {

std::string to_string(Event e) {
  switch (e) {
    case Event::post_send: return "post_send";
    case Event::post_recv: return "post_recv";
    case Event::match: return "match";
    case Event::unexpected: return "unexpected";
    case Event::rts: return "rts";
    case Event::cts: return "cts";
    case Event::data: return "data";
    case Event::ack: return "ack";
    case Event::complete: return "complete";
    case Event::cancel: return "cancel";
    case Event::progress: return "progress";
  }
  return "?";
}

std::vector<Record> Tracer::snapshot() const {
  base::LockGuard<base::Spinlock> g(mu_);
  std::vector<Record> out;
  if (cap_ == 0 || next_ == 0) return out;
  const std::uint64_t n = next_ < cap_ ? next_ : cap_;
  out.reserve(static_cast<std::size_t>(n));
  const std::uint64_t first = next_ - n;
  for (std::uint64_t i = first; i < next_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i % cap_)]);
  }
  return out;
}

void Tracer::dump(std::ostream& os) const {
  for (const Record& r : snapshot()) {
    os << r.t * 1e6 << "us rank" << r.rank << "/vci" << r.vci << " "
       << to_string(r.ev) << " peer=" << r.peer << " tag=" << r.tag
       << " bytes=" << r.bytes << " detail=" << r.detail << "\n";
  }
}

}  // namespace mpx::trace
