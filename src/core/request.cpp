// Request wait/test/cancel and the multi-request wait/test families. All
// blocking forms follow the paper's scheme: check is_complete() (one atomic
// read) and otherwise drive the collated progress of the request's VCI.
#include "internal.hpp"
#include "mpx/core/wait_policy.hpp"
#include "mpx/core/waittest.hpp"

namespace mpx {

using core_detail::progress_test;
using core_detail::RequestImpl;
using core_detail::WaitBackoff;
using core_detail::WaitPolicy;

namespace {

/// Drive one progress pass on the VCI owning `r`; returns nonzero when the
/// pass moved anything (feeds the wait backoff ladder).
int progress_for(RequestImpl* r) {
  if (r->vci != nullptr) {
    return progress_test(*r->vci, r->vci->default_mask);
  }
  return 0;
}

WaitPolicy wait_policy_for(const RequestImpl* r) {
  if (r->world != nullptr) {
    const WorldConfig& cfg = r->world->config();
    return WaitPolicy{cfg.wait_spin, cfg.wait_yield, cfg.wait_sleep_max_us};
  }
  return WaitPolicy{};
}

/// Rung-occupancy counters of the request's VCI (nullable: grequests with
/// no VCI just skip the accounting). Every blocking wait charges its empty
/// pauses here so the adaptive progress engine can see stuck waiters.
core_detail::WaitLadderCounters* wait_rungs_for(const RequestImpl* r) {
  return r->vci != nullptr ? &r->vci->wait_rungs : nullptr;
}

}  // namespace

Status Request::wait() {
  expects(valid(), "Request::wait: invalid request");
  RequestImpl* r = impl_.get();
  WaitBackoff backoff{wait_policy_for(r), wait_rungs_for(r)};
  while (!r->complete.load(std::memory_order_acquire)) {
    if (progress_for(r) != 0) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  return r->status;
}

std::optional<Status> Request::test() {
  expects(valid(), "Request::test: invalid request");
  RequestImpl* r = impl_.get();
  if (!r->complete.load(std::memory_order_acquire)) {
    progress_for(r);
  }
  if (r->complete.load(std::memory_order_acquire)) return r->status;
  return std::nullopt;
}

void Request::cancel() {
  expects(valid(), "Request::cancel: invalid request");
  RequestImpl* r = impl_.get();
  if (r->complete.load(std::memory_order_acquire)) return;
  if (r->kind == core_detail::ReqKind::grequest) {
    if (r->greq.cancel_fn != nullptr) {
      r->greq.cancel_fn(r->greq.extra_state, false);
    }
    return;
  }
  if (r->kind != core_detail::ReqKind::recv || r->vci == nullptr) return;
  base::LockGuard<base::InstrumentedMutex> g(r->vci->mu);
  if (r->match_hook.linked()) {
    r->vci->posted.erase(r);  // PostedQueue::erase — unlinks bin or wildcard

    r->cancelled = true;
    r->status.cancelled = true;
    core_detail::complete_request(r, Err::cancelled);
    // Drop the posted-list reference.
    base::Ref<RequestImpl> drop(r);
  }
}

Status wait_on_stream(Request& req, const Stream& stream) {
  expects(req.valid(), "wait_on_stream: invalid request");
  WaitBackoff backoff{wait_policy_for(req.impl()), wait_rungs_for(req.impl())};
  while (!req.is_complete()) {
    if (stream_progress(stream) != 0) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  return req.status();
}

void wait_all(std::span<Request> reqs) {
  WaitBackoff backoff{
      reqs.empty() ? WaitPolicy{} : wait_policy_for(reqs.front().impl()),
      reqs.empty() ? nullptr : wait_rungs_for(reqs.front().impl())};
  for (;;) {
    bool all = true;
    int made = 0;
    for (Request& r : reqs) {
      if (!r.is_complete()) {
        all = false;
        made |= progress_for(r.impl());
      }
    }
    if (all) return;
    if (made != 0) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

void wait_all(std::span<Request> reqs, std::span<Status> statuses) {
  expects(statuses.size() == reqs.size(),
          "wait_all: statuses length must match requests");
  wait_all(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    statuses[i] = reqs[i].valid() ? reqs[i].status() : Status{};
  }
}

std::optional<Status> get_status(const Request& req) {
  expects(req.valid(), "get_status: invalid request");
  RequestImpl* r = req.impl();
  if (!r->complete.load(std::memory_order_acquire)) {
    progress_for(r);
  }
  if (r->complete.load(std::memory_order_acquire)) return r->status;
  return std::nullopt;
}

bool test_all(std::span<Request> reqs) {
  bool all = true;
  for (Request& r : reqs) {
    if (!r.is_complete()) {
      progress_for(r.impl());
      all = all && r.is_complete();
    }
  }
  return all;
}

std::size_t wait_any(std::span<Request> reqs) {
  expects(!reqs.empty(), "wait_any: empty request set");
  WaitBackoff backoff{wait_policy_for(reqs.front().impl()),
                      wait_rungs_for(reqs.front().impl())};
  for (;;) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].valid() && reqs[i].is_complete()) return i;
    }
    int made = 0;
    for (Request& r : reqs) {
      if (r.valid() && !r.is_complete()) {
        made = progress_for(r.impl());
        break;  // one pass at a time; re-scan for completions
      }
    }
    if (made != 0) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

std::optional<std::size_t> test_any(std::span<Request> reqs) {
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i].valid() && reqs[i].is_complete()) return i;
  }
  for (Request& r : reqs) {
    if (r.valid() && !r.is_complete()) {
      progress_for(r.impl());
      break;
    }
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i].valid() && reqs[i].is_complete()) return i;
  }
  return std::nullopt;
}

std::vector<std::size_t> test_some(std::span<Request> reqs) {
  for (Request& r : reqs) {
    if (r.valid() && !r.is_complete()) {
      progress_for(r.impl());
      break;
    }
  }
  std::vector<std::size_t> done;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i].valid() && reqs[i].is_complete()) done.push_back(i);
  }
  return done;
}

}  // namespace mpx
