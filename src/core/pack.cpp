#include "mpx/core/pack.hpp"

#include "internal.hpp"

namespace mpx {
namespace {

using core_detail::RequestImpl;

Request start_pack_op(dtype::PackDir dir, void* typed, std::size_t count,
                      dtype::Datatype dt, base::ByteSpan packed,
                      const Stream& stream, std::size_t chunk) {
  expects(stream.valid(), "ipack/iunpack: invalid stream");
  expects(dt.valid(), "ipack/iunpack: invalid datatype");
  core_detail::Vci& v = stream.world().vci(stream.rank(), stream.vci());

  auto* r = new RequestImpl(core_detail::ReqKind::pack);
  r->world = &stream.world();
  r->vci = &v;
  r->self = stream.rank();
  v.active_ops.fetch_add(1, std::memory_order_relaxed);

  auto work = std::make_unique<dtype::PackWork>(dir, typed, count,
                                                std::move(dt), packed, chunk);
  r->total_bytes = work->total_bytes();
  r->ref_inc();  // the engine's completion cookie
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  v.pack_engine.submit(
      std::move(work),
      [](void* cookie) {
        base::Ref<RequestImpl> req(static_cast<RequestImpl*>(cookie));
        req->status.count_bytes = req->total_bytes;
        core_detail::complete_request(req.get(), Err::success);
      },
      r);
  return Request(base::Ref<RequestImpl>(r));
}

}  // namespace

Request ipack(const void* buf, std::size_t count, dtype::Datatype dt,
              base::ByteSpan packed, const Stream& stream,
              std::size_t chunk_bytes) {
  return start_pack_op(dtype::PackDir::pack, const_cast<void*>(buf), count,
                       std::move(dt), packed, stream, chunk_bytes);
}

Request iunpack(base::ConstByteSpan packed, void* buf, std::size_t count,
                dtype::Datatype dt, const Stream& stream,
                std::size_t chunk_bytes) {
  return start_pack_op(
      dtype::PackDir::unpack, buf, count, std::move(dt),
      base::ByteSpan(const_cast<std::byte*>(packed.data()), packed.size()),
      stream, chunk_bytes);
}

}  // namespace mpx
