// src/core/world_layers.hpp
//
// The two layers behind the World facade (docs/architecture.md, "Control
// plane vs datapath"):
//
//  - ControlPlane (control_plane.cpp): everything that MUTATES shared
//    world state — construction, comm/stream lifecycle, context-id
//    allocation, transport ownership, and topology publication. Topology
//    mutations serialize on `mu` (LockRank::control, rank 50 — BELOW the
//    VCI locks, because a swap drives progress, and therefore takes VCI
//    locks, while holding it). Stream lifecycle keeps serializing on each
//    rank's vci-table mutex instead: stream_create may be called from
//    inside a poll callback already holding a VCI lock, where acquiring
//    the control mutex would invert the rank order.
//
//  - Datapath (datapath.cpp): everything the per-message hot paths read —
//    VCI tables, the published TopologySnapshot, and the pair in-flight
//    counters. The datapath NEVER takes a control-plane lock: route
//    lookups go through one snapshot acquire-load per poll/send (TopoRef,
//    internal.hpp), VCI lookups through the PR 5 lock-free slot loads.
//
// The seam is Datapath::topo (topology.hpp): the control plane builds a
// successor snapshot, publishes it with one exchange, proves the grace
// period via per-VCI quiescence epochs (lock-pass fallback), and only then
// reclaims the predecessor.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "internal.hpp"
#include "mpx/base/clock.hpp"
#include "mpx/core/topology.hpp"

namespace mpx::core_detail {

/// Control-plane state: owned resources and lifecycle bookkeeping. Apart
/// from `next_epoch` (guarded by `mu`) and `next_context_id` (atomic),
/// every member is frozen by the end of World construction; the registry
/// is frozen at publish().
struct ControlPlane {
  /// Serializes topology publication and any future control-plane mutation
  /// (rank join/leave, transport hot-plug). See the header comment for why
  /// it ranks below the VCI locks.
  base::InstrumentedMutex mu{"control", base::LockRank::control};

  WorldConfig cfg;  // mpxlint: allow(tsa-ratchet) immutable after construction
  std::unique_ptr<trace::Tracer> tracer;  // mpxlint: allow(tsa-ratchet) immutable after construction
  std::unique_ptr<base::Clock> clock;  // mpxlint: allow(tsa-ratchet) immutable after construction
  base::VirtualClock* vclock = nullptr;  ///< aliases clock when virtual — mpxlint: allow(tsa-ratchet) immutable after construction

  /// Transport ownership (list order = routing order). Declared before the
  /// Datapath in World::State: VCI stage tables, sinks, and snapshots all
  /// reference transports, so the datapath must die first.
  std::vector<std::unique_ptr<transport::Transport>> transports;  // mpxlint: allow(tsa-ratchet) immutable after construction
  ProgressRegistry registry;  ///< frozen at publish(), before any VCI exists

  // Raw std::atomic on purpose: a monotone id allocator, not modeled
  // protocol state.
  std::atomic<std::int32_t> next_context_id{16};  // mpxlint: allow(mc-coverage) monotone allocator
  std::shared_ptr<CommImpl> world_comm;  // mpxlint: allow(tsa-ratchet) immutable after construction

  /// Next snapshot epoch (1 = the construction-time snapshot).
  std::uint64_t next_epoch MPX_GUARDED_BY(mu) = 1;
};

/// Datapath state: what the per-message hot paths read. The tables are
/// lock-free to READ; writers live in the control plane (topology) or
/// behind the per-rank vci-table mutex (stream lifecycle).
struct Datapath {
  /// The published TopologySnapshot (topology.hpp). All route/same_node/
  /// transport-order reads on the hot path resolve through one
  /// acquire-load of this handle per poll/send.
  TopologyHandle topo;
  /// In-flight message counters, one per (src, dst) pair
  /// (src * nranks + dst). Owned here — NOT by the snapshot — because they
  /// must survive publications; every snapshot points at this storage.
  std::vector<mc::atomic<std::int64_t>> pair_inflight;
  /// Per-rank VCI tables (lock-free lookup; see RankCtx).
  std::vector<std::unique_ptr<RankCtx>> ranks;
};

/// Construct one VCI (datapath.cpp). Runs before the VCI is published, so
/// guarded members are sized without taking the (not yet shared) lock.
std::unique_ptr<Vci> make_vci(World* w, int rank, int id, unsigned mask);

}  // namespace mpx::core_detail

namespace mpx {

/// The World facade's backing store: control plane first (so the datapath
/// — whose VCIs and snapshots reference control-owned transports and the
/// registry — is destroyed first).
struct World::State {
  core_detail::ControlPlane ctl;
  core_detail::Datapath dp;
};

}  // namespace mpx
