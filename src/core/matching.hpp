// src/core/matching.hpp
//
// Hashed message-matching engine. Each VCI owns one PostedQueue (pending
// receives) and one UnexpQueue (early arrivals); both replace the seed's
// single linear lists with an array of (context_id, src) hash bins so a
// matching scan touches only the one channel it cares about — the MPICH ch4
// "posted/unexpected hash" design. With B bins and D pending operations
// spread over C channels, a match costs O(D/C + collisions) instead of O(D).
//
// CORRECTNESS. MPI matching is FIFO per (communicator, source) channel, and
// a receive must match the OLDEST eligible candidate even when wildcard
// (any_source) receives interleave with specific ones. The structures keep
// that exact order:
//
//   PostedQueue: specific-source receives live in their channel's bin;
//   any_source receives live in a separate wildcard list. Every posted
//   receive is stamped with a per-VCI monotone sequence number. An arrival
//   scans its bin for the first eligible specific receive, scans the
//   wildcard list for the first eligible wildcard, and takes whichever was
//   posted earlier (lower seq) — exactly what one walk of the seed's single
//   list would have produced. any_tag needs no special path: bins are keyed
//   by (context, source) only, so a bin/wildcard scan sees every tag.
//
//   UnexpQueue: every parked message is on TWO lists — its channel bin
//   (via bin_hook) and one global arrival-order FIFO (via hook). A
//   specific-source lookup scans only the bin; an any_source lookup scans
//   the FIFO, which preserves cross-channel arrival order. Pop unlinks from
//   both; a requeue (unconsumed improbe) pushes at the front of both, so a
//   returned message cannot be overtaken by a younger one from its channel.
//
// All methods must be called under the owning VCI's lock; the Vci members
// carry the MPX_GUARDED_BY(mu) annotations.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "mpx/base/intrusive.hpp"
#include "mpx/core/detail/request_impl.hpp"
#include "mpx/core/request.hpp"
#include "mpx/transport/msg.hpp"

namespace mpx::core_detail {

/// An unexpected message (eager payload or rendezvous RTS) parked until a
/// matching receive is posted. Lives on the owning VCI's UnexpQueue; storage
/// is recycled through the VCI's unexp_pool.
struct UnexpMsg {
  base::ListHook hook;      ///< global arrival-order FIFO
  base::ListHook bin_hook;  ///< (context, src) channel bin
  transport::Msg msg;
};

inline bool tag_ok(std::int32_t want, std::int32_t got) {
  return want == any_tag || want == got;
}

/// Bin index for a (context, source) channel: splitmix64 finalizer over the
/// packed pair. nbins must be a power of two.
inline std::size_t match_bin_of(std::int32_t ctx, std::int32_t src,
                                std::size_t nbins) {
  std::uint64_t h =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ctx)) << 32) |
      static_cast<std::uint32_t>(src);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<std::size_t>(h) & (nbins - 1);
}

/// Pending receives, binned by (context, source) with a wildcard overflow
/// list. Holds raw RequestImpl pointers; each linked receive carries one
/// reference (taken by the caller before push, adopted by whoever pops).
class PostedQueue {
 public:
  using List = base::IntrusiveList<RequestImpl, &RequestImpl::match_hook>;

  /// `nbins` is rounded up to a power of two. Must run before first use
  /// (intrusive lists are pinned in place, hence the fixed array).
  void init(std::size_t nbins) {
    nbins_ = std::bit_ceil(nbins < 1 ? std::size_t{1} : nbins);
    bins_ = std::make_unique<List[]>(nbins_);
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// File a posted receive; stamps match_seq/match_bin.
  /// Callers serialize via the owning VCI's lock; the model checker proves
  /// it — the PLAIN annotations on next_seq_ here and in pop_match turn any
  /// unlocked caller into a detected race across all explored schedules.
  void push(RequestImpl* r) {
    MPX_MC_PLAIN_WRITE(&next_seq_, "PostedQueue::next_seq");
    r->match_seq = next_seq_++;
    if (r->match_src == any_source) {
      r->match_bin = -1;
      wildcard_.push_back(r);
    } else {
      const std::size_t b =
          match_bin_of(r->context_id, r->match_src, nbins_);
      r->match_bin = static_cast<std::int32_t>(b);
      bins_[b].push_back(r);
    }
    ++count_;
  }

  /// Pop the oldest receive eligible for an arrival from channel
  /// (ctx, src) with tag `tag`, or nullptr. The returned pointer carries
  /// the reference taken at push time.
  RequestImpl* pop_match(std::int32_t ctx, std::int32_t src,
                         std::int32_t tag) {
    MPX_MC_PLAIN_WRITE(&next_seq_, "PostedQueue::next_seq");
    if (count_ == 0) return nullptr;
    List& bin = bins_[match_bin_of(ctx, src, nbins_)];
    RequestImpl* spec = bin.for_each_until([&](RequestImpl* r) {
      return r->context_id == ctx && r->match_src == src &&
             tag_ok(r->match_tag, tag);
    });
    RequestImpl* wild = wildcard_.for_each_until([&](RequestImpl* r) {
      return r->context_id == ctx && tag_ok(r->match_tag, tag);
    });
    // Each list is in post (seq) order, so each candidate is its list's
    // oldest eligible entry; the overall oldest is the lower seq.
    RequestImpl* hit = spec;
    if (wild != nullptr && (hit == nullptr || wild->match_seq < hit->match_seq))
      hit = wild;
    if (hit != nullptr) erase(hit);
    return hit;
  }

  /// Unlink a receive (cancel path / pop_match internals).
  void erase(RequestImpl* r) {
    if (r->match_bin < 0) {
      wildcard_.erase(r);
    } else {
      bins_[static_cast<std::size_t>(r->match_bin)].erase(r);
    }
    --count_;
  }

  /// Unlink any one pending receive (teardown drain), or nullptr.
  RequestImpl* pop_any() {
    if (count_ == 0) return nullptr;
    if (RequestImpl* r = wildcard_.pop_front(); r != nullptr) {
      --count_;
      return r;
    }
    for (std::size_t i = 0; i < nbins_; ++i) {
      if (RequestImpl* r = bins_[i].pop_front(); r != nullptr) {
        --count_;
        return r;
      }
    }
    return nullptr;
  }

 private:
  std::unique_ptr<List[]> bins_;
  std::size_t nbins_ = 1;
  List wildcard_;  ///< any_source receives, in post order
  std::uint64_t next_seq_ = 0;
  std::size_t count_ = 0;
};

/// Early arrivals, binned by (context, src) plus one global arrival-order
/// FIFO for wildcard scans. Does not own the messages; the VCI's pool does.
class UnexpQueue {
 public:
  using FifoList = base::IntrusiveList<UnexpMsg, &UnexpMsg::hook>;
  using BinList = base::IntrusiveList<UnexpMsg, &UnexpMsg::bin_hook>;

  /// `nbins` is rounded up to a power of two. Must run before first use.
  void init(std::size_t nbins) {
    nbins_ = std::bit_ceil(nbins < 1 ? std::size_t{1} : nbins);
    bins_ = std::make_unique<BinList[]>(nbins_);
  }

  bool empty() const { return fifo_.empty(); }
  std::size_t size() const { return fifo_.size(); }

  void push_back(UnexpMsg* u) {
    fifo_.push_back(u);
    bin_of(u).push_back(u);
  }

  /// Return an unconsumed matched-probe message. Front, not back: the
  /// message was matched first; returning it must not let a younger message
  /// from its channel overtake it.
  void push_front(UnexpMsg* u) {
    fifo_.push_front(u);
    bin_of(u).push_front(u);
  }

  /// Oldest parked message matching (ctx, src-or-any, tag-or-any), without
  /// unlinking (iprobe), or nullptr.
  UnexpMsg* find(std::int32_t ctx, std::int32_t src, std::int32_t tag) const {
    if (src == any_source) {
      // Wildcard: cross-channel order is arrival order — scan the FIFO.
      return fifo_.for_each_until([&](UnexpMsg* u) {
        return u->msg.h.context_id == ctx && tag_ok(tag, u->msg.h.tag);
      });
    }
    const BinList& bin = bins_[match_bin_of(ctx, src, nbins_)];
    return bin.for_each_until([&](UnexpMsg* u) {
      return u->msg.h.context_id == ctx && u->msg.h.src_rank == src &&
             tag_ok(tag, u->msg.h.tag);
    });
  }

  /// find() + unlink from both lists (irecv / improbe consume path).
  UnexpMsg* pop(std::int32_t ctx, std::int32_t src, std::int32_t tag) {
    UnexpMsg* u = find(ctx, src, tag);
    if (u != nullptr) unlink(u);
    return u;
  }

  /// Unlink the oldest parked message regardless of match (teardown drain).
  UnexpMsg* pop_front_any() {
    UnexpMsg* u = fifo_.front();
    if (u != nullptr) unlink(u);
    return u;
  }

 private:
  BinList& bin_of(UnexpMsg* u) {
    return bins_[match_bin_of(u->msg.h.context_id, u->msg.h.src_rank, nbins_)];
  }

  void unlink(UnexpMsg* u) {
    fifo_.erase(u);
    bin_of(u).erase(u);
  }

  FifoList fifo_;
  std::unique_ptr<BinList[]> bins_;
  std::size_t nbins_ = 1;
};

}  // namespace mpx::core_detail
