// Point-to-point protocol state machines: eager / rendezvous / pipeline,
// message matching, and the transport sink that feeds arrivals into them.
// This is where the paper's Fig. 1 message modes live, selected from the
// routed transport's capability bits and limits() — never from its
// concrete type:
//
//   cap_eager_local, size <= eager_max : buffered eager (Fig. 1a) — payload
//                                        copied out by send_eager, complete
//                                        at initiation (shm cell ring)
//   size <= lightweight_max            : buffered eager (Fig. 1a), owned
//                                        copy, fire-and-forget
//   cap_send_cq, size <= eager_max     : eager (Fig. 1b) — sender completes
//                                        at injection-done CQ event
//   cap_mapped_memory, larger (or sync): LMT rendezvous — RTS carries the
//                                        exporter pointer -> receiver
//                                        chunk-copies -> ACK (ONE wait)
//   otherwise larger (or sync)         : rendezvous (Fig. 1c) — RTS -> CTS
//                                        -> DATA (two wait blocks); above
//                                        pipeline_min the data is chunked
//                                        with a bounded in-flight window
//                                        (§2.1 pipeline)
//
// All handlers run under the polling VCI's lock, with the VCI's topology
// pin live (TopoRef at the progress/post entry points): routing decisions
// read *v.topo_cache, and every outbound message leaves through
// route_send / route_send_eager so a fenced pair parks instead of
// injecting (topology.hpp, "ROUTE FENCING").
#include <algorithm>
#include <cstring>

#include "internal.hpp"

namespace mpx::core_detail {
namespace {

using transport::Msg;
using transport::MsgHeader;
using transport::MsgKind;

RequestImpl* peek_cookie(std::uint64_t c) {
  return reinterpret_cast<RequestImpl*>(c);
}

/// Inject `m` on its pair's carrier, counting it in flight and synthesizing
/// the completion event transports that finish locally never raise
/// (transport.hpp send() contract: returning true means no event will ever
/// fire — without the synthesis, a cookie'd protocol started on a
/// cap_send_cq carrier could never finish on a carrier without a CQ after
/// a swap).
void inject(Vci& v, const TopologySnapshot& topo, Msg&& m,
            std::uint64_t cookie) MPX_REQUIRES(v.mu) {
  const int src = m.h.src_rank;
  const int dst = m.h.dst_rank;
  topo.inflight_add(src, dst, +1);
  if (topo.carrier(src, dst)->send(std::move(m), cookie) && cookie != 0) {
    v.synth_cq.push_back(cookie);
  }
}

/// Pop the oldest posted receive matching the header (MPI FIFO order, bin
/// scan + wildcard-list scan — matching.hpp). The returned pointer carries
/// the posted-list reference.
RequestImpl* pop_posted(Vci& v, const MsgHeader& h) MPX_REQUIRES(v.mu) {
  return v.posted.pop_match(h.context_id, h.src_rank, h.tag);
}

/// Park an arrival on the unexpected queue (storage from the VCI's pool).
void park_unexpected(Vci& v, Msg&& m) MPX_REQUIRES(v.mu) {
  UnexpMsg* u = v.unexp_pool.acquire();
  u->msg = std::move(m);
  v.unexpected.push_back(u);
}

void set_recv_envelope(RequestImpl* rreq, const MsgHeader& h) {
  rreq->status.source =
      rreq->comm != nullptr ? rreq->comm->to_comm(h.src_rank) : h.src_rank;
  rreq->status.tag = h.tag;
}

/// Deliver a fully-arrived eager payload into the receive buffer.
void deliver_eager(RequestImpl* rreq, const MsgHeader& h,
                   base::ConstByteSpan data) {
  const std::size_t cap = rreq->count * rreq->dt.size();
  Err err = Err::success;
  std::size_t n = data.size();
  if (n > cap) {
    n = cap;
    err = Err::truncate;
  }
  if (n > 0) {
    if (rreq->dt.is_contiguous()) {
      std::memcpy(rreq->buf, data.data(), n);
    } else {
      dtype::unpack_all(data.first(n), rreq->buf, rreq->count, rreq->dt);
    }
  }
  set_recv_envelope(rreq, h);
  rreq->status.count_bytes = n;
  complete_request(rreq, err);
}

/// Begin the rendezvous receive for a matched RTS.
/// Takes ownership of the caller's reference to rreq.
void start_rndv_recv(Vci& v, base::Ref<RequestImpl> rreq, const MsgHeader& h)
    MPX_REQUIRES(v.mu) {
  set_recv_envelope(rreq.get(), h);
  rreq->total_bytes = h.total_bytes;
  if (h.shm_src != nullptr) {
    // Mapped-memory LMT (the RTS carried the exporter's pointer): chunk-copy
    // directly from the exporter's buffer during this VCI's progress, then
    // ack the sender.
    LmtWork work;
    work.src = static_cast<const std::byte*>(h.shm_src);
    work.total = h.total_bytes;
    work.sender_cookie = h.sender_cookie;
    work.sender_rank = h.src_rank;
    work.sender_vci = h.src_vci;
    if (!rreq->dt.is_contiguous()) {
      work.seg = std::make_unique<dtype::Segment>(rreq->buf, rreq->count,
                                                  rreq->dt);
    }
    work.rreq = std::move(rreq);
    v.lmt.push_back(std::move(work));
    return;
  }
  // No shared mapping: CTS/DATA rendezvous — clear-to-send back to the
  // sender's VCI (Fig. 1c).
  RequestImpl* rp = rreq.get();
  if (!rp->dt.is_contiguous()) {
    rp->seg = std::make_unique<dtype::Segment>(rp->buf, rp->count, rp->dt);
  }
  Msg cts;
  cts.h.kind = MsgKind::cts;
  cts.h.src_rank = v.rank;
  cts.h.dst_rank = h.src_rank;
  cts.h.src_vci = v.id;
  cts.h.dst_vci = h.src_vci;
  cts.h.context_id = h.context_id;
  cts.h.tag = h.tag;
  cts.h.total_bytes = h.total_bytes;
  cts.h.sender_cookie = h.sender_cookie;
  // One reference rides the cookie until the final data chunk adopts it;
  // our own (rreq) drops at scope end.
  cts.h.recver_cookie = cookie_of(rp);
  route_send(v, std::move(cts), 0);
}

/// Pipeline/rendezvous chunk size for a message of `total` bytes, per the
/// carrying transport's limits.
std::uint64_t chunk_bytes(const transport::TransportLimits& lim,
                          std::uint64_t total) {
  return total > lim.pipeline_min
             ? static_cast<std::uint64_t>(lim.pipeline_chunk)
             : total;
}

/// Inject the next data chunk of a rendezvous send. Geometry comes from the
/// request's PINNED pipe_chunk/pipe_window (set once at CTS time), not the
/// current route: a mid-rendezvous topology swap must not change the chunk
/// size the completion handler reconstructs acked bytes with.
void inject_next_chunk(Vci& v, RequestImpl* sreq) MPX_REQUIRES(v.mu) {
  const std::uint64_t len = std::min<std::uint64_t>(
      sreq->pipe_chunk, sreq->total_bytes - sreq->next_offset);
  Msg data;
  data.h.kind = MsgKind::data;
  data.h.src_rank = sreq->self;
  data.h.dst_rank = sreq->peer;
  data.h.src_vci = v.id;
  data.h.dst_vci = sreq->peer_vci;
  data.h.total_bytes = sreq->total_bytes;
  data.h.chunk_offset = sreq->next_offset;
  data.h.recver_cookie = sreq->peer_cookie;
  data.payload = base::pooled_copy(base::ConstByteSpan(
      sreq->send_src + sreq->next_offset, static_cast<std::size_t>(len)));
  sreq->next_offset += len;
  ++sreq->chunks_inflight;
  route_send(v, std::move(data), cookie_of(sreq));
}

// ---- inbound handlers (under the VCI lock) ----

void handle_eager(Vci& v, Msg&& m) MPX_REQUIRES(v.mu) {
  if (RequestImpl* rreq = pop_posted(v, m.h); rreq != nullptr) {
    base::Ref<RequestImpl> own(rreq);  // adopt the posted-list reference
    trace_emit(v, trace::Event::match, m.h.src_rank, m.h.tag,
               m.h.total_bytes);
    deliver_eager(rreq, m.h, m.payload.span());
    return;
  }
  trace_emit(v, trace::Event::unexpected, m.h.src_rank, m.h.tag,
             m.h.total_bytes);
  park_unexpected(v, std::move(m));
}

/// Zero-copy eager arrival: `payload` views transport-owned storage (a shm
/// ring slot) valid only for this call. A matched receive copies straight
/// slot -> user buffer (the single receive-side copy); an unmatched arrival
/// is the one case that must materialize owned storage (pooled block).
void handle_eager_inline(Vci& v, const MsgHeader& h, base::ConstByteSpan data)
    MPX_REQUIRES(v.mu) {
  if (RequestImpl* rreq = pop_posted(v, h); rreq != nullptr) {
    base::Ref<RequestImpl> own(rreq);  // adopt the posted-list reference
    trace_emit(v, trace::Event::match, h.src_rank, h.tag, h.total_bytes);
    deliver_eager(rreq, h, data);
    return;
  }
  trace_emit(v, trace::Event::unexpected, h.src_rank, h.tag, h.total_bytes);
  UnexpMsg* u = v.unexp_pool.acquire();
  u->msg.h = h;
  u->msg.payload = base::pooled_copy(data);
  v.unexpected.push_back(u);
}

void handle_rts(Vci& v, Msg&& m) MPX_REQUIRES(v.mu) {
  trace_emit(v, trace::Event::rts, m.h.src_rank, m.h.tag, m.h.total_bytes);
  if (RequestImpl* rreq = pop_posted(v, m.h); rreq != nullptr) {
    trace_emit(v, trace::Event::match, m.h.src_rank, m.h.tag,
               m.h.total_bytes);
    start_rndv_recv(v, base::Ref<RequestImpl>(rreq), m.h);
    return;
  }
  trace_emit(v, trace::Event::unexpected, m.h.src_rank, m.h.tag,
             m.h.total_bytes);
  park_unexpected(v, std::move(m));
}

void handle_cts(Vci& v, Msg&& m) MPX_REQUIRES(v.mu) {
  trace_emit(v, trace::Event::cts, m.h.src_rank, m.h.tag, m.h.total_bytes);
  // Adopt the RTS reference; the injection cookies below keep sreq alive.
  base::Ref<RequestImpl> rts_ref = from_cookie(m.h.sender_cookie);
  RequestImpl* sreq = rts_ref.get();
  ensures(sreq->proto == SendProto::rndv, "cts: unexpected protocol");
  sreq->peer_cookie = m.h.recver_cookie;
  // Pin the pipeline geometry NOW, from the currently-routed carrier (for a
  // fenced pair that is already the pending new one). Every later chunk and
  // completion event uses these frozen values.
  const transport::TransportLimits& lim =
      (*v.topo_cache).carrier(sreq->self, sreq->peer)->limits();
  sreq->pipe_chunk = chunk_bytes(lim, sreq->total_bytes);
  sreq->pipe_window =
      sreq->total_bytes > lim.pipeline_min ? lim.pipeline_inflight : 1;
  while (sreq->next_offset < sreq->total_bytes &&
         sreq->chunks_inflight < sreq->pipe_window) {
    inject_next_chunk(v, sreq);
  }
}

void handle_data(Vci& v, Msg&& m) {
  trace_emit(v, trace::Event::data, m.h.src_rank, m.h.tag,
             m.payload.size(), m.h.chunk_offset);
  RequestImpl* rreq = peek_cookie(m.h.recver_cookie);
  const std::size_t cap = rreq->count * rreq->dt.size();
  const base::ConstByteSpan data = m.payload.span();
  if (rreq->seg != nullptr) {
    // Chunks arrive in order (FIFO channels); clip happens inside unpack.
    rreq->seg->unpack(data);
  } else {
    const std::uint64_t off = m.h.chunk_offset;
    if (off < cap) {
      const std::size_t n =
          std::min<std::size_t>(data.size(), cap - static_cast<std::size_t>(off));
      std::memcpy(static_cast<std::byte*>(rreq->buf) + off, data.data(), n);
    }
  }
  rreq->bytes_moved += data.size();
  if (rreq->bytes_moved >= rreq->total_bytes) {
    base::Ref<RequestImpl> own = from_cookie(m.h.recver_cookie);
    rreq->status.count_bytes = std::min<std::uint64_t>(rreq->total_bytes, cap);
    rreq->seg.reset();
    complete_request(rreq,
                     rreq->total_bytes > cap ? Err::truncate : Err::success);
  }
}

void handle_ack(Vci& v, Msg&& m) {
  trace_emit(v, trace::Event::ack, m.h.src_rank, m.h.tag, 0);
  base::Ref<RequestImpl> sreq = from_cookie(m.h.sender_cookie);
  sreq->status.count_bytes = sreq->total_bytes;
  complete_request(sreq.get(), Err::success);
}

/// The transport sink: dispatches arrivals into the handlers above. Both
/// entry points run under the polling VCI's lock (transports are only
/// polled from progress_test), expressed as MPX_REQUIRES below — placed
/// after `override`, the one position both clang (which sees the attribute)
/// and gcc (which sees nothing) accept.
class VciSink final : public transport::TransportSink {
 public:
  explicit VciSink(Vci& v) : v_(v) {}

  void on_msg(Msg&& m) override MPX_REQUIRES(v_.mu) {
    arrived(m.h);
    dispatch(std::move(m));
  }

  void on_msg_inline(const MsgHeader& h, base::ConstByteSpan payload)
      override MPX_REQUIRES(v_.mu) {
    arrived(h);
    if (h.kind == MsgKind::eager) {
      handle_eager_inline(v_, h, payload);
      return;
    }
    // Control messages (rts/cts/ack) are header-only; data chunks never
    // arrive inline on shm. Materialize for the regular handlers —
    // dispatch(), not on_msg(): the arrival was already counted above.
    Msg m;
    m.h = h;
    m.payload = base::Buffer::copy_of(payload);
    dispatch(std::move(m));
  }

  void on_send_complete(std::uint64_t cookie) override MPX_REQUIRES(v_.mu) {
    base::Ref<RequestImpl> ref = from_cookie(cookie);
    RequestImpl* sreq = ref.get();
    switch (sreq->proto) {
      case SendProto::eager_cq:
        sreq->status.count_bytes = sreq->total_bytes;
        complete_request(sreq, Err::success);
        break;
      case SendProto::rndv: {
        // Reconstruct acked bytes from the PINNED geometry (handle_cts):
        // a completion event always covers one injected chunk, and every
        // chunk but the last is exactly pipe_chunk bytes.
        const std::uint64_t acked = std::min<std::uint64_t>(
            sreq->pipe_chunk, sreq->total_bytes - sreq->bytes_moved);
        sreq->bytes_moved += acked;
        --sreq->chunks_inflight;
        while (sreq->next_offset < sreq->total_bytes &&
               sreq->chunks_inflight < sreq->pipe_window) {
          inject_next_chunk(v_, sreq);
        }
        if (sreq->bytes_moved >= sreq->total_bytes) {
          sreq->status.count_bytes = sreq->total_bytes;
          complete_request(sreq, Err::success);
        }
        break;
      }
      default:
        ensures(false, "on_send_complete: unexpected protocol");
    }
  }

 private:
  /// Exactly-once in-flight accounting for one arrival, regardless of
  /// which entry point it came through (on_msg_inline must NOT forward to
  /// on_msg, or a materialized control message would decrement twice).
  void arrived(const MsgHeader& h) MPX_REQUIRES(v_.mu) {
    (*v_.topo_cache).inflight_add(h.src_rank, h.dst_rank, -1);
  }

  void dispatch(Msg&& m) MPX_REQUIRES(v_.mu) {
    switch (m.h.kind) {
      case MsgKind::eager: handle_eager(v_, std::move(m)); break;
      case MsgKind::rts: handle_rts(v_, std::move(m)); break;
      case MsgKind::cts: handle_cts(v_, std::move(m)); break;
      case MsgKind::data: handle_data(v_, std::move(m)); break;
      case MsgKind::ack: handle_ack(v_, std::move(m)); break;
    }
  }

  Vci& v_;
};

}  // namespace

void route_send(Vci& v, Msg&& m, std::uint64_t cookie) {
  const TopologySnapshot& topo = *v.topo_cache;
  // Conservative cross-pair FIFO: once anything is parked on this VCI, park
  // everything behind it — fences are rare and short, and flush_parked
  // restores order the moment the head's pair unfences.
  if (topo.fenced(m.h.src_rank, m.h.dst_rank) || !v.fence_parked.empty()) {
    v.fence_parked.push_back(ParkedSend{std::move(m), cookie});
    return;
  }
  inject(v, topo, std::move(m), cookie);
}

void route_send_eager(Vci& v, const MsgHeader& h, base::ConstByteSpan payload) {
  const TopologySnapshot& topo = *v.topo_cache;
  if (topo.fenced(h.src_rank, h.dst_rank) || !v.fence_parked.empty()) {
    // The zero-envelope contract says the payload is copied before we
    // return (the caller completes the request at initiation), so parking
    // must materialize an owned message. It flushes through send() — every
    // transport accepts an owned eager Msg.
    Msg m;
    m.h = h;
    m.payload = base::pooled_copy(payload);
    v.fence_parked.push_back(ParkedSend{std::move(m), 0});
    return;
  }
  topo.inflight_add(h.src_rank, h.dst_rank, +1);
  topo.carrier(h.src_rank, h.dst_rank)->send_eager(h, payload, 0);
}

int flush_parked(Vci& v) {
  const TopologySnapshot& topo = *v.topo_cache;
  int made = 0;
  while (!v.fence_parked.empty()) {
    ParkedSend& head = v.fence_parked.front();
    if (topo.fenced(head.msg.h.src_rank, head.msg.h.dst_rank)) break;
    ParkedSend p = std::move(head);
    v.fence_parked.pop_front();
    inject(v, topo, std::move(p.msg), p.cookie);
    made = 1;
  }
  return made;
}

std::unique_ptr<transport::TransportSink> make_vci_sink(Vci& v) {
  return std::make_unique<VciSink>(v);
}

void lmt_progress(Vci& v, int* made_progress) {
  const WorldConfig& cfg = v.world->config();
  for (auto it = v.lmt.begin(); it != v.lmt.end();) {
    LmtWork& w = *it;
    const std::uint64_t len =
        std::min<std::uint64_t>(cfg.shm_lmt_chunk, w.total - w.done);
    RequestImpl* rreq = w.rreq.get();
    const std::size_t cap = rreq->count * rreq->dt.size();
    if (w.seg != nullptr) {
      w.seg->unpack(base::ConstByteSpan(w.src + w.done,
                                        static_cast<std::size_t>(len)));
    } else if (w.done < cap) {
      const std::size_t n = std::min<std::size_t>(
          static_cast<std::size_t>(len), cap - static_cast<std::size_t>(w.done));
      std::memcpy(static_cast<std::byte*>(rreq->buf) + w.done, w.src + w.done,
                  n);
    }
    w.done += len;
    if (made_progress != nullptr) *made_progress = 1;
    if (w.done >= w.total) {
      Msg ack;
      ack.h.kind = transport::MsgKind::ack;
      ack.h.src_rank = v.rank;
      ack.h.dst_rank = w.sender_rank;
      ack.h.src_vci = v.id;
      ack.h.dst_vci = w.sender_vci;
      ack.h.sender_cookie = w.sender_cookie;
      route_send(v, std::move(ack), 0);
      rreq->status.count_bytes = std::min<std::uint64_t>(w.total, cap);
      complete_request(rreq, w.total > cap ? Err::truncate : Err::success);
      it = v.lmt.erase(it);
    } else {
      ++it;
    }
  }
}

Request isend_impl(const std::shared_ptr<CommImpl>& comm, int my_rank,
                   const void* buf, std::size_t count,
                   const dtype::Datatype& dt, int dst, int tag, bool sync) {
  expects(comm != nullptr, "isend: invalid communicator");
  expects(dst >= 0 && dst < static_cast<int>(comm->group.size()),
          "isend: destination rank out of range");
  expects(dt.valid(), "isend: invalid datatype");
  expects(tag >= 0, "isend: tag must be non-negative");
  World& w = *comm->world;
  const int self = comm->to_world(my_rank);
  const int peer = comm->to_world(dst);
  Vci& v = w.vci(self, comm->vcis[static_cast<std::size_t>(my_rank)]);

  auto* r = new RequestImpl(ReqKind::send);
  r->world = &w;
  r->vci = &v;
  r->comm = comm;
  r->self = self;
  r->peer = peer;
  r->peer_vci = comm->vcis[static_cast<std::size_t>(dst)];
  r->context_id = comm->context_id;
  r->total_bytes = count * dt.size();
  v.active_ops.fetch_add(1, std::memory_order_relaxed);

  // Flatten non-contiguous data once up front; protocols below see bytes.
  if (dt.is_contiguous() || r->total_bytes == 0) {
    r->send_src = static_cast<const std::byte*>(buf);
  } else {
    r->staging = base::Buffer(static_cast<std::size_t>(r->total_bytes));
    dtype::pack_all(buf, count, dt, r->staging.span());
    r->send_src = r->staging.data();
    r->uses_staging = true;
  }

  Msg m;
  m.h.src_rank = self;
  m.h.dst_rank = peer;
  m.h.src_vci = v.id;
  m.h.dst_vci = r->peer_vci;
  m.h.context_id = comm->context_id;
  m.h.tag = tag;
  m.h.total_bytes = r->total_bytes;

  // Select the message mode from the routed transport's capabilities and
  // limits — the protocol layer never names a concrete transport. Routing
  // resolves under the VCI lock through the section's topology pin, so the
  // carrier consulted is exactly the one (or, mid-swap, the pending one)
  // the message leaves through.
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  TopoRef topo(v);
  transport::Transport& t = *(*topo).carrier(self, peer);
  const unsigned caps = t.caps();
  const transport::TransportLimits& lim = t.limits();
  const bool can_eager =
      !sync && r->total_bytes <= lim.eager_max &&
      ((caps & transport::cap_eager_local) != 0 ||
       r->total_bytes <= lim.lightweight_max ||
       (caps & transport::cap_send_cq) != 0);
  if (can_eager) {
    m.h.kind = MsgKind::eager;
    if ((caps & transport::cap_eager_local) != 0) {
      r->proto = SendProto::eager_local;
      // Zero-envelope: the payload is copied straight from the user (or
      // staging) buffer before route_send_eager returns — into transport
      // storage when the pair is clear, into an owned parked message when
      // fenced — so the operation is locally complete either way.
      route_send_eager(v, m.h,
                       base::ConstByteSpan(
                           r->send_src,
                           static_cast<std::size_t>(r->total_bytes)));
      r->status.count_bytes = r->total_bytes;
      complete_request(r, Err::success);
    } else if (r->total_bytes <= lim.lightweight_max) {
      r->proto = SendProto::light;
      m.payload = base::pooled_copy(base::ConstByteSpan(
          r->send_src, static_cast<std::size_t>(r->total_bytes)));
      route_send(v, std::move(m), 0);
      r->status.count_bytes = r->total_bytes;
      complete_request(r, Err::success);
    } else {
      r->proto = SendProto::eager_cq;
      m.payload = base::pooled_copy(base::ConstByteSpan(
          r->send_src, static_cast<std::size_t>(r->total_bytes)));
      route_send(v, std::move(m), cookie_of(r));
    }
  } else {
    m.h.kind = MsgKind::rts;
    m.h.sender_cookie = cookie_of(r);
    if ((caps & transport::cap_mapped_memory) != 0) {
      // The receiver copies straight out of our buffer (LMT): export it in
      // the RTS and wait for the single ACK.
      r->proto = SendProto::rndv_lmt;
      m.h.shm_src = r->send_src;
    } else {
      r->proto = SendProto::rndv;
    }
    route_send(v, std::move(m), 0);
  }
  trace_emit(v, trace::Event::post_send, dst, tag, r->total_bytes,
             static_cast<std::uint64_t>(r->proto));
  return Request(base::Ref<RequestImpl>(r));
}

Request irecv_impl(const std::shared_ptr<CommImpl>& comm, int my_rank,
                   void* buf, std::size_t count, const dtype::Datatype& dt,
                   int src, int tag) {
  expects(comm != nullptr, "irecv: invalid communicator");
  expects(src == any_source ||
              (src >= 0 && src < static_cast<int>(comm->group.size())),
          "irecv: source rank out of range");
  expects(dt.valid(), "irecv: invalid datatype");
  World& w = *comm->world;
  const int self = comm->to_world(my_rank);
  Vci& v = w.vci(self, comm->vcis[static_cast<std::size_t>(my_rank)]);

  auto* r = new RequestImpl(ReqKind::recv);
  r->world = &w;
  r->vci = &v;
  r->comm = comm;
  r->self = self;
  r->buf = buf;
  r->count = count;
  r->dt = dt;
  r->context_id = comm->context_id;
  r->match_src = src == any_source ? any_source : comm->to_world(src);
  r->match_tag = tag;
  v.active_ops.fetch_add(1, std::memory_order_relaxed);

  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  // Pin before touching the unexpected queue: matching an RTS starts the
  // rendezvous reply (CTS), which routes.
  TopoRef topo(v);
  // Check the unexpected queue first (oldest eligible arrival).
  if (UnexpMsg* hit =
          v.unexpected.pop(r->context_id, r->match_src, r->match_tag);
      hit != nullptr) {
    base::Ref<RequestImpl> own = base::Ref<RequestImpl>::share(r);
    if (hit->msg.h.kind == MsgKind::eager) {
      deliver_eager(r, hit->msg.h, hit->msg.payload.span());
    } else {
      ensures(hit->msg.h.kind == MsgKind::rts, "unexpected queue: bad kind");
      start_rndv_recv(v, std::move(own), hit->msg.h);
    }
    v.unexp_pool.release(hit);
    return Request(base::Ref<RequestImpl>(r));
  }
  r->ref_inc();  // the posted queue holds a reference
  v.posted.push(r);
  trace_emit(v, trace::Event::post_recv, src, tag,
             count * dt.size());
  return Request(base::Ref<RequestImpl>(r));
}

Request imrecv_impl(const std::shared_ptr<CommImpl>& comm, int my_rank,
                    void* buf, std::size_t count, const dtype::Datatype& dt,
                    UnexpMsg* u) {
  expects(comm != nullptr && u != nullptr, "imrecv: invalid arguments");
  World& w = *comm->world;
  const int self = comm->to_world(my_rank);
  Vci& v = w.vci(self, comm->vcis[static_cast<std::size_t>(my_rank)]);

  auto* r = new RequestImpl(ReqKind::recv);
  r->world = &w;
  r->vci = &v;
  r->comm = comm;
  r->self = self;
  r->buf = buf;
  r->count = count;
  r->dt = dt;
  r->context_id = u->msg.h.context_id;
  v.active_ops.fetch_add(1, std::memory_order_relaxed);

  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  // Same as irecv: a claimed RTS replies with a CTS, which routes.
  TopoRef topo(v);
  if (u->msg.h.kind == MsgKind::eager) {
    deliver_eager(r, u->msg.h, u->msg.payload.span());
  } else {
    ensures(u->msg.h.kind == MsgKind::rts, "imrecv: bad claimed message");
    start_rndv_recv(v, base::Ref<RequestImpl>::share(r), u->msg.h);
  }
  // The storage came from the parking VCI's pool; releasing into this VCI's
  // pool is fine (blocks are interchangeable ::operator new storage) and
  // this is the pool we hold the lock for.
  v.unexp_pool.release(u);
  return Request(base::Ref<RequestImpl>(r));
}

void requeue_unexpected(Vci& v, UnexpMsg* u) {
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  v.unexpected.push_front(u);
}

}  // namespace mpx::core_detail
