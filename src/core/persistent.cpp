// Persistent point-to-point operations (MPI_Send_init / MPI_Recv_init /
// MPI_Start). A persistent request captures the operation's arguments once;
// each start() re-arms the completion flag and issues a fresh inner
// operation whose completion hook completes the persistent handle. This is
// the handle shape task runtimes re-fire every iteration — and the shape
// the MPIX_Schedule proposal (§5.3) builds rounds out of.
#include "internal.hpp"

namespace mpx {

using core_detail::ReqKind;
using core_detail::RequestImpl;

namespace {

Request make_persistent(ReqKind kind,
                        const std::shared_ptr<core_detail::CommImpl>& comm,
                        int my_rank, void* buf, std::size_t count,
                        dtype::Datatype dt, int peer, int tag, bool sync) {
  expects(comm != nullptr, "send_init/recv_init: invalid communicator");
  World& w = *comm->world;
  auto* r = new RequestImpl(kind);
  r->world = &w;
  r->vci = &w.vci(comm->to_world(my_rank),
                  comm->vcis[static_cast<std::size_t>(my_rank)]);
  r->comm = comm;
  r->my_comm_rank = my_rank;
  r->buf = buf;
  r->count = count;
  r->dt = std::move(dt);
  r->peer = peer;           // communicator rank of the peer
  r->match_tag = tag;
  r->sync_mode = sync;
  // Persistent requests are born INACTIVE: test/wait on an inactive request
  // returns immediately (MPI semantics), so mark it complete until started.
  r->complete.store(true, std::memory_order_release);
  return Request(base::Ref<RequestImpl>(r));
}

void persistent_cycle_done(RequestImpl* inner, void* arg) {
  // Runs under the inner request's VCI lock at completion time.
  auto* pers = static_cast<RequestImpl*>(arg);
  pers->status = inner->status;
  core_detail::complete_request(pers, inner->status.error);
  base::Ref<RequestImpl> drop(pers);  // release the ref taken by start()
}

}  // namespace

Request Comm::send_init(const void* buf, std::size_t count,
                        dtype::Datatype dt, int dst, int tag,
                        bool sync) const {
  expects(valid(), "Comm::send_init: invalid communicator");
  expects(dst >= 0 && dst < size(), "Comm::send_init: rank out of range");
  return make_persistent(ReqKind::psend, impl_, my_rank_,
                         const_cast<void*>(buf), count, std::move(dt), dst,
                         tag, sync);
}

Request Comm::recv_init(void* buf, std::size_t count, dtype::Datatype dt,
                        int src, int tag) const {
  expects(valid(), "Comm::recv_init: invalid communicator");
  expects(src == any_source || (src >= 0 && src < size()),
          "Comm::recv_init: rank out of range");
  return make_persistent(ReqKind::precv, impl_, my_rank_, buf, count,
                         std::move(dt), src, tag, false);
}

Request make_persistent_generic(
    World& w, const Stream& stream,
    std::function<base::Ref<core_detail::RequestImpl>()> factory) {
  return make_persistent_generic(w, stream, std::move(factory), nullptr);
}

Request make_persistent_generic(
    World& w, const Stream& stream,
    std::function<base::Ref<core_detail::RequestImpl>()> factory,
    std::shared_ptr<void> pinned) {
  expects(static_cast<bool>(factory),
          "make_persistent_generic: empty factory");
  auto* r = new RequestImpl(ReqKind::pgeneric);
  r->world = &w;
  r->vci = &w.vci(stream.rank(), stream.vci());
  r->self = stream.rank();
  r->pgen_factory = std::move(factory);
  r->pgen_pinned = std::move(pinned);
  r->complete.store(true, std::memory_order_release);  // born inactive
  return Request(base::Ref<RequestImpl>(r));
}

void start(Request& req) {
  RequestImpl* r = req.impl();
  expects(r != nullptr &&
              (r->kind == ReqKind::psend || r->kind == ReqKind::precv ||
               r->kind == ReqKind::pgeneric),
          "start: not a persistent request");
  expects(r->complete.load(std::memory_order_acquire),
          "start: previous cycle still active");
  r->complete.store(false, std::memory_order_release);
  r->status = Status{};

  Request inner;
  switch (r->kind) {
    case ReqKind::psend:
      inner = core_detail::isend_impl(r->comm, r->my_comm_rank, r->buf,
                                      r->count, r->dt, r->peer, r->match_tag,
                                      r->sync_mode);
      break;
    case ReqKind::precv:
      inner = core_detail::irecv_impl(r->comm, r->my_comm_rank, r->buf,
                                      r->count, r->dt, r->peer,
                                      r->match_tag);
      break;
    default:
      inner = Request(r->pgen_factory());
      break;
  }
  RequestImpl* in = inner.impl();
  r->child = base::Ref<RequestImpl>::share(in);
  r->ref_inc();  // held by the completion hook below
  bool fire_now = false;
  {
    base::LockGuard<base::InstrumentedMutex> g(in->vci->mu);
    if (in->complete.load(std::memory_order_acquire)) {
      fire_now = true;  // e.g. a buffered eager send completed at initiation
    } else {
      ensures(in->on_complete == nullptr, "start: inner hook slot taken");
      in->on_complete = &persistent_cycle_done;
      in->on_complete_arg = r;
    }
  }
  if (fire_now) persistent_cycle_done(in, r);
}

void start_all(std::span<Request> reqs) {
  for (Request& r : reqs) start(r);
}

}  // namespace mpx
