// Communicator management (dup/split/stream comms) and the p2p entry points.
// Management operations are collective: every member must call; a
// Coordinator rendezvous gathers the per-member inputs, the last arrival
// builds the result, and everyone leaves with its own view.
//
// Layer note: communicator construction is CONTROL-PLANE work — context-id
// allocation goes through World::alloc_context_ids (the ranked control
// mutex). The p2p entry points below it are pure datapath: they resolve
// their VCI and route through that VCI's pinned TopologySnapshot, never a
// control-plane lock (see "Control plane vs datapath" in
// docs/architecture.md).
#include <algorithm>

#include "internal.hpp"
#include "mpx/core/waittest.hpp"

namespace mpx {

using core_detail::CommImpl;
using core_detail::Coordinator;

namespace core_detail {

std::any Coordinator::run(int member, std::any input,
                          std::vector<std::any> (*make)(std::vector<std::any>&,
                                                        void*),
                          void* arg) {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t my_epoch = epoch_;
  inputs_[static_cast<std::size_t>(member)] = std::move(input);
  ++arrived_;
  if (arrived_ == n_) {
    outputs_ =
        std::make_shared<std::vector<std::any>>(make(inputs_, arg));
    ensures(static_cast<int>(outputs_->size()) == n_,
            "Coordinator: make() must return one output per member");
    arrived_ = 0;
    ++epoch_;
    for (auto& in : inputs_) in.reset();
    cv_.notify_all();
    return (*outputs_)[static_cast<std::size_t>(member)];
  }
  cv_.wait(lk, [&] { return epoch_ != my_epoch; });
  return (*outputs_)[static_cast<std::size_t>(member)];
}

CommImpl::~CommImpl() {
  // Single-threaded by the time the last shared_ptr drops; the acquire
  // pairs with the installer's CAS release so the extension's contents
  // (compiled schedules) are visible before deletion.
  delete ext.load(std::memory_order_acquire);
}

CommExt* comm_ext(const Comm& comm) {
  expects(comm.valid(), "comm_ext: invalid communicator");
  return comm.impl()->ext.load(std::memory_order_acquire);
}

CommExt* comm_ext_get_or_install(const Comm& comm,
                                 std::unique_ptr<CommExt> (*make)(void* arg),
                                 void* arg) {
  expects(comm.valid() && make != nullptr,
          "comm_ext_get_or_install: bad arguments");
  CommImpl* ci = comm.impl();
  CommExt* cur = ci->ext.load(std::memory_order_acquire);
  if (cur != nullptr) return cur;
  std::unique_ptr<CommExt> fresh = make(arg);
  expects(fresh != nullptr, "comm_ext_get_or_install: factory returned null");
  CommExt* expected = nullptr;
  if (ci->ext.compare_exchange_strong(expected, fresh.get(),
                                      std::memory_order_acq_rel)) {
    return fresh.release();  // now owned by the CommImpl
  }
  return expected;  // a racing member installed first; ours is destroyed
}

}  // namespace core_detail

int Comm::rank() const {
  expects(valid(), "Comm::rank: invalid communicator");
  return my_rank_;
}

int Comm::size() const {
  expects(valid(), "Comm::size: invalid communicator");
  return static_cast<int>(impl_->group.size());
}

World& Comm::world() const {
  expects(valid(), "Comm::world: invalid communicator");
  return *impl_->world;
}

int Comm::context_id() const {
  expects(valid(), "Comm::context_id: invalid communicator");
  return impl_->context_id;
}

Stream Comm::stream() const {
  expects(valid(), "Comm::stream: invalid communicator");
  const int vci = impl_->vcis[static_cast<std::size_t>(my_rank_)];
  World& w = *impl_->world;
  if (vci == 0) return w.null_stream(impl_->to_world(my_rank_));
  // Reconstruct the handle; mask comes from the VCI itself.
  core_detail::Vci& v = w.vci(impl_->to_world(my_rank_), vci);
  return Stream(&w, impl_->to_world(my_rank_), vci, v.default_mask);
}

int Comm::world_rank(int comm_rank) const {
  expects(valid() && comm_rank >= 0 && comm_rank < size(),
          "Comm::world_rank: rank out of range");
  return impl_->to_world(comm_rank);
}

Request Comm::isend(const void* buf, std::size_t count, dtype::Datatype dt,
                    int dst, int tag) const {
  expects(valid(), "Comm::isend: invalid communicator");
  return core_detail::isend_impl(impl_, my_rank_, buf, count, dt, dst, tag);
}

Request Comm::irecv(void* buf, std::size_t count, dtype::Datatype dt, int src,
                    int tag) const {
  expects(valid(), "Comm::irecv: invalid communicator");
  return core_detail::irecv_impl(impl_, my_rank_, buf, count, dt, src, tag);
}

Status Comm::send(const void* buf, std::size_t count, dtype::Datatype dt,
                  int dst, int tag) const {
  Request r = isend(buf, count, std::move(dt), dst, tag);
  return wait_on_stream(r, stream());
}

Status Comm::recv(void* buf, std::size_t count, dtype::Datatype dt, int src,
                  int tag) const {
  Request r = irecv(buf, count, std::move(dt), src, tag);
  return wait_on_stream(r, stream());
}

Request Comm::issend(const void* buf, std::size_t count, dtype::Datatype dt,
                     int dst, int tag) const {
  expects(valid(), "Comm::issend: invalid communicator");
  return core_detail::isend_impl(impl_, my_rank_, buf, count, dt, dst, tag,
                                 /*sync=*/true);
}

Status Comm::ssend(const void* buf, std::size_t count, dtype::Datatype dt,
                   int dst, int tag) const {
  Request r = issend(buf, count, std::move(dt), dst, tag);
  return wait_on_stream(r, stream());
}

Status Comm::sendrecv(const void* sendbuf, std::size_t sendcount,
                      dtype::Datatype sendtype, int dst, int sendtag,
                      void* recvbuf, std::size_t recvcount,
                      dtype::Datatype recvtype, int src, int recvtag) const {
  Request sreq = isend(sendbuf, sendcount, std::move(sendtype), dst, sendtag);
  Request rreq = irecv(recvbuf, recvcount, std::move(recvtype), src, recvtag);
  const Stream s = stream();
  while (!sreq.is_complete() || !rreq.is_complete()) stream_progress(s);
  return rreq.status();
}

std::optional<Status> Comm::iprobe(int src, int tag) const {
  expects(valid(), "Comm::iprobe: invalid communicator");
  World& w = *impl_->world;
  const int self = impl_->to_world(my_rank_);
  core_detail::Vci& v =
      w.vci(self, impl_->vcis[static_cast<std::size_t>(my_rank_)]);
  core_detail::progress_test(v, v.default_mask);

  const int match_src = src == any_source ? any_source : impl_->to_world(src);
  std::optional<Status> out;
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  if (const core_detail::UnexpMsg* u =
          v.unexpected.find(impl_->context_id, match_src, tag);
      u != nullptr) {
    Status s;
    s.source = impl_->to_comm(u->msg.h.src_rank);
    s.tag = u->msg.h.tag;
    s.count_bytes = u->msg.h.total_bytes;
    out = s;
  }
  return out;
}

MatchedMsg::MatchedMsg(MatchedMsg&& o) noexcept
    : msg_(o.msg_), vci_(o.vci_), envelope_(o.envelope_) {
  o.msg_ = nullptr;
}

MatchedMsg& MatchedMsg::operator=(MatchedMsg&& o) noexcept {
  if (this != &o) {
    if (msg_ != nullptr) core_detail::requeue_unexpected(*vci_, msg_);
    msg_ = o.msg_;
    vci_ = o.vci_;
    envelope_ = o.envelope_;
    o.msg_ = nullptr;
  }
  return *this;
}

MatchedMsg::~MatchedMsg() {
  if (msg_ != nullptr) core_detail::requeue_unexpected(*vci_, msg_);
}

std::optional<MatchedMsg> Comm::improbe(int src, int tag) const {
  expects(valid(), "Comm::improbe: invalid communicator");
  World& w = *impl_->world;
  const int self = impl_->to_world(my_rank_);
  core_detail::Vci& v =
      w.vci(self, impl_->vcis[static_cast<std::size_t>(my_rank_)]);
  core_detail::progress_test(v, v.default_mask);

  const int match_src = src == any_source ? any_source : impl_->to_world(src);
  core_detail::UnexpMsg* hit = nullptr;
  {
    base::LockGuard<base::InstrumentedMutex> g(v.mu);
    hit = v.unexpected.pop(impl_->context_id, match_src, tag);
  }
  if (hit == nullptr) return std::nullopt;
  Status env;
  env.source = impl_->to_comm(hit->msg.h.src_rank);
  env.tag = hit->msg.h.tag;
  env.count_bytes = hit->msg.h.total_bytes;
  return MatchedMsg(hit, &v, env);
}

Request Comm::imrecv(void* buf, std::size_t count, dtype::Datatype dt,
                     MatchedMsg&& m) const {
  expects(valid(), "Comm::imrecv: invalid communicator");
  expects(m.valid(), "Comm::imrecv: invalid matched message");
  return core_detail::imrecv_impl(impl_, my_rank_, buf, count, dt,
                                  m.release());
}

Comm Comm::coll_view() const {
  expects(valid(), "Comm::coll_view: invalid communicator");
  base::LockGuard<base::InstrumentedMutex> g(impl_->clone_mu);
  if (impl_->coll_clone == nullptr) {
    auto ci = std::make_shared<CommImpl>();
    ci->world = impl_->world;
    ci->context_id = impl_->coll_context_id;
    ci->coll_context_id = impl_->coll_context_id;
    ci->group = impl_->group;
    ci->vcis = impl_->vcis;
    ci->world_to_comm = impl_->world_to_comm;
    impl_->coll_clone = std::move(ci);
  }
  return Comm(impl_->coll_clone, my_rank_);
}

int Comm::next_coll_tag() const {
  expects(valid(), "Comm::next_coll_tag: invalid communicator");
  if (impl_->coll_seq.empty()) {
    // Lazily sized; only resized once under the clone mutex.
    base::LockGuard<base::InstrumentedMutex> g(impl_->clone_mu);
    if (impl_->coll_seq.empty()) impl_->coll_seq.assign(impl_->group.size(), 0);
  }
  int& slot = impl_->coll_seq[static_cast<std::size_t>(my_rank_)];
  const int tag = slot;
  // Each collective instance owns a 64-tag range so schedules can offset
  // tags for multiple same-peer ops within one round (see Sched).
  slot = (slot + 64) & 0x3FFFFFFF;
  return tag;
}

namespace {

/// Shared result-building helpers for the collective management ops.

struct MakeGroupArg {
  const CommImpl* parent;
  World* world;
};

std::shared_ptr<CommImpl> build_comm(World& w,
                                     const std::vector<int>& group_world,
                                     const std::vector<int>& vcis) {
  auto ci = std::make_shared<CommImpl>();
  ci->world = &w;
  ci->context_id = w.alloc_context_ids(2);
  ci->coll_context_id = ci->context_id + 1;
  ci->group = group_world;
  ci->vcis = vcis;
  ci->world_to_comm.assign(static_cast<std::size_t>(w.size()), -1);
  for (std::size_t i = 0; i < group_world.size(); ++i) {
    ci->world_to_comm[static_cast<std::size_t>(group_world[i])] =
        static_cast<int>(i);
  }
  ci->coord = std::make_unique<core_detail::Coordinator>(
      static_cast<int>(group_world.size()));
  return ci;
}

std::vector<std::any> make_dup(std::vector<std::any>& inputs, void* argp) {
  auto* arg = static_cast<MakeGroupArg*>(argp);
  auto ci = build_comm(*arg->world, arg->parent->group, arg->parent->vcis);
  return std::vector<std::any>(inputs.size(), std::any(ci));
}

std::vector<std::any> make_stream_comm(std::vector<std::any>& inputs,
                                       void* argp) {
  auto* arg = static_cast<MakeGroupArg*>(argp);
  std::vector<int> vcis(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    vcis[i] = std::any_cast<int>(inputs[i]);
  }
  auto ci = build_comm(*arg->world, arg->parent->group, vcis);
  return std::vector<std::any>(inputs.size(), std::any(ci));
}

struct SplitInput {
  int color;
  int key;
};

std::vector<std::any> make_split(std::vector<std::any>& inputs, void* argp) {
  auto* arg = static_cast<MakeGroupArg*>(argp);
  struct Member {
    int parent_rank;
    SplitInput in;
  };
  // Group members by color.
  std::vector<Member> members;
  members.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    members.push_back(Member{static_cast<int>(i),
                             std::any_cast<SplitInput>(inputs[i])});
  }
  std::vector<std::any> outputs(inputs.size());
  std::vector<int> colors;
  for (const Member& m : members) {
    if (m.in.color >= 0 &&
        std::find(colors.begin(), colors.end(), m.in.color) == colors.end()) {
      colors.push_back(m.in.color);
    }
  }
  std::sort(colors.begin(), colors.end());
  for (int color : colors) {
    std::vector<Member> sub;
    for (const Member& m : members) {
      if (m.in.color == color) sub.push_back(m);
    }
    std::stable_sort(sub.begin(), sub.end(), [](const Member& a,
                                                const Member& b) {
      return a.in.key < b.in.key;
    });
    std::vector<int> group_world, vcis;
    for (const Member& m : sub) {
      group_world.push_back(arg->parent->to_world(m.parent_rank));
      vcis.push_back(
          arg->parent->vcis[static_cast<std::size_t>(m.parent_rank)]);
    }
    auto ci = build_comm(*arg->world, group_world, vcis);
    for (std::size_t i = 0; i < sub.size(); ++i) {
      outputs[static_cast<std::size_t>(sub[i].parent_rank)] =
          std::make_pair(ci, static_cast<int>(i));
    }
  }
  return outputs;
}

}  // namespace

Comm Comm::dup() const {
  expects(valid(), "Comm::dup: invalid communicator");
  MakeGroupArg arg{impl_.get(), impl_->world};
  std::any out = impl_->coord->run(my_rank_, std::any(), &make_dup, &arg);
  return Comm(std::any_cast<std::shared_ptr<CommImpl>>(out), my_rank_);
}

Comm Comm::with_stream(const Stream& local_stream) const {
  expects(valid(), "Comm::with_stream: invalid communicator");
  expects(local_stream.valid() &&
              &local_stream.world() == impl_->world &&
              local_stream.rank() == impl_->to_world(my_rank_),
          "Comm::with_stream: stream must belong to the calling rank");
  MakeGroupArg arg{impl_.get(), impl_->world};
  std::any out = impl_->coord->run(my_rank_, std::any(local_stream.vci()),
                                   &make_stream_comm, &arg);
  return Comm(std::any_cast<std::shared_ptr<CommImpl>>(out), my_rank_);
}

Comm Comm::split(int color, int key) const {
  expects(valid(), "Comm::split: invalid communicator");
  MakeGroupArg arg{impl_.get(), impl_->world};
  std::any out = impl_->coord->run(
      my_rank_, std::any(SplitInput{color, key}), &make_split, &arg);
  if (!out.has_value()) return Comm();  // color < 0: not a member
  auto [ci, new_rank] =
      std::any_cast<std::pair<std::shared_ptr<CommImpl>, int>>(out);
  return Comm(std::move(ci), new_rank);
}

}  // namespace mpx
