// World's datapath: the read side of the layer split — lock-free VCI
// lookup, snapshot-backed routing, and the per-VCI instrumentation reads.
// Nothing here takes a control-plane lock; every routing question resolves
// through one acquire-load of the published TopologySnapshot (the per-poll
// pin lives in TopoRef, internal.hpp — the accessors below are the cold
// out-of-section paths and pay their own load).
#include "world_layers.hpp"

namespace mpx {

using core_detail::RankCtx;
using core_detail::Vci;

namespace core_detail {

// No thread-safety analysis: the guarded matcher/pool members are sized
// here before the VCI is published, when no other thread can reach it (the
// same construction-time exclusivity ~Vci relies on). Taking v->mu instead
// would acquire LockRank::vci while stream_create holds the vci-table lock
// — the reverse of the documented order.
std::unique_ptr<Vci> make_vci(World* w, int rank, int id,
                              unsigned mask) MPX_NO_THREAD_SAFETY_ANALYSIS {
  auto v = std::make_unique<Vci>();
  v->id = id;
  v->rank = rank;
  v->world = w;
  v->default_mask = mask;
  // Size the matcher and pools before the VCI is published; nobody else can
  // hold v->mu yet.
  const WorldConfig& cfg = w->config();
  const auto nbins =
      static_cast<std::size_t>(cfg.match_bins < 1 ? 1 : cfg.match_bins);
  v->posted.init(nbins);
  v->unexpected.init(nbins);
  v->unexp_pool.set_max_free(static_cast<std::size_t>(
      cfg.pool_unexp_cap < 0 ? 0 : cfg.pool_unexp_cap));
  // Compile the published registry into this VCI's stage table. The
  // source/mask halves never change afterwards; the embedded counters are
  // this VCI's own.
  v->stages = w->progress_registry().compile();
  v->fair = cfg.progress_fair;
  v->sink = make_vci_sink(*v);
  return v;
}

}  // namespace core_detail

core_detail::Vci* World::vci_ptr(int rank, int vci_id) const {
  // Lock-free: two acquire loads on the progress hot path (wait/test loops
  // resolve the VCI on every call). Writers serialize on rc.vcis_mu and
  // publish slots/count with release stores.
  RankCtx& rc = *s_->dp.ranks[static_cast<std::size_t>(rank)];
  const std::uint32_t n = rc.vci_count.load(std::memory_order_acquire);
  expects(vci_id >= 0 && static_cast<std::uint32_t>(vci_id) < n,
          "vci id out of range");
  return rc.slots[static_cast<std::size_t>(vci_id)].load(
      std::memory_order_acquire);
}

RankCtx& World::rank_ctx(int rank) {
  return *s_->dp.ranks[static_cast<std::size_t>(rank)];
}

Vci& World::vci(int rank, int vci_id) { return *vci_ptr(rank, vci_id); }

transport::Transport& World::route(int src, int dst) const {
  // Cold path (tests, upper layers sizing decisions). Hot-path routing pins
  // once per critical section via TopoRef instead of re-loading here.
  return *s_->dp.topo.acquire()->carrier(src, dst);
}

bool World::same_node(int a, int b) const {
  return s_->dp.topo.acquire()->same_node(a, b);
}

const core_detail::TopologyHandle& World::topology() const {
  return s_->dp.topo;
}

std::uint64_t World::topology_epoch() const {
  return s_->dp.topo.acquire()->epoch;
}

const core_detail::ProgressRegistry& World::progress_registry() const {
  return s_->ctl.registry;
}

base::MutexStats World::vci_lock_stats(int rank, int vci_id) const {
  return vci_ptr(rank, vci_id)->mu.stats();
}

std::uint64_t World::vci_progress_calls(int rank, int vci_id) const {
  // The table lock is released before taking the VCI lock: ranks only go up.
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  return v.progress_calls;
}

World::StageCounters World::vci_stage_counters(int rank, int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  StageCounters c;
  for (const core_detail::ProgressStage& st : v.stages) {
    switch (st.mask) {
      case progress_dtype: c.dtype += st.hits; break;
      case progress_coll: c.coll += st.hits; break;
      case progress_async: c.async += st.hits; break;
      case progress_shm: c.shm += st.hits; break;
      case progress_net: c.net += st.hits; break;
      default: break;  // progress_user stages: vci_stage_table only
    }
  }
  return c;
}

std::vector<World::StageCounter> World::vci_stage_table(int rank,
                                                        int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  std::vector<StageCounter> out;
  out.reserve(v.stages.size());
  for (const core_detail::ProgressStage& st : v.stages) {
    out.push_back(StageCounter{st.source->name(), st.mask, st.calls, st.hits});
  }
  return out;
}

World::WaitRungCounters World::vci_wait_rungs(int rank, int vci_id) const {
  // Lock-free like the counters themselves: rungs are relaxed accounting,
  // not synchronization.
  const core_detail::WaitLadderCounters::Snapshot s =
      vci_ptr(rank, vci_id)->wait_rungs.snapshot();
  return WaitRungCounters{s.spin, s.yield, s.sleep};
}

std::int64_t World::vci_active_ops(int rank, int vci_id) const {
  return vci_ptr(rank, vci_id)->active_ops.load(std::memory_order_relaxed);
}

World::MatchCounters World::vci_match_counters(int rank, int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  MatchCounters c;
  c.posted = v.posted.size();
  c.unexpected = v.unexpected.size();
  return c;
}

base::PoolStats World::vci_unexp_pool_stats(int rank, int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  return v.unexp_pool.stats();
}

}  // namespace mpx
