// The collated progress engine (paper Listing 1.1) and the MPIX_Async
// runtime (§3.3). Stages are no longer hardwired: each VCI carries a
// compiled table of ProgressSources (dtype engine, collective schedules,
// user async things, registered extras, then one stage per transport with
// the LMT copy stage behind the mapped-memory transport), scanned with an
// early exit as soon as progress is made — exactly MPICH's
// MPIDI_progress_test shape, with the stage list open for registration.
//
// Fair scheduling (WorldConfig::progress_fair, default on): the scan
// resumes one past the last productive stage, so with S stages a stage
// waits at most S calls for its next poll even when an earlier stage is
// productive on every call. Off restores the seed's fixed
// scan-from-the-top order (a chatty early stage can then starve the rest).
#include "internal.hpp"

namespace mpx {

void AsyncThing::spawn(AsyncPollFn fn, void* extra_state, const Stream& stream,
                       StateDeleter state_deleter) {
  expects(fn != nullptr && stream.valid(), "AsyncThing::spawn: bad arguments");
  spawned_.push_back(SpawnRec{fn, extra_state, stream, state_deleter});
}

namespace core_detail {

int vci_rank(const Vci& v) { return v.rank; }
int vci_id(const Vci& v) { return v.id; }

int vci_poll(Vci& v, unsigned mask) { return progress_test(v, mask); }

Vci::~Vci() {
  // Release anything still owned at world teardown: unfinished hooks
  // (~AsyncThing runs their state deleters), never-matched unexpected
  // messages, never-matched posted receives.
  auto drop_hooks = [](AsyncRuntime::List& list) {
    while (AsyncThing* t = list.pop_front()) delete t;
  };
  drop_hooks(asyncs);
  drop_hooks(coll_hooks);
  while (auto t = inbox_asyncs.try_pop()) delete *t;
  while (auto t = inbox_coll.try_pop()) delete *t;
  // Sends still parked behind a fence and completion events never
  // synthesized both carry protocol references; adopt-and-drop them so a
  // world torn down mid-swap doesn't leak the requests.
  for (ParkedSend& p : fence_parked) {
    if (p.cookie != 0) base::Ref<RequestImpl> drop = from_cookie(p.cookie);
  }
  for (std::uint64_t c : synth_cq) {
    base::Ref<RequestImpl> drop = from_cookie(c);
  }
  while (UnexpMsg* u = unexpected.pop_front_any()) unexp_pool.release(u);
  while (RequestImpl* r = posted.pop_any()) {
    base::Ref<RequestImpl> drop(r);  // adopt the posted-queue reference
  }
  // ~FreelistPool frees the parked UnexpMsg storage after this returns.
}

namespace {

/// Enqueue a new hook onto the target stream's mailbox. Mailboxes decouple
/// registration from the VCI lock, so spawning onto another stream from
/// inside a poll function cannot deadlock.
void enqueue_hook(AsyncPollFn fn, void* state, const Stream& s,
                  bool coll_stage,
                  AsyncThing::StateDeleter deleter = nullptr) {
  Vci& v = s.world().vci(s.rank(), s.vci());
  expects(v.active.load(std::memory_order_acquire),
          "async_start: stream has been freed");
  AsyncThing* t = AsyncRuntime::make(fn, state, s, deleter);
  v.hook_count.fetch_add(1, std::memory_order_relaxed);
  (coll_stage ? v.inbox_coll : v.inbox_asyncs).push(std::move(t));
}

/// Move newly-registered hooks from a mailbox onto a poll list. The list is
/// one of v's guarded hook lists, hence the lock requirement.
void drain_inbox(Vci& v, base::MpscQueue<AsyncThing*>& inbox,
                 AsyncRuntime::List& list) MPX_REQUIRES(v.mu) {
  (void)v;
  while (auto t = inbox.try_pop()) list.push_back(*t);
}

/// Poll every hook in `list` once. A hook returning done is unlinked and
/// destroyed and counts as progress; pending hooks do not.
void poll_hooks(Vci& v, AsyncRuntime::List& list, int* made)
    MPX_REQUIRES(v.mu) {
  list.for_each_safe([&](AsyncThing* t) {
    const AsyncResult r = AsyncRuntime::fn(*t)(*t);
    if (AsyncRuntime::has_spawned(*t)) {
      // Spawned tasks are staged inside the thing and registered after
      // poll_fn returns (paper: avoids recursion / queue self-mutation).
      for (auto& rec : AsyncRuntime::take_spawned(*t)) {
        enqueue_hook(rec.fn, rec.state, rec.stream, /*coll_stage=*/false,
                     rec.deleter);
      }
    }
    if (r == AsyncResult::done) {
      list.erase(t);
      // Done means poll_fn already released the state (paper contract);
      // disarm so ~AsyncThing does not free it a second time.
      AsyncRuntime::disarm(*t);
      delete t;
      v.hook_count.fetch_sub(1, std::memory_order_relaxed);
      *made = 1;
    }
  });
}

// ---- in-tree progress sources ----
//
// poll()/idle() bodies access members guarded by v.mu. The lock IS held —
// progress_test takes it before scanning the stage table — but the
// virtual-dispatch hop hides that from clang's thread-safety analysis
// (ProgressSource::poll cannot carry MPX_REQUIRES(v.mu): Vci is incomplete
// in the public header). Hence the per-method opt-outs; the runtime
// lock-rank validator still checks the real acquisition order.

class DtypeSource final : public ProgressSource {
 public:
  const char* name() const override { return "dtype"; }
  unsigned mask_bit() const override { return progress_dtype; }
  StageFastGate fast_gate() const override { return StageFastGate::dtype; }
  bool idle(Vci& v) override MPX_NO_THREAD_SAFETY_ANALYSIS {
    return v.pack_engine.idle();
  }
  void poll(Vci& v, int* made) override MPX_NO_THREAD_SAFETY_ANALYSIS {
    v.pack_engine.progress(made);
  }
};

class CollSource final : public ProgressSource {
 public:
  const char* name() const override { return "coll"; }
  unsigned mask_bit() const override { return progress_coll; }
  StageFastGate fast_gate() const override {
    return StageFastGate::coll_hooks;
  }
  bool idle(Vci& v) override MPX_NO_THREAD_SAFETY_ANALYSIS {
    return v.coll_hooks.empty();
  }
  void poll(Vci& v, int* made) override MPX_NO_THREAD_SAFETY_ANALYSIS {
    poll_hooks(v, v.coll_hooks, made);
  }
};

class AsyncSource final : public ProgressSource {
 public:
  const char* name() const override { return "async"; }
  unsigned mask_bit() const override { return progress_async; }
  StageFastGate fast_gate() const override {
    return StageFastGate::async_hooks;
  }
  bool idle(Vci& v) override MPX_NO_THREAD_SAFETY_ANALYSIS {
    return v.asyncs.empty();
  }
  void poll(Vci& v, int* made) override MPX_NO_THREAD_SAFETY_ANALYSIS {
    poll_hooks(v, v.asyncs, made);
  }
};

/// One poll stage per transport. No engine-side idle check: transports keep
/// their own cheap empty-endpoint fast paths inside poll() (the seed polled
/// them unconditionally too), and Transport::idle() is a teardown-grade
/// check that may cost more than the poll it would skip — so
/// has_idle_check() is false and the scan skips the idle() hop entirely.
class TransportSource final : public ProgressSource {
 public:
  explicit TransportSource(transport::Transport& t) : t_(t) {}
  const char* name() const override { return t_.name(); }
  unsigned mask_bit() const override { return t_.progress_bit(); }
  bool has_idle_check() const override { return false; }
  bool idle(Vci&) override { return false; }
  void poll(Vci& v, int* made) override MPX_NO_THREAD_SAFETY_ANALYSIS {
    t_.poll(v.rank, v.id, *v.sink, made);
  }

 private:
  transport::Transport& t_;
};

/// Receiver-side mapped-memory LMT copy work, registered directly after
/// the mapped transport's poll stage and sharing its mask bit (the seed
/// ran this inside the shm slot).
class LmtSource final : public ProgressSource {
 public:
  explicit LmtSource(unsigned mask) : mask_(mask) {}
  const char* name() const override { return "lmt"; }
  unsigned mask_bit() const override { return mask_; }
  StageFastGate fast_gate() const override { return StageFastGate::lmt; }
  bool idle(Vci& v) override MPX_NO_THREAD_SAFETY_ANALYSIS {
    return v.lmt.empty();
  }
  void poll(Vci& v, int* made) override MPX_NO_THREAD_SAFETY_ANALYSIS {
    lmt_progress(v, made);
  }

 private:
  unsigned mask_;
};

}  // namespace

namespace {
std::vector<StaticSourceFactory>& static_sources_mut() {
  static std::vector<StaticSourceFactory> factories;
  return factories;
}
}  // namespace

void register_static_source(StaticSourceFactory make) {
  expects(make != nullptr, "register_static_source: null factory");
  static_sources_mut().push_back(make);
}

const std::vector<StaticSourceFactory>& static_source_factories() {
  return static_sources_mut();
}

void register_builtin_sources(ProgressRegistry& reg) {
  reg.add(std::make_unique<DtypeSource>());
  reg.add(std::make_unique<CollSource>());
  reg.add(std::make_unique<AsyncSource>());
}

void register_transport_sources(
    ProgressRegistry& reg, const std::vector<transport::Transport*>& ts) {
  bool lmt_staged = false;
  for (transport::Transport* t : ts) {
    reg.add(std::make_unique<TransportSource>(*t));
    if (!lmt_staged && (t->caps() & transport::cap_mapped_memory) != 0) {
      reg.add(std::make_unique<LmtSource>(t->progress_bit()));
      lmt_staged = true;
    }
  }
}

int progress_test(Vci& v, unsigned mask) {
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  // The section's ONE topology acquire-load (re-entrant calls from poll
  // callbacks find the cache set and load nothing). Every routing decision
  // below — transport polls delivering arrivals, handlers replying, the
  // fence-parked flush — resolves against this pin.
  TopoRef topo(v);
  ++v.progress_calls;

  // Empty-stage fast path: hook_count covers linked hooks AND mailbox
  // entries (enqueue_hook increments before pushing), so when it reads zero
  // both mailbox spinlocks can be skipped outright. A racing registration
  // is picked up by a later progress call — polling may lag registration.
  // Relaxed: the counter only gates whether we take the mailbox locks,
  // which provide the actual ordering; there is no release store to pair
  // an acquire with (both RMWs are relaxed).
  if (v.hook_count.load(std::memory_order_relaxed) != 0) {
    drain_inbox(v, v.inbox_coll, v.coll_hooks);
    drain_inbox(v, v.inbox_asyncs, v.asyncs);
  }

  // Topology-swap follow-up work, ahead of the stage scan. Both lists are
  // empty except around a swap, so this is two branch tests on the hot
  // path. (1) Flush sends parked while their pair was fenced. (2) Deliver
  // completion events the carrier finished locally (synthesized by
  // route_send; see Vci::synth_cq) — swap-out loop because a completion
  // handler may inject follow-up chunks that synthesize again.
  {
    int swept = 0;
    if (!v.fence_parked.empty()) swept |= flush_parked(v);
    while (!v.synth_cq.empty()) {
      std::vector<std::uint64_t> cq;
      cq.swap(v.synth_cq);
      for (std::uint64_t c : cq) v.sink->on_send_complete(c);
      swept = 1;
    }
    if (swept != 0) return swept;
  }

  // Scan the compiled stage table with early exit on first progress,
  // starting at the rotation cursor (fair) or the top (seed order). Each
  // source owns its skip condition via idle(); skipped stages don't count
  // as calls.
  // Hoisted locals: the table is immutable while v.mu is held, but the
  // virtual poll/idle calls are opaque to the compiler, which would
  // otherwise reload data()/size() after every stage.
  ProgressStage* const stages = v.stages.data();
  const std::size_t n = v.stages.size();
  const std::size_t start = v.fair ? v.stage_cursor : 0;
  int made = 0;
  // Two linear passes ([start,n) then [0,start)) instead of modular index
  // arithmetic per stage — the wrap cost would be paid on every iteration
  // of every wait loop.
  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t lo = pass == 0 ? start : 0;
    const std::size_t hi = pass == 0 ? n : start;
    for (std::size_t i = lo; i < hi; ++i) {
      ProgressStage& st = stages[i];
      if ((mask & st.mask) == 0) continue;
      // Speculative devirtualization (StageFastGate): in-tree stages get
      // the seed ladder's inlined skip checks; user sources take the
      // virtual idle() hop. Identical semantics either way — the tag only
      // picks how the same emptiness test is evaluated.
      switch (st.gate) {
        case StageFastGate::dtype:
          if (v.pack_engine.idle()) continue;
          break;
        case StageFastGate::coll_hooks:
          if (v.coll_hooks.empty()) continue;
          break;
        case StageFastGate::async_hooks:
          if (v.asyncs.empty()) continue;
          break;
        case StageFastGate::lmt:
          if (v.lmt.empty()) continue;
          break;
        case StageFastGate::external:
          if (st.check_idle && st.source->idle(v)) continue;
          break;
      }
      ++st.calls;
      st.source->poll(v, &made);
      if (made != 0) {
        ++st.hits;
        trace_emit(v, trace::Event::progress, -1, -1, 0, i);
        if (v.fair) {
          v.stage_cursor = static_cast<std::uint32_t>(i + 1 == n ? 0 : i + 1);
        }
        return made;
      }
    }
  }
  return made;
}

void complete_request(RequestImpl* r, Err err) {
  if (r->vci != nullptr) {
    trace_emit(*r->vci, trace::Event::complete, r->peer, r->status.tag,
               r->status.count_bytes, static_cast<std::uint64_t>(r->kind));
  }
  r->status.error = err;
  if (r->kind == ReqKind::grequest && r->greq.query_fn != nullptr) {
    r->greq.query_fn(r->greq.extra_state, &r->status);
  }
  if (r->on_complete != nullptr) {
    r->on_complete(r, r->on_complete_arg);
    r->on_complete = nullptr;
  }
  // Completion contract (request_impl.hpp): status and payload writes above
  // are ordered for pollers ONLY by this release store. The matching
  // MPX_MC_PLAIN_READ sits in Request::status().
  MPX_MC_PLAIN_WRITE(&r->status, "Request::status");
  r->complete.store(true, std::memory_order_release);
  if (r->vci != nullptr &&
      (r->kind == ReqKind::send || r->kind == ReqKind::recv ||
       r->kind == ReqKind::coll || r->kind == ReqKind::pack)) {
    r->vci->active_ops.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace core_detail

void coll_hook_start(AsyncPollFn fn, void* extra_state, const Stream& stream) {
  expects(fn != nullptr, "coll_hook_start: null poll function");
  expects(stream.valid(), "coll_hook_start: invalid stream");
  core_detail::enqueue_hook(fn, extra_state, stream, /*coll_stage=*/true);
}

int stream_progress(const Stream& stream) {
  // Not delegated to the two-arg overload: this is the wait-loop hot path
  // and would pay the validity expects() twice.
  expects(stream.valid(), "stream_progress: invalid stream");
  core_detail::Vci& v = stream.world().vci(stream.rank(), stream.vci());
  return core_detail::progress_test(v, stream.mask());
}

int stream_progress(const Stream& stream, unsigned mask) {
  expects(stream.valid(), "stream_progress: invalid stream");
  core_detail::Vci& v = stream.world().vci(stream.rank(), stream.vci());
  return core_detail::progress_test(v, mask);
}

void async_start(AsyncPollFn fn, void* extra_state, const Stream& stream,
                 AsyncThing::StateDeleter state_deleter) {
  expects(fn != nullptr, "async_start: null poll function");
  expects(stream.valid(), "async_start: invalid stream");
  core_detail::enqueue_hook(fn, extra_state, stream, /*coll_stage=*/false,
                            state_deleter);
}

namespace {

struct FnHookState {
  std::function<AsyncResult()> fn;
};

AsyncResult fn_hook_trampoline(AsyncThing& t) {
  auto* s = static_cast<FnHookState*>(t.state());
  const AsyncResult r = s->fn();
  if (r == AsyncResult::done) delete s;
  return r;
}

void fn_hook_state_deleter(void* p) { delete static_cast<FnHookState*>(p); }

}  // namespace

void async_start(std::function<AsyncResult()> fn, const Stream& stream) {
  expects(static_cast<bool>(fn), "async_start: empty callable");
  // Keep ownership until registration succeeds: async_start throws on an
  // invalid/freed stream, and the state must not leak then. Afterwards the
  // hook owns it: freed by the trampoline when the poll returns done, or by
  // the registered deleter when the hook is dropped still pending
  // (stream_free / world teardown).
  auto state = std::make_unique<FnHookState>(FnHookState{std::move(fn)});
  async_start(&fn_hook_trampoline, state.get(), stream,
              &fn_hook_state_deleter);
  state.release();
}

}  // namespace mpx
