// The collated progress engine (paper Listing 1.1) and the MPIX_Async
// runtime (§3.3). Subsystem order inside one progress call:
//
//   1. datatype engine      (async pack/unpack)
//   2. collective schedules (internal hooks registered by mpx::coll)
//   3. user async things    (MPIX_Async poll functions)
//   4. shared memory        (transport poll + LMT copy work)
//   5. netmod               (simulated NIC) — last, skipped if progress
//
// with an early exit as soon as progress is made, exactly as MPICH's
// MPIDI_progress_test does.
#include "internal.hpp"

namespace mpx {

void AsyncThing::spawn(AsyncPollFn fn, void* extra_state,
                       const Stream& stream) {
  expects(fn != nullptr && stream.valid(), "AsyncThing::spawn: bad arguments");
  spawned_.push_back(SpawnRec{fn, extra_state, stream});
}

namespace core_detail {

Vci::~Vci() {
  // Release anything still owned at world teardown: unfinished hooks,
  // never-matched unexpected messages, never-matched posted receives.
  auto drop_hooks = [](AsyncRuntime::List& list) {
    while (AsyncThing* t = list.pop_front()) delete t;
  };
  drop_hooks(asyncs);
  drop_hooks(coll_hooks);
  while (auto t = inbox_asyncs.try_pop()) delete *t;
  while (auto t = inbox_coll.try_pop()) delete *t;
  while (UnexpMsg* u = unexpected.pop_front_any()) unexp_pool.release(u);
  while (RequestImpl* r = posted.pop_any()) {
    base::Ref<RequestImpl> drop(r);  // adopt the posted-queue reference
  }
  // ~FreelistPool frees the parked UnexpMsg storage after this returns.
}

namespace {

/// Enqueue a new hook onto the target stream's mailbox. Mailboxes decouple
/// registration from the VCI lock, so spawning onto another stream from
/// inside a poll function cannot deadlock.
void enqueue_hook(AsyncPollFn fn, void* state, const Stream& s,
                  bool coll_stage) {
  Vci& v = s.world().vci(s.rank(), s.vci());
  expects(v.active.load(std::memory_order_acquire),
          "async_start: stream has been freed");
  AsyncThing* t = AsyncRuntime::make(fn, state, s);
  v.hook_count.fetch_add(1, std::memory_order_relaxed);
  (coll_stage ? v.inbox_coll : v.inbox_asyncs).push(std::move(t));
}

/// Move newly-registered hooks from a mailbox onto a poll list. The list is
/// one of v's guarded hook lists, hence the lock requirement.
void drain_inbox(Vci& v, base::MpscQueue<AsyncThing*>& inbox,
                 AsyncRuntime::List& list) MPX_REQUIRES(v.mu) {
  (void)v;
  while (auto t = inbox.try_pop()) list.push_back(*t);
}

/// Poll every hook in `list` once. A hook returning done is unlinked and
/// destroyed and counts as progress; pending hooks do not.
void poll_hooks(Vci& v, AsyncRuntime::List& list, int* made)
    MPX_REQUIRES(v.mu) {
  list.for_each_safe([&](AsyncThing* t) {
    const AsyncResult r = AsyncRuntime::fn(*t)(*t);
    if (AsyncRuntime::has_spawned(*t)) {
      // Spawned tasks are staged inside the thing and registered after
      // poll_fn returns (paper: avoids recursion / queue self-mutation).
      for (auto& rec : AsyncRuntime::take_spawned(*t)) {
        enqueue_hook(rec.fn, rec.state, rec.stream, /*coll_stage=*/false);
      }
    }
    if (r == AsyncResult::done) {
      list.erase(t);
      delete t;
      v.hook_count.fetch_sub(1, std::memory_order_relaxed);
      *made = 1;
    }
  });
}

}  // namespace

int progress_test(Vci& v, unsigned mask) {
  World& w = *v.world;
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  ++v.progress_calls;

  // Empty-stage fast path: hook_count covers linked hooks AND mailbox
  // entries (enqueue_hook increments before pushing), so when it reads zero
  // both mailbox spinlocks can be skipped outright. A racing registration
  // is picked up by a later progress call — polling may lag registration.
  if (v.hook_count.load(std::memory_order_acquire) != 0) {
    drain_inbox(v, v.inbox_coll, v.coll_hooks);
    drain_inbox(v, v.inbox_asyncs, v.asyncs);
  }

  // Each collation stage below is skipped when its work queue is provably
  // empty under `mu` — the common case for pure p2p traffic, which then
  // pays only for the transport polls.
  int made = 0;
  if ((mask & progress_dtype) != 0 && !v.pack_engine.idle()) {
    v.pack_engine.progress(&made);
    if (made != 0) {
      ++v.stage_hits[0];
      return made;
    }
  }
  if ((mask & progress_coll) != 0 && !v.coll_hooks.empty()) {
    poll_hooks(v, v.coll_hooks, &made);
    if (made != 0) {
      ++v.stage_hits[1];
      return made;
    }
  }
  if ((mask & progress_async) != 0 && !v.asyncs.empty()) {
    poll_hooks(v, v.asyncs, &made);
    if (made != 0) {
      ++v.stage_hits[2];
      return made;
    }
  }
  if ((mask & progress_shm) != 0) {
    w.shm_transport().poll(v.rank, v.id, *v.sink, &made);
    lmt_progress(v, &made);
    if (made != 0) {
      ++v.stage_hits[3];
      return made;
    }
  }
  if ((mask & progress_net) != 0) {
    w.nic().poll(v.rank, v.id, *v.sink, &made);
    if (made != 0) ++v.stage_hits[4];
  }
  return made;
}

void complete_request(RequestImpl* r, Err err) {
  if (r->vci != nullptr) {
    trace_emit(*r->vci, trace::Event::complete, r->peer, r->status.tag,
               r->status.count_bytes, static_cast<std::uint64_t>(r->kind));
  }
  r->status.error = err;
  if (r->kind == ReqKind::grequest && r->greq.query_fn != nullptr) {
    r->greq.query_fn(r->greq.extra_state, &r->status);
  }
  if (r->on_complete != nullptr) {
    r->on_complete(r, r->on_complete_arg);
    r->on_complete = nullptr;
  }
  // Completion contract (request_impl.hpp): status and payload writes above
  // are ordered for pollers ONLY by this release store. The matching
  // MPX_MC_PLAIN_READ sits in Request::status().
  MPX_MC_PLAIN_WRITE(&r->status, "Request::status");
  r->complete.store(true, std::memory_order_release);
  if (r->vci != nullptr &&
      (r->kind == ReqKind::send || r->kind == ReqKind::recv ||
       r->kind == ReqKind::coll || r->kind == ReqKind::pack)) {
    r->vci->active_ops.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace core_detail

void coll_hook_start(AsyncPollFn fn, void* extra_state, const Stream& stream) {
  expects(fn != nullptr, "coll_hook_start: null poll function");
  expects(stream.valid(), "coll_hook_start: invalid stream");
  core_detail::enqueue_hook(fn, extra_state, stream, /*coll_stage=*/true);
}

int stream_progress(const Stream& stream) {
  return stream_progress(stream, stream.mask());
}

int stream_progress(const Stream& stream, unsigned mask) {
  expects(stream.valid(), "stream_progress: invalid stream");
  core_detail::Vci& v = stream.world().vci(stream.rank(), stream.vci());
  return core_detail::progress_test(v, mask);
}

void async_start(AsyncPollFn fn, void* extra_state, const Stream& stream) {
  expects(fn != nullptr, "async_start: null poll function");
  expects(stream.valid(), "async_start: invalid stream");
  core_detail::enqueue_hook(fn, extra_state, stream, /*coll_stage=*/false);
}

namespace {

struct FnHookState {
  std::function<AsyncResult()> fn;
};

AsyncResult fn_hook_trampoline(AsyncThing& t) {
  auto* s = static_cast<FnHookState*>(t.state());
  const AsyncResult r = s->fn();
  if (r == AsyncResult::done) delete s;
  return r;
}

}  // namespace

void async_start(std::function<AsyncResult()> fn, const Stream& stream) {
  expects(static_cast<bool>(fn), "async_start: empty callable");
  // Keep ownership until registration succeeds: async_start throws on an
  // invalid/freed stream, and the state must not leak then.
  auto state = std::make_unique<FnHookState>(FnHookState{std::move(fn)});
  async_start(&fn_hook_trampoline, state.get(), stream);
  state.release();  // the hook owns it now; freed when the poll returns done
}

}  // namespace mpx
