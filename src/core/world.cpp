#include "mpx/core/world.hpp"

#include "internal.hpp"
#include "mpx/base/cvar.hpp"
#include "mpx/base/log.hpp"

namespace mpx {

using core_detail::RankCtx;
using core_detail::Vci;

WorldConfig WorldConfig::from_env(int nranks) {
  namespace b = base;
  WorldConfig c;
  c.nranks = nranks;
  c.ranks_per_node = static_cast<int>(b::cvar_int("MPX_RANKS_PER_NODE", 0));
  c.max_vcis = static_cast<int>(b::cvar_int("MPX_MAX_VCIS", 16));
  c.shm_eager_max =
      static_cast<std::size_t>(b::cvar_int("MPX_SHM_EAGER_MAX", 64 * 1024));
  c.shm_cells = static_cast<std::size_t>(b::cvar_int("MPX_SHM_CELLS", 64));
  c.shm_slot_bytes =
      static_cast<std::size_t>(b::cvar_int("MPX_SHM_SLOT_BYTES", 256));
  c.shm_deliver_batch =
      static_cast<int>(b::cvar_int("MPX_SHM_DELIVER_BATCH", 16));
  c.shm_lmt_chunk =
      static_cast<std::size_t>(b::cvar_int("MPX_SHM_LMT_CHUNK", 256 * 1024));
  c.net_lightweight_max =
      static_cast<std::size_t>(b::cvar_int("MPX_NET_LIGHTWEIGHT_MAX", 1024));
  c.net_eager_max =
      static_cast<std::size_t>(b::cvar_int("MPX_NET_EAGER_MAX", 64 * 1024));
  c.net_pipeline_min = static_cast<std::size_t>(
      b::cvar_int("MPX_NET_PIPELINE_MIN", 1024 * 1024));
  c.net_pipeline_chunk = static_cast<std::size_t>(
      b::cvar_int("MPX_NET_PIPELINE_CHUNK", 256 * 1024));
  c.net_pipeline_inflight =
      static_cast<int>(b::cvar_int("MPX_NET_PIPELINE_INFLIGHT", 4));
  c.net.alpha = b::cvar_double("MPX_NET_ALPHA", c.net.alpha);
  c.net.beta = b::cvar_double("MPX_NET_BETA", c.net.beta);
  c.net.gamma = b::cvar_double("MPX_NET_GAMMA", c.net.gamma);
  c.net.inj_beta = b::cvar_double("MPX_NET_INJ_BETA", c.net.inj_beta);
  c.use_virtual_clock = b::cvar_bool("MPX_VIRTUAL_CLOCK", false);
  c.trace_capacity =
      static_cast<std::size_t>(b::cvar_int("MPX_TRACE_CAPACITY", 0));
  c.match_bins = static_cast<int>(b::cvar_int("MPX_MATCH_BINS", 64));
  c.pool_unexp_cap =
      static_cast<int>(b::cvar_int("MPX_POOL_UNEXP_CAP", 256));
  c.wait_spin = static_cast<int>(b::cvar_int("MPX_WAIT_SPIN", 200));
  c.wait_yield = static_cast<int>(b::cvar_int("MPX_WAIT_YIELD", 32));
  return c;
}

struct World::State {
  WorldConfig cfg;
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<base::Clock> clock;
  base::VirtualClock* vclock = nullptr;  // aliases clock when virtual
  std::unique_ptr<shm::ShmTransport> shm;
  std::unique_ptr<net::Nic> nic;
  std::vector<std::unique_ptr<RankCtx>> ranks;
  std::atomic<std::int32_t> next_context_id{16};
  std::shared_ptr<core_detail::CommImpl> world_comm;
};

namespace {

// No thread-safety analysis: the guarded matcher/pool members are sized
// here before the VCI is published, when no other thread can reach it (the
// same construction-time exclusivity ~Vci relies on). Taking v->mu instead
// would acquire LockRank::vci while stream_create holds the vci-table lock
// — the reverse of the documented order.
std::unique_ptr<Vci> make_vci(World* w, int rank, int id,
                              unsigned mask) MPX_NO_THREAD_SAFETY_ANALYSIS {
  auto v = std::make_unique<Vci>();
  v->id = id;
  v->rank = rank;
  v->world = w;
  v->default_mask = mask;
  // Size the matcher and pools before the VCI is published; nobody else can
  // hold v->mu yet.
  const WorldConfig& cfg = w->config();
  const auto nbins =
      static_cast<std::size_t>(cfg.match_bins < 1 ? 1 : cfg.match_bins);
  v->posted.init(nbins);
  v->unexpected.init(nbins);
  v->unexp_pool.set_max_free(static_cast<std::size_t>(
      cfg.pool_unexp_cap < 0 ? 0 : cfg.pool_unexp_cap));
  v->sink = core_detail::make_vci_sink(*v);
  return v;
}

}  // namespace

World::World(WorldConfig cfg) : s_(std::make_unique<State>()) {
  expects(cfg.nranks >= 1, "World: nranks must be >= 1");
  expects(cfg.max_vcis >= 1, "World: max_vcis must be >= 1");
  if (cfg.ranks_per_node <= 0) cfg.ranks_per_node = cfg.nranks;
  s_->cfg = cfg;
  s_->tracer = std::make_unique<trace::Tracer>(cfg.trace_capacity);
  if (cfg.use_virtual_clock) {
    auto vc = std::make_unique<base::VirtualClock>();
    s_->vclock = vc.get();
    s_->clock = std::move(vc);
  } else {
    s_->clock = std::make_unique<base::SteadyClock>();
  }
  s_->shm = std::make_unique<shm::ShmTransport>(
      cfg.nranks, cfg.max_vcis, cfg.shm_cells, cfg.shm_slot_bytes,
      cfg.shm_deliver_batch);
  s_->nic =
      std::make_unique<net::Nic>(cfg.nranks, cfg.max_vcis, cfg.net, *s_->clock);
  s_->ranks.reserve(static_cast<std::size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r) {
    auto rc = std::make_unique<RankCtx>();
    rc->rank = r;
    rc->world = this;
    rc->vcis.push_back(make_vci(this, r, 0, progress_all));
    s_->ranks.push_back(std::move(rc));
  }
  // The world communicator: context ids 0 (p2p) and 1 (collectives).
  auto ci = std::make_shared<core_detail::CommImpl>();
  ci->world = this;
  ci->context_id = 0;
  ci->coll_context_id = 1;
  ci->group.resize(static_cast<std::size_t>(cfg.nranks));
  ci->vcis.assign(static_cast<std::size_t>(cfg.nranks), 0);
  ci->world_to_comm.resize(static_cast<std::size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r) {
    ci->group[static_cast<std::size_t>(r)] = r;
    ci->world_to_comm[static_cast<std::size_t>(r)] = r;
  }
  ci->coord = std::make_unique<core_detail::Coordinator>(cfg.nranks);
  s_->world_comm = std::move(ci);
}

std::shared_ptr<World> World::create(WorldConfig cfg) {
  return std::shared_ptr<World>(new World(std::move(cfg)));
}

World::~World() = default;

int World::size() const { return s_->cfg.nranks; }
const WorldConfig& World::config() const { return s_->cfg; }
double World::wtime() const { return s_->clock->now(); }
const base::Clock& World::clock() const { return *s_->clock; }
base::VirtualClock* World::virtual_clock() { return s_->vclock; }

Comm World::comm_world(int rank) {
  expects(rank >= 0 && rank < size(), "comm_world: rank out of range");
  return Comm(s_->world_comm, rank);
}

Stream World::null_stream(int rank) {
  expects(rank >= 0 && rank < size(), "null_stream: rank out of range");
  return Stream(this, rank, 0, progress_all);
}

Stream World::stream_create(int rank, const Info& info) {
  expects(rank >= 0 && rank < size(), "stream_create: rank out of range");
  unsigned mask = progress_all;
  if (info.get_bool("mpx_skip_netmod", false)) mask &= ~progress_net;
  if (info.get_bool("mpx_skip_shm", false)) mask &= ~progress_shm;
  if (info.get_bool("mpx_skip_dtype", false)) mask &= ~progress_dtype;
  if (info.get_bool("mpx_skip_coll", false)) mask &= ~progress_coll;

  RankCtx& rc = *s_->ranks[static_cast<std::size_t>(rank)];
  base::LockGuard<base::InstrumentedMutex> g(rc.vcis_mu);
  // Reuse a freed slot if available.
  for (std::size_t i = 1; i < rc.vcis.size(); ++i) {
    if (!rc.vcis[i]->active.load(std::memory_order_acquire)) {
      rc.vcis[i] = make_vci(this, rank, static_cast<int>(i), mask);
      return Stream(this, rank, static_cast<int>(i), mask);
    }
  }
  expects(static_cast<int>(rc.vcis.size()) < s_->cfg.max_vcis,
          "stream_create: max_vcis exhausted (raise WorldConfig::max_vcis)");
  const int id = static_cast<int>(rc.vcis.size());
  rc.vcis.push_back(make_vci(this, rank, id, mask));
  return Stream(this, rank, id, mask);
}

void World::stream_free(Stream& stream) {
  expects(stream.valid() && &stream.world() == this,
          "stream_free: stream does not belong to this world");
  expects(stream.vci() != 0, "stream_free: cannot free the null stream");
  Vci& v = vci(stream.rank(), stream.vci());
  {
    base::LockGuard<base::InstrumentedMutex> g(v.mu);
    expects(v.asyncs.empty() && v.coll_hooks.empty() && v.posted.empty() &&
                v.lmt.empty() &&
                v.active_ops.load(std::memory_order_relaxed) == 0,
            "stream_free: stream still has pending work");
#if MPX_MODEL_CHECK
    // Seeded-mutation self-test hook: reintroduce the PR 1 bug — publishing
    // reusability while still holding v.mu lets a concurrent stream_create
    // destroy the mutex mid-unlock. The mc suite must catch this as a
    // mutex-destroyed-while-held failure.
    if (mc::mut::stream_free_publish_under_lock) {
      v.active.store(false, std::memory_order_release);
      stream = Stream();
      return;
    }
#endif
  }
  // Publish reusability only AFTER the guard released v.mu: stream_create
  // deletes the Vci as soon as it observes active == false (acquire), and
  // the release store below is what orders that deletion after our unlock.
  // Storing while still holding the lock let a concurrent create destroy
  // the mutex mid-unlock (caught by the tsan preset).
  v.active.store(false, std::memory_order_release);
  stream = Stream();
}

void World::finalize_rank(int rank) {
  expects(rank >= 0 && rank < size(), "finalize_rank: rank out of range");
  RankCtx& rc = *s_->ranks[static_cast<std::size_t>(rank)];
  // Spin progress on every live VCI of this rank until quiescent (the paper:
  // "MPI_Finalize will spin progress until all async tasks complete").
  for (;;) {
    bool quiet = true;
    // Snapshot the table under its lock: stream_create may grow the vector
    // concurrently, and the Vci objects themselves are stable (unique_ptr).
    std::vector<core_detail::Vci*> vcis;
    {
      base::LockGuard<base::InstrumentedMutex> g(rc.vcis_mu);
      vcis.reserve(rc.vcis.size());
      for (const auto& v : rc.vcis) vcis.push_back(v.get());
    }
    for (std::size_t i = 0; i < vcis.size(); ++i) {
      Vci& v = *vcis[i];
      if (!v.active.load(std::memory_order_acquire)) continue;
      core_detail::progress_test(v, progress_all);
      base::LockGuard<base::InstrumentedMutex> g(v.mu);
      const bool idle =
          v.asyncs.empty() && v.coll_hooks.empty() && v.lmt.empty() &&
          v.pack_engine.idle() &&
          v.active_ops.load(std::memory_order_relaxed) == 0 &&
          v.inbox_asyncs.maybe_empty() && v.inbox_coll.maybe_empty() &&
          s_->shm->idle(rank, static_cast<int>(i)) &&
          s_->nic->idle(rank, static_cast<int>(i));
      quiet = quiet && idle;
    }
    if (quiet) return;
  }
}

core_detail::Vci* World::vci_ptr(int rank, int vci_id) const {
  RankCtx& rc = *s_->ranks[static_cast<std::size_t>(rank)];
  base::LockGuard<base::InstrumentedMutex> g(rc.vcis_mu);
  expects(vci_id >= 0 && vci_id < static_cast<int>(rc.vcis.size()),
          "vci id out of range");
  return rc.vcis[static_cast<std::size_t>(vci_id)].get();
}

base::MutexStats World::vci_lock_stats(int rank, int vci_id) const {
  return vci_ptr(rank, vci_id)->mu.stats();
}

std::uint64_t World::vci_progress_calls(int rank, int vci_id) const {
  // The table lock is released before taking the VCI lock: ranks only go up.
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  return v.progress_calls;
}

World::StageCounters World::vci_stage_counters(int rank, int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  StageCounters c;
  c.dtype = v.stage_hits[0];
  c.coll = v.stage_hits[1];
  c.async = v.stage_hits[2];
  c.shm = v.stage_hits[3];
  c.net = v.stage_hits[4];
  return c;
}

World::MatchCounters World::vci_match_counters(int rank, int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  MatchCounters c;
  c.posted = v.posted.size();
  c.unexpected = v.unexpected.size();
  return c;
}

base::PoolStats World::vci_unexp_pool_stats(int rank, int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  return v.unexp_pool.stats();
}

shm::ShmStats World::shm_stats() const { return s_->shm->stats(); }
net::NicStats World::net_stats() const { return s_->nic->stats(); }

trace::Tracer& World::tracer() { return *s_->tracer; }

bool World::same_node(int a, int b) const {
  const int rpn = s_->cfg.ranks_per_node;
  return a / rpn == b / rpn;
}

RankCtx& World::rank_ctx(int rank) {
  return *s_->ranks[static_cast<std::size_t>(rank)];
}

Vci& World::vci(int rank, int vci_id) { return *vci_ptr(rank, vci_id); }

shm::ShmTransport& World::shm_transport() { return *s_->shm; }
net::Nic& World::nic() { return *s_->nic; }

Request World::grequest_start(int rank, core_detail::GrequestFns fns) {
  expects(rank >= 0 && rank < size(), "grequest_start: rank out of range");
  return grequest_start(null_stream(rank), fns);
}

Request World::grequest_start(const Stream& stream,
                              core_detail::GrequestFns fns) {
  expects(stream.valid() && &stream.world() == this,
          "grequest_start: stream does not belong to this world");
  auto* r = new core_detail::RequestImpl(core_detail::ReqKind::grequest);
  r->world = this;
  r->vci = &vci(stream.rank(), stream.vci());
  r->self = stream.rank();
  r->greq = fns;
  return Request(base::Ref<core_detail::RequestImpl>(r));
}

void World::grequest_complete(Request& req) {
  auto* r = req.impl();
  expects(r != nullptr && r->kind == core_detail::ReqKind::grequest,
          "grequest_complete: not a generalized request");
  core_detail::complete_request(r, Err::success);
}

std::int32_t World::alloc_context_ids(int count) {
  expects(count >= 1, "alloc_context_ids: bad count");
  return s_->next_context_id.fetch_add(count, std::memory_order_relaxed);
}

}  // namespace mpx
