// World facade: configuration parsing and the thin public accessors that
// don't belong to either layer. The substance lives in control_plane.cpp
// (lifecycle + topology publication) and datapath.cpp (lock-free reads);
// world_layers.hpp defines the split.
#include "mpx/core/world.hpp"

#include "mpx/base/cvar.hpp"
#include "world_layers.hpp"

namespace mpx {

WorldConfig WorldConfig::from_env(int nranks) {
  namespace b = base;
  WorldConfig c;
  c.nranks = nranks;
  c.ranks_per_node = static_cast<int>(b::cvar_int("MPX_RANKS_PER_NODE", 0));
  c.max_vcis = static_cast<int>(b::cvar_int("MPX_MAX_VCIS", 16));
  c.shm_eager_max =
      static_cast<std::size_t>(b::cvar_int("MPX_SHM_EAGER_MAX", 64 * 1024));
  c.shm_cells = static_cast<std::size_t>(b::cvar_int("MPX_SHM_CELLS", 64));
  c.shm_slot_bytes =
      static_cast<std::size_t>(b::cvar_int("MPX_SHM_SLOT_BYTES", 256));
  c.shm_deliver_batch =
      static_cast<int>(b::cvar_int("MPX_SHM_DELIVER_BATCH", 16));
  c.shm_lmt_chunk =
      static_cast<std::size_t>(b::cvar_int("MPX_SHM_LMT_CHUNK", 256 * 1024));
  c.net_lightweight_max =
      static_cast<std::size_t>(b::cvar_int("MPX_NET_LIGHTWEIGHT_MAX", 1024));
  c.net_eager_max =
      static_cast<std::size_t>(b::cvar_int("MPX_NET_EAGER_MAX", 64 * 1024));
  c.net_pipeline_min = static_cast<std::size_t>(
      b::cvar_int("MPX_NET_PIPELINE_MIN", 1024 * 1024));
  c.net_pipeline_chunk = static_cast<std::size_t>(
      b::cvar_int("MPX_NET_PIPELINE_CHUNK", 256 * 1024));
  c.net_pipeline_inflight =
      static_cast<int>(b::cvar_int("MPX_NET_PIPELINE_INFLIGHT", 4));
  c.net.alpha = b::cvar_double("MPX_NET_ALPHA", c.net.alpha);
  c.net.beta = b::cvar_double("MPX_NET_BETA", c.net.beta);
  c.net.gamma = b::cvar_double("MPX_NET_GAMMA", c.net.gamma);
  c.net.inj_beta = b::cvar_double("MPX_NET_INJ_BETA", c.net.inj_beta);
  c.use_virtual_clock = b::cvar_bool("MPX_VIRTUAL_CLOCK", false);
  c.trace_capacity =
      static_cast<std::size_t>(b::cvar_int("MPX_TRACE_CAPACITY", 0));
  c.match_bins = static_cast<int>(b::cvar_int("MPX_MATCH_BINS", 64));
  c.pool_unexp_cap =
      static_cast<int>(b::cvar_int("MPX_POOL_UNEXP_CAP", 256));
  c.wait_spin = static_cast<int>(b::cvar_int("MPX_WAIT_SPIN", 200));
  c.wait_yield = static_cast<int>(b::cvar_int("MPX_WAIT_YIELD", 32));
  c.wait_sleep_max_us =
      static_cast<int>(b::cvar_int("MPX_WAIT_SLEEP_MAX", 64));
  c.progress_fair = b::cvar_bool("MPX_PROGRESS_FAIR", true);
  c.progress_engine.epoch_us =
      static_cast<int>(b::cvar_int("MPX_ENGINE_EPOCH_US", 500));
  c.progress_engine.max_workers =
      static_cast<int>(b::cvar_int("MPX_ENGINE_MAX_WORKERS", 2));
  c.progress_engine.promote_app_polls =
      static_cast<int>(b::cvar_int("MPX_ENGINE_PROMOTE_POLLS", 4));
  c.progress_engine.dedicate_hit_rate =
      b::cvar_double("MPX_ENGINE_DEDICATE_RATE", 0.5);
  c.progress_engine.demote_hit_rate =
      b::cvar_double("MPX_ENGINE_DEMOTE_RATE", 0.01);
  c.progress_engine.hysteresis =
      static_cast<int>(b::cvar_int("MPX_ENGINE_HYSTERESIS", 2));
  c.progress_engine.deque_capacity =
      static_cast<int>(b::cvar_int("MPX_ENGINE_DEQUE_CAP", 64));
  return c;
}

std::shared_ptr<World> World::create(WorldConfig cfg) {
  return std::shared_ptr<World>(new World(std::move(cfg)));
}

int World::size() const { return s_->ctl.cfg.nranks; }
const WorldConfig& World::config() const { return s_->ctl.cfg; }
double World::wtime() const { return s_->ctl.clock->now(); }
const base::Clock& World::clock() const { return *s_->ctl.clock; }
base::VirtualClock* World::virtual_clock() { return s_->ctl.vclock; }
trace::Tracer& World::tracer() { return *s_->ctl.tracer; }

Comm World::comm_world(int rank) {
  expects(rank >= 0 && rank < size(), "comm_world: rank out of range");
  return Comm(s_->ctl.world_comm, rank);
}

Stream World::null_stream(int rank) {
  expects(rank >= 0 && rank < size(), "null_stream: rank out of range");
  return Stream(this, rank, 0, progress_all);
}

Request World::grequest_start(int rank, core_detail::GrequestFns fns) {
  expects(rank >= 0 && rank < size(), "grequest_start: rank out of range");
  return grequest_start(null_stream(rank), fns);
}

Request World::grequest_start(const Stream& stream,
                              core_detail::GrequestFns fns) {
  expects(stream.valid() && &stream.world() == this,
          "grequest_start: stream does not belong to this world");
  auto* r = new core_detail::RequestImpl(core_detail::ReqKind::grequest);
  r->world = this;
  r->vci = &vci(stream.rank(), stream.vci());
  r->self = stream.rank();
  r->greq = fns;
  return Request(base::Ref<core_detail::RequestImpl>(r));
}

void World::grequest_complete(Request& req) {
  auto* r = req.impl();
  expects(r != nullptr && r->kind == core_detail::ReqKind::grequest,
          "grequest_complete: not a generalized request");
  core_detail::complete_request(r, Err::success);
}

}  // namespace mpx
