#include "mpx/core/world.hpp"

#include <algorithm>

#include "internal.hpp"
#include "mpx/base/cvar.hpp"
#include "mpx/base/log.hpp"
#include "mpx/transport/builtin.hpp"

namespace mpx {

using core_detail::RankCtx;
using core_detail::Vci;

WorldConfig WorldConfig::from_env(int nranks) {
  namespace b = base;
  WorldConfig c;
  c.nranks = nranks;
  c.ranks_per_node = static_cast<int>(b::cvar_int("MPX_RANKS_PER_NODE", 0));
  c.max_vcis = static_cast<int>(b::cvar_int("MPX_MAX_VCIS", 16));
  c.shm_eager_max =
      static_cast<std::size_t>(b::cvar_int("MPX_SHM_EAGER_MAX", 64 * 1024));
  c.shm_cells = static_cast<std::size_t>(b::cvar_int("MPX_SHM_CELLS", 64));
  c.shm_slot_bytes =
      static_cast<std::size_t>(b::cvar_int("MPX_SHM_SLOT_BYTES", 256));
  c.shm_deliver_batch =
      static_cast<int>(b::cvar_int("MPX_SHM_DELIVER_BATCH", 16));
  c.shm_lmt_chunk =
      static_cast<std::size_t>(b::cvar_int("MPX_SHM_LMT_CHUNK", 256 * 1024));
  c.net_lightweight_max =
      static_cast<std::size_t>(b::cvar_int("MPX_NET_LIGHTWEIGHT_MAX", 1024));
  c.net_eager_max =
      static_cast<std::size_t>(b::cvar_int("MPX_NET_EAGER_MAX", 64 * 1024));
  c.net_pipeline_min = static_cast<std::size_t>(
      b::cvar_int("MPX_NET_PIPELINE_MIN", 1024 * 1024));
  c.net_pipeline_chunk = static_cast<std::size_t>(
      b::cvar_int("MPX_NET_PIPELINE_CHUNK", 256 * 1024));
  c.net_pipeline_inflight =
      static_cast<int>(b::cvar_int("MPX_NET_PIPELINE_INFLIGHT", 4));
  c.net.alpha = b::cvar_double("MPX_NET_ALPHA", c.net.alpha);
  c.net.beta = b::cvar_double("MPX_NET_BETA", c.net.beta);
  c.net.gamma = b::cvar_double("MPX_NET_GAMMA", c.net.gamma);
  c.net.inj_beta = b::cvar_double("MPX_NET_INJ_BETA", c.net.inj_beta);
  c.use_virtual_clock = b::cvar_bool("MPX_VIRTUAL_CLOCK", false);
  c.trace_capacity =
      static_cast<std::size_t>(b::cvar_int("MPX_TRACE_CAPACITY", 0));
  c.match_bins = static_cast<int>(b::cvar_int("MPX_MATCH_BINS", 64));
  c.pool_unexp_cap =
      static_cast<int>(b::cvar_int("MPX_POOL_UNEXP_CAP", 256));
  c.wait_spin = static_cast<int>(b::cvar_int("MPX_WAIT_SPIN", 200));
  c.wait_yield = static_cast<int>(b::cvar_int("MPX_WAIT_YIELD", 32));
  c.wait_sleep_max_us =
      static_cast<int>(b::cvar_int("MPX_WAIT_SLEEP_MAX", 64));
  c.progress_fair = b::cvar_bool("MPX_PROGRESS_FAIR", true);
  c.progress_engine.epoch_us =
      static_cast<int>(b::cvar_int("MPX_ENGINE_EPOCH_US", 500));
  c.progress_engine.max_workers =
      static_cast<int>(b::cvar_int("MPX_ENGINE_MAX_WORKERS", 2));
  c.progress_engine.promote_app_polls =
      static_cast<int>(b::cvar_int("MPX_ENGINE_PROMOTE_POLLS", 4));
  c.progress_engine.dedicate_hit_rate =
      b::cvar_double("MPX_ENGINE_DEDICATE_RATE", 0.5);
  c.progress_engine.demote_hit_rate =
      b::cvar_double("MPX_ENGINE_DEMOTE_RATE", 0.01);
  c.progress_engine.hysteresis =
      static_cast<int>(b::cvar_int("MPX_ENGINE_HYSTERESIS", 2));
  c.progress_engine.deque_capacity =
      static_cast<int>(b::cvar_int("MPX_ENGINE_DEQUE_CAP", 64));
  return c;
}

struct World::State {
  WorldConfig cfg;
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<base::Clock> clock;
  base::VirtualClock* vclock = nullptr;  // aliases clock when virtual
  // Transports and the progress registry are declared BEFORE `ranks`: VCI
  // stage tables and sinks reference them, so the VCIs must die first.
  std::vector<std::unique_ptr<transport::Transport>> transports;
  /// First-match routing, compiled once: route[src * nranks + dst].
  std::vector<transport::Transport*> route;
  core_detail::ProgressRegistry registry;
  std::vector<std::unique_ptr<RankCtx>> ranks;
  std::atomic<std::int32_t> next_context_id{16};
  std::shared_ptr<core_detail::CommImpl> world_comm;
};

namespace {

// No thread-safety analysis: the guarded matcher/pool members are sized
// here before the VCI is published, when no other thread can reach it (the
// same construction-time exclusivity ~Vci relies on). Taking v->mu instead
// would acquire LockRank::vci while stream_create holds the vci-table lock
// — the reverse of the documented order.
std::unique_ptr<Vci> make_vci(World* w, int rank, int id,
                              unsigned mask) MPX_NO_THREAD_SAFETY_ANALYSIS {
  auto v = std::make_unique<Vci>();
  v->id = id;
  v->rank = rank;
  v->world = w;
  v->default_mask = mask;
  // Size the matcher and pools before the VCI is published; nobody else can
  // hold v->mu yet.
  const WorldConfig& cfg = w->config();
  const auto nbins =
      static_cast<std::size_t>(cfg.match_bins < 1 ? 1 : cfg.match_bins);
  v->posted.init(nbins);
  v->unexpected.init(nbins);
  v->unexp_pool.set_max_free(static_cast<std::size_t>(
      cfg.pool_unexp_cap < 0 ? 0 : cfg.pool_unexp_cap));
  // Compile the published registry into this VCI's stage table. The
  // source/mask halves never change afterwards; the embedded counters are
  // this VCI's own.
  v->stages = w->progress_registry().compile();
  v->fair = cfg.progress_fair;
  v->sink = core_detail::make_vci_sink(*v);
  return v;
}

}  // namespace

World::World(WorldConfig cfg) : s_(std::make_unique<State>()) {
  expects(cfg.nranks >= 1, "World: nranks must be >= 1");
  expects(cfg.max_vcis >= 1, "World: max_vcis must be >= 1");
  if (cfg.ranks_per_node <= 0) cfg.ranks_per_node = cfg.nranks;
  s_->cfg = cfg;
  s_->tracer = std::make_unique<trace::Tracer>(cfg.trace_capacity);
  if (cfg.use_virtual_clock) {
    auto vc = std::make_unique<base::VirtualClock>();
    s_->vclock = vc.get();
    s_->clock = std::move(vc);
  } else {
    s_->clock = std::make_unique<base::SteadyClock>();
  }
  // Transport list, in routing order: extras first (they may claim rank
  // pairs ahead of the builtins), then shm, then the NIC catch-all.
  for (const auto& make : s_->cfg.extra_transports) {
    auto t = make(*this);
    expects(t != nullptr, "World: extra_transports factory returned null");
    s_->transports.push_back(std::move(t));
  }
  for (auto& t : transport::make_builtin_transports(s_->cfg, *s_->clock)) {
    s_->transports.push_back(std::move(t));
  }
  // Compile first-match routing into a flat table (reaches() must be pure).
  s_->route.resize(static_cast<std::size_t>(cfg.nranks) * cfg.nranks, nullptr);
  for (int src = 0; src < cfg.nranks; ++src) {
    for (int dst = 0; dst < cfg.nranks; ++dst) {
      for (const auto& t : s_->transports) {
        if (t->reaches(src, dst)) {
          s_->route[static_cast<std::size_t>(src) * cfg.nranks + dst] = t.get();
          break;
        }
      }
      expects(s_->route[static_cast<std::size_t>(src) * cfg.nranks + dst] !=
                  nullptr,
              "World: no transport reaches a rank pair");
    }
  }
  // Progress registry: in-tree sources in Listing 1.1 order, then
  // link-time static sources (e.g. the collective schedule executor), then
  // extras, then one poll stage per transport. Published before the first
  // make_vci so every VCI compiles the same immutable stage order.
  core_detail::register_builtin_sources(s_->registry);
  for (const auto make : core_detail::static_source_factories()) {
    auto src = make(*this);
    expects(src != nullptr, "World: static source factory returned null");
    s_->registry.add(std::move(src));
  }
  for (const auto& make : s_->cfg.extra_sources) {
    auto src = make(*this);
    expects(src != nullptr, "World: extra_sources factory returned null");
    s_->registry.add(std::move(src));
  }
  std::vector<transport::Transport*> tlist;
  tlist.reserve(s_->transports.size());
  for (const auto& t : s_->transports) tlist.push_back(t.get());
  core_detail::register_transport_sources(s_->registry, tlist);
  s_->registry.publish();
  s_->ranks.reserve(static_cast<std::size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r) {
    auto rc = std::make_unique<RankCtx>();
    rc->rank = r;
    rc->world = this;
    rc->slots = std::vector<mc::atomic<core_detail::Vci*>>(
        static_cast<std::size_t>(cfg.max_vcis));
    rc->slots[0].store(make_vci(this, r, 0, progress_all).release(),
                       std::memory_order_release);
    rc->vci_count.store(1, std::memory_order_release);
    s_->ranks.push_back(std::move(rc));
  }
  // The world communicator: context ids 0 (p2p) and 1 (collectives).
  auto ci = std::make_shared<core_detail::CommImpl>();
  ci->world = this;
  ci->context_id = 0;
  ci->coll_context_id = 1;
  ci->group.resize(static_cast<std::size_t>(cfg.nranks));
  ci->vcis.assign(static_cast<std::size_t>(cfg.nranks), 0);
  ci->world_to_comm.resize(static_cast<std::size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r) {
    ci->group[static_cast<std::size_t>(r)] = r;
    ci->world_to_comm[static_cast<std::size_t>(r)] = r;
  }
  ci->coord = std::make_unique<core_detail::Coordinator>(cfg.nranks);
  s_->world_comm = std::move(ci);
}

std::shared_ptr<World> World::create(WorldConfig cfg) {
  return std::shared_ptr<World>(new World(std::move(cfg)));
}

World::~World() = default;

int World::size() const { return s_->cfg.nranks; }
const WorldConfig& World::config() const { return s_->cfg; }
double World::wtime() const { return s_->clock->now(); }
const base::Clock& World::clock() const { return *s_->clock; }
base::VirtualClock* World::virtual_clock() { return s_->vclock; }

Comm World::comm_world(int rank) {
  expects(rank >= 0 && rank < size(), "comm_world: rank out of range");
  return Comm(s_->world_comm, rank);
}

Stream World::null_stream(int rank) {
  expects(rank >= 0 && rank < size(), "null_stream: rank out of range");
  return Stream(this, rank, 0, progress_all);
}

Stream World::stream_create(int rank, const Info& info) {
  expects(rank >= 0 && rank < size(), "stream_create: rank out of range");
  unsigned mask = progress_all;
  if (info.get_bool("mpx_skip_netmod", false)) mask &= ~progress_net;
  if (info.get_bool("mpx_skip_shm", false)) mask &= ~progress_shm;
  if (info.get_bool("mpx_skip_dtype", false)) mask &= ~progress_dtype;
  if (info.get_bool("mpx_skip_coll", false)) mask &= ~progress_coll;

  RankCtx& rc = *s_->ranks[static_cast<std::size_t>(rank)];
  base::LockGuard<base::InstrumentedMutex> g(rc.vcis_mu);
  // Reuse a freed slot if available. The release store publishes the fresh
  // Vci to lock-free readers only after it is fully constructed.
  const std::uint32_t n = rc.vci_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 1; i < n; ++i) {
    Vci* old = rc.slots[i].load(std::memory_order_acquire);
    if (!old->active.load(std::memory_order_acquire)) {
      auto fresh = make_vci(this, rank, static_cast<int>(i), mask);
      delete old;
      rc.slots[i].store(fresh.release(), std::memory_order_release);
      return Stream(this, rank, static_cast<int>(i), mask);
    }
  }
  expects(static_cast<int>(n) < s_->cfg.max_vcis,
          "stream_create: max_vcis exhausted (raise WorldConfig::max_vcis)");
  const int id = static_cast<int>(n);
  rc.slots[n].store(make_vci(this, rank, id, mask).release(),
                    std::memory_order_release);
  rc.vci_count.store(n + 1, std::memory_order_release);
  return Stream(this, rank, id, mask);
}

void World::stream_free(Stream& stream) {
  expects(stream.valid() && &stream.world() == this,
          "stream_free: stream does not belong to this world");
  expects(stream.vci() != 0, "stream_free: cannot free the null stream");
  Vci& v = vci(stream.rank(), stream.vci());
  {
    base::LockGuard<base::InstrumentedMutex> g(v.mu);
    expects(v.asyncs.empty() && v.coll_hooks.empty() && v.posted.empty() &&
                v.lmt.empty() &&
                v.active_ops.load(std::memory_order_relaxed) == 0,
            "stream_free: stream still has pending work");
    for (const core_detail::ProgressStage& st : v.stages) {
      expects(st.source->quiescent(v),
              "stream_free: a progress source still has pending work");
    }
#if MPX_MODEL_CHECK
    // Seeded-mutation self-test hook: reintroduce the PR 1 bug — publishing
    // reusability while still holding v.mu lets a concurrent stream_create
    // destroy the mutex mid-unlock. The mc suite must catch this as a
    // mutex-destroyed-while-held failure.
    if (mc::mut::stream_free_publish_under_lock) {
      v.active.store(false, std::memory_order_release);
      stream = Stream();
      return;
    }
#endif
  }
  // Publish reusability only AFTER the guard released v.mu: stream_create
  // deletes the Vci as soon as it observes active == false (acquire), and
  // the release store below is what orders that deletion after our unlock.
  // Storing while still holding the lock let a concurrent create destroy
  // the mutex mid-unlock (caught by the tsan preset).
  v.active.store(false, std::memory_order_release);
  stream = Stream();
}

void World::finalize_rank(int rank) {
  expects(rank >= 0 && rank < size(), "finalize_rank: rank out of range");
  RankCtx& rc = *s_->ranks[static_cast<std::size_t>(rank)];
  // Spin progress on every live VCI of this rank until quiescent (the paper:
  // "MPI_Finalize will spin progress until all async tasks complete").
  for (;;) {
    bool quiet = true;
    // Re-read the published length each pass: stream_create may grow the
    // table concurrently (slot storage is fixed, so no reallocation races).
    const std::uint32_t nvcis = rc.vci_count.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < nvcis; ++i) {
      Vci& v = *rc.slots[i].load(std::memory_order_acquire);
      if (!v.active.load(std::memory_order_acquire)) continue;
      core_detail::progress_test(v, progress_all);
      base::LockGuard<base::InstrumentedMutex> g(v.mu);
      bool idle =
          v.asyncs.empty() && v.coll_hooks.empty() && v.lmt.empty() &&
          v.pack_engine.idle() &&
          v.active_ops.load(std::memory_order_relaxed) == 0 &&
          v.inbox_asyncs.maybe_empty() && v.inbox_coll.maybe_empty();
      // Registered sources may hold deferred work the member lists above
      // don't see (e.g. a compiled collective schedule whose requests all
      // completed but whose local reduce tail hasn't run yet).
      for (const core_detail::ProgressStage& st : v.stages) {
        if (!idle) break;
        idle = st.source->quiescent(v);
      }
      for (const auto& t : s_->transports) {
        if (!idle) break;
        idle = t->idle(rank, static_cast<int>(i));
      }
      quiet = quiet && idle;
    }
    if (quiet) return;
  }
}

core_detail::Vci* World::vci_ptr(int rank, int vci_id) const {
  // Lock-free: two acquire loads on the progress hot path (wait/test loops
  // resolve the VCI on every call). Writers serialize on rc.vcis_mu and
  // publish slots/count with release stores.
  RankCtx& rc = *s_->ranks[static_cast<std::size_t>(rank)];
  const std::uint32_t n = rc.vci_count.load(std::memory_order_acquire);
  expects(vci_id >= 0 && static_cast<std::uint32_t>(vci_id) < n,
          "vci id out of range");
  return rc.slots[static_cast<std::size_t>(vci_id)].load(
      std::memory_order_acquire);
}

base::MutexStats World::vci_lock_stats(int rank, int vci_id) const {
  return vci_ptr(rank, vci_id)->mu.stats();
}

std::uint64_t World::vci_progress_calls(int rank, int vci_id) const {
  // The table lock is released before taking the VCI lock: ranks only go up.
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  return v.progress_calls;
}

World::StageCounters World::vci_stage_counters(int rank, int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  StageCounters c;
  for (const core_detail::ProgressStage& st : v.stages) {
    switch (st.mask) {
      case progress_dtype: c.dtype += st.hits; break;
      case progress_coll: c.coll += st.hits; break;
      case progress_async: c.async += st.hits; break;
      case progress_shm: c.shm += st.hits; break;
      case progress_net: c.net += st.hits; break;
      default: break;  // progress_user stages: vci_stage_table only
    }
  }
  return c;
}

std::vector<World::StageCounter> World::vci_stage_table(int rank,
                                                        int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  std::vector<StageCounter> out;
  out.reserve(v.stages.size());
  for (const core_detail::ProgressStage& st : v.stages) {
    out.push_back(StageCounter{st.source->name(), st.mask, st.calls, st.hits});
  }
  return out;
}

World::WaitRungCounters World::vci_wait_rungs(int rank, int vci_id) const {
  // Lock-free like the counters themselves: rungs are relaxed accounting,
  // not synchronization.
  const core_detail::WaitLadderCounters::Snapshot s =
      vci_ptr(rank, vci_id)->wait_rungs.snapshot();
  return WaitRungCounters{s.spin, s.yield, s.sleep};
}

std::int64_t World::vci_active_ops(int rank, int vci_id) const {
  return vci_ptr(rank, vci_id)->active_ops.load(std::memory_order_relaxed);
}

World::MatchCounters World::vci_match_counters(int rank, int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  MatchCounters c;
  c.posted = v.posted.size();
  c.unexpected = v.unexpected.size();
  return c;
}

base::PoolStats World::vci_unexp_pool_stats(int rank, int vci_id) const {
  Vci& v = *vci_ptr(rank, vci_id);
  base::LockGuard<base::InstrumentedMutex> g(v.mu);
  return v.unexp_pool.stats();
}

std::size_t World::transport_count() const { return s_->transports.size(); }

transport::Transport& World::transport_at(std::size_t i) const {
  expects(i < s_->transports.size(), "transport_at: index out of range");
  return *s_->transports[i];
}

transport::Transport* World::find_transport(std::string_view name) const {
  for (const auto& t : s_->transports) {
    if (name == t->name()) return t.get();
  }
  return nullptr;
}

transport::Transport& World::route(int src, int dst) const {
  return *s_->route[static_cast<std::size_t>(src) * s_->cfg.nranks + dst];
}

const core_detail::ProgressRegistry& World::progress_registry() const {
  return s_->registry;
}

trace::Tracer& World::tracer() { return *s_->tracer; }

bool World::same_node(int a, int b) const {
  const int rpn = s_->cfg.ranks_per_node;
  return a / rpn == b / rpn;
}

RankCtx& World::rank_ctx(int rank) {
  return *s_->ranks[static_cast<std::size_t>(rank)];
}

Vci& World::vci(int rank, int vci_id) { return *vci_ptr(rank, vci_id); }

Request World::grequest_start(int rank, core_detail::GrequestFns fns) {
  expects(rank >= 0 && rank < size(), "grequest_start: rank out of range");
  return grequest_start(null_stream(rank), fns);
}

Request World::grequest_start(const Stream& stream,
                              core_detail::GrequestFns fns) {
  expects(stream.valid() && &stream.world() == this,
          "grequest_start: stream does not belong to this world");
  auto* r = new core_detail::RequestImpl(core_detail::ReqKind::grequest);
  r->world = this;
  r->vci = &vci(stream.rank(), stream.vci());
  r->self = stream.rank();
  r->greq = fns;
  return Request(base::Ref<core_detail::RequestImpl>(r));
}

void World::grequest_complete(Request& req) {
  auto* r = req.impl();
  expects(r != nullptr && r->kind == core_detail::ReqKind::grequest,
          "grequest_complete: not a generalized request");
  core_detail::complete_request(r, Err::success);
}

std::int32_t World::alloc_context_ids(int count) {
  expects(count >= 1, "alloc_context_ids: bad count");
  return s_->next_context_id.fetch_add(count, std::memory_order_relaxed);
}

}  // namespace mpx
