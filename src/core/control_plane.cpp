// World's control plane: construction, stream lifecycle, context-id
// allocation, transport ownership, and — the part everything else here
// exists to serve — topology publication with the epoch-fenced swap
// (fence -> drain -> cutover) that re-routes a rank pair mid-traffic
// without losing, duplicating, or reordering a single message. See
// world_layers.hpp for the layer split and topology.hpp for the
// publication protocol the mc suite explores.
#include "world_layers.hpp"

#include "mpx/base/cvar.hpp"
#include "mpx/transport/builtin.hpp"

namespace mpx {

using core_detail::Datapath;
using core_detail::RankCtx;
using core_detail::TopologySnapshot;
using core_detail::Vci;

namespace {

/// Compile first-match routing over the ordered transport list into flat
/// (untagged) snapshot entries. reaches() must be pure — the table is the
/// only place it is consulted.
std::vector<std::uintptr_t> compile_route(
    const std::vector<transport::Transport*>& ts, int nranks) {
  std::vector<std::uintptr_t> route(
      static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks), 0);
  for (int src = 0; src < nranks; ++src) {
    for (int dst = 0; dst < nranks; ++dst) {
      const std::size_t idx =
          static_cast<std::size_t>(src) * static_cast<std::size_t>(nranks) +
          static_cast<std::size_t>(dst);
      for (transport::Transport* t : ts) {
        if (t->reaches(src, dst)) {
          route[idx] = reinterpret_cast<std::uintptr_t>(t);
          break;
        }
      }
      expects(route[idx] != 0, "World: no transport reaches a rank pair");
    }
  }
  return route;
}

/// Writer-side grace period: after a publication at `epoch`, wait until no
/// VCI can still touch an older snapshot (topology.hpp). The vci-table
/// lock-pass per rank doubles as the creation fence: a VCI created after
/// it happens-after the publication (vcis_mu release/acquire), so its
/// first pin must load the successor; a VCI created before is in the
/// collected list. Inactive VCIs cannot pin (every pin site runs on a live
/// stream) and are skipped — the same lifetime contract finalize_rank
/// already relies on.
void grace_period(Datapath& dp, std::uint64_t epoch) {
  for (const auto& rcp : dp.ranks) {
    RankCtx& rc = *rcp;
    std::vector<Vci*> live;
    {
      base::LockGuard<base::InstrumentedMutex> g(rc.vcis_mu);
      const std::uint32_t n = rc.vci_count.load(std::memory_order_acquire);
      live.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        Vci* v = rc.slots[i].load(std::memory_order_acquire);
        if (v != nullptr && v->active.load(std::memory_order_acquire)) {
          live.push_back(v);
        }
      }
    }
    for (Vci* v : live) {
      core_detail::topology_quiesce(v->topo_epoch, epoch, v->mu);
    }
  }
}

}  // namespace

World::World(WorldConfig cfg) : s_(std::make_unique<State>()) {
  expects(cfg.nranks >= 1, "World: nranks must be >= 1");
  expects(cfg.max_vcis >= 1, "World: max_vcis must be >= 1");
  if (cfg.ranks_per_node <= 0) cfg.ranks_per_node = cfg.nranks;
  core_detail::ControlPlane& ctl = s_->ctl;
  Datapath& dp = s_->dp;
  ctl.cfg = cfg;
  ctl.tracer = std::make_unique<trace::Tracer>(cfg.trace_capacity);
  if (cfg.use_virtual_clock) {
    auto vc = std::make_unique<base::VirtualClock>();
    ctl.vclock = vc.get();
    ctl.clock = std::move(vc);
  } else {
    ctl.clock = std::make_unique<base::SteadyClock>();
  }
  // Transport list, in routing order: extras first (they may claim rank
  // pairs ahead of the builtins), then shm, then the NIC catch-all.
  for (const auto& make : ctl.cfg.extra_transports) {
    auto t = make(*this);
    expects(t != nullptr, "World: extra_transports factory returned null");
    ctl.transports.push_back(std::move(t));
  }
  for (auto& t : transport::make_builtin_transports(ctl.cfg, *ctl.clock)) {
    ctl.transports.push_back(std::move(t));
  }
  // The construction-time TopologySnapshot (epoch 1). No readers exist
  // yet, so install() needs no grace period.
  {
    auto snap = std::make_unique<TopologySnapshot>();
    snap->nranks = cfg.nranks;
    snap->ranks_per_node = cfg.ranks_per_node;
    snap->transports.reserve(ctl.transports.size());
    for (const auto& t : ctl.transports) snap->transports.push_back(t.get());
    snap->route = compile_route(snap->transports, cfg.nranks);
    dp.pair_inflight = std::vector<mc::atomic<std::int64_t>>(
        static_cast<std::size_t>(cfg.nranks) *
        static_cast<std::size_t>(cfg.nranks));
    snap->pair_inflight = dp.pair_inflight.data();
    {
      base::LockGuard<base::InstrumentedMutex> g(ctl.mu);
      snap->epoch = ctl.next_epoch++;
    }
    dp.topo.install(snap.release());
  }
  // Progress registry: in-tree sources in Listing 1.1 order, then
  // link-time static sources (e.g. the collective schedule executor), then
  // extras, then one poll stage per transport. Published before the first
  // make_vci so every VCI compiles the same immutable stage order.
  core_detail::register_builtin_sources(ctl.registry);
  for (const auto make : core_detail::static_source_factories()) {
    auto src = make(*this);
    expects(src != nullptr, "World: static source factory returned null");
    ctl.registry.add(std::move(src));
  }
  for (const auto& make : ctl.cfg.extra_sources) {
    auto src = make(*this);
    expects(src != nullptr, "World: extra_sources factory returned null");
    ctl.registry.add(std::move(src));
  }
  std::vector<transport::Transport*> tlist;
  tlist.reserve(ctl.transports.size());
  for (const auto& t : ctl.transports) tlist.push_back(t.get());
  core_detail::register_transport_sources(ctl.registry, tlist);
  ctl.registry.publish();
  dp.ranks.reserve(static_cast<std::size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r) {
    auto rc = std::make_unique<RankCtx>();
    rc->rank = r;
    rc->world = this;
    rc->slots = std::vector<mc::atomic<Vci*>>(
        static_cast<std::size_t>(cfg.max_vcis));
    rc->slots[0].store(
        core_detail::make_vci(this, r, 0, progress_all).release(),
        std::memory_order_release);
    rc->vci_count.store(1, std::memory_order_release);
    dp.ranks.push_back(std::move(rc));
  }
  // The world communicator: context ids 0 (p2p) and 1 (collectives).
  auto ci = std::make_shared<core_detail::CommImpl>();
  ci->world = this;
  ci->context_id = 0;
  ci->coll_context_id = 1;
  ci->group.resize(static_cast<std::size_t>(cfg.nranks));
  ci->vcis.assign(static_cast<std::size_t>(cfg.nranks), 0);
  ci->world_to_comm.resize(static_cast<std::size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r) {
    ci->group[static_cast<std::size_t>(r)] = r;
    ci->world_to_comm[static_cast<std::size_t>(r)] = r;
  }
  ci->coord = std::make_unique<core_detail::Coordinator>(cfg.nranks);
  ctl.world_comm = std::move(ci);
}

World::~World() {
  // Preserve the seed's teardown order across the layer split: the world
  // communicator first, then the datapath (VCIs), then the control plane's
  // registry and transports (State member order handles the rest).
  s_->ctl.world_comm.reset();
}

Stream World::stream_create(int rank, const Info& info) {
  expects(rank >= 0 && rank < size(), "stream_create: rank out of range");
  unsigned mask = progress_all;
  if (info.get_bool("mpx_skip_netmod", false)) mask &= ~progress_net;
  if (info.get_bool("mpx_skip_shm", false)) mask &= ~progress_shm;
  if (info.get_bool("mpx_skip_dtype", false)) mask &= ~progress_dtype;
  if (info.get_bool("mpx_skip_coll", false)) mask &= ~progress_coll;

  RankCtx& rc = *s_->dp.ranks[static_cast<std::size_t>(rank)];
  base::LockGuard<base::InstrumentedMutex> g(rc.vcis_mu);
  // Reuse a freed slot if available. The release store publishes the fresh
  // Vci to lock-free readers only after it is fully constructed.
  const std::uint32_t n = rc.vci_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 1; i < n; ++i) {
    Vci* old = rc.slots[i].load(std::memory_order_acquire);
    if (!old->active.load(std::memory_order_acquire)) {
      auto fresh = core_detail::make_vci(this, rank, static_cast<int>(i), mask);
      delete old;
      rc.slots[i].store(fresh.release(), std::memory_order_release);
      return Stream(this, rank, static_cast<int>(i), mask);
    }
  }
  expects(static_cast<int>(n) < s_->ctl.cfg.max_vcis,
          "stream_create: max_vcis exhausted (raise WorldConfig::max_vcis)");
  const int id = static_cast<int>(n);
  rc.slots[n].store(core_detail::make_vci(this, rank, id, mask).release(),
                    std::memory_order_release);
  rc.vci_count.store(n + 1, std::memory_order_release);
  return Stream(this, rank, id, mask);
}

void World::stream_free(Stream& stream) {
  expects(stream.valid() && &stream.world() == this,
          "stream_free: stream does not belong to this world");
  expects(stream.vci() != 0, "stream_free: cannot free the null stream");
  Vci& v = vci(stream.rank(), stream.vci());
  {
    base::LockGuard<base::InstrumentedMutex> g(v.mu);
    expects(v.asyncs.empty() && v.coll_hooks.empty() && v.posted.empty() &&
                v.lmt.empty() && v.fence_parked.empty() &&
                v.synth_cq.empty() &&
                v.active_ops.load(std::memory_order_relaxed) == 0,
            "stream_free: stream still has pending work");
    for (const core_detail::ProgressStage& st : v.stages) {
      expects(st.source->quiescent(v),
              "stream_free: a progress source still has pending work");
    }
#if MPX_MODEL_CHECK
    // Seeded-mutation self-test hook: reintroduce the PR 1 bug — publishing
    // reusability while still holding v.mu lets a concurrent stream_create
    // destroy the mutex mid-unlock. The mc suite must catch this as a
    // mutex-destroyed-while-held failure.
    if (mc::mut::stream_free_publish_under_lock) {
      v.active.store(false, std::memory_order_release);
      stream = Stream();
      return;
    }
#endif
  }
  // Publish reusability only AFTER the guard released v.mu: stream_create
  // deletes the Vci as soon as it observes active == false (acquire), and
  // the release store below is what orders that deletion after our unlock.
  // Storing while still holding the lock let a concurrent create destroy
  // the mutex mid-unlock (caught by the tsan preset).
  v.active.store(false, std::memory_order_release);
  stream = Stream();
}

void World::finalize_rank(int rank) {
  expects(rank >= 0 && rank < size(), "finalize_rank: rank out of range");
  RankCtx& rc = *s_->dp.ranks[static_cast<std::size_t>(rank)];
  // Spin progress on every live VCI of this rank until quiescent (the paper:
  // "MPI_Finalize will spin progress until all async tasks complete").
  for (;;) {
    bool quiet = true;
    // Re-read the published length each pass: stream_create may grow the
    // table concurrently (slot storage is fixed, so no reallocation races).
    const std::uint32_t nvcis = rc.vci_count.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < nvcis; ++i) {
      Vci& v = *rc.slots[i].load(std::memory_order_acquire);
      if (!v.active.load(std::memory_order_acquire)) continue;
      core_detail::progress_test(v, progress_all);
      base::LockGuard<base::InstrumentedMutex> g(v.mu);
      bool idle =
          v.asyncs.empty() && v.coll_hooks.empty() && v.lmt.empty() &&
          v.fence_parked.empty() && v.synth_cq.empty() &&
          v.pack_engine.idle() &&
          v.active_ops.load(std::memory_order_relaxed) == 0 &&
          v.inbox_asyncs.maybe_empty() && v.inbox_coll.maybe_empty();
      // Registered sources may hold deferred work the member lists above
      // don't see (e.g. a compiled collective schedule whose requests all
      // completed but whose local reduce tail hasn't run yet).
      for (const core_detail::ProgressStage& st : v.stages) {
        if (!idle) break;
        idle = st.source->quiescent(v);
      }
      for (const auto& t : s_->ctl.transports) {
        if (!idle) break;
        idle = t->idle(rank, static_cast<int>(i));
      }
      quiet = quiet && idle;
    }
    if (quiet) return;
  }
}

std::size_t World::transport_count() const {
  return s_->ctl.transports.size();
}

transport::Transport& World::transport_at(std::size_t i) const {
  expects(i < s_->ctl.transports.size(), "transport_at: index out of range");
  return *s_->ctl.transports[i];
}

transport::Transport* World::find_transport(std::string_view name) const {
  for (const auto& t : s_->ctl.transports) {
    if (name == t->name()) return t.get();
  }
  return nullptr;
}

std::int32_t World::alloc_context_ids(int count) {
  expects(count >= 1, "alloc_context_ids: bad count");
  return s_->ctl.next_context_id.fetch_add(count, std::memory_order_relaxed);
}

void World::swap_topology_for_test(int a, int b, transport::Transport& t) {
  expects(a >= 0 && a < size() && b >= 0 && b < size() && a != b,
          "swap_topology: bad rank pair");
  expects(t.reaches(a, b) && t.reaches(b, a),
          "swap_topology: transport does not reach the pair");
  core_detail::ControlPlane& ctl = s_->ctl;
  Datapath& dp = s_->dp;
  bool owned = false;
  for (const auto& u : ctl.transports) owned = owned || u.get() == &t;
  expects(owned, "swap_topology: transport not registered with this world");

  // One swap at a time; also serializes against any future control-plane
  // mutation. Rank control (50) < vci (100): driving progress below while
  // holding this lock is rank-legal.
  base::LockGuard<base::InstrumentedMutex> g(ctl.mu);

  // Publish a successor snapshot whose (a,b)/(b,a) entries carry `t`,
  // fenced or not, then run the grace period and reclaim the predecessor.
  const auto publish_pair = [&](bool fence) {
    const TopologySnapshot* cur = dp.topo.acquire();
    auto next = std::make_unique<TopologySnapshot>(*cur);
    next->epoch = ctl.next_epoch++;
    const std::uintptr_t entry =
        reinterpret_cast<std::uintptr_t>(&t) |
        (fence ? TopologySnapshot::kFenceBit : std::uintptr_t{0});
    next->route[next->pair_index(a, b)] = entry;
    next->route[next->pair_index(b, a)] = entry;
    const std::uint64_t epoch = next->epoch;
    const TopologySnapshot* prev = dp.topo.publish(next.release());
    grace_period(dp, epoch);
    delete prev;
  };

  // Drive progress on every live VCI of `rank` once (deliveries, CQ
  // events, LMT copies — anything the drain below is waiting on).
  const auto drive = [&](int rank) {
    RankCtx& rc = *dp.ranks[static_cast<std::size_t>(rank)];
    const std::uint32_t n = rc.vci_count.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < n; ++i) {
      Vci* v = rc.slots[i].load(std::memory_order_acquire);
      if (v != nullptr && v->active.load(std::memory_order_acquire)) {
        core_detail::progress_test(*v, progress_all);
      }
    }
  };
  const auto pair_count = [&](int src, int dst) {
    return dp.pair_inflight[static_cast<std::size_t>(src) * ctl.cfg.nranks +
                            static_cast<std::size_t>(dst)]
        .load(std::memory_order_acquire);
  };

  // Phase 1 — FENCE: after this publication's grace period, every send for
  // the pair parks (in order) instead of injecting, and protocol selection
  // already sees the new carrier's caps/limits. The in-flight counters can
  // only fall: increments happened-before the grace period's v.mu handoff.
  publish_pair(/*fence=*/true);

  // Phase 2 — DRAIN: deliver everything still riding the old carrier.
  // Replies the deliveries generate (CTS/ACK/refilled pipeline chunks) park
  // behind the fence, so the counters reach zero; polling both endpoints
  // from this thread is what moves them. A virtual clock must be advanced
  // or the simulated NIC's delivery deadlines never come due.
  while (pair_count(a, b) != 0 || pair_count(b, a) != 0) {
    drive(a);
    drive(b);
    if (ctl.vclock != nullptr) ctl.vclock->advance(1e-6);
  }

  // Phase 3 — CUTOVER: unfence. Each VCI's next progress call flushes its
  // parked sends, oldest first, onto the new carrier — per-pair FIFO holds
  // because every pre-fence message was delivered in phase 2 and parked
  // order is send order.
  publish_pair(/*fence=*/false);
}

}  // namespace mpx
