// src/core/internal.hpp
//
// Core-internal structures: VCIs, rank contexts, communicator impls, the
// unexpected-message queue, and the helper APIs shared by the progress
// engine, the protocol layer, and the public wrappers.
//
// LOCKING MODEL. Each VCI owns one InstrumentedMutex (`mu`, a recursive
// mutex, LockRank::vci). Every state mutation of the VCI — posting receives,
// matching, polling hooks, progressing transports for that endpoint —
// happens under it. Operations issued from inside poll callbacks re-enter
// the same lock (hence recursive), matching MPICH's owner-tracked VCI locks.
// Transports have their own fine-grained spinlocks; lock order is always
// control -> VCI -> vci-table -> transport and never the reverse (the
// control-plane mutex ranks BELOW the VCI locks because topology swaps
// drive progress — and therefore take VCI locks — while holding it) —
// enforced at runtime by the lock-rank validator (base/lock_rank.hpp) and
// documented in docs/architecture.md ("Threading model & lock hierarchy",
// "Control plane vs datapath"). Fields guarded by `mu` carry MPX_GUARDED_BY
// annotations checked by clang -Wthread-safety (the `thread-safety` CMake
// preset).
#pragma once

#include <any>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "matching.hpp"
#include "mpx/base/instrumented_mutex.hpp"
#include "mpx/core/comm_ext.hpp"
#include "mpx/base/intrusive.hpp"
#include "mpx/base/lock_rank.hpp"
#include "mpx/base/pool.hpp"
#include "mpx/base/queue.hpp"
#include "mpx/base/thread_safety.hpp"
#include "mpx/core/async.hpp"
#include "mpx/core/detail/request_impl.hpp"
#include "mpx/core/progress_source.hpp"
#include "mpx/core/topology.hpp"
#include "mpx/core/wait_policy.hpp"
#include "mpx/core/world.hpp"
#include "mpx/dtype/pack_engine.hpp"
#include "mpx/dtype/segment.hpp"
#include "mpx/transport/msg.hpp"
#include "mpx/transport/transport.hpp"

namespace mpx::core_detail {

/// Accessor shim for AsyncThing's private internals (declared friend).
struct AsyncRuntime {
  using List = base::IntrusiveList<AsyncThing, &AsyncThing::hook_>;

  static AsyncThing* make(AsyncPollFn fn, void* state, const Stream& s,
                          AsyncThing::StateDeleter deleter = nullptr) {
    auto* t = new AsyncThing();
    t->fn_ = fn;
    t->state_ = state;
    t->stream_ = s;
    t->deleter_ = deleter;
    return t;
  }
  static AsyncPollFn fn(AsyncThing& t) { return t.fn_; }
  /// poll_fn returned done: it already released the state (paper contract),
  /// so ~AsyncThing must not run the deleter a second time.
  static void disarm(AsyncThing& t) { t.deleter_ = nullptr; }
  static std::vector<AsyncThing::SpawnRec> take_spawned(AsyncThing& t) {
    return std::move(t.spawned_);
  }
  static bool has_spawned(const AsyncThing& t) { return !t.spawned_.empty(); }
};

/// Receiver-side large-message copy work for the shared-memory LMT path:
/// copies `total` bytes from the exporter's buffer into the receive buffer
/// one chunk per progress poll, then acks the sender.
struct LmtWork {
  base::Ref<RequestImpl> rreq;
  const std::byte* src = nullptr;
  std::uint64_t total = 0;
  std::uint64_t done = 0;
  std::unique_ptr<dtype::Segment> seg;  ///< non-contiguous receive cursor
  std::uint64_t sender_cookie = 0;
  std::int32_t sender_rank = -1;
  std::int32_t sender_vci = 0;
};

/// A send parked by route_send while its (src, dst) pair is fenced
/// mid-topology-swap. Flushed (FIFO) by the owning VCI's next progress call
/// after the cutover snapshot lands. `cookie` is the deferred-completion
/// cookie the eventual injection must carry (0 = fire-and-forget).
struct ParkedSend {
  transport::Msg msg;
  std::uint64_t cookie = 0;
};

/// One virtual communication interface: the serial execution context behind
/// an MPIX_Stream. VCI 0 is the default (MPIX_STREAM_NULL) context.
///
/// Immutable after construction (set before the VCI is published): id,
/// rank, world, default_mask, sink. Everything mutable is either guarded by
/// `mu` or atomic.
struct Vci {
  ~Vci() MPX_NO_THREAD_SAFETY_ANALYSIS;  // teardown is single-threaded

  int id = 0;              // mpxlint: allow(tsa-ratchet) immutable after publish
  int rank = -1;           // mpxlint: allow(tsa-ratchet) immutable after publish
  World* world = nullptr;  // mpxlint: allow(tsa-ratchet) immutable after publish
  /// false after stream_free. mc::atomic: the model checker validates the
  /// publish protocol (store-release strictly AFTER dropping `mu`, so a
  /// concurrent stream_create can never destroy a held mutex).
  mc::atomic<bool> active{true};
  unsigned default_mask = progress_all;  // mpxlint: allow(tsa-ratchet) immutable after publish

  base::InstrumentedMutex mu{"vci", base::LockRank::vci};

  // Matching engine (per-VCI, as in MPICH ch4): hashed (context, source)
  // bins — see matching.hpp. Bin counts come from WorldConfig::match_bins;
  // make_vci calls init() before the VCI is published.
  PostedQueue posted MPX_GUARDED_BY(mu);
  UnexpQueue unexpected MPX_GUARDED_BY(mu);
  /// Storage pool for unexpected-message bookkeeping. Acquire and release
  /// both happen under `mu` (arrival handlers, irecv/imrecv consume,
  /// teardown), so a plain per-VCI freelist suffices — no atomics on this
  /// hot path, unlike the process-wide request/payload pools.
  base::FreelistPool<UnexpMsg> unexp_pool MPX_GUARDED_BY(mu);

  // Progress subsystems, in Listing 1.1 order.
  dtype::PackEngine pack_engine MPX_GUARDED_BY(mu);   // (1) datatype engine
  AsyncRuntime::List coll_hooks MPX_GUARDED_BY(mu);   // (2) coll schedules
  AsyncRuntime::List asyncs MPX_GUARDED_BY(mu);       // (3) user async things
  std::list<LmtWork> lmt MPX_GUARDED_BY(mu);          // (4a) shm LMT copies

  // Cross-thread registration mailboxes, drained at the top of each
  // progress call (avoids nested VCI locks on spawn-to-other-stream).
  // Internally locked; safe to push from any thread without holding `mu`.
  base::MpscQueue<AsyncThing*> inbox_asyncs;
  base::MpscQueue<AsyncThing*> inbox_coll;

  // Protocol sink for transport polls (constructed by protocol.cpp before
  // the VCI is published; the sink itself must only be *invoked* under mu).
  // mpxlint: allow(tsa-ratchet) pointer immutable after publish
  std::unique_ptr<transport::TransportSink> sink;

  // --- control-plane / datapath seam (topology.hpp) ---
  /// Snapshot pinned for the duration of the current critical section (set
  /// by TopoRef at the datapath entry points, reset when the outermost
  /// TopoRef unwinds). Re-entrant sections reuse the pin, so every
  /// poll/send performs exactly ONE acquire-load.
  const TopologySnapshot* topo_cache MPX_GUARDED_BY(mu) = nullptr;
  /// Quiescence counter: the epoch of the last snapshot this VCI pinned
  /// (release store in topology_pin; the control plane's grace period
  /// acquire-reads it to skip the lock-pass — see topology.hpp).
  mc::atomic<std::uint64_t> topo_epoch{0};
  /// Sends parked while their pair is fenced mid-swap, in send order.
  std::list<ParkedSend> fence_parked MPX_GUARDED_BY(mu);
  /// Completion cookies owed by THIS side: the routed carrier reported the
  /// injection locally complete (send() returned true), so no transport
  /// completion event will ever fire — progress_test synthesizes
  /// on_send_complete for them. This is what lets a protocol started on a
  /// cap_send_cq carrier finish on one without a CQ after a swap.
  std::vector<std::uint64_t> synth_cq MPX_GUARDED_BY(mu);

  // Accounting.
  std::uint64_t progress_calls MPX_GUARDED_BY(mu) = 0;
  // Raw std::atomic on purpose: lock-free accounting read by fast paths,
  // not modeled protocol state (the queues they mirror are).
  std::atomic<std::int64_t> active_ops{0};  ///< in-flight p2p/coll requests — mpxlint: allow(mc-coverage)
  std::atomic<std::int64_t> hook_count{0};  ///< linked async+coll hooks — mpxlint: allow(mc-coverage)
  /// Wait-ladder rung occupancy of blocking waits driving THIS VCI
  /// (request.cpp wires every wait loop's backoff here). The adaptive
  /// progress engine's controller reads the deltas: waiters stuck on the
  /// yield/sleep rungs mean nobody's polling is productive — promote.
  WaitLadderCounters wait_rungs;

  /// Compiled progress pipeline: one entry per registered ProgressSource,
  /// in registry order. The source/mask halves are immutable after make_vci
  /// (the registry is published before any VCI exists); the embedded
  /// hit/call counters mutate under `mu` — the observability that replaced
  /// the seed's stage_hits[5].
  std::vector<ProgressStage> stages MPX_GUARDED_BY(mu);
  /// Fair-scheduling rotation cursor: index of the stage the next
  /// progress_test scan starts from (always < stages.size()). Advanced past
  /// the productive stage on every hit so a chatty early stage cannot
  /// starve later ones. Unused (stays 0) when !fair.
  std::uint32_t stage_cursor MPX_GUARDED_BY(mu) = 0;
  /// WorldConfig::progress_fair, frozen at make_vci.
  bool fair = true;  // mpxlint: allow(tsa-ratchet) immutable after publish
};

/// Per-rank state: the VCI table. Storage is fixed at max_vcis slots so the
/// progress hot path resolves (rank, vci) -> Vci* with two acquire loads
/// and NO lock: `vci_count` publishes the table length, each slot pointer
/// is stored release after the Vci is fully constructed. `vcis_mu`
/// (LockRank::stream) serializes WRITERS only (stream_create growth and
/// slot reuse); it nests INSIDE a held VCI lock (spawning onto another
/// stream resolves the target VCI while the current one is locked), so it
/// ranks above LockRank::vci. Vci lifetime is unchanged: a slot is deleted
/// only when stream_create reuses it after stream_free published
/// active == false, and using a freed Stream handle was always UB.
struct RankCtx {
  int rank = -1;           // mpxlint: allow(tsa-ratchet) immutable after init
  World* world = nullptr;  // mpxlint: allow(tsa-ratchet) immutable after init
  /// index = vci id; [0] always live. Sized to max_vcis at construction
  /// (never reallocates); entries past vci_count are null.
  std::vector<mc::atomic<Vci*>> slots;
  mc::atomic<std::uint32_t> vci_count{0};
  mutable base::InstrumentedMutex vcis_mu{"vci-table",
                                          base::LockRank::stream};

  ~RankCtx() {
    const std::uint32_t n = vci_count.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < n; ++i) {
      delete slots[i].load(std::memory_order_acquire);
    }
  }
};

/// Blocking all-members coordination for communicator management ops
/// (dup/split/with_stream are collective). Each member deposits an input;
/// the last arrival runs `make` over all inputs producing one output per
/// member; everyone then picks up its own. One op at a time per comm.
class Coordinator {
 public:
  explicit Coordinator(int nmembers) : n_(nmembers), inputs_(nmembers) {}

  /// `make` maps (inputs indexed by member) -> outputs indexed by member.
  std::any run(int member, std::any input,
               std::vector<std::any> (*make)(std::vector<std::any>&, void*),
               void* arg);

 private:
  int n_;
  // Comm construction is a true rendezvous across member threads — it
  // blocks by design and is exercised outside the model checker.
  std::mutex mu_;              // mpxlint: allow(mc-coverage) construction-time rendezvous
  std::condition_variable cv_; // mpxlint: allow(mc-coverage) construction-time rendezvous
  std::uint64_t epoch_ = 0;
  int arrived_ = 0;
  std::vector<std::any> inputs_;
  std::shared_ptr<std::vector<std::any>> outputs_;
};

/// Shared communicator state. Comm handles are per-rank views of this.
struct CommImpl {
  ~CommImpl();

  // Everything below except coll_clone is frozen by the end of comm
  // construction and read-only afterwards.
  World* world = nullptr;  ///< comms must not outlive their World — mpxlint: allow(tsa-ratchet) immutable
  std::int32_t context_id = 0;       ///< p2p matching context — mpxlint: allow(tsa-ratchet) immutable
  std::int32_t coll_context_id = 0;  ///< collective matching context — mpxlint: allow(tsa-ratchet) immutable
  std::vector<int> group;         ///< comm rank -> world rank — mpxlint: allow(tsa-ratchet) immutable
  std::vector<int> vcis;          ///< comm rank -> VCI id at that rank — mpxlint: allow(tsa-ratchet) immutable
  std::vector<int> world_to_comm; ///< world rank -> comm rank (or -1) — mpxlint: allow(tsa-ratchet) immutable
  std::unique_ptr<Coordinator> coord;

  /// Per-member collective sequence numbers (each member touches only its
  /// own slot). Identical call order on all members — an MPI requirement —
  /// yields matching tags.
  // mpxlint: allow(tsa-ratchet) each member mutates only its own slot
  std::vector<int> coll_seq;
  /// Lazily-built view whose p2p context is the collective context.
  /// Unranked InstrumentedMutex (leaf: nothing nests inside it) so the
  /// clone path gets lock instrumentation + TSA coverage like every other
  /// core lock.
  base::InstrumentedMutex clone_mu{"comm:clone", base::LockRank::none};
  std::shared_ptr<CommImpl> coll_clone MPX_GUARDED_BY(clone_mu);

  /// Extension slot (comm_ext.hpp): installed lazily by upper layers with a
  /// first-writer-wins CAS, owned and deleted by ~CommImpl. mc::atomic so
  /// the install race is explorable alongside the cache protocol it
  /// publishes.
  mc::atomic<CommExt*> ext{nullptr};

  int to_world(int comm_rank) const { return group[comm_rank]; }
  int to_comm(int world_rank) const { return world_to_comm[world_rank]; }
};

// ---- helpers shared across core translation units ----

/// RAII topology pin for one VCI critical section. The outermost TopoRef at
/// a datapath entry point (progress_test, isend/irecv/imrecv) performs the
/// section's single acquire-load (topology_pin) into v.topo_cache; nested
/// sections (re-entrant progress from poll callbacks) find the cache set
/// and reuse it, loading nothing. Handlers below the entry points read
/// *v.topo_cache directly.
class TopoRef {
 public:
  explicit TopoRef(Vci& v) MPX_REQUIRES(v.mu)
      : v_(v), outer_(v.topo_cache == nullptr) {
    if (outer_) {
      v.topo_cache = topology_pin(v.world->topology(), v.topo_epoch);
    }
  }
  ~TopoRef() MPX_NO_THREAD_SAFETY_ANALYSIS {
    if (outer_) v_.topo_cache = nullptr;
  }
  TopoRef(const TopoRef&) = delete;
  TopoRef& operator=(const TopoRef&) = delete;

  const TopologySnapshot& operator*() const MPX_NO_THREAD_SAFETY_ANALYSIS {
    return *v_.topo_cache;
  }

 private:
  Vci& v_;
  const bool outer_;
};

/// Send `m` over the pinned snapshot's carrier for its (src, dst) pair —
/// or park it (Vci::fence_parked) while the pair is fenced mid-swap. A
/// nonzero `cookie` whose injection completes locally (send() returned
/// true: no transport event will ever fire) is synthesized through
/// Vci::synth_cq on the next progress call. Requires a live TopoRef pin.
void route_send(Vci& v, transport::Msg&& m, std::uint64_t cookie)
    MPX_REQUIRES(v.mu);

/// Zero-envelope eager variant: copies `payload` before returning in BOTH
/// outcomes (straight into transport storage when clear, into an owned
/// parked Msg when fenced), so an eager-local send stays locally complete
/// at initiation across a swap. Requires a live TopoRef pin.
void route_send_eager(Vci& v, const transport::MsgHeader& h,
                      base::ConstByteSpan payload) MPX_REQUIRES(v.mu);

/// Flush parked sends whose pair is no longer fenced, oldest first,
/// stopping at the first still-fenced head (conservative cross-pair FIFO —
/// fences are rare and short). Returns nonzero when anything flushed.
int flush_parked(Vci& v) MPX_REQUIRES(v.mu);

/// Fill status, fire the completion hook, then publish completion (release).
/// Must run under the request's VCI lock (or before the request is visible;
/// grequests have no VCI, hence no MPX_REQUIRES — the contract is by
/// convention, not statically checkable through the cookie indirection).
void complete_request(RequestImpl* r, Err err);

/// The collated progress function (Listing 1.1). Returns made_progress.
/// Acquires v.mu internally (re-entrant: safe to call from poll callbacks
/// already under the same VCI's lock).
int progress_test(Vci& v, unsigned mask);

/// Post-side entry points (protocol.cpp). `sync` forces rendezvous
/// (MPI_Ssend semantics: completion implies the receive matched).
Request isend_impl(const std::shared_ptr<CommImpl>& comm, int my_rank,
                   const void* buf, std::size_t count,
                   const dtype::Datatype& dt, int dst, int tag,
                   bool sync = false);
Request irecv_impl(const std::shared_ptr<CommImpl>& comm, int my_rank,
                   void* buf, std::size_t count, const dtype::Datatype& dt,
                   int src, int tag);

/// Receive a message previously claimed by improbe. Takes ownership of `u`.
Request imrecv_impl(const std::shared_ptr<CommImpl>& comm, int my_rank,
                    void* buf, std::size_t count, const dtype::Datatype& dt,
                    UnexpMsg* u);

/// Return an unconsumed matched-probe message to the unexpected queue.
/// Acquires v.mu internally.
void requeue_unexpected(Vci& v, UnexpMsg* u);

/// Emit a protocol trace record from a VCI context (no-op when disabled).
inline void trace_emit(Vci& v, trace::Event ev, int peer, int tag,
                       std::uint64_t bytes, std::uint64_t detail = 0) {
  trace::Tracer& t = v.world->tracer();
  if (!t.enabled()) return;
  trace::Record r;
  r.t = v.world->wtime();
  r.ev = ev;
  r.rank = v.rank;
  r.vci = v.id;
  r.peer = peer;
  r.tag = tag;
  r.bytes = bytes;
  r.detail = detail;
  t.emit(r);
}

/// Construct the transport sink for a VCI (called when a VCI is created).
std::unique_ptr<transport::TransportSink> make_vci_sink(Vci& v);

/// Receiver-side LMT copy stage (its own ProgressSource, registered right
/// after the mapped-memory transport's poll stage).
void lmt_progress(Vci& v, int* made_progress) MPX_REQUIRES(v.mu);

/// Register the in-tree non-transport sources (dtype, coll, async), in
/// Listing 1.1 order. Called once by the World constructor.
void register_builtin_sources(ProgressRegistry& reg);

/// Register one poll stage per transport, in list order, inserting the LMT
/// copy stage directly after the first cap_mapped_memory transport (the
/// seed polled LMT work inside the shm slot; the split keeps per-source
/// counters honest while preserving relative order).
void register_transport_sources(ProgressRegistry& reg,
                                const std::vector<transport::Transport*>& ts);

}  // namespace mpx::core_detail
