#include "mpx/dev/device.hpp"

#include <algorithm>
#include <cstring>

#include "mpx/ext/grequest_poll.hpp"

namespace mpx::dev {

SimDevice::SimDevice(World& world, DeviceModel model)
    : world_(&world), model_(model) {}

DeviceBuffer SimDevice::alloc(std::size_t bytes) {
  return DeviceBuffer(std::make_shared<std::vector<std::byte>>(bytes));
}

namespace {

struct CopyOp {
  World* world;
  SimDevice* device;
  double due;
  // Exactly one of the four pointer pairs below is active per direction;
  // shared_ptrs keep device allocations alive across the copy.
  std::shared_ptr<std::vector<std::byte>> dmem;
  std::size_t doff;
  std::shared_ptr<std::vector<std::byte>> smem;
  std::size_t soff;
  std::byte* host_dst;
  const std::byte* host_src;
  std::size_t bytes;
  std::uint64_t* counter;
  base::Spinlock* counter_mu;

  void apply() const {
    // The data movement happens "on the device" and is only made visible at
    // completion time — before this, the destination holds stale bytes.
    if (host_src != nullptr) {  // h2d
      std::memcpy(dmem->data() + doff, host_src, bytes);
    } else if (host_dst != nullptr) {  // d2h
      std::memcpy(host_dst, smem->data() + soff, bytes);
    } else {  // d2d
      std::memmove(dmem->data() + doff, smem->data() + soff, bytes);
    }
    base::LockGuard<base::Spinlock> g(*counter_mu);
    ++*counter;
  }
};

bool copy_poll(void* state) {
  auto* op = static_cast<CopyOp*>(state);
  if (op->world->wtime() < op->due) return false;
  op->apply();
  return true;
}

void copy_free(void* state) { delete static_cast<CopyOp*>(state); }

}  // namespace

Request SimDevice::submit(Dir dir, DeviceBuffer dbuf, std::size_t doff,
                          DeviceBuffer sbuf, std::size_t soff,
                          std::byte* host, const std::byte* chost,
                          std::size_t bytes, const Stream& stream) {
  expects(stream.valid(), "SimDevice: invalid stream");
  double bw = model_.d2d_Bps;
  if (dir == Dir::h2d) bw = model_.h2d_Bps;
  if (dir == Dir::d2h) bw = model_.d2h_Bps;

  auto op = std::make_unique<CopyOp>();
  op->world = world_;
  op->device = this;
  op->dmem = dbuf.mem_;
  op->doff = doff;
  op->smem = sbuf.mem_;
  op->soff = soff;
  op->host_dst = host;
  op->host_src = chost;
  op->bytes = bytes;
  {
    // One DMA queue per device: copies serialize in issue order.
    base::LockGuard<base::Spinlock> g(mu_);
    op->counter = &copies_;
    op->counter_mu = &mu_;
    const double start = std::max(world_->wtime(), queue_clear_time_);
    op->due = start + model_.launch_latency +
              static_cast<double>(bytes) / bw;
    queue_clear_time_ = op->due;
  }
  return ext::grequest_start_with_poll(*world_, stream, &copy_poll,
                                       &copy_free, op.release());
}

Request SimDevice::imemcpy_h2d(DeviceBuffer dst, std::size_t dst_off,
                               base::ConstByteSpan src,
                               const Stream& stream) {
  expects(dst.valid() && dst_off + src.size() <= dst.size(),
          "imemcpy_h2d: range out of bounds");
  return submit(Dir::h2d, dst, dst_off, DeviceBuffer(), 0, nullptr,
                src.data(), src.size(), stream);
}

Request SimDevice::imemcpy_d2h(base::ByteSpan dst, DeviceBuffer src,
                               std::size_t src_off, const Stream& stream) {
  expects(src.valid() && src_off + dst.size() <= src.size(),
          "imemcpy_d2h: range out of bounds");
  return submit(Dir::d2h, DeviceBuffer(), 0, src, src_off, dst.data(),
                nullptr, dst.size(), stream);
}

Request SimDevice::imemcpy_d2d(DeviceBuffer dst, std::size_t dst_off,
                               DeviceBuffer src, std::size_t src_off,
                               std::size_t bytes, const Stream& stream) {
  expects(dst.valid() && src.valid() && dst_off + bytes <= dst.size() &&
              src_off + bytes <= src.size(),
          "imemcpy_d2d: range out of bounds");
  return submit(Dir::d2d, dst, dst_off, src, src_off, nullptr, nullptr,
                bytes, stream);
}

std::uint64_t SimDevice::copies_completed() const {
  base::LockGuard<base::Spinlock> g(mu_);
  return copies_;
}

}  // namespace mpx::dev
