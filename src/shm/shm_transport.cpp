#include "mpx/shm/shm_transport.hpp"

#include <algorithm>
#include <cstring>
#include <new>

#include "mpx/base/pool.hpp"
#include "mpx/base/status.hpp"
#include "mpx/mc/mc.hpp"

namespace mpx::shm {

using transport::Msg;
using transport::MsgHeader;

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

constexpr std::size_t kCellAlign = 64;

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

ShmTransport::ShmTransport(int nranks, int max_vcis, std::size_t cells,
                           std::size_t slot_bytes, int deliver_batch,
                           int ranks_per_node, std::size_t eager_max)
    : nranks_(nranks),
      max_vcis_(max_vcis),
      cells_(round_up_pow2(cells)),
      slot_bytes_(0),
      stride_(round_up(sizeof(Cell) + slot_bytes, kCellAlign)),
      deliver_batch_(deliver_batch < 1 ? 1 : deliver_batch),
      ranks_per_node_(ranks_per_node < 1 ? nranks : ranks_per_node),
      channels_(static_cast<std::size_t>(nranks) * nranks * max_vcis),
      endpoints_(static_cast<std::size_t>(nranks) * max_vcis) {
  expects(nranks >= 1 && max_vcis >= 1 && cells >= 1,
          "ShmTransport: bad dimensions");
  expects(cells_ <= (std::size_t{1} << 31),
          "ShmTransport: ring capacity too large for 32-bit indices");
  // The stride rounding leaves free bytes after the cell header; give them
  // to the inline area so the whole cache line is usable payload space.
  slot_bytes_ = stride_ - sizeof(Cell);
  limits_.eager_max = eager_max;
  limits_.lightweight_max = eager_max;  // every shm eager is locally complete
}

ShmTransport::~ShmTransport() {
  for (Channel& ch : channels_) {
    if (ch.arena == nullptr) continue;
    for (std::size_t i = 0; i < cells_; ++i) {
      cell_at(ch, static_cast<std::uint32_t>(i)).~Cell();
    }
    ::operator delete(ch.arena, std::align_val_t{kCellAlign});
  }
}

ShmTransport::Channel& ShmTransport::channel(int src, int dst, int vci) {
  return channels_[(static_cast<std::size_t>(src) * nranks_ + dst) *
                       max_vcis_ +
                   vci];
}
const ShmTransport::Channel& ShmTransport::channel(int src, int dst,
                                                   int vci) const {
  return channels_[(static_cast<std::size_t>(src) * nranks_ + dst) *
                       max_vcis_ +
                   vci];
}
ShmTransport::Endpoint& ShmTransport::endpoint(int rank, int vci) {
  return endpoints_[static_cast<std::size_t>(rank) * max_vcis_ + vci];
}
const ShmTransport::Endpoint& ShmTransport::endpoint(int rank,
                                                     int vci) const {
  return endpoints_[static_cast<std::size_t>(rank) * max_vcis_ + vci];
}

ShmTransport::Cell& ShmTransport::cell_at(Channel& ch, std::uint32_t idx) {
  return *reinterpret_cast<Cell*>(
      ch.arena + static_cast<std::size_t>(idx & (cells_ - 1)) * stride_);
}

void ShmTransport::init_arena(Channel& ch) {
  std::byte* arena = static_cast<std::byte*>(
      ::operator new(cells_ * stride_, std::align_val_t{kCellAlign}));
  for (std::size_t i = 0; i < cells_; ++i) {
    ::new (static_cast<void*>(arena + i * stride_)) Cell();
  }
  // Ordered for the consumer by the first head release-store; ordered for
  // other producers by ch.mu. The PLAIN annotation lets the model checker
  // prove that claim across every explored interleaving.
  MPX_MC_PLAIN_WRITE(&ch.arena, "shm channel arena");
  ch.arena = arena;
}

bool ShmTransport::push_cell(Channel& ch, const MsgHeader& h,
                             base::ConstByteSpan payload,
                             base::Buffer& overflow) {
  if (ch.arena == nullptr) init_arena(ch);
  const std::uint32_t hd = ch.head.load(std::memory_order_relaxed);
  const std::uint32_t tl = ch.tail.load(std::memory_order_acquire);
  if (static_cast<std::size_t>(hd - tl) == cells_) {
    ring_full_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Cell& c = cell_at(ch, hd);
  MPX_MC_PLAIN_WRITE(&c, "shm cell");
  c.h = h;
  if (overflow.size() != 0) {
    c.overflow = std::move(overflow);
    c.inline_bytes = 0;
  } else {
    if (!payload.empty()) {
      std::memcpy(c.inline_data(), payload.data(), payload.size());
      inline_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    c.inline_bytes = static_cast<std::uint32_t>(payload.size());
  }
  ch.head.store(hd + 1, std::memory_order_release);
  return true;
}

bool ShmTransport::push_msg(Channel& ch, Msg& m) {
  if (m.payload.size() <= slot_bytes_) {
    base::Buffer none;
    return push_cell(ch, m.h, m.payload.span(), none);
  }
  // Oversize payload: the owned (typically pooled) buffer rides in the cell.
  base::Buffer ovf = std::move(m.payload);
  if (push_cell(ch, m.h, base::ConstByteSpan{}, ovf)) return true;
  m.payload = std::move(ovf);  // ring full: give the payload back
  return false;
}

void ShmTransport::park(Endpoint& ep, Msg&& m, std::uint64_t cookie) {
  base::LockGuard<base::Spinlock> g(ep.mu);
  ep.q.emplace_back(std::move(m), cookie);
  ep.count.store(static_cast<std::uint32_t>(ep.q.size()),
                 std::memory_order_release);
}

bool ShmTransport::send(Msg&& m, std::uint64_t cookie) {
  expects(m.h.src_rank >= 0 && m.h.src_rank < nranks_ && m.h.dst_rank >= 0 &&
              m.h.dst_rank < nranks_,
          "ShmTransport::send: rank out of range");
  expects(m.h.dst_vci >= 0 && m.h.dst_vci < max_vcis_,
          "ShmTransport::send: vci out of range");
  sends_.fetch_add(1, std::memory_order_relaxed);

  Endpoint& ep = endpoint(m.h.src_rank, m.h.src_vci);
  // Preserve channel FIFO order: if anything is already parked for this
  // source endpoint, new sends must queue behind it (no ring probe — this
  // is an envelope park, not a full-slot stall).
  if (ep.count.load(std::memory_order_acquire) != 0) {
    park(ep, std::move(m), cookie);
    return false;
  }

  Channel& ch = channel(m.h.src_rank, m.h.dst_rank, m.h.dst_vci);
  {
    base::LockGuard<base::Spinlock> g(ch.mu);
    if (push_msg(ch, m)) return true;
  }
  park(ep, std::move(m), cookie);
  return false;
}

bool ShmTransport::send_eager(const MsgHeader& h, base::ConstByteSpan payload,
                              std::uint64_t cookie) {
  expects(h.src_rank >= 0 && h.src_rank < nranks_ && h.dst_rank >= 0 &&
              h.dst_rank < nranks_,
          "ShmTransport::send_eager: rank out of range");
  expects(h.dst_vci >= 0 && h.dst_vci < max_vcis_,
          "ShmTransport::send_eager: vci out of range");
  sends_.fetch_add(1, std::memory_order_relaxed);

  // Mid-size payloads go into a size-classed pooled block. Copy before any
  // lock: the block transfers to the receiver as-is, so this is still the
  // single sender-side copy.
  base::Buffer ovf;
  base::ConstByteSpan inline_src = payload;
  if (payload.size() > slot_bytes_) {
    ovf = base::pooled_copy(payload);
    inline_src = base::ConstByteSpan{};
  }

  Endpoint& ep = endpoint(h.src_rank, h.src_vci);
  if (ep.count.load(std::memory_order_acquire) == 0) {
    Channel& ch = channel(h.src_rank, h.dst_rank, h.dst_vci);
    base::LockGuard<base::Spinlock> g(ch.mu);
    if (push_cell(ch, h, inline_src, ovf)) return true;
  }

  // Backlogged or full: park an owned copy (the one allocation on this
  // path, and only under ring pressure).
  Msg m;
  m.h = h;
  m.payload = ovf.size() != 0 ? std::move(ovf) : base::pooled_copy(payload);
  park(ep, std::move(m), cookie);
  return false;
}

void ShmTransport::poll(int rank, int vci, transport::TransportSink& sink,
                        int* made_progress) {
  // 1) Retry parked sends from this endpoint in bulk (send-side progress):
  // one pending-lock acquisition flushes as many envelopes as fit, and the
  // drained cookies are reported after the lock drops.
  Endpoint& ep = endpoint(rank, vci);
  // Lock-free fast path: `count` mirrors q.size() and is only ever raised
  // under the lock, so a zero read genuinely means nothing parked (a stale
  // nonzero just costs one lock acquisition).
  if (ep.count.load(std::memory_order_acquire) != 0) {
    std::vector<std::uint64_t> done;
    bool flushed = false;
    {
      base::LockGuard<base::Spinlock> g(ep.mu);
      while (!ep.q.empty()) {
        auto& [msg, cookie] = ep.q.front();
        Channel& ch = channel(msg.h.src_rank, msg.h.dst_rank, msg.h.dst_vci);
        bool pushed;
        {
          base::LockGuard<base::Spinlock> cg(ch.mu);
          pushed = push_msg(ch, msg);
        }
        if (!pushed) break;  // still full; keep FIFO, retry next poll
        flushed = true;
        if (cookie != 0) done.push_back(cookie);
        ep.q.pop_front();
      }
      ep.count.store(static_cast<std::uint32_t>(ep.q.size()),
                     std::memory_order_release);
    }
    if (flushed && made_progress != nullptr) *made_progress = 1;
    for (const std::uint64_t c : done) sink.on_send_complete(c);
  }

  // 2) Deliver arrived cells destined to (rank, vci), at most one batch per
  // source channel: a single acquire load claims the batch and a single
  // release store of tail retires it, so the fence cost and the caller's
  // matcher lock are amortized over the whole batch.
  //
  // Re-entrancy guard: a sink handler may re-enter progress (completion
  // callbacks), which would re-read the not-yet-published tail and deliver
  // the outer batch's cells twice. The inner call skips delivery; the
  // outer drain finishes its batch. `delivering` is plain data because the
  // consumer side of an endpoint is serialized by contract (the VCI lock).
  if (ep.delivering) return;
  ep.delivering = true;
  std::uint64_t ndelivered = 0;
  for (int src = 0; src < nranks_; ++src) {
    Channel& ch = channel(src, rank, vci);
    const std::uint32_t t = ch.tail.load(std::memory_order_relaxed);
    const std::uint32_t h = ch.head.load(std::memory_order_acquire);
    if (h == t) continue;
    const std::uint32_t n =
        std::min<std::uint32_t>(h - t, static_cast<std::uint32_t>(deliver_batch_));
    MPX_MC_PLAIN_READ(&ch.arena, "shm channel arena");
    for (std::uint32_t i = 0; i < n; ++i) {
      Cell& c = cell_at(ch, t + i);
      MPX_MC_PLAIN_WRITE(&c, "shm cell");
      if (c.overflow.size() != 0) {
        Msg m;
        m.h = c.h;
        m.payload = std::move(c.overflow);
        sink.on_msg(std::move(m));
      } else {
        sink.on_msg_inline(
            c.h, base::ConstByteSpan(c.inline_data(), c.inline_bytes));
      }
    }
    ch.tail.store(t + n, std::memory_order_release);
    ndelivered += n;
    if (n >= 2) batched_.fetch_add(1, std::memory_order_relaxed);
  }
  ep.delivering = false;
  if (ndelivered != 0) {
    delivered_.fetch_add(ndelivered, std::memory_order_relaxed);
    if (made_progress != nullptr) *made_progress = 1;
  }
}

bool ShmTransport::idle(int rank, int vci) const {
  const Endpoint& ep = endpoint(rank, vci);
  if (ep.count.load(std::memory_order_acquire) != 0) return false;
  for (int src = 0; src < nranks_; ++src) {
    const Channel& ch = channel(src, rank, vci);
    if (ch.head.load(std::memory_order_acquire) !=
        ch.tail.load(std::memory_order_acquire)) {
      return false;
    }
  }
  return true;
}

ShmStats ShmTransport::stats() const {
  return ShmStats{sends_.load(std::memory_order_relaxed),
                  ring_full_.load(std::memory_order_relaxed),
                  delivered_.load(std::memory_order_relaxed),
                  batched_.load(std::memory_order_relaxed),
                  inline_hits_.load(std::memory_order_relaxed)};
}

transport::TransportStats ShmTransport::transport_stats() const {
  transport::TransportStats s;
  s.sends = sends_.load(std::memory_order_relaxed);
  s.delivered = delivered_.load(std::memory_order_relaxed);
  s.backlogged = ring_full_.load(std::memory_order_relaxed);
  // Shm eager sends are locally complete; deferred-cookie completions (full
  // ring parks) are rare and folded into `backlogged`.
  s.completions = 0;
  return s;
}

}  // namespace mpx::shm
