#include "mpx/shm/shm_transport.hpp"

#include "mpx/base/status.hpp"

namespace mpx::shm {

using transport::Msg;

ShmTransport::ShmTransport(int nranks, int max_vcis, std::size_t cells)
    : nranks_(nranks),
      max_vcis_(max_vcis),
      cells_(cells),
      channels_(static_cast<std::size_t>(nranks) * nranks * max_vcis),
      pending_(static_cast<std::size_t>(nranks) * max_vcis) {
  expects(nranks >= 1 && max_vcis >= 1 && cells >= 1,
          "ShmTransport: bad dimensions");
}

ShmTransport::Channel& ShmTransport::channel(int src, int dst, int vci) {
  return channels_[(static_cast<std::size_t>(src) * nranks_ + dst) *
                       max_vcis_ +
                   vci];
}
const ShmTransport::Channel& ShmTransport::channel(int src, int dst,
                                                   int vci) const {
  return channels_[(static_cast<std::size_t>(src) * nranks_ + dst) *
                       max_vcis_ +
                   vci];
}
ShmTransport::Pending& ShmTransport::pending(int rank, int vci) {
  return pending_[static_cast<std::size_t>(rank) * max_vcis_ + vci];
}
const ShmTransport::Pending& ShmTransport::pending(int rank, int vci) const {
  return pending_[static_cast<std::size_t>(rank) * max_vcis_ + vci];
}

bool ShmTransport::send(Msg&& m, std::uint64_t cookie) {
  expects(m.h.src_rank >= 0 && m.h.src_rank < nranks_ && m.h.dst_rank >= 0 &&
              m.h.dst_rank < nranks_,
          "ShmTransport::send: rank out of range");
  expects(m.h.dst_vci >= 0 && m.h.dst_vci < max_vcis_,
          "ShmTransport::send: vci out of range");
  sends_.fetch_add(1, std::memory_order_relaxed);

  Pending& pq = pending(m.h.src_rank, m.h.src_vci);
  {
    // Preserve channel FIFO order: if anything is already parked for this
    // source endpoint, new sends must queue behind it.
    base::LockGuard<base::Spinlock> g(pq.mu);
    if (!pq.q.empty()) {
      ring_full_.fetch_add(1, std::memory_order_relaxed);
      pq.q.emplace_back(std::move(m), cookie);
      pq.count.store(static_cast<std::uint32_t>(pq.q.size()),
                     std::memory_order_release);
      return false;
    }
  }

  Channel& ch = channel(m.h.src_rank, m.h.dst_rank, m.h.dst_vci);
  {
    base::LockGuard<base::Spinlock> g(ch.mu);
    if (ch.ring.size() < cells_) {
      ch.ring.push_back(std::move(m));
      return true;
    }
  }
  ring_full_.fetch_add(1, std::memory_order_relaxed);
  base::LockGuard<base::Spinlock> g(pq.mu);
  pq.q.emplace_back(std::move(m), cookie);
  pq.count.store(static_cast<std::uint32_t>(pq.q.size()),
                 std::memory_order_release);
  return false;
}

void ShmTransport::poll(int rank, int vci, transport::TransportSink& sink,
                        int* made_progress) {
  // 1) Retry parked sends from this endpoint (send-side progress).
  Pending& pq = pending(rank, vci);
  // Lock-free fast path: `count` mirrors q.size() and is only ever raised
  // under the lock, so a zero read genuinely means nothing parked (a stale
  // nonzero just costs one lock acquisition). The old unguarded
  // `pq.q.empty()` read was a data race on the deque internals.
  if (pq.count.load(std::memory_order_acquire) != 0) {
    for (;;) {
      std::uint64_t done_cookie = 0;
      {
        base::LockGuard<base::Spinlock> g(pq.mu);
        if (pq.q.empty()) break;
        auto& [msg, cookie] = pq.q.front();
        Channel& ch = channel(msg.h.src_rank, msg.h.dst_rank, msg.h.dst_vci);
        base::LockGuard<base::Spinlock> cg(ch.mu);
        if (ch.ring.size() >= cells_) break;  // still full
        ch.ring.push_back(std::move(msg));
        done_cookie = cookie;
        pq.q.pop_front();
        pq.count.store(static_cast<std::uint32_t>(pq.q.size()),
                       std::memory_order_release);
      }
      if (made_progress != nullptr) *made_progress = 1;
      if (done_cookie != 0) sink.on_send_complete(done_cookie);
    }
  }

  // 2) Deliver arrived messages destined to (rank, vci).
  for (int src = 0; src < nranks_; ++src) {
    Channel& ch = channel(src, rank, vci);
    for (;;) {
      Msg m;
      {
        base::LockGuard<base::Spinlock> g(ch.mu);
        if (ch.ring.empty()) break;
        m = std::move(ch.ring.front());
        ch.ring.pop_front();
      }
      delivered_.fetch_add(1, std::memory_order_relaxed);
      if (made_progress != nullptr) *made_progress = 1;
      sink.on_msg(std::move(m));
    }
  }
}

bool ShmTransport::idle(int rank, int vci) const {
  {
    const Pending& pq = pending(rank, vci);
    base::LockGuard<base::Spinlock> g(pq.mu);
    if (!pq.q.empty()) return false;
  }
  for (int src = 0; src < nranks_; ++src) {
    const Channel& ch = channel(src, rank, vci);
    base::LockGuard<base::Spinlock> g(ch.mu);
    if (!ch.ring.empty()) return false;
  }
  return true;
}

ShmStats ShmTransport::stats() const {
  return ShmStats{sends_.load(std::memory_order_relaxed),
                  ring_full_.load(std::memory_order_relaxed),
                  delivered_.load(std::memory_order_relaxed)};
}

}  // namespace mpx::shm
