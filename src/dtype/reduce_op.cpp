#include "mpx/dtype/reduce_op.hpp"

#include <algorithm>
#include <cstdint>

namespace mpx::dtype {

std::string to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::sum: return "sum";
    case ReduceOp::prod: return "prod";
    case ReduceOp::min: return "min";
    case ReduceOp::max: return "max";
    case ReduceOp::land: return "land";
    case ReduceOp::lor: return "lor";
    case ReduceOp::band: return "band";
    case ReduceOp::bor: return "bor";
  }
  return "?";
}

namespace {

template <class T>
void apply_arith(ReduceOp op, const T* in, T* inout, std::size_t n) {
  switch (op) {
    case ReduceOp::sum:
      for (std::size_t i = 0; i < n; ++i) inout[i] = inout[i] + in[i];
      break;
    case ReduceOp::prod:
      for (std::size_t i = 0; i < n; ++i) inout[i] = inout[i] * in[i];
      break;
    case ReduceOp::min:
      for (std::size_t i = 0; i < n; ++i) inout[i] = std::min(inout[i], in[i]);
      break;
    case ReduceOp::max:
      for (std::size_t i = 0; i < n; ++i) inout[i] = std::max(inout[i], in[i]);
      break;
    case ReduceOp::land:
      for (std::size_t i = 0; i < n; ++i)
        inout[i] = static_cast<T>((inout[i] != T{}) && (in[i] != T{}));
      break;
    case ReduceOp::lor:
      for (std::size_t i = 0; i < n; ++i)
        inout[i] = static_cast<T>((inout[i] != T{}) || (in[i] != T{}));
      break;
    default:
      ensures(false, "reduce_apply: bitwise op dispatched to arithmetic path");
  }
}

template <class T>
void apply_integral(ReduceOp op, const T* in, T* inout, std::size_t n) {
  switch (op) {
    case ReduceOp::band:
      for (std::size_t i = 0; i < n; ++i) inout[i] = inout[i] & in[i];
      break;
    case ReduceOp::bor:
      for (std::size_t i = 0; i < n; ++i) inout[i] = inout[i] | in[i];
      break;
    default:
      apply_arith(op, in, inout, n);
      break;
  }
}

bool is_bitwise(ReduceOp op) {
  return op == ReduceOp::band || op == ReduceOp::bor;
}

}  // namespace

void reduce_apply(ReduceOp op, const void* in, void* inout, std::size_t count,
                  const Datatype& dt) {
  expects(dt.valid() && dt.homogeneous(),
          "reduce_apply: requires a homogeneous datatype");
  // Count is in datatype elements; reduce over the underlying primitives.
  const std::size_t prim = primitive_size(dt.leaf());
  ensures(dt.size() % prim == 0, "reduce_apply: size not multiple of leaf");
  const std::size_t n = count * (dt.size() / prim);
  switch (dt.leaf()) {
    case Primitive::byte:
    case Primitive::uint8:
      apply_integral(op, static_cast<const std::uint8_t*>(in),
                     static_cast<std::uint8_t*>(inout), n);
      break;
    case Primitive::int8:
      apply_integral(op, static_cast<const std::int8_t*>(in),
                     static_cast<std::int8_t*>(inout), n);
      break;
    case Primitive::int16:
      apply_integral(op, static_cast<const std::int16_t*>(in),
                     static_cast<std::int16_t*>(inout), n);
      break;
    case Primitive::uint16:
      apply_integral(op, static_cast<const std::uint16_t*>(in),
                     static_cast<std::uint16_t*>(inout), n);
      break;
    case Primitive::int32:
      apply_integral(op, static_cast<const std::int32_t*>(in),
                     static_cast<std::int32_t*>(inout), n);
      break;
    case Primitive::uint32:
      apply_integral(op, static_cast<const std::uint32_t*>(in),
                     static_cast<std::uint32_t*>(inout), n);
      break;
    case Primitive::int64:
      apply_integral(op, static_cast<const std::int64_t*>(in),
                     static_cast<std::int64_t*>(inout), n);
      break;
    case Primitive::uint64:
      apply_integral(op, static_cast<const std::uint64_t*>(in),
                     static_cast<std::uint64_t*>(inout), n);
      break;
    case Primitive::float32:
      expects(!is_bitwise(op), "reduce_apply: bitwise op on float32");
      apply_arith(op, static_cast<const float*>(in), static_cast<float*>(inout),
                  n);
      break;
    case Primitive::float64:
      expects(!is_bitwise(op), "reduce_apply: bitwise op on float64");
      apply_arith(op, static_cast<const double*>(in),
                  static_cast<double*>(inout), n);
      break;
  }
}

}  // namespace mpx::dtype
