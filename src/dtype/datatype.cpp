#include "mpx/dtype/datatype.hpp"

#include <algorithm>

namespace mpx::dtype {

std::size_t primitive_size(Primitive p) {
  switch (p) {
    case Primitive::byte:
    case Primitive::int8:
    case Primitive::uint8: return 1;
    case Primitive::int16:
    case Primitive::uint16: return 2;
    case Primitive::int32:
    case Primitive::uint32:
    case Primitive::float32: return 4;
    case Primitive::int64:
    case Primitive::uint64:
    case Primitive::float64: return 8;
  }
  return 1;
}

std::string to_string(Primitive p) {
  switch (p) {
    case Primitive::byte: return "byte";
    case Primitive::int8: return "int8";
    case Primitive::int16: return "int16";
    case Primitive::int32: return "int32";
    case Primitive::int64: return "int64";
    case Primitive::uint8: return "uint8";
    case Primitive::uint16: return "uint16";
    case Primitive::uint32: return "uint32";
    case Primitive::uint64: return "uint64";
    case Primitive::float32: return "float32";
    case Primitive::float64: return "float64";
  }
  return "?";
}

namespace {

using detail::TypeRep;

/// Merge adjacent pieces (b starts exactly where a ends) to keep iov small.
void coalesce(std::vector<Iov>& iov) {
  if (iov.empty()) return;
  std::vector<Iov> out;
  out.reserve(iov.size());
  out.push_back(iov.front());
  for (std::size_t i = 1; i < iov.size(); ++i) {
    Iov& last = out.back();
    const Iov& cur = iov[i];
    if (last.offset + static_cast<std::ptrdiff_t>(last.length) == cur.offset) {
      last.length += cur.length;
    } else {
      out.push_back(cur);
    }
  }
  iov = std::move(out);
}

void finalize(TypeRep& r) {
  coalesce(r.iov);
  r.size = 0;
  for (const Iov& v : r.iov) r.size += v.length;
  r.contiguous = r.iov.size() == 1 && r.iov[0].offset == 0 &&
                 static_cast<std::ptrdiff_t>(r.size) == r.extent;
}

/// Append `old`'s pieces shifted by byte displacement `disp`, `count` times
/// advancing by old's extent.
void append_replicated(std::vector<Iov>& iov, const TypeRep& old,
                       std::ptrdiff_t disp, int count) {
  for (int i = 0; i < count; ++i) {
    const std::ptrdiff_t base = disp + i * old.extent;
    for (const Iov& v : old.iov) {
      iov.push_back(Iov{base + v.offset, v.length});
    }
  }
}

std::shared_ptr<const TypeRep> make_rep(TypeRep r) {
  finalize(r);
  return std::make_shared<const TypeRep>(std::move(r));
}

}  // namespace

Datatype Datatype::of(Primitive p) {
  // One cached rep per primitive.
  static const auto reps = [] {
    std::vector<std::shared_ptr<const TypeRep>> v;
    for (int i = 0; i <= static_cast<int>(Primitive::float64); ++i) {
      TypeRep r;
      const auto sz = primitive_size(static_cast<Primitive>(i));
      r.iov = {Iov{0, sz}};
      r.extent = static_cast<std::ptrdiff_t>(sz);
      r.leaf = static_cast<Primitive>(i);
      r.homogeneous = true;
      finalize(r);
      v.push_back(std::make_shared<const TypeRep>(std::move(r)));
    }
    return v;
  }();
  return Datatype(reps[static_cast<std::size_t>(p)]);
}

Datatype Datatype::contiguous(int count, const Datatype& old) {
  expects(count >= 0 && old.valid(), "Datatype::contiguous: bad arguments");
  TypeRep r;
  const TypeRep& o = *old.rep_;
  append_replicated(r.iov, o, 0, count);
  r.extent = count * o.extent;
  r.leaf = o.leaf;
  r.homogeneous = o.homogeneous;
  return Datatype(make_rep(std::move(r)));
}

Datatype Datatype::vector(int count, int blocklen, int stride,
                          const Datatype& old) {
  expects(count >= 0 && blocklen >= 0 && old.valid(),
          "Datatype::vector: bad arguments");
  TypeRep r;
  const TypeRep& o = *old.rep_;
  for (int b = 0; b < count; ++b) {
    append_replicated(r.iov, o, b * stride * o.extent, blocklen);
  }
  // MPI extent of a vector spans from min to max byte touched (true extent).
  std::ptrdiff_t lo = 0, hi = 0;
  for (const Iov& v : r.iov) {
    lo = std::min(lo, v.offset);
    hi = std::max(hi, v.offset + static_cast<std::ptrdiff_t>(v.length));
  }
  r.extent = hi - lo;
  r.leaf = o.leaf;
  r.homogeneous = o.homogeneous;
  return Datatype(make_rep(std::move(r)));
}

Datatype Datatype::indexed(std::span<const int> blocklens,
                           std::span<const int> displs, const Datatype& old) {
  expects(blocklens.size() == displs.size() && old.valid(),
          "Datatype::indexed: array size mismatch");
  TypeRep r;
  const TypeRep& o = *old.rep_;
  std::ptrdiff_t hi = 0;
  for (std::size_t b = 0; b < blocklens.size(); ++b) {
    append_replicated(r.iov, o, displs[b] * o.extent, blocklens[b]);
    hi = std::max(hi, (displs[b] + blocklens[b]) * o.extent);
  }
  r.extent = hi;
  r.leaf = o.leaf;
  r.homogeneous = o.homogeneous;
  return Datatype(make_rep(std::move(r)));
}

Datatype Datatype::hindexed(std::span<const int> blocklens,
                            std::span<const std::ptrdiff_t> byte_displs,
                            const Datatype& old) {
  expects(blocklens.size() == byte_displs.size() && old.valid(),
          "Datatype::hindexed: array size mismatch");
  TypeRep r;
  const TypeRep& o = *old.rep_;
  std::ptrdiff_t hi = 0;
  for (std::size_t b = 0; b < blocklens.size(); ++b) {
    append_replicated(r.iov, o, byte_displs[b], blocklens[b]);
    hi = std::max(hi, byte_displs[b] + blocklens[b] * o.extent);
  }
  r.extent = hi;
  r.leaf = o.leaf;
  r.homogeneous = o.homogeneous;
  return Datatype(make_rep(std::move(r)));
}

Datatype Datatype::structure(std::span<const int> blocklens,
                             std::span<const std::ptrdiff_t> byte_displs,
                             std::span<const Datatype> types) {
  expects(blocklens.size() == byte_displs.size() &&
              blocklens.size() == types.size(),
          "Datatype::structure: array size mismatch");
  TypeRep r;
  std::ptrdiff_t hi = 0;
  r.homogeneous = true;
  bool first = true;
  for (std::size_t b = 0; b < blocklens.size(); ++b) {
    expects(types[b].valid(), "Datatype::structure: invalid member type");
    const TypeRep& o = *types[b].rep_;
    append_replicated(r.iov, o, byte_displs[b], blocklens[b]);
    hi = std::max(hi, byte_displs[b] + blocklens[b] * o.extent);
    if (first) {
      r.leaf = o.leaf;
      first = false;
    } else if (r.leaf != o.leaf) {
      r.homogeneous = false;
    }
    r.homogeneous = r.homogeneous && o.homogeneous;
  }
  r.extent = hi;
  return Datatype(make_rep(std::move(r)));
}

Datatype Datatype::subarray(std::span<const int> sizes,
                            std::span<const int> subsizes,
                            std::span<const int> starts,
                            const Datatype& old) {
  const std::size_t nd = sizes.size();
  expects(nd >= 1 && subsizes.size() == nd && starts.size() == nd &&
              old.valid(),
          "Datatype::subarray: dimension mismatch");
  std::ptrdiff_t total = 1;
  for (std::size_t d = 0; d < nd; ++d) {
    expects(subsizes[d] >= 0 && starts[d] >= 0 &&
                starts[d] + subsizes[d] <= sizes[d],
            "Datatype::subarray: window out of bounds");
    total *= sizes[d];
  }
  const TypeRep& o = *old.rep_;

  // Byte stride of each dimension (C order: last dimension is contiguous).
  std::vector<std::ptrdiff_t> stride(nd);
  stride[nd - 1] = o.extent;
  for (std::size_t d = nd - 1; d > 0; --d) {
    stride[d - 1] = stride[d] * sizes[d];
  }

  TypeRep r;
  // Walk every index combination of the outer dimensions; the innermost
  // run of subsizes[nd-1] old-elements is appended contiguously.
  bool empty_window = false;
  for (std::size_t d = 0; d < nd; ++d) empty_window |= subsizes[d] == 0;

  std::vector<int> idx(nd, 0);
  for (; !empty_window;) {
    std::ptrdiff_t off = 0;
    for (std::size_t d = 0; d + 1 < nd; ++d) {
      off += (starts[d] + idx[d]) * stride[d];
    }
    off += starts[nd - 1] * stride[nd - 1];
    append_replicated(r.iov, o, off, subsizes[nd - 1]);

    // Odometer over the outer dimensions (rightmost varies fastest).
    bool wrapped_all = true;
    for (std::size_t d = nd - 1; d-- > 0;) {
      if (++idx[d] < subsizes[d]) {
        wrapped_all = false;
        break;
      }
      idx[d] = 0;
    }
    if (wrapped_all) break;
  }
  r.extent = total * o.extent;
  r.leaf = o.leaf;
  r.homogeneous = o.homogeneous;
  return Datatype(make_rep(std::move(r)));
}

Datatype Datatype::resized(const Datatype& old, std::ptrdiff_t new_extent) {
  expects(old.valid() && new_extent >= 0, "Datatype::resized: bad arguments");
  TypeRep r = *old.rep_;
  r.extent = new_extent;
  finalize(r);
  return Datatype(std::make_shared<const TypeRep>(std::move(r)));
}

}  // namespace mpx::dtype
