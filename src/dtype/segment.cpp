#include "mpx/dtype/segment.hpp"

#include <algorithm>
#include <cstring>

namespace mpx::dtype {

Segment::Segment(void* buf, std::size_t count, Datatype dt)
    : buf_(static_cast<std::byte*>(buf)), count_(count), dt_(std::move(dt)) {
  expects(dt_.valid(), "Segment: invalid datatype");
  packed_size_ = count_ * dt_.size();
}

void Segment::rewind() {
  pos_ = 0;
  elem_ = 0;
  piece_ = 0;
  piece_off_ = 0;
}

template <class MoveFn>
std::size_t Segment::walk(std::size_t n, MoveFn&& move) {
  const auto iov = dt_.iov();
  const std::ptrdiff_t extent = dt_.extent();
  std::size_t moved = 0;
  while (moved < n && pos_ < packed_size_) {
    const Iov& piece = iov[piece_];
    std::byte* typed =
        buf_ + static_cast<std::ptrdiff_t>(elem_) * extent + piece.offset +
        static_cast<std::ptrdiff_t>(piece_off_);
    const std::size_t avail = piece.length - piece_off_;
    const std::size_t len = std::min(avail, n - moved);
    move(typed, len);
    moved += len;
    pos_ += len;
    piece_off_ += len;
    if (piece_off_ == piece.length) {
      piece_off_ = 0;
      if (++piece_ == iov.size()) {
        piece_ = 0;
        ++elem_;
      }
    }
  }
  return moved;
}

std::size_t Segment::pack(base::ByteSpan out) {
  std::size_t produced = 0;
  return walk(out.size(), [&](std::byte* typed, std::size_t len) {
    std::memcpy(out.data() + produced, typed, len);
    produced += len;
  });
}

std::size_t Segment::unpack(base::ConstByteSpan in) {
  std::size_t consumed = 0;
  return walk(in.size(), [&](std::byte* typed, std::size_t len) {
    std::memcpy(typed, in.data() + consumed, len);
    consumed += len;
  });
}

std::size_t pack_all(const void* src, std::size_t count, const Datatype& dt,
                     base::ByteSpan out) {
  Segment seg(const_cast<void*>(src), count, dt);
  expects(out.size() >= seg.packed_size(), "pack_all: output too small");
  return seg.pack(out);
}

std::size_t unpack_all(base::ConstByteSpan in, void* dst, std::size_t count,
                       const Datatype& dt) {
  Segment seg(dst, count, dt);
  return seg.unpack(in);
}

}  // namespace mpx::dtype
