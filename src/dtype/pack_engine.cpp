#include "mpx/dtype/pack_engine.hpp"

#include <algorithm>

namespace mpx::dtype {

PackWork::PackWork(PackDir dir, void* typed_buf, std::size_t count,
                   Datatype dt, base::ByteSpan packed, std::size_t chunk)
    : dir_(dir),
      seg_(typed_buf, count, std::move(dt)),
      packed_(packed),
      chunk_(chunk == 0 ? seg_.packed_size() : chunk) {
  expects(packed_.size() >= seg_.packed_size(),
          "PackWork: packed buffer too small");
}

bool PackWork::poll() {
  if (seg_.done()) return false;
  const std::size_t pos = seg_.position();
  const std::size_t n =
      std::min(chunk_, seg_.packed_size() - pos);
  if (dir_ == PackDir::pack) {
    seg_.pack(packed_.subspan(pos, n));
  } else {
    seg_.unpack(base::ConstByteSpan(packed_.data() + pos, n));
  }
  return seg_.done();
}

void PackEngine::submit(std::unique_ptr<PackWork> work, DoneFn on_done,
                        void* cookie) {
  expects(work != nullptr, "PackEngine::submit: null work");
  active_.push_back(Entry{std::move(work), on_done, cookie});
}

int PackEngine::progress(int* made_progress) {
  int completed = 0;
  for (auto it = active_.begin(); it != active_.end();) {
    if (made_progress != nullptr) *made_progress = 1;
    if (it->work->poll()) {
      if (it->on_done != nullptr) it->on_done(it->cookie);
      it = active_.erase(it);
      ++completed;
    } else {
      ++it;
    }
  }
  return completed;
}

}  // namespace mpx::dtype
