#include "mpx/base/cvar.hpp"

#include <cstdlib>
#include <string>

namespace mpx::base {
namespace {

// getenv is thread-safe as long as nothing calls setenv/putenv concurrently;
// mpx never mutates the environment, so the clang-tidy concurrency warning
// does not apply here.
const char* get_env(const char* name) {
  return std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
}

}  // namespace

std::int64_t cvar_int(const char* name, std::int64_t def) {
  const char* v = get_env(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 0);
  return (end != nullptr && *end == '\0') ? parsed : def;
}

double cvar_double(const char* name, double def) {
  const char* v = get_env(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : def;
}

bool cvar_bool(const char* name, bool def) {
  const char* v = get_env(name);
  if (v == nullptr || *v == '\0') return def;
  const std::string s(v);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return def;
}

std::string cvar_string(const char* name, const std::string& def) {
  const char* v = get_env(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : def;
}

}  // namespace mpx::base
