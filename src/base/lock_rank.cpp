#include "mpx/base/lock_rank.hpp"

#if MPX_LOCK_RANK_CHECKS

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__GLIBC__)
#include <execinfo.h>
#define MPX_HAVE_BACKTRACE 1
#else
#define MPX_HAVE_BACKTRACE 0
#endif

#include "mpx/base/cvar.hpp"

namespace mpx::base {

const char* lock_rank_name(LockRank r) noexcept {
  switch (r) {
    case LockRank::none: return "none";
    case LockRank::control: return "control";
    case LockRank::vci: return "vci";
    case LockRank::stream: return "stream";
    case LockRank::task_queue: return "task_queue";
    case LockRank::transport: return "transport";
    case LockRank::transport_channel: return "transport_channel";
  }
  return "?";
}

namespace lock_rank {
namespace {

constexpr int kMaxFrames = 24;

/// One held ranked lock. The backtrace is captured only when backtrace
/// recording is on (it costs an unwind per acquire); with capture off the
/// frames array is never written, so a push touches only the first three
/// fields.
struct Held {
  const void* lock;
  const char* name;
  LockRank rank;
  int n_frames;
  void* frames[kMaxFrames];
};

/// Per-thread stack of held ranked locks, in acquisition order. The
/// validator sits on every ranked acquire/release of the datapath, so the
/// stack is a fixed-capacity array written in place: no heap traffic, no
/// element copies, and the (overwhelmingly common) LIFO release pops in
/// O(1). The capacity is far above the deepest legal chain — the rank
/// order itself bounds nesting to one lock per rank plus recursive
/// re-acquisitions.
constexpr std::size_t kMaxHeld = 64;
struct HeldStack {
  std::size_t n = 0;
  Held slots[kMaxHeld];
};
thread_local HeldStack t_held;

std::atomic<int> g_enabled{-1};     // -1: read env on first use
std::atomic<int> g_backtraces{-1};  // -1: read env on first use

bool flag(std::atomic<int>& f, const char* env, bool def) noexcept {
  int v = f.load(std::memory_order_relaxed);
  if (v < 0) {
    v = cvar_bool(env, def) ? 1 : 0;
    f.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

bool backtraces_on() noexcept {
  return flag(g_backtraces, "MPX_LOCK_RANK_BACKTRACE", false);
}

void capture(Held& h) {
#if MPX_HAVE_BACKTRACE
  if (backtraces_on()) {
    h.n_frames = backtrace(h.frames, kMaxFrames);
    return;
  }
#endif
  h.n_frames = 0;
}

void dump_frames(void* const* frames, int n, const char* what) {
#if MPX_HAVE_BACKTRACE
  if (n > 0) {
    std::fprintf(stderr, "  %s backtrace:\n", what);
    backtrace_symbols_fd(frames, n, /*fd=*/2);
  } else {
    std::fprintf(stderr,
                 "  %s backtrace: <not captured; set "
                 "MPX_LOCK_RANK_BACKTRACE=1>\n",
                 what);
  }
#else
  (void)frames;
  (void)n;
  std::fprintf(stderr, "  %s backtrace: <unavailable on this platform>\n",
               what);
#endif
}

[[noreturn]] void report_violation(const Held& conflicting, const void* lock,
                                   const char* name, LockRank rank) {
  // One big fprintf-per-line dump: this runs on the way to abort(), so
  // keep it allocation-light and unconditional.
  std::fprintf(stderr,
               "\n=== mpx lock-rank violation (potential deadlock) ===\n");
  std::fprintf(stderr,
               "acquiring lock \"%s\" (rank %s=%d, %p) while holding lock "
               "\"%s\" (rank %s=%d, %p)\n",
               name, lock_rank_name(rank), static_cast<int>(rank), lock,
               conflicting.name, lock_rank_name(conflicting.rank),
               static_cast<int>(conflicting.rank), conflicting.lock);
  std::fprintf(stderr,
               "lock ranks must strictly increase within a thread "
               "(control < vci < stream < task_queue < transport); see "
               "docs/architecture.md \"Threading model & lock hierarchy\"\n");
  std::fprintf(stderr, "held ranked locks (acquisition order):\n");
  for (std::size_t i = 0; i < t_held.n; ++i) {
    const Held& h = t_held.slots[i];
    std::fprintf(stderr, "  - \"%s\" (rank %s=%d, %p)\n", h.name,
                 lock_rank_name(h.rank), static_cast<int>(h.rank), h.lock);
  }
  dump_frames(conflicting.frames, conflicting.n_frames,
              "conflicting acquisition");
#if MPX_HAVE_BACKTRACE
  void* here[kMaxFrames];
  const int n = backtrace(here, kMaxFrames);
  dump_frames(here, n, "current");
#endif
  std::fprintf(stderr, "=== aborting ===\n");
  std::fflush(stderr);
  std::abort();
}

void push(const void* lock, const char* name, LockRank rank) {
  if (t_held.n == kMaxHeld) {
    std::fprintf(stderr,
                 "mpx lock-rank: %zu ranked locks held by one thread — "
                 "acquisitions are leaking; aborting\n",
                 kMaxHeld);
    std::fflush(stderr);
    std::abort();
  }
  Held& h = t_held.slots[t_held.n++];
  h.lock = lock;
  h.name = name != nullptr ? name : "<unnamed>";
  h.rank = rank;
  capture(h);
}

}  // namespace

bool enabled() noexcept {
  return flag(g_enabled, "MPX_LOCK_RANK", true);
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_backtraces(bool on) noexcept {
  g_backtraces.store(on ? 1 : 0, std::memory_order_relaxed);
}

void on_acquire(const void* lock, const char* name, LockRank rank) {
  if (!enabled()) return;
  // Re-acquisition of a lock this thread already holds is legal for the
  // recursive InstrumentedMutex; skip the order check but still push so the
  // matching unlock pops correctly.
  const Held* conflicting = nullptr;
  for (std::size_t i = 0; i < t_held.n; ++i) {
    const Held& h = t_held.slots[i];
    if (h.lock == lock) {
      push(lock, name, rank);
      return;
    }
    // The strictest violation to report: the highest-ranked held lock that
    // is >= the incoming rank.
    if (h.rank >= rank &&
        (conflicting == nullptr || h.rank > conflicting->rank)) {
      conflicting = &h;
    }
  }
  if (conflicting != nullptr) report_violation(*conflicting, lock, name, rank);
  push(lock, name, rank);
}

void on_try_acquire(const void* lock, const char* name, LockRank rank) {
  if (!enabled()) return;
  push(lock, name, rank);
}

void on_release(const void* lock) noexcept {
  if (!enabled()) return;
  // LIFO release is the overwhelmingly common case: pop the top slot
  // without a scan. Out-of-order releases shift the tail down in place.
  for (std::size_t i = t_held.n; i > 0; --i) {
    if (t_held.slots[i - 1].lock == lock) {
      for (std::size_t j = i; j < t_held.n; ++j) {
        t_held.slots[j - 1] = t_held.slots[j];
      }
      --t_held.n;
      return;
    }
  }
  // Releasing a lock that was never pushed happens when validation was
  // enabled between acquire and release (test toggles); ignore.
}

std::size_t held_count() noexcept { return t_held.n; }

}  // namespace lock_rank
}  // namespace mpx::base

#else  // !MPX_LOCK_RANK_CHECKS

namespace mpx::base {

const char* lock_rank_name(LockRank r) noexcept {
  switch (r) {
    case LockRank::none: return "none";
    case LockRank::control: return "control";
    case LockRank::vci: return "vci";
    case LockRank::stream: return "stream";
    case LockRank::task_queue: return "task_queue";
    case LockRank::transport: return "transport";
    case LockRank::transport_channel: return "transport_channel";
  }
  return "?";
}

}  // namespace mpx::base

#endif  // MPX_LOCK_RANK_CHECKS
