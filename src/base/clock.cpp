#include "mpx/base/clock.hpp"

#include "mpx/base/status.hpp"

namespace mpx::base {

SteadyClock::SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

double SteadyClock::now() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(dt).count();
}

void VirtualClock::advance(double dt) {
  expects(dt >= 0.0, "VirtualClock::advance: dt must be non-negative");
  // Single-writer in practice; CAS loop keeps it safe for concurrent callers.
  double cur = t_.load(std::memory_order_relaxed);
  while (!t_.compare_exchange_weak(cur, cur + dt, std::memory_order_acq_rel)) {
  }
}

void VirtualClock::set(double t) {
  expects(t >= now(), "VirtualClock::set: time must not move backwards");
  t_.store(t, std::memory_order_release);
}

}  // namespace mpx::base
