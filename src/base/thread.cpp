#include "mpx/base/thread.hpp"

#include <pthread.h>

namespace mpx::base {

void set_current_thread_name(const std::string& name) {
  // Linux limits thread names to 15 chars + NUL; truncate silently.
  std::string n = name.substr(0, 15);
  pthread_setname_np(pthread_self(), n.c_str());
}

}  // namespace mpx::base
