#include "mpx/base/log.hpp"

#include <cstdio>

#include "mpx/base/cvar.hpp"

namespace mpx::base {
namespace {

LogLevel parse_level() {
  const std::string s = cvar_string("MPX_LOG_LEVEL", "warn");
  if (s == "error") return LogLevel::error;
  if (s == "info") return LogLevel::info;
  if (s == "debug") return LogLevel::debug;
  return LogLevel::warn;
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::error: return "ERROR";
    case LogLevel::warn: return "WARN";
    case LogLevel::info: return "INFO";
    case LogLevel::debug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  static const LogLevel lvl = parse_level();
  return lvl;
}

void log_line(LogLevel lvl, const std::string& msg) {
  // Single fprintf call so concurrent lines do not interleave mid-line.
  std::fprintf(stderr, "[mpx %s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace mpx::base
