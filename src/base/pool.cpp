// Process-wide pool machinery: the passthrough switch, the thread-safe
// fixed-block and payload pools, and the stats registry. Pool capacities
// come from MPX_POOL_* cvars, read once at pool construction.
#include "mpx/base/pool.hpp"

#include <algorithm>
#include <bit>
#include <mutex>

#include "mpx/base/cvar.hpp"

namespace mpx::base {

bool pool_passthrough() {
  static const bool off = MPX_POOL_ASAN || cvar_bool("MPX_POOL_DISABLE", false);
  return off;
}

// ---- registry ----

namespace {

struct RegistryRow {
  const char* name;
  PoolStats (*fn)(const void*);
  const void* self;
};

// Raw std::mutex, deliberately NOT base::Spinlock: pools register lazily on
// first use (function-local statics), so under MPX_MODEL_CHECK a modeled
// registry lock would add one-time schedule points in whichever schedule
// first touches a pool — breaking the explorer's requirement that every
// schedule replay the same op stream. Registration is init bookkeeping, not
// a protocol under test.
struct Registry {
  std::mutex mu;
  std::vector<RegistryRow> rows;  // guarded by mu
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

namespace pool_detail {

void register_pool(const char* name, PoolStats (*fn)(const void*),
                   const void* self) {
  Registry& r = registry();
  std::lock_guard<std::mutex> g(r.mu);
  r.rows.push_back(RegistryRow{name, fn, self});
}

void unregister_pool(const void* self) {
  Registry& r = registry();
  std::lock_guard<std::mutex> g(r.mu);
  r.rows.erase(std::remove_if(r.rows.begin(), r.rows.end(),
                              [&](const RegistryRow& row) {
                                return row.self == self;
                              }),
               r.rows.end());
}

}  // namespace pool_detail

std::vector<NamedPoolStats> pool_registry_snapshot() {
  // Copy the rows first: fn() takes the pool's own lock, and holding the
  // registry lock across that would order registry -> pool for readers
  // while registration orders pool-construction -> registry.
  std::vector<RegistryRow> rows;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    rows = r.rows;
  }
  std::vector<NamedPoolStats> out;
  out.reserve(rows.size());
  for (const RegistryRow& row : rows) {
    out.push_back(NamedPoolStats{row.name, row.fn(row.self)});
  }
  return out;
}

// ---- FixedBlockPool ----

FixedBlockPool::FixedBlockPool(const char* name, std::size_t block_size,
                               std::size_t max_free)
    : name_(name),
      block_size_(std::max(block_size, sizeof(Node))),
      max_free_(max_free) {
  pool_detail::register_pool(
      name, [](const void* self) {
        return static_cast<const FixedBlockPool*>(self)->stats();
      },
      this);
}

FixedBlockPool::~FixedBlockPool() {
  pool_detail::unregister_pool(this);
  LockGuard<Spinlock> g(mu_);
  while (free_ != nullptr) {
    Node* n = free_;
    free_ = n->next;
    ::operator delete(static_cast<void*>(n));
  }
}

void* FixedBlockPool::allocate(std::size_t n) {
  if (n <= block_size_ && !pool_passthrough()) {
    LockGuard<Spinlock> g(mu_);
    ++st_.live;
    if (free_ != nullptr) {
      Node* node = free_;
      free_ = node->next;
      --st_.free_count;
      ++st_.hits;
      return static_cast<void*>(node);
    }
    ++st_.misses;
  } else {
    LockGuard<Spinlock> g(mu_);
    ++st_.live;
    ++st_.misses;
  }
  return ::operator new(std::max(n, block_size_));
}

void FixedBlockPool::deallocate(void* p) noexcept {
  if (p == nullptr) return;
  {
    LockGuard<Spinlock> g(mu_);
    --st_.live;
    if (st_.free_count < max_free_ && !pool_passthrough()) {
      Node* node = ::new (p) Node{free_};
      free_ = node;
      ++st_.free_count;
      return;
    }
    ++st_.overflow;
  }
  ::operator delete(p);
}

PoolStats FixedBlockPool::stats() const {
  LockGuard<Spinlock> g(mu_);
  return st_;
}

// ---- PayloadPool ----

PayloadPool::PayloadPool()
    : max_block_(static_cast<std::size_t>(
          cvar_int("MPX_POOL_PAYLOAD_MAX",
                   static_cast<std::int64_t>(class_bytes(kClasses - 1))))),
      max_free_per_class_(static_cast<std::size_t>(
          cvar_int("MPX_POOL_PAYLOAD_CAP", 128))) {
  max_block_ = std::min(max_block_, class_bytes(kClasses - 1));
  pool_detail::register_pool(
      "payload", [](const void* self) {
        return static_cast<const PayloadPool*>(self)->stats();
      },
      this);
}

PayloadPool::~PayloadPool() {
  pool_detail::unregister_pool(this);
  for (SizeClass& c : classes_) {
    LockGuard<Spinlock> g(c.mu);
    while (c.free != nullptr) {
      Node* n = c.free;
      c.free = n->next;
      ::operator delete(static_cast<void*>(n));
    }
  }
}

PayloadPool& PayloadPool::instance() {
  static PayloadPool pool;
  return pool;
}

std::size_t PayloadPool::class_of(std::size_t n) {
  const std::size_t rounded = std::bit_ceil(std::max(n, kMinBlock));
  return static_cast<std::size_t>(std::countr_zero(rounded)) -
         static_cast<std::size_t>(std::countr_zero(kMinBlock));
}

std::byte* PayloadPool::allocate(std::size_t n) {
  const std::size_t cls = class_of(n);
  SizeClass& c = classes_[cls];
  {
    LockGuard<Spinlock> g(c.mu);
    ++c.st.live;
    if (c.free != nullptr && !pool_passthrough()) {
      Node* node = c.free;
      c.free = node->next;
      --c.st.free_count;
      ++c.st.hits;
      return static_cast<std::byte*>(static_cast<void*>(node));
    }
    ++c.st.misses;
  }
  return static_cast<std::byte*>(::operator new(class_bytes(cls)));
}

void PayloadPool::release(std::byte* p, std::size_t n) noexcept {
  const std::size_t cls = class_of(n);
  SizeClass& c = classes_[cls];
  {
    LockGuard<Spinlock> g(c.mu);
    --c.st.live;
    if (c.st.free_count < max_free_per_class_ && !pool_passthrough()) {
      Node* node = ::new (static_cast<void*>(p)) Node{c.free};
      c.free = node;
      ++c.st.free_count;
      return;
    }
    ++c.st.overflow;
  }
  ::operator delete(static_cast<void*>(p));
}

PoolStats PayloadPool::stats() const {
  PoolStats total;
  for (const SizeClass& c : classes_) {
    LockGuard<Spinlock> g(c.mu);
    total.hits += c.st.hits;
    total.misses += c.st.misses;
    total.overflow += c.st.overflow;
    total.live += c.st.live;
    total.free_count += c.st.free_count;
  }
  return total;
}

namespace {

void payload_deleter(std::byte* p, std::size_t n) noexcept {
  PayloadPool::instance().release(p, n);
}

}  // namespace

Buffer pooled_buffer(std::size_t n) {
  if (n == 0) return Buffer();
  PayloadPool& pool = PayloadPool::instance();
  if (n > pool.max_block()) return Buffer(n);
  return Buffer(pool.allocate(n), n, &payload_deleter);
}

Buffer pooled_copy(ConstByteSpan src) {
  Buffer b = pooled_buffer(src.size());
  if (!src.empty()) std::memcpy(b.data(), src.data(), src.size());
  return b;
}

}  // namespace mpx::base
