#include "mpx/base/status.hpp"

namespace mpx {

std::string to_string(Err e) {
  switch (e) {
    case Err::success: return "success";
    case Err::truncate: return "truncate";
    case Err::pending: return "pending";
    case Err::cancelled: return "cancelled";
    case Err::no_match: return "no_match";
    case Err::resource: return "resource";
    case Err::internal: return "internal";
    case Err::unsupported: return "unsupported";
    case Err::invalid_schedule: return "invalid_schedule";
  }
  return "unknown";
}

namespace detail {

[[noreturn]] void throw_usage(const char* cond, const char* file, int line) {
  throw UsageError(std::string("precondition failed: ") + cond + " at " +
                   file + ":" + std::to_string(line));
}

[[noreturn]] void throw_internal(const char* cond, const char* file,
                                 int line) {
  throw InternalError(std::string("invariant failed: ") + cond + " at " +
                      file + ":" + std::to_string(line));
}

}  // namespace detail
}  // namespace mpx
