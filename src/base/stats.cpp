#include "mpx/base/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mpx::base {

void LatencyRecorder::add(double seconds) {
  std::lock_guard<std::mutex> g(mu_);
  samples_.push_back(seconds);
}

std::size_t LatencyRecorder::count() const {
  std::lock_guard<std::mutex> g(mu_);
  return samples_.size();
}

void LatencyRecorder::clear() {
  std::lock_guard<std::mutex> g(mu_);
  samples_.clear();
}

LatencySummary LatencyRecorder::summarize() const {
  std::vector<double> s;
  {
    std::lock_guard<std::mutex> g(mu_);
    s = samples_;
  }
  LatencySummary out;
  out.count = s.size();
  if (s.empty()) return out;
  std::sort(s.begin(), s.end());
  double sum = 0.0;
  for (double v : s) sum += v;
  const double mean = sum / static_cast<double>(s.size());
  double var = 0.0;
  for (double v : s) var += (v - mean) * (v - mean);
  var /= static_cast<double>(s.size());
  auto pct = [&s](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(s.size() - 1) + 0.5);
    return s[std::min(idx, s.size() - 1)];
  };
  out.mean_us = mean * 1e6;
  const std::size_t keep = std::max<std::size_t>(1, (s.size() * 99) / 100);
  double trimmed_sum = 0.0;
  for (std::size_t i = 0; i < keep; ++i) trimmed_sum += s[i];
  out.trimmed_mean_us = trimmed_sum / static_cast<double>(keep) * 1e6;
  out.min_us = s.front() * 1e6;
  out.max_us = s.back() * 1e6;
  out.p50_us = pct(0.50) * 1e6;
  out.p99_us = pct(0.99) * 1e6;
  out.stddev_us = std::sqrt(var) * 1e6;
  return out;
}

void MeanAccumulator::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double MeanAccumulator::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

}  // namespace mpx::base
