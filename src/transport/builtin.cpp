// The one translation unit that names the concrete in-tree transports.
// mpx::core calls make_builtin_transports() and from then on sees only
// transport::Transport pointers; keeping construction here lets src/core
// drop every include of shm/nic headers.
#include "mpx/transport/builtin.hpp"

#include <utility>

#include "mpx/core/config.hpp"
#include "mpx/net/nic.hpp"
#include "mpx/shm/shm_transport.hpp"

namespace mpx::transport {

std::vector<std::unique_ptr<Transport>> make_builtin_transports(
    const WorldConfig& cfg, const base::Clock& clock) {
  std::vector<std::unique_ptr<Transport>> out;
  out.push_back(std::make_unique<shm::ShmTransport>(
      cfg.nranks, cfg.max_vcis, cfg.shm_cells, cfg.shm_slot_bytes,
      cfg.shm_deliver_batch, cfg.ranks_per_node, cfg.shm_eager_max));
  TransportLimits net_limits;
  net_limits.eager_max = cfg.net_eager_max;
  net_limits.lightweight_max = cfg.net_lightweight_max;
  net_limits.pipeline_min = cfg.net_pipeline_min;
  net_limits.pipeline_chunk = cfg.net_pipeline_chunk;
  net_limits.pipeline_inflight = cfg.net_pipeline_inflight;
  out.push_back(std::make_unique<net::Nic>(cfg.nranks, cfg.max_vcis, cfg.net,
                                           clock, net_limits));
  return out;
}

}  // namespace mpx::transport
