// Matching-engine semantics: wildcards, FIFO non-overtaking, unexpected
// messages (eager and rendezvous), truncation, probe, cancel, and
// communicator isolation.
#include <gtest/gtest.h>

#include <numeric>
#include <optional>
#include <random>
#include <vector>

#include "test_util.hpp"

using namespace mpx;

TEST(Matching, AnySourceAnyTag) {
  auto w = World::create(WorldConfig{.nranks = 3});
  std::int32_t a = 10, b = 20;
  w->comm_world(1).isend(&a, 1, dtype::Datatype::int32(), 0, 5);
  w->comm_world(2).isend(&b, 1, dtype::Datatype::int32(), 0, 9);

  Comm c0 = w->comm_world(0);
  std::int32_t x = 0, y = 0;
  Status s1 = c0.recv(&x, 1, dtype::Datatype::int32(), any_source, any_tag);
  Status s2 = c0.recv(&y, 1, dtype::Datatype::int32(), any_source, any_tag);
  // Both arrive; order between distinct sources is unspecified, but
  // envelope/status must be internally consistent.
  EXPECT_EQ(x + y, 30);
  EXPECT_TRUE((s1.source == 1 && s1.tag == 5) ||
              (s1.source == 2 && s1.tag == 9));
  EXPECT_TRUE((s2.source == 1 && s2.tag == 5) ||
              (s2.source == 2 && s2.tag == 9));
  EXPECT_NE(s1.source, s2.source);
}

TEST(Matching, FifoNonOvertakingSameSourceSameTag) {
  auto w = World::create(WorldConfig{.nranks = 2});
  Comm c0 = w->comm_world(0);
  for (std::int32_t i = 0; i < 20; ++i) {
    c0.isend(&i, 1, dtype::Datatype::int32(), 1, 7);
    stream_progress(w->null_stream(0));
  }
  Comm c1 = w->comm_world(1);
  for (std::int32_t i = 0; i < 20; ++i) {
    std::int32_t v = -1;
    c1.recv(&v, 1, dtype::Datatype::int32(), 0, 7);
    ASSERT_EQ(v, i);  // strict send order
  }
}

TEST(Matching, TagSelectionAcrossInterleavedSends) {
  auto w = World::create(WorldConfig{.nranks = 2});
  std::int32_t v1 = 111, v2 = 222;
  w->comm_world(0).isend(&v1, 1, dtype::Datatype::int32(), 1, 1);
  w->comm_world(0).isend(&v2, 1, dtype::Datatype::int32(), 1, 2);
  std::int32_t out = 0;
  Comm c1 = w->comm_world(1);
  // Receive tag 2 first even though tag 1 arrived earlier.
  c1.recv(&out, 1, dtype::Datatype::int32(), 0, 2);
  EXPECT_EQ(out, 222);
  c1.recv(&out, 1, dtype::Datatype::int32(), 0, 1);
  EXPECT_EQ(out, 111);
}

TEST(Matching, TruncationEager) {
  auto w = World::create(WorldConfig{.nranks = 2});
  std::vector<std::int32_t> big(64);
  std::iota(big.begin(), big.end(), 0);
  w->comm_world(0).isend(big.data(), big.size(), dtype::Datatype::int32(), 1,
                         0);
  std::vector<std::int32_t> small(8, -1);
  Status st = w->comm_world(1).recv(small.data(), small.size(),
                                    dtype::Datatype::int32(), 0, 0);
  EXPECT_EQ(st.error, Err::truncate);
  EXPECT_EQ(st.count_bytes, 8u * 4u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(small[i], i);
}

TEST(Matching, TruncationRendezvous) {
  WorldConfig cfg{.nranks = 2};
  cfg.shm_eager_max = 64;  // force LMT
  auto w = World::create(cfg);
  std::vector<std::int64_t> big(1024, 42);
  Request s = w->comm_world(0).isend(big.data(), big.size(),
                                     dtype::Datatype::int64(), 1, 0);
  std::vector<std::int64_t> small(10, -1);
  Status st = w->comm_world(1).recv(small.data(), small.size(),
                                    dtype::Datatype::int64(), 0, 0);
  EXPECT_EQ(st.error, Err::truncate);
  EXPECT_EQ(st.count_bytes, 80u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(small[i], 42);
  while (!s.is_complete()) stream_progress(w->null_stream(0));
}

TEST(Matching, UnexpectedRendezvousMatchedLater) {
  WorldConfig cfg{.nranks = 2};
  cfg.shm_eager_max = 64;
  auto w = World::create(cfg);
  std::vector<double> data(512, 3.5);
  Request s = w->comm_world(0).isend(data.data(), data.size(),
                                     dtype::Datatype::float64(), 1, 4);
  // Let the RTS land in the unexpected queue before any recv is posted.
  stream_progress(w->null_stream(1));
  std::vector<double> out(512, 0.0);
  Status st = w->comm_world(1).recv(out.data(), out.size(),
                                    dtype::Datatype::float64(), 0, 4);
  EXPECT_EQ(st.error, Err::success);
  EXPECT_EQ(out, data);
  while (!s.is_complete()) stream_progress(w->null_stream(0));
}

TEST(Matching, IprobeSeesEnvelopeWithoutConsuming) {
  auto w = World::create(WorldConfig{.nranks = 2});
  Comm c1 = w->comm_world(1);
  EXPECT_FALSE(c1.iprobe(0, 3).has_value());

  std::int32_t v = 5;
  w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 3);
  std::optional<Status> p;
  for (int i = 0; i < 10 && !p; ++i) p = c1.iprobe(0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->source, 0);
  EXPECT_EQ(p->tag, 3);
  EXPECT_EQ(p->count_bytes, 4u);
  // Probe again: still there (not consumed).
  EXPECT_TRUE(c1.iprobe(any_source, any_tag).has_value());
  std::int32_t out = 0;
  c1.recv(&out, 1, dtype::Datatype::int32(), 0, 3);
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(c1.iprobe(0, 3).has_value());
}

TEST(Matching, CancelUnmatchedReceive) {
  auto w = World::create(WorldConfig{.nranks = 2});
  std::int32_t buf = 0;
  Request r = w->comm_world(1).irecv(&buf, 1, dtype::Datatype::int32(), 0, 8);
  EXPECT_FALSE(r.is_complete());
  r.cancel();
  ASSERT_TRUE(r.is_complete());
  EXPECT_TRUE(r.status().cancelled);
  EXPECT_EQ(r.status().error, Err::cancelled);
  // A message sent afterwards is not swallowed by the cancelled recv.
  std::int32_t v = 77;
  w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 8);
  std::int32_t out = 0;
  w->comm_world(1).recv(&out, 1, dtype::Datatype::int32(), 0, 8);
  EXPECT_EQ(out, 77);
}

TEST(Matching, CancelMatchedReceiveIsNoop) {
  auto w = World::create(WorldConfig{.nranks = 2});
  std::int32_t v = 9, out = 0;
  w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 0);
  Request r = w->comm_world(1).irecv(&out, 1, dtype::Datatype::int32(), 0, 0);
  while (!r.is_complete()) stream_progress(w->null_stream(1));
  r.cancel();  // already complete: no effect
  EXPECT_FALSE(r.status().cancelled);
  EXPECT_EQ(out, 9);
}

TEST(Matching, CommIsolationSameTag) {
  auto w = World::create(WorldConfig{.nranks = 2});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm a = w->comm_world(rank);
    Comm b = a.dup();  // collective
    if (rank == 0) {
      std::int32_t va = 1, vb = 2;
      a.isend(&va, 1, dtype::Datatype::int32(), 1, 0);
      b.isend(&vb, 1, dtype::Datatype::int32(), 1, 0);
    } else {
      // Same source, same tag, different communicators: matching must go by
      // context id.
      std::int32_t vb = 0, va = 0;
      b.recv(&vb, 1, dtype::Datatype::int32(), 0, 0);
      a.recv(&va, 1, dtype::Datatype::int32(), 0, 0);
      EXPECT_EQ(va, 1);
      EXPECT_EQ(vb, 2);
    }
    w->finalize_rank(rank);
  });
}

TEST(Matching, SplitCommunicators) {
  auto w = World::create(WorldConfig{.nranks = 4});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    Comm sub = c.split(rank % 2, rank);  // evens and odds
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 2);
    EXPECT_EQ(sub.rank(), rank / 2);
    // Ring within the sub-communicator.
    std::int32_t token = rank;
    std::int32_t got = -1;
    const int peer = 1 - sub.rank();
    Request s = sub.isend(&token, 1, dtype::Datatype::int32(), peer, 0);
    sub.recv(&got, 1, dtype::Datatype::int32(), peer, 0);
    EXPECT_EQ(got % 2, rank % 2);  // stayed within our color
    while (!s.is_complete()) stream_progress(w->null_stream(rank));
    w->finalize_rank(rank);
  });
}

// ---- randomized property test: binned matcher vs reference linear matcher
//
// Drives a real World through a random schedule of sends (random source and
// tag), receives (with any_source / any_tag wildcards), iprobe, and
// improbe/imrecv (including dropped MatchedMsg handles, which requeue), and
// checks every delivery against a reference matcher that models MPI
// semantics with two plain linear scans — the seed implementation. Arrival
// order is pinned by draining the receiver after every send, so the model's
// arrival order equals the real one and match results must be IDENTICAL,
// not merely plausible. Runs single-threaded (deterministic under TSan);
// exercised at match_bins = 1 (every channel collides) and 64.
namespace {

struct ModelMsg {
  int src = -1;
  int tag = -1;
  std::int32_t id = -1;  ///< unique payload, identifies the message
};

struct ModelRecv {
  int src = -1;  ///< any_source or world rank
  int tag = -1;  ///< any_tag or tag
  std::size_t idx = 0;  ///< index into the issued-receive arrays
};

bool model_match(const ModelRecv& r, const ModelMsg& m) {
  return (r.src == any_source || r.src == m.src) &&
         (r.tag == any_tag || r.tag == m.tag);
}

void run_matching_property(int match_bins, unsigned seed) {
  SCOPED_TRACE(testing::Message()
               << "match_bins=" << match_bins << " seed=" << seed);
  WorldConfig cfg{.nranks = 5};
  cfg.match_bins = match_bins;
  auto w = World::create(cfg);
  Comm c0 = w->comm_world(0);
  const Stream s0 = w->null_stream(0);
  std::mt19937 rng(seed);
  auto pick = [&](int n) { return static_cast<int>(rng() % n); };

  constexpr int kOps = 300;
  constexpr int kSources = 4;  // world ranks 1..4 send to rank 0
  constexpr int kTags = 3;

  // Reference matcher state (linear scans, post/arrival order).
  std::vector<ModelRecv> mposted;
  std::vector<ModelMsg> munexp;

  // Issued receives. Buffers must have stable addresses: reserved up front.
  std::vector<Request> reqs;
  std::vector<std::int32_t> bufs;
  std::vector<std::optional<ModelMsg>> expected;
  reqs.reserve(kOps);
  bufs.reserve(kOps);

  std::int32_t next_id = 1000;

  // Model one arrival at rank 0 and return the matched posted receive's
  // index, or nullopt when the message parks as unexpected.
  auto model_arrival = [&](const ModelMsg& m) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < mposted.size(); ++i) {
      if (model_match(mposted[i], m)) {
        const std::size_t idx = mposted[i].idx;
        expected[idx] = m;
        mposted.erase(mposted.begin() + static_cast<std::ptrdiff_t>(i));
        return idx;
      }
    }
    munexp.push_back(m);
    return std::nullopt;
  };

  for (int op = 0; op < kOps; ++op) {
    const int kind = pick(10);
    if (kind < 5) {
      // --- send: 4-byte eager from a random source ---
      ModelMsg m;
      m.src = 1 + pick(kSources);
      m.tag = pick(kTags);
      m.id = next_id++;
      const auto hit = model_arrival(m);
      w->comm_world(m.src).isend(&m.id, 1, dtype::Datatype::int32(), 0,
                                 m.tag);
      // Drain rank 0 until the arrival is applied, pinning arrival order to
      // send order (single-threaded, so this is deterministic).
      if (hit.has_value()) {
        while (!reqs[*hit].is_complete()) stream_progress(s0);
      } else {
        while (w->vci_match_counters(0, 0).unexpected < munexp.size()) {
          stream_progress(s0);
        }
      }
    } else if (kind < 8) {
      // --- receive, possibly wildcard ---
      ModelRecv r;
      r.src = pick(4) == 0 ? any_source : 1 + pick(kSources);
      r.tag = pick(4) == 0 ? any_tag : pick(kTags);
      r.idx = reqs.size();
      bufs.push_back(-1);
      expected.emplace_back();
      // Model the unexpected-queue scan the same way irecv does.
      bool immediate = false;
      for (std::size_t i = 0; i < munexp.size(); ++i) {
        if (model_match(r, munexp[i])) {
          expected[r.idx] = munexp[i];
          munexp.erase(munexp.begin() + static_cast<std::ptrdiff_t>(i));
          immediate = true;
          break;
        }
      }
      if (!immediate) mposted.push_back(r);
      reqs.push_back(c0.irecv(&bufs[r.idx], 1, dtype::Datatype::int32(),
                              r.src, r.tag));
      // Eager payloads deliver inside irecv when the message already
      // arrived; otherwise the receive must still be pending.
      ASSERT_EQ(reqs[r.idx].is_complete(), immediate);
    } else if (kind == 8) {
      // --- iprobe(any, any): envelope of the oldest arrival, unconsumed ---
      const auto p = c0.iprobe(any_source, any_tag);
      ASSERT_EQ(p.has_value(), !munexp.empty());
      if (p.has_value()) {
        EXPECT_EQ(p->source, munexp.front().src);
        EXPECT_EQ(p->tag, munexp.front().tag);
      }
    } else {
      // --- improbe(any, any), then imrecv or drop (drop requeues) ---
      auto m = c0.improbe(any_source, any_tag);
      ASSERT_EQ(m.has_value(), !munexp.empty());
      if (!m.has_value()) continue;
      EXPECT_EQ(m->envelope().source, munexp.front().src);
      EXPECT_EQ(m->envelope().tag, munexp.front().tag);
      if (pick(3) == 0) {
        // Drop the handle: ~MatchedMsg requeues at the front, so the model
        // keeps the message at the head of the queue.
        m.reset();
      } else {
        const ModelMsg claimed = munexp.front();
        munexp.erase(munexp.begin());
        const std::size_t idx = reqs.size();
        bufs.push_back(-1);
        expected.emplace_back(claimed);
        reqs.push_back(c0.imrecv(&bufs[idx], 1, dtype::Datatype::int32(),
                                 std::move(*m)));
        ASSERT_TRUE(reqs[idx].is_complete());
      }
    }
  }

  // Every completed receive must have delivered exactly the message the
  // reference matcher predicted — payload identity and envelope.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (expected[i].has_value()) {
      ASSERT_TRUE(reqs[i].is_complete()) << "recv " << i;
      EXPECT_EQ(bufs[i], expected[i]->id) << "recv " << i;
      EXPECT_EQ(reqs[i].status().source, expected[i]->src) << "recv " << i;
      EXPECT_EQ(reqs[i].status().tag, expected[i]->tag) << "recv " << i;
    } else {
      EXPECT_FALSE(reqs[i].is_complete()) << "recv " << i;
    }
  }
  // Queue depths agree with the model; pending receives cancel cleanly.
  EXPECT_EQ(w->vci_match_counters(0, 0).unexpected, munexp.size());
  EXPECT_EQ(w->vci_match_counters(0, 0).posted, mposted.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (!expected[i].has_value()) {
      reqs[i].cancel();
      ASSERT_TRUE(reqs[i].is_complete());
      EXPECT_TRUE(reqs[i].status().cancelled);
    }
  }
}

}  // namespace

TEST(MatchingProperty, BinnedEqualsLinearReferenceMatcher) {
  for (const int bins : {1, 64}) {
    for (const unsigned seed : {11u, 42u, 1234u}) {
      run_matching_property(bins, seed);
    }
  }
}

TEST(Matching, ZeroByteMessage) {
  auto w = World::create(WorldConfig{.nranks = 2});
  Request s = w->comm_world(0).isend(nullptr, 0, dtype::Datatype::int32(), 1,
                                     1);
  EXPECT_TRUE(s.is_complete());
  Status st =
      w->comm_world(1).recv(nullptr, 0, dtype::Datatype::int32(), 0, 1);
  EXPECT_EQ(st.count_bytes, 0u);
  EXPECT_EQ(st.error, Err::success);
}
