// MPIX_Async extension tests (§3.3, §4.1): hook registration, completion via
// explicit stream progress, spawn, counters, and finalize draining.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "mpx/task/deadline.hpp"
#include "test_util.hpp"

using namespace mpx;

namespace {

WorldConfig vclock_cfg(int nranks = 1) {
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.use_virtual_clock = true;
  return cfg;
}

}  // namespace

TEST(Async, DummyTaskCompletesOnlyWhenPolledPastDeadline) {
  auto w = World::create(vclock_cfg());
  Stream s = w->null_stream(0);
  std::atomic<int> counter{1};
  base::LatencyRecorder rec;
  task::add_dummy_task(s, 1.0, &counter, &rec);

  // Not due yet: polling makes no progress.
  stream_progress(s);
  EXPECT_EQ(counter.load(), 1);

  // Deadline passed but NOT polled: still unobserved. The completion exists
  // in time; only progress observes it (the paper's core premise).
  w->virtual_clock()->advance(1.5);
  EXPECT_EQ(counter.load(), 1);

  stream_progress(s);
  EXPECT_EQ(counter.load(), 0);
  ASSERT_EQ(rec.count(), 1u);
  // Observed 0.5 s late (we advanced to 1.5 with a 1.0 deadline).
  EXPECT_NEAR(rec.summarize().mean_us, 0.5e6, 1.0);
}

TEST(Async, ManyTasksWaitLoop) {
  // Listing 1.3: wait-progress loop on a shared counter.
  auto w = World::create(vclock_cfg());
  Stream s = w->null_stream(0);
  constexpr int kTasks = 10;
  std::atomic<int> counter{kTasks};
  for (int i = 0; i < kTasks; ++i) {
    task::add_dummy_task(s, 0.1 * (i + 1), &counter, nullptr);
  }
  int guard = 0;
  while (counter.load() > 0) {
    w->virtual_clock()->advance(0.05);
    stream_progress(s);
    ASSERT_LT(++guard, 1000);
  }
  EXPECT_EQ(counter.load(), 0);
}

TEST(Async, FinalizeSpinsUntilAsyncTasksComplete) {
  // Listing 1.2: no explicit synchronization — finalize drains everything.
  auto w = World::create(WorldConfig{.nranks = 1});  // steady clock
  Stream s = w->null_stream(0);
  std::atomic<int> counter{5};
  for (int i = 0; i < 5; ++i) {
    task::add_dummy_task(s, 1e-4 * (i + 1), &counter, nullptr);
  }
  w->finalize_rank(0);
  EXPECT_EQ(counter.load(), 0);
}

namespace {

struct SpawnState {
  std::atomic<int>* events;
  int depth;
};

AsyncResult spawning_poll(AsyncThing& thing) {
  auto* st = static_cast<SpawnState*>(thing.state());
  st->events->fetch_add(1);
  if (st->depth > 0) {
    // MPIX_Async_spawn: follow-on task registered after this poll returns.
    thing.spawn(&spawning_poll,
                new SpawnState{st->events, st->depth - 1}, thing.stream());
  }
  delete st;
  return AsyncResult::done;
}

}  // namespace

TEST(Async, SpawnChainsTasks) {
  auto w = World::create(WorldConfig{.nranks = 1});
  Stream s = w->null_stream(0);
  std::atomic<int> events{0};
  async_start(&spawning_poll, new SpawnState{&events, 3}, s);
  // Each progress call pulls one generation out of the mailbox.
  for (int i = 0; i < 10 && events.load() < 4; ++i) stream_progress(s);
  EXPECT_EQ(events.load(), 4);  // root + 3 spawned generations
  w->finalize_rank(0);
}

TEST(Async, FunctionObjectOverload) {
  auto w = World::create(vclock_cfg());
  Stream s = w->null_stream(0);
  int calls = 0;
  bool fired = false;
  async_start(
      [&]() -> AsyncResult {
        ++calls;
        if (w->wtime() >= 0.5) {
          fired = true;
          return AsyncResult::done;
        }
        return AsyncResult::pending;
      },
      s);
  stream_progress(s);
  stream_progress(s);
  EXPECT_FALSE(fired);
  EXPECT_EQ(calls, 2);
  w->virtual_clock()->advance(1.0);
  stream_progress(s);
  EXPECT_TRUE(fired);
  // Hook removed after done: further progress must not call it again.
  stream_progress(s);
  EXPECT_EQ(calls, 3);
}

TEST(Async, EveryPendingTaskPolledEachProgressCall) {
  // The Fig. 7 mechanism: N independent hooks => N polls per progress call.
  auto w = World::create(vclock_cfg());
  Stream s = w->null_stream(0);
  constexpr int kTasks = 32;
  std::atomic<int> polls{0};
  for (int i = 0; i < kTasks; ++i) {
    async_start(
        [&polls, &w]() -> AsyncResult {
          polls.fetch_add(1);
          return w->wtime() >= 1.0 ? AsyncResult::done
                                   : AsyncResult::pending;
        },
        s);
  }
  stream_progress(s);  // drains the mailbox and polls all
  const int after_first = polls.load();
  EXPECT_EQ(after_first, kTasks);
  stream_progress(s);
  EXPECT_EQ(polls.load(), 2 * kTasks);
  w->virtual_clock()->advance(2.0);
  stream_progress(s);
  EXPECT_EQ(polls.load(), 3 * kTasks);
  stream_progress(s);  // all done: no hooks left
  EXPECT_EQ(polls.load(), 3 * kTasks);
}

TEST(Async, HookOnPrivateStreamNotPolledByNullStream) {
  auto w = World::create(vclock_cfg());
  Stream priv = w->stream_create(0);
  std::atomic<int> counter{1};
  task::add_dummy_task(priv, 0.1, &counter, nullptr);
  w->virtual_clock()->advance(1.0);
  stream_progress(w->null_stream(0));
  EXPECT_EQ(counter.load(), 1);  // wrong stream: unobserved
  stream_progress(priv);
  EXPECT_EQ(counter.load(), 0);
  w->stream_free(priv);
}

// --- state-deleter lifecycle (leak regression, PR 5) ---

namespace {

struct LeakProbe {
  std::atomic<int>* deleted;
};

AsyncResult pending_forever(AsyncThing&) { return AsyncResult::pending; }

void leak_probe_deleter(void* p) {
  auto* s = static_cast<LeakProbe*>(p);
  s->deleted->fetch_add(1);
  delete s;
}

AsyncResult immediate_done(AsyncThing&) { return AsyncResult::done; }

void count_only_deleter(void* p) {
  static_cast<std::atomic<int>*>(p)->fetch_add(1);
}

}  // namespace

TEST(AsyncDeleter, WorldTeardownReleasesPendingHookState) {
  // Regression: a hook still pending when the World dies used to leak its
  // extra_state (the runtime freed only its own bookkeeping). The deleter
  // registered at async_start must run exactly once on that path.
  std::atomic<int> deleted{0};
  {
    auto w = World::create(WorldConfig{.nranks = 1});
    Stream s = w->null_stream(0);
    async_start(&pending_forever, new LeakProbe{&deleted}, s,
                &leak_probe_deleter);
    stream_progress(s);  // registered and polled, stays pending
    EXPECT_EQ(deleted.load(), 0);
  }  // ~World drops the pending hook
  EXPECT_EQ(deleted.load(), 1);
}

TEST(AsyncDeleter, NeverPolledHookStillReleased) {
  // The hook can die parked in the stream inbox (registered, never polled).
  std::atomic<int> deleted{0};
  {
    auto w = World::create(WorldConfig{.nranks = 1});
    async_start(&pending_forever, new LeakProbe{&deleted}, w->null_stream(0),
                &leak_probe_deleter);
  }
  EXPECT_EQ(deleted.load(), 1);
}

TEST(AsyncDeleter, PrivateStreamHookReleasedAtTeardown) {
  // stream_free refuses streams with pending work, so a pending hook on a
  // private stream can only die with the World; that path must run the
  // deleter too.
  std::atomic<int> deleted{0};
  {
    auto w = World::create(WorldConfig{.nranks = 1});
    Stream priv = w->stream_create(0);
    async_start(&pending_forever, new LeakProbe{&deleted}, priv,
                &leak_probe_deleter);
    stream_progress(priv);
    EXPECT_EQ(deleted.load(), 0);
  }
  EXPECT_EQ(deleted.load(), 1);
}

TEST(AsyncDeleter, DisarmedWhenPollReturnsDone) {
  // done means poll_fn already released the state (paper contract); firing
  // the deleter afterwards would double-free. It must be disarmed.
  std::atomic<int> fired{0};
  auto w = World::create(WorldConfig{.nranks = 1});
  Stream s = w->null_stream(0);
  async_start(&immediate_done, &fired, s, &count_only_deleter);
  stream_progress(s);
  EXPECT_EQ(fired.load(), 0);
  w->finalize_rank(0);
}

TEST(AsyncDeleter, FunctionOverloadPendingAtTeardownDoesNotLeak) {
  // The std::function overload heap-allocates a trampoline state the user
  // never sees; the asan preset verifies this abandoned-pending path is
  // leak-free (the overload registers its own deleter internally).
  auto w = World::create(WorldConfig{.nranks = 1});
  Stream s = w->null_stream(0);
  auto payload = std::make_shared<std::vector<int>>(1024, 7);
  async_start([payload]() -> AsyncResult { return AsyncResult::pending; }, s);
  stream_progress(s);
  EXPECT_EQ(payload.use_count(), 2);  // test + captured copy still alive
}
