// Model-check: the compiled progress stage table and the fair rotation
// cursor. Two invariants explored across interleavings of concurrent
// progress drivers:
//
//  1. Immutability after publish: the per-VCI stage table (names, order,
//     size) observed through vci_stage_table never changes once the World
//     is constructed, no matter how progress calls interleave.
//
//  2. The cursor never skips a source: with an always-productive stage A
//     registered ahead of a counting stage B, fair rotation must still
//     poll B — the scan resumes after A's hit, so B is reached within two
//     consecutive progress calls (the seed's fixed order would starve B
//     forever; that contrast is asserted natively in
//     test_progress_fairness.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpx/mc/mc.hpp"
#include "mpx/mpx.hpp"

#if MPX_MODEL_CHECK

namespace mc = mpx::mc;
using namespace mpx;

namespace {

/// Stage A: reports progress on every poll (maximal starvation pressure).
class GreedySource final : public core_detail::ProgressSource {
 public:
  explicit GreedySource(std::uint64_t* hits) : hits_(hits) {}
  const char* name() const override { return "mc-greedy"; }
  unsigned mask_bit() const override { return progress_user; }
  bool idle(core_detail::Vci&) override { return false; }
  void poll(core_detail::Vci&, int* made) override {
    ++*hits_;
    *made += 1;
  }

 private:
  std::uint64_t* hits_;
};

/// Stage B: counts how often the engine reaches it.
class CountingSource final : public core_detail::ProgressSource {
 public:
  explicit CountingSource(std::uint64_t* polls) : polls_(polls) {}
  const char* name() const override { return "mc-counter"; }
  unsigned mask_bit() const override { return progress_user; }
  bool idle(core_detail::Vci&) override { return false; }
  void poll(core_detail::Vci&, int*) override { ++*polls_; }

 private:
  std::uint64_t* polls_;
};

std::vector<std::string> table_names(const World& w) {
  std::vector<std::string> names;
  for (const auto& st : w.vci_stage_table(0, 0)) names.push_back(st.name);
  return names;
}

}  // namespace

TEST(McProgressRegistry, TableImmutableAndCursorNeverSkips) {
  mc::Options opt;
  opt.name = "progress_registry";
  const mc::Result res = mc::explore(opt, [] {
    // Counters live on the schedule's stack: each explored interleaving
    // starts from a fresh World and fresh counts (determinism).
    std::uint64_t greedy_hits = 0, counter_polls = 0;
    WorldConfig cfg;
    cfg.nranks = 1;
    cfg.extra_sources.push_back([&](World&) {
      return std::make_unique<GreedySource>(&greedy_hits);
    });
    cfg.extra_sources.push_back([&](World&) {
      return std::make_unique<CountingSource>(&counter_polls);
    });
    auto w = World::create(cfg);
    mc::check(w->progress_registry().published(),
              "registry must be frozen after World construction");

    const std::vector<std::string> before = table_names(*w);

    // Two concurrent drivers on the same VCI (serialized by its lock, in
    // every order the checker can produce).
    mc::thread rival([&] {
      for (int i = 0; i < 2; ++i) {
        stream_progress(w->null_stream(0));
        mc::yield();
      }
    });
    for (int i = 0; i < 2; ++i) {
      stream_progress(w->null_stream(0));
      mc::check(table_names(*w) == before,
                "stage table mutated after publish");
      mc::yield();
    }
    rival.join();

    // 4 progress calls total. The greedy stage hit on every scan that
    // reached it, yet rotation must have carried the cursor past it to the
    // counting stage within two consecutive calls: >= 3 of the 4 scans
    // start at or pass mc-counter.
    mc::check(greedy_hits >= 1, "greedy stage never polled");
    mc::check(counter_polls >= 1,
              "cursor skipped a registered source (starvation)");
    mc::check(table_names(*w) == before, "stage table mutated");

    // The per-stage counters in the table reflect what actually ran.
    std::uint64_t greedy_table_hits = 0, counter_table_calls = 0;
    for (const auto& st : w->vci_stage_table(0, 0)) {
      if (st.name == "mc-greedy") greedy_table_hits = st.hits;
      if (st.name == "mc-counter") counter_table_calls = st.calls;
    }
    mc::check(greedy_table_hits == greedy_hits,
              "greedy hit counter out of sync with stage table");
    mc::check(counter_table_calls == counter_polls,
              "counter poll count out of sync with stage table");
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

#else
TEST(McProgressRegistry, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
