// Extended collective coverage: exscan, v-variants, stream-comm
// collectives, and concurrent collectives across communicators.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpx/coll/coll.hpp"
#include "test_util.hpp"

using namespace mpx;

TEST(CollVariable, Exscan) {
  auto w = World::create(WorldConfig{.nranks = 5});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::int32_t v = rank + 1;
    std::int32_t out = -999;
    coll::exscan(&v, &out, 1, dtype::Datatype::int32(), dtype::ReduceOp::sum,
                 c);
    if (rank == 0) {
      EXPECT_EQ(out, -999);  // rank 0's recvbuf untouched (MPI semantics)
    } else {
      EXPECT_EQ(out, rank * (rank + 1) / 2);  // sum of 1..rank
    }
    w->finalize_rank(rank);
  });
}

TEST(CollVariable, GathervScattervRoundTrip) {
  auto w = World::create(WorldConfig{.nranks = 4});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int n = c.size();
    // Rank r contributes r+1 elements.
    std::vector<std::size_t> counts, displs;
    std::size_t total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(static_cast<std::size_t>(r) + 1);
      displs.push_back(total);
      total += counts.back();
    }
    std::vector<std::int32_t> mine(counts[static_cast<std::size_t>(rank)],
                                   rank * 10);
    std::vector<std::int32_t> gathered(total, -1);
    coll::gatherv(mine.data(), mine.size(), dtype::Datatype::int32(),
                  gathered.data(), counts, displs, 2, c);
    if (rank == 2) {
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
          ASSERT_EQ(gathered[displs[static_cast<std::size_t>(r)] + i], r * 10);
        }
      }
    }
    // Scatter it back out; every rank must recover its own block.
    std::vector<std::int32_t> back(counts[static_cast<std::size_t>(rank)], -1);
    coll::scatterv(gathered.data(), counts, displs, dtype::Datatype::int32(),
                   back.data(), back.size(), 2, c);
    for (auto x : back) ASSERT_EQ(x, rank * 10);
    w->finalize_rank(rank);
  });
}

TEST(CollVariable, Allgatherv) {
  auto w = World::create(WorldConfig{.nranks = 5});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int n = c.size();
    std::vector<std::size_t> counts, displs;
    std::size_t total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(static_cast<std::size_t>(2 * r + 1));
      displs.push_back(total);
      total += counts.back();
    }
    std::vector<std::int64_t> mine(counts[static_cast<std::size_t>(rank)],
                                   100 + rank);
    std::vector<std::int64_t> all(total, -1);
    coll::allgatherv(mine.data(), mine.size(), dtype::Datatype::int64(),
                     all.data(), counts, displs, c);
    for (int r = 0; r < n; ++r) {
      for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
        ASSERT_EQ(all[displs[static_cast<std::size_t>(r)] + i], 100 + r);
      }
    }
    w->finalize_rank(rank);
  });
}

TEST(CollStream, CollectivesOnStreamCommunicator) {
  // Collectives on a stream communicator run entirely on the streams' VCIs;
  // the default stream stays quiet.
  auto w = World::create(WorldConfig{.nranks = 3});
  mpx_test::run_ranks(*w, [&](int rank) {
    Stream s = w->stream_create(rank);
    Comm sc = w->comm_world(rank).with_stream(s);
    const auto vci0_calls_before = w->vci_progress_calls(rank, 0);

    std::int64_t v = rank + 1, sum = 0;
    coll::allreduce(&v, &sum, 1, dtype::Datatype::int64(),
                    dtype::ReduceOp::sum, sc);
    EXPECT_EQ(sum, 6);
    std::int32_t b = rank == 0 ? 55 : 0;
    coll::bcast(&b, 1, dtype::Datatype::int32(), 0, sc);
    EXPECT_EQ(b, 55);

    EXPECT_EQ(w->vci_progress_calls(rank, 0), vci0_calls_before);
    w->finalize_rank(rank);
  });
}

TEST(CollStream, ConcurrentCollectivesOnSplitComms) {
  // Disjoint split communicators run collectives concurrently without
  // interference (distinct collective contexts).
  auto w = World::create(WorldConfig{.nranks = 6});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    Comm sub = c.split(rank % 2, rank);
    std::int64_t v = rank, sum = -1;
    coll::allreduce(&v, &sum, 1, dtype::Datatype::int64(),
                    dtype::ReduceOp::sum, sub);
    const std::int64_t expect = rank % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5;
    EXPECT_EQ(sum, expect);
    // A world-comm barrier still works across the split.
    coll::barrier(c);
    w->finalize_rank(rank);
  });
}

TEST(CollEdge, SingleRankCollectivesAreLocal) {
  auto w = World::create(WorldConfig{.nranks = 1});
  Comm c = w->comm_world(0);
  std::int32_t v = 7, out = 0;
  coll::allreduce(&v, &out, 1, dtype::Datatype::int32(),
                  dtype::ReduceOp::sum, c);
  EXPECT_EQ(out, 7);
  coll::bcast(&v, 1, dtype::Datatype::int32(), 0, c);
  coll::barrier(c);
  std::int32_t scanout = 0;
  coll::scan(&v, &scanout, 1, dtype::Datatype::int32(),
             dtype::ReduceOp::sum, c);
  EXPECT_EQ(scanout, 7);
  w->finalize_rank(0);
}

TEST(CollEdge, ZeroCountCollectives) {
  auto w = World::create(WorldConfig{.nranks = 3});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    coll::allreduce(nullptr, nullptr, 0, dtype::Datatype::int32(),
                    dtype::ReduceOp::sum, c);
    coll::bcast(nullptr, 0, dtype::Datatype::int32(), 1, c);
    w->finalize_rank(rank);
  });
}

TEST(CollPersistent, BarrierAndAllreduceCycles) {
  auto w = World::create(WorldConfig{.nranks = 4});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::int64_t in = 0, out = 0;
    Request pbar = coll::barrier_init(c);
    Request pall = coll::allreduce_init(&in, &out, 1,
                                        dtype::Datatype::int64(),
                                        dtype::ReduceOp::sum, c);
    EXPECT_TRUE(pbar.is_complete());  // born inactive
    for (int cycle = 0; cycle < 5; ++cycle) {
      in = rank * 10 + cycle;
      start(pall);
      pall.wait();
      EXPECT_EQ(out, (0 + 10 + 20 + 30) + 4 * cycle);
      start(pbar);
      pbar.wait();
    }
    w->finalize_rank(rank);
  });
}

TEST(CollPersistent, BcastCycles) {
  auto w = World::create(WorldConfig{.nranks = 3});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::int32_t buf = -1;
    Request pb = coll::bcast_init(&buf, 1, dtype::Datatype::int32(), 1, c);
    for (int cycle = 0; cycle < 4; ++cycle) {
      if (rank == 1) buf = cycle * 7;
      start(pb);
      pb.wait();
      EXPECT_EQ(buf, cycle * 7);
      coll::barrier(c);  // keep cycles in lock-step across members
    }
    w->finalize_rank(rank);
  });
}
