// Resource-lifecycle tests: every protocol path must release all of its
// request references — RequestImpl::live_count is the tripwire. A leaked
// protocol reference (cookie taken but never adopted, posted-list entry
// never dropped, ...) shows up here as a nonzero delta.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpx/coll/coll.hpp"
#include "mpx/ext/continue.hpp"
#include "test_util.hpp"

using namespace mpx;
using core_detail::RequestImpl;

namespace {

long live() { return RequestImpl::live_count().load(); }

}  // namespace

TEST(Lifecycle, EagerPathReleasesEverything) {
  const long base = live();
  {
    auto w = World::create(WorldConfig{.nranks = 2});
    for (int i = 0; i < 50; ++i) {
      std::int32_t v = i, out = 0;
      Request s = w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1,
                                         0);
      w->comm_world(1).recv(&out, 1, dtype::Datatype::int32(), 0, 0);
      s.wait();
    }
  }
  EXPECT_EQ(live(), base);
}

TEST(Lifecycle, RendezvousPathsReleaseEverything) {
  const long base = live();
  {
    WorldConfig cfg{.nranks = 2};
    cfg.shm_eager_max = 64;
    auto w = World::create(cfg);
    std::vector<std::int64_t> big(4096, 1), out(4096, 0);
    for (int i = 0; i < 10; ++i) {
      Request s = w->comm_world(0).isend(big.data(), big.size(),
                                         dtype::Datatype::int64(), 1, 0);
      w->comm_world(1).recv(out.data(), out.size(),
                            dtype::Datatype::int64(), 0, 0);
      s.wait();
    }
  }
  EXPECT_EQ(live(), base);
}

TEST(Lifecycle, NetRendezvousAndPipelineRelease) {
  const long base = live();
  {
    WorldConfig cfg = mpx_test::virtual_net_config(2);
    cfg.net_pipeline_min = 64 * 1024;
    cfg.net_pipeline_chunk = 16 * 1024;
    auto w = World::create(cfg);
    std::vector<std::byte> big(512 * 1024), out(512 * 1024);
    Request s = w->comm_world(0).isend(big.data(), big.size(),
                                       dtype::Datatype::byte(), 1, 0);
    Request r = w->comm_world(1).irecv(out.data(), out.size(),
                                       dtype::Datatype::byte(), 0, 0);
    while (!s.is_complete() || !r.is_complete()) {
      w->virtual_clock()->advance(0.01);
      stream_progress(w->null_stream(0));
      stream_progress(w->null_stream(1));
    }
  }
  EXPECT_EQ(live(), base);
}

TEST(Lifecycle, CancelledReceiveReleases) {
  const long base = live();
  {
    auto w = World::create(WorldConfig{.nranks = 2});
    for (int i = 0; i < 20; ++i) {
      std::int32_t x = 0;
      Request r = w->comm_world(1).irecv(&x, 1, dtype::Datatype::int32(), 0,
                                         i);
      r.cancel();
    }
  }
  EXPECT_EQ(live(), base);
}

TEST(Lifecycle, AbandonedRequestsReleaseAtWorldTeardown) {
  // Posted receives and unexpected messages that never match are reclaimed
  // by VCI teardown, not leaked.
  const long base = live();
  {
    auto w = World::create(WorldConfig{.nranks = 2});
    std::int32_t x = 0;
    Request r1 = w->comm_world(1).irecv(&x, 1, dtype::Datatype::int32(), 0,
                                        1);
    std::int32_t v = 5;
    w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 99);
    stream_progress(w->null_stream(1));  // park it in the unexpected queue
    // Drop handles without completing anything.
  }
  EXPECT_EQ(live(), base);
}

TEST(Lifecycle, CollectivesRelease) {
  const long base = live();
  {
    auto w = World::create(WorldConfig{.nranks = 4});
    mpx_test::run_ranks(*w, [&](int rank) {
      Comm c = w->comm_world(rank);
      for (int i = 0; i < 5; ++i) {
        std::int64_t v = rank, sum = 0;
        coll::allreduce(&v, &sum, 1, dtype::Datatype::int64(),
                        dtype::ReduceOp::sum, c);
        coll::barrier(c);
        std::vector<std::int32_t> all(4 * 8);
        std::vector<std::int32_t> mine(8, rank);
        coll::allgather(mine.data(), 8, dtype::Datatype::int32(), all.data(),
                        c);
      }
      w->finalize_rank(rank);
    });
  }
  EXPECT_EQ(live(), base);
}

TEST(Lifecycle, PersistentAndContinuationsRelease) {
  const long base = live();
  {
    auto w = World::create(WorldConfig{.nranks = 2});
    Comm c0 = w->comm_world(0);
    Comm c1 = w->comm_world(1);
    std::int32_t v = 3, out = 0;
    Request ps = c0.send_init(&v, 1, dtype::Datatype::int32(), 1, 0);
    Request pr = c1.recv_init(&out, 1, dtype::Datatype::int32(), 0, 0);
    for (int i = 0; i < 5; ++i) {
      start(ps);
      start(pr);
      ps.wait();
      pr.wait();
    }
    // Continuations.
    Request cont = ext::continue_init(*w, w->null_stream(1));
    Request rr = c1.irecv(&out, 1, dtype::Datatype::int32(), 0, 1);
    std::vector<Request> reqs{rr};
    ext::continue_attach_all(reqs, [](const Status&, void*) {}, nullptr,
                             cont);
    c0.send(&v, 1, dtype::Datatype::int32(), 1, 1);
    while (!cont.is_complete()) stream_progress(w->null_stream(1));
  }
  EXPECT_EQ(live(), base);
}
