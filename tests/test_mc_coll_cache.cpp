// Model-check: the schedule cache's RCU-style publish protocol
// (include/mpx/coll/ir_cache.hpp). Explored invariants, across every
// interleaving of a concurrent reader and writer(s):
//
//  1. Snapshot atomicity: a reader racing an insert sees either the old
//     table or the new one, both fully formed — a found schedule is
//     pointer-identical to what some insert published, never a torn or
//     half-built entry.
//
//  2. No lost inserts: two writers inserting distinct keys concurrently
//     both land; after both return, both keys are findable and the entry
//     count is exact.
//
//  3. First-writer-wins on a racing compile of the SAME key: both writers
//     get the same SchedPtr back (the winner's), so every caller shares
//     one schedule instance, and find() agrees.
//
//  4. Capacity rejection under race: past `cap_`, insert returns null and
//     counts the reject instead of growing the table.
#include <gtest/gtest.h>

#include <memory>

#include "mpx/coll/ir_cache.hpp"
#include "mpx/mc/mc.hpp"

#if MPX_MODEL_CHECK

namespace mc = mpx::mc;
using namespace mpx;
using namespace mpx::coll;

namespace {

ir::SchedPtr dummy_sched() {
  // The cache never executes a schedule; pointer identity is the invariant
  // under test, so an empty Schedule is enough.
  return std::make_shared<ir::Schedule>();
}

ir::SchedKey key_for(int rank) {
  ir::SchedKey k;
  k.kind = ir::CollKind::allreduce;
  k.algo = ir::Algo::rd;
  k.esz = 4;
  k.cls = 9;
  k.rank = rank;
  return k;
}

}  // namespace

TEST(McCollCache, ReaderSeesFullSnapshotsAndNoInsertIsLost) {
  mc::Options opt;
  opt.name = "coll_cache_publish";
  const mc::Result res = mc::explore(opt, [] {
    ir::SchedCache cache(8);
    const ir::SchedKey k0 = key_for(0);
    const ir::SchedKey k1 = key_for(1);
    const ir::SchedPtr s0 = dummy_sched();
    const ir::SchedPtr s1 = dummy_sched();

    // Writer: publishes k1 while the main thread reads and publishes k0.
    mc::thread writer([&] {
      const ir::SchedPtr got = cache.insert(k1, s1);
      mc::check(got == s1, "uncontended key insert must win");
    });

    // Reader interleaved with both inserts: every successful find must
    // return exactly the published instance (snapshot atomicity), and a
    // miss is the only other legal outcome.
    for (int i = 0; i < 2; ++i) {
      const ir::SchedPtr f = cache.find(k1);
      mc::check(f == nullptr || f == s1,
                "reader saw a torn or foreign entry for k1");
      mc::yield();
    }

    const ir::SchedPtr got0 = cache.insert(k0, s0);
    mc::check(got0 == s0, "uncontended key insert must win");
    writer.join();

    // Both inserts landed: neither publish overwrote the other's table.
    mc::check(cache.find(k0) == s0, "insert of k0 was lost");
    mc::check(cache.find(k1) == s1, "insert of k1 was lost");
    mc::check(cache.entries() == 2, "entry count wrong after two inserts");
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

TEST(McCollCache, RacingCompilesOfOneKeyShareTheWinner) {
  mc::Options opt;
  opt.name = "coll_cache_race";
  const mc::Result res = mc::explore(opt, [] {
    ir::SchedCache cache(8);
    const ir::SchedKey k = key_for(0);
    const ir::SchedPtr sa = dummy_sched();
    const ir::SchedPtr sb = dummy_sched();

    ir::SchedPtr got_a;
    mc::thread rival([&] { got_a = cache.insert(k, sa); });
    const ir::SchedPtr got_b = cache.insert(k, sb);
    rival.join();

    // Exactly one compile won; both callers hold the same instance and
    // find() serves it too.
    mc::check(got_a == got_b, "racing inserts returned different schedules");
    mc::check(got_a == sa || got_a == sb, "winner is neither candidate");
    mc::check(cache.find(k) == got_a, "find disagrees with insert winner");
    mc::check(cache.entries() == 1, "same-key race grew the table");
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

TEST(McCollCache, CapacityRejectsUnderRace) {
  mc::Options opt;
  opt.name = "coll_cache_cap";
  const mc::Result res = mc::explore(opt, [] {
    ir::SchedCache cache(1);
    const ir::SchedPtr s0 = dummy_sched();
    const ir::SchedPtr s1 = dummy_sched();

    ir::SchedPtr got0, got1;
    mc::thread rival([&] { got0 = cache.insert(key_for(0), s0); });
    got1 = cache.insert(key_for(1), s1);
    rival.join();

    // Capacity 1: exactly one distinct-key insert lands, the other is
    // rejected (null) and counted; the table never exceeds cap.
    const int landed = (got0 != nullptr) + (got1 != nullptr);
    mc::check(landed == 1, "capacity-1 cache admitted both or neither");
    mc::check(cache.entries() == 1, "table grew past capacity");
    mc::check(cache.rejects() == 1, "reject not counted exactly once");
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

#else
TEST(McCollCache, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
