// Model-check: the stream_free / stream_create VCI-slot reuse protocol.
//
// stream_free publishes reusability with a release store of Vci::active
// AFTER dropping the VCI lock; stream_create (under the rank's table lock)
// acquires, observes false, and destroys/replaces the Vci. PR 1's tsan run
// caught a bug where the store happened while still holding v.mu, letting
// the create destroy a held mutex. Here the checker proves the fixed
// protocol across every interleaving, and the seeded mutation
// (mc::mut::stream_free_publish_under_lock) must reintroduce exactly that
// failure as a mutex-destroyed-while-held report.
//
// The mutation test ABANDONS its session (fatal failure): the World and the
// parked virtual threads leak by design, so it runs last in this binary and
// the mc tests stay out of leak-checked presets.
#include <gtest/gtest.h>

#include "mpx/mc/mc.hpp"
#include "mpx/mpx.hpp"

#if MPX_MODEL_CHECK

namespace mc = mpx::mc;
using mpx::Stream;
using mpx::World;
using mpx::WorldConfig;

namespace {

/// One bounded lifecycle round: a freer thread retires stream s1 while the
/// body concurrently creates a new stream (which may reuse s1's slot or
/// claim a fresh one, depending on the interleaving).
void lifecycle_round() {
  WorldConfig cfg;
  cfg.nranks = 1;
  cfg.shm_cells = 4;  // shrink single-threaded setup cost per schedule
  auto w = World::create(cfg);
  Stream s1 = w->stream_create(0);

  mc::thread freer([&] { w->stream_free(s1); });
  Stream s2 = w->stream_create(0);
  freer.join();

  mc::check(s2.valid(), "stream_create must return a live stream");
  mc::check(!s1.valid(), "stream_free must invalidate the handle");
  w->stream_free(s2);
}

}  // namespace

TEST(McStream, FreeCreateRaceIsSafeAllSchedules) {
  mc::Options opt;
  opt.name = "stream_reuse";
  opt.max_schedules = 2000;  // World setup per schedule: keep the budget sane
  const mc::Result res = mc::explore(opt, lifecycle_round);
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

TEST(McStream, SeededMutationPublishUnderLockIsCaught) {
  mc::mut::stream_free_publish_under_lock = true;
  mc::Options opt;
  opt.name = "stream_publish_under_lock";
  opt.max_schedules = 2000;
  const mc::Result res = mc::explore(opt, lifecycle_round);
  mc::mut::stream_free_publish_under_lock = false;
  RecordProperty("summary", res.summary());

  ASSERT_TRUE(res.failed)
      << "publish-under-lock must be detected: " << res.summary();
  EXPECT_NE(res.failure.find("destroyed"), std::string::npos) << res.failure;
  EXPECT_FALSE(res.replay.empty()) << "failing schedule must be replayable";
}

#else
TEST(McStream, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
