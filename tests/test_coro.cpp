// Coroutine-integration tests: co_await over requests and predicates,
// multi-wait-block tasks written linearly (the paper's §2.2 async/await
// observation), and interleaving with every other progress client.
#include <gtest/gtest.h>

#include <vector>

#include "mpx/coll/coll.hpp"
#include "mpx/task/coro.hpp"
#include "mpx/task/deadline.hpp"
#include "test_util.hpp"

using namespace mpx;

namespace {

task::Coro await_counter(std::atomic<int>* counter, Stream s, bool* ran) {
  co_await task::until([counter] { return counter->load() == 0; }, s);
  *ran = true;
}

/// Receive one message and tick a counter. A free function on purpose: a
/// coroutine-lambda's frame references the *closure object*, so launching
/// from a loop-local lambda and resuming after it dies is a use-after-scope
/// (caught by the asan-ubsan preset). Parameters are copied into the frame.
task::Coro recv_one(Comm c, Stream s, std::int32_t* slot,
                    std::atomic<int>* finished, int tag) {
  Request r = c.irecv(slot, 1, dtype::Datatype::int32(), 0, tag);
  co_await task::completion(r, s);
  finished->fetch_add(1);
}

}  // namespace

TEST(Coro, PredicateAwaitResumesInsideProgress) {
  WorldConfig cfg{.nranks = 1};
  cfg.use_virtual_clock = true;
  auto w = World::create(cfg);
  Stream s = w->null_stream(0);

  std::atomic<int> counter{1};
  task::add_dummy_task(s, 1.0, &counter, nullptr);
  bool ran = false;
  task::Coro c = await_counter(&counter, s, &ran);
  EXPECT_FALSE(c.done());
  stream_progress(s);
  EXPECT_FALSE(ran);

  w->virtual_clock()->advance(2.0);
  // One progress pass completes the dummy task; the next resumes the
  // coroutine (its hook was polled before the task completed this pass).
  stream_progress(s);
  stream_progress(s);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(c.done());
}

namespace {

task::Coro ping(Comm c, Stream s, std::int32_t* got) {
  // The Fig. 3(c) shape, written linearly: two wait blocks in one task.
  std::int32_t v = 42;
  Request sr = c.isend(&v, 1, dtype::Datatype::int32(), 1, 0);
  co_await task::completion(sr, s);
  std::int32_t r = -1;
  Request rr = c.irecv(&r, 1, dtype::Datatype::int32(), 1, 1);
  co_await task::completion(rr, s);
  *got = r;
}

task::Coro pong(Comm c, Stream s) {
  std::int32_t r = -1;
  Request rr = c.irecv(&r, 1, dtype::Datatype::int32(), 0, 0);
  co_await task::completion(rr, s);
  std::int32_t v = r * 2;
  Request sr = c.isend(&v, 1, dtype::Datatype::int32(), 0, 1);
  co_await task::completion(sr, s);
}

}  // namespace

TEST(Coro, TwoCoroutinesPingPongSingleThread) {
  // Both ranks' coroutines driven from ONE thread by interleaved progress —
  // the event-driven style without inverted control flow.
  auto w = World::create(WorldConfig{.nranks = 2});
  std::int32_t got = -1;
  task::Coro c0 = ping(w->comm_world(0), w->null_stream(0), &got);
  task::Coro c1 = pong(w->comm_world(1), w->null_stream(1));
  int guard = 0;
  while (!c0.done() || !c1.done()) {
    stream_progress(w->null_stream(0));
    stream_progress(w->null_stream(1));
    ASSERT_LT(++guard, 10000);
  }
  EXPECT_EQ(got, 84);
}

namespace {

task::Coro gather_chain(Comm c, Stream s, std::vector<std::int32_t>* out) {
  // Sequential receives expressed as a straight line: each co_await is one
  // wait block; between them the coroutine runs inside progress.
  for (int i = 0; i < 4; ++i) {
    std::int32_t v = -1;
    Request r = c.irecv(&v, 1, dtype::Datatype::int32(), 0, i);
    co_await task::completion(r, s);
    out->push_back(v);
  }
}

}  // namespace

TEST(Coro, SequentialAwaitsPreserveOrder) {
  auto w = World::create(WorldConfig{.nranks = 2});
  std::vector<std::int32_t> got;
  task::Coro c = gather_chain(w->comm_world(1), w->null_stream(1), &got);
  Comm c0 = w->comm_world(0);
  for (std::int32_t i = 3; i >= 0; --i) {  // send in reverse tag order
    std::int32_t v = i * 10;
    c0.isend(&v, 1, dtype::Datatype::int32(), 1, i);
  }
  c.wait(w->null_stream(1));
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i * 10);
}

TEST(Coro, ImmediateCompletionNeverSuspends) {
  auto w = World::create(WorldConfig{.nranks = 2});
  std::int32_t v = 5;
  Request sr = w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 0);
  ASSERT_TRUE(sr.is_complete());  // buffered eager
  bool ran = false;
  auto body = [&](Stream s) -> task::Coro {
    co_await task::completion(sr, s);  // await_ready: no suspension
    ran = true;
  };
  task::Coro c = body(w->null_stream(0));
  EXPECT_TRUE(ran);
  EXPECT_TRUE(c.done());
  std::int32_t sink;
  w->comm_world(1).recv(&sink, 1, dtype::Datatype::int32(), 0, 0);
}

TEST(Coro, ManyCoroutinesInterleaved) {
  auto w = World::create(WorldConfig{.nranks = 2});
  constexpr int kN = 16;
  Stream s1 = w->null_stream(1);
  Comm c1 = w->comm_world(1);
  std::atomic<int> finished{0};
  std::vector<std::int32_t> vals(kN, -1);
  std::vector<task::Coro> coros;
  for (int i = 0; i < kN; ++i) {
    coros.push_back(recv_one(c1, s1, &vals[static_cast<std::size_t>(i)],
                             &finished, i));
  }
  Comm c0 = w->comm_world(0);
  for (std::int32_t i = 0; i < kN; ++i) {
    c0.isend(&i, 1, dtype::Datatype::int32(), 1, i);
  }
  while (finished.load() < kN) stream_progress(s1);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(vals[static_cast<std::size_t>(i)], i);
  for (auto& c : coros) EXPECT_TRUE(c.done());
}
