// Integration and stress tests: randomized message soup across every
// protocol threshold (property: all payloads delivered intact, in order per
// (src,dst,tag)), multi-world coexistence, mixed collectives + p2p + async
// hooks, and a full application pattern.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <vector>

#include "mpx/coll/coll.hpp"
#include "mpx/task/progress_thread.hpp"
#include "test_util.hpp"

using namespace mpx;

namespace {

/// Payload whose contents are a deterministic function of (seed, index).
std::vector<std::int32_t> pattern(std::uint32_t seed, std::size_t n) {
  std::vector<std::int32_t> v(n);
  std::uint32_t x = seed * 2654435761u + 1;
  for (auto& e : v) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    e = static_cast<std::int32_t>(x);
  }
  return v;
}

}  // namespace

struct SoupParam {
  int nranks;
  int ranks_per_node;
  int messages_per_pair;
};

class MessageSoup : public ::testing::TestWithParam<SoupParam> {};

TEST_P(MessageSoup, RandomizedSizesAllDeliveredInOrder) {
  const auto p = GetParam();
  WorldConfig cfg;
  cfg.nranks = p.nranks;
  cfg.ranks_per_node = p.ranks_per_node;
  cfg.shm_eager_max = 1024;       // low thresholds so the sweep crosses
  cfg.net_lightweight_max = 128;  // every protocol boundary
  cfg.net_eager_max = 2048;
  cfg.net_pipeline_min = 16 * 1024;
  cfg.net_pipeline_chunk = 4 * 1024;
  auto w = World::create(cfg);

  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int n = c.size();
    // Deterministic per-rank size choices (payloads are pattern()-derived
    // from (src, dst, m), so only sizes come from the rng).
    std::mt19937 rng = mpx_test::rank_rng(/*salt=*/0x1096u, rank);
    // Sizes straddling every threshold (elements of int32).
    const std::size_t sizes[] = {0,  1,   17,  32,  257,  512,
                                 600, 1500, 4096, 8192, 20000};

    // Every rank sends `messages_per_pair` messages to every other rank;
    // message m to dst uses tag m and a seed-derived payload.
    std::vector<Request> sends;
    std::vector<std::vector<std::int32_t>> send_bufs;
    for (int dst = 0; dst < n; ++dst) {
      if (dst == rank) continue;
      for (int m = 0; m < p.messages_per_pair; ++m) {
        const std::size_t sz = sizes[rng() % std::size(sizes)];
        send_bufs.push_back(
            pattern(static_cast<std::uint32_t>(rank * 1000 + dst * 37 + m),
                    sz));
        sends.push_back(c.isend(send_bufs.back().data(), sz,
                                dtype::Datatype::int32(), dst, m));
      }
    }

    // Receive: sizes unknown, so probe-free approach — post with max size
    // and validate count from status.
    for (int src = 0; src < n; ++src) {
      if (src == rank) continue;
      for (int m = 0; m < p.messages_per_pair; ++m) {
        std::vector<std::int32_t> buf(20000, -1);
        Status st = c.recv(buf.data(), buf.size(), dtype::Datatype::int32(),
                           src, m);
        EXPECT_EQ(st.error, Err::success);
        EXPECT_EQ(st.source, src);
        const std::size_t got = st.count_bytes / 4;
        const auto expect = pattern(
            static_cast<std::uint32_t>(src * 1000 + rank * 37 + m), got);
        for (std::size_t i = 0; i < got; ++i) {
          ASSERT_EQ(buf[i], expect[i])
              << "src=" << src << " m=" << m << " i=" << i;
        }
      }
    }
    wait_all(sends);
    w->finalize_rank(rank);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MessageSoup,
    ::testing::Values(SoupParam{2, 0, 20}, SoupParam{4, 0, 8},
                      SoupParam{2, 1, 20}, SoupParam{4, 1, 6},
                      SoupParam{4, 2, 8}),
    [](const ::testing::TestParamInfo<SoupParam>& info) {
      return "n" + std::to_string(info.param.nranks) + "_rpn" +
             std::to_string(info.param.ranks_per_node) + "_m" +
             std::to_string(info.param.messages_per_pair);
    });

TEST(Integration, TwoWorldsCoexist) {
  // Two independent Worlds in one process: separate transports, clocks,
  // matching — nothing leaks across.
  auto wa = World::create(WorldConfig{.nranks = 2});
  auto wb = World::create(WorldConfig{.nranks = 2});
  std::int32_t va = 1, vb = 2, ra = 0, rb = 0;
  wa->comm_world(0).isend(&va, 1, dtype::Datatype::int32(), 1, 0);
  wb->comm_world(0).isend(&vb, 1, dtype::Datatype::int32(), 1, 0);
  wb->comm_world(1).recv(&rb, 1, dtype::Datatype::int32(), 0, 0);
  wa->comm_world(1).recv(&ra, 1, dtype::Datatype::int32(), 0, 0);
  EXPECT_EQ(ra, 1);
  EXPECT_EQ(rb, 2);
}

TEST(Integration, MixedCollectivesP2pAndAsyncHooks) {
  // Everything at once on each rank: an allreduce in flight, p2p ring
  // traffic, and a user async hook counting its own polls — all driven by
  // the same collated progress.
  WorldConfig cfg;
  cfg.nranks = 4;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const Stream s = c.stream();
    const int n = c.size();

    std::atomic<bool> hook_done{false};
    std::atomic<int> hook_polls{0};
    async_start(
        [&]() -> AsyncResult {
          hook_polls.fetch_add(1);
          return hook_done.load() ? AsyncResult::done : AsyncResult::pending;
        },
        s);

    std::int64_t sum_in = rank, sum_out = 0;
    Request ar = coll::iallreduce(&sum_in, &sum_out, 1,
                                  dtype::Datatype::int64(),
                                  dtype::ReduceOp::sum, c);

    std::int32_t token = rank;
    std::int32_t from_left = -1;
    Request sr = c.isend(&token, 1, dtype::Datatype::int32(), (rank + 1) % n,
                         99);
    Request rr = c.irecv(&from_left, 1, dtype::Datatype::int32(),
                         (rank + n - 1) % n, 99);

    Request reqs[] = {ar, sr, rr};
    wait_all(reqs);
    EXPECT_EQ(sum_out, 0 + 1 + 2 + 3);
    EXPECT_EQ(from_left, (rank + n - 1) % n);
    EXPECT_GT(hook_polls.load(), 0);
    hook_done.store(true);
    w->finalize_rank(rank);
  });
}

TEST(Integration, ProgressThreadDrivesEverythingUnattended) {
  // The Fig. 6 programming scheme: main threads only initiate and check
  // is_complete; ALL progress comes from per-rank helper threads.
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.shm_eager_max = 64;  // rendezvous => progress genuinely required
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    task::ProgressThread helper(w->null_stream(rank),
                                task::ProgressBackoff::yield);
    Comm c = w->comm_world(rank);
    std::vector<double> data(2048, rank + 0.5);
    std::vector<double> in(2048, 0.0);
    const int peer = 1 - rank;
    Request sr = c.isend(data.data(), data.size(), dtype::Datatype::float64(),
                         peer, 0);
    Request rr = c.irecv(in.data(), in.size(), dtype::Datatype::float64(),
                         peer, 0);
    while (!sr.is_complete() || !rr.is_complete()) {
      std::this_thread::yield();  // no progress calls from this thread
    }
    for (double x : in) ASSERT_EQ(x, peer + 0.5);
    helper.stop();
    w->finalize_rank(rank);
  });
}

TEST(Integration, WaitTestFamilies) {
  auto w = World::create(WorldConfig{.nranks = 2});
  Comm c0 = w->comm_world(0);
  Comm c1 = w->comm_world(1);

  constexpr int kN = 6;
  std::int32_t out[kN];
  std::vector<Request> recvs;
  for (int i = 0; i < kN; ++i) {
    recvs.push_back(c1.irecv(&out[i], 1, dtype::Datatype::int32(), 0, i));
  }
  EXPECT_FALSE(test_all(recvs));
  EXPECT_FALSE(test_any(recvs).has_value());
  EXPECT_TRUE(test_some(recvs).empty());

  std::int32_t v = 3;
  c0.isend(&v, 1, dtype::Datatype::int32(), 1, 2);  // only tag 2
  const std::size_t idx = wait_any(recvs);
  EXPECT_EQ(idx, 2u);
  EXPECT_EQ(out[2], 3);

  for (std::int32_t i = 0; i < kN; ++i) {
    if (i != 2) c0.isend(&i, 1, dtype::Datatype::int32(), 1, i);
  }
  wait_all(recvs);
  EXPECT_TRUE(test_all(recvs));
  EXPECT_EQ(test_some(recvs).size(), static_cast<std::size_t>(kN));
  for (std::int32_t i = 0; i < kN; ++i) {
    if (i != 2) {
      EXPECT_EQ(out[i], i);
    }
  }
}

TEST(Integration, ThreadMultipleSharedCommStress) {
  // MPI_THREAD_MULTIPLE semantics: several threads per rank issue and
  // complete operations on the SAME communicator (VCI 0) concurrently. Tags
  // partition the traffic per thread; everything must match and no payload
  // may tear.
  auto w = World::create(WorldConfig{.nranks = 2});
  constexpr int kThreads = 4;
  constexpr int kMsgs = 50;

  auto rank_body = [&](int rank) {
    std::vector<base::ScopedThread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Comm c = w->comm_world(rank);
        const int peer = 1 - rank;
        for (int m = 0; m < kMsgs; ++m) {
          const int tag = t * 1000 + m;
          std::int64_t out = rank * 1'000'000 + tag;
          std::int64_t in = -1;
          Request s = c.isend(&out, 1, dtype::Datatype::int64(), peer, tag);
          Status st = c.recv(&in, 1, dtype::Datatype::int64(), peer, tag);
          ASSERT_EQ(st.error, Err::success);
          ASSERT_EQ(in, peer * 1'000'000 + tag);
          while (!s.is_complete()) stream_progress(w->null_stream(rank));
        }
      });
    }
  };
  {
    base::ScopedThread r0([&] { rank_body(0); });
    base::ScopedThread r1([&] { rank_body(1); });
  }
  w->finalize_rank(0);
  w->finalize_rank(1);
  // The shared VCI locks saw real concurrency without corruption.
  EXPECT_GE(w->vci_lock_stats(0, 0).acquires, 2u * kThreads * kMsgs);
}

TEST(Integration, ConcurrentWorldsOnThreads) {
  // Several Worlds progressing concurrently from different threads.
  std::vector<base::ScopedThread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      auto w = World::create(WorldConfig{.nranks = 2});
      std::int32_t v = i, out = -1;
      w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 0);
      w->comm_world(1).recv(&out, 1, dtype::Datatype::int32(), 0, 0);
      if (out == i) ok.fetch_add(1);
    });
  }
  threads.clear();  // join
  EXPECT_EQ(ok.load(), 3);
}

TEST(Integration, WaitAllStatusesAndGetStatus) {
  auto w = World::create(WorldConfig{.nranks = 2});
  Comm c0 = w->comm_world(0);
  Comm c1 = w->comm_world(1);

  std::int32_t bufs[3] = {-1, -1, -1};
  std::vector<Request> recvs;
  for (int i = 0; i < 3; ++i) {
    recvs.push_back(c1.irecv(&bufs[i], 1, dtype::Datatype::int32(), 0, i));
  }
  // get_status: repeatable, non-destructive.
  EXPECT_FALSE(get_status(recvs[0]).has_value());
  EXPECT_FALSE(get_status(recvs[0]).has_value());

  for (std::int32_t i = 0; i < 3; ++i) {
    c0.isend(&i, 1, dtype::Datatype::int32(), 1, i);
  }
  std::vector<Status> statuses(3);
  wait_all(recvs, statuses);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(statuses[static_cast<std::size_t>(i)].tag, i);
    EXPECT_EQ(statuses[static_cast<std::size_t>(i)].source, 0);
    EXPECT_EQ(bufs[i], i);
  }
  // Still queryable afterwards (unlike test(), nothing was consumed).
  auto st = get_status(recvs[2]);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->tag, 2);
}
