// Shared helpers for the test suite.
#pragma once

#include <functional>
#include <vector>

#include "mpx/base/thread.hpp"
#include "mpx/mpx.hpp"

namespace mpx_test {

/// Run `body(rank)` on one thread per rank of `world` and join them all.
/// Exceptions propagate: the first rank's exception is rethrown.
inline void run_ranks(mpx::World& world,
                      const std::function<void(int)>& body) {
  const int n = world.size();
  std::vector<std::exception_ptr> errs(static_cast<std::size_t>(n));
  {
    std::vector<mpx::base::ScopedThread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      threads.emplace_back([&, r] {
        try {
          body(r);
        } catch (...) {
          errs[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
  }
  for (auto& e : errs) {
    if (e) std::rethrow_exception(e);
  }
}

/// A world whose ranks all talk over the simulated NIC (one rank per node).
inline mpx::WorldConfig net_only_config(int nranks) {
  mpx::WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 1;
  return cfg;
}

/// A world on a manually-advanced virtual clock (deterministic protocols).
inline mpx::WorldConfig virtual_net_config(int nranks) {
  mpx::WorldConfig cfg = net_only_config(nranks);
  cfg.use_virtual_clock = true;
  return cfg;
}

}  // namespace mpx_test
