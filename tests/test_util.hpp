// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string_view>
#include <vector>

#include "mpx/base/thread.hpp"
#include "mpx/mpx.hpp"

namespace mpx_test {

/// Deterministic, decorrelated per-rank/per-thread RNG seeding for tests.
/// Tests must reproduce bit-for-bit across runs (no std::random_device),
/// and adjacent raw seeds leave mt19937 streams briefly correlated, so the
/// (salt, rank) coordinates are scrambled splitmix64-style first.
inline std::uint64_t mix_seed(std::uint64_t salt, std::uint64_t rank) {
  std::uint64_t z = 0x9e3779b97f4a7c15ull + salt * 0xbf58476d1ce4e5b9ull +
                    rank * 0x94d049bb133111ebull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// mt19937 seeded deterministically for (test salt, rank).
inline std::mt19937 rank_rng(std::uint64_t salt, int rank) {
  return std::mt19937{static_cast<std::mt19937::result_type>(
      mix_seed(salt, static_cast<std::uint64_t>(rank)))};
}

/// Run `body(rank)` on one thread per rank of `world` and join them all.
/// Exceptions propagate: the first rank's exception is rethrown.
inline void run_ranks(mpx::World& world,
                      const std::function<void(int)>& body) {
  const int n = world.size();
  std::vector<std::exception_ptr> errs(static_cast<std::size_t>(n));
  {
    std::vector<mpx::base::ScopedThread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      threads.emplace_back([&, r] {
        try {
          body(r);
        } catch (...) {
          errs[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
  }
  for (auto& e : errs) {
    if (e) std::rethrow_exception(e);
  }
}

/// Locate a transport by registry name and downcast to its concrete type
/// (e.g. transport_as<mpx::shm::ShmTransport>(w, "shm") for shm-specific
/// stats the unified TransportStats view doesn't carry). The caller must
/// include the concrete transport's header.
template <typename T>
T& transport_as(mpx::World& w, std::string_view name) {
  mpx::transport::Transport* t = w.find_transport(name);
  mpx::expects(t != nullptr, "transport_as: no transport with that name");
  T* typed = dynamic_cast<T*>(t);
  mpx::expects(typed != nullptr, "transport_as: transport has another type");
  return *typed;
}

/// A world whose ranks all talk over the simulated NIC (one rank per node).
inline mpx::WorldConfig net_only_config(int nranks) {
  mpx::WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 1;
  return cfg;
}

/// A world on a manually-advanced virtual clock (deterministic protocols).
inline mpx::WorldConfig virtual_net_config(int nranks) {
  mpx::WorldConfig cfg = net_only_config(nranks);
  cfg.use_virtual_clock = true;
  return cfg;
}

}  // namespace mpx_test
