// Model-check: the shm inline-cell ring protocol across ALL interleavings.
//
// The datapath under test (shm_transport.cpp) publishes cells with one
// release store of `head` per push and retires a whole delivery batch with
// one release store of `tail`; producers detect free slots through an
// acquire load of `tail`. Cells and the lazily-allocated channel arena are
// plain data guarded by those edges (MPX_MC_PLAIN_WRITE/READ annotations),
// so a weakened protocol — a relaxed publish, a batch retired before its
// last cell is consumed, slot reuse not ordered by the tail edge — shows up
// as a detected race or a failed invariant on some explored schedule, with
// a replayable trace.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "mpx/mc/mc.hpp"
#include "mpx/shm/shm_transport.hpp"

#if MPX_MODEL_CHECK

namespace mc = mpx::mc;
using mpx::base::ConstByteSpan;
using mpx::shm::ShmTransport;
using mpx::transport::Msg;
using mpx::transport::MsgHeader;
using mpx::transport::MsgKind;

namespace {

struct CollectSink final : mpx::transport::TransportSink {
  std::vector<Msg> msgs;
  std::vector<std::uint64_t> done;
  void on_msg(Msg&& m) override { msgs.push_back(std::move(m)); }
  void on_send_complete(std::uint64_t c) override { done.push_back(c); }
};

MsgHeader eager_header(int tag, std::size_t bytes) {
  MsgHeader h;
  h.kind = MsgKind::eager;
  h.src_rank = 0;
  h.dst_rank = 1;
  h.tag = tag;
  h.total_bytes = bytes;
  return h;
}

}  // namespace

// Two-slot ring, four messages: every slot is reused, so the producer's
// next in-slot write must be ordered after the consumer's read-out by the
// tail acquire edge. Sends that park (full ring) complete via the sender's
// own bulk flush; their cookies must be reported exactly once, in order.
TEST(McShmRing, InlineFifoParkAndSlotReuseAcrossAllSchedules) {
  mc::Options opt;
  opt.name = "shm_ring_inline";
  const mc::Result res = mc::explore(opt, [] {
    ShmTransport t(2, 1, /*cells=*/2, /*slot_bytes=*/16, /*deliver_batch=*/4);
    constexpr int kN = 4;
    CollectSink sender;
    std::vector<std::uint64_t> parked;

    mc::thread producer([&] {
      for (int i = 0; i < kN; ++i) {
        const std::byte b{static_cast<unsigned char>(0x10 + i)};
        if (!t.send_eager(eager_header(i, 1), ConstByteSpan(&b, 1),
                          100 + static_cast<std::uint64_t>(i))) {
          parked.push_back(100 + static_cast<std::uint64_t>(i));
        }
        t.poll(0, 0, sender, nullptr);  // sender-side progress
        mc::yield();
      }
      while (!t.idle(0, 0)) {  // flush whatever is still parked
        t.poll(0, 0, sender, nullptr);
        mc::yield();
      }
    });

    CollectSink recv;
    while (recv.msgs.size() < kN) {
      const std::size_t before = recv.msgs.size();
      t.poll(1, 0, recv, nullptr);
      if (recv.msgs.size() == before) mc::yield();
    }

    for (int i = 0; i < kN; ++i) {
      mc::check(recv.msgs[static_cast<std::size_t>(i)].h.tag == i,
                "per-channel FIFO must hold on every schedule");
      const auto& payload = recv.msgs[static_cast<std::size_t>(i)].payload;
      mc::check(payload.size() == 1 &&
                    payload.data()[0] ==
                        std::byte{static_cast<unsigned char>(0x10 + i)},
                "in-slot payload must survive slot reuse intact");
    }
    producer.join();
    mc::check(sender.done == parked,
              "parked cookies complete exactly once, in park order");
    mc::check(t.idle(1, 0), "ring must be empty after drain");
    mc::check(t.stats().delivered == kN, "delivered counter must match");
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1) << "exploration must branch, not run once";
}

// Payloads above slot_bytes ride in an owned overflow buffer moved through
// the cell. The Buffer move-out happens on the consumer side before the
// batch's tail publish — the PLAIN cell annotations catch any schedule
// where the producer could reuse the slot while the move is in flight.
TEST(McShmRing, OverflowPayloadsSurviveWraparound) {
  mc::Options opt;
  opt.name = "shm_ring_overflow";
  const mc::Result res = mc::explore(opt, [] {
    ShmTransport t(2, 1, /*cells=*/2, /*slot_bytes=*/8, /*deliver_batch=*/2);
    constexpr int kN = 3;
    constexpr std::size_t kBytes = 24;  // > slot_bytes: pooled overflow
    CollectSink sender;

    mc::thread producer([&] {
      std::byte buf[kBytes];
      for (int i = 0; i < kN; ++i) {
        for (std::size_t j = 0; j < kBytes; ++j) {
          buf[j] = std::byte{static_cast<unsigned char>(i * 31 + j)};
        }
        // A false return means the send parked (payload already copied, so
        // reusing buf is safe) — the flush loop below pushes it through.
        t.send_eager(eager_header(i, kBytes), ConstByteSpan(buf, kBytes), 0);
        t.poll(0, 0, sender, nullptr);
        mc::yield();
      }
      while (!t.idle(0, 0)) {
        t.poll(0, 0, sender, nullptr);
        mc::yield();
      }
    });

    CollectSink recv;
    while (recv.msgs.size() < kN) {
      const std::size_t before = recv.msgs.size();
      t.poll(1, 0, recv, nullptr);
      if (recv.msgs.size() == before) mc::yield();
    }

    for (int i = 0; i < kN; ++i) {
      const Msg& m = recv.msgs[static_cast<std::size_t>(i)];
      mc::check(m.h.tag == i, "overflow messages keep FIFO order");
      mc::check(m.payload.size() == kBytes, "overflow size preserved");
      bool intact = true;
      for (std::size_t j = 0; j < kBytes; ++j) {
        intact = intact &&
                 m.payload.data()[j] ==
                     std::byte{static_cast<unsigned char>(i * 31 + j)};
      }
      mc::check(intact, "overflow payload bytes intact across wraparound");
    }
    producer.join();
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

#else
TEST(McShmRing, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
