// Model-check: bin-vs-wildcard match_seq arbitration under the VCI lock.
//
// Two threads race to post receives (one specific-source, one any_source)
// and to match an arrival, all under an InstrumentedMutex like the real VCI
// lock. Across every interleaving, the arrival must match the receive with
// the LOWER match_seq — the exact-FIFO guarantee the binned matcher
// inherits from the seed's single linear list. The PLAIN annotations on
// PostedQueue::next_seq_ additionally prove the lock fully serializes the
// matcher (an unlocked caller would be a detected race).
#include <gtest/gtest.h>

#include "mpx/base/instrumented_mutex.hpp"
#include "mpx/base/intrusive.hpp"
#include "mpx/base/thread_safety.hpp"
#include "mpx/core/request.hpp"
#include "mpx/mc/mc.hpp"
#include "mpx/mc/sync.hpp"
#include "src/core/matching.hpp"

#if MPX_MODEL_CHECK

namespace mc = mpx::mc;
using mpx::base::InstrumentedMutex;
using mpx::base::LockGuard;
using mpx::base::Ref;
using mpx::core_detail::PostedQueue;
using mpx::core_detail::ReqKind;
using mpx::core_detail::RequestImpl;

namespace {

Ref<RequestImpl> make_recv(std::int32_t src, std::int32_t tag) {
  auto* r = new RequestImpl(ReqKind::recv);
  r->context_id = 7;
  r->match_src = src;
  r->match_tag = tag;
  return Ref<RequestImpl>(r);
}

}  // namespace

TEST(McMatching, OldestEligibleWinsBinVsWildcard) {
  mc::Options opt;
  opt.name = "match_arbitration";
  const mc::Result res = mc::explore(opt, [] {
    InstrumentedMutex mu;
    PostedQueue posted;
    posted.init(4);

    Ref<RequestImpl> specific = make_recv(/*src=*/0, mpx::any_tag);
    Ref<RequestImpl> wildcard = make_recv(mpx::any_source, mpx::any_tag);

    // Poster thread files the wildcard; the body files the specific one.
    // Both orders happen across schedules.
    mc::thread poster([&] {
      LockGuard<InstrumentedMutex> g(mu);
      posted.push(wildcard.get());
    });
    {
      LockGuard<InstrumentedMutex> g(mu);
      posted.push(specific.get());
    }
    poster.join();

    // One arrival from (ctx 7, src 0): both candidates are eligible; the
    // earlier-posted one (lower match_seq) must win, whichever it is.
    LockGuard<InstrumentedMutex> g(mu);
    RequestImpl* hit = posted.pop_match(7, /*src=*/0, /*tag=*/3);
    mc::check(hit != nullptr, "an eligible receive must match");
    RequestImpl* other = (hit == specific.get()) ? wildcard.get()
                                                 : specific.get();
    mc::check(hit->match_seq < other->match_seq,
              "arrival must match the receive with the lower match_seq");
    // The loser must still be matchable (FIFO continues past the winner).
    RequestImpl* second = posted.pop_match(7, /*src=*/0, /*tag=*/3);
    mc::check(second == other, "remaining receive matches next");
    mc::check(posted.empty(), "matcher drained");
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_TRUE(res.exhausted || res.truncated || res.bound_limited)
      << res.summary();
  EXPECT_GT(res.schedules, 1);
}

TEST(McMatching, UnlockedMatcherAccessIsARace) {
  // Negative control for the serialization contract: one caller pushing
  // without the lock must be flagged. The rogue push is fenced off with a
  // RELAXED flag so the pushes never physically overlap (the body only
  // pushes after observing done == true, and in the default schedule the
  // rogue has really finished) — but relaxed carries no happens-before, so
  // the clocks stay unordered and the next_seq_ annotations report a race.
  mc::Options opt;
  opt.name = "match_unlocked";
  const mc::Result res = mc::explore(opt, [] {
    InstrumentedMutex mu;
    PostedQueue posted;
    posted.init(4);
    mc::atomic<bool> done{false};

    Ref<RequestImpl> a = make_recv(/*src=*/0, mpx::any_tag);
    Ref<RequestImpl> b = make_recv(/*src=*/1, mpx::any_tag);

    mc::thread rogue([&] {
      posted.push(a.get());  // BUG: no lock
      done.store(true, std::memory_order_relaxed);
    });
    while (!done.load(std::memory_order_relaxed)) mc::yield();
    {
      LockGuard<InstrumentedMutex> g(mu);
      posted.push(b.get());
    }
    rogue.join();
    // Drain so the intrusive lists unlink before the Refs drop (reached in
    // free-run once the race is flagged, and on race-free schedules).
    while (posted.pop_any() != nullptr) {
    }
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.failed) << "unlocked matcher access must be detected";
  EXPECT_NE(res.failure.find("data race"), std::string::npos) << res.failure;
}

#else
TEST(McMatching, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
