// Matched probe (improbe/imrecv) tests: exact-message claiming, handle
// return-on-destruction ordering, rendezvous-claimed messages, and the
// multi-consumer use case that motivates the API.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpx/coll/coll.hpp"
#include "test_util.hpp"

using namespace mpx;

TEST(Mprobe, ClaimAndReceiveExactMessage) {
  auto w = World::create(WorldConfig{.nranks = 2});
  std::int32_t a = 10, b = 20;
  w->comm_world(0).isend(&a, 1, dtype::Datatype::int32(), 1, 1);
  w->comm_world(0).isend(&b, 1, dtype::Datatype::int32(), 1, 2);
  Comm c1 = w->comm_world(1);

  std::optional<MatchedMsg> m;
  for (int i = 0; i < 10 && !m; ++i) m = c1.improbe(0, 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->envelope().source, 0);
  EXPECT_EQ(m->envelope().tag, 2);
  EXPECT_EQ(m->envelope().count_bytes, 4u);

  // The claimed message (tag 2) is invisible to other receives.
  EXPECT_FALSE(c1.iprobe(0, 2).has_value());

  std::int32_t out = 0;
  Request r = c1.imrecv(&out, 1, dtype::Datatype::int32(), std::move(*m));
  ASSERT_TRUE(r.is_complete());  // payload had already arrived
  EXPECT_EQ(out, 20);

  // The unclaimed message still matches normally.
  c1.recv(&out, 1, dtype::Datatype::int32(), 0, 1);
  EXPECT_EQ(out, 10);
}

TEST(Mprobe, DroppedHandleRequeuesWithoutReordering) {
  auto w = World::create(WorldConfig{.nranks = 2});
  std::int32_t a = 1, b = 2;
  Comm c0 = w->comm_world(0);
  c0.isend(&a, 1, dtype::Datatype::int32(), 1, 5);
  c0.isend(&b, 1, dtype::Datatype::int32(), 1, 5);  // same tag: order matters
  Comm c1 = w->comm_world(1);

  {
    std::optional<MatchedMsg> m;
    for (int i = 0; i < 10 && !m; ++i) m = c1.improbe(0, 5);
    ASSERT_TRUE(m.has_value());
    // Handle dropped unconsumed: the FIRST message goes back to the front.
  }
  std::int32_t out = 0;
  c1.recv(&out, 1, dtype::Datatype::int32(), 0, 5);
  EXPECT_EQ(out, 1);  // non-overtaking preserved
  c1.recv(&out, 1, dtype::Datatype::int32(), 0, 5);
  EXPECT_EQ(out, 2);
}

TEST(Mprobe, RendezvousMessageClaimedBeforeData) {
  WorldConfig cfg{.nranks = 2};
  cfg.shm_eager_max = 64;  // force the RTS path
  auto w = World::create(cfg);
  std::vector<std::int64_t> big(5000);
  std::iota(big.begin(), big.end(), 0);
  Request s = w->comm_world(0).isend(big.data(), big.size(),
                                     dtype::Datatype::int64(), 1, 0);
  Comm c1 = w->comm_world(1);

  std::optional<MatchedMsg> m;
  for (int i = 0; i < 10 && !m; ++i) m = c1.improbe(0, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->envelope().count_bytes, 5000u * 8u);

  std::vector<std::int64_t> out(5000, -1);
  Request r = c1.imrecv(out.data(), out.size(), dtype::Datatype::int64(),
                        std::move(*m));
  while (!r.is_complete() || !s.is_complete()) {
    stream_progress(w->null_stream(1));
    stream_progress(w->null_stream(0));
  }
  EXPECT_EQ(out, big);
}

TEST(Mprobe, AnySourceClaim) {
  auto w = World::create(WorldConfig{.nranks = 3});
  std::int32_t v = 42;
  w->comm_world(2).isend(&v, 1, dtype::Datatype::int32(), 0, 9);
  Comm c0 = w->comm_world(0);
  std::optional<MatchedMsg> m;
  for (int i = 0; i < 10 && !m; ++i) m = c0.improbe(any_source, any_tag);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->envelope().source, 2);
  std::int32_t out = 0;
  c0.imrecv(&out, 1, dtype::Datatype::int32(), std::move(*m)).wait();
  EXPECT_EQ(out, 42);
}

TEST(CollChain, ChainBcastMatchesBinomial) {
  auto w = World::create(WorldConfig{.nranks = 5});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    for (int root = 0; root < c.size(); ++root) {
      const std::size_t n = 40000;  // 160 KB: chain territory
      std::vector<std::int32_t> chain_buf(n), binom_buf(n);
      if (rank == root) {
        std::iota(chain_buf.begin(), chain_buf.end(), root);
        binom_buf = chain_buf;
      }
      Request rc = coll::ibcast_chain(chain_buf.data(), n,
                                      dtype::Datatype::int32(), root, c);
      wait_on_stream(rc, c.stream());
      Request rb = coll::ibcast_binomial(binom_buf.data(), n,
                                         dtype::Datatype::int32(), root, c);
      wait_on_stream(rb, c.stream());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(chain_buf[i], static_cast<std::int32_t>(i) + root);
        ASSERT_EQ(binom_buf[i], chain_buf[i]);
      }
    }
    w->finalize_rank(rank);
  });
}

TEST(CollChain, AutoSelectionHonorsThreshold) {
  // Small message on 4 ranks goes binomial; both paths produce the same
  // result either way — this exercises the dispatch line.
  auto w = World::create(WorldConfig{.nranks = 4});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::int64_t v = rank == 1 ? 777 : 0;
    coll::bcast(&v, 1, dtype::Datatype::int64(), 1, c);
    EXPECT_EQ(v, 777);
    // Large message through the public entry (auto chain).
    std::vector<std::int64_t> big(64 * 1024, rank == 0 ? 3 : 0);
    coll::bcast(big.data(), big.size(), dtype::Datatype::int64(), 0, c);
    for (auto x : big) ASSERT_EQ(x, 3);
    w->finalize_rank(rank);
  });
}
