// Model-check: the §3.4 completion contract — MPIX_Request_is_complete is a
// single acquire load, and that acquire is the ONLY thing ordering the
// payload and Status for a polling thread.
//
// Includes the first seeded-mutation self-test: mc::mut::weak_is_complete
// weakens the poller's load to relaxed. The checker must catch that as a
// data race on the payload — on every run, not one lucky interleaving —
// and the failing schedule must replay deterministically.
#include <gtest/gtest.h>

#include <cstdint>

#include "mpx/base/intrusive.hpp"
#include "mpx/core/request.hpp"
#include "mpx/mc/mc.hpp"

#if MPX_MODEL_CHECK

namespace mc = mpx::mc;
using mpx::Request;
using mpx::core_detail::ReqKind;
using mpx::core_detail::RequestImpl;

namespace {

/// One bounded completion round: a completer thread writes the payload and
/// Status, then publishes with the release store; the body polls
/// is_complete() and reads both. Heap-allocated impl (pooled operator new)
/// because Ref adopts and deletes.
void completion_round() {
  std::int32_t payload = 0;
  auto* impl = new RequestImpl(ReqKind::user);
  Request req{mpx::base::Ref<RequestImpl>(impl)};

  mc::thread completer([&payload, impl] {
    MPX_MC_PLAIN_WRITE(&payload, "recv payload");
    payload = 42;
    impl->status.count_bytes = sizeof(payload);
    MPX_MC_PLAIN_WRITE(&impl->status, "Request::status");
    impl->complete.store(true, std::memory_order_release);
  });

  while (!req.is_complete()) mc::yield();
  MPX_MC_PLAIN_READ(&payload, "recv payload");
  mc::check(payload == 42, "completed request implies payload visible");
  mc::check(req.status().count_bytes == sizeof(payload),
            "completed request implies Status visible");
  completer.join();
}

}  // namespace

TEST(McRequest, AcquirePollOrdersPayloadAllSchedules) {
  mc::Options opt;
  opt.name = "request_complete";
  const mc::Result res = mc::explore(opt, completion_round);
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_TRUE(res.exhausted || res.truncated || res.bound_limited)
      << res.summary();
  EXPECT_GT(res.schedules, 1);
}

TEST(McRequest, SeededMutationWeakIsCompleteIsCaught) {
  mc::mut::weak_is_complete = true;
  mc::Options opt;
  opt.name = "request_weak_poll";
  const mc::Result res = mc::explore(opt, completion_round);
  mc::mut::weak_is_complete = false;
  RecordProperty("summary", res.summary());

  ASSERT_TRUE(res.failed)
      << "relaxed is_complete must be detected: " << res.summary();
  EXPECT_NE(res.failure.find("data race"), std::string::npos) << res.failure;
  ASSERT_FALSE(res.replay.empty());

  // Replay self-test: the recorded decision string must reproduce the same
  // failure deterministically (this is what a developer does with the
  // MPX_MC_REPLAY env var and the CI artifact dump).
  mc::mut::weak_is_complete = true;
  mc::Options replay_opt;
  replay_opt.name = "request_weak_poll_replay";
  replay_opt.replay = res.replay;
  const mc::Result replayed = mc::explore(replay_opt, completion_round);
  mc::mut::weak_is_complete = false;
  EXPECT_TRUE(replayed.failed) << replayed.summary();
  EXPECT_EQ(replayed.schedules, 1) << "replay runs exactly one schedule";
  EXPECT_NE(replayed.failure.find("data race"), std::string::npos)
      << replayed.failure;
}

TEST(McRequest, ReplayOfPassingScheduleStaysClean) {
  // A replay string from a clean exploration replays clean: guards against
  // nondeterminism in the scenario or the trail encoding.
  mc::Options opt;
  opt.name = "request_clean";
  const mc::Result res = mc::explore(opt, completion_round);
  ASSERT_TRUE(res.ok()) << res.summary();

  mc::Options replay_opt;
  replay_opt.name = "request_clean_replay";
  replay_opt.replay = res.replay.empty() ? "T0." : res.replay;
  const mc::Result replayed = mc::explore(replay_opt, completion_round);
  EXPECT_TRUE(replayed.ok()) << replayed.summary();
  EXPECT_EQ(replayed.schedules, 1);
}

#else
TEST(McRequest, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
