// Model-check: SpscRing FIFO + publish protocol across ALL interleavings.
//
// Each scenario is a small bounded body re-executed once per schedule by
// mpx::mc::explore. Invariants asserted with mc::check hold on every
// explored interleaving, not just the ones the OS scheduler happens to
// produce. The slot PLAIN annotations inside SpscRing turn any missing
// release/acquire edge into a detected race.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "mpx/base/queue.hpp"
#include "mpx/mc/mc.hpp"

#if MPX_MODEL_CHECK

using mpx::base::SpscRing;
namespace mc = mpx::mc;

TEST(McSpsc, FifoAcrossAllSchedules) {
  mc::Options opt;
  opt.name = "spsc_fifo";
  const mc::Result res = mc::explore(opt, [] {
    SpscRing<int> ring(4);
    constexpr int kN = 3;

    mc::thread producer([&ring] {
      for (int i = 1; i <= kN; ++i) {
        while (!ring.try_push(int{i})) mc::yield();
      }
    });

    int expect = 1;
    int got = 0;
    while (got < kN) {
      std::optional<int> v = ring.try_pop();
      if (!v) {
        mc::yield();
        continue;
      }
      mc::check(*v == expect, "SpscRing must pop values in push order");
      ++expect;
      ++got;
    }
    mc::check(!ring.try_pop().has_value(), "ring must be empty after drain");
    producer.join();
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_TRUE(res.exhausted || res.truncated || res.bound_limited)
      << res.summary();
  EXPECT_GT(res.schedules, 1) << "exploration must branch, not run once";
}

TEST(McSpsc, WraparoundReusesSlotsSafely) {
  // Capacity 2 with 4 items forces slot reuse: the producer's next write to
  // a slot must be ordered after the consumer's move-out (via the tail
  // acquire edge). A weakened protocol would trip the slot race detector.
  mc::Options opt;
  opt.name = "spsc_wrap";
  const mc::Result res = mc::explore(opt, [] {
    SpscRing<int> ring(2);
    constexpr int kN = 4;

    mc::thread producer([&ring] {
      for (int i = 1; i <= kN; ++i) {
        while (!ring.try_push(int{i})) mc::yield();
      }
    });

    int sum = 0;
    for (int got = 0; got < kN;) {
      if (std::optional<int> v = ring.try_pop()) {
        sum += *v;
        ++got;
      } else {
        mc::yield();
      }
    }
    mc::check(sum == 1 + 2 + 3 + 4, "every pushed value popped exactly once");
    producer.join();
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

#else
TEST(McSpsc, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
