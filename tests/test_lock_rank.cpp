// Tests for the runtime lock-rank validator (base/lock_rank.hpp): the
// debug-build deadlock detector behind the VCI < stream < task_queue <
// transport hierarchy. Violations must abort with BOTH lock names in the
// report so the death tests below pin the message format.
#include <gtest/gtest.h>

#include "mpx/base/instrumented_mutex.hpp"
#include "mpx/base/lock_rank.hpp"
#include "mpx/base/spinlock.hpp"
#include "mpx/base/thread_safety.hpp"

using mpx::base::InstrumentedMutex;
using mpx::base::LockRank;
using mpx::base::Spinlock;
namespace lock_rank = mpx::base::lock_rank;

#if MPX_LOCK_RANK_CHECKS

namespace {

/// Force the validator on regardless of MPX_LOCK_RANK in the environment.
struct ValidatorOn {
  ValidatorOn() { lock_rank::set_enabled(true); }
};

}  // namespace

TEST(LockRank, OrderedAcquisitionIsAccepted) {
  ValidatorOn on;
  InstrumentedMutex vci{"vci", LockRank::vci};
  InstrumentedMutex table{"vci-table", LockRank::stream};
  Spinlock tq{"task:queue", LockRank::task_queue};
  Spinlock xport{"shm:pending", LockRank::transport};
  Spinlock chan{"shm:channel", LockRank::transport_channel};

  vci.lock();
  table.lock();
  tq.lock();
  xport.lock();
  chan.lock();
  EXPECT_EQ(lock_rank::held_count(), 5u);
  chan.unlock();
  xport.unlock();
  tq.unlock();
  table.unlock();
  vci.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRank, RecursiveSameLockIsAccepted) {
  ValidatorOn on;
  InstrumentedMutex vci{"vci", LockRank::vci};
  vci.lock();
  vci.lock();  // recursive re-entry: progress from inside a poll callback
  EXPECT_EQ(lock_rank::held_count(), 2u);
  vci.unlock();
  vci.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRank, SkippingRanksIsAccepted) {
  ValidatorOn on;
  // The hierarchy is a total order, not a chain: vci -> transport without
  // the middle ranks is fine (progress_test -> shm poll does exactly this).
  InstrumentedMutex vci{"vci", LockRank::vci};
  Spinlock xport{"net:channel", LockRank::transport};
  vci.lock();
  xport.lock();
  xport.unlock();
  vci.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRankDeathTest, TransportBeforeVciAborts) {
  ValidatorOn on;
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Spinlock xport{"shm:pending", LockRank::transport};
  InstrumentedMutex vci{"vci", LockRank::vci};
  // The report must name BOTH locks: the one being acquired and the
  // higher-ranked one already held.
  EXPECT_DEATH(
      {
        xport.lock();
        vci.lock();
      },
      "acquiring lock \"vci\".*while holding lock[[:space:]]*\"shm:pending\"");
}

TEST(LockRankDeathTest, EqualRankCrossLockAborts) {
  ValidatorOn on;
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two distinct VCI locks: ranks must STRICTLY increase, so locking a
  // second rank-vci mutex while one is held is an inversion (it is exactly
  // the two-threads-opposite-order deadlock).
  InstrumentedMutex a{"vci", LockRank::vci};
  InstrumentedMutex b{"vci", LockRank::vci};
  EXPECT_DEATH(
      {
        a.lock();
        b.lock();
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, TryLockHoldParticipatesInOrdering) {
  ValidatorOn on;
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Spinlock xport{"net:cq", LockRank::transport};
  InstrumentedMutex vci{"vci", LockRank::vci};
  // try_lock itself is exempt from the order check (it cannot deadlock),
  // but a lock it acquires is held for ordering purposes afterwards.
  EXPECT_DEATH(
      {
        if (xport.try_lock()) vci.lock();
      },
      "acquiring lock \"vci\".*while holding lock[[:space:]]*\"net:cq\"");
}

TEST(LockRank, KillSwitchDisablesValidation) {
  lock_rank::set_enabled(false);
  Spinlock xport{"shm:pending", LockRank::transport};
  InstrumentedMutex vci{"vci", LockRank::vci};
  xport.lock();
  vci.lock();  // inversion, but validation is off: must not abort
  vci.unlock();
  xport.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
  lock_rank::set_enabled(true);
}

TEST(LockRank, UnrankedLocksAreInvisible) {
  ValidatorOn on;
  InstrumentedMutex plain;  // default: LockRank::none
  Spinlock spin;
  plain.lock();
  spin.lock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
  spin.unlock();
  plain.unlock();
}

#else  // !MPX_LOCK_RANK_CHECKS

TEST(LockRank, CompiledOut) {
  // With MPX_LOCK_RANK_CHECKS=0 the hooks are inline no-ops.
  InstrumentedMutex vci{"vci", LockRank::vci};
  vci.lock();
  vci.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

#endif  // MPX_LOCK_RANK_CHECKS
