// Model-check: Spinlock mutual exclusion, MpscQueue serialization, and the
// explorer's own deadlock detector.
#include <gtest/gtest.h>

#include "mpx/base/queue.hpp"
#include "mpx/base/spinlock.hpp"
#include "mpx/base/thread_safety.hpp"
#include "mpx/mc/mc.hpp"
#include "mpx/mc/sync.hpp"

#if MPX_MODEL_CHECK

namespace mc = mpx::mc;
using mpx::base::LockGuard;
using mpx::base::Spinlock;

TEST(McSpinlock, MutualExclusionAllSchedules) {
  mc::Options opt;
  opt.name = "spinlock_mutex";
  const mc::Result res = mc::explore(opt, [] {
    Spinlock mu;
    int counter = 0;  // plain data: only the lock orders it

    auto bump = [&] {
      for (int i = 0; i < 2; ++i) {
        LockGuard<Spinlock> g(mu);
        MPX_MC_PLAIN_WRITE(&counter, "spinlock counter");
        ++counter;
      }
    };
    mc::thread other(bump);
    bump();
    other.join();
    MPX_MC_PLAIN_READ(&counter, "spinlock counter final");
    mc::check(counter == 4, "both threads' increments must land");
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

TEST(McSpinlock, TryLockNeverBreaksExclusion) {
  mc::Options opt;
  opt.name = "spinlock_trylock";
  const mc::Result res = mc::explore(opt, [] {
    Spinlock mu;
    int owners = 0;

    auto contend = [&] {
      if (mu.try_lock()) {
        MPX_MC_PLAIN_WRITE(&owners, "try_lock owner count");
        ++owners;
        mc::check(owners == 1, "try_lock granted while lock held");
        --owners;
        mu.unlock();
      }
    };
    mc::thread other(contend);
    contend();
    other.join();
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
}

TEST(McSpinlock, MpscQueuePreservesPerProducerOrder) {
  mc::Options opt;
  opt.name = "mpsc_order";
  const mc::Result res = mc::explore(opt, [] {
    mpx::base::MpscQueue<int> q;
    // Producer A pushes 1,2; producer B (body) pushes 10,20. Consumer side
    // (body, after join) must see each producer's values in order.
    mc::thread a([&q] {
      q.push(1);
      q.push(2);
    });
    q.push(10);
    q.push(20);
    a.join();

    int last_a = 0, last_b = 0;
    for (int i = 0; i < 4; ++i) {
      auto v = q.try_pop();
      mc::check(v.has_value(), "queue holds exactly four items");
      if (*v < 10) {
        mc::check(*v > last_a, "producer A's items must stay FIFO");
        last_a = *v;
      } else {
        mc::check(*v > last_b, "producer B's items must stay FIFO");
        last_b = *v;
      }
    }
    mc::check(!q.try_pop().has_value(), "queue drained");
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
}

TEST(McSpinlock, AbbaDeadlockIsDetected) {
  // ABBA on two UNRANKED mc::mutexes (ranked locks would be caught by the
  // lock-rank validator first — this exercises the explorer's detector).
  // Fatal failures abandon the session: the parked vthreads and the Session
  // are leaked by design, so this runs as the binary's last scenario.
  mc::Options opt;
  opt.name = "abba_deadlock";
  const mc::Result res = mc::explore(opt, [] {
    // Stack locals: on abandon the parked threads' frames are frozen, never
    // unwound, so the held mutexes are simply leaked with the session.
    mc::mutex a;
    mc::mutex b;
    mc::thread t([&] {
      b.lock();
      a.lock();
      a.unlock();
      b.unlock();
    });
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
    t.join();
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.failed);
  EXPECT_NE(res.failure.find("deadlock"), std::string::npos) << res.summary();
  EXPECT_FALSE(res.replay.empty()) << "failing schedule must be replayable";
}

#else
TEST(McSpinlock, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
