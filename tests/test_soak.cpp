// Soak test: a time-bounded random mixed workload — p2p at every size,
// collectives, async hooks, pack requests, persistent ops — hammered
// concurrently from all ranks. The checks are (a) nothing deadlocks,
// (b) every payload arrives intact, (c) no request leaks afterwards.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

#include "mpx/coll/coll.hpp"
#include "mpx/task/deadline.hpp"
#include "test_util.hpp"

using namespace mpx;

TEST(Soak, RandomMixedWorkload) {
  const long base_live = core_detail::RequestImpl::live_count().load();
  {
    WorldConfig cfg;
    cfg.nranks = 4;
    cfg.ranks_per_node = 2;       // both transports in play
    cfg.shm_eager_max = 2048;     // low thresholds: all protocols exercised
    cfg.net_lightweight_max = 128;
    cfg.net_eager_max = 4096;
    cfg.net_pipeline_min = 32 * 1024;
    cfg.net_pipeline_chunk = 8 * 1024;
    auto w = World::create(cfg);

    constexpr int kRounds = 60;
    mpx_test::run_ranks(*w, [&](int rank) {
      Comm c = w->comm_world(rank);
      const Stream s = c.stream();
      ASSERT_EQ(c.size(), 4);
      // Deterministic per-rank stream: reruns replay the exact workload.
      std::mt19937 rng = mpx_test::rank_rng(/*salt=*/0x50a1u, rank);

      // A background async hook alive for the whole run.
      std::atomic<bool> stop{false};
      std::atomic<int> hook_polls{0};
      async_start(
          [&]() -> AsyncResult {
            hook_polls.fetch_add(1);
            return stop.load() ? AsyncResult::done : AsyncResult::pending;
          },
          s);

      for (int round = 0; round < kRounds; ++round) {
        // The action must be identical on every rank (collectives and
        // pairwise exchanges need everyone on the same step); per-rank
        // randomness only shapes payload sizes.
        const int action =
            static_cast<int>((static_cast<unsigned>(round) * 2654435761u) >>
                             16) %
            4;
        switch (action) {
          case 0: {  // pairwise exchange with a random-sized payload
            const int peer = rank ^ 1;  // deterministic pairing (n = 4)
            const std::size_t sz = 1u << (rng() % 14);  // up to 8192 int32
            std::vector<std::int32_t> out(sz, rank * 1000 + round);
            std::vector<std::int32_t> in(16384, -1);
            Status st = c.sendrecv(out.data(), sz, dtype::Datatype::int32(),
                                   peer, 10000 + round, in.data(), in.size(),
                                   dtype::Datatype::int32(), peer,
                                   10000 + round);
            ASSERT_EQ(st.source, peer);
            const std::size_t got = st.count_bytes / 4;
            for (std::size_t i = 0; i < got; ++i) {
              ASSERT_EQ(in[i], peer * 1000 + round);
            }
            break;
          }
          case 1: {  // collective
            std::int64_t v = rank + round, sum = 0;
            coll::allreduce(&v, &sum, 1, dtype::Datatype::int64(),
                            dtype::ReduceOp::sum, c);
            ASSERT_EQ(sum, 0 + 1 + 2 + 3 + 4 * round);
            break;
          }
          case 2: {  // async pack
            std::vector<std::int32_t> src(512);
            std::iota(src.begin(), src.end(), round);
            auto strided =
                dtype::Datatype::vector(256, 1, 2, dtype::Datatype::int32());
            std::vector<std::byte> packed(1024);
            Request r = ipack(src.data(), 1, strided, packed, s, 128);
            wait_on_stream(r, s);
            break;
          }
          default: {  // dummy deadline task
            std::atomic<int> counter{1};
            task::add_dummy_task(s, 1e-5, &counter, nullptr);
            while (counter.load() > 0) stream_progress(s);
            break;
          }
        }
        // Keep the ranks loosely coupled: every few rounds, a barrier.
        if (round % 10 == 9) coll::barrier(c);
      }
      coll::barrier(c);
      stop.store(true);
      w->finalize_rank(rank);
      EXPECT_GT(hook_polls.load(), 0);
    });
  }
  EXPECT_EQ(core_detail::RequestImpl::live_count().load(), base_live);
}
