// Collective correctness across algorithms, communicator sizes, payload
// sizes, and both transports (parameterized sweeps).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpx/coll/coll.hpp"
#include "mpx/coll/user_allreduce.hpp"
#include "test_util.hpp"

using namespace mpx;

struct CollParam {
  int nranks;
  int ranks_per_node;  // 1 => NIC path, large => shm path
  std::size_t count;
};

class CollSweep : public ::testing::TestWithParam<CollParam> {
 protected:
  std::shared_ptr<World> make_world() const {
    const CollParam p = GetParam();
    WorldConfig cfg;
    cfg.nranks = p.nranks;
    cfg.ranks_per_node = p.ranks_per_node;
    return World::create(cfg);
  }
};

TEST_P(CollSweep, AllreduceSumMatchesSerial) {
  auto w = make_world();
  const auto p = GetParam();
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::vector<std::int64_t> in(p.count), out(p.count, -1);
    for (std::size_t i = 0; i < p.count; ++i) {
      in[i] = static_cast<std::int64_t>(i) + rank;
    }
    coll::allreduce(in.data(), out.data(), p.count, dtype::Datatype::int64(),
                    dtype::ReduceOp::sum, c);
    const int n = c.size();
    for (std::size_t i = 0; i < p.count; ++i) {
      const auto expect = static_cast<std::int64_t>(i) * n +
                          static_cast<std::int64_t>(n) * (n - 1) / 2;
      ASSERT_EQ(out[i], expect) << "i=" << i;
    }
    w->finalize_rank(rank);
  });
}

TEST_P(CollSweep, BcastFromEveryRoot) {
  auto w = make_world();
  const auto p = GetParam();
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    for (int root = 0; root < c.size(); ++root) {
      std::vector<std::int32_t> buf(p.count, rank == root ? root + 7 : -1);
      coll::bcast(buf.data(), p.count, dtype::Datatype::int32(), root, c);
      for (std::size_t i = 0; i < p.count; ++i) {
        ASSERT_EQ(buf[i], root + 7);
      }
    }
    w->finalize_rank(rank);
  });
}

TEST_P(CollSweep, ReduceToEveryRoot) {
  auto w = make_world();
  const auto p = GetParam();
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int n = c.size();
    for (int root = 0; root < n; ++root) {
      std::vector<std::int32_t> in(p.count, rank + 1);
      std::vector<std::int32_t> out(p.count, 0);
      coll::reduce(in.data(), out.data(), p.count, dtype::Datatype::int32(),
                   dtype::ReduceOp::sum, root, c);
      if (rank == root) {
        for (std::size_t i = 0; i < p.count; ++i) {
          ASSERT_EQ(out[i], n * (n + 1) / 2);
        }
      }
    }
    w->finalize_rank(rank);
  });
}

TEST_P(CollSweep, AllgatherRing) {
  auto w = make_world();
  const auto p = GetParam();
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int n = c.size();
    std::vector<std::int32_t> mine(p.count, rank * 100);
    std::vector<std::int32_t> all(p.count * static_cast<std::size_t>(n), -1);
    coll::allgather(mine.data(), p.count, dtype::Datatype::int32(),
                    all.data(), c);
    for (int r = 0; r < n; ++r) {
      for (std::size_t i = 0; i < p.count; ++i) {
        ASSERT_EQ(all[static_cast<std::size_t>(r) * p.count + i], r * 100);
      }
    }
    w->finalize_rank(rank);
  });
}

TEST_P(CollSweep, Barrier) {
  auto w = make_world();
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    for (int i = 0; i < 5; ++i) coll::barrier(c);
    w->finalize_rank(rank);
  });
}

TEST_P(CollSweep, AlltoallPairwise) {
  auto w = make_world();
  const auto p = GetParam();
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int n = c.size();
    const std::size_t cnt = p.count;
    std::vector<std::int32_t> in(cnt * static_cast<std::size_t>(n));
    std::vector<std::int32_t> out(cnt * static_cast<std::size_t>(n), -1);
    for (int d = 0; d < n; ++d) {
      for (std::size_t i = 0; i < cnt; ++i) {
        in[static_cast<std::size_t>(d) * cnt + i] = rank * 1000 + d;
      }
    }
    coll::alltoall(in.data(), cnt, dtype::Datatype::int32(), out.data(), c);
    for (int s = 0; s < n; ++s) {
      for (std::size_t i = 0; i < cnt; ++i) {
        ASSERT_EQ(out[static_cast<std::size_t>(s) * cnt + i],
                  s * 1000 + rank);
      }
    }
    w->finalize_rank(rank);
  });
}

TEST_P(CollSweep, GatherScatterRoundTrip) {
  auto w = make_world();
  const auto p = GetParam();
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int n = c.size();
    std::vector<std::int32_t> mine(p.count, rank + 1);
    std::vector<std::int32_t> gathered(p.count * static_cast<std::size_t>(n));
    coll::gather(mine.data(), p.count, dtype::Datatype::int32(),
                 gathered.data(), 0, c);
    std::vector<std::int32_t> back(p.count, -1);
    coll::scatter(gathered.data(), p.count, dtype::Datatype::int32(),
                  back.data(), 0, c);
    for (std::size_t i = 0; i < p.count; ++i) ASSERT_EQ(back[i], rank + 1);
    w->finalize_rank(rank);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CollSweep,
    ::testing::Values(CollParam{1, 0, 4}, CollParam{2, 0, 1},
                      CollParam{3, 0, 17}, CollParam{4, 0, 256},
                      CollParam{5, 0, 33}, CollParam{8, 0, 1024},
                      CollParam{2, 1, 64}, CollParam{4, 1, 512},
                      CollParam{6, 2, 100}),
    [](const ::testing::TestParamInfo<CollParam>& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.nranks) + "_rpn" +
             std::to_string(p.ranks_per_node) + "_c" +
             std::to_string(p.count);
    });

TEST(CollRing, RingAllreduceMatchesRecursiveDoubling) {
  WorldConfig cfg;
  cfg.nranks = 4;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const std::size_t count = 1000;
    std::vector<double> in(count), rd(count), ring(count);
    for (std::size_t i = 0; i < count; ++i) {
      in[i] = static_cast<double>(i) * (rank + 1);
    }
    coll::allreduce(in.data(), rd.data(), count, dtype::Datatype::float64(),
                    dtype::ReduceOp::sum, c);
    Request r = coll::iallreduce_ring(in.data(), ring.data(), count,
                                      dtype::Datatype::float64(),
                                      dtype::ReduceOp::sum, c);
    wait_on_stream(r, c.stream());
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_DOUBLE_EQ(ring[i], rd[i]);
    }
    w->finalize_rank(rank);
  });
}

TEST(CollUser, UserAllreduceMatchesNative) {
  WorldConfig cfg;
  cfg.nranks = 4;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const std::size_t count = 64;
    std::vector<std::int32_t> user(count), native(count);
    for (std::size_t i = 0; i < count; ++i) {
      user[i] = static_cast<std::int32_t>(i) + rank;
      native[i] = user[i];
    }
    ASSERT_EQ(coll::user_allreduce_int_sum(user.data(), count, c),
              Err::success);
    coll::allreduce(coll::in_place, native.data(), count,
                    dtype::Datatype::int32(), dtype::ReduceOp::sum, c);
    for (std::size_t i = 0; i < count; ++i) ASSERT_EQ(user[i], native[i]);
    w->finalize_rank(rank);
  });
}

TEST(CollUser, GeneralizedUserAllreduceMatchesNativeOnNonPow2) {
  WorldConfig cfg;
  cfg.nranks = 6;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const std::size_t count = 33;
    std::vector<std::int64_t> user(count), native(count);
    for (std::size_t i = 0; i < count; ++i) {
      user[i] = static_cast<std::int64_t>(i) * (rank + 1) - 7;
      native[i] = user[i];
    }
    ASSERT_EQ(coll::user_allreduce(user.data(), count,
                                   dtype::Datatype::int64(),
                                   dtype::ReduceOp::max, c),
              Err::success);
    coll::allreduce(coll::in_place, native.data(), count,
                    dtype::Datatype::int64(), dtype::ReduceOp::max, c);
    for (std::size_t i = 0; i < count; ++i) ASSERT_EQ(user[i], native[i]);
    w->finalize_rank(rank);
  });
}

TEST(CollNonblocking, OverlappingCollectives) {
  // Two iallreduces in flight simultaneously on the same comm must not
  // interfere (distinct collective tags).
  WorldConfig cfg;
  cfg.nranks = 4;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::int64_t a_in = rank, a_out = 0;
    std::int64_t b_in = rank * 10, b_out = 0;
    Request ra = coll::iallreduce(&a_in, &a_out, 1, dtype::Datatype::int64(),
                                  dtype::ReduceOp::sum, c);
    Request rb = coll::iallreduce(&b_in, &b_out, 1, dtype::Datatype::int64(),
                                  dtype::ReduceOp::sum, c);
    Request reqs[2] = {ra, rb};
    wait_all(reqs);
    EXPECT_EQ(a_out, 0 + 1 + 2 + 3);
    EXPECT_EQ(b_out, 10 * (0 + 1 + 2 + 3));
    w->finalize_rank(rank);
  });
}

TEST(CollMinMax, MinMaxProdOps) {
  WorldConfig cfg;
  cfg.nranks = 3;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    double v = rank + 1.0;
    double mn = 0, mx = 0, pr = 0;
    coll::allreduce(&v, &mn, 1, dtype::Datatype::float64(),
                    dtype::ReduceOp::min, c);
    coll::allreduce(&v, &mx, 1, dtype::Datatype::float64(),
                    dtype::ReduceOp::max, c);
    coll::allreduce(&v, &pr, 1, dtype::Datatype::float64(),
                    dtype::ReduceOp::prod, c);
    EXPECT_EQ(mn, 1.0);
    EXPECT_EQ(mx, 3.0);
    EXPECT_EQ(pr, 6.0);
    w->finalize_rank(rank);
  });
}
