// Task-layer tests: task-class queue (Listing 1.4), request notifier
// (Listing 1.6), futures, task graphs, and the stream-scoped progress
// thread (Fig. 5b done the §5.1 way).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "mpx/task/deadline.hpp"
#include "mpx/task/future.hpp"
#include "mpx/task/graph.hpp"
#include "mpx/task/notifier.hpp"
#include "mpx/task/progress_thread.hpp"
#include "mpx/task/task_queue.hpp"
#include "test_util.hpp"

using namespace mpx;

TEST(TaskQueue, HeadOnlyPollingCompletesInOrder) {
  WorldConfig cfg{.nranks = 1};
  cfg.use_virtual_clock = true;
  auto w = World::create(cfg);
  Stream s = w->null_stream(0);
  task::TaskQueue q(s);

  std::vector<int> completion_order;
  for (int i = 0; i < 8; ++i) {
    const double deadline = 0.1 * (i + 1);
    q.push([&, deadline, i] {
      if (w->wtime() < deadline) return false;
      completion_order.push_back(i);
      return true;
    });
  }
  EXPECT_EQ(q.pending(), 8u);
  w->virtual_clock()->advance(10.0);  // every deadline passed
  q.drain();
  ASSERT_EQ(completion_order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(completion_order[i], i);
}

TEST(TaskQueue, OnlyHeadIsPolled) {
  WorldConfig cfg{.nranks = 1};
  cfg.use_virtual_clock = true;
  auto w = World::create(cfg);
  Stream s = w->null_stream(0);
  task::TaskQueue q(s);

  std::atomic<int> head_polls{0}, tail_polls{0};
  q.push([&] {
    head_polls.fetch_add(1);
    return w->wtime() >= 1.0;
  });
  q.push([&] {
    tail_polls.fetch_add(1);
    return true;
  });
  for (int i = 0; i < 10; ++i) stream_progress(s);
  EXPECT_GE(head_polls.load(), 10);
  EXPECT_EQ(tail_polls.load(), 0);  // never polled while head pending
  w->virtual_clock()->advance(2.0);
  q.drain();
  EXPECT_EQ(tail_polls.load(), 1);
}

TEST(TaskQueue, ReusableAfterDrain) {
  auto w = World::create(WorldConfig{.nranks = 1});
  task::TaskQueue q(w->null_stream(0));
  int runs = 0;
  q.push([&] { ++runs; return true; });
  q.drain();
  EXPECT_EQ(runs, 1);
  q.push([&] { ++runs; return true; });
  q.drain();
  EXPECT_EQ(runs, 2);
}

TEST(Notifier, CallbacksOnRequestCompletion) {
  auto w = World::create(WorldConfig{.nranks = 2});
  task::RequestNotifier notifier(w->null_stream(1));
  std::vector<int> got;
  std::int32_t bufs[4] = {0, 0, 0, 0};
  Comm c1 = w->comm_world(1);
  for (int i = 0; i < 4; ++i) {
    notifier.watch(c1.irecv(&bufs[i], 1, dtype::Datatype::int32(), 0, i),
                   [&got, i](const Status& st) {
                     EXPECT_EQ(st.tag, i);
                     got.push_back(i);
                   });
  }
  Comm c0 = w->comm_world(0);
  for (std::int32_t i = 0; i < 4; ++i) {
    c0.isend(&i, 1, dtype::Datatype::int32(), 1, i);
  }
  notifier.drain();
  EXPECT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(bufs[i], i);
}

TEST(Notifier, WatchFromCallback) {
  auto w = World::create(WorldConfig{.nranks = 2});
  task::RequestNotifier notifier(w->null_stream(1));
  std::int32_t first = 0, second = 0;
  bool chain_done = false;
  Comm c1 = w->comm_world(1);
  notifier.watch(c1.irecv(&first, 1, dtype::Datatype::int32(), 0, 0),
                 [&](const Status&) {
                   notifier.watch(
                       c1.irecv(&second, 1, dtype::Datatype::int32(), 0, 1),
                       [&](const Status&) { chain_done = true; });
                 });
  std::int32_t a = 10, b = 20;
  Comm c0 = w->comm_world(0);
  c0.isend(&a, 1, dtype::Datatype::int32(), 1, 0);
  c0.isend(&b, 1, dtype::Datatype::int32(), 1, 1);
  notifier.drain();
  EXPECT_TRUE(chain_done);
  EXPECT_EQ(first, 10);
  EXPECT_EQ(second, 20);
}

TEST(Future, PromiseSetInsideAsyncHook) {
  WorldConfig cfg{.nranks = 1};
  cfg.use_virtual_clock = true;
  auto w = World::create(cfg);
  Stream s = w->null_stream(0);
  task::Promise<int> promise;
  task::Future<int> f = promise.get_future();
  async_start(
      [&, promise]() mutable -> AsyncResult {
        if (w->wtime() < 1.0) return AsyncResult::pending;
        promise.set_value(321);
        return AsyncResult::done;
      },
      s);
  EXPECT_FALSE(f.ready());
  w->virtual_clock()->advance(2.0);
  EXPECT_EQ(f.get(s), 321);  // get() drives stream progress
}

TEST(Graph, DiamondDependencies) {
  auto w = World::create(WorldConfig{.nranks = 1});
  Stream s = w->null_stream(0);
  std::vector<int> order;
  task::TaskGraph g;
  auto node = [&](int id) {
    return [&order, id]() -> AsyncResult {
      order.push_back(id);
      return AsyncResult::done;
    };
  };
  auto a = g.add(node(0));
  auto b = g.add(node(1), {a});
  auto c = g.add(node(2), {a});
  auto d = g.add(node(3), {b, c});
  (void)d;
  g.launch(s);
  g.wait(s);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

TEST(Graph, MpiNodesOverlapWithLocalNodes) {
  // A graph mixing MPI-dependent nodes with pure-compute nodes, driven by
  // one hook — the interoperable-progress programming scheme of Fig. 6.
  auto w = World::create(WorldConfig{.nranks = 2});
  mpx_test::run_ranks(*w, [&](int rank) {
    Stream s = w->null_stream(rank);
    Comm c = w->comm_world(rank);
    task::TaskGraph g;
    std::int32_t in = 0, out = rank * 10 + 1;
    if (rank == 0) {
      Request rr = c.irecv(&in, 1, dtype::Datatype::int32(), 1, 0);
      auto recv_node = g.add([rr]() {
        return rr.is_complete() ? AsyncResult::done : AsyncResult::pending;
      });
      g.add(
          [&]() {
            out = in * 2;
            return AsyncResult::done;
          },
          {recv_node});
    } else {
      Request sr = c.isend(&out, 1, dtype::Datatype::int32(), 0, 0);
      g.add([sr]() {
        return sr.is_complete() ? AsyncResult::done : AsyncResult::pending;
      });
    }
    g.launch(s);
    g.wait(s);
    if (rank == 0) {
      EXPECT_EQ(out, 22);
    }
    w->finalize_rank(rank);
  });
}

TEST(ProgressThread, BackgroundProgressCompletesRendezvous) {
  // Fig. 5(b): a dedicated progress thread overlaps communication with
  // "computation" (here: a sleep) without any progress calls from the main
  // thread.
  WorldConfig cfg{.nranks = 2};
  cfg.shm_eager_max = 64;  // force rendezvous
  auto w = World::create(cfg);
  std::vector<std::int64_t> data(4096, 5);
  std::vector<std::int64_t> out(4096, 0);

  Request sr = w->comm_world(0).isend(data.data(), data.size(),
                                      dtype::Datatype::int64(), 1, 0);
  Request rr = w->comm_world(1).irecv(out.data(), out.size(),
                                      dtype::Datatype::int64(), 0, 0);
  {
    task::ProgressThread p0(w->null_stream(0), task::ProgressBackoff::yield);
    task::ProgressThread p1(w->null_stream(1), task::ProgressBackoff::yield);
    // "Compute" while the helpers drive the rendezvous.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!(sr.is_complete() && rr.is_complete()) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GT(p1.iterations(), 0u);
  }
  ASSERT_TRUE(sr.is_complete());
  ASSERT_TRUE(rr.is_complete());
  EXPECT_EQ(out, data);
}

TEST(ProgressThread, SleepBackoffIdlesCheaply) {
  auto w = World::create(WorldConfig{.nranks = 1});
  task::ProgressThread pt(w->null_stream(0), task::ProgressBackoff::sleep);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pt.stop();
  // With exponential sleep the idle thread polls orders of magnitude less
  // than a busy spinner would (~millions in 50 ms).
  EXPECT_LT(pt.iterations(), 100000u);
  EXPECT_GT(pt.iterations(), 0u);
}
