// Adaptive progress engine tests.
//
// The EnginePolicy half is pure and deterministic: tests inject fabricated
// epoch samples and prove the mode transitions, the hysteresis damping at
// thresholds, deferred promotion under the worker ceiling, and the
// wait-ladder starvation signal. The runtime half is exercised end to end
// on a real World (promote while the application computes, demote and park
// on the sleep rung when the workload goes idle), with generous deadlines
// so scheduling noise cannot flake the assertions. The ProgressThread
// satellite fixes ride along: concurrent stop()/destructor and windowed
// counter sampling.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "mpx/task/progress_engine.hpp"
#include "mpx/task/progress_thread.hpp"
#include "test_util.hpp"

using namespace mpx;
using task::EngineMode;
using task::EnginePolicy;
using task::EngineSample;

namespace {

ProgressEngineConfig policy_cfg() {
  ProgressEngineConfig cfg;
  cfg.hysteresis = 2;
  cfg.promote_app_polls = 4;
  cfg.dedicate_hit_rate = 0.5;
  cfg.demote_hit_rate = 0.01;
  return cfg;
}

EngineSample starved_sample() {
  EngineSample s;
  s.pending = 1;
  s.app_polls = 0;
  return s;
}

EngineSample app_polling_sample() {
  EngineSample s;
  s.pending = 1;
  s.app_polls = 1000;
  return s;
}

EngineSample cold_sample() {
  EngineSample s;  // pending == 0, no polls anywhere
  return s;
}

EngineSample hot_shared_sample() {
  EngineSample s;
  s.pending = 1;
  s.engine_polls = 100;
  s.engine_hits = 60;  // 0.6 >= dedicate_hit_rate 0.5
  return s;
}

bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds limit) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

}  // namespace

// ---------------------------------------------------------------- policy --

TEST(EnginePolicyTest, PromotesInlineToSharedAfterHysteresis) {
  EnginePolicy p(policy_cfg());
  // Epoch 1: signal present but streak not mature yet.
  EXPECT_EQ(p.decide(EngineMode::inline_poll, starved_sample(), true),
            EngineMode::inline_poll);
  // Epoch 2: second consecutive starved epoch takes the transition.
  EXPECT_EQ(p.decide(EngineMode::inline_poll, starved_sample(), true),
            EngineMode::shared);
}

TEST(EnginePolicyTest, StaysInlineWhileApplicationPolls) {
  EnginePolicy p(policy_cfg());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.decide(EngineMode::inline_poll, app_polling_sample(), true),
              EngineMode::inline_poll);
  }
}

TEST(EnginePolicyTest, WaitLadderBackoffCountsAsStarvation) {
  // The app IS polling (blocking waiters poll every round) but its waiters
  // fell off the spin rung: polls are empty, promote anyway.
  EnginePolicy p(policy_cfg());
  EngineSample s = app_polling_sample();
  s.wait_backoffs = 50;
  EXPECT_EQ(p.decide(EngineMode::inline_poll, s, true),
            EngineMode::inline_poll);
  EXPECT_EQ(p.decide(EngineMode::inline_poll, s, true), EngineMode::shared);
}

TEST(EnginePolicyTest, HysteresisDampsFlappingAtThreshold) {
  // Signal alternating on/off every epoch never accumulates a streak: the
  // mode must hold inline forever.
  EnginePolicy p(policy_cfg());
  for (int i = 0; i < 50; ++i) {
    const EngineSample s = (i % 2 == 0) ? starved_sample()
                                        : app_polling_sample();
    EXPECT_EQ(p.decide(EngineMode::inline_poll, s, true),
              EngineMode::inline_poll)
        << "flapped at epoch " << i;
  }
}

TEST(EnginePolicyTest, PromotesSharedToDedicatedOnHitRate) {
  EnginePolicy p(policy_cfg());
  EXPECT_EQ(p.decide(EngineMode::shared, hot_shared_sample(), true),
            EngineMode::shared);
  EXPECT_EQ(p.decide(EngineMode::shared, hot_shared_sample(), true),
            EngineMode::dedicated);
}

TEST(EnginePolicyTest, DemotesDownTheLadderWhenCold) {
  EnginePolicy p(policy_cfg());
  EXPECT_EQ(p.decide(EngineMode::dedicated, cold_sample(), true),
            EngineMode::dedicated);
  EXPECT_EQ(p.decide(EngineMode::dedicated, cold_sample(), true),
            EngineMode::shared);
  EXPECT_EQ(p.decide(EngineMode::shared, cold_sample(), true),
            EngineMode::shared);
  EXPECT_EQ(p.decide(EngineMode::shared, cold_sample(), true),
            EngineMode::inline_poll);
}

TEST(EnginePolicyTest, BusySharedVciIsNotDemoted) {
  EnginePolicy p(policy_cfg());
  EngineSample s;
  s.pending = 3;  // work in flight: hit rate alone must not demote
  s.engine_polls = 1000;
  s.engine_hits = 0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.decide(EngineMode::shared, s, true), EngineMode::shared);
  }
}

TEST(EnginePolicyTest, CeilingDefersPromotionWithoutDroppingIt) {
  EnginePolicy p(policy_cfg());
  // Streak matures but the worker budget says no: hold, don't reset.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.decide(EngineMode::inline_poll, starved_sample(), false),
              EngineMode::inline_poll);
  }
  // The moment budget frees up, the deferred promotion fires — no need to
  // rebuild the streak from scratch.
  EXPECT_EQ(p.decide(EngineMode::inline_poll, starved_sample(), true),
            EngineMode::shared);
}

// --------------------------------------------------------------- runtime --

TEST(ProgressEngineTest, PromotesWhileApplicationComputes) {
  WorldConfig cfg{.nranks = 2};
  cfg.progress_engine.epoch_us = 200;
  cfg.progress_engine.hysteresis = 1;
  auto w = World::create(cfg);
  task::ProgressEngine eng(*w);
  eng.attach(w->null_stream(0));

  // Rank 0 posts a large (rendezvous) receive and then goes off to
  // "compute": it never calls progress again. Without the engine the LMT
  // copy would never run and the receive could not complete.
  const std::size_t n = 1 << 18;
  std::vector<std::int32_t> rbuf(n, -1), sbuf(n, 7);
  Comm c0 = w->comm_world(0);
  Request rreq =
      c0.irecv(rbuf.data(), n, dtype::Datatype::int32(), 1, 9);

  std::thread sender([&] {
    Comm c1 = w->comm_world(1);
    Request sreq = c1.isend(sbuf.data(), n, dtype::Datatype::int32(), 0, 9);
    sreq.wait();  // drives rank 1's own VCI only
  });

  EXPECT_TRUE(wait_until([&] { return rreq.is_complete(); },
                         std::chrono::seconds(20)))
      << "engine never completed the receive";
  sender.join();
  EXPECT_EQ(rbuf.front(), 7);
  EXPECT_EQ(rbuf.back(), 7);

  const auto st = eng.stats();
  EXPECT_GE(st.promotions, 1u) << "completion without a promotion?";
  EXPECT_GE(st.workers, 1);

  // Workload over: the engine must demote back to inline and park its
  // workers on the sleep rung instead of burning a core.
  EXPECT_TRUE(wait_until(
      [&] {
        return eng.mode_of(w->null_stream(0)) == EngineMode::inline_poll;
      },
      std::chrono::seconds(20)));
  EXPECT_GE(eng.stats().demotions, 1u);
  const std::uint64_t slept = eng.stats().worker_rungs.sleep;
  EXPECT_TRUE(wait_until(
      [&] { return eng.stats().worker_rungs.sleep > slept; },
      std::chrono::seconds(20)))
      << "idle engine workers never reached the sleep rung";

  eng.stop();
  w->finalize_rank(0);
  w->finalize_rank(1);
}

TEST(ProgressEngineTest, WorkerCeilingHolds) {
  WorldConfig cfg{.nranks = 1};
  cfg.progress_engine.epoch_us = 200;
  cfg.progress_engine.hysteresis = 1;
  cfg.progress_engine.max_workers = 1;
  auto w = World::create(cfg);
  task::ProgressEngine eng(*w);

  // Two streams, both permanently starved (a receive that never matches
  // keeps active_ops pinned at 1 while the app never polls): both must end
  // up shared on the single allowed worker.
  Stream sa = w->stream_create(0);
  Stream sb = w->stream_create(0);
  eng.attach(sa);
  eng.attach(sb);

  Comm cw = w->comm_world(0);
  Comm ca = cw.with_stream(sa);
  Comm cb = cw.with_stream(sb);
  std::int32_t da = 0, db = 0;
  Request ra = ca.irecv(&da, 1, dtype::Datatype::int32(), 0, 1001);
  Request rb = cb.irecv(&db, 1, dtype::Datatype::int32(), 0, 1002);

  EXPECT_TRUE(wait_until(
      [&] {
        return eng.mode_of(sa) == EngineMode::shared &&
               eng.mode_of(sb) == EngineMode::shared;
      },
      std::chrono::seconds(20)));
  EXPECT_EQ(eng.stats().workers, 1);

  // A worker multiplexing both VCIs must be polling both.
  EXPECT_TRUE(wait_until(
      [&] {
        const auto st = eng.stats();
        std::uint64_t polled = 0;
        for (const auto& v : st.vcis) polled += v.engine_polls > 0 ? 1 : 0;
        return polled == 2;
      },
      std::chrono::seconds(20)));

  eng.stop();
  ra.cancel();
  rb.cancel();
  EXPECT_TRUE(ra.is_complete());
  EXPECT_TRUE(rb.is_complete());
  w->stream_free(sa);
  w->stream_free(sb);
  w->finalize_rank(0);
}

TEST(ProgressEngineTest, DetachHandsProgressBack) {
  WorldConfig cfg{.nranks = 1};
  cfg.progress_engine.epoch_us = 200;
  cfg.progress_engine.hysteresis = 1;
  auto w = World::create(cfg);
  task::ProgressEngine eng(*w);
  Stream s = w->null_stream(0);
  eng.attach(s);
  EXPECT_EQ(eng.mode_of(s), EngineMode::inline_poll);
  eng.detach(s);
  EXPECT_EQ(eng.mode_of(s), EngineMode::inline_poll);
  eng.stop();
  eng.stop();  // idempotent
  w->finalize_rank(0);
}

// ----------------------------------------------------- ProgressThread fix --

TEST(ProgressThreadTest, ConcurrentStopAndDestroyIsSafe) {
  // Regression: stop() used to join unconditionally, so a destructor racing
  // an explicit stop() from another thread was a double-join (UB). Run the
  // race repeatedly with a live stream; TSan builds verify the handshake.
  for (int iter = 0; iter < 50; ++iter) {
    auto w = World::create(WorldConfig{.nranks = 1});
    auto* pt = new task::ProgressThread(w->null_stream(0),
                                        task::ProgressBackoff::yield);
    std::thread racer([&] { pt->stop(); });
    pt->stop();
    racer.join();
    // Counters published by the worker are visible after stop() returns.
    const std::uint64_t its = pt->iterations();
    EXPECT_GE(its, pt->productive());
    delete pt;  // third stop() via the destructor
  }
}

TEST(ProgressThreadTest, SampleWindowReturnsDeltas) {
  auto w = World::create(WorldConfig{.nranks = 1});
  task::ProgressThread pt(w->null_stream(0), task::ProgressBackoff::yield);
  ASSERT_TRUE(wait_until([&] { return pt.iterations() > 0; },
                         std::chrono::seconds(10)));
  pt.stop();
  // First sample covers everything since construction; after the thread
  // stopped, the next window must be empty — windowed rates, not totals.
  const auto w1 = pt.sample_window();
  EXPECT_EQ(w1.iterations, pt.iterations());
  EXPECT_EQ(w1.productive, pt.productive());
  const auto w2 = pt.sample_window();
  EXPECT_EQ(w2.iterations, 0u);
  EXPECT_EQ(w2.productive, 0u);
}
