// Generalized requests (§4.6, §5.2): plain greqs, greqs + MPIX_Async as the
// progression mechanism (Listing 1.7), and the Latham-style polling greq.
#include <gtest/gtest.h>

#include <atomic>

#include "mpx/ext/grequest_poll.hpp"
#include "mpx/task/deadline.hpp"
#include "test_util.hpp"

using namespace mpx;

namespace {

Err fill_status_query(void* extra_state, Status* status) {
  status->count_bytes = *static_cast<std::uint64_t*>(extra_state);
  return Err::success;
}

}  // namespace

TEST(Grequest, ManualCompleteAndWait) {
  auto w = World::create(WorldConfig{.nranks = 1});
  std::uint64_t payload = 123;
  core_detail::GrequestFns fns;
  fns.query_fn = &fill_status_query;
  fns.extra_state = &payload;
  Request r = w->grequest_start(0, fns);
  EXPECT_FALSE(r.is_complete());
  World::grequest_complete(r);
  ASSERT_TRUE(r.is_complete());
  EXPECT_EQ(r.status().count_bytes, 123u);  // query_fn filled it
  EXPECT_EQ(r.wait().error, Err::success);
}

namespace {

// Listing 1.7: dummy deadline task completing a generalized request.
struct GreqDummy {
  World* world;
  double wtime_complete;
  Request greq;
};

AsyncResult greq_dummy_poll(AsyncThing& thing) {
  auto* p = static_cast<GreqDummy*>(thing.state());
  if (p->world->wtime() > p->wtime_complete) {
    World::grequest_complete(p->greq);
    delete p;
    return AsyncResult::done;
  }
  return AsyncResult::noprogress;
}

}  // namespace

TEST(Grequest, AsyncDrivenGeneralizedRequest) {
  WorldConfig cfg{.nranks = 1};
  cfg.use_virtual_clock = true;
  auto w = World::create(cfg);
  Request greq = w->grequest_start(0, core_detail::GrequestFns{});
  auto* p = new GreqDummy{w.get(), 0.5, greq};
  async_start(&greq_dummy_poll, p, w->null_stream(0));

  stream_progress(w->null_stream(0));
  EXPECT_FALSE(greq.is_complete());
  w->virtual_clock()->advance(1.0);
  // MPI_Wait on the greq drives the VCI whose progress runs the async hook.
  EXPECT_EQ(greq.wait().error, Err::success);
}

TEST(Grequest, PollingGrequestExtension) {
  // grequest_start_with_poll: the Latham'07 proposal — a greq with a
  // progress callback, here built on MPIX_Async.
  WorldConfig cfg{.nranks = 1};
  cfg.use_virtual_clock = true;
  auto w = World::create(cfg);
  struct State {
    World* w;
    bool freed = false;
  } st{w.get(), false};

  Request r = ext::grequest_start_with_poll(
      *w, w->null_stream(0),
      [](void* s) { return static_cast<State*>(s)->w->wtime() >= 1.0; },
      [](void* s) { static_cast<State*>(s)->freed = true; }, &st);
  stream_progress(w->null_stream(0));
  EXPECT_FALSE(r.is_complete());
  w->virtual_clock()->advance(2.0);
  r.wait();
  EXPECT_TRUE(r.is_complete());
  EXPECT_TRUE(st.freed);
}

TEST(Grequest, CancelCallback) {
  auto w = World::create(WorldConfig{.nranks = 1});
  static std::atomic<int> cancels{0};
  core_detail::GrequestFns fns;
  fns.cancel_fn = [](void*, bool) -> Err {
    cancels.fetch_add(1);
    return Err::success;
  };
  Request r = w->grequest_start(0, fns);
  r.cancel();
  EXPECT_EQ(cancels.load(), 1);
  World::grequest_complete(r);
  EXPECT_TRUE(r.is_complete());
}
