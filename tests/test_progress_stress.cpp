// TSan-targeted stress test: many threads hammering stream_progress on the
// SAME VCI concurrently with MPIX_Request_is_complete-style polls from other
// threads. This is the paper's §3.4 claim under fire — is_complete is one
// acquire load with no side effects, so completion observed from any thread
// must imply the payload (and Status) are visible. Run under the `tsan`
// preset this covers the VCI lock, the shm pending/channel locks, and the
// completion release/acquire pair; under the default preset it doubles as a
// lock-rank validator soak (the validator is on by default in every build).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "mpx/base/thread.hpp"
#include "mpx/mpx.hpp"
#include "test_util.hpp"

using namespace mpx;

namespace {

constexpr int kProgressThreads = 4;
constexpr int kMessages = 48;

}  // namespace

TEST(ProgressStress, ManyThreadsOneVciWithCompletionPolls) {
  // Two ranks on one node: all traffic takes the shared-memory path, whose
  // eager rings + sender-side pending queues are the most contended locks.
  auto w = World::create(WorldConfig{.nranks = 2, .ranks_per_node = 2});

  std::vector<std::int32_t> rbuf(kMessages, -1);
  std::vector<Request> recvs;
  recvs.reserve(kMessages);
  Comm c1 = w->comm_world(1);
  for (int i = 0; i < kMessages; ++i) {
    recvs.push_back(
        c1.irecv(&rbuf[static_cast<std::size_t>(i)], 1,
                 dtype::Datatype::int32(), /*src=*/0, /*tag=*/i));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> polls{0};
  {
    std::vector<base::ScopedThread> threads;

    // N threads progressing rank 1's default VCI concurrently.
    for (int t = 0; t < kProgressThreads; ++t) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          stream_progress(w->null_stream(1));
        }
      });
    }

    // One thread doing nothing but is_complete polls (no progress side
    // effects) across every outstanding request, §3.4 style.
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (Request& r : recvs) {
          if (r.is_complete()) polls.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });

    // Sender: rank 0 pushes all messages, driving its own progress so
    // parked sends drain even though nobody else polls rank 0.
    threads.emplace_back([&] {
      Comm c0 = w->comm_world(0);
      std::vector<Request> sends;
      sends.reserve(kMessages);
      std::vector<std::int32_t> sbuf(kMessages);
      std::iota(sbuf.begin(), sbuf.end(), 100);
      for (int i = 0; i < kMessages; ++i) {
        sends.push_back(c0.isend(&sbuf[static_cast<std::size_t>(i)], 1,
                                 dtype::Datatype::int32(), /*dst=*/1,
                                 /*tag=*/i));
      }
      for (Request& s : sends) {
        while (!s.is_complete()) stream_progress(w->null_stream(0));
      }
      // Completion of the last receive ends the test.
      for (Request& r : recvs) {
        while (!r.is_complete()) stream_progress(w->null_stream(0));
      }
      stop.store(true, std::memory_order_release);
    });
  }  // joins

  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(recvs[static_cast<std::size_t>(i)].is_complete());
    // is_complete (acquire) must order the payload write: §3.4.
    EXPECT_EQ(rbuf[static_cast<std::size_t>(i)], 100 + i);
  }
  EXPECT_GT(polls.load(), 0u);
  w->finalize_rank(0);
  w->finalize_rank(1);
}

TEST(ProgressStress, ConcurrentProgressOnDistinctStreams) {
  // Per-thread streams progressed concurrently while a shared default VCI
  // is also hammered: exercises the vci-table lock (stream rank) against
  // the per-VCI locks without any cross-stream nesting.
  auto w = World::create(WorldConfig{.nranks = 1});
  constexpr int kHooksPerThread = 8;

  std::atomic<int> fired{0};
  {
    std::vector<base::ScopedThread> threads;
    for (int t = 0; t < kProgressThreads; ++t) {
      threads.emplace_back([&] {
        Stream s = w->stream_create(0);
        std::atomic<int> remaining{kHooksPerThread};
        for (int i = 0; i < kHooksPerThread; ++i) {
          async_start(
              [&]() -> AsyncResult {
                fired.fetch_add(1, std::memory_order_relaxed);
                remaining.fetch_sub(1, std::memory_order_relaxed);
                return AsyncResult::done;
              },
              s);
        }
        while (remaining.load(std::memory_order_relaxed) != 0) {
          stream_progress(s);
          stream_progress(w->null_stream(0));  // shared-VCI contention
        }
        w->stream_free(s);
      });
    }
  }
  EXPECT_EQ(fired.load(), kProgressThreads * kHooksPerThread);
  w->finalize_rank(0);
}
