// Model-check: FixedBlockPool freelist integrity under cross-thread
// allocate/deallocate (the pooled operator new/delete pattern: a request is
// allocated on one thread and released on another).
#include <gtest/gtest.h>

#include <cstring>

#include "mpx/base/pool.hpp"
#include "mpx/mc/mc.hpp"

#if MPX_MODEL_CHECK

namespace mc = mpx::mc;
using mpx::base::FixedBlockPool;

TEST(McPool, CrossThreadRecycleNeverDoubleHandsABlock) {
  // Static pool: FixedBlockPool registers itself in the process-wide pool
  // registry, so it must outlive every schedule anyway. Each schedule body
  // drains back what it took, leaving the pool state identical for the next
  // schedule (determinism requirement).
  static FixedBlockPool pool("mc_test_pool", /*block_size=*/64,
                             /*max_free=*/8);
  mc::Options opt;
  opt.name = "pool_recycle";
  const mc::Result res = mc::explore(opt, [] {
    void* a = pool.allocate(64);
    mc::check(a != nullptr, "allocate must succeed");
    std::memset(a, 0x5a, 64);

    // The other thread releases A (cross-thread free) and allocates its own
    // block; the body allocates concurrently. Across every interleaving the
    // two live allocations must be distinct blocks.
    void* b_out = nullptr;
    mc::thread other([&] {
      pool.deallocate(a);
      b_out = pool.allocate(64);
      mc::check(b_out != nullptr, "allocate must succeed");
      std::memset(b_out, 0x6b, 64);
    });
    void* c = pool.allocate(64);
    mc::check(c != nullptr, "allocate must succeed");
    std::memset(c, 0x7c, 64);
    other.join();

    mc::check(b_out != c, "freelist handed the same block to two threads");
    pool.deallocate(b_out);
    pool.deallocate(c);
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_TRUE(res.exhausted || res.truncated || res.bound_limited)
      << res.summary();
  EXPECT_GT(res.schedules, 1);
}

#else
TEST(McPool, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
