// Transport-layer unit tests: shared-memory cell queues (parking, FIFO,
// idle) and the simulated NIC (cost model, time-gated delivery, per-channel
// FIFO, injection completions).
#include <gtest/gtest.h>

#include <vector>

#include "mpx/base/clock.hpp"
#include "mpx/net/nic.hpp"
#include "mpx/shm/shm_transport.hpp"

using namespace mpx;
using transport::Msg;
using transport::MsgKind;

namespace {

/// Records everything a poll delivers.
struct RecordingSink final : transport::TransportSink {
  std::vector<Msg> msgs;
  std::vector<std::uint64_t> completions;
  void on_msg(Msg&& m) override { msgs.push_back(std::move(m)); }
  void on_send_complete(std::uint64_t c) override { completions.push_back(c); }
};

Msg make_msg(int src, int dst, int tag, std::size_t payload = 0,
             int dst_vci = 0, int src_vci = 0) {
  Msg m;
  m.h.kind = MsgKind::eager;
  m.h.src_rank = src;
  m.h.dst_rank = dst;
  m.h.src_vci = src_vci;
  m.h.dst_vci = dst_vci;
  m.h.tag = tag;
  m.h.total_bytes = payload;
  if (payload != 0) m.payload = base::Buffer(payload);
  return m;
}

}  // namespace

TEST(ShmTransport, DeliversFifoPerChannel) {
  shm::ShmTransport t(2, 1, 16);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(t.send(make_msg(0, 1, i), 0));
  }
  EXPECT_FALSE(t.idle(1, 0));
  RecordingSink sink;
  int made = 0;
  t.poll(1, 0, sink, &made);
  EXPECT_EQ(made, 1);
  ASSERT_EQ(sink.msgs.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(sink.msgs[i].h.tag, i);
  EXPECT_TRUE(t.idle(1, 0));
}

TEST(ShmTransport, RingFullParksAndSenderProgressFlushes) {
  shm::ShmTransport t(2, 1, 4);  // tiny ring
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(t.send(make_msg(0, 1, i), 0));
  // Fifth send parks; cookie must be reported once it drains.
  EXPECT_FALSE(t.send(make_msg(0, 1, 4), /*cookie=*/77));
  EXPECT_EQ(t.stats().ring_full_events, 1u);
  // Sixth parks behind the fifth even though... the ring is still full.
  EXPECT_FALSE(t.send(make_msg(0, 1, 5), 78));

  // Sender-side progress alone cannot flush while the ring is full.
  RecordingSink s0;
  t.poll(0, 0, s0, nullptr);
  EXPECT_TRUE(s0.completions.empty());

  // Receiver drains the ring; then sender progress pushes the parked msgs.
  RecordingSink s1;
  t.poll(1, 0, s1, nullptr);
  EXPECT_EQ(s1.msgs.size(), 4u);
  t.poll(0, 0, s0, nullptr);
  EXPECT_EQ(s0.completions, (std::vector<std::uint64_t>{77, 78}));
  t.poll(1, 0, s1, nullptr);
  ASSERT_EQ(s1.msgs.size(), 6u);
  EXPECT_EQ(s1.msgs[4].h.tag, 4);  // parked sends kept FIFO order
  EXPECT_EQ(s1.msgs[5].h.tag, 5);
}

TEST(ShmTransport, GeometryRoundsCellsToPowerOfTwo) {
  shm::ShmTransport t(2, 1, /*cells=*/5, /*slot_bytes=*/100);
  EXPECT_EQ(t.cells(), 8u);
  EXPECT_GE(t.slot_bytes(), 100u);  // stride padding donated to the slot
}

TEST(ShmTransport, RingFullEventsCountSlotStallsNotBacklogParks) {
  shm::ShmTransport t(2, 1, 4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(t.send(make_msg(0, 1, i), 0));
  // Fresh send probing a full ring: one stall.
  EXPECT_FALSE(t.send(make_msg(0, 1, 4), 0));
  EXPECT_EQ(t.stats().ring_full_events, 1u);
  // Parking behind the existing backlog never probes the ring: no stall.
  EXPECT_FALSE(t.send(make_msg(0, 1, 5), 0));
  EXPECT_FALSE(t.send(make_msg(0, 1, 6), 0));
  EXPECT_EQ(t.stats().ring_full_events, 1u);
  // A sender-progress flush attempt that still finds the ring full: stall.
  RecordingSink s0;
  t.poll(0, 0, s0, nullptr);
  EXPECT_EQ(t.stats().ring_full_events, 2u);
}

TEST(ShmTransport, BatchedDeliveryAndInlineHitCounters) {
  shm::ShmTransport t(2, 1, 16, /*slot_bytes=*/64, /*deliver_batch=*/16);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(t.send(make_msg(0, 1, i, /*payload=*/32), 0));
  }
  RecordingSink sink;
  t.poll(1, 0, sink, nullptr);
  ASSERT_EQ(sink.msgs.size(), 6u);
  const shm::ShmStats st = t.stats();
  EXPECT_EQ(st.delivered, 6u);
  EXPECT_EQ(st.batched_deliveries, 1u);  // one drain moved all six cells
  EXPECT_EQ(st.inline_payload_hits, 6u);
}

TEST(ShmTransport, DeliverBatchCapsCellsPerPoll) {
  shm::ShmTransport t(2, 1, 16, /*slot_bytes=*/64, /*deliver_batch=*/2);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(t.send(make_msg(0, 1, i), 0));
  RecordingSink sink;
  t.poll(1, 0, sink, nullptr);
  EXPECT_EQ(sink.msgs.size(), 2u);  // capped at deliver_batch
  t.poll(1, 0, sink, nullptr);
  EXPECT_EQ(sink.msgs.size(), 4u);
  t.poll(1, 0, sink, nullptr);
  ASSERT_EQ(sink.msgs.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(sink.msgs[i].h.tag, i);
  EXPECT_EQ(t.stats().batched_deliveries, 2u);  // the 1-cell drain is not
}

TEST(ShmTransport, SendEagerCopiesInSlotAndNeverOwnsThePayload) {
  shm::ShmTransport t(2, 1, 8, /*slot_bytes=*/64);
  std::vector<std::byte> buf(48);
  for (std::size_t j = 0; j < buf.size(); ++j) {
    buf[j] = std::byte{static_cast<unsigned char>(j * 3 + 1)};
  }
  transport::MsgHeader h = make_msg(0, 1, 7).h;
  h.total_bytes = buf.size();
  EXPECT_TRUE(t.send_eager(h, base::ConstByteSpan(buf.data(), buf.size()), 0));
  // Clobber the source immediately: the slot copy happened before return.
  std::fill(buf.begin(), buf.end(), std::byte{0xee});

  RecordingSink sink;
  t.poll(1, 0, sink, nullptr);
  ASSERT_EQ(sink.msgs.size(), 1u);
  ASSERT_EQ(sink.msgs[0].payload.size(), 48u);
  for (std::size_t j = 0; j < 48; ++j) {
    EXPECT_EQ(sink.msgs[0].payload.data()[j],
              std::byte{static_cast<unsigned char>(j * 3 + 1)});
  }
  EXPECT_EQ(t.stats().inline_payload_hits, 1u);
}

TEST(ShmTransport, SendEagerOverflowsToOwnedBufferAboveSlotBytes) {
  shm::ShmTransport t(2, 1, 8, /*slot_bytes=*/64);
  std::vector<std::byte> buf(300);
  for (std::size_t j = 0; j < buf.size(); ++j) {
    buf[j] = std::byte{static_cast<unsigned char>(j)};
  }
  transport::MsgHeader h = make_msg(0, 1, 9).h;
  h.total_bytes = buf.size();
  EXPECT_TRUE(t.send_eager(h, base::ConstByteSpan(buf.data(), buf.size()), 0));
  std::fill(buf.begin(), buf.end(), std::byte{0x11});

  RecordingSink sink;
  t.poll(1, 0, sink, nullptr);
  ASSERT_EQ(sink.msgs.size(), 1u);
  ASSERT_EQ(sink.msgs[0].payload.size(), 300u);
  for (std::size_t j = 0; j < 300; ++j) {
    EXPECT_EQ(sink.msgs[0].payload.data()[j],
              std::byte{static_cast<unsigned char>(j)});
  }
  EXPECT_EQ(t.stats().inline_payload_hits, 0u);  // rode in the overflow buffer
}

TEST(ShmTransport, SendEagerParkedStillCompletesCookieAfterDrain) {
  shm::ShmTransport t(2, 1, 2, /*slot_bytes=*/64);
  std::vector<std::byte> buf(16, std::byte{0x42});
  transport::MsgHeader h = make_msg(0, 1, 0).h;
  h.total_bytes = buf.size();
  EXPECT_TRUE(t.send_eager(h, base::ConstByteSpan(buf.data(), buf.size()), 0));
  EXPECT_TRUE(t.send_eager(h, base::ConstByteSpan(buf.data(), buf.size()), 0));
  // Ring full: parks, but the payload was copied (pooled) before return.
  EXPECT_FALSE(t.send_eager(h, base::ConstByteSpan(buf.data(), buf.size()),
                            /*cookie=*/55));
  std::fill(buf.begin(), buf.end(), std::byte{0x00});

  RecordingSink recv;
  RecordingSink send_side;
  t.poll(1, 0, recv, nullptr);           // drain the two in-ring messages
  t.poll(0, 0, send_side, nullptr);      // flush the parked one
  EXPECT_EQ(send_side.completions, (std::vector<std::uint64_t>{55}));
  t.poll(1, 0, recv, nullptr);
  ASSERT_EQ(recv.msgs.size(), 3u);
  for (const Msg& m : recv.msgs) {
    ASSERT_EQ(m.payload.size(), 16u);
    EXPECT_EQ(m.payload.data()[0], std::byte{0x42});
  }
}

namespace {

/// Sink that re-enters poll() from inside a delivery callback — the shape
/// of a completion callback calling back into progress. The re-entrant
/// call must not re-deliver the outer batch's cells.
struct ReentrantSink final : transport::TransportSink {
  shm::ShmTransport* t = nullptr;
  std::vector<int> tags;
  void on_msg(Msg&& m) override {
    tags.push_back(m.h.tag);
    int made = 0;
    t->poll(1, 0, *this, &made);  // re-enter the same endpoint's delivery
  }
  void on_send_complete(std::uint64_t) override {}
};

}  // namespace

TEST(ShmTransport, ReentrantPollFromSinkDoesNotDuplicateDeliveries) {
  shm::ShmTransport t(2, 1, 16);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(t.send(make_msg(0, 1, i), 0));
  ReentrantSink sink;
  sink.t = &t;
  t.poll(1, 0, sink, nullptr);
  ASSERT_EQ(sink.tags.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sink.tags[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(t.stats().delivered, 4u);
  EXPECT_TRUE(t.idle(1, 0));
}

TEST(ShmTransport, VciChannelsAreIndependent) {
  shm::ShmTransport t(2, 2, 8);
  EXPECT_TRUE(t.send(make_msg(0, 1, 10, 0, /*dst_vci=*/1), 0));
  RecordingSink sink;
  t.poll(1, 0, sink, nullptr);  // wrong vci
  EXPECT_TRUE(sink.msgs.empty());
  EXPECT_TRUE(t.idle(1, 0));
  EXPECT_FALSE(t.idle(1, 1));
  t.poll(1, 1, sink, nullptr);
  ASSERT_EQ(sink.msgs.size(), 1u);
  EXPECT_EQ(sink.msgs[0].h.tag, 10);
}

TEST(CostModel, DeliveryAndInjectionTimes) {
  net::CostModel m;
  m.alpha = 1e-6;
  m.beta = 1e-9;  // 1 GB/s
  m.gamma = 1e-7;
  m.inj_beta = 5e-10;
  // Empty channel: start at send time.
  EXPECT_DOUBLE_EQ(m.deliver_time(0.0, 0.0, 1000), 1e-6 + 1e-6);
  // Busy channel: serialized behind the previous message.
  EXPECT_DOUBLE_EQ(m.deliver_time(0.0, 5e-6, 1000), 5e-6 + 2e-6);
  EXPECT_DOUBLE_EQ(m.inject_done_time(1.0, 2000), 1.0 + 1e-7 + 1e-6);
}

TEST(Nic, DeliveryIsTimeGated) {
  base::VirtualClock clock;
  net::CostModel m;  // alpha = 2 us default
  net::Nic nic(2, 1, m, clock);
  nic.inject(make_msg(0, 1, 1, 64), 0);

  RecordingSink sink;
  int made = 0;
  nic.poll(1, 0, sink, &made);  // too early
  EXPECT_TRUE(sink.msgs.empty());
  EXPECT_EQ(made, 0);
  EXPECT_FALSE(nic.idle(1, 0));  // in flight, just not due

  clock.advance(1.0);
  nic.poll(1, 0, sink, &made);
  ASSERT_EQ(sink.msgs.size(), 1u);
  EXPECT_EQ(made, 1);
  EXPECT_TRUE(nic.idle(1, 0));
}

TEST(Nic, ChannelFifoEvenWhenSizesDiffer) {
  base::VirtualClock clock;
  net::CostModel m;
  net::Nic nic(2, 1, m, clock);
  // Big message first, then a tiny one: the tiny one would "arrive" earlier
  // by raw cost, but per-channel FIFO must serialize them.
  nic.inject(make_msg(0, 1, 0, 1 << 20), 0);
  nic.inject(make_msg(0, 1, 1, 8), 0);
  clock.advance(10.0);
  RecordingSink sink;
  nic.poll(1, 0, sink, nullptr);
  ASSERT_EQ(sink.msgs.size(), 2u);
  EXPECT_EQ(sink.msgs[0].h.tag, 0);
  EXPECT_EQ(sink.msgs[1].h.tag, 1);
}

TEST(Nic, SenderCompletionQueue) {
  base::VirtualClock clock;
  net::CostModel m;
  net::Nic nic(2, 1, m, clock);
  nic.inject(make_msg(0, 1, 0, 4096), /*cookie=*/123);
  RecordingSink sink;
  nic.poll(0, 0, sink, nullptr);  // injection not done at t=0
  EXPECT_TRUE(sink.completions.empty());
  clock.advance(1.0);
  nic.poll(0, 0, sink, nullptr);
  EXPECT_EQ(sink.completions, (std::vector<std::uint64_t>{123}));
  EXPECT_EQ(nic.stats().cq_events, 1u);
}

TEST(Nic, CrossChannelsDoNotBlockEachOther) {
  base::VirtualClock clock;
  net::CostModel m;
  net::Nic nic(3, 1, m, clock);
  nic.inject(make_msg(0, 2, 0, 1 << 20), 0);  // slow: 0 -> 2
  nic.inject(make_msg(1, 2, 1, 8), 0);        // fast: 1 -> 2
  clock.advance(3e-6);  // past alpha + small-beta, before the 1 MiB finishes
  RecordingSink sink;
  nic.poll(2, 0, sink, nullptr);
  ASSERT_EQ(sink.msgs.size(), 1u);
  EXPECT_EQ(sink.msgs[0].h.tag, 1);  // the independent channel delivered
}
