// API-misuse and edge-path coverage: precondition checks across the public
// surface, plus protocol edge cases on the NIC path (truncation, sync sends,
// wildcards over rendezvous).
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "mpx/coll/coll.hpp"
#include "mpx/coll/user_allreduce.hpp"
#include "test_util.hpp"

using namespace mpx;

TEST(Errors, WorldConstruction) {
  EXPECT_THROW(World::create(WorldConfig{.nranks = 0}), UsageError);
  WorldConfig bad;
  bad.nranks = 1;
  bad.max_vcis = 0;
  EXPECT_THROW(World::create(bad), UsageError);
}

TEST(Errors, RankRangeChecks) {
  auto w = World::create(WorldConfig{.nranks = 2});
  EXPECT_THROW(w->comm_world(2), UsageError);
  EXPECT_THROW(w->comm_world(-1), UsageError);
  EXPECT_THROW(w->null_stream(5), UsageError);
  EXPECT_THROW(w->stream_create(-1), UsageError);
}

TEST(Errors, P2pArgumentChecks) {
  auto w = World::create(WorldConfig{.nranks = 2});
  Comm c = w->comm_world(0);
  std::int32_t x = 0;
  auto dt = dtype::Datatype::int32();
  EXPECT_THROW(c.isend(&x, 1, dt, 2, 0), UsageError);    // dst out of range
  EXPECT_THROW(c.isend(&x, 1, dt, -1, 0), UsageError);
  EXPECT_THROW(c.isend(&x, 1, dt, 1, -3), UsageError);   // negative tag
  EXPECT_THROW(c.irecv(&x, 1, dt, 2, 0), UsageError);    // src out of range
  EXPECT_THROW(c.isend(&x, 1, dtype::Datatype(), 1, 0), UsageError);
  Comm invalid;
  EXPECT_THROW(invalid.isend(&x, 1, dt, 0, 0), UsageError);
  EXPECT_THROW(invalid.rank(), UsageError);
}

TEST(Errors, RequestMisuse) {
  Request r;
  EXPECT_TRUE(r.is_complete());  // null request reads complete
  EXPECT_THROW(r.wait(), UsageError);
  EXPECT_THROW(r.status(), UsageError);

  auto w = World::create(WorldConfig{.nranks = 2});
  std::int32_t x = 0;
  Request pending = w->comm_world(0).irecv(&x, 1, dtype::Datatype::int32(),
                                           1, 0);
  EXPECT_THROW(pending.status(), UsageError);  // not complete yet
  pending.cancel();
}

TEST(Errors, StreamMisuse) {
  auto wa = World::create(WorldConfig{.nranks = 1});
  auto wb = World::create(WorldConfig{.nranks = 1});
  Stream sa = wa->stream_create(0);
  EXPECT_THROW(wb->stream_free(sa), UsageError);  // wrong world
  Stream invalid;
  EXPECT_THROW(stream_progress(invalid), UsageError);
  EXPECT_THROW(async_start(nullptr, nullptr, sa), UsageError);
  wa->stream_free(sa);
  // Using a freed stream for async registration is rejected.
  Stream sb = wa->stream_create(0);
  Stream copy = sb;
  wa->stream_free(sb);
  EXPECT_THROW(async_start([]() { return AsyncResult::done; }, copy),
               UsageError);
}

TEST(Errors, PersistentMisuse) {
  auto w = World::create(WorldConfig{.nranks = 2});
  Comm c = w->comm_world(0);
  std::int32_t x = 0;
  Request normal = c.irecv(&x, 1, dtype::Datatype::int32(), 1, 0);
  EXPECT_THROW(start(normal), UsageError);  // not persistent
  normal.cancel();

  Request p = c.send_init(&x, 1, dtype::Datatype::int32(), 1, 0);
  start(p);
  // send completes buffered; re-start after completion is fine.
  p.wait();
  start(p);
  p.wait();
  // Both sends land eventually.
  std::int32_t sink = 0;
  w->comm_world(1).recv(&sink, 1, dtype::Datatype::int32(), 0, 0);
  w->comm_world(1).recv(&sink, 1, dtype::Datatype::int32(), 0, 0);
}

TEST(Errors, EveryCodeHasADistinctName) {
  // to_string must cover the whole enum — a new code without a string
  // renders as a bare integer in diagnostics.
  const Err all[] = {Err::success,  Err::truncate, Err::pending,
                     Err::cancelled, Err::no_match, Err::resource,
                     Err::internal, Err::unsupported,
                     Err::invalid_schedule};
  std::set<std::string> names;
  for (const Err e : all) {
    const std::string n = to_string(e);
    EXPECT_FALSE(n.empty());
    EXPECT_EQ(n.find("err("), std::string::npos)
        << "unnamed error code " << static_cast<int>(e);
    names.insert(n);
  }
  EXPECT_EQ(names.size(), std::size(all));
  EXPECT_EQ(to_string(Err::invalid_schedule), "invalid_schedule");
}

TEST(Errors, CollArgumentChecks) {
  auto w = World::create(WorldConfig{.nranks = 1});
  Comm c = w->comm_world(0);
  std::int32_t x = 0, y = 0;
  EXPECT_THROW(coll::bcast(&x, 1, dtype::Datatype::int32(), 3, c),
               UsageError);
  auto noncontig = dtype::Datatype::vector(2, 1, 2, dtype::Datatype::int32());
  EXPECT_THROW(coll::allreduce(&x, &y, 1, noncontig, dtype::ReduceOp::sum, c),
               UsageError);
  // Non-power-of-two communicator: the Listing 1.8 shortcut reports
  // Err::unsupported before any coordination happens (a runtime condition,
  // not API misuse), and the nonblocking form leaves the done flag alone.
  auto w3 = World::create(WorldConfig{.nranks = 3});
  EXPECT_EQ(coll::user_allreduce_int_sum(&x, 1, w3->comm_world(0)),
            Err::unsupported);
  bool done = false;
  EXPECT_EQ(coll::user_allreduce_int_sum_start(&x, 1, w3->comm_world(0),
                                               &done),
            Err::unsupported);
  EXPECT_FALSE(done);
  // The generalized form rejects datatypes the schedule compiler cannot
  // serve, again without communicating.
  EXPECT_EQ(coll::user_allreduce(&x, 1, noncontig, dtype::ReduceOp::sum, c),
            Err::unsupported);
}

TEST(Errors, UserAllreduceGeneralizedServesNonPow2) {
  // The compiler's non-power-of-two path picks up where the Listing 1.8
  // shortcut bows out: same call shape, any comm size.
  auto w = World::create(WorldConfig{.nranks = 3});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::vector<std::int32_t> buf(5, rank + 1);
    ASSERT_EQ(coll::user_allreduce(buf.data(), buf.size(),
                                   dtype::Datatype::int32(),
                                   dtype::ReduceOp::sum, c),
              Err::success);
    for (std::int32_t v : buf) ASSERT_EQ(v, 1 + 2 + 3);
    w->finalize_rank(rank);
  });
}

TEST(NetEdge, RendezvousTruncation) {
  auto w = World::create(mpx_test::virtual_net_config(2));
  std::vector<std::int64_t> big(64 * 1024, 9);  // 512 KB rendezvous
  Request s = w->comm_world(0).isend(big.data(), big.size(),
                                     dtype::Datatype::int64(), 1, 0);
  std::vector<std::int64_t> small(100, -1);
  Request r = w->comm_world(1).irecv(small.data(), small.size(),
                                     dtype::Datatype::int64(), 0, 0);
  for (int i = 0; i < 50 && !(s.is_complete() && r.is_complete()); ++i) {
    w->virtual_clock()->advance(0.01);
    stream_progress(w->null_stream(1));
    stream_progress(w->null_stream(0));
  }
  ASSERT_TRUE(r.is_complete());
  EXPECT_EQ(r.status().error, Err::truncate);
  EXPECT_EQ(r.status().count_bytes, 800u);
  for (auto v : small) EXPECT_EQ(v, 9);
}

TEST(NetEdge, SyncSendOverNic) {
  auto w = World::create(mpx_test::virtual_net_config(2));
  std::int32_t v = 4;
  Request s = w->comm_world(0).issend(&v, 1, dtype::Datatype::int32(), 1, 0);
  // Plenty of time and sender polls — but no receiver: must stay pending.
  for (int i = 0; i < 10; ++i) {
    w->virtual_clock()->advance(0.01);
    stream_progress(w->null_stream(0));
  }
  EXPECT_FALSE(s.is_complete());
  std::int32_t out = 0;
  Request r = w->comm_world(1).irecv(&out, 1, dtype::Datatype::int32(), 0, 0);
  for (int i = 0; i < 50 && !(s.is_complete() && r.is_complete()); ++i) {
    w->virtual_clock()->advance(0.01);
    stream_progress(w->null_stream(1));
    stream_progress(w->null_stream(0));
  }
  ASSERT_TRUE(s.is_complete());
  EXPECT_EQ(out, 4);
}

TEST(NetEdge, AnySourceOverRendezvous) {
  auto w = World::create(mpx_test::virtual_net_config(3));
  std::vector<std::int32_t> big(50000, 21);  // 200 KB: rendezvous
  Request s = w->comm_world(2).isend(big.data(), big.size(),
                                     dtype::Datatype::int32(), 0, 5);
  std::vector<std::int32_t> out(50000, 0);
  Request r = w->comm_world(0).irecv(out.data(), out.size(),
                                     dtype::Datatype::int32(), any_source,
                                     any_tag);
  for (int i = 0; i < 50 && !(s.is_complete() && r.is_complete()); ++i) {
    w->virtual_clock()->advance(0.01);
    stream_progress(w->null_stream(0));
    stream_progress(w->null_stream(2));
  }
  ASSERT_TRUE(r.is_complete());
  EXPECT_EQ(r.status().source, 2);
  EXPECT_EQ(r.status().tag, 5);
  EXPECT_EQ(out, big);
}

TEST(NetEdge, NonContiguousOverPipeline) {
  WorldConfig cfg = mpx_test::virtual_net_config(2);
  cfg.net_pipeline_min = 32 * 1024;
  cfg.net_pipeline_chunk = 8 * 1024;
  auto w = World::create(cfg);
  const int n = 30000;
  std::vector<std::int32_t> src(2 * n);
  std::iota(src.begin(), src.end(), 0);
  auto strided = dtype::Datatype::vector(n, 1, 2, dtype::Datatype::int32());

  // Non-contiguous on BOTH sides of a pipelined transfer.
  std::vector<std::int32_t> dst(2 * n, -1);
  Request s = w->comm_world(0).isend(src.data(), 1, strided, 1, 0);
  Request r = w->comm_world(1).irecv(dst.data(), 1, strided, 0, 0);
  for (int i = 0; i < 400 && !(s.is_complete() && r.is_complete()); ++i) {
    w->virtual_clock()->advance(0.005);
    stream_progress(w->null_stream(0));
    stream_progress(w->null_stream(1));
  }
  ASSERT_TRUE(s.is_complete());
  ASSERT_TRUE(r.is_complete());
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(dst[static_cast<std::size_t>(2 * i)], 2 * i);
    ASSERT_EQ(dst[static_cast<std::size_t>(2 * i) + 1], -1);
  }
}
