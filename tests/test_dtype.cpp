// Datatype engine tests: layout algebra for every constructor, pack/unpack
// round-trip properties (parameterized sweeps), chunked-segment equivalence,
// the async pack engine, and the reduction operator table.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "mpx/dtype/datatype.hpp"
#include "mpx/dtype/pack_engine.hpp"
#include "mpx/dtype/reduce_op.hpp"
#include "mpx/dtype/segment.hpp"

using namespace mpx::dtype;
using mpx::base::as_bytes;
using mpx::base::as_writable_bytes;

TEST(Datatype, PrimitiveSizes) {
  EXPECT_EQ(Datatype::byte().size(), 1u);
  EXPECT_EQ(Datatype::int32().size(), 4u);
  EXPECT_EQ(Datatype::int64().size(), 8u);
  EXPECT_EQ(Datatype::float32().size(), 4u);
  EXPECT_EQ(Datatype::float64().size(), 8u);
  EXPECT_TRUE(Datatype::int32().is_contiguous());
  EXPECT_EQ(Datatype::int32().extent(), 4);
}

TEST(Datatype, ContiguousFusesAndCoalesces) {
  auto c = Datatype::contiguous(10, Datatype::int32());
  EXPECT_EQ(c.size(), 40u);
  EXPECT_EQ(c.extent(), 40);
  EXPECT_TRUE(c.is_contiguous());
  EXPECT_EQ(c.iov().size(), 1u);  // adjacent pieces merged
}

TEST(Datatype, VectorLayout) {
  // 3 blocks of 2 int32, stride 4 elements: |xx..|xx..|xx|
  auto v = Datatype::vector(3, 2, 4, Datatype::int32());
  EXPECT_EQ(v.size(), 24u);
  EXPECT_FALSE(v.is_contiguous());
  ASSERT_EQ(v.iov().size(), 3u);
  EXPECT_EQ(v.iov()[0], (Iov{0, 8}));
  EXPECT_EQ(v.iov()[1], (Iov{16, 8}));
  EXPECT_EQ(v.iov()[2], (Iov{32, 8}));
  EXPECT_EQ(v.extent(), 40);  // spans to the end of the last block
}

TEST(Datatype, VectorWithUnitStrideIsContiguous) {
  auto v = Datatype::vector(5, 1, 1, Datatype::float64());
  EXPECT_TRUE(v.is_contiguous());
  EXPECT_EQ(v.size(), 40u);
}

TEST(Datatype, IndexedLayout) {
  const int blocklens[] = {2, 1};
  const int displs[] = {0, 4};
  auto ix = Datatype::indexed(blocklens, displs, Datatype::int32());
  EXPECT_EQ(ix.size(), 12u);
  ASSERT_EQ(ix.iov().size(), 2u);
  EXPECT_EQ(ix.iov()[0], (Iov{0, 8}));
  EXPECT_EQ(ix.iov()[1], (Iov{16, 4}));
  EXPECT_EQ(ix.extent(), 20);
}

TEST(Datatype, HindexedByteDisplacements) {
  const int blocklens[] = {1, 1};
  const std::ptrdiff_t displs[] = {1, 9};
  auto h = Datatype::hindexed(blocklens, displs, Datatype::byte());
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.iov()[0].offset, 1);
  EXPECT_EQ(h.iov()[1].offset, 9);
}

TEST(Datatype, StructHeterogeneous) {
  // struct { int32; double; } with natural alignment padding.
  const int blocklens[] = {1, 1};
  const std::ptrdiff_t displs[] = {0, 8};
  const Datatype types[] = {Datatype::int32(), Datatype::float64()};
  auto st = Datatype::structure(blocklens, displs, types);
  EXPECT_EQ(st.size(), 12u);
  EXPECT_EQ(st.extent(), 16);
  EXPECT_FALSE(st.homogeneous());
  EXPECT_FALSE(st.is_contiguous());
}

TEST(Datatype, ResizedOverridesExtent) {
  auto r = Datatype::resized(Datatype::int32(), 16);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.extent(), 16);
  EXPECT_FALSE(r.is_contiguous());
  // 4 elements, stride 16: pack grabs first int of each 16-byte slot.
  std::int32_t buf[16];
  std::iota(buf, buf + 16, 0);
  std::int32_t out[4];
  pack_all(buf, 4, r, as_writable_bytes(out, 4));
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 4);
  EXPECT_EQ(out[2], 8);
  EXPECT_EQ(out[3], 12);
}

TEST(Datatype, NestedVectorOfVector) {
  auto inner = Datatype::vector(2, 1, 2, Datatype::int32());  // x.x
  auto outer = Datatype::contiguous(3, inner);
  EXPECT_EQ(outer.size(), 24u);  // 3 * 2 ints
  EXPECT_EQ(outer.extent(), 3 * inner.extent());
}

TEST(Datatype, InvalidUsageThrows) {
  Datatype invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_THROW(invalid.size(), mpx::UsageError);
  EXPECT_THROW(Datatype::contiguous(3, invalid), mpx::UsageError);
  const int lens[] = {1};
  const int displs[] = {0, 1};
  EXPECT_THROW(
      Datatype::indexed(lens, displs, Datatype::int32()),
      mpx::UsageError);
}

// --- property-style round trips across constructors and chunk sizes ---

struct RoundTripParam {
  int kind;          // 0=contig 1=vector 2=indexed 3=struct-like
  std::size_t count;
  std::size_t chunk;  // segment step size in bytes (0 = one shot)
};

class SegmentRoundTrip : public ::testing::TestWithParam<RoundTripParam> {
 protected:
  static Datatype make(int kind) {
    switch (kind) {
      case 0: return Datatype::contiguous(4, Datatype::int32());
      case 1: return Datatype::vector(3, 2, 3, Datatype::int32());
      case 2: {
        static const int lens[] = {1, 3, 2};
        static const int displs[] = {7, 0, 4};
        return Datatype::indexed(lens, displs, Datatype::int32());
      }
      default: {
        static const int lens[] = {2, 1};
        static const std::ptrdiff_t displs[] = {4, 20};
        static const Datatype types[] = {Datatype::int32(),
                                         Datatype::int64()};
        return Datatype::structure(lens, displs, types);
      }
    }
  }
};

TEST_P(SegmentRoundTrip, PackUnpackRestoresTypedData) {
  const auto p = GetParam();
  const Datatype dt = make(p.kind);
  const std::size_t footprint =
      static_cast<std::size_t>(dt.extent()) * p.count + 64;

  std::mt19937 rng(static_cast<unsigned>(p.kind * 1000 + p.count));
  std::vector<std::byte> typed(footprint);
  for (auto& b : typed) b = static_cast<std::byte>(rng() & 0xFF);
  const std::vector<std::byte> original = typed;

  // Pack in chunks.
  std::vector<std::byte> packed(dt.size() * p.count, std::byte{0});
  Segment pack_seg(typed.data(), p.count, dt);
  EXPECT_EQ(pack_seg.packed_size(), packed.size());
  if (p.chunk == 0) {
    EXPECT_EQ(pack_seg.pack(packed), packed.size());
  } else {
    std::size_t off = 0;
    while (off < packed.size()) {
      const std::size_t n = std::min(p.chunk, packed.size() - off);
      EXPECT_EQ(pack_seg.pack({packed.data() + off, n}), n);
      off += n;
    }
  }
  EXPECT_TRUE(pack_seg.done());

  // Clobber the typed region, then unpack in different-size chunks.
  for (auto& b : typed) b = std::byte{0xEE};
  Segment unpack_seg(typed.data(), p.count, dt);
  std::size_t off = 0;
  const std::size_t uchunk = p.chunk == 0 ? packed.size() : p.chunk + 3;
  while (off < packed.size()) {
    const std::size_t n = std::min(uchunk, packed.size() - off);
    EXPECT_EQ(unpack_seg.unpack({packed.data() + off, n}), n);
    off += n;
  }
  EXPECT_TRUE(unpack_seg.done());

  // Property: every byte COVERED by the datatype is restored; bytes outside
  // the type map were clobbered and must remain clobbered.
  std::vector<bool> covered(footprint, false);
  for (std::size_t e = 0; e < p.count; ++e) {
    for (const Iov& piece : dt.iov()) {
      const std::size_t base = e * static_cast<std::size_t>(dt.extent()) +
                               static_cast<std::size_t>(piece.offset);
      for (std::size_t i = 0; i < piece.length; ++i) covered[base + i] = true;
    }
  }
  for (std::size_t i = 0; i < footprint; ++i) {
    if (covered[i]) {
      ASSERT_EQ(typed[i], original[i]) << "byte " << i;
    } else {
      ASSERT_EQ(typed[i], std::byte{0xEE}) << "byte " << i;
    }
  }
}

namespace {

std::string round_trip_name(
    const ::testing::TestParamInfo<RoundTripParam>& info) {
  static const char* const kinds[] = {"contig", "vector", "indexed",
                                      "struct"};
  return std::string(kinds[info.param.kind]) + "_c" +
         std::to_string(info.param.count) + "_k" +
         std::to_string(info.param.chunk);
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmentRoundTrip,
    ::testing::Values(
        RoundTripParam{0, 1, 0}, RoundTripParam{0, 7, 5},
        RoundTripParam{0, 64, 16}, RoundTripParam{1, 1, 0},
        RoundTripParam{1, 5, 1}, RoundTripParam{1, 33, 7},
        RoundTripParam{2, 1, 0}, RoundTripParam{2, 9, 4},
        RoundTripParam{2, 50, 13}, RoundTripParam{3, 1, 0},
        RoundTripParam{3, 8, 2}, RoundTripParam{3, 25, 11}),
    round_trip_name);

TEST(PackEngine, ChunkedProgressCompletesAndSignals) {
  std::vector<std::int32_t> src(100);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::byte> out(400);
  auto work = std::make_unique<PackWork>(PackDir::pack, src.data(), 100,
                                         Datatype::int32(), out, 64);
  PackEngine engine;
  int done_calls = 0;
  engine.submit(std::move(work),
                [](void* c) { ++*static_cast<int*>(c); }, &done_calls);
  EXPECT_FALSE(engine.idle());
  int made = 0;
  int rounds = 0;
  while (!engine.idle()) {
    engine.progress(&made);
    ASSERT_LT(++rounds, 100);
  }
  EXPECT_EQ(done_calls, 1);
  EXPECT_EQ(made, 1);
  EXPECT_EQ(rounds, 7);  // ceil(400/64)
  EXPECT_EQ(std::memcmp(out.data(), src.data(), 400), 0);
}

TEST(ReduceOps, AllOpsOnInt32) {
  const std::int32_t in[] = {3, 0, 6, 5};
  auto apply = [&](ReduceOp op, std::initializer_list<std::int32_t> init) {
    std::vector<std::int32_t> io(init);
    reduce_apply(op, in, io.data(), 4, Datatype::int32());
    return io;
  };
  EXPECT_EQ(apply(ReduceOp::sum, {1, 2, 3, 4}),
            (std::vector<std::int32_t>{4, 2, 9, 9}));
  EXPECT_EQ(apply(ReduceOp::prod, {2, 2, 2, 2}),
            (std::vector<std::int32_t>{6, 0, 12, 10}));
  EXPECT_EQ(apply(ReduceOp::min, {4, -1, 9, 5}),
            (std::vector<std::int32_t>{3, -1, 6, 5}));
  EXPECT_EQ(apply(ReduceOp::max, {4, -1, 9, 5}),
            (std::vector<std::int32_t>{4, 0, 9, 5}));
  EXPECT_EQ(apply(ReduceOp::land, {1, 1, 0, 2}),
            (std::vector<std::int32_t>{1, 0, 0, 1}));
  EXPECT_EQ(apply(ReduceOp::lor, {0, 0, 0, 2}),
            (std::vector<std::int32_t>{1, 0, 1, 1}));
  EXPECT_EQ(apply(ReduceOp::band, {2, 7, 7, 4}),
            (std::vector<std::int32_t>{2, 0, 6, 4}));
  EXPECT_EQ(apply(ReduceOp::bor, {4, 1, 1, 2}),
            (std::vector<std::int32_t>{7, 1, 7, 7}));
}

TEST(ReduceOps, FloatArithAndGuards) {
  const double in[] = {1.5, 2.5};
  double io[] = {1.0, 10.0};
  reduce_apply(ReduceOp::sum, in, io, 2, Datatype::float64());
  EXPECT_DOUBLE_EQ(io[0], 2.5);
  EXPECT_DOUBLE_EQ(io[1], 12.5);
  EXPECT_THROW(reduce_apply(ReduceOp::band, in, io, 2, Datatype::float64()),
               mpx::UsageError);
}

TEST(ReduceOps, AllPrimitiveWidths) {
  auto roundtrip = [](auto v0, auto v1, Primitive prim) {
    using T = decltype(v0);
    T in = v0, io = v1;
    reduce_apply(ReduceOp::sum, &in, &io, 1, Datatype::of(prim));
    return io;
  };
  EXPECT_EQ(roundtrip(std::int8_t{3}, std::int8_t{4}, Primitive::int8), 7);
  EXPECT_EQ(roundtrip(std::int16_t{300}, std::int16_t{400}, Primitive::int16),
            700);
  EXPECT_EQ(roundtrip(std::uint32_t{3}, std::uint32_t{4}, Primitive::uint32),
            7u);
  EXPECT_EQ(
      roundtrip(std::uint64_t{1} << 40, std::uint64_t{1}, Primitive::uint64),
      (std::uint64_t{1} << 40) + 1);
  EXPECT_FLOAT_EQ(roundtrip(1.5f, 2.0f, Primitive::float32), 3.5f);
}

TEST(Datatype, Subarray2D) {
  // 4x6 int32 array; 2x3 window at (1,2).
  const int sizes[] = {4, 6};
  const int subsizes[] = {2, 3};
  const int starts[] = {1, 2};
  auto sub = Datatype::subarray(sizes, subsizes, starts, Datatype::int32());
  EXPECT_EQ(sub.size(), 2u * 3u * 4u);
  EXPECT_EQ(sub.extent(), 4 * 6 * 4);
  ASSERT_EQ(sub.iov().size(), 2u);  // one run per window row
  EXPECT_EQ(sub.iov()[0], (Iov{(1 * 6 + 2) * 4, 12}));
  EXPECT_EQ(sub.iov()[1], (Iov{(2 * 6 + 2) * 4, 12}));

  // Pack the window out of a filled array.
  std::int32_t arr[4][6];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 6; ++j) arr[i][j] = i * 10 + j;
  }
  std::int32_t out[6];
  pack_all(arr, 1, sub, as_writable_bytes(out, 6));
  const std::int32_t expect[] = {12, 13, 14, 22, 23, 24};
  for (int k = 0; k < 6; ++k) EXPECT_EQ(out[k], expect[k]);
}

TEST(Datatype, Subarray3DRoundTrip) {
  const int sizes[] = {3, 4, 5};
  const int subsizes[] = {2, 2, 3};
  const int starts[] = {1, 1, 1};
  auto sub = Datatype::subarray(sizes, subsizes, starts, Datatype::int32());
  EXPECT_EQ(sub.size(), 2u * 2u * 3u * 4u);
  EXPECT_EQ(sub.iov().size(), 4u);  // 2*2 inner runs

  std::vector<std::int32_t> src(3 * 4 * 5);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::int32_t> packed(12);
  pack_all(src.data(), 1, sub, as_writable_bytes(packed.data(), 12));

  std::vector<std::int32_t> dst(3 * 4 * 5, -1);
  unpack_all(as_bytes(packed.data(), 12), dst.data(), 1, sub);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 5; ++k) {
        const std::size_t lin = static_cast<std::size_t>(i * 20 + j * 5 + k);
        const bool inside = i >= 1 && i < 3 && j >= 1 && j < 3 && k >= 1 &&
                            k < 4;
        ASSERT_EQ(dst[lin], inside ? src[lin] : -1) << lin;
      }
    }
  }
}

TEST(Datatype, SubarrayFullWindowIsContiguous) {
  const int sizes[] = {2, 8};
  const int subsizes[] = {2, 8};
  const int starts[] = {0, 0};
  auto sub = Datatype::subarray(sizes, subsizes, starts, Datatype::int32());
  EXPECT_TRUE(sub.is_contiguous());
  EXPECT_EQ(sub.size(), 64u);
}

TEST(Datatype, SubarrayEmptyAndInvalid) {
  const int sizes[] = {4, 4};
  const int zero_sub[] = {0, 4};
  const int starts[] = {0, 0};
  auto empty =
      Datatype::subarray(sizes, zero_sub, starts, Datatype::int32());
  EXPECT_EQ(empty.size(), 0u);

  const int bad_sub[] = {3, 3};
  const int bad_starts[] = {2, 2};  // 2 + 3 > 4
  EXPECT_THROW(
      Datatype::subarray(sizes, bad_sub, bad_starts, Datatype::int32()),
      mpx::UsageError);
}
