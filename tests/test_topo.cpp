// Cartesian topology + neighborhood collective tests, including the
// degenerate grids (size-2 periodic rings, self-neighbors) that stress the
// per-edge tagging.
#include <gtest/gtest.h>

#include <vector>

#include "mpx/coll/topo.hpp"
#include "test_util.hpp"

using namespace mpx;
using coll::Cart;

TEST(Topo, CoordsRankRoundTrip) {
  auto w = World::create(WorldConfig{.nranks = 6});
  Comm c = w->comm_world(0);
  const int dims[] = {2, 3};
  const int periodic[] = {0, 0};
  Cart cart = Cart::create(c, dims, periodic);
  for (int r = 0; r < 6; ++r) {
    const auto xy = cart.coords(r);
    EXPECT_EQ(cart.rank_of(xy), r);
  }
  // Row-major, last dimension fastest.
  EXPECT_EQ(cart.coords(0), (std::vector<int>{0, 0}));
  EXPECT_EQ(cart.coords(1), (std::vector<int>{0, 1}));
  EXPECT_EQ(cart.coords(3), (std::vector<int>{1, 0}));
  const int oob[] = {2, 0};
  EXPECT_EQ(cart.rank_of(oob), -1);  // non-periodic: off grid
}

TEST(Topo, PeriodicWrapAndShift) {
  auto w = World::create(WorldConfig{.nranks = 4});
  Comm c = w->comm_world(2);
  const int dims[] = {4};
  const int periodic[] = {1};
  Cart cart = Cart::create(c, dims, periodic);
  const int wrap[] = {-1};
  EXPECT_EQ(cart.rank_of(wrap), 3);

  const Cart::Shift s = cart.shift(0, 1);  // as seen by rank 2
  EXPECT_EQ(s.source, 1);
  EXPECT_EQ(s.dest, 3);
  const Cart::Shift s2 = cart.shift(0, 2);
  EXPECT_EQ(s2.source, 0);
  EXPECT_EQ(s2.dest, 0);  // wraps
}

TEST(Topo, NonPeriodicBoundaryIsProcNull) {
  auto w = World::create(WorldConfig{.nranks = 3});
  const int dims[] = {3};
  const int periodic[] = {0};
  Cart cart0 = Cart::create(w->comm_world(0), dims, periodic);
  const Cart::Shift s = cart0.shift(0, 1);
  EXPECT_EQ(s.source, -1);  // nothing to my left
  EXPECT_EQ(s.dest, 1);
  EXPECT_EQ(cart0.neighbors(), (std::vector<int>{-1, 1}));
}

TEST(Topo, DimsCreateBalanced) {
  EXPECT_EQ(coll::dims_create(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(coll::dims_create(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(coll::dims_create(7, 2), (std::vector<int>{7, 1}));
  EXPECT_EQ(coll::dims_create(1, 3), (std::vector<int>{1, 1, 1}));
}

TEST(Topo, NeighborAllgather2D) {
  // 2x3 non-periodic grid: every rank publishes its rank id; each slot of
  // recvbuf holds the respective neighbor's id (or stays untouched at the
  // boundary).
  auto w = World::create(WorldConfig{.nranks = 6});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int dims[] = {2, 3};
    const int periodic[] = {0, 0};
    Cart cart = Cart::create(c, dims, periodic);
    std::int32_t mine = rank;
    std::vector<std::int32_t> nbr_vals(4, -99);
    coll::neighbor_allgather(&mine, 1, dtype::Datatype::int32(),
                             nbr_vals.data(), cart);
    const auto nbrs = cart.neighbors();
    for (int j = 0; j < 4; ++j) {
      if (nbrs[static_cast<std::size_t>(j)] < 0) {
        EXPECT_EQ(nbr_vals[static_cast<std::size_t>(j)], -99);  // untouched
      } else {
        EXPECT_EQ(nbr_vals[static_cast<std::size_t>(j)],
                  nbrs[static_cast<std::size_t>(j)]);
      }
    }
    w->finalize_rank(rank);
  });
}

TEST(Topo, NeighborAlltoallDirectional) {
  // 1-D periodic ring of 4: send distinct payloads left and right; verify
  // each arrives on the correct edge.
  auto w = World::create(WorldConfig{.nranks = 4});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int dims[] = {4};
    const int periodic[] = {1};
    Cart cart = Cart::create(c, dims, periodic);
    // Slot 0 = to my negative neighbor; slot 1 = to my positive neighbor.
    std::int32_t send[2] = {rank * 10 + 1, rank * 10 + 2};
    std::int32_t recv[2] = {-1, -1};
    coll::neighbor_alltoall(send, 1, dtype::Datatype::int32(), recv, cart);
    const int left = (rank + 3) % 4;
    const int right = (rank + 1) % 4;
    // From my left neighbor I get what it sent to ITS positive side.
    EXPECT_EQ(recv[0], left * 10 + 2);
    // From my right neighbor, what it sent to its negative side.
    EXPECT_EQ(recv[1], right * 10 + 1);
    w->finalize_rank(rank);
  });
}

TEST(Topo, DegenerateSizeTwoPeriodicRing) {
  // Size-2 periodic ring: each rank's left AND right neighbor is the same
  // peer. Directional payloads must still land on the right edges — the
  // per-edge tag test.
  auto w = World::create(WorldConfig{.nranks = 2});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int dims[] = {2};
    const int periodic[] = {1};
    Cart cart = Cart::create(c, dims, periodic);
    EXPECT_EQ(cart.neighbors(), (std::vector<int>{1 - rank, 1 - rank}));
    std::int32_t send[2] = {rank * 10 + 1, rank * 10 + 2};
    std::int32_t recv[2] = {-1, -1};
    coll::neighbor_alltoall(send, 1, dtype::Datatype::int32(), recv, cart);
    const int peer = 1 - rank;
    EXPECT_EQ(recv[0], peer * 10 + 2);  // peer's positive-direction payload
    EXPECT_EQ(recv[1], peer * 10 + 1);  // peer's negative-direction payload
    w->finalize_rank(rank);
  });
}

TEST(Topo, InvalidUsage) {
  auto w = World::create(WorldConfig{.nranks = 4});
  Comm c = w->comm_world(0);
  const int bad_dims[] = {3};  // 3 != 4
  const int periodic[] = {0};
  EXPECT_THROW(Cart::create(c, bad_dims, periodic), UsageError);
  const int dims[] = {4};
  Cart cart = Cart::create(c, dims, periodic);
  EXPECT_THROW(cart.shift(1, 1), UsageError);  // dim out of range
}
