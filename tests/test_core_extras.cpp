// Tests for the extended core surface: async pack/unpack requests (the
// datatype-engine progress stage), synchronous sends, sendrecv, and
// persistent operations.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpx/coll/coll.hpp"
#include "test_util.hpp"

using namespace mpx;

TEST(Pack, AsyncPackProgressesInChunks) {
  auto w = World::create(WorldConfig{.nranks = 1});
  Stream s = w->null_stream(0);
  const int n = 1000;
  std::vector<std::int32_t> src(2 * n);
  std::iota(src.begin(), src.end(), 0);
  auto strided = dtype::Datatype::vector(n, 1, 2, dtype::Datatype::int32());

  std::vector<std::byte> packed(static_cast<std::size_t>(n) * 4);
  // Chunk of 400 bytes => 10 polls to finish.
  Request r = ipack(src.data(), 1, strided, packed, s, 400);
  EXPECT_FALSE(r.is_complete());
  int polls = 0;
  while (!r.is_complete()) {
    stream_progress(s);
    ASSERT_LT(++polls, 100);
  }
  EXPECT_GE(polls, 9);
  EXPECT_EQ(r.status().count_bytes, static_cast<std::uint64_t>(n) * 4);
  const auto* out = reinterpret_cast<const std::int32_t*>(packed.data());
  for (int i = 0; i < n; ++i) ASSERT_EQ(out[i], 2 * i);
}

TEST(Pack, AsyncUnpackRoundTrip) {
  auto w = World::create(WorldConfig{.nranks = 1});
  Stream s = w->null_stream(0);
  const int n = 256;
  auto strided = dtype::Datatype::vector(n, 1, 3, dtype::Datatype::int32());

  std::vector<std::int32_t> typed(3 * n, -1);
  std::vector<std::byte> packed(static_cast<std::size_t>(n) * 4);
  auto* vals = reinterpret_cast<std::int32_t*>(packed.data());
  for (int i = 0; i < n; ++i) vals[i] = i * 7;

  Request r = iunpack(packed, typed.data(), 1, strided, s, 128);
  r.wait();
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(typed[static_cast<std::size_t>(3 * i)], i * 7);
    ASSERT_EQ(typed[static_cast<std::size_t>(3 * i) + 1], -1);
  }
}

TEST(Pack, DatatypeStageRunsBeforeOthers) {
  // The dtype engine is stage 1: when it has work, a progress call services
  // it and early-exits (Listing 1.1 skip semantics) — observable as the
  // async hook NOT being polled while a pack is pending. Strict priority
  // holds only with fair rotation off; the default rotating scan trades it
  // for starvation freedom (see test_progress_fairness.cpp).
  WorldConfig cfg{.nranks = 1};
  cfg.progress_fair = false;
  auto w = World::create(cfg);
  Stream s = w->null_stream(0);
  std::vector<std::int32_t> src(1024, 3);
  std::vector<std::byte> packed(4096);
  int hook_polls = 0;
  bool stop_hook = false;
  async_start(
      [&]() -> AsyncResult {
        ++hook_polls;
        return stop_hook ? AsyncResult::done : AsyncResult::pending;
      },
      s);
  stream_progress(s);  // hook registered + polled once (no dtype work yet)
  EXPECT_EQ(hook_polls, 1);

  Request r = ipack(src.data(), 1024, dtype::Datatype::int32(), packed, s,
                    1024);
  stream_progress(s);  // dtype stage makes progress -> early exit
  stream_progress(s);
  EXPECT_EQ(hook_polls, 1);  // hook starved while the pack engine is busy
  while (!r.is_complete()) stream_progress(s);
  stream_progress(s);
  EXPECT_GE(hook_polls, 2);  // resumes after the pack drains
  stop_hook = true;
  w->finalize_rank(0);
}

TEST(Ssend, CompletionImpliesMatch) {
  auto w = World::create(WorldConfig{.nranks = 2});
  std::int32_t v = 5;
  // Small message that WOULD be buffered eager under isend.
  Request r = w->comm_world(0).issend(&v, 1, dtype::Datatype::int32(), 1, 0);
  for (int i = 0; i < 10; ++i) stream_progress(w->null_stream(0));
  EXPECT_FALSE(r.is_complete());  // no receiver yet

  std::int32_t out = 0;
  w->comm_world(1).recv(&out, 1, dtype::Datatype::int32(), 0, 0);
  while (!r.is_complete()) stream_progress(w->null_stream(0));
  EXPECT_EQ(out, 5);
}

TEST(Sendrecv, ExchangeWithoutDeadlock) {
  auto w = World::create(WorldConfig{.nranks = 2});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int peer = 1 - rank;
    // Large messages both directions: blocking send+send would deadlock;
    // sendrecv must not.
    std::vector<std::int64_t> out(100000, rank + 1);
    std::vector<std::int64_t> in(100000, 0);
    Status st = c.sendrecv(out.data(), out.size(), dtype::Datatype::int64(),
                           peer, 0, in.data(), in.size(),
                           dtype::Datatype::int64(), peer, 0);
    EXPECT_EQ(st.source, peer);
    for (const auto x : in) ASSERT_EQ(x, peer + 1);
    w->finalize_rank(rank);
  });
}

TEST(Persistent, SendRecvCycles) {
  auto w = World::create(WorldConfig{.nranks = 2});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::int32_t buf = -1;
    Request req = rank == 0
                      ? c.send_init(&buf, 1, dtype::Datatype::int32(), 1, 3)
                      : c.recv_init(&buf, 1, dtype::Datatype::int32(), 0, 3);
    // Inactive persistent request: wait returns immediately.
    EXPECT_TRUE(req.is_complete());

    for (int cycle = 0; cycle < 10; ++cycle) {
      if (rank == 0) buf = cycle * 11;
      start(req);
      Status st = req.wait();
      if (rank == 1) {
        EXPECT_EQ(buf, cycle * 11);
        EXPECT_EQ(st.source, 0);
        EXPECT_EQ(st.tag, 3);
      }
      // Lock-step the pair so cycle N+1's send cannot overtake the check.
      coll::barrier(c);
    }
    w->finalize_rank(rank);
  });
}

TEST(Persistent, StartAllHaloPattern) {
  // The classic persistent halo pattern: recv_init/send_init once,
  // start_all + wait_all every iteration.
  auto w = World::create(WorldConfig{.nranks = 4});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int left = (rank + 3) % 4;
    const int right = (rank + 1) % 4;
    std::int32_t send_val = 0, from_left = 0, from_right = 0;
    std::vector<Request> reqs;
    reqs.push_back(c.recv_init(&from_left, 1, dtype::Datatype::int32(), left,
                               0));
    reqs.push_back(
        c.recv_init(&from_right, 1, dtype::Datatype::int32(), right, 1));
    reqs.push_back(
        c.send_init(&send_val, 1, dtype::Datatype::int32(), right, 0));
    reqs.push_back(
        c.send_init(&send_val, 1, dtype::Datatype::int32(), left, 1));
    for (int iter = 0; iter < 5; ++iter) {
      send_val = rank * 100 + iter;
      start_all(reqs);
      wait_all(reqs);
      EXPECT_EQ(from_left, left * 100 + iter);
      EXPECT_EQ(from_right, right * 100 + iter);
      coll::barrier(c);
    }
    w->finalize_rank(rank);
  });
}

TEST(CollExtra, ReduceScatterBlock) {
  auto w = World::create(WorldConfig{.nranks = 4});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int n = c.size();
    const std::size_t bc = 8;  // block count per rank
    std::vector<std::int64_t> in(bc * static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<std::int64_t>(i) + rank;
    }
    std::vector<std::int64_t> out(bc, -1);
    coll::reduce_scatter_block(in.data(), out.data(), bc,
                               dtype::Datatype::int64(),
                               dtype::ReduceOp::sum, c);
    for (std::size_t i = 0; i < bc; ++i) {
      const std::size_t gi = static_cast<std::size_t>(rank) * bc + i;
      const std::int64_t expect =
          static_cast<std::int64_t>(gi) * n + n * (n - 1) / 2;
      ASSERT_EQ(out[i], expect);
    }
    w->finalize_rank(rank);
  });
}

TEST(CollExtra, InclusiveScan) {
  auto w = World::create(WorldConfig{.nranks = 5});
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::int32_t v = rank + 1;
    std::int32_t out = 0;
    coll::scan(&v, &out, 1, dtype::Datatype::int32(), dtype::ReduceOp::sum,
               c);
    EXPECT_EQ(out, (rank + 1) * (rank + 2) / 2);
    w->finalize_rank(rank);
  });
}

TEST(StageCounters, CollationOrderObservable) {
  // The per-stage counters expose WHERE progress was made, verifying the
  // Listing 1.1 collation order end to end.
  auto w = World::create(WorldConfig{.nranks = 2});
  Stream s1 = w->null_stream(1);

  // Eager message: progress lands in the shm stage.
  std::int32_t x = 1, y = 0;
  w->comm_world(0).isend(&x, 1, dtype::Datatype::int32(), 1, 0);
  w->comm_world(1).recv(&y, 1, dtype::Datatype::int32(), 0, 0);
  auto c = w->vci_stage_counters(1, 0);
  EXPECT_GT(c.shm, 0u);
  EXPECT_EQ(c.dtype, 0u);
  EXPECT_EQ(c.net, 0u);

  // A completing async hook lands in the async stage.
  async_start([]() { return AsyncResult::done; }, s1);
  stream_progress(s1);
  c = w->vci_stage_counters(1, 0);
  EXPECT_EQ(c.async, 1u);

  // A collective drives the coll stage.
  mpx_test::run_ranks(*w, [&](int rank) {
    coll::barrier(w->comm_world(rank));
    w->finalize_rank(rank);
  });
  c = w->vci_stage_counters(1, 0);
  EXPECT_GT(c.coll, 0u);

  // An async pack drives the dtype stage.
  std::vector<std::int32_t> src(64, 2);
  std::vector<std::byte> packed(256);
  Request r = ipack(src.data(), 64, dtype::Datatype::int32(), packed, s1, 64);
  while (!r.is_complete()) stream_progress(s1);
  c = w->vci_stage_counters(1, 0);
  EXPECT_GT(c.dtype, 0u);
}

TEST(StageCounters, NetStageOnNicPath) {
  auto w = World::create(mpx_test::net_only_config(2));
  std::int32_t x = 1, y = 0;
  w->comm_world(0).isend(&x, 1, dtype::Datatype::int32(), 1, 0);
  w->comm_world(1).recv(&y, 1, dtype::Datatype::int32(), 0, 0);
  const auto c = w->vci_stage_counters(1, 0);
  EXPECT_GT(c.net, 0u);
  EXPECT_EQ(c.shm, 0u);
}
