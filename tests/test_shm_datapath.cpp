// Shm eager datapath tests: the zero-copy inline-cell ring end to end.
//
// Covers the PR's acceptance assertions directly:
//  - zero per-message heap allocations on the in-slot eager path (pool and
//    transport stats counters, not heap hooks);
//  - randomized property test interleaving full-ring parking, wildcard
//    receives, and LMT cutover, asserting FIFO per (src, dst, vci) channel
//    (single-threaded deterministic interleave + a two-thread variant that
//    exercises the wait backoff ladder under tsan).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "mpx/base/pool.hpp"
#include "mpx/shm/shm_transport.hpp"
#include "test_util.hpp"

using namespace mpx;

namespace {

std::vector<std::uint8_t> pattern(int seq, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t j = 0; j < n; ++j) {
    v[j] = static_cast<std::uint8_t>(seq * 131 + static_cast<int>(j) * 7 + 1);
  }
  return v;
}

}  // namespace

// In-slot eager traffic (payload <= slot_bytes) with a matching posted
// receive must not touch the payload pool at all: the payload goes user
// buffer -> ring slot -> user buffer. ShmStats::inline_payload_hits counts
// every send as in-slot and the PayloadPool acquire counters stay flat.
TEST(ShmDatapath, InSlotEagerMakesZeroPayloadAllocations) {
  auto w = World::create(WorldConfig{.nranks = 2});
  Comm c0 = w->comm_world(0);
  Comm c1 = w->comm_world(1);
  constexpr int kN = 64;
  constexpr std::size_t kBytes = 128;  // <= default slot_bytes (256)

  const shm::ShmStats shm0 = mpx_test::transport_as<shm::ShmTransport>(*w, "shm").stats();
  const base::PoolStats pay0 = base::PayloadPool::instance().stats();

  std::vector<std::vector<std::uint8_t>> recv_bufs(
      kN, std::vector<std::uint8_t>(kBytes, 0));
  std::vector<Request> rreqs;
  rreqs.reserve(kN);
  for (int i = 0; i < kN; ++i) {  // pre-post: every arrival finds a match
    rreqs.push_back(c1.irecv(recv_bufs[static_cast<std::size_t>(i)].data(),
                             kBytes, dtype::Datatype::byte(), 0, i));
  }
  for (int i = 0; i < kN; ++i) {
    auto v = pattern(i, kBytes);
    Request s = c0.isend(v.data(), kBytes, dtype::Datatype::byte(), 1, i);
    EXPECT_TRUE(s.is_complete());  // eager: locally complete at initiation
    // Drain each message promptly so the default 64-cell ring never fills
    // (a full ring legitimately parks + pool-copies).
    rreqs[static_cast<std::size_t>(i)].wait();
  }

  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(recv_bufs[static_cast<std::size_t>(i)],
              pattern(i, kBytes));
  }

  const shm::ShmStats shm1 = mpx_test::transport_as<shm::ShmTransport>(*w, "shm").stats();
  const base::PoolStats pay1 = base::PayloadPool::instance().stats();
  EXPECT_EQ(shm1.sends - shm0.sends, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(shm1.inline_payload_hits - shm0.inline_payload_hits,
            static_cast<std::uint64_t>(kN));
  EXPECT_EQ(shm1.ring_full_events - shm0.ring_full_events, 0u);
  // The heart of the claim: no payload-pool acquires — neither recycled
  // blocks nor fresh allocations — anywhere on the in-slot path.
  EXPECT_EQ(pay1.hits - pay0.hits, 0u);
  EXPECT_EQ(pay1.misses - pay0.misses, 0u);
}

TEST(ShmDatapath, BatchedDeliveryCountersSurfaceThroughWorldStats) {
  auto w = World::create(WorldConfig{.nranks = 2});
  Comm c0 = w->comm_world(0);
  Comm c1 = w->comm_world(1);
  constexpr int kN = 8;
  const shm::ShmStats before = mpx_test::transport_as<shm::ShmTransport>(*w, "shm").stats();

  std::vector<std::uint8_t> v(64, 0xab);
  for (int i = 0; i < kN; ++i) {
    c0.isend(v.data(), v.size(), dtype::Datatype::byte(), 1, i);
  }
  // One receiver progress pass drains all kN cells (deliver_batch=16)
  // under a single acquire/publish pair -> one batched delivery.
  std::vector<std::uint8_t> r(64, 0);
  for (int i = 0; i < kN; ++i) {
    c1.recv(r.data(), r.size(), dtype::Datatype::byte(), 0, i);
  }
  const shm::ShmStats after = mpx_test::transport_as<shm::ShmTransport>(*w, "shm").stats();
  EXPECT_EQ(after.delivered - before.delivered, static_cast<std::uint64_t>(kN));
  EXPECT_GE(after.batched_deliveries - before.batched_deliveries, 1u);
}

// Randomized property test, single-threaded deterministic interleave.
//
// One directed channel (0 -> 1, vci 0) under a tiny 4-cell ring so sends
// park constantly; sizes cross all three modes (in-slot, pooled overflow,
// LMT rendezvous above shm_eager_max); receives are a random mix of exact
// and wildcard (any_source / any_tag). Non-overtaking per channel says
// receive #i — posted in order — must match message #i: its status tag,
// byte count, and payload pattern must all be message i's.
TEST(ShmDatapath, RandomizedFifoAcrossParkingWildcardsAndLmtCutover) {
  WorldConfig cfg{.nranks = 2};
  cfg.shm_cells = 4;
  cfg.shm_eager_max = 1024;  // LMT cutover within reach of the size mix
  auto w = World::create(cfg);
  Comm c0 = w->comm_world(0);
  Comm c1 = w->comm_world(1);

  constexpr int kMsgs = 200;
  const std::size_t sizes[] = {0, 8, 200, 256, 257, 600, 1024, 1025, 5000};
  std::mt19937 rng = mpx_test::rank_rng(/*salt=*/0x5470, 0);

  std::vector<std::vector<std::uint8_t>> send_bufs(kMsgs);
  std::vector<std::vector<std::uint8_t>> recv_bufs(kMsgs);
  std::vector<Request> sreqs;
  std::vector<Request> rreqs;
  sreqs.reserve(kMsgs);
  rreqs.reserve(kMsgs);
  int sent = 0;
  int posted = 0;

  while (sent < kMsgs || posted < kMsgs) {
    const int action = static_cast<int>(rng() % 4);
    if (action == 0 && sent < kMsgs) {
      const std::size_t n = sizes[rng() % std::size(sizes)];
      send_bufs[static_cast<std::size_t>(sent)] = pattern(sent, n);
      sreqs.push_back(c0.isend(send_bufs[static_cast<std::size_t>(sent)].data(),
                               n, dtype::Datatype::byte(), 1, sent));
      ++sent;
    } else if (action == 1 && posted < kMsgs) {
      // Receives may be posted ahead of their message or after it parked
      // unexpectedly; wildcards must still match in channel-FIFO order.
      recv_bufs[static_cast<std::size_t>(posted)].assign(8192, 0);
      const int src = (rng() % 2 == 0) ? 0 : any_source;
      const int tag = (rng() % 2 == 0) ? posted : any_tag;
      rreqs.push_back(
          c1.irecv(recv_bufs[static_cast<std::size_t>(posted)].data(), 8192,
                   dtype::Datatype::byte(), src, tag));
      ++posted;
    } else if (action == 2) {
      stream_progress(w->null_stream(0));
    } else {
      stream_progress(w->null_stream(1));
    }
  }

  for (;;) {
    bool all = true;
    for (Request& r : rreqs) all = all && r.is_complete();
    for (Request& r : sreqs) all = all && r.is_complete();
    if (all) break;
    stream_progress(w->null_stream(0));
    stream_progress(w->null_stream(1));
  }

  for (int i = 0; i < kMsgs; ++i) {
    const Status st = rreqs[static_cast<std::size_t>(i)].status();
    EXPECT_EQ(st.source, 0);
    EXPECT_EQ(st.tag, i) << "receive " << i << " matched out of FIFO order";
    const std::size_t n = send_bufs[static_cast<std::size_t>(i)].size();
    ASSERT_EQ(st.count_bytes, n);
    EXPECT_TRUE(n == 0 ||
                std::memcmp(recv_bufs[static_cast<std::size_t>(i)].data(),
                            send_bufs[static_cast<std::size_t>(i)].data(),
                            n) == 0)
        << "payload of message " << i << " corrupted";
  }
  EXPECT_GT(mpx_test::transport_as<shm::ShmTransport>(*w, "shm").stats().ring_full_events, 0u)
      << "size the ring down: the scenario must actually exercise parking";
}

// Two-thread variant: sender and receiver ranks run concurrently, so the
// blocking waits go through the spin -> yield -> sleep backoff ladder while
// parked sends are flushed by the sender's own progress. tsan coverage for
// the ring protocol + backoff interplay.
TEST(ShmDatapath, ThreadedSenderReceiverFifoUnderParking) {
  WorldConfig cfg{.nranks = 2};
  cfg.shm_cells = 4;
  cfg.shm_eager_max = 1024;
  cfg.wait_spin = 8;  // reach the yield/sleep phases quickly
  cfg.wait_yield = 4;
  auto w = World::create(cfg);

  constexpr int kMsgs = 120;
  const std::size_t sizes[] = {8, 256, 600, 2048};

  mpx_test::run_ranks(*w, [&](int rank) {
    std::mt19937 rng = mpx_test::rank_rng(/*salt=*/0x5471, 0);  // shared seq
    if (rank == 0) {
      Comm c = w->comm_world(0);
      std::vector<Request> reqs;
      std::vector<std::vector<std::uint8_t>> bufs(kMsgs);
      for (int i = 0; i < kMsgs; ++i) {
        const std::size_t n = sizes[rng() % std::size(sizes)];
        bufs[static_cast<std::size_t>(i)] = pattern(i, n);
        reqs.push_back(c.isend(bufs[static_cast<std::size_t>(i)].data(), n,
                               dtype::Datatype::byte(), 1, i));
      }
      wait_all(reqs);
    } else {
      Comm c = w->comm_world(1);
      std::vector<std::uint8_t> buf(8192);
      for (int i = 0; i < kMsgs; ++i) {
        const std::size_t n = sizes[rng() % std::size(sizes)];
        std::fill(buf.begin(), buf.end(), 0);
        const Status st = c.recv(buf.data(), buf.size(),
                                 dtype::Datatype::byte(), any_source, any_tag);
        EXPECT_EQ(st.tag, i);  // channel FIFO, even via full wildcards
        ASSERT_EQ(st.count_bytes, n);
        EXPECT_TRUE(std::memcmp(buf.data(), pattern(i, n).data(), n) == 0);
      }
    }
  });
}
