// C-binding tests: the paper's API surface exercised through mpix.h.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mpx/capi/mpix.h"

namespace {

struct WorldGuard {
  MPIX_World w = nullptr;
  explicit WorldGuard(int nranks, int rpn = 0) {
    EXPECT_EQ(MPIX_World_create(nranks, rpn, &w), MPIX_SUCCESS);
  }
  ~WorldGuard() { MPIX_World_free(&w); }
};

}  // namespace

TEST(Capi, WorldCommLifecycle) {
  WorldGuard g(3);
  MPIX_Comm c = nullptr;
  ASSERT_EQ(MPIX_Comm_world(g.w, 1, &c), MPIX_SUCCESS);
  int rank = -1, size = -1;
  EXPECT_EQ(MPIX_Comm_rank(c, &rank), MPIX_SUCCESS);
  EXPECT_EQ(MPIX_Comm_size(c, &size), MPIX_SUCCESS);
  EXPECT_EQ(rank, 1);
  EXPECT_EQ(size, 3);
  EXPECT_EQ(MPIX_Comm_free(&c), MPIX_SUCCESS);
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(MPIX_Comm_world(g.w, 7, &c), MPIX_ERR_ARG);
  EXPECT_GE(MPIX_Wtime(g.w), 0.0);
}

TEST(Capi, SendRecvAndWait) {
  WorldGuard g(2);
  MPIX_Comm c0 = nullptr, c1 = nullptr;
  MPIX_Comm_world(g.w, 0, &c0);
  MPIX_Comm_world(g.w, 1, &c1);

  std::int32_t v = 99;
  MPIX_Request sreq = MPIX_REQUEST_NULL;
  ASSERT_EQ(MPIX_Isend(&v, 1, MPIX_INT32, 1, 7, c0, &sreq), MPIX_SUCCESS);
  EXPECT_EQ(MPIX_Request_is_complete(sreq), 1);  // buffered eager

  std::int32_t out = 0;
  MPIX_Status st;
  ASSERT_EQ(MPIX_Recv(&out, 1, MPIX_INT32, 0, 7, c1, &st), MPIX_SUCCESS);
  EXPECT_EQ(out, 99);
  EXPECT_EQ(st.MPIX_SOURCE, 0);
  EXPECT_EQ(st.MPIX_TAG, 7);
  EXPECT_EQ(st.count_bytes, 4u);

  ASSERT_EQ(MPIX_Wait(&sreq, MPIX_STATUS_IGNORE), MPIX_SUCCESS);
  EXPECT_EQ(sreq, MPIX_REQUEST_NULL);
  MPIX_Comm_free(&c0);
  MPIX_Comm_free(&c1);
}

TEST(Capi, TestAndTruncation) {
  WorldGuard g(2);
  MPIX_Comm c0 = nullptr, c1 = nullptr;
  MPIX_Comm_world(g.w, 0, &c0);
  MPIX_Comm_world(g.w, 1, &c1);

  std::int32_t out = 0;
  MPIX_Request rreq = MPIX_REQUEST_NULL;
  ASSERT_EQ(MPIX_Irecv(&out, 1, MPIX_INT32, 0, 0, c1, &rreq), MPIX_SUCCESS);
  int flag = -1;
  ASSERT_EQ(MPIX_Test(&rreq, &flag, MPIX_STATUS_IGNORE), MPIX_SUCCESS);
  EXPECT_EQ(flag, 0);

  std::int32_t big[4] = {1, 2, 3, 4};
  MPIX_Send(big, 4, MPIX_INT32, 1, 0, c0);
  while (flag == 0) {
    MPIX_Comm_progress(c1);
    MPIX_Test(&rreq, &flag, MPIX_STATUS_IGNORE);
  }
  EXPECT_EQ(out, 1);  // truncated receive got the first element
  MPIX_Comm_free(&c0);
  MPIX_Comm_free(&c1);
}

namespace {

struct CDummy {
  MPIX_World world;
  double due;
  int* counter;
};

int c_dummy_poll(MPIX_Async_thing thing) {
  auto* p = static_cast<CDummy*>(MPIX_Async_get_state(thing));
  if (MPIX_Wtime(p->world) >= p->due) {
    --*p->counter;
    delete p;
    return MPIX_ASYNC_DONE;
  }
  return MPIX_ASYNC_NOPROGRESS;
}

int c_spawning_poll(MPIX_Async_thing thing) {
  auto* p = static_cast<CDummy*>(MPIX_Async_get_state(thing));
  if (*p->counter > 1) {
    auto* next = new CDummy{p->world, 0.0, p->counter};
    MPIX_Async_spawn(thing, &c_spawning_poll, next, MPIX_STREAM_NULL);
  }
  --*p->counter;
  delete p;
  return MPIX_ASYNC_DONE;
}

}  // namespace

TEST(Capi, AsyncOnStreamAndComm) {
  WorldGuard g(1);
  MPIX_Comm c = nullptr;
  MPIX_Comm_world(g.w, 0, &c);
  MPIX_Stream s = nullptr;
  ASSERT_EQ(MPIX_Stream_create_on(g.w, 0, MPIX_INFO_NULL, &s), MPIX_SUCCESS);

  int counter = 2;
  MPIX_Async_start(&c_dummy_poll, new CDummy{g.w, MPIX_Wtime(g.w) + 1e-4,
                                             &counter},
                   s);
  MPIX_Async_start_on_comm(&c_dummy_poll,
                           new CDummy{g.w, MPIX_Wtime(g.w) + 1e-4, &counter},
                           c);
  while (counter > 0) {
    MPIX_Stream_progress(s);
    MPIX_Comm_progress(c);
  }
  EXPECT_EQ(counter, 0);
  EXPECT_EQ(MPIX_Stream_free(&s), MPIX_SUCCESS);
  MPIX_Comm_free(&c);
}

TEST(Capi, AsyncSpawnChain) {
  WorldGuard g(1);
  MPIX_Comm c = nullptr;
  MPIX_Comm_world(g.w, 0, &c);
  int counter = 4;
  MPIX_Async_start_on_comm(&c_spawning_poll, new CDummy{g.w, 0.0, &counter},
                           c);
  for (int i = 0; i < 20 && counter > 0; ++i) MPIX_Comm_progress(c);
  EXPECT_EQ(counter, 0);
  MPIX_Comm_free(&c);
}

TEST(Capi, StreamCommAndCollectives) {
  WorldGuard g(4);
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      MPIX_Comm parent = nullptr;
      MPIX_Comm_world(g.w, r, &parent);
      MPIX_Stream s = nullptr;
      MPIX_Stream_create_on(g.w, r, MPIX_INFO_NULL, &s);
      MPIX_Comm sc = nullptr;
      ASSERT_EQ(MPIX_Stream_comm_create(parent, s, &sc), MPIX_SUCCESS);

      std::int64_t v = r + 1, sum = 0;
      ASSERT_EQ(MPIX_Allreduce(&v, &sum, 1, MPIX_INT64, MPIX_SUM, sc),
                MPIX_SUCCESS);
      EXPECT_EQ(sum, 10);
      std::int32_t b = r == 2 ? 5 : 0;
      ASSERT_EQ(MPIX_Bcast(&b, 1, MPIX_INT32, 2, sc), MPIX_SUCCESS);
      EXPECT_EQ(b, 5);
      ASSERT_EQ(MPIX_Barrier(sc), MPIX_SUCCESS);

      MPIX_World_finalize_rank(g.w, r);
      MPIX_Comm_free(&sc);
      MPIX_Stream_free(&s);
      MPIX_Comm_free(&parent);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(Capi, GrequestLifecycle) {
  WorldGuard g(1);
  MPIX_Comm c = nullptr;
  MPIX_Comm_world(g.w, 0, &c);
  MPIX_Request greq = MPIX_REQUEST_NULL;
  ASSERT_EQ(MPIX_Grequest_start(c, &greq), MPIX_SUCCESS);
  EXPECT_EQ(MPIX_Request_is_complete(greq), 0);
  ASSERT_EQ(MPIX_Grequest_complete(greq), MPIX_SUCCESS);
  EXPECT_EQ(MPIX_Request_is_complete(greq), 1);
  MPIX_Wait(&greq, MPIX_STATUS_IGNORE);
  MPIX_Comm_free(&c);
}

TEST(Capi, NullArgumentHandling) {
  EXPECT_EQ(MPIX_World_create(1, 0, nullptr), MPIX_ERR_ARG);
  EXPECT_EQ(MPIX_Comm_rank(nullptr, nullptr), MPIX_ERR_ARG);
  EXPECT_EQ(MPIX_Stream_progress(nullptr), MPIX_ERR_ARG);
  EXPECT_EQ(MPIX_Request_is_complete(MPIX_REQUEST_NULL), 1);
  MPIX_Request r = MPIX_REQUEST_NULL;
  EXPECT_EQ(MPIX_Request_free(&r), MPIX_ERR_ARG);
  MPIX_World w = nullptr;
  EXPECT_EQ(MPIX_World_create(0, 0, &w), MPIX_ERR_ARG);  // nranks < 1
  EXPECT_EQ(w, nullptr);
}
