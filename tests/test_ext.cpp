// Continuations (MPIX_Continue analog) and round schedules (MPIX_Schedule
// analog) — the related-work comparison layers of §5.3/§5.4.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "mpx/ext/continue.hpp"
#include "mpx/ext/schedule.hpp"
#include "test_util.hpp"

using namespace mpx;

namespace {

struct CbRecord {
  std::atomic<int> fired{0};
  std::atomic<std::uint64_t> bytes{0};
};

void record_cb(const Status& st, void* data) {
  auto* r = static_cast<CbRecord*>(data);
  r->fired.fetch_add(1);
  r->bytes.fetch_add(st.count_bytes);
}

}  // namespace

TEST(Continue, CallbackFiresInsideProgressOnCompletion) {
  auto w = World::create(WorldConfig{.nranks = 2});
  Stream s1 = w->null_stream(1);
  Request cont = ext::continue_init(*w, s1);
  CbRecord rec;

  std::int32_t buf = 0;
  Request rr = w->comm_world(1).irecv(&buf, 1, dtype::Datatype::int32(), 0, 0);
  ext::continue_attach(rr, &record_cb, &rec, cont);
  ext::continue_ready(cont);
  EXPECT_EQ(rec.fired.load(), 0);

  std::int32_t v = 55;
  w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 0);
  while (!cont.is_complete()) stream_progress(s1);
  EXPECT_EQ(rec.fired.load(), 1);
  EXPECT_EQ(rec.bytes.load(), 4u);
  EXPECT_EQ(buf, 55);
}

TEST(Continue, AttachToAlreadyCompleteFiresImmediately) {
  auto w = World::create(WorldConfig{.nranks = 2});
  std::int32_t v = 1;
  Request sr = w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 0);
  ASSERT_TRUE(sr.is_complete());  // buffered eager

  Request cont = ext::continue_init(*w, w->null_stream(0));
  CbRecord rec;
  ext::continue_attach(sr, &record_cb, &rec, cont);
  EXPECT_EQ(rec.fired.load(), 1);  // fired inline
  ext::continue_ready(cont);
  EXPECT_TRUE(cont.is_complete());

  std::int32_t sink = 0;
  w->comm_world(1).recv(&sink, 1, dtype::Datatype::int32(), 0, 0);
}

TEST(Continue, AttachAllAggregatesCompletions) {
  auto w = World::create(WorldConfig{.nranks = 2});
  constexpr int kN = 16;
  std::vector<std::int32_t> out(kN, 0);
  std::vector<Request> reqs;
  Comm c1 = w->comm_world(1);
  for (int i = 0; i < kN; ++i) {
    reqs.push_back(c1.irecv(&out[static_cast<std::size_t>(i)], 1,
                            dtype::Datatype::int32(), 0, i));
  }
  Request cont = ext::continue_init(*w, w->null_stream(1));
  CbRecord rec;
  ext::continue_attach_all(reqs, &record_cb, &rec, cont);

  Comm c0 = w->comm_world(0);
  for (std::int32_t i = 0; i < kN; ++i) {
    c0.isend(&i, 1, dtype::Datatype::int32(), 1, i);
  }
  while (!cont.is_complete()) stream_progress(w->null_stream(1));
  EXPECT_EQ(rec.fired.load(), kN);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(Schedule, RoundsGateLocalOps) {
  // Two rounds: reduce must not run until the round's request completed.
  WorldConfig cfg{.nranks = 2};
  cfg.use_virtual_clock = true;
  cfg.ranks_per_node = 1;  // NIC: arrival needs time + polls
  auto w = World::create(cfg);

  std::int32_t acc = 1, incoming = 0;
  Request rr = w->comm_world(1).irecv(&incoming, 1, dtype::Datatype::int32(),
                                      0, 0);
  auto sched = std::make_unique<ext::Schedule>(*w, w->null_stream(1));
  sched->add_operation(rr);
  sched->add_mpi_operation(dtype::ReduceOp::sum, &incoming, &acc, 1,
                           dtype::Datatype::int32());
  Request handle = ext::Schedule::commit(std::move(sched));

  stream_progress(w->null_stream(1));
  EXPECT_FALSE(handle.is_complete());
  EXPECT_EQ(acc, 1);  // local op gated by the pending request

  std::int32_t v = 41;
  w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 0);
  w->virtual_clock()->advance(1.0);
  while (!handle.is_complete()) stream_progress(w->null_stream(1));
  EXPECT_EQ(acc, 42);
}

TEST(Schedule, CompletionPointBeforeLastRound) {
  auto w = World::create(WorldConfig{.nranks = 1});
  std::atomic<int> late_round_ran{0};
  std::int32_t a = 5, b = 10;

  auto sched = std::make_unique<ext::Schedule>(*w, w->null_stream(0));
  sched->add_mpi_operation(dtype::ReduceOp::sum, &a, &b, 1,
                           dtype::Datatype::int32());
  sched->mark_completion_point();  // handle completes after THIS round
  sched->create_round();
  sched->add_mpi_operation(dtype::ReduceOp::sum, &a, &b, 1,
                           dtype::Datatype::int32());
  Request handle = ext::Schedule::commit(std::move(sched));
  (void)late_round_ran;

  while (!handle.is_complete()) stream_progress(w->null_stream(0));
  // Both rounds ran to completion even though the handle completed early.
  w->finalize_rank(0);
  EXPECT_EQ(b, 20);
}
