// Unit tests for the base foundation: intrusive containers, refcounting,
// queues, clocks, stats, cvars, pools, and locks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <type_traits>
#include <vector>

#include "mpx/base/clock.hpp"
#include "mpx/base/cvar.hpp"
#include "mpx/base/instrumented_mutex.hpp"
#include "mpx/base/intrusive.hpp"
#include "mpx/base/pool.hpp"
#include "mpx/base/queue.hpp"
#include "mpx/base/spinlock.hpp"
#include "mpx/base/stats.hpp"
#include "mpx/base/thread.hpp"
#include "mpx/mc/sync.hpp"

using namespace mpx::base;

#if !MPX_MODEL_CHECK
// Zero-overhead pin for the mc:: shims (promised by mpx/mc/sync.hpp): in
// production builds they ARE the raw primitives — pure aliases, no wrapper
// types, nothing for codegen to see.
static_assert(std::is_same_v<mpx::mc::atomic<int>, std::atomic<int>>);
static_assert(std::is_same_v<mpx::mc::atomic<bool>, std::atomic<bool>>);
static_assert(std::is_same_v<mpx::mc::mutex, std::mutex>);
static_assert(std::is_same_v<mpx::mc::rec_mutex, std::recursive_mutex>);
static_assert(std::is_same_v<mpx::mc::spinlock, mpx::base::Spinlock>);
#endif

namespace {

struct Node {
  explicit Node(int val) : v(val) {}
  int v;
  ListHook hook;
};
using NodeList = IntrusiveList<Node, &Node::hook>;

}  // namespace

TEST(Intrusive, ForEachUntilStopsEarly) {
  NodeList l;
  Node a(1), b(2), c(3);
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  int visited = 0;
  Node* hit = l.for_each_until([&](Node* n) {
    ++visited;
    return n->v == 2;
  });
  ASSERT_EQ(hit, &b);
  EXPECT_EQ(visited, 2);  // early exit: c never visited
  EXPECT_EQ(l.for_each_until([](Node* n) { return n->v == 9; }), nullptr);
  l.erase(&a);
  l.erase(&b);
  l.erase(&c);
}

TEST(Intrusive, PushPopOrder) {
  NodeList l;
  Node a(1), b(2), c(3);
  EXPECT_TRUE(l.empty());
  l.push_back(&a);
  l.push_back(&b);
  l.push_front(&c);
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(l.pop_front()->v, 3);
  EXPECT_EQ(l.pop_front()->v, 1);
  EXPECT_EQ(l.pop_front()->v, 2);
  EXPECT_EQ(l.pop_front(), nullptr);
}

TEST(Intrusive, EraseMiddleAndRelink) {
  NodeList l;
  Node a(1), b(2), c(3);
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  l.erase(&b);
  EXPECT_EQ(l.size(), 2u);
  EXPECT_FALSE(b.hook.linked());
  l.push_back(&b);  // relinking after erase is legal
  std::vector<int> seen;
  l.for_each_safe([&](Node* n) { seen.push_back(n->v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 3, 2}));
}

TEST(Intrusive, ForEachSafeAllowsErasingCurrent) {
  NodeList l;
  std::vector<Node> nodes;
  nodes.reserve(10);
  for (int i = 0; i < 10; ++i) nodes.emplace_back(i);
  for (auto& n : nodes) l.push_back(&n);
  l.for_each_safe([&](Node* n) {
    if (n->v % 2 == 0) l.erase(n);
  });
  EXPECT_EQ(l.size(), 5u);
  l.for_each_safe([&](Node* n) { EXPECT_EQ(n->v % 2, 1); });
}

TEST(Intrusive, SpliceBack) {
  NodeList a, b;
  Node n1(1), n2(2), n3(3);
  a.push_back(&n1);
  b.push_back(&n2);
  b.push_back(&n3);
  a.splice_back(b);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.size(), 3u);
  std::vector<int> seen;
  a.for_each_safe([&](Node* n) { seen.push_back(n->v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

namespace {
struct Counted : RefCounted {
  explicit Counted(int* d) : deaths(d) {}
  ~Counted() { ++*deaths; }
  int* deaths;
};
}  // namespace

TEST(Refcount, AdoptShareRelease) {
  int deaths = 0;
  {
    Ref<Counted> r1(new Counted(&deaths));  // adopt
    EXPECT_EQ(r1->ref_count(), 1);
    {
      Ref<Counted> r2 = r1;  // copy: +1
      EXPECT_EQ(r1->ref_count(), 2);
      Ref<Counted> r3 = Ref<Counted>::share(r1.get());  // +1
      EXPECT_EQ(r1->ref_count(), 3);
    }
    EXPECT_EQ(r1->ref_count(), 1);
    Counted* raw = r1.release();  // manual ownership
    EXPECT_FALSE(r1);
    Ref<Counted> r4(raw);  // re-adopt
  }
  EXPECT_EQ(deaths, 1);
}

TEST(SpscRing, FifoAndCapacity) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, RejectsNonPowerOfTwo) {
  EXPECT_THROW(SpscRing<int>(6), mpx::UsageError);
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  SpscRing<int> ring(64);
  constexpr int kN = 100000;
  std::int64_t sum = 0;
  std::thread consumer([&] {
    int got = 0;
    while (got < kN) {
      if (auto v = ring.try_pop()) {
        sum += *v;
        ++got;
      } else {
        cpu_relax();
      }
    }
  });
  for (int i = 0; i < kN; ++i) {
    while (!ring.try_push(int(i))) cpu_relax();
  }
  consumer.join();
  EXPECT_EQ(sum, static_cast<std::int64_t>(kN) * (kN - 1) / 2);
}

TEST(MpscQueue, ConcurrentProducers) {
  MpscQueue<int> q;
  constexpr int kPer = 20000;
  {
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
      producers.emplace_back([&q, t] {
        for (int i = 0; i < kPer; ++i) q.push(t * kPer + i);
      });
    }
    for (auto& p : producers) p.join();
  }
  std::set<int> seen;
  while (auto v = q.try_pop()) seen.insert(*v);
  EXPECT_EQ(seen.size(), 4u * kPer);
}

TEST(Clock, SteadyMonotonic) {
  SteadyClock c;
  const double a = c.now();
  const double b = c.now();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Clock, VirtualAdvanceAndSet) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0.0);
  c.advance(1.5);
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.set(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
  EXPECT_THROW(c.set(2.0), mpx::UsageError);   // backwards
  EXPECT_THROW(c.advance(-1.0), mpx::UsageError);
}

TEST(Stats, SummaryAndTrimmedMean) {
  LatencyRecorder r;
  for (int i = 1; i <= 99; ++i) r.add_us(1.0);
  r.add_us(1000.0);  // one outlier
  const auto s = r.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean_us, 10.99, 0.01);
  EXPECT_NEAR(s.trimmed_mean_us, 1.0, 1e-9);  // outlier trimmed
  EXPECT_NEAR(s.p50_us, 1.0, 1e-9);
  EXPECT_NEAR(s.max_us, 1000.0, 1e-9);
}

TEST(Stats, MeanAccumulatorWelford) {
  MeanAccumulator m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Cvar, EnvParsing) {
  setenv("MPX_TEST_INT", "42", 1);
  setenv("MPX_TEST_BAD", "pony", 1);
  setenv("MPX_TEST_BOOL", "yes", 1);
  setenv("MPX_TEST_DBL", "2.5", 1);
  EXPECT_EQ(cvar_int("MPX_TEST_INT", 7), 42);
  EXPECT_EQ(cvar_int("MPX_TEST_BAD", 7), 7);
  EXPECT_EQ(cvar_int("MPX_TEST_UNSET", 7), 7);
  EXPECT_TRUE(cvar_bool("MPX_TEST_BOOL", false));
  EXPECT_DOUBLE_EQ(cvar_double("MPX_TEST_DBL", 0.0), 2.5);
  EXPECT_EQ(cvar_string("MPX_TEST_INT", ""), "42");
}

TEST(Pool, Recycles) {
  ObjectPool<std::vector<int>> pool;
  auto a = pool.acquire();
  auto* raw = a.get();
  pool.release(std::move(a));
  auto b = pool.acquire();
  EXPECT_EQ(b.get(), raw);  // recycled, not reallocated
  EXPECT_EQ(pool.total_allocated(), 1u);
}

TEST(Pool, ObjectPoolAccounting) {
  ObjectPool<int> pool;
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.capacity(), 0u);
  auto a = pool.acquire();
  auto b = pool.acquire();
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool.free_count(), 0u);
  pool.release(std::move(a));
  // One handed out, one parked: capacity counts both, live only the former.
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool.free_count(), 1u);
  auto c = pool.acquire();  // recycles the parked object
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool.total_allocated(), 2u);  // cumulative, not live
  pool.release(std::move(b));
  pool.release(std::move(c));
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.capacity(), 2u);
}

TEST(Pool, FreelistPoolRecyclesAndCaps) {
  struct Node {
    explicit Node(int x) : v(x) {}
    int v;
  };
  FreelistPool<Node> pool(/*max_free=*/1);
  Node* a = pool.acquire(1);
  Node* b = pool.acquire(2);
  EXPECT_EQ(a->v, 1);
  EXPECT_EQ(pool.stats().live, 2u);
  EXPECT_EQ(pool.stats().misses, 2u);
  pool.release(a);  // parked (free_count 1 == max_free)
  pool.release(b);  // over the cap: freed, counted as overflow
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().free_count, pool_passthrough() ? 0u : 1u);
  EXPECT_EQ(pool.stats().overflow, pool_passthrough() ? 2u : 1u);
  Node* c = pool.acquire(3);
  EXPECT_EQ(c->v, 3);
  if (!pool_passthrough()) {
    EXPECT_EQ(pool.stats().hits, 1u);  // reused the parked block
  }
  pool.release(c);
  pool.drain();
  EXPECT_EQ(pool.stats().free_count, 0u);
}

TEST(Pool, FixedBlockPoolRegistryAndStats) {
  auto find = [](const char* name) -> std::optional<PoolStats> {
    for (const NamedPoolStats& row : pool_registry_snapshot()) {
      if (row.name == name) return row.stats;
    }
    return std::nullopt;
  };
  EXPECT_FALSE(find("test-block").has_value());
  {
    FixedBlockPool pool("test-block", 64, /*max_free=*/4);
    void* p = pool.allocate(64);
    void* q = pool.allocate(32);  // smaller than block: still poolable
    ASSERT_TRUE(find("test-block").has_value());
    EXPECT_EQ(find("test-block")->live, 2u);
    pool.deallocate(p);
    pool.deallocate(q);
    EXPECT_EQ(find("test-block")->live, 0u);
    if (!pool_passthrough()) {
      EXPECT_EQ(find("test-block")->free_count, 2u);
      void* r = pool.allocate(64);
      EXPECT_EQ(pool.stats().hits, 1u);
      pool.deallocate(r);
    }
    // Oversized requests bypass the freelist but stay accounted.
    void* big = pool.allocate(1024);
    EXPECT_EQ(pool.stats().live, 1u);
    pool.deallocate(big);
  }
  // Destruction unregisters the pool.
  EXPECT_FALSE(find("test-block").has_value());
}

TEST(Pool, PooledBufferRoundtrip) {
  const char msg[] = "pooled payload bytes";
  Buffer b = pooled_copy(as_bytes(msg, sizeof(msg)));
  ASSERT_EQ(b.size(), sizeof(msg));
  EXPECT_EQ(std::memcmp(b.data(), msg, sizeof(msg)), 0);
  // Oversized buffers fall back to plain storage but keep working.
  Buffer big = pooled_buffer(PayloadPool::instance().max_block() + 1);
  EXPECT_EQ(big.size(), PayloadPool::instance().max_block() + 1);
  big.data()[0] = std::byte{7};
  Buffer moved = std::move(big);
  EXPECT_EQ(moved.data()[0], std::byte{7});
  EXPECT_EQ(pooled_buffer(0).size(), 0u);
}

TEST(Pool, PayloadPoolRecyclesPerSizeClass) {
  PayloadPool& pool = PayloadPool::instance();
  const PoolStats before = pool.stats();
  {
    Buffer a = pooled_buffer(256);
    EXPECT_EQ(pool.stats().live, before.live + 1);
  }  // released back into the 256-byte class
  EXPECT_EQ(pool.stats().live, before.live);
  if (!pool_passthrough()) {
    Buffer b = pooled_buffer(256);
    EXPECT_GT(pool.stats().hits, before.hits);  // storage was recycled
  }
}

TEST(Locks, SpinlockMutualExclusion) {
  Spinlock mu;
  int counter = 0;
  {
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
      ts.emplace_back([&] {
        for (int i = 0; i < 10000; ++i) {
          std::lock_guard<Spinlock> g(mu);
          ++counter;
        }
      });
    }
    for (auto& t : ts) t.join();
  }
  EXPECT_EQ(counter, 40000);
}

TEST(Locks, InstrumentedMutexCountsAndRecursion) {
  InstrumentedMutex mu;
  mu.lock();
  mu.lock();  // recursive acquisition must not deadlock
  mu.unlock();
  mu.unlock();
  EXPECT_EQ(mu.stats().acquires, 2u);
  EXPECT_EQ(mu.stats().contended, 0u);
  mu.reset_stats();
  EXPECT_EQ(mu.stats().acquires, 0u);
}
