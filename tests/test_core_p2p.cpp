// Point-to-point protocol tests across both transports and all message
// modes (Fig. 1 of the paper): buffered/lightweight eager, eager with
// injection wait, rendezvous, and pipeline; plus blocking wrappers.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpx/net/nic.hpp"
#include "test_util.hpp"

using namespace mpx;

namespace {

std::vector<std::int32_t> iota_vec(std::size_t n, std::int32_t start = 0) {
  std::vector<std::int32_t> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

}  // namespace

// --- shared-memory path ---

TEST(P2pShm, EagerSendCompletesAtInitiation) {
  auto w = World::create(WorldConfig{.nranks = 2});
  auto v = iota_vec(16);
  Comm c0 = w->comm_world(0);
  Request s = c0.isend(v.data(), v.size(), dtype::Datatype::int32(), 1, 5);
  // Buffered eager: complete before any receive is posted (Fig. 1a).
  EXPECT_TRUE(s.is_complete());

  std::vector<std::int32_t> r(16, -1);
  Comm c1 = w->comm_world(1);
  Status st = c1.recv(r.data(), r.size(), dtype::Datatype::int32(), 0, 5);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 5);
  EXPECT_EQ(st.count_bytes, 16u * 4u);
  EXPECT_EQ(r, v);
}

TEST(P2pShm, RendezvousLargeMessage) {
  WorldConfig cfg{.nranks = 2};
  cfg.shm_eager_max = 1024;  // force LMT
  auto w = World::create(cfg);
  const std::size_t n = 100'000;
  auto v = iota_vec(n);
  std::vector<std::int32_t> r(n, -1);

  Comm c0 = w->comm_world(0);
  Comm c1 = w->comm_world(1);
  Request sreq = c0.isend(v.data(), n, dtype::Datatype::int32(), 1, 1);
  // Rendezvous: cannot complete before the receiver matches and acks.
  EXPECT_FALSE(sreq.is_complete());

  Request rreq = c1.irecv(r.data(), n, dtype::Datatype::int32(), 0, 1);
  // Drive both sides' progress (single-threaded, deterministic).
  while (!sreq.is_complete() || !rreq.is_complete()) {
    stream_progress(w->null_stream(1));
    stream_progress(w->null_stream(0));
  }
  EXPECT_EQ(r, v);
  EXPECT_EQ(rreq.status().count_bytes, n * 4);
}

TEST(P2pShm, SenderBufferReusableAfterEagerComplete) {
  auto w = World::create(WorldConfig{.nranks = 2});
  auto v = iota_vec(8);
  Comm c0 = w->comm_world(0);
  Request s = c0.isend(v.data(), v.size(), dtype::Datatype::int32(), 1, 0);
  ASSERT_TRUE(s.is_complete());
  std::fill(v.begin(), v.end(), -7);  // clobber after completion: legal

  std::vector<std::int32_t> r(8);
  w->comm_world(1).recv(r.data(), 8, dtype::Datatype::int32(), 0, 0);
  EXPECT_EQ(r, iota_vec(8));  // payload was captured at send time
}

// --- simulated NIC path ---

TEST(P2pNet, LightweightSendIsBuffered) {
  auto w = World::create(mpx_test::net_only_config(2));
  std::int32_t x = 42;
  Request s = w->comm_world(0).isend(&x, 1, dtype::Datatype::int32(), 1, 3);
  EXPECT_TRUE(s.is_complete());  // <= net_lightweight_max

  std::int32_t y = 0;
  w->comm_world(1).recv(&y, 1, dtype::Datatype::int32(), 0, 3);
  EXPECT_EQ(y, 42);
}

TEST(P2pNet, EagerWaitsForInjection) {
  // Virtual clock: the injection CQ event exists at a known time and is only
  // observed via progress — exactly the paper's Fig. 1(b) wait block.
  auto w = World::create(mpx_test::virtual_net_config(2));
  const std::size_t n = 4096;  // > lightweight, <= eager_max
  auto v = iota_vec(n);
  Request s = w->comm_world(0).isend(v.data(), n, dtype::Datatype::int32(),
                                     1, 0);
  EXPECT_FALSE(s.is_complete());

  // Progress without advancing time: injection not done yet.
  stream_progress(w->null_stream(0));
  EXPECT_FALSE(s.is_complete());

  // Advance beyond the injection deadline; completion still needs a poll.
  w->virtual_clock()->advance(1.0);
  EXPECT_FALSE(s.is_complete());
  stream_progress(w->null_stream(0));
  EXPECT_TRUE(s.is_complete());

  std::vector<std::int32_t> r(n);
  Request rr = w->comm_world(1).irecv(r.data(), n, dtype::Datatype::int32(),
                                      0, 0);
  stream_progress(w->null_stream(1));
  ASSERT_TRUE(rr.is_complete());
  EXPECT_EQ(r, v);
}

TEST(P2pNet, RendezvousHandshake) {
  auto w = World::create(mpx_test::virtual_net_config(2));
  const std::size_t n = 64 * 1024;  // > net_eager_max in elements of int32
  auto v = iota_vec(n);
  std::vector<std::int32_t> r(n, 0);

  Request s = w->comm_world(0).isend(v.data(), n, dtype::Datatype::int32(),
                                     1, 9);
  Request rv = w->comm_world(1).irecv(r.data(), n, dtype::Datatype::int32(),
                                      0, 9);
  EXPECT_FALSE(s.is_complete());
  EXPECT_FALSE(rv.is_complete());

  // RTS -> CTS -> DATA each need time + polls on the right side.
  for (int step = 0; step < 16 && !(s.is_complete() && rv.is_complete());
       ++step) {
    w->virtual_clock()->advance(0.01);
    stream_progress(w->null_stream(1));  // receiver: RTS in, CTS out, data in
    stream_progress(w->null_stream(0));  // sender: CTS in, data out
  }
  ASSERT_TRUE(s.is_complete());
  ASSERT_TRUE(rv.is_complete());
  EXPECT_EQ(r, v);
}

TEST(P2pNet, PipelineChunksLargeMessage) {
  WorldConfig cfg = mpx_test::virtual_net_config(2);
  cfg.net_pipeline_min = 64 * 1024;
  cfg.net_pipeline_chunk = 16 * 1024;
  cfg.net_pipeline_inflight = 2;
  auto w = World::create(cfg);
  const std::size_t n = 128 * 1024;  // 512 KiB > pipeline_min
  auto v = iota_vec(n);
  std::vector<std::int32_t> r(n, 0);

  Request s = w->comm_world(0).isend(v.data(), n, dtype::Datatype::int32(),
                                     1, 2);
  Request rv = w->comm_world(1).irecv(r.data(), n, dtype::Datatype::int32(),
                                      0, 2);
  for (int step = 0; step < 200 && !(s.is_complete() && rv.is_complete());
       ++step) {
    w->virtual_clock()->advance(0.01);
    stream_progress(w->null_stream(0));
    stream_progress(w->null_stream(1));
  }
  ASSERT_TRUE(s.is_complete());
  ASSERT_TRUE(rv.is_complete());
  EXPECT_EQ(r, v);
  // The pipeline actually chunked: more than 2 messages crossed the wire.
  EXPECT_GT(mpx_test::transport_as<net::Nic>(*w, "nic").stats().delivered, 8u);
}

// --- concurrent ranks-on-threads smoke ---

TEST(P2pThreads, PingPongBothTransports) {
  for (int rpn : {2, 1}) {  // 2 = shm path, 1 = net path
    WorldConfig cfg{.nranks = 2};
    cfg.ranks_per_node = rpn;
    auto w = World::create(cfg);
    mpx_test::run_ranks(*w, [&](int rank) {
      Comm c = w->comm_world(rank);
      std::int64_t token = 0;
      for (int i = 0; i < 50; ++i) {
        if (rank == 0) {
          token = i;
          c.send(&token, 1, dtype::Datatype::int64(), 1, 11);
          c.recv(&token, 1, dtype::Datatype::int64(), 1, 12);
          ASSERT_EQ(token, i * 2);
        } else {
          c.recv(&token, 1, dtype::Datatype::int64(), 0, 11);
          token *= 2;
          c.send(&token, 1, dtype::Datatype::int64(), 0, 12);
        }
      }
      w->finalize_rank(rank);
    });
  }
}

TEST(P2pDatatype, NonContiguousVectorRoundTrip) {
  auto w = World::create(WorldConfig{.nranks = 2});
  // Send every other int of a 2N array.
  const int n = 1000;
  std::vector<std::int32_t> src(2 * n);
  std::iota(src.begin(), src.end(), 0);
  auto strided = dtype::Datatype::vector(n, 1, 2, dtype::Datatype::int32());

  Request s = w->comm_world(0).isend(src.data(), 1, strided, 1, 0);
  std::vector<std::int32_t> dst(n, -1);
  w->comm_world(1).recv(dst.data(), n, dtype::Datatype::int32(), 0, 0);
  ASSERT_TRUE(s.is_complete());
  for (int i = 0; i < n; ++i) EXPECT_EQ(dst[i], 2 * i) << i;
}

TEST(P2pDatatype, NonContiguousReceiveSide) {
  auto w = World::create(WorldConfig{.nranks = 2});
  const int n = 500;
  std::vector<std::int32_t> src(n);
  std::iota(src.begin(), src.end(), 100);
  std::vector<std::int32_t> dst(2 * n, -1);
  auto strided = dtype::Datatype::vector(n, 1, 2, dtype::Datatype::int32());

  Request s = w->comm_world(0).isend(src.data(), n,
                                     dtype::Datatype::int32(), 1, 0);
  w->comm_world(1).recv(dst.data(), 1, strided, 0, 0);
  ASSERT_TRUE(s.is_complete());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(dst[2 * i], 100 + i);
    EXPECT_EQ(dst[2 * i + 1], -1);
  }
}
