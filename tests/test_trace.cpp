// Protocol tracer tests: event sequences for each protocol, ring-buffer
// bounds, and the disabled-by-default contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "test_util.hpp"

using namespace mpx;
using trace::Event;
using trace::Record;

namespace {

std::vector<Event> events_of(const std::vector<Record>& recs) {
  std::vector<Event> out;
  out.reserve(recs.size());
  for (const Record& r : recs) out.push_back(r.ev);
  return out;
}

std::ptrdiff_t index_of(const std::vector<Event>& evs, Event e) {
  const auto it = std::find(evs.begin(), evs.end(), e);
  return it == evs.end() ? -1 : it - evs.begin();
}

}  // namespace

TEST(Trace, DisabledByDefault) {
  auto w = World::create(WorldConfig{.nranks = 2});
  EXPECT_FALSE(w->tracer().enabled());
  std::int32_t v = 1, out = 0;
  w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 0);
  w->comm_world(1).recv(&out, 1, dtype::Datatype::int32(), 0, 0);
  EXPECT_EQ(w->tracer().emitted(), 0u);
  EXPECT_TRUE(w->tracer().snapshot().empty());
}

TEST(Trace, EagerSequence) {
  WorldConfig cfg{.nranks = 2};
  cfg.trace_capacity = 256;
  auto w = World::create(cfg);
  std::int32_t v = 1, out = 0;
  w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 5);
  w->comm_world(1).recv(&out, 1, dtype::Datatype::int32(), 0, 5);

  const auto recs = w->tracer().snapshot();
  const auto evs = events_of(recs);
  const auto post_send = index_of(evs, Event::post_send);
  const auto post_recv = index_of(evs, Event::post_recv);
  const auto match = index_of(evs, Event::match);
  ASSERT_GE(post_send, 0);
  ASSERT_GE(post_recv, 0);
  ASSERT_GE(match, 0);
  EXPECT_LT(post_send, match);
  EXPECT_LT(post_recv, match);
  // Timestamps are monotone within the ring.
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i].t, recs[i - 1].t);
  }
  // The match record carries the envelope.
  EXPECT_EQ(recs[static_cast<std::size_t>(match)].tag, 5);
  EXPECT_EQ(recs[static_cast<std::size_t>(match)].bytes, 4u);
}

TEST(Trace, RendezvousSequenceOverNic) {
  WorldConfig cfg = mpx_test::virtual_net_config(2);
  cfg.trace_capacity = 1024;
  auto w = World::create(cfg);
  std::vector<std::int64_t> big(64 * 1024, 1), out(64 * 1024, 0);
  Request s = w->comm_world(0).isend(big.data(), big.size(),
                                     dtype::Datatype::int64(), 1, 0);
  Request r = w->comm_world(1).irecv(out.data(), out.size(),
                                     dtype::Datatype::int64(), 0, 0);
  while (!s.is_complete() || !r.is_complete()) {
    w->virtual_clock()->advance(0.01);
    stream_progress(w->null_stream(1));
    stream_progress(w->null_stream(0));
  }
  const auto evs = events_of(w->tracer().snapshot());
  // Full rendezvous choreography, in order: RTS at receiver, CTS at sender,
  // DATA at receiver.
  const auto rts = index_of(evs, Event::rts);
  const auto cts = index_of(evs, Event::cts);
  const auto data = index_of(evs, Event::data);
  ASSERT_GE(rts, 0);
  ASSERT_GE(cts, 0);
  ASSERT_GE(data, 0);
  EXPECT_LT(rts, cts);
  EXPECT_LT(cts, data);
  EXPECT_GE(std::count(evs.begin(), evs.end(), Event::complete), 2);
}

TEST(Trace, UnexpectedAndLmtAck) {
  WorldConfig cfg{.nranks = 2};
  cfg.shm_eager_max = 64;  // LMT path
  cfg.trace_capacity = 512;
  auto w = World::create(cfg);
  std::vector<double> big(1024, 2.0), out(1024, 0.0);
  Request s = w->comm_world(0).isend(big.data(), big.size(),
                                     dtype::Datatype::float64(), 1, 0);
  stream_progress(w->null_stream(1));  // RTS lands unexpected
  w->comm_world(1).recv(out.data(), out.size(), dtype::Datatype::float64(),
                        0, 0);
  while (!s.is_complete()) stream_progress(w->null_stream(0));

  const auto evs = events_of(w->tracer().snapshot());
  EXPECT_GE(index_of(evs, Event::unexpected), 0);
  EXPECT_GE(index_of(evs, Event::ack), 0);  // LMT completion notification
}

TEST(Trace, RingBounded) {
  WorldConfig cfg{.nranks = 2};
  cfg.trace_capacity = 16;  // tiny ring
  auto w = World::create(cfg);
  for (int i = 0; i < 100; ++i) {
    std::int32_t v = i, out = 0;
    w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 0);
    w->comm_world(1).recv(&out, 1, dtype::Datatype::int32(), 0, 0);
  }
  EXPECT_GT(w->tracer().emitted(), 16u);
  const auto recs = w->tracer().snapshot();
  EXPECT_EQ(recs.size(), 16u);  // only the newest survive
}

TEST(Trace, DumpIsReadable) {
  WorldConfig cfg{.nranks = 2};
  cfg.trace_capacity = 64;
  auto w = World::create(cfg);
  std::int32_t v = 9, out = 0;
  w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), 1, 3);
  w->comm_world(1).recv(&out, 1, dtype::Datatype::int32(), 0, 3);
  std::ostringstream os;
  w->tracer().dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("post_send"), std::string::npos);
  EXPECT_NE(text.find("match"), std::string::npos);
  EXPECT_NE(text.find("tag=3"), std::string::npos);
}
