// Model-check: the topology RCU publication protocol
// (include/mpx/core/topology.hpp). Explored invariants, across every
// interleaving of snapshot readers and a publishing/reclaiming writer:
//
//  1. Publication atomicity: a reader's single acquire-load (topology_pin)
//     returns either the predecessor or the fully built successor — epoch,
//     route table, and fence bits always agree with the pinned pointer,
//     never a half-built mix.
//
//  2. Grace-period safety: the writer's reclaim of the predecessor
//     (modeled as a plain write so the checker's vector-clock race
//     detector owns the proof) is ordered AFTER every reader section that
//     pinned it — via the quiescence-counter fast path (advertised epoch
//     release-store / writer acquire-load) or the v.mu lock-pass fallback,
//     whichever the interleaving exercises.
//
//  3. Per-VCI quiescence composes: with two readers on independent
//     (mutex, epoch-counter) pairs, quiescing each in turn is sufficient —
//     there is no hidden cross-VCI ordering requirement.
//
//  4. The grace period is LOAD-BEARING: the seeded mutation that skips
//     topology_quiesce before reclaiming must be caught (as a data race
//     between a still-pinned reader and the reclaim). A checker that
//     cannot catch the skipped grace period proves nothing about 2.
#include <gtest/gtest.h>

#include <cstdint>

#include "mpx/core/topology.hpp"
#include "mpx/mc/mc.hpp"

#if MPX_MODEL_CHECK

namespace mc = mpx::mc;
using mpx::core_detail::TopologyHandle;
using mpx::core_detail::TopologySnapshot;
using mpx::core_detail::topology_pin;
using mpx::core_detail::topology_quiesce;

namespace {

// Stand-in transports: only pointer identity matters (carrier() is a
// tagged-pointer decode; nothing here dereferences a Transport).
alignas(8) std::uint64_t g_old_t;
alignas(8) std::uint64_t g_new_t;

mpx::transport::Transport* old_t() {
  return reinterpret_cast<mpx::transport::Transport*>(&g_old_t);
}
mpx::transport::Transport* new_t() {
  return reinterpret_cast<mpx::transport::Transport*>(&g_new_t);
}

void build(TopologySnapshot& s, std::uint64_t epoch,
           mpx::transport::Transport* t, bool fence01) {
  s.epoch = epoch;
  s.nranks = 2;
  s.ranks_per_node = 2;
  const auto p = reinterpret_cast<std::uintptr_t>(t);
  s.route.assign(4, p);
  if (fence01) {
    s.route[s.pair_index(0, 1)] = p | TopologySnapshot::kFenceBit;
  }
}

// One reader critical section: pin under the VCI mutex, then use the
// snapshot exactly as the datapath does. The PLAIN_READ is the race-checked
// stand-in for every field access a poll/send makes through the pin; the
// invariant checks pin down publication atomicity (point 1 above).
template <class Mutex, class EpochAtomic>
void reader_section(TopologyHandle& h, Mutex& mu, EpochAtomic& observed,
                    const TopologySnapshot* a, const TopologySnapshot* b) {
  mu.lock();
  const TopologySnapshot* s = topology_pin(h, observed);
  MPX_MC_PLAIN_READ(s, "pinned snapshot payload");
  mc::check(s == a || s == b, "pin returned a foreign or torn pointer");
  if (s == a) {
    mc::check(s->epoch == 1, "predecessor epoch corrupted");
    mc::check(s->carrier(0, 1) == old_t(), "predecessor route corrupted");
    mc::check(!s->fenced(0, 1), "predecessor spuriously fenced");
  } else {
    mc::check(s->epoch == 2, "successor visible before epoch was set");
    mc::check(s->carrier(0, 1) == new_t(),
              "successor visible before route was compiled");
    mc::check(s->fenced(0, 1), "successor lost its fence tag");
  }
  mu.unlock();
}

}  // namespace

TEST(McTopologySwap, ReclaimOrderedAfterEveryReaderSection) {
  mc::Options opt;
  opt.name = "topology_publish_reclaim";
  const mc::Result res = mc::explore(opt, [] {
    TopologySnapshot a, b;
    build(a, 1, old_t(), /*fence01=*/false);
    TopologyHandle h;
    h.install(&a);
    mc::atomic<std::uint64_t> observed{0};  // the reader VCI's topo_epoch
    mc::mutex mu;                           // the reader VCI's v.mu

    mc::thread writer([&] {
      MPX_MC_PLAIN_WRITE(&b, "successor construction");
      build(b, 2, new_t(), /*fence01=*/true);
      const TopologySnapshot* prev = h.publish(&b);
      mc::check(prev == &a, "publish returned the wrong predecessor");
      topology_quiesce(observed, 2, mu);
      // Models `delete prev`: any reader section still able to touch the
      // predecessor makes this an (explored) data race.
      MPX_MC_PLAIN_WRITE(&a, "predecessor reclaim");
    });

    // Two sections so the schedule tree covers: both before the publish,
    // straddling it, and both after (exercising the quiescence-counter
    // fast path, where the writer never touches mu).
    reader_section(h, mu, observed, &a, &b);
    mc::yield();
    reader_section(h, mu, observed, &a, &b);

    writer.join();
    mc::check(h.acquire() == &b, "successor not current after join");
    // Snapshots live on this stack frame; detach the handle so its
    // destructor's `delete` never sees them.
    (void)h.publish(nullptr);
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

TEST(McTopologySwap, PerVciQuiescenceComposes) {
  mc::Options opt;
  opt.name = "topology_two_vcis";
  const mc::Result res = mc::explore(opt, [] {
    TopologySnapshot a, b;
    build(a, 1, old_t(), /*fence01=*/false);
    TopologyHandle h;
    h.install(&a);
    // Two independent VCIs: each has its own mutex and advertised epoch,
    // exactly like Datapath's per-VCI state.
    mc::atomic<std::uint64_t> obs0{0}, obs1{0};
    mc::mutex mu0, mu1;

    mc::thread r0([&] { reader_section(h, mu0, obs0, &a, &b); });
    mc::thread r1([&] { reader_section(h, mu1, obs1, &a, &b); });

    // Writer is this thread: the grace walk quiesces each VCI in turn —
    // the checker proves that is sufficient to order the reclaim after
    // BOTH readers' predecessor sections.
    MPX_MC_PLAIN_WRITE(&b, "successor construction");
    build(b, 2, new_t(), /*fence01=*/true);
    const TopologySnapshot* prev = h.publish(&b);
    mc::check(prev == &a, "publish returned the wrong predecessor");
    topology_quiesce(obs0, 2, mu0);
    topology_quiesce(obs1, 2, mu1);
    MPX_MC_PLAIN_WRITE(&a, "predecessor reclaim");

    r0.join();
    r1.join();
    (void)h.publish(nullptr);
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

TEST(McTopologySwap, SkippedGracePeriodIsCaught) {
  // Seeded mutation (the PR 3 discipline): reclaim immediately after the
  // publish, WITHOUT quiescing the reader. A reader section that pinned the
  // predecessor now races the reclaim — the vector-clock race detector must
  // flag the unordered plain-access pair regardless of whether the explored
  // interleaving happened to produce a benign outcome.
  mc::Options opt;
  opt.name = "topology_skipped_grace";
  const mc::Result res = mc::explore(opt, [] {
    TopologySnapshot a, b;
    build(a, 1, old_t(), /*fence01=*/false);
    TopologyHandle h;
    h.install(&a);
    mc::atomic<std::uint64_t> observed{0};
    mc::mutex mu;

    mc::thread writer([&] {
      MPX_MC_PLAIN_WRITE(&b, "successor construction");
      build(b, 2, new_t(), /*fence01=*/true);
      const TopologySnapshot* prev = h.publish(&b);
      mc::check(prev == &a, "publish returned the wrong predecessor");
      MPX_MC_PLAIN_WRITE(&a, "predecessor reclaim");  // no grace period!
    });

    reader_section(h, mu, observed, &a, &b);

    writer.join();
    (void)h.publish(nullptr);
  });
  RecordProperty("summary", res.summary());
  EXPECT_FALSE(res.ok())
      << "skipping the grace period went undetected: " << res.summary();
  EXPECT_FALSE(res.failure.empty());
}

#else
TEST(McTopologySwap, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
