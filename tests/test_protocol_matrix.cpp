// Systematic protocol matrix: {transport} x {message-size regime} x
// {isend/issend/persistent} x {contiguous/strided datatype}, one
// parameterized correctness check per cell. This is the exhaustive sweep
// over every send-side state machine the runtime implements.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "test_util.hpp"

using namespace mpx;

namespace {

enum class SizeRegime : int { tiny = 0, eager = 1, rndv = 2, pipeline = 3 };
enum class SendKind : int { isend = 0, issend = 1, persistent = 2 };

struct MatrixParam {
  int ranks_per_node;  // 0 = shm path, 1 = net path
  SizeRegime regime;
  SendKind kind;
  bool strided;
};

std::size_t elems_for(SizeRegime r) {
  // Element counts (int32) placed firmly inside each regime given the
  // config below.
  switch (r) {
    case SizeRegime::tiny: return 16;          // < lightweight / shm eager
    case SizeRegime::eager: return 1024;       // eager with injection wait
    case SizeRegime::rndv: return 16 * 1024;   // rendezvous
    case SizeRegime::pipeline: return 128 * 1024;  // chunked pipeline
  }
  return 1;
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto& p = info.param;
  static const char* const regimes[] = {"tiny", "eager", "rndv", "pipeline"};
  static const char* const kinds[] = {"isend", "issend", "persistent"};
  return std::string(p.ranks_per_node == 0 ? "shm" : "net") + "_" +
         regimes[static_cast<int>(p.regime)] + "_" +
         kinds[static_cast<int>(p.kind)] + (p.strided ? "_strided" : "_flat");
}

}  // namespace

class ProtocolMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ProtocolMatrix, PayloadDeliveredIntact) {
  const auto p = GetParam();
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = p.ranks_per_node;
  cfg.shm_eager_max = 16 * 1024;
  cfg.net_lightweight_max = 256;
  cfg.net_eager_max = 16 * 1024;
  cfg.net_pipeline_min = 256 * 1024;
  cfg.net_pipeline_chunk = 64 * 1024;
  auto w = World::create(cfg);

  const std::size_t n = elems_for(p.regime);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    auto flat = dtype::Datatype::int32();
    auto strided = dtype::Datatype::vector(static_cast<int>(n), 1, 2, flat);

    if (rank == 0) {
      // Source data: iota, strided through a 2n array when requested.
      std::vector<std::int32_t> src(p.strided ? 2 * n : n, -1);
      for (std::size_t i = 0; i < n; ++i) {
        src[p.strided ? 2 * i : i] = static_cast<std::int32_t>(i);
      }
      const void* buf = src.data();
      Request req;
      switch (p.kind) {
        case SendKind::isend:
          req = p.strided ? c.isend(buf, 1, strided, 1, 0)
                          : c.isend(buf, n, flat, 1, 0);
          break;
        case SendKind::issend:
          req = p.strided ? c.issend(buf, 1, strided, 1, 0)
                          : c.issend(buf, n, flat, 1, 0);
          break;
        case SendKind::persistent:
          req = p.strided ? c.send_init(buf, 1, strided, 1, 0)
                          : c.send_init(buf, n, flat, 1, 0);
          start(req);
          break;
      }
      wait_on_stream(req, c.stream());
    } else {
      std::vector<std::int32_t> dst(n, -1);
      Status st = c.recv(dst.data(), n, flat, 0, 0);
      EXPECT_EQ(st.error, Err::success);
      EXPECT_EQ(st.count_bytes, n * 4);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst[i], static_cast<std::int32_t>(i)) << i;
      }
    }
    w->finalize_rank(rank);
  });
}

namespace {

std::vector<MatrixParam> matrix_params() {
  std::vector<MatrixParam> out;
  for (int rpn : {0, 1}) {
    for (int regime = 0; regime < 4; ++regime) {
      for (int kind = 0; kind < 3; ++kind) {
        for (bool strided : {false, true}) {
          out.push_back(MatrixParam{rpn, static_cast<SizeRegime>(regime),
                                    static_cast<SendKind>(kind), strided});
        }
      }
    }
  }
  return out;
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(AllCells, ProtocolMatrix,
                         ::testing::ValuesIn(matrix_params()), matrix_name);

TEST(SubarrayHalo, TwoDimensionalGhostExchange) {
  // 2-D halo exchange using subarray datatypes on both sides: each rank
  // owns an 8x8 tile with a 1-cell ghost ring (10x10 storage) and exchanges
  // its edge COLUMNS (non-contiguous!) with its horizontal neighbors.
  auto w = World::create(WorldConfig{.nranks = 2});
  constexpr int N = 8, S = N + 2;
  const int sizes[] = {S, S};
  const int col_sub[] = {N, 1};
  // Send column: own first/last interior column; recv into ghost column.
  const int send_left[] = {1, 1};
  const int send_right[] = {1, N};
  const int recv_left[] = {1, 0};
  const int recv_right[] = {1, N + 1};
  auto dt = dtype::Datatype::float64();
  auto t_send_l = dtype::Datatype::subarray(sizes, col_sub, send_left, dt);
  auto t_send_r = dtype::Datatype::subarray(sizes, col_sub, send_right, dt);
  auto t_recv_l = dtype::Datatype::subarray(sizes, col_sub, recv_left, dt);
  auto t_recv_r = dtype::Datatype::subarray(sizes, col_sub, recv_right, dt);

  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const int peer = 1 - rank;
    std::vector<double> tile(S * S, -1.0);
    for (int i = 1; i <= N; ++i) {
      for (int j = 1; j <= N; ++j) {
        tile[static_cast<std::size_t>(i * S + j)] = rank * 100.0 + i * 10 + j;
      }
    }
    // Periodic in x: my right edge goes to the peer's left ghost and
    // vice versa.
    std::vector<Request> reqs;
    reqs.push_back(c.irecv(tile.data(), 1, t_recv_l, peer, 0));
    reqs.push_back(c.irecv(tile.data(), 1, t_recv_r, peer, 1));
    reqs.push_back(c.isend(tile.data(), 1, t_send_r, peer, 0));
    reqs.push_back(c.isend(tile.data(), 1, t_send_l, peer, 1));
    wait_all(reqs);

    for (int i = 1; i <= N; ++i) {
      // Left ghost column == peer's right interior column.
      ASSERT_EQ(tile[static_cast<std::size_t>(i * S)],
                peer * 100.0 + i * 10 + N);
      // Right ghost column == peer's left interior column.
      ASSERT_EQ(tile[static_cast<std::size_t>(i * S + N + 1)],
                peer * 100.0 + i * 10 + 1);
    }
    w->finalize_rank(rank);
  });
}
