// The cross-rank schedule verifier (mpx::coll::ir::verify): compiled
// shapes across algorithms and rank counts verify clean; each seeded
// mutation (swapped tag, dropped hazard edge, truncated operand, reordered
// reduce) is rejected with a counterexample trace; a hand-built
// head-to-head exchange is proven deadlocked with the cycle replayed step
// by step; randomized user-built schedules verify AND execute while their
// mutants are rejected before the executor would ever see them; and the
// MPX_COLL_VERIFY runtime gate routes rejection to Err::invalid_schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include "mpx/coll/coll.hpp"
#include "mpx/coll/ir.hpp"
#include "mpx/coll/ir_verify.hpp"
#include "mpx/coll/user_allreduce.hpp"
#include "test_util.hpp"

using namespace mpx;
namespace ir = mpx::coll::ir;
namespace verify = ir::verify;

namespace {

/// Compile all N per-rank schedules of one point, mirroring the runtime's
/// in-place conventions (bcast recv-space only; reduce in place at root).
std::vector<ir::SchedPtr> compile_ranks(ir::CollKind kind, ir::Algo algo,
                                        std::size_t count, int size,
                                        int root) {
  const net::CostModel net{};
  std::vector<ir::SchedPtr> out;
  for (int r = 0; r < size; ++r) {
    const bool inp = kind == ir::CollKind::bcast ||
                     (kind == ir::CollKind::reduce && r == root);
    out.push_back(ir::compile(kind, count, dtype::Datatype::int32(),
                              dtype::ReduceOp::sum, inp, root, r, size, net,
                              algo));
  }
  return out;
}

bool has_check(const verify::Report& rep, verify::Check c) {
  for (const auto& d : rep.diags) {
    if (d.check == c) return true;
  }
  return false;
}

}  // namespace

// ---- clean compiled shapes --------------------------------------------------

// Spot checks across every algorithm and awkward rank counts; the
// exhaustive sweep lives in tools/sched_verify.
TEST(CollVerify, CompiledShapesVerifyClean) {
  struct Shape {
    ir::CollKind kind;
    ir::Algo algo;
  };
  const Shape shapes[] = {
      {ir::CollKind::allreduce, ir::Algo::rd},
      {ir::CollKind::allreduce, ir::Algo::ring},
      {ir::CollKind::allreduce, ir::Algo::rsag},
      {ir::CollKind::bcast, ir::Algo::knomial},
      {ir::CollKind::bcast, ir::Algo::scatter_ag},
      {ir::CollKind::reduce, ir::Algo::knomial},
  };
  for (const Shape& sh : shapes) {
    for (const int size : {2, 3, 5, 8, 13, 17}) {
      for (const std::size_t count : {1ul, 4096ul}) {
        const auto ranks =
            compile_ranks(sh.kind, sh.algo, count, size, size / 2);
        const verify::Report rep = verify::verify_ranks(ranks);
        EXPECT_TRUE(rep.ok())
            << "P=" << size << " count=" << count << "\n"
            << rep.to_string();
        EXPECT_EQ(rep.ranks, size);
        EXPECT_GT(rep.counts_probed, 0u);
        EXPECT_GT(rep.pairs, 0u);
      }
    }
  }
}

// ---- seeded mutations -------------------------------------------------------

namespace {

/// Mutate one rank's clone with a named fault and return the report.
verify::Report mutated_report(std::vector<ir::SchedPtr> ranks, int victim,
                              const char* fault) {
  auto mut = verify::clone(*ranks[static_cast<std::size_t>(victim)]);
  EXPECT_TRUE(verify::inject_fault(*mut, fault)) << fault;
  ranks[static_cast<std::size_t>(victim)] = std::move(mut);
  return verify::verify_ranks(ranks);
}

}  // namespace

TEST(CollVerifyMutation, SwappedTagCaughtWithCounterexample) {
  const auto ranks =
      compile_ranks(ir::CollKind::allreduce, ir::Algo::rd, 4096, 8, 0);
  const verify::Report rep = mutated_report(ranks, 3, "swap_tag");
  ASSERT_FALSE(rep.ok());
  // The retagged send leaves both the old and the new channel unbalanced.
  EXPECT_TRUE(has_check(rep, verify::Check::matching)) << rep.to_string();
  EXPECT_FALSE(rep.diags[0].trace.empty());
  EXPECT_FALSE(rep.diags[0].trace[0].desc.empty());
}

TEST(CollVerifyMutation, DroppedHazardEdgeCaughtWithCounterexample) {
  const auto ranks =
      compile_ranks(ir::CollKind::allreduce, ir::Algo::ring, 4096, 5, 0);
  const verify::Report rep = mutated_report(ranks, 2, "drop_edge");
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(has_check(rep, verify::Check::hazard)) << rep.to_string();
  // The counterexample names both racing nodes.
  for (const auto& d : rep.diags) {
    if (d.check == verify::Check::hazard) {
      ASSERT_EQ(d.trace.size(), 2u);
      EXPECT_EQ(d.trace[0].rank, 2);
      EXPECT_EQ(d.trace[1].rank, 2);
    }
  }
}

TEST(CollVerifyMutation, TruncatedPartCaughtWithCounterexample) {
  const auto ranks =
      compile_ranks(ir::CollKind::allreduce, ir::Algo::ring, 4096, 6, 0);
  const verify::Report rep = mutated_report(ranks, 1, "truncate_part");
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(has_check(rep, verify::Check::matching)) << rep.to_string();
  // The trace pairs the shrunken send with its (now larger) receive.
  bool found = false;
  for (const auto& d : rep.diags) {
    if (d.check == verify::Check::matching && d.trace.size() == 2) {
      found = true;
      EXPECT_NE(d.message.find("byte"), std::string::npos);
    }
  }
  EXPECT_TRUE(found) << rep.to_string();
}

TEST(CollVerifyMutation, ReorderedReduceCaughtWithCounterexample) {
  const auto ranks =
      compile_ranks(ir::CollKind::reduce, ir::Algo::knomial, 4096, 5, 0);
  const verify::Report rep = mutated_report(ranks, 0, "reorder_reduce");
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(has_check(rep, verify::Check::reduce_order))
      << rep.to_string();
}

TEST(CollVerifyMutation, TagWindowReuseCaughtLocally) {
  // Two unordered sends of disjoint halves to the same peer get distinct
  // tags from the Builder; force them onto one tag and the FIFO channel
  // becomes ambiguous.
  ir::Builder b(ir::CollKind::bcast, dtype::Datatype::int32(),
                dtype::ReduceOp::sum, /*in_place=*/false, 0, 2);
  b.send(ir::send_buf(ir::block(2, 0)), 1);
  b.send(ir::send_buf(ir::block(2, 1)), 1);
  auto mut = verify::clone(*b.finish(ir::Algo::ring, 0, 64));
  EXPECT_TRUE(verify::verify_local(*mut).ok());
  mut->nodes[1].tag_off = mut->nodes[0].tag_off;
  const verify::Report rep = verify::verify_local(*mut);
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(has_check(rep, verify::Check::tag_window)) << rep.to_string();
  EXPECT_EQ(rep.diags[0].trace.size(), 2u);
}

// ---- deadlock detection -----------------------------------------------------

// The classic head-to-head exchange: both ranks send, then (strictly
// after) receive. Under rendezvous semantics neither send can complete
// until the peer posts its receive, which is ordered after its own send —
// a wait-for cycle spanning both ranks, replayed in the trace.
TEST(CollVerifyDeadlock, HeadToHeadExchangeProvenDeadlocked) {
  std::vector<ir::SchedPtr> ranks;
  for (int r = 0; r < 2; ++r) {
    ir::Builder b(ir::CollKind::bcast, dtype::Datatype::int32(),
                  dtype::ReduceOp::sum, /*in_place=*/false, r, 2);
    b.send(ir::send_buf(ir::full()), 1 - r);
    b.fn([](const ir::ExecView&) {});  // whole-memory barrier: recv waits
    b.recv(ir::recv_buf(ir::full()), 1 - r);
    ranks.push_back(b.finish(ir::Algo::ring, 0, 64));
  }
  const verify::Report rep = verify::verify_ranks(ranks);
  ASSERT_FALSE(rep.ok());
  ASSERT_TRUE(has_check(rep, verify::Check::acyclic)) << rep.to_string();
  for (const auto& d : rep.diags) {
    if (d.check != verify::Check::acyclic) continue;
    // The cycle must visit both ranks and name concrete nodes.
    bool r0 = false, r1 = false;
    for (const auto& st : d.trace) {
      r0 |= st.rank == 0;
      r1 |= st.rank == 1;
      EXPECT_FALSE(st.desc.empty());
    }
    EXPECT_TRUE(r0 && r1);
    EXPECT_GE(d.trace.size(), 4u);
  }
}

// Same shape with the safe ordering (receive posted before the send is
// required to complete — here: unordered, so both post eagerly) is clean.
TEST(CollVerifyDeadlock, UnorderedExchangeIsClean) {
  std::vector<ir::SchedPtr> ranks;
  for (int r = 0; r < 2; ++r) {
    ir::Builder b(ir::CollKind::bcast, dtype::Datatype::int32(),
                  dtype::ReduceOp::sum, /*in_place=*/false, r, 2);
    b.send(ir::send_buf(ir::full()), 1 - r);
    b.recv(ir::recv_buf(ir::full()), 1 - r);
    ranks.push_back(b.finish(ir::Algo::ring, 0, 64));
  }
  const verify::Report rep = verify::verify_ranks(ranks);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

// ---- Builder::verify() ------------------------------------------------------

TEST(CollVerifyBuilder, VerifyRunsWithoutConsumingTheBuilder) {
  ir::Builder b(ir::CollKind::bcast, dtype::Datatype::int32(),
                dtype::ReduceOp::sum, /*in_place=*/false, 0, 4);
  b.send(ir::send_buf(ir::full()), 1);
  b.recv(ir::recv_buf(ir::full()), 3);
  const verify::Report rep = b.verify();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(rep.ranks, 1);
  EXPECT_EQ(rep.nodes, 2u);
  // Still usable: finish() after verify() yields the same schedule.
  ir::SchedPtr s = b.finish(ir::Algo::ring, 0, 64);
  EXPECT_EQ(s->nodes.size(), 2u);
}

// ---- fuzz property: random valid schedules verify AND execute ---------------

// Random multi-round neighbor rotations: each round every rank sends its
// send buffer to (rank + offset) and receives the full vector from
// (rank - offset). Valid by construction (every send has exactly one
// matching receive, rounds serialize through the recv-buffer WAW hazard),
// so the verifier must pass them and the executor must produce the last
// round's rotation; their mutants must be rejected by verify alone,
// before anything executes.
TEST(CollVerifyFuzz, RandomRotationsVerifyExecuteAndMutantsAreRejected) {
  constexpr int kRanks = 4;
  constexpr std::size_t kCount = 32;
  WorldConfig cfg;
  cfg.nranks = kRanks;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      // Every rank derives the same round plan (same seed).
      std::mt19937 rng{static_cast<std::mt19937::result_type>(977 + seed)};
      const int rounds = 1 + static_cast<int>(rng() % 4);
      std::vector<int> offs;
      for (int k = 0; k < rounds; ++k) {
        offs.push_back(1 + static_cast<int>(rng() % (kRanks - 1)));
      }
      ir::Builder b(ir::CollKind::bcast, dtype::Datatype::int32(),
                    dtype::ReduceOp::sum, /*in_place=*/false, rank, kRanks);
      for (const int o : offs) {
        b.send(ir::send_buf(ir::full()), (rank + o) % kRanks);
        b.recv(ir::recv_buf(ir::full()), (rank + kRanks - o) % kRanks);
      }
      EXPECT_TRUE(b.verify().ok());
      ir::SchedPtr s = b.finish(ir::Algo::ring, 0, kCount);

      // Cross-rank verification needs every rank's schedule; rebuild the
      // peers locally (the plan is deterministic in the seed).
      std::vector<ir::SchedPtr> all(kRanks);
      for (int r = 0; r < kRanks; ++r) {
        ir::Builder pb(ir::CollKind::bcast, dtype::Datatype::int32(),
                       dtype::ReduceOp::sum, false, r, kRanks);
        for (const int o : offs) {
          pb.send(ir::send_buf(ir::full()), (r + o) % kRanks);
          pb.recv(ir::recv_buf(ir::full()), (r + kRanks - o) % kRanks);
        }
        all[static_cast<std::size_t>(r)] = pb.finish(ir::Algo::ring, 0,
                                                     kCount);
      }
      const verify::Report rep = verify::verify_ranks(all);
      ASSERT_TRUE(rep.ok()) << "seed=" << seed << "\n" << rep.to_string();

      // Mutants of a valid schedule must die in verify, not in the
      // executor (only rank 0 bothers; the check is rank-local).
      if (rank == 0) {
        for (const char* fault : {"swap_tag", "truncate_part"}) {
          auto mut = verify::clone(*all[0]);
          ASSERT_TRUE(verify::inject_fault(*mut, fault));
          auto mranks = all;
          mranks[0] = std::move(mut);
          EXPECT_FALSE(verify::verify_ranks(mranks).ok())
              << "seed=" << seed << " fault=" << fault;
        }
      }

      // The clean schedule executes: after the last round the receive
      // buffer holds the last sender's vector.
      std::vector<std::int32_t> in(kCount), out(kCount, -1);
      for (std::size_t i = 0; i < kCount; ++i) {
        in[i] = static_cast<std::int32_t>(rank * 1000 + i);
      }
      Request req = ir::launch(s, in.data(), out.data(), kCount, c);
      wait_on_stream(req, c.stream());
      const int last_src = (rank + kRanks - offs.back()) % kRanks;
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(out[i], last_src * 1000 + static_cast<std::int32_t>(i))
            << "seed=" << seed << " i=" << i;
      }
      coll::barrier(c);
    }
    w->finalize_rank(rank);
  });
}

// ---- the MPX_COLL_VERIFY runtime gate ---------------------------------------

TEST(CollVerifyGate, CleanSchedulesPassAndFaultedOnesReportInvalidSchedule) {
  ::setenv("MPX_COLL_VERIFY", "1", 1);
  {
    WorldConfig cfg;
    cfg.nranks = 3;  // non-pow2: the generalized compiled path
    auto w = World::create(cfg);
    mpx_test::run_ranks(*w, [&](int rank) {
      Comm c = w->comm_world(rank);
      std::vector<std::int32_t> buf(64, rank + 1);
      ASSERT_EQ(coll::user_allreduce(buf.data(), buf.size(),
                                     dtype::Datatype::int32(),
                                     dtype::ReduceOp::sum, c),
                Err::success);
      for (const std::int32_t v : buf) ASSERT_EQ(v, 1 + 2 + 3);
      w->finalize_rank(rank);
    });
  }
  // A faulted compilation must be rejected BEFORE caching or launching:
  // every rank reports Err::invalid_schedule and no one hangs.
  ::setenv("MPX_COLL_VERIFY_FAULT", "truncate_part", 1);
  {
    WorldConfig cfg;
    cfg.nranks = 3;
    auto w = World::create(cfg);
    mpx_test::run_ranks(*w, [&](int rank) {
      Comm c = w->comm_world(rank);
      std::vector<std::int32_t> buf(4096, rank + 1);
      ASSERT_EQ(coll::user_allreduce(buf.data(), buf.size(),
                                     dtype::Datatype::int32(),
                                     dtype::ReduceOp::sum, c),
                Err::invalid_schedule);
      w->finalize_rank(rank);
    });
  }
  ::unsetenv("MPX_COLL_VERIFY_FAULT");
  ::unsetenv("MPX_COLL_VERIFY");
}
