// Model-check: the progress engine's work-stealing deque across ALL
// interleavings.
//
// The two classic hazards of the Chase-Lev shape are (a) the steal-vs-pop
// race on the last element — exactly one side may win it — and (b) the
// empty-steal path, where a thief that observed a stale top must fail its
// CAS instead of lifting a value a concurrent pop already took (the ABA
// the monotonically increasing 64-bit indices defend against). Both are
// driven here through mc::explore, so the invariants hold on every
// schedule the shim-level seq_cst protocol admits, not just the ones the
// OS scheduler produces.
#include <gtest/gtest.h>

#include <optional>

#include "mpx/mc/mc.hpp"
#include "mpx/task/steal_deque.hpp"

#if MPX_MODEL_CHECK

using mpx::task::StealDeque;
namespace mc = mpx::mc;

TEST(McEngineSteal, LastElementWonByExactlyOneSide) {
  mc::Options opt;
  opt.name = "steal_deque_last_element";
  const mc::Result res = mc::explore(opt, [] {
    StealDeque<int> dq(4);
    mc::check(dq.try_push(42), "push into empty deque must succeed");

    int stolen = 0;
    mc::thread thief([&dq, &stolen] {
      if (std::optional<int> v = dq.try_steal()) {
        mc::check(*v == 42, "thief must only ever see the pushed value");
        stolen = 1;
      }
    });

    int popped = 0;
    if (std::optional<int> v = dq.try_pop()) {
      mc::check(*v == 42, "owner must only ever see the pushed value");
      popped = 1;
    }
    thief.join();

    mc::check(popped + stolen == 1,
              "the last element goes to exactly one of pop/steal");
    mc::check(!dq.try_pop().has_value(), "deque must be empty afterwards");
    mc::check(!dq.try_steal().has_value(), "deque must be empty afterwards");
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1) << "exploration must branch, not run once";
}

TEST(McEngineSteal, NoValueDuplicatedOrLostUnderConcurrentSteal) {
  mc::Options opt;
  opt.name = "steal_deque_owner_thief";
  const mc::Result res = mc::explore(opt, [] {
    StealDeque<int> dq(4);
    constexpr int kN = 3;
    for (int i = 1; i <= kN; ++i) {
      mc::check(dq.try_push(int{i}), "capacity 4 holds 3 items");
    }

    // Sum check: every pushed value is taken exactly once across owner
    // pops and thief steals — a double-take or a lost slot skews the sum.
    int thief_sum = 0;
    mc::thread thief([&dq, &thief_sum] {
      for (int tries = 0; tries < 2; ++tries) {
        if (std::optional<int> v = dq.try_steal()) thief_sum += *v;
      }
    });

    int owner_sum = 0;
    for (;;) {
      std::optional<int> v = dq.try_pop();
      if (!v.has_value()) break;
      owner_sum += *v;
    }
    thief.join();

    // The owner drains whatever the thief left; a failed last-element pop
    // CAS concedes to the thief, so one retry pass settles any leftover.
    while (std::optional<int> v = dq.try_pop()) owner_sum += *v;

    mc::check(owner_sum + thief_sum == 1 + 2 + 3,
              "each value taken exactly once");
    mc::check(dq.empty(), "deque drained");
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

TEST(McEngineSteal, EmptyStealNeverFabricatesAValue) {
  // A thief racing the owner's push/pop of a single slot either gets that
  // exact value once or nothing: a stale-top CAS must fail, never resurrect
  // slot contents (the ABA probe — indices are monotonic, slots reused).
  mc::Options opt;
  opt.name = "steal_deque_empty_steal";
  const mc::Result res = mc::explore(opt, [] {
    StealDeque<int> dq(2);

    int thief_got = 0, thief_val = 0;
    mc::thread thief([&] {
      if (std::optional<int> v = dq.try_steal()) {
        thief_got = 1;
        thief_val = *v;
      }
    });

    // Owner: push 7, pop it, push 9 into the SAME ring slot, pop again.
    mc::check(dq.try_push(7), "push 7");
    int owner_sum = 0;
    if (std::optional<int> v = dq.try_pop()) owner_sum += *v;
    mc::check(dq.try_push(9), "push 9");
    if (std::optional<int> v = dq.try_pop()) owner_sum += *v;
    thief.join();

    const int total = owner_sum + (thief_got != 0 ? thief_val : 0);
    mc::check(total == 16, "7 and 9 each consumed exactly once");
    if (thief_got != 0) {
      mc::check(thief_val == 7 || thief_val == 9,
                "a steal can only yield a really-pushed value");
    }
  });
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

#else
TEST(McEngineSteal, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
