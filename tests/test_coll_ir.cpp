// The collective schedule compiler: every algorithm against a serial
// reference across rank counts (including non-pow2), dtypes, ops, counts,
// and placement; cache behavior (hit counters, distinct keys, capacity
// rejects); the zero-allocation steady state the per-comm cache promises;
// persistent handles; and the user-level Builder path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include "mpx/base/pool.hpp"
#include "mpx/coll/coll.hpp"
#include "mpx/coll/ir.hpp"
#include "test_util.hpp"

using namespace mpx;
namespace ir = mpx::coll::ir;

namespace {

/// Deterministic pseudo-random input: rank r's contribution at index i.
template <typename T>
T input_at(int rank, std::size_t i, std::uint64_t salt) {
  std::uint64_t x = (static_cast<std::uint64_t>(rank) + 1) * 0x9E3779B97F4A7C15u;
  x ^= (i + salt + 1) * 0xBF58476D1CE4E5B9u;
  x ^= x >> 29;
  return static_cast<T>(static_cast<std::int64_t>(x % 2001) - 1000);
}

template <typename T>
T apply_op(dtype::ReduceOp op, T a, T b) {
  switch (op) {
    case dtype::ReduceOp::sum:
      return static_cast<T>(a + b);
    case dtype::ReduceOp::max:
      return a > b ? a : b;
    case dtype::ReduceOp::min:
      return a < b ? a : b;
    default:
      return a;
  }
}

/// Serial reference: op over every rank's contribution at index i.
template <typename T>
T expected_at(int nranks, std::size_t i, dtype::ReduceOp op,
              std::uint64_t salt) {
  T acc = input_at<T>(0, i, salt);
  for (int r = 1; r < nranks; ++r) {
    acc = apply_op(op, acc, input_at<T>(r, i, salt));
  }
  return acc;
}

void drive(Request r, const Comm& c) { wait_on_stream(r, c.stream()); }

std::uint64_t total_pool_misses() {
  std::uint64_t n = 0;
  for (const base::NamedPoolStats& p : base::pool_registry_snapshot()) {
    n += p.stats.misses;
  }
  return n;
}

}  // namespace

// ---- property sweep: every algorithm vs the serial reference ---------------

struct IrParam {
  int nranks;
  std::size_t count;
};

class CollIrSweep : public ::testing::TestWithParam<IrParam> {};

TEST_P(CollIrSweep, AllreduceAllAlgosMatchSerial) {
  const IrParam p = GetParam();
  WorldConfig cfg;
  cfg.nranks = p.nranks;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const auto dt = dtype::Datatype::int64();
    for (const ir::Algo algo :
         {ir::Algo::rd, ir::Algo::ring, ir::Algo::rsag}) {
      for (const dtype::ReduceOp op :
           {dtype::ReduceOp::sum, dtype::ReduceOp::max}) {
        const auto salt = static_cast<std::uint64_t>(algo) * 131 +
                          static_cast<std::uint64_t>(op);
        // Out-of-place.
        std::vector<std::int64_t> in(p.count), out(p.count, -1);
        for (std::size_t i = 0; i < p.count; ++i) {
          in[i] = input_at<std::int64_t>(rank, i, salt);
        }
        drive(ir::iallreduce(in.data(), out.data(), p.count, dt, op, c,
                             ir::Opts{algo}),
              c);
        for (std::size_t i = 0; i < p.count; ++i) {
          ASSERT_EQ(out[i],
                    expected_at<std::int64_t>(p.nranks, i, op, salt))
              << "algo=" << ir::to_string(algo) << " i=" << i;
        }
        // In-place: the contribution starts in recvbuf.
        std::vector<std::int64_t> acc(p.count);
        for (std::size_t i = 0; i < p.count; ++i) {
          acc[i] = input_at<std::int64_t>(rank, i, salt);
        }
        drive(ir::iallreduce(coll::in_place, acc.data(), p.count, dt, op, c,
                             ir::Opts{algo}),
              c);
        for (std::size_t i = 0; i < p.count; ++i) {
          ASSERT_EQ(acc[i],
                    expected_at<std::int64_t>(p.nranks, i, op, salt))
              << "in-place algo=" << ir::to_string(algo) << " i=" << i;
        }
      }
    }
    w->finalize_rank(rank);
  });
}

TEST_P(CollIrSweep, AllreduceFloatMatchesSerialWithinTolerance) {
  const IrParam p = GetParam();
  WorldConfig cfg;
  cfg.nranks = p.nranks;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    for (const ir::Algo algo :
         {ir::Algo::rd, ir::Algo::ring, ir::Algo::rsag}) {
      std::vector<double> in(p.count), out(p.count);
      for (std::size_t i = 0; i < p.count; ++i) {
        in[i] = input_at<double>(rank, i, 7) / 16.0;
      }
      drive(ir::iallreduce(in.data(), out.data(), p.count,
                           dtype::Datatype::float64(), dtype::ReduceOp::sum,
                           c, ir::Opts{algo}),
            c);
      for (std::size_t i = 0; i < p.count; ++i) {
        const double want =
            expected_at<double>(p.nranks, i, dtype::ReduceOp::sum, 7) / 16.0;
        // Different algorithms associate the sum differently.
        ASSERT_NEAR(out[i], want, 1e-9 * (std::abs(want) + 1.0))
            << "algo=" << ir::to_string(algo) << " i=" << i;
      }
    }
    w->finalize_rank(rank);
  });
}

TEST_P(CollIrSweep, BcastAndReduceAllAlgosMatchSerial) {
  const IrParam p = GetParam();
  WorldConfig cfg;
  cfg.nranks = p.nranks;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const auto dt = dtype::Datatype::int32();
    for (const int root : {0, p.nranks / 2, p.nranks - 1}) {
      for (const ir::Algo algo : {ir::Algo::knomial, ir::Algo::scatter_ag}) {
        std::vector<std::int32_t> buf(p.count, -1);
        if (rank == root) {
          for (std::size_t i = 0; i < p.count; ++i) {
            buf[i] = input_at<std::int32_t>(root, i, 11);
          }
        }
        drive(ir::ibcast(buf.data(), p.count, dt, root, c, ir::Opts{algo}),
              c);
        for (std::size_t i = 0; i < p.count; ++i) {
          ASSERT_EQ(buf[i], input_at<std::int32_t>(root, i, 11))
              << "bcast algo=" << ir::to_string(algo) << " root=" << root;
        }
      }
      // Reduce (knomial), out-of-place everywhere + in-place at the root.
      std::vector<std::int32_t> in(p.count), out(p.count, 0);
      for (std::size_t i = 0; i < p.count; ++i) {
        in[i] = input_at<std::int32_t>(rank, i, 13);
      }
      drive(ir::ireduce(in.data(), rank == root ? out.data() : nullptr,
                        p.count, dt, dtype::ReduceOp::sum, root, c,
                        ir::Opts{ir::Algo::knomial}),
            c);
      if (rank == root) {
        for (std::size_t i = 0; i < p.count; ++i) {
          ASSERT_EQ(out[i], expected_at<std::int32_t>(
                                p.nranks, i, dtype::ReduceOp::sum, 13))
              << "reduce root=" << root << " i=" << i;
        }
        std::vector<std::int32_t> acc(p.count);
        for (std::size_t i = 0; i < p.count; ++i) {
          acc[i] = input_at<std::int32_t>(rank, i, 17);
        }
        drive(ir::ireduce(coll::in_place, acc.data(), p.count, dt,
                          dtype::ReduceOp::sum, root, c,
                          ir::Opts{ir::Algo::knomial}),
              c);
        for (std::size_t i = 0; i < p.count; ++i) {
          ASSERT_EQ(acc[i], expected_at<std::int32_t>(
                                p.nranks, i, dtype::ReduceOp::sum, 17));
        }
      } else {
        std::vector<std::int32_t> acc(p.count);
        for (std::size_t i = 0; i < p.count; ++i) {
          acc[i] = input_at<std::int32_t>(rank, i, 17);
        }
        drive(ir::ireduce(acc.data(), nullptr, p.count, dt,
                          dtype::ReduceOp::sum, root, c,
                          ir::Opts{ir::Algo::knomial}),
              c);
      }
    }
    w->finalize_rank(rank);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CollIrSweep,
    ::testing::Values(IrParam{2, 17}, IrParam{3, 1}, IrParam{3, 100},
                      IrParam{4, 64}, IrParam{5, 3}, IrParam{5, 1000},
                      IrParam{7, 129}, IrParam{8, 1024}),
    [](const ::testing::TestParamInfo<IrParam>& i) {
      return "p" + std::to_string(i.param.nranks) + "_n" +
             std::to_string(i.param.count);
    });

// Tag-offset reuse: a ring allreduce on a large comm issues more than 64
// messages per (peer, direction), forcing the compiler's tag-wrap
// serialization edges. 34 ranks -> 2*33 same-peer messages per side.
TEST(CollIrTagReuse, LargeRingAllreduce) {
  WorldConfig cfg;
  cfg.nranks = 34;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::vector<std::int32_t> in(40), out(40);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = input_at<std::int32_t>(rank, i, 23);
    }
    drive(ir::iallreduce(in.data(), out.data(), in.size(),
                         dtype::Datatype::int32(), dtype::ReduceOp::sum, c,
                         ir::Opts{ir::Algo::ring}),
          c);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i],
                expected_at<std::int32_t>(34, i, dtype::ReduceOp::sum, 23));
    }
    w->finalize_rank(rank);
  });
}

// ---- cache behavior --------------------------------------------------------

TEST(CollIrCache, HitCountersAndDistinctKeys) {
  WorldConfig cfg;
  cfg.nranks = 4;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const auto dt = dtype::Datatype::int32();
    std::vector<std::int32_t> in(16384, rank), out(16384);
    const auto ar = [&](std::size_t n, ir::Algo a) {
      drive(ir::iallreduce(in.data(), out.data(), n, dt,
                           dtype::ReduceOp::sum, c, ir::Opts{a}),
            c);
    };
    ar(64, ir::Algo::rd);  // 4 compiles (one key per rank)
    coll::barrier(c);
    if (rank == 0) {
      const ir::CacheStats s = ir::cache_stats(c);
      EXPECT_EQ(s.entries, 4u);
      EXPECT_EQ(s.misses, 4u);
      EXPECT_EQ(s.hits, 0u);
    }
    coll::barrier(c);
    ar(64, ir::Algo::rd);   // same keys: pure hits
    ar(100, ir::Algo::rd);  // same count class (400 B vs 256 B): still hits
    coll::barrier(c);
    if (rank == 0) {
      const ir::CacheStats s = ir::cache_stats(c);
      EXPECT_EQ(s.entries, 4u);
      EXPECT_EQ(s.misses, 4u);
      EXPECT_EQ(s.hits, 8u);
    }
    coll::barrier(c);
    ar(64, ir::Algo::ring);    // forced algo: its own key
    ar(16384, ir::Algo::rd);   // different count class: its own key
    coll::barrier(c);
    if (rank == 0) {
      const ir::CacheStats s = ir::cache_stats(c);
      EXPECT_EQ(s.entries, 12u);
      EXPECT_EQ(s.misses, 12u);
    }
    w->finalize_rank(rank);
  });
}

TEST(CollIrCache, CapacityRejectsStillCorrect) {
  ::setenv("MPX_COLL_CACHE_CAP", "2", 1);
  WorldConfig cfg;
  cfg.nranks = 4;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::vector<std::int64_t> in(32), out(32);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = input_at<std::int64_t>(rank, i, 29);
    }
    for (int iter = 0; iter < 3; ++iter) {
      drive(ir::iallreduce(in.data(), out.data(), in.size(),
                           dtype::Datatype::int64(), dtype::ReduceOp::sum, c),
            c);
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i],
                  expected_at<std::int64_t>(4, i, dtype::ReduceOp::sum, 29));
      }
    }
    coll::barrier(c);
    if (rank == 0) {
      const ir::CacheStats s = ir::cache_stats(c);
      EXPECT_EQ(s.entries, 2u);    // table capped
      EXPECT_GE(s.rejects, 2u);    // the other ranks' keys bounced
    }
    w->finalize_rank(rank);
  });
  ::unsetenv("MPX_COLL_CACHE_CAP");
}

// ---- steady-state allocation -----------------------------------------------

// The acceptance bar for the cache: after warmup, a repeated cached
// collective touches only pooled storage. Every pooled resource (request
// impls, payload buffers, executor cursors, cursor state blocks) reports
// misses to the pool registry, and the schedule's scratch recycler reports
// through cache_stats — all deltas must be zero in steady state. The pool
// high-water mark depends on thread interleaving, so a fixed warm-up count
// can undershoot it under machine load; miss growth is monotone and bounded
// by the working set, so a dirty measurement window is folded into warm-up
// and re-sampled. A real allocation-per-op dirties every window.
TEST(CollIrAlloc, SteadyStateTouchesNoAllocator) {
  if (base::pool_passthrough()) {
    GTEST_SKIP() << "pools disabled (asan or MPX_POOL_DISABLE)";
  }
  WorldConfig cfg;
  cfg.nranks = 4;
  auto w = World::create(cfg);
  bool steady = false;  // written by rank 0 between barriers, read by all
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::vector<std::int64_t> in(1024, rank), out(1024);
    const auto ar = [&] {
      drive(ir::iallreduce(in.data(), out.data(), in.size(),
                           dtype::Datatype::int64(), dtype::ReduceOp::sum, c),
            c);
    };
    std::uint64_t miss0 = 0, scratch_miss0 = 0;
    for (int i = 0; i < 8; ++i) ar();  // warm every pool
    for (int attempt = 0; attempt < 4 && !steady; ++attempt) {
      coll::barrier(c);
      coll::barrier(c);  // quiesce in-flight completions before sampling
      if (rank == 0) {
        miss0 = total_pool_misses();
        scratch_miss0 = ir::cache_stats(c).scratch_misses;
      }
      coll::barrier(c);
      for (int i = 0; i < 64; ++i) ar();
      coll::barrier(c);
      coll::barrier(c);
      if (rank == 0) {
        steady = total_pool_misses() == miss0 &&
                 ir::cache_stats(c).scratch_misses == scratch_miss0;
      }
      coll::barrier(c);
    }
    if (rank == 0) {
      EXPECT_TRUE(steady)
          << "steady-state cached allreduce hit the allocator in every "
             "measurement window";
      EXPECT_EQ(ir::cache_stats(c).rejects, 0u);
    }
    w->finalize_rank(rank);
  });
}

// ---- persistent handles ----------------------------------------------------

TEST(CollIrPersistent, CyclesRearmPinnedState) {
  WorldConfig cfg;
  cfg.nranks = 5;  // non-pow2: the persistent path folds too
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::vector<std::int64_t> in(256), out(256);
    Request req =
        coll::allreduce_init(in.data(), out.data(), in.size(),
                             dtype::Datatype::int64(), dtype::ReduceOp::sum, c);
    for (int cycle = 0; cycle < 12; ++cycle) {
      const auto salt = static_cast<std::uint64_t>(cycle) * 1000 + 37;
      for (std::size_t i = 0; i < in.size(); ++i) {
        in[i] = input_at<std::int64_t>(rank, i, salt);
      }
      mpx::start(req);
      req.wait();
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], expected_at<std::int64_t>(5, i,
                                                    dtype::ReduceOp::sum,
                                                    salt))
            << "cycle=" << cycle << " i=" << i;
      }
    }
    w->finalize_rank(rank);
  });
}

TEST(CollIrPersistent, SteadyCyclesTouchNoAllocator) {
  if (base::pool_passthrough()) {
    GTEST_SKIP() << "pools disabled (asan or MPX_POOL_DISABLE)";
  }
  WorldConfig cfg;
  cfg.nranks = 4;
  auto w = World::create(cfg);
  bool steady = false;  // written by rank 0 between barriers, read by all
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    std::vector<std::int64_t> in(2048, rank + 1), out(2048);
    Request req =
        coll::allreduce_init(in.data(), out.data(), in.size(),
                             dtype::Datatype::int64(), dtype::ReduceOp::sum, c);
    const auto cycle = [&] {
      mpx::start(req);
      req.wait();
    };
    std::uint64_t miss0 = 0;
    for (int i = 0; i < 8; ++i) cycle();
    // Same dirty-window retry as CollIrAlloc above: the pool high-water
    // mark is interleaving-dependent, the miss counter is monotone.
    for (int attempt = 0; attempt < 4 && !steady; ++attempt) {
      coll::barrier(c);
      coll::barrier(c);
      if (rank == 0) miss0 = total_pool_misses();
      coll::barrier(c);
      for (int i = 0; i < 64; ++i) cycle();
      coll::barrier(c);
      coll::barrier(c);
      if (rank == 0) steady = total_pool_misses() == miss0;
      coll::barrier(c);
    }
    if (rank == 0) {
      EXPECT_TRUE(steady)
          << "persistent cycle hit the allocator in every measurement window";
    }
    w->finalize_rank(rank);
  });
}

// ---- user-level schedules (Builder is public) -------------------------------

// A hand-built one-step neighbor rotation executes through the same cursor
// machinery as compiled schedules (the paper's §5.3 user-schedule shape).
TEST(CollIrBuilder, HandBuiltScheduleExecutes) {
  WorldConfig cfg;
  cfg.nranks = 4;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    ir::Builder b(ir::CollKind::bcast, dtype::Datatype::int32(),
                  dtype::ReduceOp::sum, /*in_place=*/false, rank, 4);
    b.send(ir::send_buf(ir::full()), (rank + 1) % 4);
    b.recv(ir::recv_buf(ir::full()), (rank + 3) % 4);
    ir::SchedPtr s = b.finish(ir::Algo::ring, 0, 64);
    std::vector<std::int32_t> in(64, rank * 100), out(64, -1);
    drive(ir::launch(s, in.data(), out.data(), in.size(), c), c);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], ((rank + 3) % 4) * 100);
    }
    w->finalize_rank(rank);
  });
}

// ---- selection and eligibility ---------------------------------------------

TEST(CollIrSelect, DeterministicAcrossRanksAndForcedAlgosStick) {
  const net::CostModel net{};
  for (const std::size_t count : {2ul, 1024ul, 262144ul}) {
    ir::SchedPtr first;
    for (int r = 0; r < 6; ++r) {
      ir::SchedPtr s =
          ir::compile(ir::CollKind::allreduce, count,
                      dtype::Datatype::int32(), dtype::ReduceOp::sum,
                      /*in_place=*/false, 0, r, 6, net);
      ASSERT_GE(s->max_count, count);
      if (first == nullptr) {
        first = s;
      } else {
        EXPECT_EQ(s->algo, first->algo)
            << "ranks disagree on algorithm for count=" << count;
      }
    }
  }
  ir::SchedPtr forced =
      ir::compile(ir::CollKind::allreduce, 4, dtype::Datatype::int32(),
                  dtype::ReduceOp::sum, false, 0, 0, 6, net, ir::Algo::ring);
  EXPECT_EQ(forced->algo, ir::Algo::ring);
}

TEST(CollIrSelect, NonContiguousFallsBackToRoundPath) {
  EXPECT_FALSE(ir::eligible(
      dtype::Datatype::vector(4, 1, 2, dtype::Datatype::int32())));
  EXPECT_TRUE(ir::eligible(dtype::Datatype::int64()));
  EXPECT_TRUE(ir::eligible(
      dtype::Datatype::contiguous(4, dtype::Datatype::int32())));
  // A non-contiguous bcast still works end to end via the legacy builders.
  WorldConfig cfg;
  cfg.nranks = 3;
  auto w = World::create(cfg);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const auto vec =
        dtype::Datatype::vector(4, 1, 2, dtype::Datatype::int32());
    std::vector<std::int32_t> buf(8, rank == 1 ? 5 : -1);
    coll::bcast(buf.data(), 1, vec, 1, c);
    for (std::size_t i = 0; i < 8; i += 2) ASSERT_EQ(buf[i], 5);
    w->finalize_rank(rank);
  });
}
