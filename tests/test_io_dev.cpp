// Tests for the two §2.6 "other async subsystems" built on the extension
// APIs: simulated storage I/O (mpx::io) and device copies (mpx::dev), plus
// the GPU-pipeline pattern combining them with messaging in one task graph.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpx/dev/device.hpp"
#include "mpx/io/file.hpp"
#include "mpx/task/graph.hpp"
#include "test_util.hpp"

using namespace mpx;

namespace {

WorldConfig vclock_cfg(int n = 1) {
  WorldConfig cfg;
  cfg.nranks = n;
  cfg.use_virtual_clock = true;
  return cfg;
}

std::vector<std::byte> bytes_iota(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i & 0xFF);
  return v;
}

}  // namespace

TEST(IoFile, WriteCompletionIsTimeAndProgressGated) {
  auto w = World::create(vclock_cfg());
  auto disk = std::make_shared<io::SimDisk>(*w);
  Stream s = w->null_stream(0);
  io::File f = io::File::open(disk, "ckpt", s);

  const auto data = bytes_iota(4096);
  Request r = f.iwrite_at(0, data);
  EXPECT_FALSE(r.is_complete());
  stream_progress(s);                       // too early for the device
  EXPECT_FALSE(r.is_complete());
  EXPECT_EQ(disk->writes_completed(), 0u);  // not applied yet

  w->virtual_clock()->advance(1.0);
  EXPECT_FALSE(r.is_complete());  // completion exists; needs observation
  stream_progress(s);
  ASSERT_TRUE(r.is_complete());
  EXPECT_EQ(r.status().count_bytes, 4096u);
  EXPECT_EQ(disk->raw_read("ckpt", 0, 4096), data);
}

TEST(IoFile, WriteBufferReusableImmediately) {
  auto w = World::create(vclock_cfg());
  auto disk = std::make_shared<io::SimDisk>(*w);
  Stream s = w->null_stream(0);
  io::File f = io::File::open(disk, "obj", s);

  auto data = bytes_iota(128);
  Request r = f.iwrite_at(0, data);
  std::fill(data.begin(), data.end(), std::byte{0xFF});  // clobber: legal
  w->virtual_clock()->advance(1.0);
  r.wait();
  EXPECT_EQ(f.size(), 128u);
  EXPECT_EQ(disk->raw_read("obj", 0, 128), bytes_iota(128));  // captured copy
}

TEST(IoFile, ReadRoundTripAndShortRead) {
  auto w = World::create(vclock_cfg());
  auto disk = std::make_shared<io::SimDisk>(*w);
  Stream s = w->null_stream(0);
  io::File f = io::File::open(disk, "data", s);
  disk->raw_write("data", 0, bytes_iota(100));

  std::vector<std::byte> out(64, std::byte{0});
  Request r = f.iread_at(10, out);
  w->virtual_clock()->advance(1.0);
  EXPECT_EQ(r.wait().count_bytes, 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(out[i], static_cast<std::byte>((i + 10) & 0xFF));
  }

  // Reading past EOF yields a short count.
  std::vector<std::byte> tail(64, std::byte{0});
  Request r2 = f.iread_at(90, tail);
  w->virtual_clock()->advance(1.0);
  EXPECT_EQ(r2.wait().count_bytes, 10u);
}

TEST(IoFile, OverlappedOperationsOnOneStream) {
  // Several writes in flight at once; all collate under one progress loop.
  auto w = World::create(WorldConfig{.nranks = 1});  // steady clock
  auto disk = std::make_shared<io::SimDisk>(*w);
  Stream s = w->null_stream(0);
  io::File f = io::File::open(disk, "multi", s);

  std::vector<Request> reqs;
  std::vector<std::vector<std::byte>> bufs;
  for (int i = 0; i < 8; ++i) {
    bufs.push_back(std::vector<std::byte>(100, static_cast<std::byte>(i)));
    reqs.push_back(f.iwrite_at(static_cast<std::uint64_t>(i) * 100, bufs.back()));
  }
  wait_all(reqs);
  EXPECT_EQ(disk->writes_completed(), 8u);
  for (int i = 0; i < 8; ++i) {
    const auto got = disk->raw_read("multi", static_cast<std::uint64_t>(i) * 100, 100);
    for (auto b : got) ASSERT_EQ(b, static_cast<std::byte>(i));
  }
  w->finalize_rank(0);
}

TEST(IoFile, CollectiveWriteReadAll) {
  auto w = World::create(WorldConfig{.nranks = 4});
  auto disk = std::make_shared<io::SimDisk>(*w);
  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    io::File f = io::File::open(disk, "shared", c.stream());
    std::vector<std::byte> block(64, static_cast<std::byte>(rank + 1));
    f.write_at_all(c, static_cast<std::uint64_t>(rank) * 64, block);

    // Every rank reads the whole file; all writers are visible.
    std::vector<std::byte> all(4 * 64, std::byte{0});
    f.read_at_all(c, 0, all);
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(all[static_cast<std::size_t>(r * 64 + i)],
                  static_cast<std::byte>(r + 1));
      }
    }
    w->finalize_rank(rank);
  });
}

TEST(Device, CopyVisibilityGatedByCompletion) {
  auto w = World::create(vclock_cfg());
  dev::SimDevice gpu(*w);
  Stream s = w->null_stream(0);
  dev::DeviceBuffer d = gpu.alloc(256);

  const auto src = bytes_iota(256);
  Request up = gpu.imemcpy_h2d(d, 0, src, s);
  std::vector<std::byte> back(256, std::byte{0xAA});
  Request down = gpu.imemcpy_d2h(back, d, 0, s);

  stream_progress(s);
  EXPECT_FALSE(up.is_complete());
  EXPECT_EQ(back[0], std::byte{0xAA});  // nothing moved yet

  w->virtual_clock()->advance(1.0);
  while (!up.is_complete() || !down.is_complete()) stream_progress(s);
  EXPECT_EQ(back, src);  // DMA queue serialized h2d before d2h
  EXPECT_EQ(gpu.copies_completed(), 2u);
}

TEST(Device, DmaQueueSerializesInIssueOrder) {
  auto w = World::create(vclock_cfg());
  dev::SimDevice gpu(*w);
  Stream s = w->null_stream(0);
  dev::DeviceBuffer a = gpu.alloc(64);
  dev::DeviceBuffer b = gpu.alloc(64);

  const auto src = bytes_iota(64);
  std::vector<std::byte> out(64, std::byte{0});
  // h2d(a) -> d2d(a->b) -> d2h(b): correctness requires strict ordering.
  Request r1 = gpu.imemcpy_h2d(a, 0, src, s);
  Request r2 = gpu.imemcpy_d2d(b, 0, a, 0, 64, s);
  Request r3 = gpu.imemcpy_d2h(out, b, 0, s);
  w->virtual_clock()->advance(1.0);
  Request reqs[] = {r1, r2, r3};
  wait_all(reqs);
  EXPECT_EQ(out, src);
}

TEST(Device, RangeChecks) {
  auto w = World::create(vclock_cfg());
  dev::SimDevice gpu(*w);
  Stream s = w->null_stream(0);
  dev::DeviceBuffer d = gpu.alloc(16);
  std::vector<std::byte> big(32);
  EXPECT_THROW(gpu.imemcpy_h2d(d, 0, big, s), UsageError);
  EXPECT_THROW(gpu.imemcpy_d2h(big, d, 0, s), UsageError);
  EXPECT_THROW(gpu.imemcpy_d2d(d, 8, d, 0, 16, s), UsageError);
}

TEST(Pipeline, GpuToWireToDiskGraph) {
  // The paper's Fig. 6 scheme across THREE async subsystems: rank 0 moves a
  // buffer device->host then sends it; rank 1 receives it and checkpoints
  // it to disk. One task graph per rank; one progress loop drives device
  // copies, messaging, and storage together.
  WorldConfig cfg;
  cfg.nranks = 2;
  auto w = World::create(cfg);
  auto disk = std::make_shared<io::SimDisk>(*w);
  dev::SimDevice gpu(*w);

  const auto payload = bytes_iota(8192);
  // Seed device memory (blocking-ish: drive progress until the seed lands).
  dev::DeviceBuffer dbuf = gpu.alloc(8192);
  {
    Request seed = gpu.imemcpy_h2d(dbuf, 0, payload, w->null_stream(0));
    seed.wait();
  }

  mpx_test::run_ranks(*w, [&](int rank) {
    Comm c = w->comm_world(rank);
    const Stream s = c.stream();
    task::TaskGraph g;
    if (rank == 0) {
      std::vector<std::byte> host(8192);
      Request d2h, send;
      auto n0 = g.add([&, started = false]() mutable {
        if (!started) {
          d2h = gpu.imemcpy_d2h(host, dbuf, 0, s);
          started = true;
        }
        return d2h.is_complete() ? AsyncResult::done : AsyncResult::pending;
      });
      g.add(
          [&, started = false]() mutable {
            if (!started) {
              send = c.isend(host.data(), host.size(),
                             dtype::Datatype::byte(), 1, 0);
              started = true;
            }
            return send.is_complete() ? AsyncResult::done
                                      : AsyncResult::pending;
          },
          {n0});
      g.launch(s);
      g.wait(s);
    } else {
      std::vector<std::byte> host(8192);
      io::File f = io::File::open(disk, "gpu_ckpt", s);
      Request recv, write;
      auto n0 = g.add([&, started = false]() mutable {
        if (!started) {
          recv = c.irecv(host.data(), host.size(), dtype::Datatype::byte(),
                         0, 0);
          started = true;
        }
        return recv.is_complete() ? AsyncResult::done : AsyncResult::pending;
      });
      g.add(
          [&, started = false]() mutable {
            if (!started) {
              write = f.iwrite_at(0, host);
              started = true;
            }
            return write.is_complete() ? AsyncResult::done
                                       : AsyncResult::pending;
          },
          {n0});
      g.launch(s);
      g.wait(s);
    }
    w->finalize_rank(rank);
  });
  EXPECT_EQ(disk->raw_read("gpu_ckpt", 0, 8192), payload);
}
