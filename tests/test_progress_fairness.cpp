// Fair stage scheduling (MPX_PROGRESS_FAIR): the rotation cursor bounds how
// long an always-productive early stage can starve later ones.
//
// The hostile workload is a user async hook that reports progress on every
// poll (it completes and respawns itself, so the async stage's early-exit
// fires each call). Under the seed's fixed scan-from-the-top order that
// starves every stage behind it — shm delivery included — indefinitely.
// With fair rotation (the default) the cursor resumes the scan after the
// productive stage, so the transport stage is polled within one extra
// progress call and a pending receive completes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "test_util.hpp"

using namespace mpx;

namespace {

struct HostileState {
  std::atomic<int>* rounds;
  std::atomic<bool>* stop;
};

/// Always-productive hook: completes (progress!) and respawns itself until
/// told to stop. Every poll of the async stage reports made != 0.
AsyncResult hostile_poll(AsyncThing& t) {
  auto* st = static_cast<HostileState*>(t.state());
  st->rounds->fetch_add(1, std::memory_order_relaxed);
  if (!st->stop->load(std::memory_order_relaxed)) {
    t.spawn(&hostile_poll, new HostileState{*st}, t.stream(),
            [](void* p) { delete static_cast<HostileState*>(p); });
  }
  delete st;  // done contract: poll_fn releases its own state
  return AsyncResult::done;
}

struct Harness {
  std::shared_ptr<World> w;
  std::atomic<int> rounds{0};
  std::atomic<bool> stop{false};

  explicit Harness(bool fair) {
    WorldConfig cfg{.nranks = 2};
    cfg.progress_fair = fair;
    w = World::create(cfg);
    async_start(&hostile_poll, new HostileState{&rounds, &stop},
                w->null_stream(1),
                [](void* p) { delete static_cast<HostileState*>(p); });
    stream_progress(w->null_stream(1));  // register + first hostile round
  }

  void drain_and_finalize() {
    stop.store(true, std::memory_order_relaxed);
    stream_progress(w->null_stream(1));  // final round, no respawn
    w->finalize_rank(0);
    w->finalize_rank(1);
  }
};

}  // namespace

TEST(ProgressFairness, TransportPolledDespiteProductiveHook) {
  Harness h(/*fair=*/true);
  std::int32_t val = 42, out = 0;
  Request r = h.w->comm_world(1).irecv(&out, 1, dtype::Datatype::int32(),
                                       /*src=*/0, /*tag=*/3);
  Request s = h.w->comm_world(0).isend(&val, 1, dtype::Datatype::int32(),
                                       /*dst=*/1, /*tag=*/3);
  EXPECT_TRUE(s.is_complete());  // shm eager: locally complete at initiation

  // Fairness bound: the hostile hook hits once, the cursor moves past the
  // async stage, and the shm stage delivers on the next scan. A handful of
  // calls is a generous ceiling; the seed order never completes this.
  int calls = 0;
  while (!r.is_complete()) {
    stream_progress(h.w->null_stream(1));
    ASSERT_LT(++calls, 16) << "fair rotation failed to reach the transport";
  }
  EXPECT_EQ(out, 42);
  EXPECT_GE(h.rounds.load(), 1);
  h.drain_and_finalize();
}

TEST(ProgressFairness, FixedOrderStarvesTransport) {
  // Control experiment: with MPX_PROGRESS_FAIR off the same workload never
  // reaches the shm stage — documents exactly the failure mode rotation
  // removes (and guards the cvar's off position still restoring seed order).
  Harness h(/*fair=*/false);
  std::int32_t val = 7, out = 0;
  Request r = h.w->comm_world(1).irecv(&out, 1, dtype::Datatype::int32(),
                                       /*src=*/0, /*tag=*/4);
  Request s = h.w->comm_world(0).isend(&val, 1, dtype::Datatype::int32(),
                                       /*dst=*/1, /*tag=*/4);
  EXPECT_TRUE(s.is_complete());

  for (int i = 0; i < 100; ++i) stream_progress(h.w->null_stream(1));
  EXPECT_FALSE(r.is_complete()) << "fixed order unexpectedly fair";

  // Stop the hostile hook; delivery resumes and the data is intact.
  h.stop.store(true, std::memory_order_relaxed);
  while (!r.is_complete()) stream_progress(h.w->null_stream(1));
  EXPECT_EQ(out, 7);
  h.w->finalize_rank(0);
  h.w->finalize_rank(1);
}

TEST(ProgressFairness, StageTableCountsHostileRounds) {
  // Observability satellite: the per-source counters must attribute the
  // hostile hits to the async stage and the delivery to the shm stage.
  Harness h(/*fair=*/true);
  std::int32_t val = 1, out = 0;
  Request r = h.w->comm_world(1).irecv(&out, 1, dtype::Datatype::int32(),
                                       /*src=*/0, /*tag=*/5);
  (void)h.w->comm_world(0).isend(&val, 1, dtype::Datatype::int32(),
                                 /*dst=*/1, /*tag=*/5);
  while (!r.is_complete()) stream_progress(h.w->null_stream(1));

  std::uint64_t async_hits = 0, shm_hits = 0;
  for (const auto& st : h.w->vci_stage_table(1, 0)) {
    if (st.name == "async") async_hits = st.hits;
    if (st.name == "shm") shm_hits = st.hits;
  }
  EXPECT_GE(async_hits, 1u);
  EXPECT_GE(shm_hits, 1u);
  h.drain_and_finalize();
}
