// Out-of-tree extensibility proof: a toy progress source and a toy loopback
// transport built against PUBLIC headers only (mpx/mpx.hpp), registered
// through the WorldConfig::extra_sources / extra_transports hooks. No core
// header from src/ is included and no core file changes — the whole point
// of the ProgressSource registry + unified Transport interface refactor.
//
// The toy transport claims only self-pairs (src == dst), sitting ahead of
// the builtin shm/nic pair in routing order; cross-rank traffic still flows
// through shm. The toy source is a counting stage gated by progress_user.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "mpx/mpx.hpp"

using namespace mpx;

namespace {

/// Counting no-op stage: proves a user stage is compiled into every VCI's
/// pipeline and polled by plain stream_progress.
class ToySource final : public core_detail::ProgressSource {
 public:
  const char* name() const override { return "toy-src"; }
  unsigned mask_bit() const override { return progress_user; }
  bool idle(core_detail::Vci&) override { return false; }
  void poll(core_detail::Vci& v, int*) override {
    if (core_detail::vci_rank(v) == 0 && core_detail::vci_id(v) == 0) {
      ++polls;
    }
  }

  static inline std::uint64_t polls = 0;  // rank-0/vci-0 polls only
};

/// Loopback carrier for self-sends. send() owns the payload, so the
/// operation is locally complete at initiation (cap_eager_local).
class ToyLoopback final : public transport::Transport {
 public:
  ToyLoopback(int nranks, int max_vcis)
      : max_vcis_(max_vcis),
        queues_(static_cast<std::size_t>(nranks) *
                static_cast<std::size_t>(max_vcis)) {}

  const char* name() const override { return "toy"; }
  unsigned caps() const override { return transport::cap_eager_local; }
  const transport::TransportLimits& limits() const override {
    return limits_;
  }
  bool reaches(int src, int dst) const override { return src == dst; }

  bool send(transport::Msg&& m, std::uint64_t) override {
    std::lock_guard<std::mutex> g(mu_);
    ++sends_;
    queues_[slot(m.h.dst_rank, m.h.dst_vci)].push_back(std::move(m));
    return true;  // payload owned: locally complete
  }

  void poll(int rank, int vci, transport::TransportSink& sink,
            int* made_progress) override {
    std::deque<transport::Msg> ready;
    {
      std::lock_guard<std::mutex> g(mu_);
      ready.swap(queues_[slot(rank, vci)]);
      delivered_ += ready.size();
    }
    for (auto& m : ready) {
      sink.on_msg(std::move(m));
      *made_progress += 1;
    }
  }

  bool idle(int rank, int vci) const override {
    std::lock_guard<std::mutex> g(mu_);
    return queues_[slot(rank, vci)].empty();
  }

  transport::TransportStats transport_stats() const override {
    std::lock_guard<std::mutex> g(mu_);
    transport::TransportStats st;
    st.sends = sends_;
    st.delivered = delivered_;
    return st;
  }

 private:
  std::size_t slot(int rank, int vci) const {
    return static_cast<std::size_t>(rank) *
               static_cast<std::size_t>(max_vcis_) +
           static_cast<std::size_t>(vci);
  }

  int max_vcis_;
  transport::TransportLimits limits_;
  mutable std::mutex mu_;
  std::vector<std::deque<transport::Msg>> queues_;
  std::uint64_t sends_ = 0;
  std::uint64_t delivered_ = 0;
};

std::shared_ptr<World> make_toy_world(int nranks) {
  WorldConfig cfg{.nranks = nranks};
  cfg.extra_sources.push_back([](World&) {
    return std::make_unique<ToySource>();
  });
  cfg.extra_transports.push_back([](World& w) {
    return std::make_unique<ToyLoopback>(w.config().nranks,
                                         w.config().max_vcis);
  });
  return World::create(cfg);
}

}  // namespace

TEST(ToyTransport, SelfSendRoutedThroughToyBackend) {
  auto w = make_toy_world(2);
  std::vector<std::int32_t> src(64), dst(64, 0);
  for (int i = 0; i < 64; ++i) src[static_cast<std::size_t>(i)] = i * 3;

  Comm c0 = w->comm_world(0);
  Request r = c0.irecv(dst.data(), dst.size(), dtype::Datatype::int32(),
                       /*src=*/0, /*tag=*/9);
  Request s = c0.isend(src.data(), src.size(), dtype::Datatype::int32(),
                       /*dst=*/0, /*tag=*/9);
  EXPECT_TRUE(s.is_complete());  // toy owns the payload at send()
  while (!r.is_complete()) stream_progress(w->null_stream(0));
  EXPECT_EQ(dst, src);

  transport::Transport* toy = w->find_transport("toy");
  ASSERT_NE(toy, nullptr);
  EXPECT_GE(toy->transport_stats().sends, 1u);
  EXPECT_GE(toy->transport_stats().delivered, 1u);
  EXPECT_EQ(&w->route(0, 0), toy);  // extras precede builtins in routing
}

TEST(ToyTransport, CrossRankTrafficStillUsesShm) {
  auto w = make_toy_world(2);
  std::int32_t v = 11, out = 0;
  Request r = w->comm_world(1).irecv(&out, 1, dtype::Datatype::int32(),
                                     /*src=*/0, /*tag=*/1);
  (void)w->comm_world(0).isend(&v, 1, dtype::Datatype::int32(), /*dst=*/1,
                               /*tag=*/1);
  while (!r.is_complete()) stream_progress(w->null_stream(1));
  EXPECT_EQ(out, 11);
  EXPECT_EQ(w->find_transport("toy")->transport_stats().delivered, 0u);
  EXPECT_NE(w->find_transport("shm"), nullptr);
}

TEST(ToyTransport, UserStageCompiledIntoPipeline) {
  ToySource::polls = 0;
  auto w = make_toy_world(1);
  for (int i = 0; i < 5; ++i) stream_progress(w->null_stream(0));
  EXPECT_GE(ToySource::polls, 5u);

  // The stage table exposes both toy stages by name, in registry order:
  // the user source before the transports, the toy transport before shm.
  const auto table = w->vci_stage_table(0, 0);
  int toy_src = -1, toy_tp = -1, shm = -1;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i].name == "toy-src") toy_src = static_cast<int>(i);
    if (table[i].name == "toy") toy_tp = static_cast<int>(i);
    if (table[i].name == "shm") shm = static_cast<int>(i);
  }
  ASSERT_GE(toy_src, 0);
  ASSERT_GE(toy_tp, 0);
  ASSERT_GE(shm, 0);
  EXPECT_LT(toy_src, toy_tp);
  EXPECT_LT(toy_tp, shm);
  EXPECT_GE(table[static_cast<std::size_t>(toy_src)].calls, 5u);
}
