// Live topology-swap tests: World::swap_topology_for_test re-routes a rank
// pair shm <-> nic mid-traffic and not one message may be lost, duplicated,
// or reordered. The functional tests pin down the observable contract
// (delivery, FIFO, epoch accounting, route table); the threaded stress
// test hammers bidirectional sequenced traffic on 4 ranks while a control
// thread swaps the hot pair every few hundred messages — the tsan preset
// runs this to check the publication protocol's ordering claims
// (topology.hpp) against the real memory model.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "mpx/base/thread.hpp"
#include "mpx/mpx.hpp"
#include "test_util.hpp"

using namespace mpx;

namespace {

/// Two nodes of two ranks: pair (0,1) is same-node (routes shm first-match)
/// and nic reaches everything, so the pair is swappable in both directions.
WorldConfig two_node_config() {
  WorldConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 2;
  return cfg;
}

}  // namespace

TEST(TopologySwap, EpochAndRouteAccounting) {
  auto w = World::create(two_node_config());
  transport::Transport* shm = w->find_transport("shm");
  transport::Transport* nic = w->find_transport("nic");
  ASSERT_NE(shm, nullptr);
  ASSERT_NE(nic, nullptr);

  EXPECT_EQ(w->topology_epoch(), 1u);  // construction-time snapshot
  EXPECT_EQ(&w->route(0, 1), shm);     // same-node: shm wins first-match

  // Each swap publishes twice: fence, then cutover.
  w->swap_topology_for_test(0, 1, *nic);
  EXPECT_EQ(w->topology_epoch(), 3u);
  EXPECT_EQ(&w->route(0, 1), nic);
  EXPECT_EQ(&w->route(1, 0), nic);
  EXPECT_EQ(&w->route(2, 3), shm) << "untouched pairs keep their carrier";
  EXPECT_EQ(&w->route(0, 2), nic);

  w->swap_topology_for_test(0, 1, *shm);
  EXPECT_EQ(w->topology_epoch(), 5u);
  EXPECT_EQ(&w->route(0, 1), shm);
  for (int r = 0; r < 4; ++r) w->finalize_rank(r);
}

TEST(TopologySwap, MidTrafficSwapLosesNothing) {
  auto w = World::create(two_node_config());
  transport::Transport* shm = w->find_transport("shm");
  transport::Transport* nic = w->find_transport("nic");
  Comm c0 = w->comm_world(0);
  Comm c1 = w->comm_world(1);

  // A spread of protocols on the same (src, dst, tag) FIFO lane: eager
  // (shm ring / nic lightweight), and rendezvous (shm LMT / nic CTS-DATA)
  // via the large payloads. First element of each payload is its sequence
  // number; single tag so MPI ordering pins the match order.
  constexpr int kMsgs = 64;
  constexpr std::size_t kBigInts = 96 * 1024;  // 384 KiB: > both eager_max
  std::vector<std::vector<std::int32_t>> sbuf(kMsgs), rbuf(kMsgs);
  std::vector<Request> sends, recvs;
  for (int i = 0; i < kMsgs; ++i) {
    const std::size_t n = (i % 8 == 7) ? kBigInts : 4;
    sbuf[i].assign(n, i);
    rbuf[i].assign(n, -1);
    recvs.push_back(c1.irecv(rbuf[i].data(), n, dtype::Datatype::int32(),
                             /*src=*/0, /*tag=*/0));
  }
  for (int i = 0; i < kMsgs; ++i) {
    sends.push_back(c0.isend(sbuf[i].data(), sbuf[i].size(),
                             dtype::Datatype::int32(), /*dst=*/1, /*tag=*/0));
  }

  // Swap with the full burst in flight (sends posted, nothing waited):
  // fence -> drain the old carrier -> cut over; then again, back.
  w->swap_topology_for_test(0, 1, *nic);
  EXPECT_EQ(&w->route(0, 1), nic);
  w->swap_topology_for_test(0, 1, *shm);

  // Single-threaded completion: wait() drives only the request's own VCI,
  // and rendezvous needs BOTH endpoints polled (CTS from the receiver,
  // DATA from the sender), so drive both sides with test() until done.
  const auto pending = [](std::vector<Request>& reqs) {
    bool any = false;
    for (Request& q : reqs) {
      if (!q.is_complete()) {
        any = true;
        q.test();
      }
    }
    return any;
  };
  while (pending(sends) | pending(recvs)) {
  }
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_EQ(rbuf[i].front(), i) << "reordered or lost at seq " << i;
    ASSERT_EQ(rbuf[i].back(), i);
    EXPECT_EQ(recvs[i].status().count_bytes,
              rbuf[i].size() * sizeof(std::int32_t));
  }
  for (int r = 0; r < 4; ++r) w->finalize_rank(r);
}

TEST(TopologySwap, StressBidirectionalTrafficWhileSwapping) {
  auto w = World::create(two_node_config());
  transport::Transport* shm = w->find_transport("shm");
  transport::Transport* nic = w->find_transport("nic");

  constexpr int kMsgs = 1200;      // per direction, per pair
  constexpr int kSwapEvery = 300;  // messages between swaps (pair 0<->1)
  constexpr int kSwaps = 4;        // kSwaps * kSwapEvery <= kMsgs: all fire
  constexpr std::size_t kBigInts = 32 * 1024;  // 128 KiB rendezvous mix

  std::atomic<int> seq01{0};  // rank 0's send counter, read by the swapper
  std::atomic<bool> done{false};

  base::ScopedThread swapper([&] {
    // Alternate the hot pair's carrier every kSwapEvery messages, racing
    // the rank threads' sends/receives/waits.
    for (int s = 0; s < kSwaps; ++s) {
      const int gate = (s + 1) * kSwapEvery;
      while (!done.load(std::memory_order_acquire) &&
             seq01.load(std::memory_order_acquire) < gate) {
        // The rank threads make their own progress; just wait for traffic.
      }
      if (done.load(std::memory_order_acquire)) break;
      w->swap_topology_for_test(0, 1, s % 2 == 0 ? *nic : *shm);
    }
  });

  mpx_test::run_ranks(*w, [&](int rank) {
    const int peer = rank ^ 1;  // 0<->1, 2<->3
    Comm comm = w->comm_world(rank);
    std::vector<std::int32_t> big_s(kBigInts), big_r(kBigInts);
    for (int i = 0; i < kMsgs; ++i) {
      std::int32_t small_s = i;
      std::int32_t small_r = -1;
      const bool big = i % 64 == 63;
      if (big) big_s.assign(kBigInts, i);
      Request r = big ? comm.irecv(big_r.data(), kBigInts,
                                   dtype::Datatype::int32(), peer, /*tag=*/0)
                      : comm.irecv(&small_r, 1, dtype::Datatype::int32(),
                                   peer, /*tag=*/0);
      Request s = big ? comm.isend(big_s.data(), kBigInts,
                                   dtype::Datatype::int32(), peer, /*tag=*/0)
                      : comm.isend(&small_s, 1, dtype::Datatype::int32(),
                                   peer, /*tag=*/0);
      if (rank == 0) seq01.fetch_add(1, std::memory_order_release);
      s.wait();
      r.wait();
      // FIFO + exact delivery: the i-th receive on this lane carries seq i.
      ASSERT_EQ(big ? big_r.front() : small_r, i)
          << "rank " << rank << " lane seq mismatch at " << i;
      if (big) {
        ASSERT_EQ(big_r.back(), i);
      }
    }
    w->finalize_rank(rank);
  });
  done.store(true, std::memory_order_release);

  // 1 (construction) + 2 per completed swap, monotone.
  EXPECT_GE(w->topology_epoch(), 1u);
  EXPECT_EQ(w->topology_epoch() % 2, 1u);
}
