// MPIX_Stream tests (§3.1, §3.2, §4.4): creation/free, progress isolation,
// stream communicators, lock-contention accounting, and progress masks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "mpx/task/deadline.hpp"
#include "test_util.hpp"

using namespace mpx;

TEST(Stream, CreateFreeAndSlotReuse) {
  WorldConfig cfg;
  cfg.nranks = 1;
  cfg.max_vcis = 4;
  auto w = World::create(cfg);
  Stream a = w->stream_create(0);
  Stream b = w->stream_create(0);
  Stream c = w->stream_create(0);
  EXPECT_EQ(a.vci(), 1);
  EXPECT_EQ(b.vci(), 2);
  EXPECT_EQ(c.vci(), 3);
  // Table exhausted.
  EXPECT_THROW(w->stream_create(0), UsageError);
  // Free one; its slot is reused.
  w->stream_free(b);
  EXPECT_FALSE(b.valid());
  Stream d = w->stream_create(0);
  EXPECT_EQ(d.vci(), 2);
}

TEST(Stream, FreeWithPendingWorkIsAnError) {
  WorldConfig cfg;
  cfg.nranks = 1;
  cfg.use_virtual_clock = true;
  auto w = World::create(cfg);
  Stream s = w->stream_create(0);
  std::atomic<int> counter{1};
  task::add_dummy_task(s, 1.0, &counter, nullptr);
  stream_progress(s);  // links the hook
  EXPECT_THROW(w->stream_free(s), UsageError);
  w->virtual_clock()->advance(2.0);
  stream_progress(s);
  EXPECT_EQ(counter.load(), 0);
  w->stream_free(s);  // now quiescent
}

TEST(Stream, NullStreamCannotBeFreed) {
  auto w = World::create(WorldConfig{.nranks = 1});
  Stream s = w->null_stream(0);
  EXPECT_THROW(w->stream_free(s), UsageError);
}

TEST(Stream, StreamCommTrafficIsolatedFromNullStream) {
  // Operations on a stream communicator are matched and progressed on the
  // stream's VCI: progressing the null stream must not touch them.
  auto w = World::create(mpx_test::net_only_config(2));
  mpx_test::run_ranks(*w, [&](int rank) {
    Stream s = w->stream_create(rank);
    Comm sc = w->comm_world(rank).with_stream(s);  // collective
    if (rank == 0) {
      std::int32_t x = 7;
      Request sr = sc.isend(&x, 1, dtype::Datatype::int32(), 1, 0);
      ASSERT_TRUE(sr.is_complete());  // lightweight: buffered at initiation
    } else {
      std::int32_t y = 0;
      Request rr = sc.irecv(&y, 1, dtype::Datatype::int32(), 0, 0);
      // Give the simulated wire ample time to deliver.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      // Null-stream progress: wrong VCI, must not observe the message.
      for (int i = 0; i < 10; ++i) stream_progress(w->null_stream(1));
      EXPECT_FALSE(rr.is_complete());
      // The stream's own progress sees it.
      while (!rr.is_complete()) stream_progress(s);
      EXPECT_EQ(y, 7);
    }
    w->finalize_rank(rank);
  });
}

TEST(Stream, LockContentionSharedVsPrivate) {
  // Fig. 9 vs Fig. 11, expressed in lock counters: threads hammering the
  // SAME (null) stream contend; threads on private streams do not.
  WorldConfig cfg;
  cfg.nranks = 1;
  cfg.max_vcis = 8;
  auto w = World::create(cfg);
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;

  {
    std::vector<base::ScopedThread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) stream_progress(w->null_stream(0));
      });
    }
  }
  const auto shared_stats = w->vci_lock_stats(0, 0);
  EXPECT_EQ(shared_stats.acquires, kThreads * kIters);

  std::vector<Stream> streams;
  for (int t = 0; t < kThreads; ++t) streams.push_back(w->stream_create(0));
  {
    std::vector<base::ScopedThread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) stream_progress(streams[t]);
      });
    }
  }
  std::uint64_t private_contended = 0;
  for (int t = 0; t < kThreads; ++t) {
    private_contended += w->vci_lock_stats(0, streams[t].vci()).contended;
  }
  // A private serial context has exactly one client: zero contention.
  EXPECT_EQ(private_contended, 0u);
  for (auto& s : streams) w->stream_free(s);
}

TEST(Stream, ProgressMaskSkipsSubsystems) {
  // A stream created with mpx_skip_netmod never polls the NIC: a message
  // delivered to its VCI via the NIC stays unobserved until the mask is
  // overridden (§3.2's subsystem-targeted progress).
  auto w = World::create(mpx_test::net_only_config(2));
  mpx_test::run_ranks(*w, [&](int rank) {
    Info info;
    if (rank == 1) info.set("mpx_skip_netmod", "1");
    Stream s = w->stream_create(rank, info);
    Comm sc = w->comm_world(rank).with_stream(s);
    if (rank == 0) {
      std::int32_t x = 3;
      Request sr = sc.isend(&x, 1, dtype::Datatype::int32(), 1, 0);
      ASSERT_TRUE(sr.is_complete());
    } else {
      EXPECT_EQ(s.mask() & progress_net, 0u);
      std::int32_t y = 0;
      Request rr = sc.irecv(&y, 1, dtype::Datatype::int32(), 0, 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      for (int i = 0; i < 10; ++i) stream_progress(s);  // mask skips NIC
      EXPECT_FALSE(rr.is_complete());
      while (!rr.is_complete()) stream_progress(s, progress_all);
      EXPECT_EQ(y, 3);
    }
    w->finalize_rank(rank);
  });
}

TEST(Stream, CommStreamAccessorRoundTrip) {
  auto w = World::create(WorldConfig{.nranks = 1});
  Stream s = w->stream_create(0);
  Comm c = w->comm_world(0).with_stream(s);
  EXPECT_EQ(c.stream().vci(), s.vci());
  EXPECT_TRUE(c.stream() == s);
  EXPECT_EQ(w->comm_world(0).stream().vci(), 0);
}
