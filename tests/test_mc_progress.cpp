// Model-check: the §3.4 completion contract on the REAL progress engine —
// a deterministic, bounded conversion of ProgressStress.
// ManyThreadsOneVciWithCompletionPolls (which stays in the suite for the
// tsan preset). One eager shm message, three actors: the body posts the
// receive and polls is_complete with no progress side effects, a sender
// thread injects and drives rank 0, and a progress thread drives rank 1.
// Every explored interleaving must show the payload and Status ordered
// behind the single acquire poll.
#include <gtest/gtest.h>

#include <cstdint>

#include "mpx/mc/mc.hpp"
#include "mpx/mc/sync.hpp"
#include "mpx/mpx.hpp"

#if MPX_MODEL_CHECK

namespace mc = mpx::mc;
using namespace mpx;

namespace {

/// One bounded message round. Every spin loop yields: under the checker a
/// yield is a deterministic hand-off, so no loop can starve the schedule.
void message_round() {
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 2;  // shm path: the contended eager rings
  cfg.shm_cells = 4;
  auto w = World::create(cfg);

  std::int32_t rbuf = -1;
  Comm c1 = w->comm_world(1);
  Request r = c1.irecv(&rbuf, 1, dtype::Datatype::int32(), /*src=*/0,
                       /*tag=*/7);

  mc::atomic<bool> stop{false};

  // Sender: injects on rank 0 and drives rank 0's progress to completion.
  mc::thread sender([&] {
    Comm c0 = w->comm_world(0);
    std::int32_t sbuf = 100;
    Request s = c0.isend(&sbuf, 1, dtype::Datatype::int32(), /*dst=*/1,
                         /*tag=*/7);
    while (!s.is_complete()) {
      stream_progress(w->null_stream(0));
      mc::yield();
    }
  });

  // Progresser: hammers rank 1's default VCI until told to stop.
  mc::thread progresser([&] {
    while (!stop.load(std::memory_order_acquire)) {
      stream_progress(w->null_stream(1));
      mc::yield();
    }
  });

  // Body: §3.4 poller — is_complete is one acquire load with no side
  // effects, yet observing true must make payload and Status visible.
  while (!r.is_complete()) mc::yield();
  mc::check(rbuf == 100, "completed receive implies payload visible");
  // Annotated Status read BEFORE Request::status(): status() internally
  // re-loads `complete` with acquire (its expects), which would create the
  // ordering edge on its own and mask a weakened poll. This read pairs with
  // complete_request's annotated write and is ordered only by the poll.
  MPX_MC_PLAIN_READ(&r.impl()->status, "Request::status (poller)");
  mc::check(r.status().count_bytes == sizeof(std::int32_t),
            "completed receive implies Status visible");
  stop.store(true, std::memory_order_release);

  sender.join();
  progresser.join();
  w->finalize_rank(0);
  w->finalize_rank(1);
}

}  // namespace

TEST(McProgress, CompletionPollOrdersPayloadAllSchedules) {
  mc::Options opt;
  opt.name = "progress_poll";
  opt.max_schedules = 400;  // full message per schedule: bounded budget
  const mc::Result res = mc::explore(opt, message_round);
  RecordProperty("summary", res.summary());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GT(res.schedules, 1);
}

TEST(McProgress, SeededMutationWeakPollCaughtOnRealEngine) {
  // Same mutation as McRequest, but proven against the real engine: the
  // relaxed poll races with complete_request's Status write (annotated in
  // src/core/progress.cpp) on some explored schedule.
  mc::mut::weak_is_complete = true;
  mc::Options opt;
  opt.name = "progress_weak_poll";
  opt.max_schedules = 400;
  const mc::Result res = mc::explore(opt, message_round);
  mc::mut::weak_is_complete = false;
  RecordProperty("summary", res.summary());

  ASSERT_TRUE(res.failed)
      << "relaxed is_complete must be detected: " << res.summary();
  EXPECT_NE(res.failure.find("data race"), std::string::npos) << res.failure;
  EXPECT_FALSE(res.replay.empty());
}

#else
TEST(McProgress, SkippedWithoutModelCheck) { GTEST_SKIP(); }
#endif
