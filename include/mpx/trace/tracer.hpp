// mpx/trace/tracer.hpp
//
// Protocol/progress event tracing. The paper's §2.5: "Managing MPI progress
// can feel almost magical when it works, but extremely frustrating when it
// fails." The tracer makes the engine observable: the runtime emits a
// timestamped record at every protocol transition (post, match, handshake
// legs, completion), captured in a bounded ring per World.
//
// Off by default (zero records, one branch per emit site). Enable via
// WorldConfig::trace_capacity or MPX_TRACE_CAPACITY=<n>.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mpx/base/spinlock.hpp"

namespace mpx::trace {

/// Traced event kinds, in rough protocol order.
enum class Event : std::uint8_t {
  post_send = 0,   ///< isend issued (detail = SendProto)
  post_recv,       ///< irecv posted
  match,           ///< arrival matched a posted receive
  unexpected,      ///< arrival parked on the unexpected queue
  rts,             ///< rendezvous ready-to-send seen at the receiver
  cts,             ///< clear-to-send seen at the sender
  data,            ///< data chunk landed (detail = chunk bytes)
  ack,             ///< LMT ack seen at the sender
  complete,        ///< a request completed (detail = ReqKind)
  cancel,          ///< a posted receive was cancelled
  progress,        ///< a progress stage made progress (detail = stage index)
};

std::string to_string(Event e);

/// One trace record. `rank`/`vci` name the context that emitted it.
struct Record {
  double t = 0.0;  ///< World::wtime() at emission
  Event ev = Event::post_send;
  std::int32_t rank = -1;
  std::int32_t vci = 0;
  std::int32_t peer = -1;
  std::int32_t tag = -1;
  std::uint64_t bytes = 0;
  std::uint64_t detail = 0;
};

/// Bounded ring of records; concurrent emitters, snapshot readers.
class Tracer {
 public:
  /// capacity 0 disables tracing (emit() is a single branch).
  explicit Tracer(std::size_t capacity) : cap_(capacity) {
    if (cap_ != 0) ring_.resize(cap_);
  }

  bool enabled() const { return cap_ != 0; }

  void emit(const Record& r) {
    if (cap_ == 0) return;
    base::LockGuard<base::Spinlock> g(mu_);
    ring_[next_ % cap_] = r;
    ++next_;
  }

  /// Records in emission order (oldest first); at most `capacity` entries.
  std::vector<Record> snapshot() const;

  /// Total records emitted (including overwritten ones).
  std::uint64_t emitted() const {
    base::LockGuard<base::Spinlock> g(mu_);
    return next_;
  }

  /// Human-readable dump, one record per line.
  void dump(std::ostream& os) const;

 private:
  const std::size_t cap_;  // ring capacity, frozen at construction
  mutable base::Spinlock mu_;
  std::vector<Record> ring_ MPX_GUARDED_BY(mu_);
  std::uint64_t next_ MPX_GUARDED_BY(mu_) = 0;
};

}  // namespace mpx::trace
