// mpx/shm/shm_transport.hpp
//
// Intra-node transport: the "shmem" subsystem of the collated progress
// function (third hook in Listing 1.1). Models MPICH's shared-memory netmod:
//
//  - Eager path: fixed-capacity SPSC "cell" rings per directed (src, dst, vci)
//    channel. A send copies its payload into an envelope and pushes it; if the
//    ring is full the envelope parks on a sender-side pending queue that the
//    sender's own progress retries (exactly why send-side progress matters).
//  - Large-message path (LMT): the core protocol sends an `rts` carrying the
//    exporter's buffer address; the receiver copies directly and replies with
//    an `ack`. The transport just carries those control messages.
//
// Because ranks share one address space here, a "cell" is an owned heap
// envelope rather than a slot in a mmap'd segment; queue discipline, capacity
// limits, and progress behaviour are the same.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mpx/base/lock_rank.hpp"
#include "mpx/base/queue.hpp"
#include "mpx/base/spinlock.hpp"
#include "mpx/base/thread_safety.hpp"
#include "mpx/transport/msg.hpp"

namespace mpx::shm {

/// Statistics for observability and tests.
struct ShmStats {
  std::uint64_t sends = 0;
  std::uint64_t ring_full_events = 0;  ///< pushes deferred to pending queue
  std::uint64_t delivered = 0;
};

class ShmTransport {
 public:
  /// `nranks` endpoints, `max_vcis` channels each, rings of `cells` entries.
  ShmTransport(int nranks, int max_vcis, std::size_t cells);

  ShmTransport(const ShmTransport&) = delete;
  ShmTransport& operator=(const ShmTransport&) = delete;

  /// Send `m` from m.h.src_rank to m.h.dst_rank on channel m.h.dst_vci.
  ///
  /// Returns true if the message was placed in the ring immediately. Returns
  /// false when the ring was full: the message is parked and `cookie` (if
  /// nonzero) will be reported via on_send_complete once it drains. For
  /// immediate placements the payload was copied out, so the operation is
  /// already locally complete and no on_send_complete fires.
  bool send(transport::Msg&& m, std::uint64_t cookie);

  /// Poll the (rank, vci) endpoint: retry parked sends originating from this
  /// side, then deliver arrived messages to `sink`.
  /// Sets *made_progress when anything moved.
  void poll(int rank, int vci, transport::TransportSink& sink,
            int* made_progress);

  /// True when the endpoint has nothing queued in any direction. Used for the
  /// cheap "empty poll" check the paper relies on (§2.6).
  bool idle(int rank, int vci) const;

  ShmStats stats() const;

 private:
  struct Channel {
    // SPSC discipline: only src's threads push (under src's vci lock), only
    // dst's threads pop (under dst's vci lock); the spinlock makes the
    // channel safe even when users progress one vci from several threads.
    // Rank transport_channel: poll() nests a channel lock inside the
    // pending lock (rank transport) when flushing parked sends.
    mutable base::Spinlock mu{"shm:channel", base::LockRank::transport_channel};
    std::deque<transport::Msg> ring MPX_GUARDED_BY(mu);
  };
  struct Pending {
    mutable base::Spinlock mu{"shm:pending", base::LockRank::transport};
    std::deque<std::pair<transport::Msg, std::uint64_t>> q MPX_GUARDED_BY(mu);
    /// Mirrors q.size(); maintained under mu, read lock-free by poll() as
    /// the fast-path "nothing parked" check (§2.6 empty-poll cost).
    std::atomic<std::uint32_t> count{0};
  };

  Channel& channel(int src, int dst, int vci);
  const Channel& channel(int src, int dst, int vci) const;
  Pending& pending(int rank, int vci);
  const Pending& pending(int rank, int vci) const;

  int nranks_;
  int max_vcis_;
  std::size_t cells_;
  std::vector<Channel> channels_;  // [src][dst][vci]
  std::vector<Pending> pending_;   // [rank][vci]

  std::atomic<std::uint64_t> sends_{0};
  std::atomic<std::uint64_t> ring_full_{0};
  std::atomic<std::uint64_t> delivered_{0};
};

}  // namespace mpx::shm
