// mpx/shm/shm_transport.hpp
//
// Intra-node transport: the "shmem" subsystem of the collated progress
// function (third hook in Listing 1.1). Models MPICH's shared-memory netmod
// as a true fixed-slot cell datapath:
//
//  - Eager path: per directed (src, dst, vci) channel, a bounded ring of
//    cache-line-aligned inline cells. A small send copies its payload
//    directly into the shared slot (header + payload in-slot, one copy);
//    mid-size payloads (slot < n <= eager max) ride in a size-classed
//    pooled block referenced by the cell. No heap envelope, no Msg
//    ownership transfer, no allocation on the in-slot path. When the ring
//    is full the send parks on a sender-side pending queue that the
//    sender's own progress retries in bulk (exactly why send-side progress
//    matters).
//  - Large-message path (LMT): the core protocol sends an `rts` carrying
//    the exporter's buffer address; the receiver copies directly and
//    replies with an `ack`. Those control messages are header-only cells.
//
// Ring protocol. Producers (any thread holding some VCI lock of the source
// rank) serialize on a per-channel spinlock and publish a cell with one
// release store of `head`; the consumer (serialized externally by the
// destination VCI's lock — see poll()) drains up to `deliver_batch` cells
// with a single acquire load of `head` and republishes `tail` once per
// batch, amortizing the fence pair over the whole batch. Inline cells are
// handed to the sink as zero-copy views (TransportSink::on_msg_inline);
// the slot is reused only after the batch's tail publish.
//
// Because ranks share one address space here, the "shared segment" is a
// per-channel arena allocated lazily on first use; queue discipline,
// capacity limits, and progress behaviour match the mmap'd-segment design.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "mpx/base/buffer.hpp"
#include "mpx/base/lock_rank.hpp"
#include "mpx/base/spinlock.hpp"
#include "mpx/base/thread_safety.hpp"
#include "mpx/mc/sync.hpp"
#include "mpx/transport/msg.hpp"
#include "mpx/transport/transport.hpp"

namespace mpx::shm {

/// Statistics for observability and tests.
struct ShmStats {
  std::uint64_t sends = 0;
  /// Push attempts (fresh sends and parked retries) that observed a full
  /// ring. Parking behind an already-backlogged endpoint — which never
  /// probes the ring — is NOT counted: this counts full-slot stalls.
  std::uint64_t ring_full_events = 0;
  std::uint64_t delivered = 0;
  /// Delivery drains that moved two or more cells under one acquire/publish
  /// pair (the fence-amortization the batched consumer exists for).
  std::uint64_t batched_deliveries = 0;
  /// Non-empty payloads stored directly in the cell slot (no pooled block).
  std::uint64_t inline_payload_hits = 0;
};

class ShmTransport final : public transport::Transport {
 public:
  /// `nranks` endpoints, `max_vcis` channels each. `cells` per-channel ring
  /// slots (rounded up to a power of two), each holding up to `slot_bytes`
  /// of payload in-slot; poll() delivers at most `deliver_batch` cells per
  /// channel per call. `ranks_per_node` scopes reaches() to same-node rank
  /// pairs (0 = every rank shares one node); `eager_max` is the rendezvous
  /// cutover advertised through limits().
  ShmTransport(int nranks, int max_vcis, std::size_t cells,
               std::size_t slot_bytes = 256, int deliver_batch = 16,
               int ranks_per_node = 0, std::size_t eager_max = 64 * 1024);
  ~ShmTransport() override;

  ShmTransport(const ShmTransport&) = delete;
  ShmTransport& operator=(const ShmTransport&) = delete;

  // --- transport::Transport ---
  const char* name() const override { return "shm"; }
  unsigned caps() const override {
    return transport::cap_eager_local | transport::cap_mapped_memory;
  }
  const transport::TransportLimits& limits() const override { return limits_; }
  /// ProgressMask::progress_shm (shm/ cannot include core headers).
  unsigned progress_bit() const override { return 1u << 3; }
  bool reaches(int src, int dst) const override {
    return src / ranks_per_node_ == dst / ranks_per_node_;
  }
  transport::TransportStats transport_stats() const override;

  /// Send `m` from m.h.src_rank to m.h.dst_rank on channel m.h.dst_vci.
  ///
  /// Returns true if the message was placed in the ring immediately (its
  /// payload copied in-slot or its owned buffer moved into the cell), so
  /// the operation is locally complete and no on_send_complete fires.
  /// Returns false when the send had to park: `cookie` (if nonzero) will be
  /// reported via on_send_complete once it drains.
  bool send(transport::Msg&& m, std::uint64_t cookie) override;

  /// Zero-envelope eager send: copy `payload` straight from the user (or
  /// staging) buffer into the channel — in-slot when it fits `slot_bytes`,
  /// into a size-classed pooled block otherwise. Never takes ownership of
  /// `payload`; the copy happens before return even when the send parks.
  /// Same return/cookie contract as send().
  bool send_eager(const transport::MsgHeader& h, base::ConstByteSpan payload,
                  std::uint64_t cookie) override;

  /// Poll the (rank, vci) endpoint: retry parked sends originating from
  /// this side in bulk, then drain up to `deliver_batch` arrived cells per
  /// source channel into `sink`. Inline cells are delivered as zero-copy
  /// views (on_msg_inline); pooled-overflow cells as owned Msgs (on_msg).
  /// Sets *made_progress when anything moved.
  ///
  /// Serialization contract: poll() for one (rank, vci) must not run
  /// concurrently with itself (the VCI lock provides this). Re-entrant
  /// calls from inside the sink are detected and skip the delivery stage —
  /// the outer drain still owns its batch's cells.
  void poll(int rank, int vci, transport::TransportSink& sink,
            int* made_progress) override;

  /// True when the endpoint has nothing queued in any direction. Used for
  /// the cheap "empty poll" check the paper relies on (§2.6).
  bool idle(int rank, int vci) const override;

  ShmStats stats() const;

  /// Geometry actually in use (after rounding), for tests and bench labels.
  std::size_t cells() const { return cells_; }
  std::size_t slot_bytes() const { return slot_bytes_; }
  int deliver_batch() const { return deliver_batch_; }

 private:
  /// One ring slot. Placement-constructed in the channel arena; the inline
  /// payload area is the `slot_bytes_` bytes immediately after the struct.
  struct Cell {
    transport::MsgHeader h;
    base::Buffer overflow;  ///< engaged when the payload outgrew the slot
    std::uint32_t inline_bytes = 0;

    std::byte* inline_data() { return reinterpret_cast<std::byte*>(this + 1); }
  };

  struct Channel {
    // Producer side: any thread holding one of the source rank's VCI locks
    // may push, so producers serialize on this spinlock. The consumer never
    // takes it — it synchronizes through the head/tail protocol below.
    // Rank transport_channel: poll() nests a channel lock inside the
    // pending lock (rank transport) when flushing parked sends.
    mutable base::Spinlock mu{"shm:channel", base::LockRank::transport_channel};
    /// Next slot to write. Written only by producers (under mu), published
    /// with release; the consumer's acquire load owns everything below it.
    alignas(64) mc::atomic<std::uint32_t> head{0};
    /// Next slot to read. Written only by the (externally serialized)
    /// consumer, once per batch, with release; producers' acquire loads use
    /// it to detect free slots (slot reuse is ordered by this edge).
    alignas(64) mc::atomic<std::uint32_t> tail{0};
    /// Cell arena, allocated lazily by the first producer (under mu; the
    /// write is ordered for the consumer by the first head release-store
    /// and for later producers by mu itself).
    // Publication is ordered by the first head release-store (consumer)
    // and by mu itself (producers) — see above. mpxlint: allow(tsa-ratchet)
    std::byte* arena = nullptr;
  };

  /// Sender-side endpoint state for (rank, vci).
  struct Endpoint {
    mutable base::Spinlock mu{"shm:pending", base::LockRank::transport};
    std::deque<std::pair<transport::Msg, std::uint64_t>> q MPX_GUARDED_BY(mu);
    /// Mirrors q.size(); maintained under mu, read lock-free by poll() as
    /// the fast-path "nothing parked" check (§2.6 empty-poll cost).
    // Lock-free mirror of q.size(); the modeled protocol state is q itself
    // (under mu) — a stale read only costs a lock. mpxlint: allow(mc-coverage)
    std::atomic<std::uint32_t> count{0};
    /// Consumer-side re-entrancy guard (see poll()). Only ever touched by
    /// the externally-serialized consumer of this endpoint, hence plain.
    bool delivering = false;  // mpxlint: allow(tsa-ratchet) consumer-serialized
  };

  Channel& channel(int src, int dst, int vci);
  const Channel& channel(int src, int dst, int vci) const;
  Endpoint& endpoint(int rank, int vci);
  const Endpoint& endpoint(int rank, int vci) const;

  Cell& cell_at(Channel& ch, std::uint32_t idx);
  void init_arena(Channel& ch) MPX_REQUIRES(ch.mu);

  /// Producer push under ch.mu. `payload` is copied in-slot; a non-empty
  /// `overflow` buffer is moved into the cell instead (exactly one of the
  /// two is meaningful). Returns false (leaving `overflow` intact) when the
  /// ring is full.
  bool push_cell(Channel& ch, const transport::MsgHeader& h,
                 base::ConstByteSpan payload, base::Buffer& overflow)
      MPX_REQUIRES(ch.mu);

  /// Place a parked/owned Msg; routes payload in-slot when it fits.
  bool push_msg(Channel& ch, transport::Msg& m) MPX_REQUIRES(ch.mu);

  /// Park a send on its endpoint's pending queue, preserving FIFO order.
  void park(Endpoint& ep, transport::Msg&& m, std::uint64_t cookie);

  int nranks_;
  int max_vcis_;
  std::size_t cells_;       ///< ring capacity, power of two
  std::size_t slot_bytes_;  ///< inline payload capacity per cell
  std::size_t stride_;      ///< bytes per cell incl. inline area, 64-aligned
  int deliver_batch_;
  int ranks_per_node_;      ///< reaches() node width (>= 1 after ctor)
  transport::TransportLimits limits_;
  std::vector<Channel> channels_;   // [src][dst][vci]
  std::vector<Endpoint> endpoints_;  // [rank][vci]

  // Stats counters stay raw std::atomic on purpose: diagnostics, not
  // protocol — modeling them would only blow up the mc schedule space.
  std::atomic<std::uint64_t> sends_{0};        // mpxlint: allow(mc-coverage) stats only
  std::atomic<std::uint64_t> ring_full_{0};    // mpxlint: allow(mc-coverage) stats only
  std::atomic<std::uint64_t> delivered_{0};    // mpxlint: allow(mc-coverage) stats only
  std::atomic<std::uint64_t> batched_{0};      // mpxlint: allow(mc-coverage) stats only
  std::atomic<std::uint64_t> inline_hits_{0};  // mpxlint: allow(mc-coverage) stats only
};

}  // namespace mpx::shm
