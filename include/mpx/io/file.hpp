// mpx/io/file.hpp
//
// Asynchronous storage I/O — the paper's §2.6 names MPI-IO as one of the
// asynchronous subsystems an MPI library collates progress for, and its
// related-work discussion (ROMIO, extended generalized requests [7]) is
// about exactly this layer. mpx::io is deliberately built ENTIRELY on the
// public extension APIs: every operation is a generalized request whose
// progression is an MPIX_Async hook (ext::grequest_start_with_poll), so
// storage completions flow through the same stream_progress calls as
// messages — interoperable progress in action (§2.7).
//
// The "disk" is a simulated device: an in-memory object store behind an
// access-latency + bandwidth cost model. Operations exist in time and are
// observed by progress, like the simulated NIC.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mpx/base/buffer.hpp"
#include "mpx/base/spinlock.hpp"
#include "mpx/core/comm.hpp"
#include "mpx/core/request.hpp"
#include "mpx/core/world.hpp"

namespace mpx::io {

/// Timing model for the simulated storage device.
struct DiskModel {
  double access_latency = 50e-6;   ///< per-op fixed cost (50 us)
  double read_bw_Bps = 2e9;        ///< 2 GB/s
  double write_bw_Bps = 1e9;       ///< 1 GB/s
};

/// A simulated storage device holding named byte objects ("files").
/// Thread-safe; shared by any number of File handles.
class SimDisk {
 public:
  explicit SimDisk(World& world, DiskModel model = DiskModel{});

  World& world() const { return *world_; }
  const DiskModel& model() const { return model_; }

  /// Current size of an object (0 if absent).
  std::uint64_t size(const std::string& name) const;
  bool exists(const std::string& name) const;
  void remove(const std::string& name);

  /// Immediate (un-timed) access for tests and verification.
  void raw_write(const std::string& name, std::uint64_t offset,
                 base::ConstByteSpan data);
  std::vector<std::byte> raw_read(const std::string& name,
                                  std::uint64_t offset,
                                  std::uint64_t len) const;

  /// Completed-operation counters.
  std::uint64_t reads_completed() const;
  std::uint64_t writes_completed() const;

  /// Internal: operation accounting (called by the io engine at completion).
  void note_completed(bool is_write);

 private:
  friend class File;
  World* world_;      // mpxlint: allow(tsa-ratchet) immutable after construction
  DiskModel model_;   // mpxlint: allow(tsa-ratchet) immutable after construction
  mutable base::Spinlock mu_;
  std::map<std::string, std::vector<std::byte>> objects_ MPX_GUARDED_BY(mu_);
  std::uint64_t reads_ MPX_GUARDED_BY(mu_) = 0;
  std::uint64_t writes_ MPX_GUARDED_BY(mu_) = 0;
};

/// Handle to one object on a SimDisk, bound to a stream whose progress
/// drives the handle's operations.
class File {
 public:
  /// Open (creating if absent) object `name`, operations progressed on
  /// `stream`.
  static File open(std::shared_ptr<SimDisk> disk, std::string name,
                   const Stream& stream);

  File() = default;
  bool valid() const { return disk_ != nullptr; }
  const std::string& name() const { return name_; }
  std::uint64_t size() const;

  /// Nonblocking write: `data` is captured at call time (the caller's
  /// buffer is immediately reusable, like a buffered send); the object is
  /// updated — and the request completes — when the simulated device
  /// finishes, observed via progress on the file's stream.
  Request iwrite_at(std::uint64_t offset, base::ConstByteSpan data);

  /// Nonblocking read into `out` (must stay valid until completion). Bytes
  /// land at completion time; Status::count_bytes reports how many were
  /// actually available.
  Request iread_at(std::uint64_t offset, base::ByteSpan out);

  /// Blocking conveniences (drive the stream's progress).
  void write_at(std::uint64_t offset, base::ConstByteSpan data);
  std::uint64_t read_at(std::uint64_t offset, base::ByteSpan out);

  /// Collective variants over `comm` (every member calls; completes when
  /// all members' ops and a barrier finish — MPI_File_*_at_all shape).
  void write_at_all(const Comm& comm, std::uint64_t offset,
                    base::ConstByteSpan data);
  void read_at_all(const Comm& comm, std::uint64_t offset, base::ByteSpan out);

 private:
  std::shared_ptr<SimDisk> disk_;
  std::string name_;
  Stream stream_;
};

}  // namespace mpx::io
