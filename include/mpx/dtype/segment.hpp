// mpx/dtype/segment.hpp
//
// Pack/unpack cursor over (buffer, count, datatype). A Segment walks the
// flattened iov representation and moves bytes between the (possibly
// non-contiguous) typed buffer and a contiguous packed stream. It supports
// incremental operation so the async pack engine can move data in chunks
// across progress polls.
#pragma once

#include <cstddef>

#include "mpx/base/buffer.hpp"
#include "mpx/dtype/datatype.hpp"

namespace mpx::dtype {

/// Incremental pack/unpack cursor. Not thread-safe; owned by one VCI.
class Segment {
 public:
  /// View `count` elements of type `dt` at `buf`. The buffer must outlive
  /// the segment. The same segment can pack (typed -> packed) or unpack
  /// (packed -> typed); direction is chosen per call.
  Segment(void* buf, std::size_t count, Datatype dt);

  /// Total packed size in bytes of the whole segment.
  std::size_t packed_size() const { return packed_size_; }

  /// Bytes processed so far (cursor position in the packed stream).
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == packed_size_; }

  /// Reset the cursor to the beginning.
  void rewind();

  /// Copy up to out.size() packed bytes starting at the cursor into `out`;
  /// advances the cursor. Returns bytes produced (< out.size() only at end).
  std::size_t pack(base::ByteSpan out);

  /// Consume packed bytes from `in` into the typed buffer at the cursor;
  /// advances the cursor. Returns bytes consumed.
  std::size_t unpack(base::ConstByteSpan in);

 private:
  // Advance the iov walk by `n` packed bytes, invoking move(dst_typed_ptr,
  // len) for each contiguous typed piece touched.
  template <class MoveFn>
  std::size_t walk(std::size_t n, MoveFn&& move);

  std::byte* buf_ = nullptr;
  std::size_t count_ = 0;
  Datatype dt_;
  std::size_t packed_size_ = 0;

  // Cursor state: element index, iov piece index, byte offset inside piece.
  std::size_t pos_ = 0;
  std::size_t elem_ = 0;
  std::size_t piece_ = 0;
  std::size_t piece_off_ = 0;
};

/// Convenience one-shot helpers.
///
/// Pack `count` elements of `dt` at `src` into `out` (must be large enough).
/// Returns packed byte count.
std::size_t pack_all(const void* src, std::size_t count, const Datatype& dt,
                     base::ByteSpan out);

/// Unpack `in` into `count` elements of `dt` at `dst`. Returns bytes used.
std::size_t unpack_all(base::ConstByteSpan in, void* dst, std::size_t count,
                       const Datatype& dt);

}  // namespace mpx::dtype
