// mpx/dtype/pack_engine.hpp
//
// Asynchronous pack/unpack work items. Large non-contiguous transfers (and,
// on real systems, GPU pack kernels) do not finish inline: MPICH moves them
// in chunks from its Datatype_engine_progress hook. PackEngine is that
// subsystem: a list of in-flight PackWork items advanced one chunk per poll.
//
// The engine is per-VCI (one serial context owns it), so it needs no locking
// of its own; the VCI lock covers it.
#pragma once

#include <cstddef>
#include <list>
#include <memory>

#include "mpx/base/buffer.hpp"
#include "mpx/dtype/segment.hpp"

namespace mpx::dtype {

/// Direction of an async datatype operation.
enum class PackDir { pack, unpack };

/// One in-flight chunked pack/unpack. Completion is observable through the
/// owner-supplied on_done callback (the core wires it to a Request).
class PackWork {
 public:
  /// For pack: typed -> `packed`. For unpack: `packed` -> typed.
  /// `chunk` bytes are moved per poll (0 means "all at once").
  PackWork(PackDir dir, void* typed_buf, std::size_t count, Datatype dt,
           base::ByteSpan packed, std::size_t chunk);

  /// Advance by one chunk. Returns true when the work completed on this poll.
  bool poll();

  bool done() const { return seg_.done(); }
  std::size_t bytes_moved() const { return seg_.position(); }
  std::size_t total_bytes() const { return seg_.packed_size(); }

 private:
  PackDir dir_;
  Segment seg_;
  base::ByteSpan packed_;
  std::size_t chunk_;
};

/// The per-VCI datatype subsystem: first hook of the collated progress
/// function. Owns its work items.
class PackEngine {
 public:
  /// Completion callback invoked (under the owning VCI's lock) when a work
  /// item finishes.
  using DoneFn = void (*)(void* cookie);

  /// Enqueue new work; `on_done(cookie)` fires when it completes.
  void submit(std::unique_ptr<PackWork> work, DoneFn on_done, void* cookie);

  /// Advance every active work item by one chunk.
  /// Sets *made_progress when any bytes moved. Returns number completed.
  int progress(int* made_progress);

  bool idle() const { return active_.empty(); }
  std::size_t active_count() const { return active_.size(); }

 private:
  struct Entry {
    std::unique_ptr<PackWork> work;
    DoneFn on_done;
    void* cookie;
  };
  std::list<Entry> active_;
};

}  // namespace mpx::dtype
