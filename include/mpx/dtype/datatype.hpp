// mpx/dtype/datatype.hpp
//
// The datatype engine: primitive and derived datatypes with a flattened
// (offset, length) representation used by pack/unpack. This is the subsystem
// behind the first hook of the collated progress function (Listing 1.1 of the
// paper: Datatype_engine_progress).
//
// Datatype is a cheap value handle over an immutable, shared representation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mpx/base/status.hpp"

namespace mpx::dtype {

/// Built-in element types.
enum class Primitive : int {
  byte = 0,
  int8,
  int16,
  int32,
  int64,
  uint8,
  uint16,
  uint32,
  uint64,
  float32,
  float64,
};

/// Size in bytes of a primitive.
std::size_t primitive_size(Primitive p);

/// Name for diagnostics.
std::string to_string(Primitive p);

/// One contiguous piece of a flattened datatype: `length` bytes at byte
/// offset `offset` from the element base address.
struct Iov {
  std::ptrdiff_t offset = 0;
  std::size_t length = 0;
  friend bool operator==(const Iov&, const Iov&) = default;
};

namespace detail {
/// Immutable flattened representation shared by Datatype handles.
struct TypeRep {
  std::vector<Iov> iov;        ///< pieces of ONE element, ascending offsets not required
  std::size_t size = 0;        ///< packed bytes per element (sum of iov lengths)
  std::ptrdiff_t extent = 0;   ///< memory footprint stride between elements
  bool contiguous = false;     ///< true iff one piece at offset 0 with extent==size
  Primitive leaf = Primitive::byte;  ///< element leaf type (for reductions)
  bool homogeneous = true;     ///< true iff all leaves share one primitive type
};
}  // namespace detail

/// Value handle for a (possibly derived) datatype.
class Datatype {
 public:
  /// Default-constructed handle is invalid; use factories.
  Datatype() = default;

  /// A primitive datatype.
  static Datatype of(Primitive p);

  // Shorthand factories for common primitives.
  static Datatype byte() { return of(Primitive::byte); }
  static Datatype int32() { return of(Primitive::int32); }
  static Datatype int64() { return of(Primitive::int64); }
  static Datatype float64() { return of(Primitive::float64); }
  static Datatype float32() { return of(Primitive::float32); }

  /// `count` consecutive elements of `old` fused into one element.
  static Datatype contiguous(int count, const Datatype& old);

  /// MPI_Type_vector: `count` blocks of `blocklen` elements, block starts
  /// `stride` elements apart (stride in units of old's extent).
  static Datatype vector(int count, int blocklen, int stride,
                         const Datatype& old);

  /// MPI_Type_indexed: per-block lengths and displacements in elements.
  static Datatype indexed(std::span<const int> blocklens,
                          std::span<const int> displs, const Datatype& old);

  /// MPI_Type_create_hindexed: displacements in bytes.
  static Datatype hindexed(std::span<const int> blocklens,
                           std::span<const std::ptrdiff_t> byte_displs,
                           const Datatype& old);

  /// MPI_Type_create_struct: heterogeneous blocks at byte displacements.
  static Datatype structure(std::span<const int> blocklens,
                            std::span<const std::ptrdiff_t> byte_displs,
                            std::span<const Datatype> types);

  /// MPI_Type_create_resized: same layout, overridden extent.
  static Datatype resized(const Datatype& old, std::ptrdiff_t new_extent);

  /// MPI_Type_create_subarray (C order): an n-dimensional
  /// `subsizes`-shaped window at `starts` inside a `sizes`-shaped array of
  /// `old` elements. The extent spans the WHOLE array, so consecutive
  /// elements of this type address consecutive full arrays.
  static Datatype subarray(std::span<const int> sizes,
                           std::span<const int> subsizes,
                           std::span<const int> starts, const Datatype& old);

  bool valid() const { return rep_ != nullptr; }
  std::size_t size() const { return rep().size; }
  std::ptrdiff_t extent() const { return rep().extent; }
  bool is_contiguous() const { return rep().contiguous; }
  Primitive leaf() const { return rep().leaf; }
  bool homogeneous() const { return rep().homogeneous; }

  /// Flattened pieces of one element.
  std::span<const Iov> iov() const { return rep().iov; }

  friend bool operator==(const Datatype& a, const Datatype& b) {
    return a.rep_ == b.rep_;
  }

 private:
  explicit Datatype(std::shared_ptr<const detail::TypeRep> rep)
      : rep_(std::move(rep)) {}
  const detail::TypeRep& rep() const {
    expects(rep_ != nullptr, "Datatype: invalid (default-constructed) handle");
    return *rep_;
  }
  std::shared_ptr<const detail::TypeRep> rep_;
};

}  // namespace mpx::dtype
