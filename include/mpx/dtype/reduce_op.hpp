// mpx/dtype/reduce_op.hpp
//
// Local reduction operators applied element-wise over typed buffers, used by
// the collective algorithms (allreduce, reduce) and by the MPIX_Schedule
// comparison layer's "mpi op" nodes.
#pragma once

#include <cstddef>
#include <string>

#include "mpx/dtype/datatype.hpp"

namespace mpx::dtype {

/// Predefined reduction operators (subset of MPI_Op).
enum class ReduceOp : int {
  sum = 0,
  prod,
  min,
  max,
  land,  ///< logical and
  lor,   ///< logical or
  band,  ///< bitwise and
  bor,   ///< bitwise or
};

std::string to_string(ReduceOp op);

/// inout[i] = op(inout[i], in[i]) for `count` elements of primitive type
/// `dt.leaf()`. Requires a homogeneous, contiguous datatype (the collective
/// layer packs non-contiguous data before reducing, as MPICH does).
/// Bitwise ops on floating-point types are a usage error.
void reduce_apply(ReduceOp op, const void* in, void* inout, std::size_t count,
                  const Datatype& dt);

}  // namespace mpx::dtype
