// mpx/base/log.hpp
//
// Minimal leveled logging to stderr. Level is read once from MPX_LOG_LEVEL
// (error|warn|info|debug). Debug logging is compiled in but gated by a
// branch on an atomic; the runtime emits nothing at default level.
#pragma once

#include <sstream>
#include <string>

namespace mpx::base {

enum class LogLevel : int { error = 0, warn = 1, info = 2, debug = 3 };

/// Current global level (from MPX_LOG_LEVEL, default warn).
LogLevel log_level();

/// Emit one line at `lvl` if enabled. Thread-safe (single write call).
void log_line(LogLevel lvl, const std::string& msg);

/// Returns true when messages at `lvl` are emitted.
inline bool log_enabled(LogLevel lvl) {
  return static_cast<int>(lvl) <= static_cast<int>(log_level());
}

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel lvl) : lvl_(lvl) {}
  ~LogStream() { log_line(lvl_, os_.str()); }
  template <class T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mpx::base

// Usage: MPX_LOG(warn) << "queue full, src=" << src;
#define MPX_LOG(level)                                             \
  if (!::mpx::base::log_enabled(::mpx::base::LogLevel::level)) {   \
  } else                                                           \
    ::mpx::base::detail::LogStream(::mpx::base::LogLevel::level)
