// mpx/base/spinlock.hpp
//
// Test-and-test-and-set spinlock with exponential-ish backoff via cpu pause.
// Used for very short critical sections inside transports (queue push/pop).
#pragma once

#include <atomic>

#include "mpx/base/thread.hpp"

namespace mpx::base {

/// TTAS spinlock. Satisfies Lockable, usable with std::lock_guard.
class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace mpx::base
