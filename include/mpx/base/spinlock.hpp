// mpx/base/spinlock.hpp
//
// Test-and-test-and-set spinlock with exponential-ish backoff via cpu pause.
// Used for very short critical sections inside transports (queue push/pop).
//
// NOT re-entrant: re-acquiring from the same thread (e.g. from inside a
// poll callback that already holds it) spins forever. The lock-rank
// validator catches the ranked cases; keep critical sections free of
// callbacks.
#pragma once

#include <atomic>

#include "mpx/base/lock_rank.hpp"
#include "mpx/base/thread.hpp"
#include "mpx/base/thread_safety.hpp"
#include "mpx/mc/sync.hpp"

namespace mpx::base {

/// TTAS spinlock. Satisfies Lockable, usable with base::LockGuard.
///
/// Under MPX_MODEL_CHECK the flag is an mc::atomic, so the acquire/release
/// protocol itself is what the model checker explores (weakening either
/// order is detected as a race on the data the lock protects).
class MPX_CAPABILITY("spinlock") Spinlock {
 public:
  Spinlock() = default;
  /// Ranked constructor: enrolls the lock in the lock-rank validator.
  /// `name` must have static storage duration.
  Spinlock(const char* name, LockRank rank) : name_(name), rank_(rank) {}
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() MPX_ACQUIRE() {
    // Validate ordering BEFORE spinning so a would-be deadlock reports
    // instead of spinning forever.
    if (rank_ != LockRank::none) lock_rank::on_acquire(this, name_, rank_);
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
#if MPX_MODEL_CHECK
      // Modeled contention blocks on the flag instead of spinning: the next
      // modeled store wakes us, so busy-wait schedules never enter the DFS.
      if (mc::detail::mc_wait_change(&flag_)) continue;
#endif
      while (flag_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }

  bool try_lock() MPX_TRY_ACQUIRE(true) {
#if MPX_MODEL_CHECK
    // Skip the racy relaxed pre-load under the checker: it would add a
    // schedule point without adding behaviors (the exchange decides).
    if (mc::detail::modeled()) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        if (rank_ != LockRank::none) {
          lock_rank::on_try_acquire(this, name_, rank_);
        }
        return true;
      }
      return false;
    }
#endif
    if (!flag_.load(std::memory_order_relaxed) &&
        !flag_.exchange(true, std::memory_order_acquire)) {
      if (rank_ != LockRank::none) {
        lock_rank::on_try_acquire(this, name_, rank_);
      }
      return true;
    }
    return false;
  }

  void unlock() MPX_RELEASE() {
    if (rank_ != LockRank::none) lock_rank::on_release(this);
    flag_.store(false, std::memory_order_release);
  }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  mc::atomic<bool> flag_{false};
  const char* name_ = "spinlock";
  LockRank rank_ = LockRank::none;
};

}  // namespace mpx::base
