// mpx/base/status.hpp
//
// Error codes and the per-operation Status record used across the runtime.
// Modeled on MPI's error-code + MPI_Status design: runtime conditions (e.g.
// truncation) are reported through codes/Status, while API misuse throws.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mpx {

/// Runtime error codes. `success` is zero so codes are testable as booleans.
enum class Err : int {
  success = 0,
  truncate,    ///< receive buffer smaller than the matched message
  pending,     ///< operation not yet complete (internal)
  cancelled,   ///< operation was cancelled
  no_match,    ///< probe found no matching message
  resource,    ///< out of internal resources (queue full, vci exhausted)
  internal,    ///< invariant violation detected at runtime
  unsupported, ///< valid arguments outside this entry point's fast path
  invalid_schedule, ///< collective schedule rejected by the static verifier
};

/// Human-readable name for an error code.
std::string to_string(Err e);

/// Completion record for a receive (and for generalized requests).
/// Mirrors MPI_Status: who sent it, with what tag, how many bytes landed.
struct Status {
  int source = -1;            ///< sending rank within the communicator
  int tag = -1;               ///< message tag
  Err error = Err::success;   ///< per-operation error
  std::uint64_t count_bytes = 0;  ///< bytes actually received
  bool cancelled = false;     ///< true if the operation was cancelled
};

/// Thrown on API misuse (precondition violations), never on runtime
/// message-layer conditions.
class UsageError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant is violated; indicates a library bug.
class InternalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void throw_usage(const char* cond, const char* file, int line);
[[noreturn]] void throw_internal(const char* cond, const char* file, int line);
}  // namespace detail

/// Precondition check for public API entry points.
inline void expects(bool cond, const char* what) {
  if (!cond) throw UsageError(what);
}

/// Internal invariant check; cheap enough to keep on in release builds.
inline void ensures(bool cond, const char* what) {
  if (!cond) throw InternalError(what);
}

}  // namespace mpx
