// mpx/base/clock.hpp
//
// Time sources. The runtime never calls std::chrono directly: every World
// owns a Clock so tests can drive protocols with a manually-advanced virtual
// clock while benchmarks use the steady clock. Units are seconds (double),
// matching MPI_Wtime.
#pragma once

#include <atomic>
#include <chrono>

namespace mpx::base {

/// Abstract monotonic time source, seconds since an arbitrary epoch.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds. Monotonic, thread-safe.
  virtual double now() const = 0;
};

/// Wall-clock time source backed by std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  SteadyClock();
  double now() const override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Manually-advanced time source for deterministic tests.
/// All mutation is atomic so multi-threaded tests may share one instance.
class VirtualClock final : public Clock {
 public:
  double now() const override { return t_.load(std::memory_order_acquire); }

  /// Advance time by dt seconds (dt >= 0).
  void advance(double dt);

  /// Jump to an absolute time (must not move backwards).
  void set(double t);

 private:
  std::atomic<double> t_{0.0};
};

}  // namespace mpx::base
