// mpx/base/intrusive.hpp
//
// Intrusive reference counting and an intrusive doubly-linked list.
// Request objects are the hot currency of the runtime; intrusive refcounts
// avoid the separate control block of shared_ptr, and intrusive lists give
// O(1) unlink for matching queues and pending-operation lists.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>

#include "mpx/base/status.hpp"

namespace mpx::base {

/// CRTP-free intrusive refcount base. Derive publicly; manage with Ref<T>.
class RefCounted {
 public:
  RefCounted() = default;
  RefCounted(const RefCounted&) = delete;
  RefCounted& operator=(const RefCounted&) = delete;

  void ref_inc() const { refs_.fetch_add(1, std::memory_order_relaxed); }

  /// Returns true when the count hit zero and the object must be deleted.
  bool ref_dec() const {
    return refs_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  int ref_count() const { return refs_.load(std::memory_order_relaxed); }

 protected:
  ~RefCounted() = default;

 private:
  mutable std::atomic<int> refs_{1};  // born owned by the creator
};

/// Intrusive smart pointer for RefCounted types.
/// Ref(T*) ADOPTS the initial reference (does not increment).
template <class T>
class Ref {
 public:
  Ref() = default;
  /// Adopt: takes over the reference the raw pointer already holds.
  explicit Ref(T* p) : p_(p) {}

  /// Share: increments the refcount.
  static Ref share(T* p) {
    if (p != nullptr) p->ref_inc();
    return Ref(p);
  }

  Ref(const Ref& o) : p_(o.p_) {
    if (p_ != nullptr) p_->ref_inc();
  }
  Ref(Ref&& o) noexcept : p_(std::exchange(o.p_, nullptr)) {}
  Ref& operator=(Ref o) noexcept {
    std::swap(p_, o.p_);
    return *this;
  }
  ~Ref() { reset(); }

  void reset() {
    if (p_ != nullptr && p_->ref_dec()) delete p_;
    p_ = nullptr;
  }

  /// Release ownership without decrementing (caller takes the reference).
  T* release() { return std::exchange(p_, nullptr); }

  T* get() const { return p_; }
  T* operator->() const { return p_; }
  T& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }
  friend bool operator==(const Ref& a, const Ref& b) { return a.p_ == b.p_; }

 private:
  T* p_ = nullptr;
};

/// Hook to embed in list element types. An element may be on at most one
/// IntrusiveList per hook at a time. The hook records its owning element when
/// linked so the list can map hooks back to elements without pointer
/// arithmetic.
struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;
  void* owner = nullptr;
  bool linked() const { return prev != nullptr; }
};

/// Intrusive doubly-linked list over elements of T embedding a ListHook
/// member, selected by pointer-to-member. Does not own elements.
template <class T, ListHook T::* Hook>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }
  std::size_t size() const { return size_; }

  void push_back(T* e) {
    ListHook* h = &(e->*Hook);
    ensures(!h->linked(), "intrusive: element already linked");
    h->owner = e;
    h->prev = head_.prev;
    h->next = &head_;
    head_.prev->next = h;
    head_.prev = h;
    ++size_;
  }

  void push_front(T* e) {
    ListHook* h = &(e->*Hook);
    ensures(!h->linked(), "intrusive: element already linked");
    h->owner = e;
    h->next = head_.next;
    h->prev = &head_;
    head_.next->prev = h;
    head_.next = h;
    ++size_;
  }

  T* front() const { return empty() ? nullptr : owner(head_.next); }

  void erase(T* e) {
    ListHook* h = &(e->*Hook);
    ensures(h->linked(), "intrusive: element not linked");
    h->prev->next = h->next;
    h->next->prev = h->prev;
    h->prev = h->next = nullptr;
    --size_;
  }

  T* pop_front() {
    if (empty()) return nullptr;
    T* e = owner(head_.next);
    erase(e);
    return e;
  }

  /// Move all elements of `other` to the back of this list.
  void splice_back(IntrusiveList& other) {
    if (other.empty()) return;
    ListHook* first = other.head_.next;
    ListHook* last = other.head_.prev;
    first->prev = head_.prev;
    head_.prev->next = first;
    last->next = &head_;
    head_.prev = last;
    size_ += other.size_;
    other.head_.prev = &other.head_;
    other.head_.next = &other.head_;
    other.size_ = 0;
  }

  /// Visit elements in order until the visitor returns true (early exit).
  /// Returns the element the visitor stopped on, or nullptr when the
  /// visitor declined every element. The visitor must not mutate the list;
  /// erase the returned element after the call if needed. This is the
  /// matching-scan primitive: a bin scan stops at the first hit instead of
  /// walking the whole queue.
  template <class F>
  T* for_each_until(F&& f) const {
    for (ListHook* it = head_.next; it != &head_; it = it->next) {
      T* e = owner(it);
      if (f(e)) return e;
    }
    return nullptr;
  }

  /// Visit elements in order; the visitor may erase the *current* element.
  template <class F>
  void for_each_safe(F&& f) {
    ListHook* it = head_.next;
    while (it != &head_) {
      ListHook* next = it->next;
      f(owner(it));
      it = next;
    }
  }

 private:
  static T* owner(ListHook* h) { return static_cast<T*>(h->owner); }

  ListHook head_;  // sentinel
  std::size_t size_ = 0;
};

}  // namespace mpx::base
