// mpx/base/buffer.hpp
//
// Owning byte buffer and span aliases used for message payloads.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <utility>

namespace mpx::base {

using ByteSpan = std::span<std::byte>;
using ConstByteSpan = std::span<const std::byte>;

/// Reinterpret a typed object/array region as bytes (for payload APIs).
template <class T>
ConstByteSpan as_bytes(const T* p, std::size_t count) {
  return ConstByteSpan(reinterpret_cast<const std::byte*>(p),
                       count * sizeof(T));
}
template <class T>
ByteSpan as_writable_bytes(T* p, std::size_t count) {
  return ByteSpan(reinterpret_cast<std::byte*>(p), count * sizeof(T));
}

/// Movable heap byte buffer; used for eager-message envelopes and staging.
/// Storage normally comes from new[]/delete[], but a buffer can adopt
/// externally-allocated storage with a custom deleter — the hook the
/// payload pool (base/pool.hpp) uses to recycle eager-message blocks.
class Buffer {
 public:
  /// Custom release hook: invoked as del(data, size) on destruction.
  using Deleter = void (*)(std::byte*, std::size_t) noexcept;

  Buffer() = default;
  explicit Buffer(std::size_t n)
      : data_(n != 0 ? new std::byte[n] : nullptr), size_(n) {}

  /// Adopt `adopted` (released via `del(adopted, n)`; nullptr = delete[]).
  Buffer(std::byte* adopted, std::size_t n, Deleter del)
      : data_(adopted), size_(n), del_(del) {}

  /// Allocate and copy from `src`.
  static Buffer copy_of(ConstByteSpan src) {
    Buffer b(src.size());
    if (!src.empty()) std::memcpy(b.data(), src.data(), src.size());
    return b;
  }

  Buffer(Buffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        del_(std::exchange(o.del_, nullptr)) {}
  Buffer& operator=(Buffer&& o) noexcept {
    std::swap(data_, o.data_);
    std::swap(size_, o.size_);
    std::swap(del_, o.del_);
    return *this;
  }
  ~Buffer() { reset(); }

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  ByteSpan span() { return ByteSpan(data_, size_); }
  ConstByteSpan span() const { return ConstByteSpan(data_, size_); }

 private:
  void reset() {
    if (data_ != nullptr) {
      if (del_ != nullptr) {
        del_(data_, size_);
      } else {
        delete[] data_;
      }
    }
    data_ = nullptr;
    size_ = 0;
    del_ = nullptr;
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  Deleter del_ = nullptr;
};

}  // namespace mpx::base
