// mpx/base/buffer.hpp
//
// Owning byte buffer and span aliases used for message payloads.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>

namespace mpx::base {

using ByteSpan = std::span<std::byte>;
using ConstByteSpan = std::span<const std::byte>;

/// Reinterpret a typed object/array region as bytes (for payload APIs).
template <class T>
ConstByteSpan as_bytes(const T* p, std::size_t count) {
  return ConstByteSpan(reinterpret_cast<const std::byte*>(p),
                       count * sizeof(T));
}
template <class T>
ByteSpan as_writable_bytes(T* p, std::size_t count) {
  return ByteSpan(reinterpret_cast<std::byte*>(p), count * sizeof(T));
}

/// Movable heap byte buffer; used for eager-message envelopes and staging.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t n)
      : data_(n != 0 ? std::make_unique<std::byte[]>(n) : nullptr), size_(n) {}

  /// Allocate and copy from `src`.
  static Buffer copy_of(ConstByteSpan src) {
    Buffer b(src.size());
    if (!src.empty()) std::memcpy(b.data(), src.data(), src.size());
    return b;
  }

  Buffer(Buffer&&) = default;
  Buffer& operator=(Buffer&&) = default;

  std::byte* data() { return data_.get(); }
  const std::byte* data() const { return data_.get(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  ByteSpan span() { return ByteSpan(data_.get(), size_); }
  ConstByteSpan span() const { return ConstByteSpan(data_.get(), size_); }

 private:
  std::unique_ptr<std::byte[]> data_;
  std::size_t size_ = 0;
};

}  // namespace mpx::base
