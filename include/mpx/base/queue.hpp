// mpx/base/queue.hpp
//
// Queues used by the transports:
//  - SpscRing: lock-free bounded single-producer/single-consumer ring, the
//    "cell queue" of the shared-memory fast path (one per directed rank pair).
//  - MpscQueue: mutex-guarded multi-producer/single-consumer queue used for
//    simulated-NIC delivery and control traffic. A Spinlock is sufficient:
//    critical sections are a few pointer moves.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "mpx/base/spinlock.hpp"
#include "mpx/base/status.hpp"
#include "mpx/base/thread_safety.hpp"
#include "mpx/mc/sync.hpp"

namespace mpx::base {

/// Lock-free bounded SPSC ring buffer. Capacity must be a power of two.
///
/// The head/tail indices are mc::atomic and the slot accesses carry
/// MPX_MC_PLAIN_* annotations: under the model checker, weakening either the
/// producer's release publish or the consumer's acquire read shows up as a
/// data race on the slot, across every explored interleaving.
template <class T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2) : buf_(capacity_pow2) {
    expects(capacity_pow2 >= 2 && (capacity_pow2 & (capacity_pow2 - 1)) == 0,
            "SpscRing capacity must be a power of two >= 2");
  }

  /// Producer side. Returns false if the ring is full.
  bool try_push(T&& v) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    if (h - t == buf_.size()) return false;
    MPX_MC_PLAIN_WRITE(&buf_[h & (buf_.size() - 1)], "SpscRing slot");
    buf_[h & (buf_.size() - 1)] = std::move(v);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt if the ring is empty.
  std::optional<T> try_pop() {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_acquire);
    if (h == t) return std::nullopt;
    MPX_MC_PLAIN_WRITE(&buf_[t & (buf_.size() - 1)], "SpscRing slot");
    T v = std::move(buf_[t & (buf_.size() - 1)]);
    tail_.store(t + 1, std::memory_order_release);
    return v;
  }

  /// Consumer-side emptiness check (racy for producers, exact for consumer).
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return buf_.size(); }

 private:
  std::vector<T> buf_;
  alignas(64) mc::atomic<std::size_t> head_{0};
  alignas(64) mc::atomic<std::size_t> tail_{0};
};

/// Mutex-guarded unbounded MPSC/MPMC queue for control-plane traffic.
template <class T>
class MpscQueue {
 public:
  void push(T&& v) {
    LockGuard<Spinlock> g(mu_);
    q_.push_back(std::move(v));
  }

  std::optional<T> try_pop() {
    LockGuard<Spinlock> g(mu_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }

  /// Cheap check that avoids taking the lock when the queue looks empty.
  /// May return a stale answer; callers treat it as a hint.
  bool maybe_empty() const {
    LockGuard<Spinlock> g(mu_);
    return q_.empty();
  }

  std::size_t size() const {
    LockGuard<Spinlock> g(mu_);
    return q_.size();
  }

 private:
  mutable Spinlock mu_;
  std::deque<T> q_ MPX_GUARDED_BY(mu_);
};

}  // namespace mpx::base
